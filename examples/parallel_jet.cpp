// SPMD parallel solve on the threads-backed message-passing runtime:
// the paper's Section 5 parallelization, live. Decomposes the jet into
// axial blocks, exchanges boundary primitives and flux columns each
// sweep stage, verifies the result against the serial solver, and
// reports the per-rank communication statistics behind Table 1.
#include <cmath>
#include <cstdio>

#include "core/solver.hpp"
#include "io/table.hpp"
#include "par/subdomain_solver.hpp"

int main() {
  using namespace nsp;

  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(96, 40);
  cfg.viscous = true;
  const int nprocs = 6;
  const int steps = 40;

  std::printf("decomposing %dx%d into %d axial blocks, %d steps...\n",
              cfg.grid.ni, cfg.grid.nj, nprocs, steps);
  std::vector<core::CommCounter> counters;
  const core::StateField qpar = par::run_parallel_jet(cfg, nprocs, steps, &counters);

  // Verify against the serial solver: the decomposition is exact.
  core::Solver serial(cfg);
  serial.initialize();
  serial.run(steps);
  double maxdiff = 0;
  for (int c = 0; c < core::StateField::kComponents; ++c) {
    for (int j = 0; j < cfg.grid.nj; ++j) {
      for (int i = 0; i < cfg.grid.ni; ++i) {
        maxdiff =
            std::max(maxdiff, std::fabs(qpar[c](i, j) - serial.state()[c](i, j)));
      }
    }
  }
  std::printf("max |parallel - serial| over all fields: %.3g %s\n\n", maxdiff,
              maxdiff == 0.0 ? "(bit-exact)" : "");

  io::Table t({"rank", "sends", "recvs", "start-ups", "MB sent"});
  t.title("Per-rank communication (the live numbers behind Table 1)");
  for (std::size_t r = 0; r < counters.size(); ++r) {
    const auto& c = counters[r];
    t.row({std::to_string(r), std::to_string(c.sends), std::to_string(c.recvs),
           std::to_string(c.startups()),
           io::format_fixed(c.bytes_sent / 1e6, 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Interior ranks exchange boundary primitives (u, v, T, p bundled into\n"
      "one message) and two combined flux columns per sweep stage, exactly\n"
      "the Version-5 grouping of Section 5. Edge ranks talk to one side.\n");
  return 0;
}
