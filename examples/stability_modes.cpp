// Linear stability survey of the jet: sweep the excitation Strouhal
// number, solve the compressible Rayleigh (Pridmore-Brown) eigenvalue
// problem at each frequency, and plot the spatial growth-rate curve and
// the eigenfunction shapes — the machinery behind the paper's inflow
// excitation ("eigenfunctions of the linearized equations").
#include <cmath>
#include <cstdio>

#include "core/stability.hpp"
#include "io/artifacts.hpp"
#include "io/chart.hpp"
#include "io/table.hpp"

int main() {
  using namespace nsp;
  using core::stability::Mode;

  core::JetConfig jet;  // Mc = 1.5, T_inf/T_c = 1/2
  std::printf("jet: Mc = %.2f, T_inf/Tc = %.2f, theta = %.3f\n\n", jet.mach_c,
              jet.t_ratio, jet.theta);

  io::Table t({"St", "n=0 growth", "n=0 phase speed", "n=1 growth",
               "n=1 phase speed"});
  t.title("Spatial modes of the heated Mach 1.5 jet (axisymmetric & helical)");
  io::Series growth0{"n=0 growth rate", {}, {}};
  io::Series growth1{"n=1 (helical) growth rate", {}, {}};
  Mode paper_case;
  for (double st : {0.05, 0.0625, 0.08, 0.1, 0.125, 0.15, 0.2, 0.25, 0.3}) {
    jet.strouhal = st;
    core::stability::Options o0, o1;
    o1.azimuthal_n = 1;
    const Mode m0 = core::stability::solve(jet, jet.omega(), o0);
    const Mode m1 = core::stability::solve(jet, jet.omega(), o1);
    t.row({io::format_fixed(st, 4),
           m0.converged ? io::format_fixed(m0.growth_rate(), 4) : "-",
           m0.converged ? io::format_fixed(m0.phase_speed(), 3) : "-",
           m1.converged ? io::format_fixed(m1.growth_rate(), 4) : "-",
           m1.converged ? io::format_fixed(m1.phase_speed(), 3) : "-"});
    if (m0.converged) {
      growth0.x.push_back(st);
      growth0.y.push_back(m0.growth_rate());
    }
    if (m1.converged) {
      growth1.x.push_back(st);
      growth1.y.push_back(m1.growth_rate());
    }
    if (st == 0.125) paper_case = m0;
  }
  std::printf("%s\n", t.str().c_str());

  io::ChartOptions copts;
  copts.log_x = false;
  copts.log_y = false;
  copts.title = "Spatial growth rate vs Strouhal number";
  copts.x_label = "St";
  io::LineChart gchart(copts);
  gchart.add(growth0);
  gchart.add(growth1);
  std::printf("%s\n", gchart.str().c_str());

  if (paper_case.converged) {
    io::Series up{"|u^(r)|", {}, {}}, pp{"|p^(r)|", {}, {}};
    for (std::size_t k = 0; k < paper_case.r.size(); k += 6) {
      if (paper_case.r[k] > 4.0) break;
      up.x.push_back(paper_case.r[k]);
      up.y.push_back(std::abs(paper_case.u[k]));
      pp.x.push_back(paper_case.r[k]);
      pp.y.push_back(std::abs(paper_case.p[k]));
    }
    io::ChartOptions eopts;
    eopts.log_x = false;
    eopts.log_y = false;
    eopts.title = "Eigenfunction amplitudes at the paper's St = 1/8";
    eopts.x_label = "r / r_j";
    io::LineChart echart(eopts);
    echart.add(up);
    echart.add(pp);
    std::printf("%s", echart.str().c_str());
    io::write_series_csv(io::artifact_path("stability_eigenfunctions.csv"), {up, pp});
    std::printf("\n[eigenfunctions written to stability_eigenfunctions.csv]\n");
    std::printf(
        "Use cfg.rayleigh_inflow = true in SolverConfig to excite the jet\n"
        "with this mode instead of the analytic stand-in.\n");
  }
  return 0;
}
