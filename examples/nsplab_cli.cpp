// nsplab_cli: command-line front end to the platform laboratory,
// built on the nsp:: facade and the exec engine.
//
//   nsplab_cli list
//   nsplab_cli list-models
//   nsplab_cli replay <platform> [--euler] [--version N] [--procs P]
//   nsplab_cli sweep  <platform> [--euler] [--version N]
//   nsplab_cli batch  <platform> [<platform>...] [--euler] [--version N]
//   nsplab_cli solve  [--ni N] [--nj N] [--steps N] [--euler] [--threads T]
//                     [--kernel V] [--model KEY]
//
// Platform keys come from the exec registry (see `list`); any key takes
// a "-<procs>" suffix, e.g. "t3d-64". Model keys come from the model
// registry (see `list-models`) and select the scheme/physics/excitation
// combination — see docs/MODELS.md. `batch` runs the platforms'
// processor sweeps concurrently through the engine and writes a JSON
// ResultSet into $NSP_RESULTS_DIR (default: the current directory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bench/bench_util.hpp"

namespace {

using namespace nsp;

int usage() {
  std::printf(
      "usage:\n"
      "  nsplab_cli list\n"
      "  nsplab_cli list-models\n"
      "  nsplab_cli replay <platform> [--euler] [--version N] [--procs P]"
      " [--model KEY]\n"
      "  nsplab_cli sweep  <platform> [--euler] [--version N] [--model KEY]\n"
      "  nsplab_cli batch  <platform> [<platform>...] [--euler] [--version N]"
      " [--audit] [--faults SPEC] [--model KEY]\n"
      "  nsplab_cli solve  [--ni N] [--nj N] [--steps N] [--euler] "
      "[--threads T] [--kernel V] [--model KEY]\n"
      "\n"
      "  --kernel  live-solver kernel variant 1..5 (the paper's\n"
      "            optimization ladder; default 5)\n"
      "  --model   scheme/physics/excitation combination from the model\n"
      "            registry, e.g. ns/mac22/mode1 (see `list-models` and\n"
      "            docs/MODELS.md; default ns/mac24/mode1)\n"
      "  --audit   determinism audit: run the batch cells through a\n"
      "            1-thread and an N-thread engine and diff per-cell\n"
      "            trace hashes and fault timelines (exit 1 on mismatch)\n"
      "  --faults  inject faults into the batch replays; SPEC is a\n"
      "            comma-separated key=value list, e.g.\n"
      "            crash=0.5,drop=0.01,ckpt=250 (see docs/FAULTS.md)\n");
  return 2;
}

struct Args {
  bool euler = false;
  int version = 5;
  int procs = 16;
  int ni = 100;
  int nj = 40;
  int steps = 200;
  int threads = 1;
  int kernel = 5;
  bool audit = false;
  std::string model;   ///< model registry key ("" = registry default)
  std::string faults;  ///< fault::FaultSpec::parse form ("" = none)
  std::vector<std::string> names;  ///< non-flag positionals
};

Args parse_flags(int argc, char** argv, int from) {
  Args a;
  for (int k = from; k < argc; ++k) {
    const std::string flag = argv[k];
    const auto next = [&]() { return k + 1 < argc ? std::atoi(argv[++k]) : 0; };
    if (flag == "--euler") a.euler = true;
    else if (flag == "--version") a.version = next();
    else if (flag == "--procs") a.procs = next();
    else if (flag == "--ni") a.ni = next();
    else if (flag == "--nj") a.nj = next();
    else if (flag == "--steps") a.steps = next();
    else if (flag == "--threads") a.threads = next();
    else if (flag == "--kernel") a.kernel = next();
    else if (flag == "--audit") a.audit = true;
    else if (flag == "--model") a.model = k + 1 < argc ? argv[++k] : "";
    else if (flag == "--faults") a.faults = k + 1 < argc ? argv[++k] : "";
    else if (!flag.empty() && flag[0] != '-') a.names.push_back(flag);
  }
  return a;
}

Scenario make_base(const Args& a) {
  Scenario s =
      Scenario::jet250x100()
          .equations(a.euler ? arch::Equations::Euler
                             : arch::Equations::NavierStokes)
          .version(static_cast<arch::CodeVersion>(std::clamp(a.version, 1, 7)));
  if (!a.faults.empty()) s.faults(a.faults);
  if (!a.model.empty()) s.model(a.model);
  return s;
}

int cmd_list() {
  io::Table t({"key", "platform", "CPU", "network", "library", "max procs"});
  t.title("Available platforms (append -<procs> to resize, e.g. t3d-64)");
  for (const auto& key : exec::platform_names()) {
    const auto p = exec::make_platform(key);
    t.row({key, p.name, p.cpu.name, to_string(p.net), p.msglayer.name,
           std::to_string(p.max_procs)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_list_models() {
  io::Table t({"model", "scheme", "physics", "excitation", "default"});
  t.title("Registered models (physics/scheme/excitation; see docs/MODELS.md)");
  for (const auto& key : model::model_names()) {
    const auto m = model::make_model(key);
    t.row({key, model::to_token(m.scheme), model::to_token(m.physics),
           model::to_token(m.excitation), m.is_default() ? "*" : ""});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_replay(const std::string& key, const Args& a) {
  const auto plat = exec::make_platform(key);
  const int procs = std::min(a.procs, plat.max_procs);
  const auto r =
      bench::run_cell(make_base(a).platform(key).threads(procs));
  std::printf("%s, %d procs:\n", r.platform.c_str(), r.nprocs);
  std::printf("  execution time        %10.1f s\n", r.metric("exec_s"));
  std::printf("  processor busy (avg)  %10.1f s\n", r.metric("busy_avg_s"));
  std::printf("  non-overlapped comm   %10.1f s\n", r.metric("wait_avg_s"));
  std::printf("  messages / bytes      %10.0f / %.1f MB\n",
              r.metric("messages"), r.metric("bytes") / 1e6);
  return 0;
}

int cmd_sweep(const std::string& key, const Args& a) {
  const auto plat = exec::make_platform(key);
  const auto series =
      bench::exec_time_series(make_base(a).platform(key), plat.name);
  io::ChartOptions opts;
  opts.title = plat.name;
  opts.x_label = "Number of Processors";
  opts.y_label = "Execution time (s)";
  io::LineChart chart(opts);
  chart.add(series);
  std::printf("%s", chart.str().c_str());
  return 0;
}

int cmd_batch(const Args& a) {
  if (a.names.empty()) return usage();
  std::vector<bench::SweepSpec> specs;
  for (const auto& key : a.names) {
    if (!exec::has_platform(key)) {
      std::printf("unknown platform '%s'; try: nsplab_cli list\n", key.c_str());
      return 2;
    }
  }
  for (const auto& key : a.names) {
    specs.push_back({make_base(a).platform(key), exec::make_platform(key).name});
  }
  if (a.audit) {
    // Determinism audit instead of the sweep chart: every batch cell is
    // run through a serial and a parallel engine and the per-cell trace
    // hashes are diffed.
    std::vector<Scenario> cells;
    for (const auto& spec : specs) {
      const int maxp = exec::make_platform(spec.base.platform_key()).max_procs;
      for (int p : bench::proc_sweep(maxp)) {
        cells.push_back(Scenario(spec.base).threads(p));
      }
    }
    const auto report = exec::audit(cells, a.threads);
    std::printf("%s", report.str().c_str());
    return report.clean() ? 0 : 1;
  }
  io::ChartOptions opts;
  opts.title = "Batch sweep";
  opts.x_label = "Number of Processors";
  opts.y_label = "Execution time (s)";
  io::LineChart chart(opts);
  for (auto& s : bench::exec_time_sweep(specs)) chart.add(s);
  std::printf("%s", chart.str().c_str());

  // Re-run the cells (all cache hits) to collect the JSON artifact.
  std::vector<Scenario> cells;
  for (const auto& spec : specs) {
    const int maxp = exec::make_platform(spec.base.platform_key()).max_procs;
    for (int p : bench::proc_sweep(maxp)) {
      cells.push_back(Scenario(spec.base).threads(p));
    }
  }
  bench::write_resultset(bench::engine().run(cells), "nsplab_batch.json");
  bench::print_engine_counters();
  return 0;
}

int cmd_solve(const Args& a) {
  // The scenario's fluent axes are the one place solver settings are
  // assembled; the CLI no longer pokes SolverConfig fields directly.
  Scenario sc = Scenario::solve(a.ni, a.nj, a.steps)
                    .threads(a.threads)
                    .kernel(static_cast<core::KernelVariant>(
                        std::clamp(a.kernel, 1, 5)));
  if (a.euler) sc.euler();
  if (!a.model.empty()) sc.model(a.model);
  const core::SolverConfig cfg = sc.solver_config();
  core::Solver s(cfg);
  s.initialize();
  s.run(a.steps);
  std::printf("%s %dx%d, %d steps (t = %.2f): %s, max Mach %.3f\n",
              cfg.viscous ? "Navier-Stokes" : "Euler", a.ni, a.nj,
              s.steps_taken(),
              s.time(), s.finite() ? "finite" : "DIVERGED", s.max_mach());
  const auto mx = s.axial_momentum();
  std::printf("%s", io::contour_map(mx, a.ni, a.nj, 80, 16).c_str());
  return s.finite() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "list-models") return cmd_list_models();
  if (cmd == "solve") return cmd_solve(parse_flags(argc, argv, 2));
  if (cmd == "batch") return cmd_batch(parse_flags(argc, argv, 2));
  if (cmd == "replay" || cmd == "sweep") {
    if (argc < 3) return usage();
    const std::string key = argv[2];
    if (!exec::has_platform(key)) {
      std::printf("unknown platform '%s'; try: nsplab_cli list\n",
                  key.c_str());
      return 2;
    }
    const Args a = parse_flags(argc, argv, 3);
    return cmd == "replay" ? cmd_replay(key, a) : cmd_sweep(key, a);
  }
  return usage();
} catch (const std::invalid_argument& e) {
  std::printf("error: %s\n", e.what());
  return 2;
}
