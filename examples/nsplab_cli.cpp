// nsplab_cli: command-line front end to the platform laboratory.
//
//   nsplab_cli list
//   nsplab_cli replay <platform> [--euler] [--version N] [--procs P]
//   nsplab_cli sweep  <platform> [--euler] [--version N]
//   nsplab_cli solve  [--ni N] [--nj N] [--steps N] [--euler] [--threads T]
//
// Platform keys: ethernet, allnode-s, allnode-f, fddi, atm, sp-mpl,
// sp-pvme, t3d, t3d-shmem, ymp.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench/bench_util.hpp"
#include "core/solver.hpp"
#include "io/chart.hpp"

namespace {

using namespace nsp;

std::map<std::string, arch::Platform> platform_registry() {
  return {
      {"ethernet", arch::Platform::lace560_ethernet()},
      {"allnode-s", arch::Platform::lace560_allnode_s()},
      {"allnode-f", arch::Platform::lace590_allnode_f()},
      {"fddi", arch::Platform::lace560_fddi()},
      {"atm", arch::Platform::lace590_atm()},
      {"sp-mpl", arch::Platform::ibm_sp_mpl()},
      {"sp-pvme", arch::Platform::ibm_sp_pvme()},
      {"t3d", arch::Platform::cray_t3d()},
      {"t3d-shmem", arch::Platform::cray_t3d_shmem()},
      {"ymp", arch::Platform::cray_ymp()},
  };
}

int usage() {
  std::printf(
      "usage:\n"
      "  nsplab_cli list\n"
      "  nsplab_cli replay <platform> [--euler] [--version N] [--procs P]\n"
      "  nsplab_cli sweep  <platform> [--euler] [--version N]\n"
      "  nsplab_cli solve  [--ni N] [--nj N] [--steps N] [--euler] [--threads T]\n");
  return 2;
}

struct Args {
  bool euler = false;
  int version = 5;
  int procs = 16;
  int ni = 100;
  int nj = 40;
  int steps = 200;
  int threads = 1;
};

Args parse_flags(int argc, char** argv, int from) {
  Args a;
  for (int k = from; k < argc; ++k) {
    const std::string flag = argv[k];
    const auto next = [&]() { return k + 1 < argc ? std::atoi(argv[++k]) : 0; };
    if (flag == "--euler") a.euler = true;
    else if (flag == "--version") a.version = next();
    else if (flag == "--procs") a.procs = next();
    else if (flag == "--ni") a.ni = next();
    else if (flag == "--nj") a.nj = next();
    else if (flag == "--steps") a.steps = next();
    else if (flag == "--threads") a.threads = next();
  }
  return a;
}

perf::AppModel make_app(const Args& a) {
  return perf::AppModel::paper(
      a.euler ? arch::Equations::Euler : arch::Equations::NavierStokes,
      static_cast<arch::CodeVersion>(std::clamp(a.version, 1, 7)));
}

int cmd_list() {
  io::Table t({"key", "platform", "CPU", "network", "library", "max procs"});
  t.title("Available platforms");
  for (const auto& [key, p] : platform_registry()) {
    t.row({key, p.name, p.cpu.name, to_string(p.net), p.msglayer.name,
           std::to_string(p.max_procs)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_replay(const arch::Platform& plat, const Args& a) {
  const auto app = make_app(a);
  const int procs = std::min(a.procs, plat.max_procs);
  const auto r = perf::replay(app, plat, procs);
  std::printf("%s, %s, %d procs:\n", plat.name.c_str(), app.profile.name.c_str(),
              procs);
  std::printf("  execution time        %10.1f s\n", r.exec_time);
  std::printf("  processor busy (avg)  %10.1f s\n", r.avg_busy());
  std::printf("  non-overlapped comm   %10.1f s\n", r.avg_wait());
  std::printf("  messages / bytes      %10.0f / %.1f MB\n", r.total_messages(),
              r.total_bytes() / 1e6);
  return 0;
}

int cmd_sweep(const arch::Platform& plat, const Args& a) {
  const auto app = make_app(a);
  const auto series = bench::exec_time_series(app, plat, plat.name);
  io::ChartOptions opts;
  opts.title = plat.name + " / " + app.profile.name;
  opts.x_label = "Number of Processors";
  opts.y_label = "Execution time (s)";
  io::LineChart chart(opts);
  chart.add(series);
  std::printf("%s", chart.str().c_str());
  return 0;
}

int cmd_solve(const Args& a) {
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(a.ni, a.nj);
  cfg.viscous = !a.euler;
  cfg.num_threads = std::max(1, a.threads);
  core::Solver s(cfg);
  s.initialize();
  s.run(a.steps);
  std::printf("%s %dx%d, %d steps (t = %.2f): %s, max Mach %.3f\n",
              a.euler ? "Euler" : "Navier-Stokes", a.ni, a.nj, s.steps_taken(),
              s.time(), s.finite() ? "finite" : "DIVERGED", s.max_mach());
  const auto mx = s.axial_momentum();
  std::printf("%s", io::contour_map(mx, a.ni, a.nj, 80, 16).c_str());
  return s.finite() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "solve") return cmd_solve(parse_flags(argc, argv, 2));
  if (cmd == "replay" || cmd == "sweep") {
    if (argc < 3) return usage();
    const auto reg = platform_registry();
    const auto it = reg.find(argv[2]);
    if (it == reg.end()) {
      std::printf("unknown platform '%s'; try: nsplab_cli list\n", argv[2]);
      return 2;
    }
    const Args a = parse_flags(argc, argv, 3);
    return cmd == "replay" ? cmd_replay(it->second, a) : cmd_sweep(it->second, a);
  }
  return usage();
}
