// Shock tube: validate the 2-4 MacCormack solver against the exact
// Riemann solution. Not a jet problem — demonstrates the generic-flow
// configuration knobs (Halo x-boundaries, zero-gradient far field) and
// the core/riemann.hpp utility.
#include <cmath>
#include <cstdio>

#include "core/riemann.hpp"
#include "core/solver.hpp"
#include "io/artifacts.hpp"
#include "io/chart.hpp"
#include "io/table.hpp"

int main() {
  using namespace nsp;
  using core::RiemannState;

  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(250, 8);
  cfg.viscous = false;
  cfg.left = core::XBoundary::Halo;
  cfg.right = core::XBoundary::Halo;
  cfg.far_field = core::RBoundary::ZeroGradient;
  cfg.jet.eps = 0.0;
  cfg.smoothing = 0.004;
  core::Solver solver(cfg);
  solver.initialize();

  const core::Gas gas = cfg.jet.gas;
  const double x_mid = 25.0;
  const RiemannState left{1.0, 0.0, 2.0 / gas.gamma};
  const RiemannState right{0.8, 0.0, 1.0 / gas.gamma};
  core::StateField& q = solver.mutable_state();
  for (int j = -core::kGhost; j < cfg.grid.nj + core::kGhost; ++j) {
    for (int i = -core::kGhost; i < cfg.grid.ni + core::kGhost; ++i) {
      const double f = 0.5 * (1.0 + std::tanh((x_mid - cfg.grid.x(i)) / 0.5));
      const double rho = right.rho + (left.rho - right.rho) * f;
      const double p = right.p + (left.p - right.p) * f;
      q.rho(i, j) = rho;
      q.mx(i, j) = 0.0;
      q.mr(i, j) = 0.0;
      q.e(i, j) = gas.total_energy(rho, 0.0, 0.0, p);
    }
  }

  const double t_final = 8.0;
  solver.run(static_cast<int>(std::ceil(t_final / solver.dt())));
  const double t = solver.time();

  const core::RiemannSolution exact(gas, left, right);
  std::printf("exact solution: p* = %.4f, u* = %.4f, %s + contact + %s\n",
              exact.p_star(), exact.u_star(),
              exact.left_is_shock() ? "left shock" : "left rarefaction",
              exact.right_is_shock() ? "right shock" : "right rarefaction");
  std::printf("right shock speed %.3f -> position %.1f at t = %.1f\n\n",
              exact.right_shock_speed(),
              x_mid + exact.right_shock_speed() * t, t);

  io::Series num{"2-4 MacCormack", {}, {}};
  io::Series ana{"exact Riemann", {}, {}};
  double l1 = 0;
  for (int i = 0; i < cfg.grid.ni; ++i) {
    const double x = cfg.grid.x(i);
    const double rho_n = solver.state().rho(i, 2);
    const double rho_e = exact.sample((x - x_mid) / t).rho;
    l1 += std::fabs(rho_n - rho_e);
    if (i % 2 == 0) {
      num.x.push_back(x);
      num.y.push_back(rho_n);
      ana.x.push_back(x);
      ana.y.push_back(rho_e);
    }
  }
  io::ChartOptions opts;
  opts.log_x = false;
  opts.log_y = false;
  opts.title = "Density at t = " + io::format_fixed(t, 1);
  opts.x_label = "x";
  io::LineChart chart(opts);
  chart.add(num);
  chart.add(ana);
  std::printf("%s\n", chart.str().c_str());
  std::printf("L1 density error: %.4f (%.2f%% of the jump)\n",
              l1 / cfg.grid.ni,
              100.0 * (l1 / cfg.grid.ni) / (left.rho - right.rho));
  io::write_series_csv(io::artifact_path("shock_tube_density.csv"), {num, ana});
  std::printf("[profiles written to shock_tube_density.csv]\n");
  return 0;
}
