// Platform shootout: use the 1995 platform laboratory directly.
//
// Demonstrates the arch/perf public API: pick the paper's machines,
// define a custom machine of your own, and ask where the application's
// time would go on each. This is how the repository regenerates the
// paper's Figures 3-12, exposed as a user-facing tool.
#include <cstdio>

#include "arch/platform.hpp"
#include "io/table.hpp"
#include "perf/replay.hpp"

int main() {
  using namespace nsp;

  const auto app = perf::AppModel::paper(arch::Equations::NavierStokes);
  std::printf("workload: %s, %.0f GFLOP total, %d steps on %dx%d\n\n",
              app.profile.name.c_str(), app.total_flops() / 1e9, app.steps,
              app.ni, app.nj);

  // A custom platform: 1995's "dream cluster" — 590 nodes, the SP
  // switch, and a lean message layer.
  arch::Platform dream;
  dream.name = "590 + SP switch + MPL-class library";
  dream.cpu = arch::CpuModel::rs6000_590();
  dream.msglayer = arch::MsgLayerModel::mpl_sp();
  dream.msglayer.blocking_send = false;  // assume the constraint is fixed
  dream.net = arch::NetKind::SpSwitch;
  dream.max_procs = 16;

  std::vector<arch::Platform> lineup = {
      arch::Platform::cray_ymp(),          arch::Platform::lace590_allnode_f(),
      arch::Platform::lace560_allnode_s(), arch::Platform::cray_t3d(),
      arch::Platform::ibm_sp_mpl(),        arch::Platform::lace560_ethernet(),
      dream,
  };

  io::Table t({"Platform", "procs", "exec (s)", "busy (s)", "wait (s)",
               "speedup vs 1", "efficiency"});
  t.title("Navier-Stokes, 5000 steps: where does the time go?");
  for (const auto& plat : lineup) {
    const int procs = plat.max_procs;
    const auto r1 = perf::replay(app, plat, 1);
    const auto rp = perf::replay(app, plat, procs);
    const double speedup = r1.exec_time / rp.exec_time;
    t.row({plat.name, std::to_string(procs), io::format_fixed(rp.exec_time, 0),
           io::format_fixed(rp.avg_busy(), 0), io::format_fixed(rp.avg_wait(), 0),
           io::format_fixed(speedup, 1) + "x",
           io::format_percent(speedup / procs)});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "Lessons the paper drew, visible above:\n"
      "  * the vector Y-MP still wins outright at modest scale;\n"
      "  * NOW hardware is viable when the network (ALLNODE-F) and the\n"
      "    message layer are good: see the hypothetical last row;\n"
      "  * a fast CPU cannot rescue a weak cache (T3D vs the 560s);\n"
      "  * Ethernet is fine until the aggregate traffic saturates it.\n");
  return 0;
}
