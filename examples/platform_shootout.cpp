// Platform shootout: use the 1995 platform laboratory directly.
//
// Demonstrates the nsp:: facade and the batch experiment engine: pick
// the paper's machines by registry key, register a custom machine of
// your own, and run the full sweep (every platform x every processor
// count) concurrently on a work-stealing pool. The per-scenario results
// are bit-identical to a serial run (set NSP_EXEC_THREADS=1 to check);
// the engine counters at the bottom show how much faster the harness
// itself ran.
#include <cstdio>

#include "nsp.hpp"

int main() {
  using namespace nsp;

  const auto app = perf::AppModel::paper(arch::Equations::NavierStokes);
  std::printf("workload: %s, %.0f GFLOP total, %d steps on %dx%d\n\n",
              app.profile.name.c_str(), app.total_flops() / 1e9, app.steps,
              app.ni, app.nj);

  // A custom platform: 1995's "dream cluster" — 590 nodes, the SP
  // switch, and a lean message layer — registered under its own key so
  // scenarios can name it like any built-in machine.
  arch::Platform dream;
  dream.name = "590 + SP switch + MPL-class library";
  dream.cpu = arch::CpuModel::rs6000_590();
  dream.msglayer = arch::MsgLayerModel::mpl_sp();
  dream.msglayer.blocking_send = false;  // assume the constraint is fixed
  dream.net = arch::NetKind::SpSwitch;
  dream.max_procs = 16;
  exec::register_platform("dream", dream);

  const char* lineup[] = {"ymp",     "lace-allnode-f", "lace-allnode-s",
                          "t3d",     "sp-mpl",         "lace-ethernet",
                          "dream"};

  // The full sweep: every platform at every processor count, as one
  // batch. The engine fans the cells out across its worker pool.
  std::vector<Scenario> sweep;
  for (const char* key : lineup) {
    const int maxp = exec::make_platform(key).max_procs;
    for (int p = 1; p <= maxp; p *= 2) {
      sweep.push_back(Scenario::jet250x100().platform(key).threads(p));
    }
    if ((maxp & (maxp - 1)) != 0) {  // include the non-power-of-two max
      sweep.push_back(Scenario::jet250x100().platform(key).threads(maxp));
    }
  }
  Engine engine;
  const ResultSet results = engine.run(sweep);

  io::Table t({"Platform", "procs", "exec (s)", "busy (s)", "wait (s)",
               "speedup vs 1", "efficiency"});
  t.title("Navier-Stokes, 5000 steps: where does the time go?");
  for (const char* key : lineup) {
    const int procs = exec::make_platform(key).max_procs;
    const auto* r1 =
        results.find(Scenario::jet250x100().platform(key).threads(1).key());
    const auto* rp =
        results.find(Scenario::jet250x100().platform(key).threads(procs).key());
    const double speedup = r1->metric("exec_s") / rp->metric("exec_s");
    t.row({rp->platform, std::to_string(procs),
           io::format_fixed(rp->metric("exec_s"), 0),
           io::format_fixed(rp->metric("busy_avg_s"), 0),
           io::format_fixed(rp->metric("wait_avg_s"), 0),
           io::format_fixed(speedup, 1) + "x",
           io::format_percent(speedup / procs)});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "Lessons the paper drew, visible above:\n"
      "  * the vector Y-MP still wins outright at modest scale;\n"
      "  * NOW hardware is viable when the network (ALLNODE-F) and the\n"
      "    message layer are good: see the hypothetical last row;\n"
      "  * a fast CPU cannot rescue a weak cache (T3D vs the 560s);\n"
      "  * Ethernet is fine until the aggregate traffic saturates it.\n\n");

  results.write_json(io::artifact_path("platform_shootout.json"));
  std::printf("[resultset: %s]\n",
              io::artifact_path("platform_shootout.json").c_str());

  const auto& c = engine.counters();
  std::printf(
      "[engine: %llu scenarios (%llu computed, %llu cache hits, %llu stolen)\n"
      " on %d threads; wall %.3f s, work %.3f s, harness speedup %.2fx,\n"
      " pool utilization %.0f%%]\n",
      static_cast<unsigned long long>(c.submitted),
      static_cast<unsigned long long>(c.executed),
      static_cast<unsigned long long>(c.cache_hits),
      static_cast<unsigned long long>(c.stolen), c.threads, c.wall_s, c.task_s,
      c.speedup(), 100.0 * c.utilization());
  return 0;
}
