// Jet noise: the paper's motivating application. The radiated sound of
// a supersonic jet is computed from the time-accurate near field; this
// example places "microphones" in the near field of the excited jet,
// records the pressure history, and extracts the response at the
// excitation Strouhal number — the quantity an acoustic-analogy
// post-processor (Lighthill) would propagate to the far field.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/solver.hpp"
#include "io/artifacts.hpp"
#include "io/chart.hpp"
#include "io/signal.hpp"
#include "io/table.hpp"

int main() {
  using namespace nsp;

  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(125, 50);
  cfg.viscous = true;
  cfg.jet.eps = 5e-3;    // stronger excitation for a short demo run
  cfg.smoothing = 0.005; // stabilize the under-resolved saturated state
  core::Solver solver(cfg);
  solver.initialize();

  // Microphones along the jet lip line (r = 1.5) at several stations.
  struct Mic {
    double x;
    int i, j;
    std::vector<double> p;
  };
  std::vector<Mic> mics;
  const int j_mic = static_cast<int>(1.5 / cfg.grid.dr());
  for (double x : {5.0, 10.0, 20.0, 35.0}) {
    mics.push_back({x, static_cast<int>(x / cfg.grid.dx()), j_mic, {}});
  }

  const core::Gas& gas = cfg.jet.gas;
  const int steps = 1200;
  std::vector<double> time;
  for (int k = 0; k < steps; ++k) {
    solver.step();
    time.push_back(solver.time());
    for (auto& m : mics) {
      const auto& q = solver.state();
      m.p.push_back(gas.pressure(q.rho(m.i, m.j), q.mx(m.i, m.j),
                                 q.mr(m.i, m.j), q.e(m.i, m.j)));
    }
  }
  std::printf("ran %d steps to t = %.1f; solution %s\n\n", steps, solver.time(),
              solver.finite() ? "finite" : "DIVERGED");

  // Response at the excitation frequency (single-bin Fourier projection
  // over the second half of each record, via io/signal).
  const double omega = cfg.jet.omega();
  io::Table t({"mic x/r_j", "mean p", "p' RMS", "|p'| at St", "dB re eps*p0"});
  t.title("Near-field pressure response at the excitation Strouhal number");
  const std::size_t half = time.size() / 2;
  std::vector<io::Series> hist;
  for (auto& m : mics) {
    const std::span<const double> tail(m.p.data() + half, m.p.size() - half);
    const double p_mean = io::mean(tail);
    const double p_rms = io::rms(tail);
    const double amp = io::project_tone(tail, solver.dt(), omega).amplitude;
    const double ref = cfg.jet.eps * cfg.jet.mean_p();
    t.row({io::format_fixed(m.x, 0), io::format_fixed(p_mean, 4),
           io::format_sci(p_rms, 2), io::format_sci(amp, 2),
           io::format_fixed(20.0 * std::log10(amp / ref + 1e-300), 1)});
    io::Series s;
    s.label = "x=" + io::format_fixed(m.x, 0);
    for (std::size_t k = half; k < m.p.size(); k += 4) {
      s.x.push_back(time[k]);
      s.y.push_back(m.p[k] - p_mean);
    }
    hist.push_back(std::move(s));
  }
  std::printf("%s\n", t.str().c_str());

  // Full spectrum at the farthest microphone: the excited instability
  // line should dominate.
  {
    const auto& m = mics.back();
    const std::span<const double> tail(m.p.data() + half, m.p.size() - half);
    const io::Spectrum spec = io::amplitude_spectrum(tail, solver.dt());
    if (!spec.amplitude.empty()) {
      const std::size_t peak = io::dominant_bin(spec);
      const double f_exc = omega / (2.0 * 3.14159265358979323846);
      std::printf("spectrum at x = %.0f: dominant frequency %.4f "
                  "(excitation %.4f, St %.3f)\n\n",
                  m.x, spec.frequency[peak], f_exc, cfg.jet.strouhal);
    }
  }

  io::ChartOptions opts;
  opts.log_x = false;
  opts.log_y = false;
  opts.title = "Pressure fluctuation histories along the lip line";
  opts.x_label = "t (c_c / r_j units)";
  io::LineChart chart(opts);
  for (auto& s : hist) chart.add(s);
  std::printf("%s", chart.str().c_str());
  io::write_series_csv(io::artifact_path("jet_noise_pressure.csv"), hist);
  std::printf("\n[pressure histories written to jet_noise_pressure.csv]\n"
              "The growth of |p'| downstream is the instability-wave\n"
              "amplification the acoustic analogy converts to far-field "
              "noise.\n");
  return 0;
}
