// Quickstart: solve the excited supersonic jet of the paper on a small
// grid and look at the flow.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/solver.hpp"
#include "io/chart.hpp"

int main() {
  using namespace nsp;

  // 1. Describe the problem. Defaults reproduce the paper's jet:
  //    M_c = 1.5, T_inf/T_c = 1/2, Re_D = 1.2e6, St = 1/8 excitation.
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(100, 40);  // 100x40 over 50 x 5 jet radii
  cfg.viscous = true;                      // Navier-Stokes (false -> Euler)
  cfg.count_flops = true;

  // 2. Build and initialize the solver (parallel mean jet flow).
  core::Solver solver(cfg);
  solver.initialize();
  std::printf("grid %d x %d, dt = %.4f (CFL %.2f)\n", cfg.grid.ni, cfg.grid.nj,
              solver.dt(), cfg.cfl);

  // 3. March 400 time steps of the 2-4 MacCormack scheme.
  solver.run(400);
  std::printf("t = %.2f after %d steps; max Mach %.3f; %s\n", solver.time(),
              solver.steps_taken(), solver.max_mach(),
              solver.finite() ? "solution finite" : "DIVERGED");

  // 4. Inspect the jet: axial momentum contours (Figure 1's quantity).
  const auto mx = solver.axial_momentum();
  std::printf("\naxial momentum rho*u:\n%s\n",
              io::contour_map(mx, cfg.grid.ni, cfg.grid.nj, 80, 20).c_str());

  // 5. Work accounting, the quantity behind the paper's Table 1.
  const double per_point_step =
      solver.flops().total() / (static_cast<double>(cfg.grid.ni) * cfg.grid.nj *
                                solver.steps_taken());
  std::printf("measured %.0f FP ops per grid point per step "
              "(paper's 1995 Fortran code: 1160)\n",
              per_point_step);
  return 0;
}
