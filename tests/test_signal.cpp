#include "io/signal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nsp::io {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::vector<double> sine(double amp, double freq, double dt, int n,
                         double offset = 0.0, double phase = 0.0) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    x[static_cast<std::size_t>(k)] =
        offset + amp * std::cos(kTwoPi * freq * k * dt + phase);
  }
  return x;
}

TEST(Signal, MeanAndRms) {
  const auto x = sine(2.0, 1.0, 0.01, 1000, 5.0);
  EXPECT_NEAR(mean(x), 5.0, 0.01);
  EXPECT_NEAR(rms(x), 2.0 / std::sqrt(2.0), 0.01);
}

TEST(Signal, EmptyRecordSafe) {
  std::vector<double> x;
  EXPECT_EQ(mean(x), 0.0);
  EXPECT_EQ(rms(x), 0.0);
  EXPECT_TRUE(amplitude_spectrum(x, 0.1).amplitude.empty());
  EXPECT_EQ(project_tone(x, 0.1, 1.0).amplitude, 0.0);
}

TEST(Signal, SpectrumPeaksAtInputFrequency) {
  // A 3 Hz tone sampled at 100 Hz for an integer number of periods.
  const double dt = 0.01;
  const int n = 300;  // 9 full periods of 3 Hz
  const auto x = sine(1.5, 3.0, dt, n);
  const Spectrum s = amplitude_spectrum(x, dt, /*hann=*/false);
  const std::size_t peak = dominant_bin(s);
  EXPECT_NEAR(s.frequency[peak], 3.0, 0.2);
  EXPECT_NEAR(s.amplitude[peak], 1.5, 0.05);
}

TEST(Signal, HannWindowRecoversAmplitudeOffBin) {
  // Non-integer periods: the Hann window controls leakage and the
  // corrected amplitude stays near the truth.
  const double dt = 0.01;
  const auto x = sine(1.0, 3.37, dt, 512);
  const Spectrum s = amplitude_spectrum(x, dt, /*hann=*/true);
  const std::size_t peak = dominant_bin(s);
  EXPECT_NEAR(s.frequency[peak], 3.37, 0.3);
  EXPECT_NEAR(s.amplitude[peak], 1.0, 0.2);
}

TEST(Signal, TwoTonesBothVisible) {
  const double dt = 0.005;
  const int n = 800;
  auto x = sine(1.0, 5.0, dt, n);
  const auto y = sine(0.4, 20.0, dt, n);
  for (int k = 0; k < n; ++k) x[static_cast<std::size_t>(k)] += y[static_cast<std::size_t>(k)];
  const Spectrum s = amplitude_spectrum(x, dt, false);
  double a5 = 0, a20 = 0;
  for (std::size_t b = 0; b < s.frequency.size(); ++b) {
    if (std::fabs(s.frequency[b] - 5.0) < 0.3) a5 = std::max(a5, s.amplitude[b]);
    if (std::fabs(s.frequency[b] - 20.0) < 0.3) a20 = std::max(a20, s.amplitude[b]);
  }
  EXPECT_NEAR(a5, 1.0, 0.1);
  EXPECT_NEAR(a20, 0.4, 0.1);
}

TEST(Signal, ProjectToneAmplitudeAndPhase) {
  const double dt = 0.002;
  const double f = 7.0;
  const double phase = 0.6;
  const auto x = sine(0.8, f, dt, 2000, /*offset=*/3.0, phase);
  const ToneEstimate t = project_tone(x, dt, kTwoPi * f);
  EXPECT_NEAR(t.amplitude, 0.8, 0.01);
  // cos(wt + phase) = cos(phase)cos(wt) - sin(phase)sin(wt):
  // projection convention gives atan2(im, re) = -phase.
  EXPECT_NEAR(std::fabs(t.phase), phase, 0.05);
}

TEST(Signal, ProjectToneIgnoresOtherFrequencies) {
  const double dt = 0.002;
  const auto x = sine(1.0, 7.0, dt, 3500);  // integer periods of 7 Hz
  const ToneEstimate t = project_tone(x, dt, kTwoPi * 19.0);
  EXPECT_LT(t.amplitude, 0.02);
}

TEST(Signal, SpectrumFrequencyAxisEndsNearNyquist) {
  const double dt = 0.01;
  const Spectrum s = amplitude_spectrum(sine(1.0, 3.0, dt, 256), dt, true);
  EXPECT_NEAR(s.frequency.back(), 0.5 / dt, 1.0 / (256 * dt) + 1e-12);
}

}  // namespace
}  // namespace nsp::io
