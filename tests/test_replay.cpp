// Mechanics of the replay engine (the paper-claim assertions live in
// test_paper_claims.cpp).
#include "perf/replay.hpp"

#include "exec/run_result.hpp"

#include <gtest/gtest.h>

namespace nsp::perf {
namespace {

using arch::Equations;
using arch::Platform;

AppModel ns() { return AppModel::paper(Equations::NavierStokes); }

TEST(Replay, SingleProcessorTimeIsPureCompute) {
  const auto r = replay(ns(), Platform::lace560_allnode_s(), 1);
  EXPECT_NEAR(r.exec_time, r.ranks[0].compute, 1e-6);
  EXPECT_EQ(r.ranks[0].sends, 0u);
  EXPECT_DOUBLE_EQ(r.ranks[0].wait, 0.0);
}

TEST(Replay, SingleProcessorMatchesCpuModel) {
  const auto app = ns();
  const auto plat = Platform::lace560_allnode_s();
  const auto r = replay(app, plat, 1);
  const double expected = plat.cpu.seconds(app.profile, app.points()) * app.steps;
  EXPECT_NEAR(r.exec_time, expected, 1e-6 * expected);
}

TEST(Replay, ExecTimeIsMaxOfRankFinishTimes) {
  const auto r = replay(ns(), Platform::lace560_allnode_s(), 8);
  double m = 0;
  for (const auto& rk : r.ranks) m = std::max(m, rk.finish);
  EXPECT_DOUBLE_EQ(r.exec_time, m);
  EXPECT_EQ(r.ranks.size(), 8u);
}

TEST(Replay, MessageCountsMatchSchedule) {
  const auto app = ns();
  const auto r = replay(app, Platform::lace560_allnode_s(), 16);
  // Interior rank: 8 sends/step.
  EXPECT_NEAR(static_cast<double>(r.ranks[7].sends), 8.0 * app.steps, 8.0);
  // Edge rank sends only inward.
  EXPECT_LT(r.ranks[0].sends, r.ranks[7].sends);
}

TEST(Replay, ByteCountsMatchTable1) {
  const auto app = ns();
  const auto r = replay(app, Platform::lace560_allnode_s(), 16);
  EXPECT_NEAR(r.ranks[7].bytes_sent, app.volume_per_proc(16),
              0.01 * app.volume_per_proc(16));
}

TEST(Replay, ScalingFromSimStepsIsConsistent) {
  // Simulating 200 vs 400 steps and scaling must agree closely (the
  // schedule is periodic).
  ReplayOptions a, b;
  a.sim_steps = 200;
  b.sim_steps = 400;
  const auto ra = replay(ns(), Platform::lace560_allnode_s(), 8, a);
  const auto rb = replay(ns(), Platform::lace560_allnode_s(), 8, b);
  EXPECT_NEAR(ra.exec_time, rb.exec_time, 0.02 * rb.exec_time);
}

TEST(Replay, BusySplitsIntoComputeAndOverhead) {
  const auto r = replay(ns(), Platform::lace560_allnode_s(), 8);
  const auto& rk = r.ranks[3];
  EXPECT_GT(rk.compute, 0.0);
  EXPECT_GT(rk.sw_overhead, 0.0);
  EXPECT_DOUBLE_EQ(rk.busy(), rk.compute + rk.sw_overhead);
  EXPECT_LT(rk.busy() + rk.wait, rk.finish * 1.01);
}

TEST(Replay, PerfectNetworkStillPaysSoftwareOverheads) {
  auto plat = Platform::lace560_allnode_s();
  plat.net = arch::NetKind::Perfect;
  const auto r = replay(ns(), plat, 8);
  EXPECT_GT(r.ranks[3].sw_overhead, 0.0);
}

TEST(Replay, SharedMemoryPathHasNoMessages) {
  const auto r = replay(ns(), Platform::cray_ymp(), 8);
  for (const auto& rk : r.ranks) {
    EXPECT_EQ(rk.sends, 0u);
    EXPECT_DOUBLE_EQ(rk.wait, 0.0);
  }
  EXPECT_EQ(r.nprocs, 8);
}

TEST(Replay, SharedMemoryAmdahlScaling) {
  const auto r1 = replay(ns(), Platform::cray_ymp(), 1);
  const auto r8 = replay(ns(), Platform::cray_ymp(), 8);
  const double speedup = r1.exec_time / r8.exec_time;
  EXPECT_GT(speedup, 6.5);
  EXPECT_LT(speedup, 8.0);  // Amdahl + sync keep it under ideal
}

TEST(Replay, DeterministicAcrossRuns) {
  const auto a = replay(ns(), Platform::cray_t3d(), 16);
  const auto b = replay(ns(), Platform::cray_t3d(), 16);
  EXPECT_DOUBLE_EQ(a.exec_time, b.exec_time);
  EXPECT_DOUBLE_EQ(exec::avg_wait(a), exec::avg_wait(b));
}

TEST(Replay, AggregatesConsistent) {
  const auto r = replay(ns(), Platform::ibm_sp_mpl(), 8);
  EXPECT_GT(exec::total_messages(r), 0.0);
  EXPECT_GT(exec::total_bytes(r), 0.0);
  EXPECT_GE(exec::max_busy(r), exec::avg_busy(r));
}

TEST(Replay, DashScalesAlmostPerfectly) {
  // Implicit cc-NUMA communication removes the start-up tax: efficiency
  // at 16 processors stays high despite the slow node.
  const auto r1 = replay(ns(), Platform::dash(), 1);
  const auto r16 = replay(ns(), Platform::dash(), 16);
  const double eff = r1.exec_time / r16.exec_time / 16.0;
  EXPECT_GT(eff, 0.8);
  // But the 33 MHz node keeps absolute time behind the T3D at 16.
  EXPECT_GT(r16.exec_time, replay(ns(), Platform::cray_t3d(), 16).exec_time);
}

TEST(Replay, DashCoherenceCostIsVisibleButSmall) {
  const auto p1 = replay(ns(), Platform::dash(), 8);
  auto no_numa = Platform::dash();
  no_numa.numa_remote_miss_s = 0;
  const auto p2 = replay(ns(), no_numa, 8);
  EXPECT_GT(p1.exec_time, p2.exec_time);
  EXPECT_LT(p1.exec_time, 1.15 * p2.exec_time);
}

TEST(Replay, TwoProcessorsHalveComputeTime) {
  const auto r1 = replay(ns(), Platform::lace590_allnode_f(), 1);
  const auto r2 = replay(ns(), Platform::lace590_allnode_f(), 2);
  EXPECT_NEAR(r2.ranks[0].compute, r1.ranks[0].compute / 2.0,
              0.02 * r1.ranks[0].compute);
}

}  // namespace
}  // namespace nsp::perf
