#include "arch/cache.hpp"

#include <gtest/gtest.h>

namespace nsp::arch {
namespace {

CacheGeometry small_dm() { return {1024, 32, 1}; }

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c(small_dm());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheSim, SpatialLocalityWithinLine) {
  CacheSim c(small_dm());
  c.access(0);          // miss, loads bytes 0-31
  EXPECT_TRUE(c.access(8));
  EXPECT_TRUE(c.access(24));
  EXPECT_FALSE(c.access(32));  // next line
}

TEST(CacheSim, DirectMappedConflict) {
  CacheSim c(small_dm());  // 32 sets
  const std::uint64_t stride = 1024;  // same set, different tag
  c.access(0);
  c.access(stride);
  EXPECT_FALSE(c.access(0));  // evicted by the conflicting line
  EXPECT_EQ(c.misses(), 3u);
}

TEST(CacheSim, AssociativityResolvesConflict) {
  CacheSim c({1024, 32, 2});
  c.access(0);
  c.access(1024);
  EXPECT_TRUE(c.access(0));  // both fit in a 2-way set
}

TEST(CacheSim, LruEvictsOldest) {
  CacheSim c({128, 32, 2});  // 2 sets, 2 ways
  // All in set 0: line addresses 0, 2, 4 (x 32 bytes) -> addr 0, 64, 128...
  // set = line % 2, so even lines map to set 0.
  c.access(0);        // line 0
  c.access(128);      // line 4, set 0
  c.access(0);        // touch line 0 (now MRU)
  c.access(256);      // line 8, set 0: evicts line 4
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(128));
}

TEST(CacheSim, WritebackCountsDirtyEvictions) {
  CacheSim c(small_dm());
  c.access(0, 8, /*write=*/true);
  c.access(1024, 8, false);  // evicts dirty line 0
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheSim, AccessSpanningTwoLines) {
  CacheSim c(small_dm());
  EXPECT_FALSE(c.access(30, 8));  // crosses the 32-byte boundary
  EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheSim, ClearResetsEverything) {
  CacheSim c(small_dm());
  c.access(0);
  c.clear();
  EXPECT_EQ(c.hits() + c.misses(), 0u);
  EXPECT_FALSE(c.access(0));
}

TEST(CacheSim, InvalidGeometriesThrow) {
  EXPECT_THROW(CacheSim({1024, 33, 1}), std::invalid_argument);  // non-pow2 line
  EXPECT_THROW(CacheSim({1024, 32, 0}), std::invalid_argument);
  EXPECT_THROW(CacheSim({64, 32, 3}), std::invalid_argument);  // 2 lines, 3-way
}

TEST(CacheSim, MissRatioComputed) {
  CacheSim c(small_dm());
  c.access(0);
  c.access(0);
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.miss_ratio(), 0.25);
}

// ---- The paper's cache-design story on real sweep traces ----

double sweep_miss_ratio(CacheGeometry g, bool stride1_radial) {
  // The paper's production grid (250 x 100) with a representative set of
  // live arrays: grid size matters, because the Version-1 column working
  // set (arrays x nj x line) only overflows realistic caches at real
  // problem sizes.
  std::vector<std::uint64_t> trace;
  append_sweep_trace(trace, 250, 100, 8, stride1_radial);
  CacheSim c(g);
  for (std::uint64_t a : trace) c.access(a);
  return c.miss_ratio();
}

TEST(SweepTrace, LoopInterchangeCutsMissesOnLaceCache) {
  // Version 3's stride-1 radial sweeps miss far less than the Version 1
  // order on the 560's 64 KB cache: this is the paper's "improved cache
  // performance was the key" (+50%) optimization.
  const CacheGeometry lace560{64 * 1024, 128, 4};
  const double bad = sweep_miss_ratio(lace560, false);
  const double good = sweep_miss_ratio(lace560, true);
  EXPECT_LT(good, 0.3 * bad);
}

TEST(SweepTrace, BigSetAssociativeCacheForgivesBadStride) {
  // On the 590's 256 KB 4-way cache the column working set fits, so even
  // the non-interchanged order performs acceptably.
  const CacheGeometry big{256 * 1024, 256, 4};
  const double bad = sweep_miss_ratio(big, false);
  EXPECT_LT(bad, 0.05);
}

TEST(SweepTrace, T3dCacheWorseThanLaceCache) {
  // The paper's central hardware claim: the 8 KB direct-mapped T3D
  // cache performs much worse than the LACE 64 KB 4-way cache on the
  // same access pattern, even with perfect stride.
  const double t3d = sweep_miss_ratio({8 * 1024, 32, 1}, true);
  const double lace = sweep_miss_ratio({64 * 1024, 128, 4}, true);
  EXPECT_GT(t3d, 3.0 * lace);
}

TEST(SweepTrace, TraceNonEmptyAndAligned) {
  std::vector<std::uint64_t> trace;
  append_sweep_trace(trace, 16, 8, 2, true);
  ASSERT_FALSE(trace.empty());
  for (std::uint64_t a : trace) EXPECT_EQ(a % 8, 0u);
}

}  // namespace
}  // namespace nsp::arch
