// The batch experiment engine: scenario identity, platform registry
// round-trips, work-stealing pool mechanics, memo-cache semantics,
// cancellation, and the headline guarantee — a parallel sweep is
// bit-identical to the serial reference run.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.hpp"
#include "nsp.hpp"

namespace nsp::exec {
namespace {

/// A cheap sweep: small grid, low replay fidelity, several platforms
/// and processor counts so the pool has real work to shuffle.
std::vector<Scenario> small_sweep() {
  std::vector<Scenario> sweep;
  for (const char* key : {"lace-allnode-s", "lace-ethernet", "sp-mpl", "t3d"}) {
    for (int p : {1, 2, 4, 8}) {
      sweep.push_back(Scenario::jet(50, 20, 100).sim_steps(25).platform(key)
                          .threads(p));
    }
  }
  return sweep;
}

// ---- Scenario identity -------------------------------------------------

TEST(Scenario, KeyChangesWithEveryAxis) {
  const auto base = Scenario::jet250x100();
  std::set<std::string> keys;
  keys.insert(base.key());
  keys.insert(Scenario(base).euler().key());
  keys.insert(Scenario(base).version(arch::CodeVersion::V7_UnbundledSends).key());
  keys.insert(Scenario(base).platform("t3d").key());
  keys.insert(Scenario(base).msglayer("pvm").key());
  keys.insert(Scenario(base).network(arch::NetKind::Fddi).key());
  keys.insert(Scenario(base).threads(4).key());
  keys.insert(Scenario(base).grid2d(2).key());
  keys.insert(Scenario(base).steps(1234).key());
  keys.insert(Scenario(base).sim_steps(50).key());
  keys.insert(Scenario(base).seed(99).key());
  EXPECT_EQ(keys.size(), 11u);  // every axis distinct
}

TEST(Scenario, LabelChangesKeyButNotCacheKey) {
  const auto plain = Scenario::jet250x100();
  const auto tagged = Scenario(plain).label("curve A");
  EXPECT_NE(plain.key(), tagged.key());
  EXPECT_EQ(plain.cache_key(), tagged.cache_key());
  EXPECT_EQ(plain.content_hash(), tagged.content_hash());
  EXPECT_EQ(plain.derived_seed(), tagged.derived_seed());
}

TEST(Scenario, DerivedSeedMixesBaseSeed) {
  const auto a = Scenario::jet250x100();
  const auto b = Scenario(a).seed(1);
  EXPECT_NE(a.derived_seed(), b.derived_seed());
  EXPECT_EQ(a.derived_seed(), Scenario(a).derived_seed());  // stable
}

TEST(Scenario, BuilderProducesLegacyStructs) {
  const auto s = Scenario::jet250x100().platform("t3d-64").msglayer("cray-pvm")
                     .threads(32);
  const arch::Platform p = s.platform_model();
  EXPECT_EQ(p.max_procs, 64);
  EXPECT_EQ(p.msglayer.name, arch::MsgLayerModel::pvm_t3d().name);
  EXPECT_EQ(s.resolved_procs(), 32);

  const perf::AppModel app = s.app_model();
  EXPECT_EQ(app.ni, 250);
  EXPECT_EQ(app.nj, 100);
  EXPECT_EQ(app.steps, 5000);

  const auto sv = Scenario::solve(60, 24, 10);
  const core::SolverConfig cfg = sv.solver_config();
  EXPECT_EQ(cfg.grid.ni, 60);
  EXPECT_EQ(cfg.grid.nj, 24);
}

TEST(Scenario, ThreadsZeroResolvesToPlatformMax) {
  EXPECT_EQ(Scenario::jet250x100().platform("t3d").resolved_procs(),
            make_platform("t3d").max_procs);
  EXPECT_EQ(Scenario::jet250x100().platform("t3d-64").resolved_procs(), 64);
}

// ---- Platform registry -------------------------------------------------

TEST(Registry, RoundTripsEveryBuiltinName) {
  const auto names = platform_names();
  ASSERT_FALSE(names.empty());
  for (const auto& key : names) {
    ASSERT_TRUE(has_platform(key)) << key;
    const arch::Platform p = make_platform(key);
    EXPECT_FALSE(p.name.empty()) << key;
    EXPECT_GE(p.max_procs, 1) << key;
    // The "-<procs>" suffix resizes any platform.
    const arch::Platform p8 = make_platform(key + "-8");
    EXPECT_EQ(p8.max_procs, 8) << key;
    EXPECT_EQ(p8.name, p.name) << key;
  }
}

TEST(Registry, UnknownNameThrowsWithKnownKeys) {
  EXPECT_FALSE(has_platform("connection-machine"));
  try {
    make_platform("connection-machine");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("t3d"), std::string::npos);
  }
}

TEST(Registry, UserPlatformsJoinTheZoo) {
  arch::Platform mine = make_platform("sp-mpl");
  mine.name = "my cluster";
  mine.max_procs = 12;
  register_platform("my-cluster", mine);
  ASSERT_TRUE(has_platform("my-cluster"));
  EXPECT_EQ(make_platform("my-cluster").name, "my cluster");
  EXPECT_EQ(make_platform("my-cluster-4").max_procs, 4);
  // Keys ending in "-<digits>" are reserved for the procs suffix.
  EXPECT_THROW(register_platform("bad-16", mine), std::invalid_argument);
  EXPECT_THROW(register_platform("", mine), std::invalid_argument);
}

TEST(Registry, MsgLayerRoundTrip) {
  for (const auto& key : msglayer_names()) {
    EXPECT_FALSE(make_msglayer(key).name.empty()) << key;
  }
  EXPECT_THROW(make_msglayer("smoke-signals"), std::invalid_argument);
}

// ---- Work-stealing pool ------------------------------------------------

TEST(Pool, RunsEveryTaskOnce) {
  WorkStealingPool pool(4);
  std::atomic<int> hits{0};
  for (int k = 0; k < 200; ++k) pool.submit([&] { ++hits; });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 200);
  const auto st = pool.stats();
  EXPECT_EQ(st.queued, 200u);
  EXPECT_EQ(st.executed, 200u);
}

TEST(Pool, InlineModeExecutesOnCaller) {
  WorkStealingPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.submit([&] { ran = std::this_thread::get_id(); });
  pool.wait_idle();
  EXPECT_EQ(ran, caller);
  EXPECT_EQ(pool.threads(), 1);
}

// ---- Engine: determinism ----------------------------------------------

TEST(Engine, ParallelRunIsBitIdenticalToSerial) {
  const auto sweep = small_sweep();

  EngineOptions serial;
  serial.threads = 1;
  Engine ref(serial);
  const ResultSet a = ref.run(sweep);

  EngineOptions wide;
  wide.threads = 8;  // oversubscribed on small hosts; determinism holds
  Engine par(wide);
  const ResultSet b = par.run(sweep);

  ASSERT_EQ(a.results.size(), sweep.size());
  EXPECT_TRUE(a == b);              // exact double bits, all cells
  EXPECT_EQ(a.to_json(), b.to_json());  // and byte-identical artifacts
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Engine, ModernReplayAtTenThousandRanksIsDeterministic) {
  // The scaling pass (bench_scaling_modern, docs/PLATFORMS.md §6) leans
  // on replays far past the 1995 machine sizes. The DES must stay
  // bit-reproducible there: a threaded sweep of 10^4-rank cells on the
  // modern platforms — overlap on and off — serializes byte-identically
  // to the serial reference engine.
  std::vector<Scenario> sweep;
  for (const char* key : {"ib-fattree", "gpu-fattree"}) {
    for (const bool ov : {false, true}) {
      sweep.push_back(Scenario::jet(512, 512, 100)
                          .sim_steps(4)
                          .platform(key)
                          .grid2d(128)
                          .threads(10240)
                          .overlap_comm(ov));
    }
  }

  EngineOptions serial;
  serial.threads = 1;
  Engine ref(serial);
  const ResultSet a = ref.run(sweep);

  EngineOptions wide;
  wide.threads = 8;
  Engine par(wide);
  const ResultSet b = par.run(sweep);

  ASSERT_EQ(a.results.size(), sweep.size());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.to_json(), b.to_json());
  for (const auto& r : a.results) {
    EXPECT_GT(r.metric("exec_s"), 0.0) << r.key;
  }
}

TEST(Engine, ResultSetIsSortedByKey) {
  Engine eng;
  const ResultSet rs = eng.run(small_sweep());
  for (std::size_t k = 1; k < rs.results.size(); ++k) {
    EXPECT_LE(rs.results[k - 1].key, rs.results[k].key);
  }
}

TEST(Engine, RunScenarioMatchesEngineCell) {
  const auto s = Scenario::jet(50, 20, 100).sim_steps(25).platform("t3d")
                     .threads(4);
  Engine eng;
  const ResultSet rs = eng.run({s});
  const RunResult* cell = rs.find(s.key());
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(*cell == Engine::run_scenario(s));
}

// ---- Engine: memo cache ------------------------------------------------

TEST(Engine, SecondRunIsAllCacheHits) {
  const auto sweep = small_sweep();
  Engine eng;
  const ResultSet first = eng.run(sweep);
  EXPECT_EQ(eng.counters().executed, sweep.size());
  EXPECT_EQ(eng.counters().cache_hits, 0u);

  const ResultSet second = eng.run(sweep);
  EXPECT_EQ(eng.counters().executed, sweep.size());  // nothing recomputed
  EXPECT_EQ(eng.counters().cache_hits, sweep.size());
  EXPECT_TRUE(first == second);
  for (const auto& r : second.results) EXPECT_TRUE(r.from_cache);
}

TEST(Engine, ChangedAxisRecomputesOnlyChangedCells) {
  auto sweep = small_sweep();
  Engine eng;
  eng.run(sweep);
  const auto computed = eng.counters().executed;

  sweep[5] = Scenario(sweep[5]).sim_steps(31);  // nudge one axis of one cell
  eng.run(sweep);
  EXPECT_EQ(eng.counters().executed, computed + 1);
  EXPECT_EQ(eng.counters().cache_hits, sweep.size() - 1);
}

TEST(Engine, CacheIsContentAddressedAcrossLabels) {
  const auto plain = Scenario::jet(50, 20, 100).sim_steps(25).platform("ymp");
  Engine eng;
  eng.run({plain});
  const ResultSet rs = eng.run({Scenario(plain).label("curve A")});
  EXPECT_EQ(eng.counters().cache_hits, 1u);  // same content, new label
  ASSERT_EQ(rs.results.size(), 1u);
  EXPECT_EQ(rs.results[0].label, "curve A");  // identity restamped
  EXPECT_TRUE(rs.results[0].from_cache);
}

TEST(Engine, CacheCanBeDisabledAndCleared) {
  const auto s = Scenario::jet(50, 20, 100).sim_steps(25);
  EngineOptions no_cache;
  no_cache.cache = false;
  Engine eng(no_cache);
  eng.run({s});
  eng.run({s});
  EXPECT_EQ(eng.counters().executed, 2u);
  EXPECT_EQ(eng.counters().cache_hits, 0u);
  EXPECT_EQ(eng.cache_size(), 0u);

  Engine cached;
  cached.run({s});
  EXPECT_EQ(cached.cache_size(), 1u);
  cached.clear_cache();
  EXPECT_EQ(cached.cache_size(), 0u);
  cached.run({s});
  EXPECT_EQ(cached.counters().executed, 2u);
}

// ---- Engine: hooks and cancellation ------------------------------------

TEST(Engine, HooksReportMonotonicProgress) {
  const auto sweep = small_sweep();
  Engine eng;
  std::size_t calls = 0, last_done = 0;
  RunHooks hooks;
  hooks.on_result = [&](const RunResult&, std::size_t done, std::size_t total) {
    EXPECT_EQ(total, sweep.size());
    EXPECT_GT(done, last_done);  // hooks are serialized
    last_done = done;
    ++calls;
  };
  eng.run(sweep, hooks);
  EXPECT_EQ(calls, sweep.size());
  EXPECT_EQ(last_done, sweep.size());
}

TEST(Engine, CancelMidSweepSkipsRemainingScenarios) {
  const auto sweep = small_sweep();
  EngineOptions serial;  // serial: deterministic cancellation point
  serial.threads = 1;
  Engine eng(serial);
  RunHooks hooks;
  hooks.on_result = [&](const RunResult&, std::size_t done, std::size_t) {
    if (done == 3) eng.cancel();
  };
  const ResultSet rs = eng.run(sweep, hooks);
  EXPECT_EQ(rs.results.size(), 3u);
  EXPECT_EQ(eng.counters().cancelled, sweep.size() - 3);
  EXPECT_TRUE(eng.cancelled());

  // The engine recovers: the next run() clears the flag and finishes.
  const ResultSet again = eng.run(sweep);
  EXPECT_FALSE(eng.cancelled());
  EXPECT_EQ(again.results.size(), sweep.size());
}

TEST(Engine, CancelInterruptsLiveSolves) {
  // Solve workloads poll cancellation between step chunks, so a sweep
  // of live solver runs stops promptly too.
  std::vector<Scenario> sweep;
  for (int k = 0; k < 4; ++k) {
    sweep.push_back(Scenario::solve(40, 16, 60).seed(k));
  }
  EngineOptions serial;
  serial.threads = 1;
  Engine eng(serial);
  RunHooks hooks;
  hooks.on_result = [&](const RunResult&, std::size_t, std::size_t) {
    eng.cancel();
  };
  const ResultSet rs = eng.run(sweep, hooks);
  EXPECT_LT(rs.results.size(), sweep.size());
  EXPECT_GT(eng.counters().cancelled, 0u);
}

// ---- Engine: counters --------------------------------------------------

TEST(Engine, CountersAccumulateAcrossRuns) {
  const auto sweep = small_sweep();
  Engine eng;
  eng.run(sweep);
  eng.run(sweep);
  const auto& c = eng.counters();
  EXPECT_EQ(c.submitted, 2 * sweep.size());
  EXPECT_EQ(c.executed, sweep.size());
  EXPECT_EQ(c.cache_hits, sweep.size());
  EXPECT_GT(c.wall_s, 0.0);
  EXPECT_GT(c.task_s, 0.0);
  EXPECT_GE(c.threads, 1);
  EXPECT_GE(c.utilization(), 0.0);
  EXPECT_LE(c.utilization(), 1.05);  // small timer slack
}

// ---- RunResult / ResultSet ---------------------------------------------

TEST(RunResult, MetricAccessAndIdentity) {
  RunResult r;
  r.key = "k";
  r.set("exec_s", 1.5);
  r.set("exec_s", 2.5);  // overwrite, not append
  ASSERT_EQ(r.metrics.size(), 1u);
  EXPECT_TRUE(r.has("exec_s"));
  EXPECT_FALSE(r.has("bytes"));
  EXPECT_DOUBLE_EQ(r.metric("exec_s"), 2.5);
  EXPECT_THROW(r.metric("bytes"), std::out_of_range);

  RunResult s = r;
  s.wall_s = 123.0;
  s.from_cache = true;
  EXPECT_TRUE(r == s);  // bookkeeping excluded from identity
  s.set("exec_s", 2.5000001);
  EXPECT_FALSE(r == s);
}

TEST(RunResult, ReplayAggregatesMatchDefinition) {
  const auto app = perf::AppModel::paper(arch::Equations::NavierStokes);
  const auto rr = perf::replay(app, arch::Platform::lace560_allnode_s(), 4);
  double busy = 0, wait = 0, mx = 0;
  for (const auto& rank : rr.ranks) {
    busy += rank.busy();  // compute + message-layer software overhead
    wait += rank.wait;
    mx = std::max(mx, rank.busy());
  }
  EXPECT_DOUBLE_EQ(avg_busy(rr), busy / 4.0);
  EXPECT_DOUBLE_EQ(avg_wait(rr), wait / 4.0);
  EXPECT_DOUBLE_EQ(max_busy(rr), mx);
  EXPECT_GT(total_messages(rr), 0.0);
  EXPECT_GT(total_bytes(rr), 0.0);

  RunResult out;
  set_replay_metrics(out, rr);
  EXPECT_DOUBLE_EQ(out.metric("exec_s"), rr.exec_time);
  EXPECT_DOUBLE_EQ(out.metric("busy_avg_s"), avg_busy(rr));
  EXPECT_DOUBLE_EQ(out.metric("wait_avg_s"), avg_wait(rr));
}

TEST(ResultSet, FindAndSerializationAreStable) {
  Engine eng;
  const auto s1 = Scenario::jet(50, 20, 100).sim_steps(25).platform("ymp")
                      .label("Y-MP");
  const auto s2 = Scenario::jet(50, 20, 100).sim_steps(25).platform("t3d");
  const ResultSet rs = eng.run({s1, s2});
  ASSERT_NE(rs.find(s1.key()), nullptr);
  ASSERT_NE(rs.find_label("Y-MP"), nullptr);
  EXPECT_EQ(rs.find("nope"), nullptr);
  EXPECT_EQ(rs.find_label("nope"), nullptr);

  const std::string json = rs.to_json();
  EXPECT_NE(json.find("\"exec_s\""), std::string::npos);
  EXPECT_NE(json.find("Y-MP"), std::string::npos);
  const std::string csv = rs.to_csv();
  EXPECT_NE(csv.find("key,"), std::string::npos);
  // Serialization is a pure function of the results.
  EXPECT_EQ(json, rs.to_json());
  EXPECT_EQ(csv, rs.to_csv());
}

// ---- Workloads beyond replay -------------------------------------------

TEST(Engine, SolveWorkloadProducesSolverMetrics) {
  const auto s = Scenario::solve(40, 16, 12);
  const RunResult r = Engine::run_scenario(s);
  EXPECT_DOUBLE_EQ(r.metric("steps"), 12.0);
  EXPECT_EQ(r.metric("finite"), 1.0);
  EXPECT_GT(r.metric("sim_time_s"), 0.0);
  EXPECT_TRUE(r.has("max_mach"));
}

TEST(Engine, NetProbeWorkloadProducesNetworkMetrics) {
  const RunResult r = Engine::run_scenario(Scenario::net_probe("lace-fddi-8"));
  EXPECT_GT(r.metric("latency_us"), 0.0);
  EXPECT_GT(r.metric("bw_64k_MBps"), r.metric("bw_1k_MBps"));
  EXPECT_GT(r.metric("aggregate_MBps"), 0.0);
}

}  // namespace
}  // namespace nsp::exec
