#include "arch/network.hpp"

#include <gtest/gtest.h>

namespace nsp::arch {
namespace {

/// Runs one transfer and returns its delivery time.
template <typename Net, typename... Args>
double one_transfer(std::size_t bytes, int src, int dst, Args&&... args) {
  sim::Simulator s;
  Net net(s, std::forward<Args>(args)...);
  double delivered = -1;
  net.transmit(src, dst, bytes, [&] { delivered = s.now(); });
  s.run();
  return delivered;
}

TEST(PerfectNetwork, DeliversInstantly) {
  sim::Simulator s;
  PerfectNetwork net(s);
  double t = -1;
  net.transmit(0, 1, 1 << 20, [&] { t = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(Ethernet, TransferTimeMatchesWireRate) {
  // 1460 payload bytes + 38 overhead at 10 Mb/s x 0.70 CSMA efficiency.
  const double t = one_transfer<EthernetBus>(1460, 0, 1);
  EXPECT_NEAR(t, (1460 + 38) * 8.0 / (10e6 * 0.70), 1e-9);
}

TEST(Ethernet, LargerMessagesPayMoreFrameOverhead) {
  const double t1 = one_transfer<EthernetBus>(1460, 0, 1);
  const double t2 = one_transfer<EthernetBus>(2920, 0, 1);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

TEST(Ethernet, SharedMediumSerializesAllPairs) {
  // Transfers between disjoint pairs still contend: it is one bus.
  sim::Simulator s;
  EthernetBus net(s);
  double t01 = -1, t23 = -1;
  net.transmit(0, 1, 1460, [&] { t01 = s.now(); });
  net.transmit(2, 3, 1460, [&] { t23 = s.now(); });
  s.run();
  EXPECT_NEAR(t23, 2.0 * t01, 1e-9);
}

TEST(Ethernet, UtilizationReported) {
  sim::Simulator s;
  EthernetBus net(s);
  double unused = 0;
  net.transmit(0, 1, 14600, [&] { unused = s.now(); });
  s.run();
  (void)unused;
  EXPECT_NEAR(net.utilization(), 1.0, 1e-9);  // busy the whole elapsed time
  EXPECT_GT(net.bytes_sent(), 0.0);
}

TEST(Fddi, TokenSerializesButFasterThanEthernet) {
  sim::Simulator s1, s2;
  FddiRing fddi(s1, 16);
  EthernetBus eth(s2);
  double tf = -1, te = -1;
  fddi.transmit(0, 1, 8000, [&] { tf = s1.now(); });
  eth.transmit(0, 1, 8000, [&] { te = s2.now(); });
  s1.run();
  s2.run();
  EXPECT_LT(tf, te);
}

TEST(Fddi, TokenRotationGrowsWithStations) {
  const double small = one_transfer<FddiRing>(100, 0, 1, 4);
  const double big = one_transfer<FddiRing>(100, 0, 1, 64);
  EXPECT_GT(big, small);
}

TEST(Fddi, RequiresTwoStations) {
  sim::Simulator s;
  EXPECT_THROW(FddiRing(s, 1), std::invalid_argument);
}

TEST(Atm, CellTaxAppliedTo48of53) {
  const double t = one_transfer<AtmSwitch>(4800, 0, 1, 16);
  const double wire = 4800.0 * (53.0 / 48.0) * 8.0 / 155e6;
  EXPECT_NEAR(t, wire + 10e-6, 1e-9);
}

TEST(Atm, DisjointPairsDoNotContend) {
  sim::Simulator s;
  AtmSwitch net(s, 4);
  double t01 = -1, t23 = -1;
  net.transmit(0, 1, 48000, [&] { t01 = s.now(); });
  net.transmit(2, 3, 48000, [&] { t23 = s.now(); });
  s.run();
  EXPECT_NEAR(t01, t23, 1e-12);  // full crossbar: parallel transfers
}

TEST(Atm, SameDestinationSerializes) {
  sim::Simulator s;
  AtmSwitch net(s, 4);
  double first = -1, second = -1;
  net.transmit(0, 3, 48000, [&] { first = s.now(); });
  net.transmit(1, 3, 48000, [&] { second = s.now(); });
  s.run();
  EXPECT_GT(second, 1.9 * first);
}

TEST(Omega, AllnodeFTwiceAsFastAsAllnodeS) {
  sim::Simulator s1, s2;
  auto f = OmegaSwitch::allnode_f(s1, 16);
  auto sw = OmegaSwitch::allnode_s(s2, 16);
  double tf = -1, ts = -1;
  f->transmit(0, 1, 64000, [&] { tf = s1.now(); });
  sw->transmit(0, 1, 64000, [&] { ts = s2.now(); });
  s1.run();
  s2.run();
  EXPECT_NEAR(ts / tf, 2.0, 0.05);
}

TEST(Omega, MultiplePathsMeanNoInternalContention) {
  sim::Simulator s;
  auto net = OmegaSwitch::allnode_s(s, 8);
  std::vector<double> done(4, -1);
  // Four disjoint pairs transmit simultaneously.
  for (int k = 0; k < 4; ++k) {
    net->transmit(2 * k, 2 * k + 1, 32000,
                  [&done, k, &s] { done[static_cast<std::size_t>(k)] = s.now(); });
  }
  s.run();
  for (int k = 1; k < 4; ++k) {
    EXPECT_NEAR(done[static_cast<std::size_t>(k)], done[0], 1e-12);
  }
}

TEST(Omega, SpSwitchFasterThanAllnode) {
  sim::Simulator s1, s2;
  auto sp = OmegaSwitch::sp_switch(s1, 16);
  auto an = OmegaSwitch::allnode_f(s2, 16);
  EXPECT_GT(sp->link_bandwidth_Bps(), an->link_bandwidth_Bps());
}

TEST(Torus, HopCountsFollowDimensionOrderRouting) {
  sim::Simulator s;
  Torus3D t(s, 8, 4, 2);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 1);   // +x
  EXPECT_EQ(t.hops(0, 8), 1);   // +y
  EXPECT_EQ(t.hops(0, 32), 1);  // +z
  EXPECT_EQ(t.hops(0, 7), 1);   // x wraps around: 8-ring
  EXPECT_EQ(t.hops(0, 4), 4);   // half way around the x ring
  EXPECT_EQ(t.hops(0, 9), 2);   // +x then +y
}

TEST(Torus, TransferTimeIncludesPerHopLatency) {
  sim::Simulator s;
  Torus3D t(s, 8, 4, 2, 150e6, 2e-6);
  double one = -1, two = -1;
  t.transmit(0, 1, 15000, [&] { one = s.now(); });
  s.run();
  sim::Simulator s2;
  Torus3D t2(s2, 8, 4, 2, 150e6, 2e-6);
  t2.transmit(0, 9, 15000, [&] { two = s2.now(); });
  s2.run();
  EXPECT_NEAR(one, 2e-6 + 15000 / 150e6, 1e-9);
  EXPECT_NEAR(two, 2.0 * one, 1e-9);  // store-and-forward over 2 hops
}

TEST(Torus, OppositeDirectionsDoNotContend) {
  sim::Simulator s;
  Torus3D t(s, 8, 4, 2);
  double a = -1, b = -1;
  t.transmit(0, 1, 150000, [&] { a = s.now(); });
  t.transmit(1, 0, 150000, [&] { b = s.now(); });
  s.run();
  EXPECT_NEAR(a, b, 1e-12);  // full-duplex links
}

TEST(Torus, SameLinkSerializes) {
  sim::Simulator s;
  Torus3D t(s, 8, 4, 2);
  double a = -1, b = -1;
  t.transmit(0, 1, 150000, [&] { a = s.now(); });
  t.transmit(0, 1, 150000, [&] { b = s.now(); });
  s.run();
  EXPECT_GT(b, 1.9 * a);
}

TEST(Torus, SelfSendDeliversImmediately) {
  sim::Simulator s;
  Torus3D t(s, 8, 4, 2);
  double a = -1;
  t.transmit(3, 3, 1000, [&] { a = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Torus, PaperMachineIs8x4x2) {
  sim::Simulator s;
  Torus3D t(s);  // defaults
  // rank 63 = (7,3,1): each coordinate is one wrap-hop from the origin.
  EXPECT_EQ(t.hops(0, 63), 3);
  // The true antipode (4,2,1) is 4+2+1 hops away.
  EXPECT_EQ(t.hops(0, 4 + 2 * 8 + 1 * 32), 7);
}

TEST(Torus, SizedForGrowsPastThePaperMachine) {
  // Regression: sized_for used to hand back the fixed 8x4x2 even when
  // the rank count exceeded its 64 nodes, so coord()/link_index() ran
  // out of range for rank >= 64. The grown torus must route between
  // high ranks and keep every <= 64-rank distance identical to the
  // paper machine.
  sim::Simulator s;
  auto t = Torus3D::sized_for(s, 100);  // 8x4x2 doubles to 8x4x4 = 128
  EXPECT_EQ(t->hops(0, 63), 3);         // paper-prefix distances intact
  double high = -1;
  t->transmit(64, 99, 15000, [&] { high = s.now(); });
  s.run();
  EXPECT_GT(high, 0.0);
  sim::Simulator s64;
  auto paper = Torus3D::sized_for(s64, 64);
  EXPECT_EQ(paper->hops(0, 4 + 2 * 8 + 1 * 32), 7);  // still exactly 8x4x2
}

// ---- Torus2D wormhole pricing ------------------------------------------

TEST(Torus2D, WormholePinsUncontendedLatency) {
  // The head pays hop_latency per link; the body streams once. Two hops
  // must cost 2 * hop + bytes/rate — not the 2 * (hop + bytes/rate) a
  // store-and-forward torus charges.
  const double one = one_transfer<Torus2D>(4096, 0, 1, 8, 8, 10e9, 50e-9);
  const double two = one_transfer<Torus2D>(4096, 0, 2, 8, 8, 10e9, 50e-9);
  EXPECT_NEAR(one, 50e-9 + 4096 / 10e9, 1e-15);
  EXPECT_NEAR(two, 2 * 50e-9 + 4096 / 10e9, 1e-15);
}

TEST(Torus2D, WrapAroundTakesShorterRing) {
  // Regression: ranks at opposite ring ends are ONE wrap hop apart, and
  // the priced latency must equal the single-hop time, not seven
  // forward hops around the ring.
  sim::Simulator s;
  Torus2D t(s, 8, 8, 10e9, 50e-9);
  EXPECT_EQ(t.hops(0, 7), 1);    // x wrap
  EXPECT_EQ(t.hops(0, 56), 1);   // y wrap (coord (0,7))
  EXPECT_EQ(t.hops(0, 63), 2);   // both wraps
  const double wrap = one_transfer<Torus2D>(4096, 0, 7, 8, 8, 10e9, 50e-9);
  EXPECT_NEAR(wrap, 50e-9 + 4096 / 10e9, 1e-15);
}

TEST(Torus2D, SelfSendChargesNothing) {
  // Regression: a self-send is delivered at the current instant and
  // must not occupy the sender's outgoing links — a huge rank-local
  // "message" cannot delay a real neighbour exchange behind it.
  sim::Simulator s;
  Torus2D t(s, 8, 8, 10e9, 50e-9);
  double self = -1, real = -1;
  t.transmit(2, 2, 1 << 26, [&] { self = s.now(); });
  t.transmit(2, 3, 4096, [&] { real = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(self, 0.0);
  EXPECT_NEAR(real, 50e-9 + 4096 / 10e9, 1e-15);
}

TEST(NetworkStats, MessageAndByteCountersAccumulate) {
  sim::Simulator s;
  auto net = OmegaSwitch::allnode_f(s, 4);
  net->transmit(0, 1, 100, [] {});
  net->transmit(1, 2, 200, [] {});
  s.run();
  EXPECT_EQ(net->messages_sent(), 2u);
  EXPECT_DOUBLE_EQ(net->bytes_sent(), 300.0);
}

}  // namespace
}  // namespace nsp::arch
