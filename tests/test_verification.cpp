#include "core/verification.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nsp::core {
namespace {

TEST(Verification, ObservedOrderExactForPowerLaw) {
  // e = C h^3.
  const double c = 2.5;
  EXPECT_NEAR(observed_order(c * std::pow(0.2, 3), 0.2, c * std::pow(0.1, 3), 0.1),
              3.0, 1e-12);
}

TEST(Verification, ObservedOrderInvalidInputs) {
  EXPECT_EQ(observed_order(0.0, 0.2, 1.0, 0.1), 0.0);
  EXPECT_EQ(observed_order(1.0, 0.1, 1.0, 0.2), 0.0);  // h not decreasing
}

TEST(Verification, ThreeGridRecoversOrderAndExact) {
  // f(h) = f* + C h^p with p = 2, f* = 10.
  const double p = 2.0, fstar = 10.0, c = 3.0;
  const auto f = [&](double h) { return fstar + c * std::pow(h, p); };
  const ConvergenceReport rep = analyze_convergence(
      {0.4, f(0.4)}, {0.2, f(0.2)}, {0.1, f(0.1)});
  ASSERT_TRUE(rep.valid);
  EXPECT_NEAR(rep.observed_order, 2.0, 1e-9);
  EXPECT_NEAR(rep.extrapolated, fstar, 1e-9);
  EXPECT_NEAR(rep.asymptotic_ratio, 1.0, 1e-9);
  EXPECT_GT(rep.gci_fine, 0.0);
  EXPECT_GT(rep.gci_coarse, rep.gci_fine);
}

TEST(Verification, UnequalRefinementRatios) {
  const double p = 4.0, fstar = -2.0, c = 1.0;
  const auto f = [&](double h) { return fstar + c * std::pow(h, p); };
  const ConvergenceReport rep = analyze_convergence(
      {0.3, f(0.3)}, {0.2, f(0.2)}, {0.1, f(0.1)});
  ASSERT_TRUE(rep.valid);
  EXPECT_NEAR(rep.observed_order, 4.0, 0.01);
  EXPECT_NEAR(rep.extrapolated, fstar, 1e-6);
}

TEST(Verification, OscillatoryConvergenceRejected) {
  const ConvergenceReport rep =
      analyze_convergence({0.4, 1.0}, {0.2, 3.0}, {0.1, 2.0});
  EXPECT_FALSE(rep.valid);
}

TEST(Verification, BadOrderingRejected) {
  EXPECT_FALSE(analyze_convergence({0.1, 1.0}, {0.2, 2.0}, {0.4, 3.0}).valid);
  EXPECT_FALSE(analyze_convergence({0.4, 1.0}, {0.4, 2.0}, {0.1, 3.0}).valid);
}

TEST(Verification, FitOrderLeastSquares) {
  std::vector<GridLevel> e;
  for (double h : {0.4, 0.2, 0.1, 0.05}) {
    e.push_back({h, 7.0 * std::pow(h, 2.5)});
  }
  EXPECT_NEAR(fit_order(e), 2.5, 1e-9);
}

TEST(Verification, FitOrderIgnoresDegenerateEntries) {
  std::vector<GridLevel> e{{0.2, 1.0}, {0.1, 0.25}, {0.0, 5.0}, {0.05, 0.0}};
  EXPECT_NEAR(fit_order(e), 2.0, 1e-9);
}

TEST(Verification, FitOrderNeedsTwoPoints) {
  EXPECT_EQ(fit_order({{0.1, 1.0}}), 0.0);
  EXPECT_EQ(fit_order({}), 0.0);
}

}  // namespace
}  // namespace nsp::core
