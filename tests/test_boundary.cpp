#include "core/boundary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nsp::core {
namespace {

TEST(InflowBC, ImposesMeanProfileAtZeroExcitation) {
  Grid grid = Grid::coarse(10, 20);
  JetConfig jet;
  jet.eps = 0.0;
  InflowBC bc(grid, jet);
  StateField q(10, 20);
  bc.apply(q, 0, /*t=*/3.7);
  for (int j = 0; j < 20; ++j) {
    const double r = grid.r(j);
    EXPECT_NEAR(q.rho(0, j), jet.mean_rho(r), 1e-12);
    EXPECT_NEAR(q.mx(0, j) / q.rho(0, j), jet.mean_u(r), 1e-12);
    EXPECT_NEAR(q.mr(0, j), 0.0, 1e-15);
  }
}

TEST(InflowBC, ExcitationOscillatesInTime) {
  Grid grid = Grid::coarse(10, 40);
  JetConfig jet;  // eps = 1e-4
  InflowBC bc(grid, jet);
  // Find the radial index nearest the shear layer r = 1.
  int js = 0;
  double best = 1e9;
  for (int j = 0; j < 40; ++j) {
    if (std::fabs(grid.r(j) - 1.0) < best) {
      best = std::fabs(grid.r(j) - 1.0);
      js = j;
    }
  }
  const double period = 2.0 * 3.14159265358979323846 / jet.omega();
  const Primitive a = bc.state(js, 0.0);
  const Primitive b = bc.state(js, period / 2.0);
  const Primitive c = bc.state(js, period);
  EXPECT_GT(std::fabs(a.u - b.u), 1e-6);   // half period flips the sign
  EXPECT_NEAR(a.u, c.u, 1e-9);             // full period returns
  EXPECT_NEAR(a.u + b.u, 2.0 * jet.mean_u(grid.r(js)), 1e-9);
}

TEST(InflowBC, FarfieldMatchesFreeStream) {
  Grid grid = Grid::coarse(10, 20);
  JetConfig jet;
  InflowBC bc(grid, jet);
  double far[4];
  bc.farfield_conserved(far);
  EXPECT_NEAR(far[0], 2.0, 1e-3);  // rho_inf = 2 at T_inf/T_c = 1/2
  EXPECT_NEAR(far[2], 0.0, 1e-15);
}

// ---- Characteristic outflow ----

StateField column_state(const Gas& gas, const Primitive& w, int ni, int nj) {
  StateField q(ni, nj);
  for (int j = -kGhost; j < nj + kGhost; ++j)
    for (int i = -kGhost; i < ni + kGhost; ++i) {
      q.rho(i, j) = w.rho;
      q.mx(i, j) = w.rho * w.u;
      q.mr(i, j) = w.rho * w.v;
      q.e(i, j) = gas.total_energy(w.rho, w.u, w.v, w.p);
    }
  return q;
}

TEST(OutflowBC, SupersonicPointsPassThrough) {
  Gas gas;
  const Primitive w{1.0, 1.8, 0.0, 1.0 / gas.gamma};  // M = 1.8
  StateField q_old = column_state(gas, w, 4, 6);
  StateField q_new = q_old;
  // Perturb the scheme update at the outflow column.
  q_new.rho(3, 2) += 0.01;
  q_new.e(3, 2) += 0.02;
  OutflowBC bc(gas);
  bc.apply(q_new, q_old, 3, 0.1);
  // Scheme values stand untouched for supersonic outflow.
  EXPECT_DOUBLE_EQ(q_new.rho(3, 2), w.rho + 0.01);
}

TEST(OutflowBC, SteadySubsonicStateIsFixedPoint) {
  Gas gas;
  const Primitive w{1.0, 0.5, 0.0, 1.0 / gas.gamma};
  StateField q_old = column_state(gas, w, 4, 6);
  StateField q_new = q_old;
  OutflowBC bc(gas);
  bc.apply(q_new, q_old, 3, 0.1);
  for (int j = 0; j < 6; ++j) {
    EXPECT_NEAR(q_new.rho(3, j), w.rho, 1e-13);
    EXPECT_NEAR(q_new.e(3, j), gas.total_energy(w.rho, w.u, w.v, w.p), 1e-13);
  }
}

TEST(OutflowBC, IncomingInvariantIsZeroed) {
  // After the correction, p_t - rho c u_t = 0 must hold exactly.
  Gas gas;
  const Primitive w{1.0, 0.5, 0.0, 1.0 / gas.gamma};
  const double dt = 0.05;
  StateField q_old = column_state(gas, w, 4, 6);
  StateField q_new = q_old;
  // A "scheme update" that raises pressure and velocity arbitrarily.
  for (int j = 0; j < 6; ++j) {
    const double rho = 1.02, u = 0.53, v = 0.01, p = w.p * 1.04;
    q_new.rho(3, j) = rho;
    q_new.mx(3, j) = rho * u;
    q_new.mr(3, j) = rho * v;
    q_new.e(3, j) = gas.total_energy(rho, u, v, p);
  }
  OutflowBC bc(gas);
  bc.apply(q_new, q_old, 3, dt);
  const double c = gas.sound_speed(w.p, w.rho);
  for (int j = 0; j < 6; ++j) {
    const Primitive a = to_primitive(gas, q_new.rho(3, j), q_new.mx(3, j),
                                     q_new.mr(3, j), q_new.e(3, j));
    const double p_t = (a.p - w.p) / dt;
    const double u_t = (a.u - w.u) / dt;
    EXPECT_NEAR(p_t - w.rho * c * u_t, 0.0, 1e-9 / dt);
  }
}

TEST(OutflowBC, OutgoingInformationPreserved) {
  // The outgoing invariants R2 = p_t + rho c u_t and R4 = v_t keep their
  // scheme values.
  Gas gas;
  const Primitive w{1.0, 0.5, 0.0, 1.0 / gas.gamma};
  const double dt = 0.05;
  StateField q_old = column_state(gas, w, 4, 6);
  StateField q_new = q_old;
  const double rho1 = 1.01, u1 = 0.52, v1 = 0.015, p1 = w.p * 1.02;
  for (int j = 0; j < 6; ++j) {
    q_new.rho(3, j) = rho1;
    q_new.mx(3, j) = rho1 * u1;
    q_new.mr(3, j) = rho1 * v1;
    q_new.e(3, j) = gas.total_energy(rho1, u1, v1, p1);
  }
  const double c = gas.sound_speed(w.p, w.rho);
  const double r2_scheme = (p1 - w.p) / dt + w.rho * c * (u1 - w.u) / dt;
  const double r4_scheme = (v1 - 0.0) / dt;
  OutflowBC bc(gas);
  bc.apply(q_new, q_old, 3, dt);
  const Primitive a = to_primitive(gas, q_new.rho(3, 0), q_new.mx(3, 0),
                                   q_new.mr(3, 0), q_new.e(3, 0));
  // The correction works with linearized (chain-rule) time derivatives,
  // so the invariants are preserved to first order in the update size.
  const double r2_after = (a.p - w.p) / dt + w.rho * c * (a.u - w.u) / dt;
  EXPECT_NEAR(r2_after, r2_scheme, 0.05 * std::fabs(r2_scheme));
  EXPECT_NEAR((a.v - 0.0) / dt, r4_scheme, 0.05 * std::fabs(r4_scheme));
}

TEST(OutflowBC, MixedColumnOnlyCorrectsSubsonicPoints) {
  Gas gas;
  StateField q_old(4, 6), q_new(4, 6);
  for (int j = -kGhost; j < 6 + kGhost; ++j) {
    for (int i = -kGhost; i < 4 + kGhost; ++i) {
      const bool fast = j < 3;
      const Primitive w{1.0, fast ? 1.6 : 0.4, 0.0, 1.0 / gas.gamma};
      q_old.rho(i, j) = w.rho;
      q_old.mx(i, j) = w.rho * w.u;
      q_old.mr(i, j) = 0.0;
      q_old.e(i, j) = gas.total_energy(w.rho, w.u, 0.0, w.p);
    }
  }
  q_new = q_old;
  for (int j = 0; j < 6; ++j) q_new.rho(3, j) += 0.01;
  OutflowBC bc(gas);
  bc.apply(q_new, q_old, 3, 0.1);
  EXPECT_DOUBLE_EQ(q_new.rho(3, 0), q_old.rho(3, 0) + 0.01);  // supersonic row
  EXPECT_NE(q_new.rho(3, 5), q_old.rho(3, 5) + 0.01);         // subsonic fixed
}

}  // namespace
}  // namespace nsp::core
