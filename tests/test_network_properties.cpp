// Property tests over every interconnect model: exactly-once delivery,
// causality, work conservation, and determinism, under randomized
// traffic generated with the deterministic sim RNG.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "arch/network.hpp"
#include "arch/platform.hpp"
#include "sim/rng.hpp"

namespace nsp::arch {
namespace {

struct NetCase {
  const char* name;
  NetKind kind;
};

class NetworkProperties : public ::testing::TestWithParam<NetCase> {
 protected:
  static std::unique_ptr<NetworkModel> make(sim::Simulator& s, NetKind k) {
    Platform p = Platform::lace560_allnode_s();
    p.net = k;
    return p.make_network(s, 16);
  }
};

TEST_P(NetworkProperties, EveryMessageDeliveredExactlyOnce) {
  sim::Simulator s;
  auto net = make(s, GetParam().kind);
  sim::Rng rng(2024);
  const int n = 200;
  int delivered = 0;
  for (int k = 0; k < n; ++k) {
    const int src = static_cast<int>(rng.below(16));
    int dst = static_cast<int>(rng.below(16));
    if (dst == src) dst = (dst + 1) % 16;
    const auto bytes = 64 + rng.below(8000);
    s.at(rng.uniform(0.0, 0.01), [&net, src, dst, bytes, &delivered] {
      net->transmit(src, dst, bytes, [&delivered] { ++delivered; });
    });
  }
  s.run();
  EXPECT_EQ(delivered, n);
  EXPECT_EQ(net->messages_sent(), static_cast<std::uint64_t>(n));
}

TEST_P(NetworkProperties, DeliveryNeverPrecedesInjection) {
  sim::Simulator s;
  auto net = make(s, GetParam().kind);
  sim::Rng rng(7);
  bool ok = true;
  for (int k = 0; k < 50; ++k) {
    const double inject_at = rng.uniform(0.0, 0.05);
    const int src = static_cast<int>(rng.below(16));
    const int dst = (src + 1 + static_cast<int>(rng.below(14))) % 16;
    s.at(inject_at, [&, inject_at, src, dst] {
      net->transmit(src, dst, 1000, [&, inject_at] {
        if (s.now() < inject_at) ok = false;
      });
    });
  }
  s.run();
  EXPECT_TRUE(ok);
}

TEST_P(NetworkProperties, MoreBytesNeverFaster) {
  // A single transfer's latency is monotone in its size.
  double t_small = 0, t_big = 0;
  {
    sim::Simulator s;
    auto net = make(s, GetParam().kind);
    net->transmit(0, 1, 100, [&] { t_small = s.now(); });
    s.run();
  }
  {
    sim::Simulator s;
    auto net = make(s, GetParam().kind);
    net->transmit(0, 1, 100000, [&] { t_big = s.now(); });
    s.run();
  }
  EXPECT_GE(t_big, t_small);
}

TEST_P(NetworkProperties, DeterministicAcrossRuns) {
  const auto run_once = [&] {
    sim::Simulator s;
    auto net = make(s, GetParam().kind);
    sim::Rng rng(99);
    double last = 0;
    for (int k = 0; k < 100; ++k) {
      const int src = static_cast<int>(rng.below(16));
      const int dst = (src + 1) % 16;
      s.at(rng.uniform(0.0, 0.01),
           [&net, &s, &last, src, dst] {
             net->transmit(src, dst, 2000, [&s, &last] { last = s.now(); });
           });
    }
    s.run();
    return last;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_P(NetworkProperties, ThroughputBoundedByBandwidth) {
  // Pushing far more traffic than one link-second carries must take at
  // least bytes / (nodes * bandwidth) of simulated time.
  if (GetParam().kind == NetKind::Perfect) {
    GTEST_SKIP() << "infinite bandwidth by construction";
  }
  sim::Simulator s;
  auto net = make(s, GetParam().kind);
  const double bw = net->link_bandwidth_Bps();
  const std::size_t bytes = 50000;
  const int n = 64;
  int done = 0;
  for (int k = 0; k < n; ++k) {
    net->transmit(k % 16, (k + 1) % 16, bytes, [&done] { ++done; });
  }
  s.run();
  EXPECT_EQ(done, n);
  const double lower_bound =
      static_cast<double>(n) * static_cast<double>(bytes) / (16.0 * bw);
  EXPECT_GE(s.now(), 0.5 * lower_bound);
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, NetworkProperties,
    ::testing::Values(NetCase{"ethernet", NetKind::Ethernet},
                      NetCase{"fddi", NetKind::Fddi},
                      NetCase{"atm", NetKind::Atm},
                      NetCase{"allnode_f", NetKind::AllnodeF},
                      NetCase{"allnode_s", NetKind::AllnodeS},
                      NetCase{"sp_switch", NetKind::SpSwitch},
                      NetCase{"torus", NetKind::Torus3D},
                      NetCase{"perfect", NetKind::Perfect}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace nsp::arch
