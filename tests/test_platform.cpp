#include "arch/platform.hpp"

#include <gtest/gtest.h>

namespace nsp::arch {
namespace {

TEST(Platform, AllPresetsInstantiateTheirNetworks) {
  for (const Platform& p : Platform::all()) {
    sim::Simulator s;
    auto net = p.make_network(s, 16);
    ASSERT_NE(net, nullptr) << p.name;
    double t = -1;
    net->transmit(0, 1, 1000, [&] { t = s.now(); });
    s.run();
    EXPECT_GE(t, 0.0) << p.name;
  }
}

TEST(Platform, YmpIsTheOnlySharedMemoryPlatform) {
  int shared = 0;
  for (const Platform& p : Platform::all()) shared += p.shared_memory;
  EXPECT_EQ(shared, 1);
  EXPECT_TRUE(Platform::cray_ymp().shared_memory);
}

TEST(Platform, YmpLimitedToEightProcessors) {
  EXPECT_EQ(Platform::cray_ymp().max_procs, 8);
}

TEST(Platform, MessagePassingPlatformsAllowSixteen) {
  for (const Platform& p : Platform::all()) {
    if (!p.shared_memory) {
      EXPECT_EQ(p.max_procs, 16) << p.name;
    }
  }
}

TEST(Platform, LaceUpperAndLowerHalvesUseTheRightCpus) {
  EXPECT_EQ(Platform::lace560_allnode_s().cpu.name, "RS6000/560");
  EXPECT_EQ(Platform::lace590_allnode_f().cpu.name, "RS6000/590");
  EXPECT_EQ(Platform::lace560_ethernet().cpu.name, "RS6000/560");
}

TEST(Platform, SpVariantsShareNodeAndNetworkDifferOnlyInLibrary) {
  const auto mpl = Platform::ibm_sp_mpl();
  const auto pvme = Platform::ibm_sp_pvme();
  EXPECT_EQ(mpl.cpu.name, pvme.cpu.name);
  EXPECT_EQ(mpl.net, pvme.net);
  EXPECT_NE(mpl.msglayer.name, pvme.msglayer.name);
}

TEST(Platform, T3dUsesTorusAndCrayPvm) {
  const auto t = Platform::cray_t3d();
  EXPECT_EQ(t.net, NetKind::Torus3D);
  EXPECT_NE(t.msglayer.name.find("T3D"), std::string::npos);
}

TEST(Platform, Model590PlatformsScaleLibraryCosts) {
  // PVM software overhead runs faster on the faster 590 node.
  EXPECT_LT(Platform::lace590_allnode_f().sw_speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(Platform::lace560_allnode_s().sw_speed_factor, 1.0);
}

TEST(Platform, NetKindNamesReadable) {
  EXPECT_EQ(to_string(NetKind::AllnodeF), "ALLNODE-F");
  EXPECT_EQ(to_string(NetKind::Ethernet), "Ethernet");
  EXPECT_EQ(to_string(NetKind::Torus3D), "T3D torus");
}

TEST(Platform, AllReturnsNineConfigurations) {
  // The nine configurations the paper itself measured; extension
  // platforms (T3D SHMEM, DASH) are separate presets.
  EXPECT_EQ(Platform::all().size(), 9u);
}

TEST(Platform, DashIsSharedMemoryNuma) {
  const auto d = Platform::dash();
  EXPECT_TRUE(d.shared_memory);
  EXPECT_GT(d.numa_remote_miss_s, 0.0);
  EXPECT_EQ(d.max_procs, 16);
  EXPECT_NE(d.cpu.name.find("R3000"), std::string::npos);
}

}  // namespace
}  // namespace nsp::arch
