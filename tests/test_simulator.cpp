#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nsp::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(3.0, [&] { order.push_back(3); });
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator s;
  std::vector<int> order;
  for (int k = 0; k < 10; ++k) s.at(1.0, [&order, k] { order.push_back(k); });
  s.run();
  for (int k = 0; k < 10; ++k) EXPECT_EQ(order[static_cast<std::size_t>(k)], k);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  double fired_at = -1;
  s.at(5.0, [&] {
    s.after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.at(5.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.at(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelOfExecutedEventReturnsFalse) {
  Simulator s;
  const EventId id = s.at(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator s;
  const EventId id = s.at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(12345));
  EXPECT_FALSE(s.cancel(0));
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator s;
  int count = 0;
  for (int k = 1; k <= 10; ++k) s.at(k, [&] { ++count; });
  s.run(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.pending(), 5u);
  s.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleCascades) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.after(0.1, recurse);
  };
  s.after(0.0, recurse);
  const std::uint64_t n = s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(n, 100u);
  EXPECT_NEAR(s.now(), 9.9, 1e-9);
}

TEST(Simulator, ExecutedCounterAccumulates) {
  Simulator s;
  for (int k = 0; k < 7; ++k) s.at(k, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator s;
  const EventId a = s.at(1.0, [] {});
  s.at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator s;
  double t = -1;
  s.at(4.0, [&] { s.after(0.0, [&] { t = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(t, 4.0);
}

}  // namespace
}  // namespace nsp::sim
