// Fixture: determinism-clean. Member functions and locals named like the
// libc calls must not fire; steady_clock durations are allowed.
#include <chrono>

struct Solver {
  double time() const { return t_; }
  double clock() const { return t_ * 2.0; }
  double t_ = 0.0;
};

double elapsed(const Solver& s) {
  const auto t0 = std::chrono::steady_clock::now();
  const double logical = s.time() + s.clock();
  const auto t1 = std::chrono::steady_clock::now();
  return logical + std::chrono::duration<double>(t1 - t0).count();
}
