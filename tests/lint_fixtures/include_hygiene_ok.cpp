// Fixture: include-hygiene clean — every namespace named below has a
// direct include. (Targets don't need to exist: the analyzer never
// opens them.)
#include "core/grid.hpp"
#include "mp/comm.hpp"
#include <vector>

int probe() {
  core::Grid g;
  return g.ni + mp::kAnyTag;
}
