// Fixture: a waiver with no justification is itself a finding.
#include <cstdlib>

int reporter_stamp() {
  // nsp-analyze: determinism-ok
  return rand();
}
