// Fixture: check-discipline clean. static_assert is not assert; lambda
// capture-defaults are not assignments; conditions are side-effect free.
#include "check/check.hpp"

#define NSP_CHECK(cond, site) ((void)0)

static_assert(sizeof(int) >= 4, "fixture assumes 32-bit int");

int pop(int* stack, int& top) {
  NSP_CHECK(top > 0, "fixture.pop");
  auto read = [=]() { return stack[top - 1]; };
  --top;
  return read();
}
