// Fixture: ordered-iteration clean. Unordered lookup is fine; only
// iteration order leaks into the hash, and this file iterates a std::map.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

std::uint64_t fnv1a(const std::string& s);

std::uint64_t digest_all(const std::unordered_map<std::string, int>& table,
                         const std::string& key) {
  std::map<std::string, int> sorted(table.begin(), table.end());
  std::uint64_t h = 0;
  for (const auto& [k, v] : sorted) {
    h ^= fnv1a(k) + static_cast<std::uint64_t>(v);
  }
  const auto it = table.find(key);
  return it == table.end() ? h : h + static_cast<std::uint64_t>(it->second);
}
