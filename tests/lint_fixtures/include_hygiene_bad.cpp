// Fixture: include-hygiene violations — the facade include, a duplicate
// include, and a namespace use riding a transitive include.
#include "nsp.hpp"
#include <vector>
#include <vector>

int probe() {
  core::Grid g;             // flagged: no direct #include "core/..."
  return g.ni + mp::kAnyTag;  // flagged: no direct #include "mp/..."
}
