// Fixture: untagged open-end markers.
// TODO: tighten this bound
int bound() {
  return 42;  // FIXME should derive from the grid
}
