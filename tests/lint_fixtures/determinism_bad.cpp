// Fixture: determinism violations (analyzed with --as src).
#include <cstdlib>
#include <ctime>
#include <random>

int wall_seed() {
  std::random_device rd;          // flagged: random_device
  srand(static_cast<unsigned>(time(nullptr)));  // flagged: srand and time
  return rand() + static_cast<int>(rd());       // flagged: rand
}
