// Fixture: float-equality clean — tolerances and integer comparisons.
#include <cmath>

bool converged(double residual, double t, int iter) {
  return std::abs(residual) < 1e-12 && t < 1.5 && iter == 0;
}
