// Fixture: a justified waiver suppresses the finding and is counted.
#include <cstdlib>

int reporter_stamp() {
  // nsp-analyze: determinism-ok: fixture exercising the waiver path
  return rand();
}
