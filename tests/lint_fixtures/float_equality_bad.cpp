// Fixture: float-equality violations.
bool converged(double residual, double t) {
  return residual == 0.0 || t != 1.5;  // flagged twice
}
