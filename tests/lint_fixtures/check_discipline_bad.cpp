// Fixture: check-discipline violations.
#include <cassert>

#include "check/check.hpp"

#define NSP_CHECK(cond, site) ((void)0)

int pop(int* stack, int& top) {
  assert(top > 0);                          // flagged: raw assert in src
  NSP_CHECK(--top >= 0, "fixture.pop");     // flagged: side effect in check
  return stack[top];
}
