// Fixture: unordered iteration in a file that hashes (mentions fnv1a).
#include <cstdint>
#include <string>
#include <unordered_map>

std::uint64_t fnv1a(const std::string& s);

std::uint64_t digest_all(const std::unordered_map<std::string, int>& table) {
  std::unordered_map<std::string, int> cache = table;
  std::uint64_t h = 0;
  for (const auto& [k, v] : cache) {  // flagged: nondeterministic order
    h ^= fnv1a(k) + static_cast<std::uint64_t>(v);
  }
  return h;
}
