// Fixture: tagged markers and near-miss words that must not fire.
// TODO(jaya): tighten this bound once the 2-D decomposition lands
int bound() {
  // The word TODOS here is part of a longer identifier-like word.
  return 42;  // FIXME(hp-lab): derive from the grid
}
