// Fixture: aliased __restrict__ call site. Passing the same span twice
// to a restrict-qualified kernel is undefined behavior.
#include <span>

struct Field {
  std::span<double> row_span(int j);
};

void saxpy_row(double* __restrict__ out, const double* __restrict__ a,
               const double* __restrict__ b, int n);

void step(Field& q, Field& w, int j, int n) {
  saxpy_row(q.row_span(j).data(), w.row_span(j).data(),
            w.row_span(j).data(), n);  // flagged: args 2 and 3 alias
}
