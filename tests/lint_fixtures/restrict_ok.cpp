// Fixture: restrict-aliasing clean. Same field, different rows — the
// spans do not overlap, and the analyzer must not confuse them.
#include <span>

struct Field {
  std::span<double> row_span(int j);
};

void saxpy_row(double* __restrict__ out, const double* __restrict__ a,
               const double* __restrict__ b, int n);

void step(Field& q, Field& w, int j, int n) {
  saxpy_row(q.row_span(j).data(), w.row_span(j).data(),
            w.row_span(j - 1).data(), n);
}
