// The NSP_CHECK evaluation contract at level 0, tested no matter what
// NSP_CHECK_LEVEL the build itself uses: this TU forces the level to 0
// before including the macro header, so the disabled expansions are
// exercised even in the default level-1 test build. (The runtime
// library underneath — Site, Registry, fail() — is level-independent,
// so linking next to level-1 TUs is fine.)
//
// Contract under test (see the macro section of src/check/check.hpp):
//   * disabled checks evaluate their condition ZERO times;
//   * the condition is still parsed and type-checked (this TU compiling
//     with the static_asserts below is that half of the proof);
//   * disabled fatal checks never throw;
//   * nothing is counted in the Registry.
#undef NSP_CHECK_LEVEL
#define NSP_CHECK_LEVEL 0
#include "check/check.hpp"

#include <gtest/gtest.h>

namespace {

using nsp::check::Registry;

static_assert(NSP_CHECK_LEVEL == 0, "this TU must compile the disabled macros");

// Type-checking still happens inside the unevaluated sizeof: a
// condition of the wrong shape would fail to compile. Mirror that with
// expressions whose validity is all that matters. ([[maybe_unused]]
// because its only evaluated-code mention is swallowed by a SLOW check.)
[[maybe_unused]] int type_checked_probe(int x) { return x; }

TEST(CheckLevel0, ConditionsEvaluateZeroTimes) {
  Registry::instance().reset();
  int evals = 0;
  NSP_CHECK(type_checked_probe(++evals) == 0, "test.l0.typecheck");
  NSP_CHECK((++evals, true), "test.l0.check");
  NSP_CHECK((++evals, false), "test.l0.check_fail");
  NSP_CHECK_WARN((++evals, false), "test.l0.warn");
  NSP_CHECK_FINITE((++evals, 0.0 / 0.0), "test.l0.finite");
  EXPECT_EQ(evals, 0);
}

TEST(CheckLevel0, FatalDoesNotThrowOrCount) {
  Registry::instance().reset();
  int evals = 0;
  EXPECT_NO_THROW([&] { NSP_CHECK_FATAL((++evals, false), "test.l0.fatal"); }());
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(Registry::instance().count("test.l0.fatal"), 0u);
}

TEST(CheckLevel0, SlowChecksAreSwallowedWhole) {
  // NSP_CHECK_SLOW* below level 2 must not even parse their arguments
  // (conditions may reference level-2-only helpers); calling a function
  // that does not exist would otherwise fail this TU's compile.
  int evals = 0;
  NSP_CHECK_SLOW((++evals, type_checked_probe(1) == 1), "test.l0.slow");
  NSP_CHECK_SLOW_FATAL(this_function_does_not_exist_anywhere(),
                       "test.l0.slow_fatal");
  EXPECT_EQ(evals, 0);
}

}  // namespace
