#include "io/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nsp::io {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Appln", "MFLOP", "Start-ups"});
  t.row({"N-S", "145000", "80000"});
  t.row({"Euler", "77000", "60000"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Appln"), std::string::npos);
  EXPECT_NE(s.find("N-S"), std::string::npos);
  EXPECT_NE(s.find("145000"), std::string::npos);
  EXPECT_NE(s.find("Euler"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, TitleAppearsAboveTable) {
  Table t({"a"});
  t.title("Table 1: Application Characteristics");
  t.row({"x"});
  const std::string s = t.str();
  const auto title_pos = s.find("Table 1");
  const auto header_pos = s.find("a");
  ASSERT_NE(title_pos, std::string::npos);
  EXPECT_LT(title_pos, header_pos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.row({"only"});
  EXPECT_NO_THROW(t.str());
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RuleSeparatesRowsWithoutCountingAsRow) {
  Table t({"a"});
  t.row({"1"});
  t.rule();
  t.row({"2"});
  EXPECT_EQ(t.rows(), 2u);
  // Rendered output has at least two all-dash rule lines (header + mid).
  const std::string s = t.str();
  int rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) ++rules;
  }
  EXPECT_GE(rules, 2);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h", "value"});
  t.row({"xxxxxxxx", "1"});
  t.row({"y", "22"});
  std::istringstream is(t.str());
  std::string l1, l2, l3, l4;
  std::getline(is, l1);  // header
  std::getline(is, l2);  // rule
  std::getline(is, l3);
  std::getline(is, l4);
  EXPECT_EQ(l3.size(), l4.size());
}

TEST(Table, StreamOperatorMatchesStr) {
  Table t({"a"});
  t.row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.str());
}

TEST(TableFormat, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(TableFormat, Scientific) {
  EXPECT_EQ(format_sci(145000e6, 2), "1.45e+11");
}

TEST(TableFormat, SiSuffixesMatchPaperStyle) {
  // Table 2 prints 906K, 113K etc.
  EXPECT_EQ(format_si(906000), "906K");
  EXPECT_EQ(format_si(113000), "113K");
  EXPECT_EQ(format_si(1.2e6), "1.2M");
  EXPECT_EQ(format_si(2.5e9), "2.50G");
  EXPECT_EQ(format_si(42), "42");
}

TEST(TableFormat, Seconds) {
  EXPECT_EQ(format_seconds(123.4), "123.4 s");
  EXPECT_NE(format_seconds(1.0e6).find("e+"), std::string::npos);
}

TEST(TableFormat, Percent) {
  EXPECT_EQ(format_percent(0.75), "75%");
  EXPECT_EQ(format_percent(1.8), "180%");
}

}  // namespace
}  // namespace nsp::io
