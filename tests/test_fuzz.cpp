// Randomized property tests: seeds drive the deterministic sim RNG, so
// every "fuzz" case is reproducible.
#include <gtest/gtest.h>

#include <cmath>

#include "core/riemann.hpp"
#include "core/solver.hpp"
#include "mp/comm.hpp"
#include "par/subdomain_solver.hpp"
#include "sim/rng.hpp"

namespace nsp {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, RiemannSolutionsAreInternallyConsistent) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const core::Gas gas;
  for (int k = 0; k < 40; ++k) {
    const core::RiemannState L{rng.uniform(0.3, 3.0), rng.uniform(-0.8, 0.8),
                               rng.uniform(0.3, 3.0)};
    const core::RiemannState R{rng.uniform(0.3, 3.0), rng.uniform(-0.8, 0.8),
                               rng.uniform(0.3, 3.0)};
    // Avoid near-vacuum cases (strongly diverging streams).
    const double cl = std::sqrt(gas.gamma * L.p / L.rho);
    const double cr = std::sqrt(gas.gamma * R.p / R.rho);
    if (R.u - L.u > 0.8 * (cl + cr)) continue;
    const core::RiemannSolution sol(gas, L, R);
    ASSERT_TRUE(sol.converged()) << "seed case " << k;
    EXPECT_GT(sol.p_star(), 0.0);
    // Far samples recover the inputs.
    EXPECT_NEAR(sol.sample(-100.0).rho, L.rho, 1e-10);
    EXPECT_NEAR(sol.sample(+100.0).rho, R.rho, 1e-10);
    // Pressure and velocity are continuous across the contact.
    const double us = sol.u_star();
    EXPECT_NEAR(sol.sample(us - 1e-7).p, sol.sample(us + 1e-7).p, 1e-4);
    EXPECT_NEAR(sol.sample(us - 1e-7).u, sol.sample(us + 1e-7).u, 1e-4);
    // Density stays positive along a fan of rays.
    for (double xi = -3.0; xi <= 3.0; xi += 0.37) {
      const auto w = sol.sample(xi);
      EXPECT_GT(w.rho, 0.0);
      EXPECT_GT(w.p, 0.0);
    }
  }
}

TEST_P(FuzzSeed, RandomUniformStatesArePreservedByTheSolver) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(32, 12);
  cfg.viscous = rng.uniform() < 0.5;
  cfg.jet.mach_c = cfg.jet.u_coflow = rng.uniform(0.1, 1.8);
  cfg.jet.t_ratio = 1.0;
  cfg.jet.eps = 0.0;
  core::Solver s(cfg);
  s.initialize();
  s.run(15);
  ASSERT_TRUE(s.finite());
  const double rho0 = 1.0;
  double dev = 0;
  for (int j = 0; j < 12; ++j) {
    for (int i = 0; i < 32; ++i) {
      dev = std::max(dev, std::fabs(s.state().rho(i, j) - rho0));
    }
  }
  EXPECT_LT(dev, 1e-11) << "Mach " << cfg.jet.mach_c;
}

TEST_P(FuzzSeed, RandomDecompositionsStayExact) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 17);
  core::SolverConfig cfg;
  const int ni = 36 + static_cast<int>(rng.below(40));
  const int nj = 12 + static_cast<int>(rng.below(16));
  cfg.grid = core::Grid::coarse(ni, nj);
  cfg.viscous = rng.uniform() < 0.7;
  cfg.overlap_comm = rng.uniform() < 0.5;
  const int max_p = std::max(1, ni / (2 * core::kGhost));
  const int nprocs = 1 + static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(std::min(8, max_p))));
  const int steps = 4 + static_cast<int>(rng.below(6));

  core::Solver serial(cfg);
  serial.initialize();
  serial.run(steps);
  const core::StateField qpar = par::run_parallel_jet(cfg, nprocs, steps);
  double m = 0;
  for (int c = 0; c < core::StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      for (int i = 0; i < ni; ++i) {
        m = std::max(m, std::fabs(qpar[c](i, j) - serial.state()[c](i, j)));
      }
    }
  }
  EXPECT_EQ(m, 0.0) << ni << "x" << nj << " P=" << nprocs
                    << " visc=" << cfg.viscous
                    << " overlap=" << cfg.overlap_comm;
}

TEST_P(FuzzSeed, RandomMessageStormIsLossless) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 3);
  const int nranks = 2 + static_cast<int>(rng.below(5));
  const int msgs_per_rank = 50;
  // Deterministic per-rank plan derived from the seed.
  std::vector<std::vector<std::pair<int, double>>> plan(
      static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    for (int k = 0; k < msgs_per_rank; ++k) {
      int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
      plan[static_cast<std::size_t>(r)].push_back({dst, rng.uniform()});
    }
  }
  mp::Cluster cluster(nranks);
  std::vector<double> received(static_cast<std::size_t>(nranks), 0.0);
  cluster.run([&](mp::Comm& comm) {
    const int me = comm.rank();
    for (const auto& [dst, val] : plan[static_cast<std::size_t>(me)]) {
      comm.send(dst, 1, std::vector<double>{val});
    }
    comm.barrier();  // all sends delivered to mailboxes before draining
    double sum = 0;
    while (auto m = comm.try_recv(mp::kAny, 1)) sum += m->data.at(0);
    received[static_cast<std::size_t>(me)] = sum;
  });
  double sent_total = 0, recv_total = 0;
  for (int r = 0; r < nranks; ++r) {
    for (const auto& [dst, val] : plan[static_cast<std::size_t>(r)]) {
      sent_total += val;
    }
    recv_total += received[static_cast<std::size_t>(r)];
  }
  EXPECT_NEAR(recv_total, sent_total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace nsp
