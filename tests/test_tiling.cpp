// Bit-exactness contract of the perf work (docs/PERF.md): the tuned
// span/tiled kernels, the fused tile schedule, and the overlapped
// communication schedule (Version 6) are pure reorderings — every
// configuration must reproduce the seed schedule's bits exactly, and
// the committed golden hashes pin those bits across future refactors.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/reporter.hpp"
#include "core/solver.hpp"
#include "core/tiles.hpp"
#include "exec/scenario.hpp"
#include "model/registry.hpp"
#include "par/subdomain_solver.hpp"
#include "par/subdomain_solver2d.hpp"

namespace nsp::core {
namespace {

// FNV-1a over the interior state bytes in a fixed (component, row,
// column) order — the hash two solvers share iff their states match
// bit-for-bit.
std::uint64_t state_hash(const StateField& q) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < q.nj(); ++j) {
      for (int i = 0; i < q.ni(); ++i) {
        const double v = q[c](i, j);
        unsigned char bytes[sizeof v];
        std::memcpy(bytes, &v, sizeof v);
        for (unsigned char b : bytes) {
          h ^= b;
          h *= 0x100000001b3ull;
        }
      }
    }
  }
  return h;
}

void expect_state_equal(const StateField& a, const StateField& b) {
  ASSERT_EQ(a.ni(), b.ni());
  ASSERT_EQ(a.nj(), b.nj());
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < a.nj(); ++j) {
      for (int i = 0; i < a.ni(); ++i) {
        ASSERT_EQ(a[c](i, j), b[c](i, j))
            << "c=" << c << " i=" << i << " j=" << j;
      }
    }
  }
}

SolverConfig base_cfg(RBoundary far, bool viscous) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  cfg.far_field = far;
  cfg.viscous = viscous;
  return cfg;
}

StateField run_serial(SolverConfig cfg, int steps = 20) {
  Solver s(cfg);
  s.initialize();
  s.run(steps);
  return s.state();
}

// ---- Tiled kernels vs the seed (reference) schedule --------------------

struct TiledCase {
  KernelVariant variant;
  RBoundary far;
  bool viscous;
};

class TiledEquivalence : public ::testing::TestWithParam<TiledCase> {};

TEST_P(TiledEquivalence, MatchesReferenceBitwise) {
  const TiledCase& tc = GetParam();
  SolverConfig ref = base_cfg(tc.far, tc.viscous);
  ref.variant = tc.variant;
  ref.tiled = false;
  SolverConfig tiled = ref;
  tiled.tiled = true;
  expect_state_equal(run_serial(ref), run_serial(tiled));
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndBoundaries, TiledEquivalence,
    ::testing::Values(
        TiledCase{KernelVariant::V3, RBoundary::FreeStream, true},
        TiledCase{KernelVariant::V4, RBoundary::FreeStream, true},
        TiledCase{KernelVariant::V5, RBoundary::FreeStream, true},
        TiledCase{KernelVariant::V5, RBoundary::FreeStream, false},
        TiledCase{KernelVariant::V3, RBoundary::ZeroGradient, true},
        TiledCase{KernelVariant::V5, RBoundary::ZeroGradient, true},
        TiledCase{KernelVariant::V5, RBoundary::ZeroGradient, false}),
    [](const auto& info) {
      const TiledCase& tc = info.param;
      return "V" + std::to_string(static_cast<int>(tc.variant)) +
             (tc.far == RBoundary::FreeStream ? "_FreeStream" : "_ZeroGrad") +
             (tc.viscous ? "_NS" : "_Euler");
    });

TEST(Tiling, TileWidthDoesNotChangeBits) {
  // The fused schedule recomputes pad columns at tile seams; any width
  // must produce the auto-width (here: full-row) bits exactly.
  SolverConfig cfg = base_cfg(RBoundary::FreeStream, true);
  const StateField want = run_serial(cfg);
  for (int w : {7, 13, 40}) {
    SolverConfig narrow = cfg;
    narrow.tile_i = w;
    expect_state_equal(want, run_serial(narrow));
  }
}

// ---- sysfs LLC probe ---------------------------------------------------
//
// detect_cache_bytes is a pure function of a directory tree, so the
// fixtures build throwaway sysfs-shaped trees and assert the probe's
// hardening: malformed sizes and entries without a shared_cpu_list map
// must not contribute, and a missing tree yields 0 (host_cache_bytes
// then falls back to kDefaultCacheBytes).

class CacheProbe : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("nsp_cache_probe_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Writes one index<N> entry. Pass nullptr to omit a file entirely
  /// (e.g. a sysfs without shared_cpu_list).
  void add_index(int idx, const char* type, const char* size,
                 const char* shared = "0-3") {
    const std::filesystem::path dir = root_ / ("index" + std::to_string(idx));
    std::filesystem::create_directories(dir);
    if (type) write(dir / "type", type);
    if (size) write(dir / "size", size);
    if (shared) write(dir / "shared_cpu_list", shared);
  }

  std::string dir() const { return root_.string(); }

 private:
  static void write(const std::filesystem::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text << "\n";
  }
  std::filesystem::path root_;
};

TEST_F(CacheProbe, ReadsLargestDataOrUnifiedCache) {
  add_index(0, "Data", "32K");
  add_index(1, "Instruction", "32K");
  add_index(2, "Unified", "1024K");
  add_index(3, "Unified", "8M");
  EXPECT_EQ(detect_cache_bytes(dir()), 8ull * 1024 * 1024);
}

TEST_F(CacheProbe, MissingTreeYieldsZero) {
  EXPECT_EQ(detect_cache_bytes(dir() + "/no_such_cache_dir"), 0u);
  // An empty directory (no index entries) is equally nothing.
  EXPECT_EQ(detect_cache_bytes(dir()), 0u);
}

TEST_F(CacheProbe, RejectsMalformedSizeSuffixes) {
  // Trailing garbage after the K/M/G suffix must not parse as a size:
  // "8MB" must not be read as eight megabytes.
  add_index(0, "Unified", "8MB");
  add_index(1, "Unified", "32K???");
  add_index(2, "Data", "K");
  add_index(3, "Data", "");
  EXPECT_EQ(detect_cache_bytes(dir()), 0u);
  // With one well-formed entry alongside, only it counts.
  add_index(4, "Unified", "512K");
  EXPECT_EQ(detect_cache_bytes(dir()), 512u * 1024);
}

TEST_F(CacheProbe, SkipsEntriesWithoutSharedCpuList) {
  // An index with no shared_cpu_list map is not attributable to this
  // core (seen on some virtualised sysfs trees) — it must not win even
  // when its size is the largest.
  add_index(0, "Unified", "1G", nullptr);
  add_index(1, "Unified", "512K");
  EXPECT_EQ(detect_cache_bytes(dir()), 512u * 1024);
}

TEST_F(CacheProbe, PlainByteCountsStillParse) {
  // Suffix-less sizes are raw bytes (documented in tiles.cpp).
  add_index(0, "Data", "262144");
  EXPECT_EQ(detect_cache_bytes(dir()), 262144u);
}

TEST(Tiling, ChooseTileWidthHonorsCacheBound) {
  // Fits the last-level target -> full width (no blocking).
  EXPECT_EQ(choose_tile_width(502, 102), 502);
  // A working set past the bound gets split into >= 2 tiles whose
  // padded footprint fits the budget.
  const int ni = 4096, nj = 4096;
  const int w = choose_tile_width(ni, nj);
  EXPECT_LT(w, ni);
  EXPECT_GE(w, 32);
  const std::size_t per_col = static_cast<std::size_t>(kSweepArrays) *
                              (nj + 2 * kGhost) * sizeof(double);
  EXPECT_LE(per_col * (w + 2 * kTilePad), kDefaultCacheBytes);
}

// ---- Golden hashes -----------------------------------------------------
//
// These constants pin the production (tiled, V5) physics bit-for-bit:
// a change that alters them alters the computed flow field, even if it
// alters the reference schedule identically. Regenerate deliberately
// (and say so in the commit) with: the GoldenHash tests print the
// actual hash on failure.

TEST(Tiling, GoldenHashFreeStream) {
  const StateField q = run_serial(base_cfg(RBoundary::FreeStream, true));
  EXPECT_EQ(state_hash(q), 0xf391c7019e0d96d8ull) << std::hex << state_hash(q);
}

TEST(Tiling, GoldenHashZeroGradient) {
  const StateField q = run_serial(base_cfg(RBoundary::ZeroGradient, true));
  EXPECT_EQ(state_hash(q), 0xd648ae650e7c8326ull) << std::hex << state_hash(q);
}

TEST(Tiling, GoldenHashDefaultModelAgrees) {
  // The model registry's default (ns/mac24/mode1) IS the production
  // pipeline: configuring a solver through it must reproduce the same
  // golden bits. Pins the model layer into the perf contract.
  SolverConfig cfg = base_cfg(RBoundary::FreeStream, true);
  model::make_model(model::kDefaultModel).configure(&cfg);
  const StateField q = run_serial(cfg);
  EXPECT_EQ(state_hash(q), 0xf391c7019e0d96d8ull) << std::hex << state_hash(q);
}

TEST(Tiling, GoldenHashSeedScheduleAgrees) {
  // The reference (seed) schedule hashes to the same golden values —
  // the tiled rewrite changed the instruction stream, not the physics.
  SolverConfig cfg = base_cfg(RBoundary::FreeStream, true);
  cfg.tiled = false;
  const StateField q = run_serial(cfg);
  EXPECT_EQ(state_hash(q), 0xf391c7019e0d96d8ull) << std::hex << state_hash(q);
}

TEST(Tiling, GoldenHashPlatformNeutral) {
  // The platform axis prices time through the replay engine; it must
  // never reach solver numerics. A solver configured through any
  // platform key — the 1995 machines or the modern fat-tree/dragonfly
  // zoo, at any "-<procs>" size — reproduces the FreeStream golden
  // bits exactly.
  for (const char* key :
       {"sp-mpl", "t3d", "ymp", "ib-fattree", "xc-dragonfly", "knl-fattree",
        "gpu-fattree", "bgq-torus", "gpu-fattree-131072"}) {
    const SolverConfig cfg =
        exec::Scenario::solve(64, 24, 20).platform(key).solver_config();
    const StateField q = run_serial(cfg);
    EXPECT_EQ(state_hash(q), 0xf391c7019e0d96d8ull)
        << key << " perturbed solver state: " << std::hex << state_hash(q);
  }
}

// ---- Overlapped communication (Version 6) ------------------------------

struct OverlapCase {
  bool viscous;
  RBoundary far;
};

class OverlapEquivalence : public ::testing::TestWithParam<OverlapCase> {};

// The Version 6 contract: overlapping communication with computation is
// a pure reordering of the non-overlapped parallel schedule. Under the
// paper's FreeStream far field the parallel solvers also reproduce the
// serial bits exactly, so the overlapped run is compared against serial
// there; ZeroGradient inherits the seed's (pre-existing, last-bit)
// serial/parallel divergence at the far-field row, so its guarantee is
// stated against the non-overlapped parallel schedule.
TEST_P(OverlapEquivalence, Decomposition1DMatchesNonOverlapped) {
  SolverConfig cfg = base_cfg(GetParam().far, GetParam().viscous);
  for (int p : {2, 4}) {
    SolverConfig ov = cfg;
    ov.overlap_comm = true;
    const StateField want = GetParam().far == RBoundary::FreeStream
                                ? run_serial(cfg, 10)
                                : par::run_parallel_jet(cfg, p, 10);
    expect_state_equal(want, par::run_parallel_jet(ov, p, 10));
  }
}

TEST_P(OverlapEquivalence, Decomposition2DMatchesNonOverlapped) {
  SolverConfig cfg = base_cfg(GetParam().far, GetParam().viscous);
  for (auto [px, py] : {std::pair{2, 2}, {1, 3}, {3, 2}}) {
    SolverConfig ov = cfg;
    ov.overlap_comm = true;
    const StateField want =
        GetParam().far == RBoundary::FreeStream
            ? run_serial(cfg, 10)
            : par::run_parallel_jet_2d(cfg, px, py, 10);
    expect_state_equal(want, par::run_parallel_jet_2d(ov, px, py, 10));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, OverlapEquivalence,
    ::testing::Values(OverlapCase{true, RBoundary::FreeStream},
                      OverlapCase{false, RBoundary::FreeStream},
                      OverlapCase{true, RBoundary::ZeroGradient}),
    [](const auto& info) {
      const OverlapCase& oc = info.param;
      return std::string(oc.viscous ? "NS" : "Euler") +
             (oc.far == RBoundary::FreeStream ? "_FreeStream" : "_ZeroGrad");
    });

// ---- Flop accounting across schedules ----------------------------------

TEST(Tiling, FusedScheduleCountsSameFlops) {
  // The fused tile schedule credits whole stages analytically instead
  // of counting per kernel call; totals must match the seed schedule's.
  SolverConfig ref = base_cfg(RBoundary::FreeStream, true);
  ref.tiled = false;
  ref.count_flops = true;
  SolverConfig fused = ref;
  fused.tiled = true;
  Solver a(ref), b(fused);
  a.initialize();
  b.initialize();
  a.run(5);
  b.run(5);
  EXPECT_GT(a.flops().total(), 0.0);
  EXPECT_EQ(a.flops().total(), b.flops().total());
}

TEST(Tiling, DoallStillShortCircuitsFlopCounting) {
  // Regression guard for the templated doall: under threads the flop
  // counter must stay disabled (counting there would race), tiled or
  // not.
  for (bool tiled : {true, false}) {
    SolverConfig cfg = base_cfg(RBoundary::FreeStream, true);
    cfg.tiled = tiled;
    cfg.num_threads = 4;
    cfg.count_flops = true;
    Solver s(cfg);
    s.initialize();
    s.run(2);
    EXPECT_EQ(s.flops().total(), 0.0) << "tiled=" << tiled;
  }
}

// ---- bench::Reporter schema -------------------------------------------

TEST(Reporter, WritesSchemaAndRefusesEmpty) {
  bench::Reporter rep("unit");
  EXPECT_FALSE(rep.write_json("/dev/null"));  // empty report = failure
  bench::BenchEntry e;
  e.name = "step/V5/tiled";
  e.variant = "tiled";
  e.ni = 502;
  e.nj = 102;
  e.ms_per_step = 2.0;
  rep.add(e);
  rep.add_with_speedup(
      [] {
        bench::BenchEntry b;
        b.name = "other";
        b.ms_per_step = 1.0;
        return b;
      }(),
      "step/V5/tiled", 2.0);
  const std::string body = rep.json();
  EXPECT_NE(body.find("\"benchmark\": \"unit\""), std::string::npos);
  EXPECT_NE(body.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"grid\": {\"ni\": 502, \"nj\": 102}"),
            std::string::npos);
  EXPECT_NE(body.find("\"speedup\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"baseline\": \"step/V5/tiled\""), std::string::npos);
  EXPECT_EQ(rep.size(), 2u);
}

}  // namespace
}  // namespace nsp::core
