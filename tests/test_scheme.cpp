// Numerical-scheme verification: freestream preservation on the
// axisymmetric grid, exact entropy-wave advection, convergence order,
// and conservation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"

namespace nsp::core {
namespace {

/// A configuration whose mean flow is uniform (no jet): coflow equals
/// the centerline speed and the temperature ratio is one. Everything --
/// initial state, inflow, far field -- is the same constant state.
SolverConfig uniform_config(int ni, int nj, double mach, bool viscous) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(ni, nj);
  cfg.jet.mach_c = mach;
  cfg.jet.u_coflow = mach;
  cfg.jet.t_ratio = 1.0;
  cfg.jet.eps = 0.0;  // no excitation
  cfg.viscous = viscous;
  return cfg;
}

double max_deviation_from_uniform(const Solver& s, const SolverConfig& cfg) {
  const Gas& gas = cfg.jet.gas;
  const double rho0 = 1.0, u0 = cfg.jet.mach_c, p0 = cfg.jet.mean_p();
  const double e0 = gas.total_energy(rho0, u0, 0.0, p0);
  double dev = 0;
  for (int j = 0; j < cfg.grid.nj; ++j) {
    for (int i = 0; i < cfg.grid.ni; ++i) {
      dev = std::max(dev, std::fabs(s.state().rho(i, j) - rho0));
      dev = std::max(dev, std::fabs(s.state().mx(i, j) - rho0 * u0));
      dev = std::max(dev, std::fabs(s.state().mr(i, j)));
      dev = std::max(dev, std::fabs(s.state().e(i, j) - e0));
    }
  }
  return dev;
}

TEST(Scheme, FreestreamPreservedInviscid) {
  // The axisymmetric source terms, the axis reflection, the flux
  // extrapolation and the characteristic outflow must all preserve a
  // uniform subsonic stream to round-off.
  SolverConfig cfg = uniform_config(40, 16, 0.5, /*viscous=*/false);
  Solver s(cfg);
  s.initialize();
  s.run(20);
  EXPECT_LT(max_deviation_from_uniform(s, cfg), 1e-12);
}

TEST(Scheme, FreestreamPreservedViscous) {
  SolverConfig cfg = uniform_config(40, 16, 0.5, /*viscous=*/true);
  Solver s(cfg);
  s.initialize();
  s.run(20);
  EXPECT_LT(max_deviation_from_uniform(s, cfg), 1e-11);
}

TEST(Scheme, FreestreamPreservedSupersonic) {
  // Supersonic outflow takes the all-characteristics-leave branch.
  SolverConfig cfg = uniform_config(40, 16, 1.5, /*viscous=*/false);
  Solver s(cfg);
  s.initialize();
  s.run(20);
  EXPECT_LT(max_deviation_from_uniform(s, cfg), 1e-12);
}

/// Injects an entropy wave (u, p constant; any rho(x - u t) is an exact
/// Euler solution) and returns the L2 density error against the exact
/// profile after advecting for `t_final`.
double entropy_wave_error(int ni, double cfl, double t_final) {
  SolverConfig cfg = uniform_config(ni, 6, 0.5, /*viscous=*/false);
  cfg.cfl = cfl;
  Solver s(cfg);
  s.initialize();
  const Gas& gas = cfg.jet.gas;
  const double u0 = 0.5, p0 = cfg.jet.mean_p();
  const double x0 = 15.0, width = 3.0, amp = 0.05;
  const auto rho_exact = [&](double x, double t) {
    const double xi = x - x0 - u0 * t;
    return 1.0 + amp * std::exp(-xi * xi / (width * width));
  };
  StateField& q = s.mutable_state();
  for (int j = -kGhost; j < cfg.grid.nj + kGhost; ++j) {
    for (int i = -kGhost; i < cfg.grid.ni + kGhost; ++i) {
      const double rho = rho_exact(cfg.grid.x(i), 0.0);
      q.rho(i, j) = rho;
      q.mx(i, j) = rho * u0;
      q.mr(i, j) = 0.0;
      q.e(i, j) = gas.total_energy(rho, u0, 0.0, p0);
    }
  }
  const int steps = static_cast<int>(std::ceil(t_final / s.dt()));
  s.run(steps);
  const double t = s.time();
  double err2 = 0;
  for (int i = 0; i < cfg.grid.ni; ++i) {
    const double d = s.state().rho(i, 2) - rho_exact(cfg.grid.x(i), t);
    err2 += d * d;
  }
  return std::sqrt(err2 / cfg.grid.ni);
}

TEST(Scheme, EntropyWaveAdvectsAccurately) {
  const double err = entropy_wave_error(200, 0.4, 4.0);
  EXPECT_LT(err, 2e-4);  // 5% bump tracked to a fraction of a percent
}

TEST(Scheme, SpatialConvergenceIsHighOrder) {
  // With dt ~ dx^2 the O(dt^2) error is subdominant and the alternated
  // 2-4 scheme should show its spatial order (close to 4).
  const double e1 = entropy_wave_error(64, 0.32, 2.0);
  const double e2 = entropy_wave_error(128, 0.16, 2.0);
  const double e3 = entropy_wave_error(256, 0.08, 2.0);
  const double order12 = std::log2(e1 / e2);
  const double order23 = std::log2(e2 / e3);
  EXPECT_GT(order12, 2.3) << "e1=" << e1 << " e2=" << e2;
  EXPECT_GT(order23, 2.3) << "e2=" << e2 << " e3=" << e3;
}

TEST(Scheme, TemporalRefinementConverges) {
  // At fixed grid, halving the CFL must not blow the error up: once the
  // temporal error is subdominant the total is set by the spatial terms
  // (which shift slightly with dt through the split operators).
  const double big = entropy_wave_error(128, 0.5, 2.0);
  const double small = entropy_wave_error(128, 0.25, 2.0);
  EXPECT_LE(small, big * 1.3);
}

TEST(Scheme, MassConservedWhileWaveIsInterior) {
  SolverConfig cfg = uniform_config(100, 8, 0.5, /*viscous=*/false);
  Solver s(cfg);
  s.initialize();
  const Gas& gas = cfg.jet.gas;
  StateField& q = s.mutable_state();
  for (int j = -kGhost; j < cfg.grid.nj + kGhost; ++j) {
    for (int i = -kGhost; i < cfg.grid.ni + kGhost; ++i) {
      const double xi = cfg.grid.x(i) - 20.0;
      const double rho = 1.0 + 0.05 * std::exp(-xi * xi / 9.0);
      q.rho(i, j) = rho;
      q.mx(i, j) = rho * 0.5;
      q.e(i, j) = gas.total_energy(rho, 0.5, 0.0, cfg.jet.mean_p());
    }
  }
  const double mass0 = s.conserved_integral(0);
  s.run(30);
  const double mass1 = s.conserved_integral(0);
  EXPECT_NEAR(mass1 / mass0, 1.0, 1e-8);
}

TEST(Scheme, AlternatingVariantsBeatSingleVariantSymmetry) {
  // Sanity: the solution stays finite and bounded through many L1/L2
  // alternations (the arrangement the paper uses for 4th order).
  SolverConfig cfg = uniform_config(60, 10, 0.8, false);
  Solver s(cfg);
  s.initialize();
  s.run(101);  // odd count: ends mid-pair
  EXPECT_TRUE(s.finite());
  EXPECT_LT(max_deviation_from_uniform(s, cfg), 1e-11);
}

}  // namespace
}  // namespace nsp::core
