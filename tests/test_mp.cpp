#include "mp/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nsp::mp {
namespace {

TEST(Cluster, RunsOneFunctionPerRank) {
  Cluster c(4);
  std::atomic<int> mask{0};
  c.run([&](Comm& comm) { mask |= 1 << comm.rank(); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(Cluster, SizeOneWorks) {
  Cluster c(1);
  c.run([](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
  });
}

TEST(Cluster, InvalidSizeThrows) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
}

TEST(Comm, PingPong) {
  Cluster c(2);
  c.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> v{1.0, 2.0, 3.0};
      comm.send(1, 7, v);
      const Message back = comm.recv(1, 8);
      EXPECT_EQ(back.data, (std::vector<double>{6.0}));
    } else {
      const Message m = comm.recv(0, 7);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 7);
      const double sum = std::accumulate(m.data.begin(), m.data.end(), 0.0);
      comm.send(0, 8, std::vector<double>{sum});
    }
  });
}

TEST(Comm, TagMatchingSkipsOtherTags) {
  Cluster c(2);
  c.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0});
      comm.send(1, 2, std::vector<double>{2.0});
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      const Message m2 = comm.recv(0, 2);
      const Message m1 = comm.recv(0, 1);
      EXPECT_EQ(m2.data[0], 2.0);
      EXPECT_EQ(m1.data[0], 1.0);
    }
  });
}

TEST(Comm, FifoOrderWithinSameSourceAndTag) {
  Cluster c(2);
  c.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int k = 0; k < 20; ++k) {
        comm.send(1, 5, std::vector<double>{static_cast<double>(k)});
      }
    } else {
      for (int k = 0; k < 20; ++k) {
        EXPECT_EQ(comm.recv(0, 5).data[0], k);
      }
    }
  });
}

TEST(Comm, WildcardSourceAndTag) {
  Cluster c(3);
  c.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int got = 0;
      for (int k = 0; k < 2; ++k) {
        const Message m = comm.recv(kAny, kAny);
        got += m.src;
      }
      EXPECT_EQ(got, 3);  // ranks 1 and 2
    } else {
      comm.send(0, comm.rank(), std::vector<double>{1.0});
    }
  });
}

TEST(Comm, RecvIntoValidatesLength) {
  Cluster c(2);
  EXPECT_THROW(
      c.run([](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 1, std::vector<double>{1.0, 2.0});
        } else {
          std::vector<double> out(3);
          comm.recv_into(0, 1, out);
        }
      }),
      std::runtime_error);
}

TEST(Comm, TryRecvReturnsNulloptWhenEmpty) {
  Cluster c(1);
  c.run([](Comm& comm) { EXPECT_FALSE(comm.try_recv().has_value()); });
}

TEST(Comm, RecvUntilDeadlineIsNotStretchedByUnwantedTraffic) {
  // A peer delivering messages on *other* tags wakes the receiver's
  // condition variable over and over; the absolute deadline must not
  // restart — the total wait is one budget no matter how chatty the
  // mailbox is. (fault::ReliableLink's per-attempt RTO depends on this.)
  Cluster c(2);
  c.run([](Comm& comm) {
    using clock = std::chrono::steady_clock;
    if (comm.rank() == 0) {
      for (int k = 0; k < 40; ++k) {
        comm.send(1, /*tag=*/5, std::vector<double>{static_cast<double>(k)});
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    } else {
      const auto t0 = clock::now();
      const auto got = comm.recv_until(t0 + std::chrono::milliseconds(60),
                                       /*src=*/0, /*tag=*/9);
      const double waited =
          std::chrono::duration<double>(clock::now() - t0).count();
      EXPECT_FALSE(got.has_value());  // tag 9 never arrives
      EXPECT_GE(waited, 0.055);
      // The chatter lasts ~200 ms; a per-message restart would hold us
      // for all of it.
      EXPECT_LT(waited, 0.15);
      // The unwanted traffic is still there for whoever asks for it.
      EXPECT_TRUE(comm.recv(0, 5).data.size() == 1);
      for (int k = 1; k < 40; ++k) comm.recv(0, 5);
    }
  });
}

TEST(Comm, SendToInvalidRankThrows) {
  Cluster c(2);
  EXPECT_THROW(c.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(5, 0, std::vector<double>{1.0});
  }),
               std::out_of_range);
}

TEST(Comm, BarrierSynchronizesPhases) {
  Cluster c(4);
  std::atomic<int> phase1{0};
  std::vector<int> seen(4, -1);
  c.run([&](Comm& comm) {
    ++phase1;
    comm.barrier();
    // After the barrier every rank must observe all increments.
    seen[static_cast<std::size_t>(comm.rank())] = phase1.load();
  });
  for (int v : seen) EXPECT_EQ(v, 4);
}

TEST(Comm, RepeatedBarriers) {
  Cluster c(3);
  c.run([](Comm& comm) {
    for (int k = 0; k < 50; ++k) comm.barrier();
  });
  SUCCEED();
}

TEST(Comm, AllreduceSum) {
  Cluster c(5);
  c.run([](Comm& comm) {
    const double total = comm.allreduce_sum(comm.rank() + 1.0);
    EXPECT_DOUBLE_EQ(total, 15.0);
  });
}

TEST(Comm, AllreduceMax) {
  Cluster c(4);
  c.run([](Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank() * 10));
    EXPECT_DOUBLE_EQ(m, 30.0);
  });
}

TEST(Comm, BroadcastReachesEveryRank) {
  Cluster c(5);
  c.run([](Comm& comm) {
    std::vector<double> data;
    if (comm.rank() == 2) data = {3.0, 1.0, 4.0};
    comm.broadcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[2], 4.0);
  });
}

TEST(Comm, BroadcastSingleRankIsNoop) {
  Cluster c(1);
  c.run([](Comm& comm) {
    std::vector<double> data{1.0};
    comm.broadcast(data, 0);
    EXPECT_EQ(data[0], 1.0);
  });
}

TEST(Comm, GatherConcatenatesInRankOrder) {
  Cluster c(4);
  c.run([](Comm& comm) {
    // Rank r contributes r+1 copies of its rank id.
    const std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                                   comm.rank());
    const std::vector<double> all = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 1u + 2 + 3 + 4);
      EXPECT_EQ(all[0], 0.0);
      EXPECT_EQ(all[1], 1.0);
      EXPECT_EQ(all[3], 2.0);
      EXPECT_EQ(all[9], 3.0);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, AllreduceSumVecElementwise) {
  Cluster c(3);
  c.run([](Comm& comm) {
    std::vector<double> v{static_cast<double>(comm.rank()), 1.0};
    comm.allreduce_sum_vec(v);
    EXPECT_DOUBLE_EQ(v[0], 0.0 + 1.0 + 2.0);
    EXPECT_DOUBLE_EQ(v[1], 3.0);
  });
}

TEST(Comm, CountersTrackTraffic) {
  Cluster c(2);
  c.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>(100, 0.0));
    } else {
      comm.recv(0, 1);
    }
  });
  const auto& ctr = c.last_counters();
  EXPECT_EQ(ctr[0].sends, 1u);
  EXPECT_DOUBLE_EQ(ctr[0].bytes_sent, 800.0);
  EXPECT_EQ(ctr[1].recvs, 1u);
  EXPECT_DOUBLE_EQ(ctr[1].bytes_received, 800.0);
  EXPECT_EQ(ctr[1].startups(), 1u);
}

TEST(Comm, ExceptionInOneRankPropagates) {
  Cluster c(3);
  EXPECT_THROW(c.run([](Comm& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 failed");
    // Other ranks finish normally (no blocking recv here).
  }),
               std::runtime_error);
}

TEST(Comm, HeavyTrafficStress) {
  Cluster c(4);
  c.run([](Comm& comm) {
    const int n = 200;
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    for (int k = 0; k < n; ++k) {
      comm.send(right, k, std::vector<double>{static_cast<double>(k)});
      const Message m = comm.recv(left, k);
      EXPECT_EQ(m.data[0], k);
    }
  });
}

TEST(Cluster, ReusableAcrossRuns) {
  Cluster c(2);
  for (int round = 0; round < 3; ++round) {
    c.run([round](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(1, round, std::vector<double>{static_cast<double>(round)});
      } else {
        EXPECT_EQ(comm.recv(0, round).data[0], round);
      }
    });
  }
}

}  // namespace
}  // namespace nsp::mp
