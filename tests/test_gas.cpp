#include "core/gas.hpp"

#include <gtest/gtest.h>

namespace nsp::core {
namespace {

TEST(Gas, CenterlineNondimensionalization) {
  // With rho = T = 1 at the centerline, p = 1/gamma and c = 1.
  Gas g;
  const double p = 1.0 / g.gamma;
  EXPECT_DOUBLE_EQ(g.temperature(p, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(g.sound_speed(p, 1.0), 1.0);
}

TEST(Gas, PressureFromConservedRoundTrip) {
  Gas g;
  const double rho = 1.7, u = 0.8, v = -0.2, p = 0.9;
  const double e = g.total_energy(rho, u, v, p);
  EXPECT_NEAR(g.pressure(rho, rho * u, rho * v, e), p, 1e-14);
}

TEST(Gas, TotalEnergySplitsIntoInternalAndKinetic) {
  Gas g;
  const double rho = 2.0, u = 1.0, v = 0.5, p = 0.7;
  const double e = g.total_energy(rho, u, v, p);
  EXPECT_NEAR(e, p / (g.gamma - 1.0) + 0.5 * rho * (u * u + v * v), 1e-14);
}

TEST(Gas, SoundSpeedScalesWithSqrtT) {
  Gas g;
  const double rho = 1.0;
  const double c1 = g.sound_speed(g.gas_constant() * rho * 1.0, rho);
  const double c4 = g.sound_speed(g.gas_constant() * rho * 4.0, rho);
  EXPECT_NEAR(c4, 2.0 * c1, 1e-14);
}

TEST(Gas, ConductivityFollowsPrandtl) {
  Gas g;
  g.mu = 1e-3;
  EXPECT_NEAR(g.conductivity(), g.mu * g.cp() / g.prandtl, 1e-18);
  EXPECT_NEAR(g.cp(), 1.0 / (g.gamma - 1.0), 1e-14);
}

TEST(Gas, ToPrimitiveInvertsConservatives) {
  Gas g;
  const Primitive w0{1.3, 0.4, -0.6, 0.8};
  const double e = g.total_energy(w0.rho, w0.u, w0.v, w0.p);
  const Primitive w = to_primitive(g, w0.rho, w0.rho * w0.u, w0.rho * w0.v, e);
  EXPECT_NEAR(w.rho, w0.rho, 1e-14);
  EXPECT_NEAR(w.u, w0.u, 1e-14);
  EXPECT_NEAR(w.v, w0.v, 1e-14);
  EXPECT_NEAR(w.p, w0.p, 1e-14);
}

TEST(Gas, SutherlandLawAnchoredAtUnitTemperature) {
  Gas g;
  g.mu = 2.5e-6;
  g.sutherland = true;
  EXPECT_NEAR(g.viscosity_at(1.0), g.mu, 1e-18);
}

TEST(Gas, SutherlandViscosityGrowsWithTemperature) {
  Gas g;
  g.mu = 1e-3;
  g.sutherland = true;
  EXPECT_GT(g.viscosity_at(2.0), g.viscosity_at(1.0));
  EXPECT_GT(g.viscosity_at(1.0), g.viscosity_at(0.5));
  // Roughly T^0.7-0.8 power law over the jet's range.
  const double ratio = g.viscosity_at(2.0) / g.viscosity_at(1.0);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.0);
}

TEST(Gas, SutherlandOffIsConstantViscosity) {
  Gas g;
  g.mu = 1e-3;
  EXPECT_DOUBLE_EQ(g.viscosity_at(0.5), g.mu);
  EXPECT_DOUBLE_EQ(g.viscosity_at(3.0), g.mu);
}

TEST(Gas, SutherlandConductivityTracksViscosity) {
  Gas g;
  g.mu = 1e-3;
  g.sutherland = true;
  EXPECT_NEAR(g.conductivity_at(2.0) / g.viscosity_at(2.0),
              g.cp() / g.prandtl, 1e-12);
}

TEST(Gas, EulerModeHasZeroTransport) {
  Gas g;  // default mu = 0
  EXPECT_DOUBLE_EQ(g.mu, 0.0);
  EXPECT_DOUBLE_EQ(g.conductivity(), 0.0);
}

}  // namespace
}  // namespace nsp::core
