// End-to-end tests for tools/nsp-analyze: each rule has a violating and
// a clean fixture under tests/lint_fixtures/, and the final tree itself
// must analyze clean (that last test is the same gate CI enforces).
//
// The analyzer is exercised as a subprocess — through the exact
// interface lint.sh and CI use — not by linking its internals.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

// NSP_ANALYZE_BIN, NSP_LINT_FIXTURES, NSP_REPO_ROOT come from CMake.

struct RunOutput {
  int exit_code = -1;
  std::string text;  // stdout + stderr, interleaved
};

RunOutput run_analyzer(const std::string& args) {
  const std::string cmd = std::string(NSP_ANALYZE_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunOutput out;
  if (!pipe) return out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) {
    out.text.append(buf, got);
  }
  const int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

std::string fixture(const std::string& name) {
  return std::string(NSP_LINT_FIXTURES) + "/" + name;
}

/// A violating fixture must exit 1 and name the expected rule; its
/// clean twin must exit 0 with zero findings.
void expect_rule_pair(const std::string& stem, const std::string& rule) {
  const RunOutput bad = run_analyzer("--as src " + fixture(stem + "_bad.cpp"));
  EXPECT_EQ(bad.exit_code, 1) << bad.text;
  EXPECT_NE(bad.text.find(rule + ":"), std::string::npos) << bad.text;

  const RunOutput ok = run_analyzer("--as src " + fixture(stem + "_ok.cpp"));
  EXPECT_EQ(ok.exit_code, 0) << ok.text;
  EXPECT_NE(ok.text.find("0 finding(s)"), std::string::npos) << ok.text;
}

TEST(LintRules, Determinism) { expect_rule_pair("determinism", "determinism"); }

TEST(LintRules, OrderedIteration) {
  expect_rule_pair("ordered", "ordered-iteration");
}

TEST(LintRules, RestrictAliasing) {
  expect_rule_pair("restrict", "restrict-aliasing");
}

TEST(LintRules, CheckDiscipline) {
  expect_rule_pair("check_discipline", "check-discipline");
}

TEST(LintRules, IncludeHygiene) {
  expect_rule_pair("include_hygiene", "include-hygiene");
}

TEST(LintRules, FloatEquality) {
  expect_rule_pair("float_equality", "float-equality");
}

TEST(LintRules, TaggedTodo) { expect_rule_pair("tagged_todo", "tagged-todo"); }

TEST(LintRules, DocLink) {
  // Markdown fixtures: the analyzer routes .md files to the doc-link
  // engine regardless of --as, so no category flag here.
  const RunOutput bad = run_analyzer(fixture("doc_link_bad.md"));
  EXPECT_EQ(bad.exit_code, 1) << bad.text;
  EXPECT_NE(bad.text.find("doc-link:"), std::string::npos) << bad.text;
  // One finding per broken reference: two links + two backtick paths.
  EXPECT_NE(bad.text.find("no_such_doc.md"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("docs/NO_SUCH.md"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("src/never/was.hpp"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("docs/NOT_A_DOC.md:42"), std::string::npos)
      << bad.text;

  const RunOutput ok = run_analyzer(fixture("doc_link_ok.md"));
  EXPECT_EQ(ok.exit_code, 0) << ok.text;
  EXPECT_NE(ok.text.find("0 finding(s)"), std::string::npos) << ok.text;
  EXPECT_NE(ok.text.find("1 waiver(s)"), std::string::npos) << ok.text;
}

TEST(LintRules, DeterminismFlagsEachCall) {
  // srand(time(nullptr)) plus rand() plus random_device: one finding per
  // call site, not one per file.
  const RunOutput bad =
      run_analyzer("--as src " + fixture("determinism_bad.cpp"));
  EXPECT_NE(bad.text.find("random_device"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("'srand()'"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("'time()'"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("'rand()'"), std::string::npos) << bad.text;
}

TEST(LintWaivers, JustifiedWaiverSuppressesAndCounts) {
  const RunOutput out = run_analyzer("--as src " + fixture("waiver_ok.cpp"));
  EXPECT_EQ(out.exit_code, 0) << out.text;
  EXPECT_NE(out.text.find("1 waiver(s)"), std::string::npos) << out.text;
}

TEST(LintWaivers, WaiverWithoutJustificationIsItsOwnFinding) {
  const RunOutput out =
      run_analyzer("--as src " + fixture("waiver_missing_justification.cpp"));
  EXPECT_EQ(out.exit_code, 1) << out.text;
  EXPECT_NE(out.text.find("waiver-justification:"), std::string::npos)
      << out.text;
  // The waived-away rule must NOT also fire: the waiver still suppresses,
  // it just demands a reason.
  EXPECT_EQ(out.text.find("determinism:"), std::string::npos) << out.text;
}

TEST(LintDriver, ListRulesNamesEveryRule) {
  const RunOutput out = run_analyzer("--list-rules");
  EXPECT_EQ(out.exit_code, 0);
  for (const char* rule :
       {"determinism", "ordered-iteration", "restrict-aliasing",
        "check-discipline", "include-hygiene", "float-equality",
        "tagged-todo", "doc-link", "waiver-justification"}) {
    EXPECT_NE(out.text.find(rule), std::string::npos) << rule;
  }
}

TEST(LintDriver, JsonReportIsWritten) {
  const std::string json = testing::TempDir() + "nsp_analyze_report.json";
  const RunOutput out = run_analyzer("--as src --json " + json + " " +
                                     fixture("float_equality_bad.cpp"));
  EXPECT_EQ(out.exit_code, 1) << out.text;
  std::ifstream f(json);
  ASSERT_TRUE(f.is_open()) << json;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("\"rule\": \"float-equality\""), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"findings\""), std::string::npos) << report;
  std::remove(json.c_str());
}

TEST(LintDriver, MissingInputIsAUsageError) {
  const RunOutput out = run_analyzer(fixture("no_such_file.cpp"));
  EXPECT_EQ(out.exit_code, 2) << out.text;
}

TEST(LintTree, RepoAnalyzesClean) {
  // The gate CI enforces: the shipped tree has zero findings. Waivers
  // are allowed (they carry justifications) — findings are not.
  const std::string root(NSP_REPO_ROOT);
  const RunOutput out = run_analyzer(
      root + "/src " + root + "/tools " + root + "/bench " + root +
      "/examples " + root + "/docs " + root + "/README.md");
  EXPECT_EQ(out.exit_code, 0) << out.text;
}

}  // namespace
