#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nsp::sim {
namespace {

TEST(Resource, GrantsImmediatelyWhenFree) {
  Simulator s;
  Resource r(s, 1);
  bool granted = false;
  r.acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(r.busy(), 1);
}

TEST(Resource, QueuesWhenBusyAndResumesFifo) {
  Simulator s;
  Resource r(s, 1);
  std::vector<int> order;
  r.acquire([&] { order.push_back(0); });
  r.acquire([&] { order.push_back(1); });
  r.acquire([&] { order.push_back(2); });
  EXPECT_EQ(r.queue_length(), 2u);
  r.release();  // wakes waiter 1 via an event
  s.run();
  r.release();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, MultiServerAllowsConcurrency) {
  Simulator s;
  Resource r(s, 3);
  int granted = 0;
  for (int k = 0; k < 5; ++k) r.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(r.queue_length(), 2u);
}

TEST(Resource, UseHoldsForDurationThenReleases) {
  Simulator s;
  Resource r(s, 1);
  double done_at = -1;
  r.use(2.0, [&] { done_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
  EXPECT_EQ(r.busy(), 0);
}

TEST(Resource, SequentialUsesSerialize) {
  Simulator s;
  Resource r(s, 1);
  double second_done = -1;
  r.use(2.0);
  r.use(3.0, [&] { second_done = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(second_done, 5.0);  // FIFO: 2.0 + 3.0
}

TEST(Resource, WaitTimeAccounted) {
  Simulator s;
  Resource r(s, 1);
  r.use(4.0);
  r.use(1.0);
  s.run();
  // Second request waited 4 seconds.
  EXPECT_DOUBLE_EQ(r.total_wait_time(), 4.0);
}

TEST(Resource, BusyIntegralMeasuresUtilization) {
  Simulator s;
  Resource r(s, 1);
  r.use(3.0);
  s.at(10.0, [] {});  // extend the clock
  s.run();
  EXPECT_DOUBLE_EQ(r.busy_time_integral(), 3.0);
  EXPECT_NEAR(r.busy_time_integral() / s.now(), 0.3, 1e-12);
}

TEST(Resource, GrantsCounter) {
  Simulator s;
  Resource r(s, 2);
  r.use(1.0);
  r.use(1.0);
  r.use(1.0);
  s.run();
  EXPECT_EQ(r.grants(), 3u);
}

TEST(Resource, InvalidServerCountThrows) {
  Simulator s;
  EXPECT_THROW(Resource(s, 0), std::invalid_argument);
}

TEST(Resource, SaturationGrowsQueueLinearly) {
  // Offered load 2x capacity: completion of the n-th job is ~n * hold.
  Simulator s;
  Resource r(s, 1);
  std::vector<double> done;
  for (int k = 0; k < 10; ++k) {
    s.at(0.5 * k, [&] { r.use(1.0, [&] { done.push_back(s.now()); }); });
  }
  s.run();
  ASSERT_EQ(done.size(), 10u);
  EXPECT_DOUBLE_EQ(done.back(), 10.0);  // throughput-limited, not arrival-limited
}

}  // namespace
}  // namespace nsp::sim
