#include "arch/kernel_profile.hpp"

#include <gtest/gtest.h>

namespace nsp::arch {
namespace {

TEST(KernelProfile, NavierStokesFlopsMatchTable1Anchor) {
  // Table 1: 145,000e6 FP ops over 5000 steps on 250x100 = 1160/pt/step.
  const auto p = KernelProfile::make(Equations::NavierStokes,
                                     CodeVersion::V5_CommonCollapse);
  const double per_point = p.flops + p.divides + p.pow_calls;
  EXPECT_NEAR(per_point, 1160.0, 0.06 * 1160.0);
}

TEST(KernelProfile, EulerFlopsMatchTable1Anchor) {
  const auto p =
      KernelProfile::make(Equations::Euler, CodeVersion::V5_CommonCollapse);
  const double per_point = p.flops + p.divides + p.pow_calls;
  EXPECT_NEAR(per_point, 616.0, 0.06 * 616.0);
}

TEST(KernelProfile, EulerRoughlyHalfOfNavierStokes) {
  // "Euler has roughly 50% of the computation of Navier-Stokes."
  const auto ns = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V5_CommonCollapse);
  const auto eu =
      KernelProfile::make(Equations::Euler, CodeVersion::V5_CommonCollapse);
  EXPECT_NEAR(eu.flops / ns.flops, 0.5, 0.1);
}

TEST(KernelProfile, DivisionCountsMatchPaper) {
  // 5.5e9 divisions before V4, 2.0e9 after (whole NS run: x 1.25e8
  // point-steps) -> 44 and 16 per point-step.
  const auto before =
      KernelProfile::make(Equations::NavierStokes, CodeVersion::V3_LoopInterchange);
  const auto after = KernelProfile::make(Equations::NavierStokes,
                                         CodeVersion::V4_DivisionToMultiply);
  EXPECT_DOUBLE_EQ(before.divides, 44.0);
  EXPECT_DOUBLE_EQ(after.divides, 16.0);
}

TEST(KernelProfile, StrengthReductionRemovesPows) {
  const auto v1 =
      KernelProfile::make(Equations::NavierStokes, CodeVersion::V1_Original);
  const auto v2 = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V2_StrengthReduction);
  EXPECT_GT(v1.pow_calls, 0.0);
  EXPECT_DOUBLE_EQ(v2.pow_calls, 0.0);
  EXPECT_GT(v2.flops, v1.flops);  // pow replaced by multiplies
}

TEST(KernelProfile, InterchangeFixesStride) {
  const auto v2 = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V2_StrengthReduction);
  const auto v3 = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V3_LoopInterchange);
  EXPECT_LT(v2.unit_stride_fraction, 0.7);
  EXPECT_GT(v3.unit_stride_fraction, 0.9);
}

TEST(KernelProfile, CommonCollapseReducesAccesses) {
  const auto v4 = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V4_DivisionToMultiply);
  const auto v5 = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V5_CommonCollapse);
  EXPECT_LT(v5.mem_accesses, v4.mem_accesses);
}

TEST(KernelProfile, V6V7ShareV5CpuCost) {
  const auto v5 = KernelProfile::make(Equations::NavierStokes,
                                      CodeVersion::V5_CommonCollapse);
  for (auto v : {CodeVersion::V6_OverlapComm, CodeVersion::V7_UnbundledSends}) {
    const auto p = KernelProfile::make(Equations::NavierStokes, v);
    EXPECT_DOUBLE_EQ(p.flops, v5.flops);
    EXPECT_DOUBLE_EQ(p.divides, v5.divides);
    EXPECT_DOUBLE_EQ(p.mem_accesses, v5.mem_accesses);
  }
}

TEST(KernelProfile, WorkingSetScalesWithRadialExtent) {
  const auto small = KernelProfile::make(Equations::NavierStokes,
                                         CodeVersion::V5_CommonCollapse, 50);
  const auto big = KernelProfile::make(Equations::NavierStokes,
                                       CodeVersion::V5_CommonCollapse, 200);
  EXPECT_DOUBLE_EQ(big.sweep_working_set_bytes,
                   4.0 * small.sweep_working_set_bytes);
}

TEST(KernelProfile, InvalidNjThrows) {
  EXPECT_THROW(KernelProfile::make(Equations::Euler,
                                   CodeVersion::V5_CommonCollapse, 0),
               std::invalid_argument);
}

TEST(KernelProfile, NamesIncludeEquationAndVersion) {
  const auto p =
      KernelProfile::make(Equations::Euler, CodeVersion::V3_LoopInterchange);
  EXPECT_NE(p.name.find("Euler"), std::string::npos);
  EXPECT_NE(p.name.find("3"), std::string::npos);
}

}  // namespace
}  // namespace nsp::arch
