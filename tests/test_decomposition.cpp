#include "par/decomposition.hpp"

#include <gtest/gtest.h>

namespace nsp::par {
namespace {

TEST(Decomposition, CoversDomainWithoutOverlap) {
  const auto b = axial_blocks(250, 16);
  ASSERT_EQ(b.size(), 16u);
  EXPECT_EQ(b.front().begin, 0);
  EXPECT_EQ(b.back().end, 250);
  for (std::size_t k = 1; k < b.size(); ++k) {
    EXPECT_EQ(b[k].begin, b[k - 1].end);
  }
}

TEST(Decomposition, WidthsDifferByAtMostOne) {
  // The near-perfect load balance of Figure 13.
  for (int p : {2, 3, 5, 7, 11, 16}) {
    const auto b = axial_blocks(250, p);
    int wmin = 1 << 30, wmax = 0;
    for (const auto& r : b) {
      wmin = std::min(wmin, r.end - r.begin);
      wmax = std::max(wmax, r.end - r.begin);
    }
    EXPECT_LE(wmax - wmin, 1) << "p=" << p;
  }
}

TEST(Decomposition, ExactDivisionGivesEqualBlocks) {
  const auto b = axial_blocks(256, 16);
  for (const auto& r : b) EXPECT_EQ(r.end - r.begin, 16);
}

TEST(Decomposition, SingleProcessorOwnsEverything) {
  const auto b = axial_blocks(100, 1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].begin, 0);
  EXPECT_EQ(b[0].end, 100);
}

TEST(Decomposition, RemainderGoesToLeadingRanks) {
  const auto b = axial_blocks(10, 3);  // 4, 3, 3
  EXPECT_EQ(b[0].end - b[0].begin, 4);
  EXPECT_EQ(b[1].end - b[1].begin, 3);
  EXPECT_EQ(b[2].end - b[2].begin, 3);
}

TEST(Decomposition, InvalidArgumentsThrow) {
  EXPECT_THROW(axial_blocks(10, 0), std::invalid_argument);
  EXPECT_THROW(axial_blocks(4, 8), std::invalid_argument);
}

}  // namespace
}  // namespace nsp::par
