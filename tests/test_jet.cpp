#include "core/jet.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nsp::core {
namespace {

TEST(Jet, ShapeFunctionLimits) {
  JetConfig jet;
  EXPECT_NEAR(jet.shape(0.0), 1.0, 1e-12);
  EXPECT_NEAR(jet.shape(0.2), 1.0, 1e-6);   // deep in the core
  EXPECT_NEAR(jet.shape(1.0), 0.5, 1e-12);  // shear-layer center
  EXPECT_NEAR(jet.shape(5.0), 0.0, 1e-6);   // free stream
}

TEST(Jet, ShapeMonotonicallyDecreases) {
  JetConfig jet;
  double prev = 2.0;
  for (double r = 0.05; r < 4.0; r += 0.05) {
    const double g = jet.shape(r);
    EXPECT_LE(g, prev + 1e-12);
    prev = g;
  }
}

TEST(Jet, MeanVelocityIsMachOnCenterlineZeroFar) {
  JetConfig jet;
  EXPECT_NEAR(jet.mean_u(0.0), jet.mach_c, 1e-9);
  EXPECT_NEAR(jet.mean_u(5.0), jet.u_coflow, 1e-5);
}

TEST(Jet, TemperatureProfileEndsAtRatioLimits) {
  // T = 1 on the centerline, T_inf = t_ratio in the free stream, with a
  // Crocco-Busemann bump in the shear layer.
  JetConfig jet;
  EXPECT_NEAR(jet.mean_t(0.0), 1.0, 1e-9);
  EXPECT_NEAR(jet.mean_t(5.0), jet.t_ratio, 1e-5);
  // The friction-heating term peaks at g = 1/2 (r = 1).
  const double bump = jet.mean_t(1.0) - (jet.t_ratio + 0.5 * (1.0 - jet.t_ratio));
  EXPECT_NEAR(bump, 0.5 * (jet.gas.gamma - 1.0) * jet.mach_c * jet.mach_c * 0.25,
              1e-9);
}

TEST(Jet, DensityFromConstantPressure) {
  JetConfig jet;
  // rho = p / (R T); with T_inf = 1/2, the free-stream density is 2.
  EXPECT_NEAR(jet.mean_rho(0.0), 1.0, 1e-9);
  EXPECT_NEAR(jet.mean_rho(5.0), 2.0, 1e-4);
}

TEST(Jet, ViscosityMatchesReynoldsNumber) {
  JetConfig jet;
  // mu = rho_c U_c D / Re = 1 * 1.5 * 2 / 1.2e6.
  EXPECT_NEAR(jet.viscosity(), 2.5e-6, 1e-12);
}

TEST(Jet, ExcitationFrequencyFromStrouhal) {
  JetConfig jet;
  // omega = 2 pi St U_c / D = 2 pi * 0.125 * 1.5 / 2.
  EXPECT_NEAR(jet.omega(), 2.0 * 3.14159265358979 * 0.09375, 1e-9);
}

TEST(Jet, AnalyticModePeaksInShearLayer) {
  JetConfig jet;
  const EigenMode mode = jet.analytic_mode();
  const double at_shear = std::fabs(mode.perturbation(1.0, 0.0).u);
  const double at_axis = std::fabs(mode.perturbation(0.05, 0.0).u);
  const double at_far = std::fabs(mode.perturbation(3.0, 0.0).u);
  EXPECT_GT(at_shear, 10.0 * at_axis);
  EXPECT_GT(at_shear, 10.0 * at_far);
}

TEST(Jet, AnalyticModeScalesWithEpsilon) {
  JetConfig a, b;
  a.eps = 1e-4;
  b.eps = 2e-4;
  const double ua = a.analytic_mode().perturbation(1.0, 0.3).u;
  const double ub = b.analytic_mode().perturbation(1.0, 0.3).u;
  EXPECT_NEAR(ub, 2.0 * ua, 1e-15);
}

TEST(Jet, RadialComponentInQuadrature) {
  JetConfig jet;
  const EigenMode mode = jet.analytic_mode();
  // At phase 0 the radial perturbation vanishes; at pi/2 the axial does.
  EXPECT_NEAR(mode.perturbation(1.0, 0.0).v, 0.0, 1e-15);
  EXPECT_NEAR(mode.perturbation(1.0, 1.5707963267948966).u, 0.0, 1e-12);
}

TEST(Jet, PerturbationIsSmallRelativeToMean) {
  JetConfig jet;
  const EigenMode mode = jet.analytic_mode();
  const Primitive d = mode.perturbation(1.0, 0.7);
  EXPECT_LT(std::fabs(d.u), 1e-3 * jet.mach_c);
  EXPECT_LT(std::fabs(d.p), 1e-3 * jet.mean_p());
}

TEST(Jet, PaperParametersAreDefaults) {
  JetConfig jet;
  EXPECT_DOUBLE_EQ(jet.mach_c, 1.5);
  EXPECT_DOUBLE_EQ(jet.t_ratio, 0.5);
  EXPECT_DOUBLE_EQ(jet.reynolds_d, 1.2e6);
  EXPECT_DOUBLE_EQ(jet.strouhal, 0.125);
}

}  // namespace
}  // namespace nsp::core
