#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nsp::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), x0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int k = 0; k < 10000; ++k) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(5);
  double s = 0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) s += r.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(11);
  for (int k = 0; k < 1000; ++k) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng r(13);
  for (int k = 0; k < 1000; ++k) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  double s = 0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) s += r.exponential(2.5);
  EXPECT_NEAR(s / n, 2.5, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(19);
  for (int k = 0; k < 1000; ++k) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(23);
  double s = 0, s2 = 0;
  const int n = 200000;
  for (int k = 0; k < n; ++k) {
    const double x = r.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.01);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

TEST(Rng, NormalScaleAndShift) {
  Rng r(29);
  double s = 0;
  const int n = 50000;
  for (int k = 0; k < n; ++k) s += r.normal(10.0, 0.5);
  EXPECT_NEAR(s / n, 10.0, 0.02);
}

// ---- Named sub-streams -------------------------------------------------

TEST(RngStreams, StreamSeedIsCompileTimeStable) {
  // stream_seed is constexpr: consumers (fault schedules) can bake
  // stream identities into constants. The exact values are part of the
  // reproducibility contract — changing them changes every fault
  // timeline — so pin two of them.
  static_assert(stream_seed(0, "solver") != stream_seed(0, "fault.msg"));
  constexpr auto a = stream_seed(42, "fault.windows");
  EXPECT_EQ(a, stream_seed(42, "fault.windows"));
}

TEST(RngStreams, SameNameSameStream) {
  Rng a = Rng::stream(123, "fault.crash");
  Rng b = Rng::stream(123, "fault.crash");
  for (int k = 0; k < 64; ++k) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStreams, DifferentNamesDecorrelated) {
  Rng a = Rng::stream(123, "solver");
  Rng b = Rng::stream(123, "schedule");
  Rng c = Rng::stream(123, "fault.msg");
  int ab = 0, ac = 0;
  for (int k = 0; k < 64; ++k) {
    const auto x = a.next_u64(), y = b.next_u64(), z = c.next_u64();
    ab += x == y;
    ac += x == z;
  }
  EXPECT_LE(ab, 1);
  EXPECT_LE(ac, 1);
}

TEST(RngStreams, DifferentBasesDecorrelated) {
  Rng a = Rng::stream(1, "fault.msg");
  Rng b = Rng::stream(2, "fault.msg");
  int same = 0;
  for (int k = 0; k < 64; ++k) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace nsp::sim
