// Property sweeps of the replay engine across every (platform,
// equations, processor-count) combination: sanity invariants that must
// hold regardless of calibration values.
#include <gtest/gtest.h>

#include "perf/replay.hpp"

#include "exec/run_result.hpp"

namespace nsp::perf {
namespace {

using arch::Equations;
using arch::Platform;

struct Combo {
  std::size_t platform_index;
  Equations eq;
};

class ReplaySweep : public ::testing::TestWithParam<Combo> {
 protected:
  Platform platform() const {
    return Platform::all()[GetParam().platform_index];
  }
  AppModel app() const { return AppModel::paper(GetParam().eq); }
};

TEST_P(ReplaySweep, BusyTimeFallsMonotonicallyWithP) {
  const auto plat = platform();
  const auto a = app();
  double prev = 1e300;
  for (int p : {1, 2, 4, 8}) {
    if (p > plat.max_procs) break;
    const auto r = replay(a, plat, p);
    EXPECT_LT(exec::avg_busy(r), prev) << plat.name << " P=" << p;
    prev = exec::avg_busy(r);
  }
}

TEST_P(ReplaySweep, ComputeWorkIsConserved) {
  // Total compute seconds across ranks ~ P-independent (same points).
  const auto plat = platform();
  const auto a = app();
  if (plat.shared_memory) GTEST_SKIP() << "analytic path";
  const auto r1 = replay(a, plat, 1);
  const auto r8 = replay(a, plat, 8);
  double total8 = 0;
  for (const auto& rk : r8.ranks) total8 += rk.compute;
  EXPECT_NEAR(total8, r1.ranks[0].compute, 0.02 * r1.ranks[0].compute)
      << plat.name;
}

TEST_P(ReplaySweep, ExecAtLeastBusiestRank) {
  const auto r = replay(app(), platform(), std::min(8, platform().max_procs));
  EXPECT_GE(r.exec_time * 1.0001, exec::max_busy(r));
}

TEST_P(ReplaySweep, WaitsAreNonNegative) {
  const auto r = replay(app(), platform(), std::min(8, platform().max_procs));
  for (const auto& rk : r.ranks) {
    EXPECT_GE(rk.wait, 0.0);
    EXPECT_GE(rk.compute, 0.0);
    EXPECT_GE(rk.sw_overhead, 0.0);
  }
}

TEST_P(ReplaySweep, FinishTimesWithinExec) {
  const auto r = replay(app(), platform(), std::min(8, platform().max_procs));
  for (const auto& rk : r.ranks) {
    EXPECT_LE(rk.finish, r.exec_time + 1e-9);
    EXPECT_GT(rk.finish, 0.0);
  }
}

TEST_P(ReplaySweep, EdgeRanksNeverBusierThanInterior) {
  const auto plat = platform();
  if (plat.shared_memory) GTEST_SKIP();
  const auto r = replay(app(), plat, 8);
  // Edge ranks do the same compute but fewer sends; with equal block
  // widths (250/8 is not integral, so allow width effects) their busy
  // time must not exceed the busiest interior rank by more than one
  // column's worth.
  const double interior_max =
      std::max(r.ranks[3].busy(), r.ranks[4].busy());
  EXPECT_LE(r.ranks[0].busy(), interior_max * 1.10);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> cs;
  for (std::size_t k = 0; k < Platform::all().size(); ++k) {
    cs.push_back({k, Equations::NavierStokes});
    cs.push_back({k, Equations::Euler});
  }
  return cs;
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string n = Platform::all()[info.param.platform_index].name + "_" +
                  (info.param.eq == Equations::NavierStokes ? "NS" : "Euler");
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, ReplaySweep,
                         ::testing::ValuesIn(all_combos()), combo_name);

}  // namespace
}  // namespace nsp::perf
