#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"

namespace nsp::core {
namespace {

/// Builds a state field with a uniform primitive state.
StateField uniform_state(int ni, int nj, const Gas& gas, const Primitive& w) {
  StateField q(ni, nj);
  for (int j = -kGhost; j < nj + kGhost; ++j) {
    for (int i = -kGhost; i < ni + kGhost; ++i) {
      q.rho(i, j) = w.rho;
      q.mx(i, j) = w.rho * w.u;
      q.mr(i, j) = w.rho * w.v;
      q.e(i, j) = gas.total_energy(w.rho, w.u, w.v, w.p);
    }
  }
  return q;
}

TEST(Kernels, PrimitivesRecoverKnownState) {
  Gas gas;
  const Primitive w0{1.5, 0.7, -0.3, 0.9};
  StateField q = uniform_state(6, 4, gas, w0);
  PrimitiveField w(6, 4);
  compute_primitives(gas, q, w, {0, 6}, 0, 4);
  EXPECT_NEAR(w.u(2, 2), w0.u, 1e-14);
  EXPECT_NEAR(w.v(2, 2), w0.v, 1e-14);
  EXPECT_NEAR(w.p(2, 2), w0.p, 1e-14);
  EXPECT_NEAR(w.t(2, 2), gas.temperature(w0.p, w0.rho), 1e-14);
}

TEST(Kernels, AllVariantsAgreeToRounding) {
  Gas gas;
  StateField q(8, 6);
  // A non-trivial smooth state.
  for (int j = -kGhost; j < 6 + kGhost; ++j) {
    for (int i = -kGhost; i < 8 + kGhost; ++i) {
      const double rho = 1.0 + 0.1 * std::sin(0.3 * i) + 0.05 * j / 6.0;
      const double u = 0.5 + 0.2 * std::cos(0.4 * j);
      const double v = 0.1 * std::sin(0.2 * i + 0.1 * j);
      const double p = 0.7 + 0.05 * std::cos(0.25 * i);
      q.rho(i, j) = rho;
      q.mx(i, j) = rho * u;
      q.mr(i, j) = rho * v;
      q.e(i, j) = gas.total_energy(rho, u, v, p);
    }
  }
  PrimitiveField ref(8, 6);
  compute_primitives(gas, q, ref, {0, 8}, 0, 6, KernelVariant::V5);
  for (auto v : {KernelVariant::V1, KernelVariant::V2, KernelVariant::V3,
                 KernelVariant::V4}) {
    PrimitiveField w(8, 6);
    compute_primitives(gas, q, w, {0, 8}, 0, 6, v);
    for (int j = 0; j < 6; ++j) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_NEAR(w.u(i, j), ref.u(i, j), 1e-12);
        EXPECT_NEAR(w.p(i, j), ref.p(i, j), 1e-12);
        EXPECT_NEAR(w.t(i, j), ref.t(i, j), 1e-12);
      }
    }
  }
}

TEST(Kernels, InviscidFluxMatchesHandValues) {
  Gas gas;
  const Primitive w0{2.0, 1.2, 0.4, 0.8};
  StateField q = uniform_state(5, 3, gas, w0);
  PrimitiveField w(5, 3);
  compute_primitives(gas, q, w, {0, 5}, 0, 3);
  StressField s(5, 3);
  StateField f(5, 3);
  compute_flux_x(gas, q, w, s, /*viscous=*/false, f, {0, 5});
  const double e = gas.total_energy(w0.rho, w0.u, w0.v, w0.p);
  EXPECT_NEAR(f.rho(2, 1), w0.rho * w0.u, 1e-14);
  EXPECT_NEAR(f.mx(2, 1), w0.rho * w0.u * w0.u + w0.p, 1e-14);
  EXPECT_NEAR(f.mr(2, 1), w0.rho * w0.u * w0.v, 1e-14);
  EXPECT_NEAR(f.e(2, 1), (e + w0.p) * w0.u, 1e-14);
}

TEST(Kernels, RadialFluxCarriesRadiusFactor) {
  Gas gas;
  Grid grid = Grid::coarse(5, 6);
  const Primitive w0{1.0, 0.5, 0.25, 1.0 / gas.gamma};
  StateField q = uniform_state(5, 6, gas, w0);
  PrimitiveField w(5, 6);
  compute_primitives(gas, q, w, {0, 5}, -kGhost, 6 + kGhost);
  StressField s(5, 6);
  StateField gt(5, 6);
  compute_flux_r(gas, grid, q, w, s, false, gt, {0, 5}, 0, 6);
  // Gt_rho = r * rho * v at each radius.
  for (int j = 0; j < 6; ++j) {
    EXPECT_NEAR(gt.rho(2, j), grid.r(j) * w0.rho * w0.v, 1e-13);
  }
}

TEST(Kernels, StressesVanishForUniformFlow) {
  Gas gas;
  gas.mu = 1e-3;
  Grid grid = Grid::coarse(8, 8);
  const Primitive w0{1.0, 0.9, 0.0, 0.7};
  StateField q = uniform_state(8, 8, gas, w0);
  PrimitiveField w(8, 8);
  compute_primitives(gas, q, w, {0, 8}, -kGhost, 8 + kGhost);
  StressField s(8, 8);
  compute_stresses(gas, grid, w, s, {0, 8}, 0, 8);
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(s.txx(i, j), 0.0, 1e-15);
      EXPECT_NEAR(s.txr(i, j), 0.0, 1e-15);
      EXPECT_NEAR(s.qx(i, j), 0.0, 1e-15);
    }
  }
}

TEST(Kernels, ShearFlowGivesTxr) {
  Gas gas;
  gas.mu = 2e-3;
  Grid grid = Grid::coarse(8, 8);
  StateField q(8, 8);
  const double dudr = 0.3;  // u = dudr * r
  for (int j = -kGhost; j < 8 + kGhost; ++j) {
    for (int i = -kGhost; i < 8 + kGhost; ++i) {
      const double u = dudr * grid.r(j);
      q.rho(i, j) = 1.0;
      q.mx(i, j) = u;
      q.mr(i, j) = 0.0;
      q.e(i, j) = gas.total_energy(1.0, u, 0.0, 0.7);
    }
  }
  PrimitiveField w(8, 8);
  compute_primitives(gas, q, w, {0, 8}, -kGhost, 8 + kGhost);
  StressField s(8, 8);
  compute_stresses(gas, grid, w, s, {0, 8}, 0, 8);
  EXPECT_NEAR(s.txr(4, 4), gas.mu * dudr, 1e-12);
  EXPECT_NEAR(s.txx(4, 4), 0.0, 1e-14);
}

TEST(Kernels, CubicExtrapolationExactForCubics) {
  // F(-1) = 4F0 - 6F1 + 4F2 - F3 reproduces cubic polynomials exactly.
  StateField f(8, 4);
  const auto poly = [](double x) { return 2.0 + x + 0.5 * x * x - 0.25 * x * x * x; };
  for (int c = 0; c < 4; ++c)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 8; ++i) f[c](i, j) = poly(i);
  extrapolate_flux_ghost_x(f, 8, -1);
  extrapolate_flux_ghost_x(f, 8, +1);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(f.rho(-1, j), poly(-1), 1e-11);
    EXPECT_NEAR(f.rho(-2, j), poly(-2), 1e-11);
    EXPECT_NEAR(f.rho(8, j), poly(8), 1e-11);
    EXPECT_NEAR(f.rho(9, j), poly(9), 1e-11);
  }
}

TEST(Kernels, QGhostRowsReflectWithAntisymmetricMr) {
  StateField q(4, 6);
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 4; ++i) {
      q.rho(i, j) = 1.0 + j;
      q.mr(i, j) = 0.1 * (j + 1);
      q.mx(i, j) = 2.0 + j;
      q.e(i, j) = 3.0 + j;
    }
  const double far[4] = {9.0, 8.0, 0.0, 7.0};
  fill_q_ghost_rows(q, {0, 4}, far);
  EXPECT_DOUBLE_EQ(q.rho(1, -1), q.rho(1, 0));
  EXPECT_DOUBLE_EQ(q.rho(1, -2), q.rho(1, 1));
  EXPECT_DOUBLE_EQ(q.mr(1, -1), -q.mr(1, 0));
  EXPECT_DOUBLE_EQ(q.mr(1, -2), -q.mr(1, 1));
  EXPECT_DOUBLE_EQ(q.rho(1, 6), 9.0);
  EXPECT_DOUBLE_EQ(q.e(1, 7), 7.0);
}

TEST(Kernels, RadialFluxAxisReflectionSigns) {
  StateField gt(4, 6);
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 4; ++i) {
      gt.rho(i, j) = 1.0 + j;
      gt.mx(i, j) = 2.0 + j;
      gt.mr(i, j) = 3.0 + j;
      gt.e(i, j) = 4.0 + j;
    }
  reflect_flux_r_axis(gt, {0, 4});
  // Component symmetry [+, +, -, +].
  EXPECT_DOUBLE_EQ(gt.rho(2, -1), gt.rho(2, 0));
  EXPECT_DOUBLE_EQ(gt.mx(2, -1), gt.mx(2, 0));
  EXPECT_DOUBLE_EQ(gt.mr(2, -1), -gt.mr(2, 0));
  EXPECT_DOUBLE_EQ(gt.e(2, -1), gt.e(2, 0));
  EXPECT_DOUBLE_EQ(gt.mr(2, -2), -gt.mr(2, 1));
}

TEST(Kernels, PredictorLeavesConstantStateUnchanged) {
  // With a constant flux field, the one-sided differences vanish.
  StateField q(8, 4), f(8, 4), qp(8, 4);
  for (int c = 0; c < 4; ++c) {
    for (int j = -kGhost; j < 4 + kGhost; ++j)
      for (int i = -kGhost; i < 8 + kGhost; ++i) {
        q[c](i, j) = 2.0;
        f[c](i, j) = 5.0;
      }
  }
  predictor_x(q, f, qp, 0.1, SweepVariant::L1, {0, 8});
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 8; ++i) EXPECT_NEAR(qp.rho(i, j), 2.0, 1e-14);
}

TEST(Kernels, PredictorAdvectionSignCorrect) {
  // q_t = -dF/dx: a positive flux gradient must decrease q.
  StateField q(8, 2), f(8, 2), qp(8, 2);
  for (int j = -kGhost; j < 2 + kGhost; ++j)
    for (int i = -kGhost; i < 8 + kGhost; ++i) {
      q.rho(i, j) = 1.0;
      f.rho(i, j) = 0.5 * i;  // dF/dx = 0.5 per cell
    }
  const double lambda = 0.1;  // dt/(6 dx)
  predictor_x(q, f, qp, lambda, SweepVariant::L1, {0, 8});
  // Forward difference of linear F: 8F(i+1)-7F(i)-F(i+2) = 6*dF.
  EXPECT_NEAR(qp.rho(3, 0), 1.0 - lambda * 6.0 * 0.5, 1e-13);
  predictor_x(q, f, qp, lambda, SweepVariant::L2, {0, 8});
  EXPECT_NEAR(qp.rho(3, 0), 1.0 - lambda * 6.0 * 0.5, 1e-13);
}

TEST(Kernels, CorrectorAveragesStates) {
  StateField q(6, 2), qp(6, 2), f(6, 2), qn(6, 2);
  for (int j = -kGhost; j < 2 + kGhost; ++j)
    for (int i = -kGhost; i < 6 + kGhost; ++i) {
      q.rho(i, j) = 1.0;
      qp.rho(i, j) = 3.0;
      f.rho(i, j) = 0.0;
    }
  corrector_x(q, qp, f, qn, 0.1, SweepVariant::L1, {0, 6});
  EXPECT_NEAR(qn.rho(2, 0), 2.0, 1e-14);
}

TEST(Kernels, FlopCounterAccumulates) {
  Gas gas;
  StateField q = uniform_state(10, 10, gas, {1.0, 0.5, 0.0, 0.7});
  PrimitiveField w(10, 10);
  FlopCounter fc;
  compute_primitives(gas, q, w, {0, 10}, 0, 10, KernelVariant::V5, &fc);
  EXPECT_GT(fc.adds_muls, 0.0);
  EXPECT_GT(fc.divides, 0.0);
  const double t1 = fc.total();
  compute_primitives(gas, q, w, {0, 10}, 0, 10, KernelVariant::V5, &fc);
  EXPECT_NEAR(fc.total(), 2.0 * t1, 1e-9);
}

TEST(Kernels, V1CountsPowsAndMoreDivides) {
  Gas gas;
  StateField q = uniform_state(10, 10, gas, {1.0, 0.5, 0.0, 0.7});
  PrimitiveField w(10, 10);
  FlopCounter v1, v5;
  compute_primitives(gas, q, w, {0, 10}, 0, 10, KernelVariant::V1, &v1);
  compute_primitives(gas, q, w, {0, 10}, 0, 10, KernelVariant::V5, &v5);
  EXPECT_GT(v1.pows, 0.0);
  EXPECT_EQ(v5.pows, 0.0);
  EXPECT_GT(v1.divides, 2.0 * v5.divides);
}

}  // namespace
}  // namespace nsp::core
