#include "perf/measure.hpp"

#include <gtest/gtest.h>

#include "perf/replay.hpp"

namespace nsp::perf {
namespace {

core::SolverConfig small_cfg(bool viscous = true) {
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(64, 24);
  cfg.viscous = viscous;
  return cfg;
}

TEST(Measure, CapturesArithmeticDensity) {
  const LiveMeasurement m = measure_live(small_cfg());
  EXPECT_GT(m.flops_per_point_step, 100.0);
  EXPECT_LT(m.flops_per_point_step, 3000.0);
  EXPECT_GT(m.divides_per_point_step, 0.0);
}

TEST(Measure, CapturesMessageSchedule) {
  const LiveMeasurement m = measure_live(small_cfg());
  // The live NS solver sends 10 messages per step from interior ranks.
  EXPECT_EQ(m.sends_per_step_interior, 10);
  EXPECT_GT(m.bytes_per_step_interior, 0.0);
}

TEST(Measure, EulerSchedulesAreLeaner) {
  const LiveMeasurement ns = measure_live(small_cfg(true));
  const LiveMeasurement eu = measure_live(small_cfg(false));
  EXPECT_LT(eu.sends_per_step_interior, ns.sends_per_step_interior);
  EXPECT_LT(eu.flops_per_point_step, 0.8 * ns.flops_per_point_step);
}

TEST(Measure, ModelTotalsMatchMeasurement) {
  const auto cfg = small_cfg();
  const LiveMeasurement m = measure_live(cfg);
  const AppModel app = model_from_measurement(cfg, m, 1000);
  const double expected_flops = m.flops_per_point_step *
                                cfg.grid.ni * cfg.grid.nj * 1000.0;
  EXPECT_NEAR(app.total_flops(), expected_flops, 0.02 * expected_flops);
  // Interior per-step sends survive into the schedule.
  EXPECT_EQ(app.sends_per_step(8, 4), m.sends_per_step_interior);
}

TEST(Measure, MeasuredModelReplays) {
  const auto cfg = small_cfg();
  const LiveMeasurement m = measure_live(cfg);
  const AppModel app = model_from_measurement(cfg, m, 1000);
  const auto r = replay(app, arch::Platform::lace560_allnode_s(), 8);
  EXPECT_GT(r.exec_time, 0.0);
  EXPECT_GT(r.ranks[3].sends, 0u);
  // Sanity: this small problem on 8 ranks finishes far faster than the
  // paper's production run.
  const auto paper = replay(AppModel::paper(arch::Equations::NavierStokes),
                            arch::Platform::lace560_allnode_s(), 8);
  EXPECT_LT(r.exec_time, paper.exec_time);
}

TEST(Measure, PhaseFractionsStillSumToOne) {
  const auto cfg = small_cfg();
  const AppModel app = model_from_measurement(cfg, measure_live(cfg), 10);
  double sum = 0;
  for (const auto& ph : app.phases) sum += ph.compute_fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace nsp::perf
