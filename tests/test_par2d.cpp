// The 2-D (axial x radial) decomposition — the paper's future work —
// must also reproduce the serial solution exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "par/subdomain_solver2d.hpp"

namespace nsp::par {
namespace {

using core::Grid;
using core::Solver;
using core::SolverConfig;
using core::StateField;

double max_interior_diff(const StateField& a, const StateField& b, int ni,
                         int nj) {
  double m = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      for (int i = 0; i < ni; ++i) {
        m = std::max(m, std::fabs(a[c](i, j) - b[c](i, j)));
      }
    }
  }
  return m;
}

struct GridCase {
  int px, py;
  bool viscous;
};

class Par2DEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(Par2DEquivalence, MatchesSerialBitwise) {
  const auto [px, py, viscous] = GetParam();
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 32);
  cfg.viscous = viscous;
  Solver serial(cfg);
  serial.initialize();
  serial.run(12);
  const StateField qpar = run_parallel_jet_2d(cfg, px, py, 12);
  EXPECT_EQ(max_interior_diff(serial.state(), qpar, 48, 32), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid48x32, Par2DEquivalence,
    ::testing::Values(GridCase{1, 2, true}, GridCase{1, 4, true},
                      GridCase{2, 2, true}, GridCase{4, 2, true},
                      GridCase{2, 4, true}, GridCase{3, 3, true},
                      GridCase{1, 4, false}, GridCase{2, 2, false},
                      GridCase{4, 4, false}),
    [](const auto& info) {
      return std::string(info.param.viscous ? "NS" : "Euler") + "_" +
             std::to_string(info.param.px) + "x" +
             std::to_string(info.param.py);
    });

TEST(Par2D, DegeneratesToOneDAtPyOne) {
  // px x 1 must agree with the dedicated 1-D solver (and serial).
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 20);
  Solver serial(cfg);
  serial.initialize();
  serial.run(10);
  const StateField q2d = run_parallel_jet_2d(cfg, 4, 1, 10);
  EXPECT_EQ(max_interior_diff(serial.state(), q2d, 48, 20), 0.0);
}

TEST(Par2D, UnevenBlocksExact) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(50, 30);  // 50/3 and 30/4 are uneven
  Solver serial(cfg);
  serial.initialize();
  serial.run(8);
  const StateField qpar = run_parallel_jet_2d(cfg, 3, 4, 8);
  EXPECT_EQ(max_interior_diff(serial.state(), qpar, 50, 30), 0.0);
}

TEST(Par2D, SubgridCoordinatesBitIdentical) {
  const Grid g = Grid::coarse(48, 32);
  const Grid sub = g.subgrid(13, 10, 7, 9);
  for (int i = -2; i < 12; ++i) {
    ASSERT_EQ(sub.x(i), g.x(13 + i));
  }
  for (int j = -2; j < 11; ++j) {
    ASSERT_EQ(sub.r(j), g.r(7 + j));
  }
  ASSERT_EQ(sub.dx(), g.dx());
  ASSERT_EQ(sub.dr(), g.dr());
}

TEST(Par2D, RejectsMismatchedRankGrid) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 32);
  mp::Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([&](mp::Comm& comm) { SubdomainSolver2D s(cfg, comm, 3, 2); }),
      std::invalid_argument);
}

TEST(Par2D, RejectsTooShallowSubdomains) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 12);  // 12/4 = 3 rows < 2*kGhost
  mp::Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([&](mp::Comm& comm) { SubdomainSolver2D s(cfg, comm, 1, 4); }),
      std::invalid_argument);
}

TEST(Par2D, RadialCutsCostMoreVolumeThanAxial) {
  // The model-level claim behind bench_ablation_decomposition, measured
  // live: with the same rank count, pure radial cuts move more bytes
  // (boundary rows of 48 points vs columns of 32).
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 32);
  std::vector<core::CommCounter> axial, radial;
  run_parallel_jet_2d(cfg, 4, 1, 6, &axial);
  run_parallel_jet_2d(cfg, 1, 4, 6, &radial);
  double axial_bytes = 0, radial_bytes = 0;
  for (const auto& c : axial) axial_bytes += c.bytes_sent;
  for (const auto& c : radial) radial_bytes += c.bytes_sent;
  EXPECT_GT(radial_bytes, 1.2 * axial_bytes);
}

TEST(Par2D, DtMatchesSerial) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 32);
  Solver serial(cfg);
  serial.initialize();
  mp::Cluster cluster(4);
  cluster.run([&](mp::Comm& comm) {
    SubdomainSolver2D s(cfg, comm, 2, 2);
    s.initialize();
    EXPECT_EQ(s.dt(), serial.dt());
  });
}

TEST(Par2D, LongerRunStaysFinite) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(40, 24);
  const StateField q = run_parallel_jet_2d(cfg, 2, 3, 40);
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < 24; ++j) {
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(std::isfinite(q[c](i, j)));
      }
    }
  }
}

}  // namespace
}  // namespace nsp::par
