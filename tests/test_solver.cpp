#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nsp::core {
namespace {

SolverConfig jet_config(int ni = 60, int nj = 24) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(ni, nj);
  cfg.viscous = true;
  return cfg;
}

TEST(Solver, InitializeSetsMeanFlowAndPositiveDt) {
  Solver s(jet_config());
  s.initialize();
  EXPECT_GT(s.dt(), 0.0);
  EXPECT_EQ(s.steps_taken(), 0);
  EXPECT_NEAR(s.state().rho(10, 0), 1.0, 0.05);       // jet core
  EXPECT_NEAR(s.state().rho(10, 23), 2.0, 0.05);      // cold free stream
  EXPECT_NEAR(s.max_mach(), 1.5, 0.05);
}

TEST(Solver, StepAdvancesTimeAndCounters) {
  Solver s(jet_config());
  s.initialize();
  s.step();
  EXPECT_EQ(s.steps_taken(), 1);
  EXPECT_NEAR(s.time(), s.dt(), 1e-15);
  s.run(3);
  EXPECT_EQ(s.steps_taken(), 4);
}

TEST(Solver, StableOverManyStepsNavierStokes) {
  Solver s(jet_config());
  s.initialize();
  s.run(200);
  EXPECT_TRUE(s.finite());
  EXPECT_LT(s.max_mach(), 2.5);
  EXPECT_GT(s.max_mach(), 1.0);
}

TEST(Solver, StableOverManyStepsEuler) {
  SolverConfig cfg = jet_config();
  cfg.viscous = false;
  Solver s(cfg);
  s.initialize();
  s.run(200);
  EXPECT_TRUE(s.finite());
}

TEST(Solver, PaperGridRunsStably) {
  SolverConfig cfg;
  cfg.grid = Grid::paper();
  Solver s(cfg);
  s.initialize();
  s.run(50);
  EXPECT_TRUE(s.finite());
  EXPECT_LT(s.max_mach(), 2.0);
}

TEST(Solver, ExcitationPerturbsTheFlow) {
  // With excitation the flow must depart from the steady mean near the
  // inflow; without it the departure is much smaller.
  SolverConfig excited = jet_config(80, 32);
  SolverConfig quiet = excited;
  quiet.jet.eps = 0.0;
  Solver se(excited), sq(quiet);
  se.initialize();
  sq.initialize();
  se.run(100);
  sq.run(100);
  double dev_e = 0, dev_q = 0;
  for (int j = 0; j < 32; ++j) {
    for (int i = 0; i < 20; ++i) {  // near-nozzle region
      dev_e = std::max(dev_e, std::fabs(se.state().mr(i, j)));
      dev_q = std::max(dev_q, std::fabs(sq.state().mr(i, j)));
    }
  }
  EXPECT_GT(dev_e, 1e-7);  // the excitation injects radial momentum
}

TEST(Solver, FlopCountingScalesWithWork) {
  SolverConfig cfg = jet_config(40, 16);
  cfg.count_flops = true;
  Solver s(cfg);
  s.initialize();
  s.run(2);
  const double f2 = s.flops().total();
  s.run(2);
  EXPECT_NEAR(s.flops().total(), 2.0 * f2, 0.01 * f2);
  EXPECT_GT(f2, 100.0 * 40 * 16);  // hundreds of flops per point per step
}

TEST(Solver, EulerCheaperThanNavierStokes) {
  // Table 1: Euler has roughly 50% of the computation.
  SolverConfig ns = jet_config(40, 16);
  ns.count_flops = true;
  SolverConfig eu = ns;
  eu.viscous = false;
  Solver a(ns), b(eu);
  a.initialize();
  b.initialize();
  a.run(5);
  b.run(5);
  const double ratio = b.flops().total() / a.flops().total();
  EXPECT_LT(ratio, 0.8);
  EXPECT_GT(ratio, 0.3);
}

TEST(Solver, AxialMomentumFieldShapedLikeAJet) {
  Solver s(jet_config(60, 24));
  s.initialize();
  s.run(20);
  const auto mx = s.axial_momentum();
  ASSERT_EQ(mx.size(), 60u * 24u);
  // Core momentum ~ rho u = 1.5; free stream ~ 0.
  EXPECT_GT(mx[30 * 24 + 0], 1.0);
  EXPECT_LT(std::fabs(mx[30 * 24 + 23]), 0.1);
}

TEST(Solver, SmoothingKeepsUniformFlowUniform) {
  SolverConfig cfg = jet_config(40, 16);
  cfg.jet.u_coflow = cfg.jet.mach_c = 0.5;
  cfg.jet.t_ratio = 1.0;
  cfg.jet.eps = 0.0;
  cfg.viscous = false;
  cfg.smoothing = 0.01;
  Solver s(cfg);
  s.initialize();
  s.run(10);
  EXPECT_TRUE(s.finite());
  EXPECT_NEAR(s.state().rho(20, 8), 1.0, 1e-10);
}

TEST(Solver, SutherlandViscosityRunsStably) {
  SolverConfig cfg = jet_config(60, 24);
  cfg.jet.gas.sutherland = true;
  Solver s(cfg);
  s.initialize();
  s.run(100);
  EXPECT_TRUE(s.finite());
  EXPECT_LT(s.max_mach(), 2.5);
}

TEST(Solver, SutherlandChangesTheViscousSolution) {
  SolverConfig a = jet_config(50, 20);
  SolverConfig b = a;
  b.jet.gas.sutherland = true;
  Solver sa(a), sb(b);
  sa.initialize();
  sb.initialize();
  sa.run(40);
  sb.run(40);
  double diff = 0;
  for (int j = 0; j < 20; ++j) {
    for (int i = 0; i < 50; ++i) {
      diff = std::max(diff, std::fabs(sa.state().e(i, j) - sb.state().e(i, j)));
    }
  }
  EXPECT_GT(diff, 0.0);   // the transport model matters...
  EXPECT_LT(diff, 1e-2);  // ...but only through the thin shear layer
}

TEST(Solver, StepWithoutInitializeSelfInitializes) {
  Solver s(jet_config(40, 16));
  s.step();
  EXPECT_EQ(s.steps_taken(), 1);
  EXPECT_TRUE(s.finite());
}

TEST(Solver, ConservedIntegralPositive) {
  Solver s(jet_config());
  s.initialize();
  EXPECT_GT(s.conserved_integral(0), 0.0);  // mass
  EXPECT_GT(s.conserved_integral(3), 0.0);  // energy
}

TEST(Solver, DtScalesWithGridSpacing) {
  Solver coarse(jet_config(40, 16));
  Solver fine(jet_config(80, 32));
  coarse.initialize();
  fine.initialize();
  EXPECT_NEAR(fine.dt() / coarse.dt(), 0.5, 0.01);
}

}  // namespace
}  // namespace nsp::core
