#include "core/field.hpp"

#include <gtest/gtest.h>

namespace nsp::core {
namespace {

TEST(Field2D, InitializesToGivenValue) {
  Field2D f(4, 3, 7.5);
  for (int j = -kGhost; j < 3 + kGhost; ++j)
    for (int i = -kGhost; i < 4 + kGhost; ++i) EXPECT_DOUBLE_EQ(f(i, j), 7.5);
}

TEST(Field2D, GhostIndicesAreAddressable) {
  Field2D f(4, 3);
  f(-kGhost, -kGhost) = 1.0;
  f(4 + kGhost - 1, 3 + kGhost - 1) = 2.0;
  EXPECT_DOUBLE_EQ(f(-kGhost, -kGhost), 1.0);
  EXPECT_DOUBLE_EQ(f(4 + kGhost - 1, 3 + kGhost - 1), 2.0);
}

TEST(Field2D, AxialIndexIsContiguous) {
  Field2D f(8, 4);
  f(0, 0) = 1.0;
  f(1, 0) = 2.0;
  const double* p = f.row(0) + kGhost;
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
}

TEST(Field2D, JStrideSeparatesRows) {
  Field2D f(8, 4);
  f(3, 1) = 5.0;
  const double* base = f.row(0) + kGhost;
  EXPECT_DOUBLE_EQ(base[f.jstride() + 3], 5.0);
}

TEST(Field2D, InteriorSumExcludesGhosts) {
  Field2D f(3, 2, 0.0);
  for (int j = -kGhost; j < 2 + kGhost; ++j)
    for (int i = -kGhost; i < 3 + kGhost; ++i) f(i, j) = 1.0;
  EXPECT_DOUBLE_EQ(f.interior_sum(), 6.0);
}

TEST(Field2D, FillSetsEverything) {
  Field2D f(3, 3, 1.0);
  f.fill(-2.0);
  EXPECT_DOUBLE_EQ(f(-kGhost, -kGhost), -2.0);
  EXPECT_DOUBLE_EQ(f.interior_sum(), -18.0);
}

TEST(StateField, ComponentAccessorsAlias) {
  StateField q(3, 3);
  q.rho(1, 1) = 1.0;
  q.mx(1, 1) = 2.0;
  q.mr(1, 1) = 3.0;
  q.e(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(q[0](1, 1), 1.0);
  EXPECT_DOUBLE_EQ(q[1](1, 1), 2.0);
  EXPECT_DOUBLE_EQ(q[2](1, 1), 3.0);
  EXPECT_DOUBLE_EQ(q[3](1, 1), 4.0);
}

TEST(StateField, DimensionsPropagate) {
  StateField q(7, 5);
  EXPECT_EQ(q.ni(), 7);
  EXPECT_EQ(q.nj(), 5);
  EXPECT_EQ(StateField::kComponents, 4);
}

}  // namespace
}  // namespace nsp::core
