// The paper's optimization Versions change loop order and instruction
// selection, never the mathematics: every variant must produce the same
// flow field to rounding.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"

namespace nsp::core {
namespace {

class VersionEquivalence : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(VersionEquivalence, MatchesV5FlowField) {
  SolverConfig ref_cfg;
  ref_cfg.grid = Grid::coarse(48, 20);
  ref_cfg.variant = KernelVariant::V5;
  Solver ref(ref_cfg);
  ref.initialize();
  ref.run(30);

  SolverConfig cfg = ref_cfg;
  cfg.variant = GetParam();
  Solver s(cfg);
  s.initialize();
  s.run(30);

  double maxdiff = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < cfg.grid.nj; ++j) {
      for (int i = 0; i < cfg.grid.ni; ++i) {
        maxdiff = std::max(maxdiff,
                           std::fabs(s.state()[c](i, j) - ref.state()[c](i, j)));
      }
    }
  }
  // V1-V3 use divisions where V4/V5 multiply by reciprocals, so results
  // differ only by accumulated rounding.
  EXPECT_LT(maxdiff, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, VersionEquivalence,
                         ::testing::Values(KernelVariant::V1, KernelVariant::V2,
                                           KernelVariant::V3,
                                           KernelVariant::V4),
                         [](const auto& info) {
                           return "V" + std::to_string(static_cast<int>(info.param));
                         });

TEST(VersionEquivalence, V4AndV5BitIdentical) {
  // V4 and V5 share the same arithmetic in this implementation (the
  // COMMON-collapse is a Fortran-only storage change).
  SolverConfig a_cfg;
  a_cfg.grid = Grid::coarse(48, 20);
  a_cfg.variant = KernelVariant::V4;
  SolverConfig b_cfg = a_cfg;
  b_cfg.variant = KernelVariant::V5;
  Solver a(a_cfg), b(b_cfg);
  a.initialize();
  b.initialize();
  a.run(25);
  b.run(25);
  for (int j = 0; j < 20; ++j) {
    for (int i = 0; i < 48; ++i) {
      ASSERT_EQ(a.state().rho(i, j), b.state().rho(i, j));
    }
  }
}

class VersionFlops : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(VersionFlops, EveryVersionCountsWork) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(32, 12);
  cfg.variant = GetParam();
  cfg.count_flops = true;
  Solver s(cfg);
  s.initialize();
  s.run(2);
  EXPECT_GT(s.flops().total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, VersionFlops,
                         ::testing::Values(KernelVariant::V1, KernelVariant::V2,
                                           KernelVariant::V3, KernelVariant::V4,
                                           KernelVariant::V5),
                         [](const auto& info) {
                           return "V" + std::to_string(static_cast<int>(info.param));
                         });

TEST(VersionFlops, V1CountsPowAndExtraDivides) {
  SolverConfig v1;
  v1.grid = Grid::coarse(32, 12);
  v1.variant = KernelVariant::V1;
  v1.count_flops = true;
  SolverConfig v5 = v1;
  v5.variant = KernelVariant::V5;
  Solver a(v1), b(v5);
  a.initialize();
  b.initialize();
  a.run(3);
  b.run(3);
  EXPECT_GT(a.flops().pows, 0.0);
  EXPECT_EQ(b.flops().pows, 0.0);
  EXPECT_GT(a.flops().divides, b.flops().divides);
}

}  // namespace
}  // namespace nsp::core
