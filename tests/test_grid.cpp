#include "core/grid.hpp"

#include <gtest/gtest.h>

namespace nsp::core {
namespace {

TEST(Grid, PaperGridIs250x100Over50x5Radii) {
  const Grid g = Grid::paper();
  EXPECT_EQ(g.ni, 250);
  EXPECT_EQ(g.nj, 100);
  EXPECT_DOUBLE_EQ(g.lx, 50.0);
  EXPECT_DOUBLE_EQ(g.lr, 5.0);
  EXPECT_DOUBLE_EQ(g.dx(), 0.2);
  EXPECT_DOUBLE_EQ(g.dr(), 0.05);
}

TEST(Grid, RadialPointsOffsetHalfCellFromAxis) {
  const Grid g = Grid::paper();
  EXPECT_DOUBLE_EQ(g.r(0), 0.025);
  EXPECT_GT(g.r(0), 0.0);
}

TEST(Grid, GhostRadiiMirrorAcrossAxis) {
  const Grid g = Grid::paper();
  EXPECT_DOUBLE_EQ(g.r(-1), -g.r(0));
  EXPECT_DOUBLE_EQ(g.r(-2), -g.r(1));
}

TEST(Grid, AxialCoordinatesCellCentered) {
  const Grid g = Grid::paper();
  EXPECT_DOUBLE_EQ(g.x(0), 0.1);
  EXPECT_DOUBLE_EQ(g.x(249), 50.0 - 0.1);
}

TEST(Grid, CoarseFactorySetsDimensions) {
  const Grid g = Grid::coarse(40, 16);
  EXPECT_EQ(g.ni, 40);
  EXPECT_EQ(g.nj, 16);
  // Same physical domain, coarser spacing.
  EXPECT_DOUBLE_EQ(g.lx, 50.0);
  EXPECT_DOUBLE_EQ(g.dx(), 1.25);
}

TEST(Grid, OutermostRadiusBelowDomainEdge) {
  const Grid g = Grid::paper();
  EXPECT_LT(g.r(g.nj - 1), g.lr);
  EXPECT_NEAR(g.r(g.nj - 1), g.lr - 0.5 * g.dr(), 1e-12);
}

}  // namespace
}  // namespace nsp::core
