#include "io/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/solver.hpp"
#include "fault/recovery.hpp"

namespace nsp::io {
namespace {

using core::Grid;
using core::Solver;
using core::SolverConfig;
using core::StateField;

std::string tmp_path(const char* name) {
  return std::string("/tmp/nsp_snap_") + name;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  StateField q(12, 7);
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = -core::kGhost; j < 7 + core::kGhost; ++j) {
      for (int i = -core::kGhost; i < 12 + core::kGhost; ++i) {
        q[c](i, j) = c * 1000.0 + i * 10.0 + j * 0.1;
      }
    }
  }
  SnapshotInfo out{12, 7, 42, 3.25, 0.01, false};
  const std::string path = tmp_path("roundtrip.bin");
  ASSERT_TRUE(write_snapshot(path, q, out));

  StateField r;
  SnapshotInfo in;
  ASSERT_TRUE(read_snapshot(path, r, in));
  EXPECT_EQ(in.ni, 12);
  EXPECT_EQ(in.nj, 7);
  EXPECT_EQ(in.steps, 42);
  EXPECT_DOUBLE_EQ(in.time, 3.25);
  EXPECT_DOUBLE_EQ(in.dt, 0.01);
  EXPECT_FALSE(in.viscous);
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = -core::kGhost; j < 7 + core::kGhost; ++j) {
      for (int i = -core::kGhost; i < 12 + core::kGhost; ++i) {
        ASSERT_EQ(r[c](i, j), q[c](i, j));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileFails) {
  StateField q;
  SnapshotInfo info;
  EXPECT_FALSE(read_snapshot("/tmp/nsp_definitely_missing.bin", q, info));
}

TEST(Snapshot, BadMagicRejected) {
  const std::string path = tmp_path("badmagic.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTASNAPSHOT and then some padding to exceed the header size....";
  }
  StateField q;
  SnapshotInfo info;
  EXPECT_FALSE(read_snapshot(path, q, info));
  std::remove(path.c_str());
}

TEST(Snapshot, TruncatedFileRejected) {
  StateField q(8, 8);
  const std::string path = tmp_path("trunc.bin");
  ASSERT_TRUE(write_snapshot(path, q, SnapshotInfo{8, 8, 0, 0, 0, true}));
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(all.data(), static_cast<std::streamsize>(all.size() / 2));
  out.close();
  StateField r;
  SnapshotInfo info;
  EXPECT_FALSE(read_snapshot(path, r, info));
  std::remove(path.c_str());
}

TEST(Snapshot, CheckpointRestartIsBitExact) {
  // run(24) == run(12); checkpoint; restore; run(12).
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 20);
  Solver a(cfg);
  a.initialize();
  a.run(24);

  Solver b(cfg);
  b.initialize();
  b.run(12);
  const std::string path = tmp_path("restart.bin");
  ASSERT_TRUE(write_snapshot(
      path, b.state(),
      SnapshotInfo{48, 20, b.steps_taken(), b.time(), b.dt(), true}));

  StateField saved;
  SnapshotInfo info;
  ASSERT_TRUE(read_snapshot(path, saved, info));
  Solver c(cfg);
  c.restore(saved, info.time, info.steps);
  c.run(12);

  for (int c_idx = 0; c_idx < StateField::kComponents; ++c_idx) {
    for (int j = 0; j < 20; ++j) {
      for (int i = 0; i < 48; ++i) {
        ASSERT_EQ(c.state()[c_idx](i, j), a.state()[c_idx](i, j))
            << "c=" << c_idx << " i=" << i << " j=" << j;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Snapshot, CheckpointRestartHashEqualsUninterrupted) {
  // Same property as CheckpointRestartIsBitExact, but through the
  // order-independent state digest the fault subsystem uses — the
  // digest equality the recovery driver asserts after a crash is
  // exactly this.
  SolverConfig cfg;
  cfg.grid = Grid::coarse(40, 16);
  Solver a(cfg);
  a.initialize();
  a.run(30);

  Solver b(cfg);
  b.initialize();
  b.run(18);
  const std::string path = tmp_path("restart_hash.bin");
  ASSERT_TRUE(write_snapshot(
      path, b.state(),
      SnapshotInfo{40, 16, b.steps_taken(), b.time(), b.dt(), true}));
  StateField saved;
  SnapshotInfo info;
  ASSERT_TRUE(read_snapshot(path, saved, info));
  Solver c(cfg);
  c.restore(saved, info.time, info.steps);
  c.run(12);

  EXPECT_EQ(fault::state_hash(c.state()), fault::state_hash(a.state()));
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRejectsWrongDimensions) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(40, 16);
  Solver s(cfg);
  s.initialize();
  StateField wrong(10, 10);
  EXPECT_THROW(s.restore(wrong, 0.0, 0), std::invalid_argument);
}

TEST(Snapshot, FieldCsvHasCoordinatesAndValues) {
  Grid g = Grid::coarse(4, 2);
  core::Field2D f(4, 2);
  f(0, 0) = 7.5;
  const std::string path = tmp_path("field.csv");
  ASSERT_TRUE(write_field_csv(path, g, f));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,r,value");
  std::getline(in, line);
  EXPECT_NE(line.find("7.5"), std::string::npos);
  int rows = 1;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4 * 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsp::io
