// nsp::model subsystem tests (ctest -L model): the scheme/physics/
// excitation registry, the bit-exactness contract of the templated
// scheme kernels against the handwritten golden-hashed 2-4 path, the
// 2-2 scheme's schedule/decomposition invariance, the Euler shock-tube
// validation against the exact Riemann solution, end-to-end model runs
// through the exec engine, and the sysfs LLC probe behind tile sizing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/kernels_scheme.hpp"
#include "core/riemann.hpp"
#include "core/solver.hpp"
#include "core/tiles.hpp"
#include "exec/engine.hpp"
#include "exec/run_result.hpp"
#include "exec/scenario.hpp"
#include "model/model.hpp"
#include "model/registry.hpp"
#include "model/traits.hpp"
#include "par/subdomain_solver.hpp"
#include "par/subdomain_solver2d.hpp"

namespace nsp {
namespace {

using core::Excitation;
using core::Grid;
using core::kGhost;
using core::RBoundary;
using core::Scheme;
using core::Solver;
using core::SolverConfig;
using core::StateField;
using core::SweepVariant;
using core::XBoundary;

// FNV-1a over the interior state bytes — same construction as
// tests/test_tiling.cpp, so the golden constants mean the same bits.
std::uint64_t state_hash(const StateField& q) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < q.nj(); ++j) {
      for (int i = 0; i < q.ni(); ++i) {
        const double v = q[c](i, j);
        unsigned char bytes[sizeof v];
        std::memcpy(bytes, &v, sizeof v);
        for (unsigned char b : bytes) {
          h ^= b;
          h *= 0x100000001b3ull;
        }
      }
    }
  }
  return h;
}

void expect_state_equal(const StateField& a, const StateField& b) {
  ASSERT_EQ(a.ni(), b.ni());
  ASSERT_EQ(a.nj(), b.nj());
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < a.nj(); ++j) {
      for (int i = 0; i < a.ni(); ++i) {
        ASSERT_EQ(a[c](i, j), b[c](i, j))
            << "c=" << c << " i=" << i << " j=" << j;
      }
    }
  }
}

SolverConfig jet_cfg() {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  return cfg;
}

StateField run_serial(SolverConfig cfg, int steps = 20) {
  Solver s(cfg);
  s.initialize();
  s.run(steps);
  return s.state();
}

// ---- registry ----------------------------------------------------------

TEST(Registry, BuiltinCrossProductIsComplete) {
  const auto names = model::model_names();
  EXPECT_EQ(names.size(), 12u) << "2 schemes x 2 physics x 3 excitations";
  for (const char* physics : {"ns", "euler"}) {
    for (const char* scheme : {"mac24", "mac22"}) {
      for (const char* exc : {"mode1", "multimode", "quiet"}) {
        const std::string key =
            std::string(physics) + "/" + scheme + "/" + exc;
        EXPECT_TRUE(model::has_model(key)) << key;
      }
    }
  }
  EXPECT_TRUE(model::make_model(model::kDefaultModel).is_default());
}

TEST(Registry, NamesAreSortedAndDeterministic) {
  // The CLI `list-models` table and the serving error message both
  // print model_names() order verbatim; it must be sorted and stable.
  const auto first = model::model_names();
  const auto second = model::model_names();
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_EQ(std::set<std::string>(first.begin(), first.end()).size(),
            first.size())
      << "duplicate registry keys";
}

TEST(Registry, MakeModelRoundTripsCanonicalNames) {
  for (const auto& name : model::model_names()) {
    const model::ModelSpec m = model::make_model(name);
    EXPECT_EQ(m.name, name);
    EXPECT_EQ(m.canonical_name(), name)
        << "builtin key must be its own canonical spelling";
  }
}

TEST(Registry, UnknownModelThrowsListingKnownNames) {
  try {
    model::make_model("ns/mac99/mode1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown model 'ns/mac99/mode1'"), std::string::npos);
    EXPECT_NE(what.find(model::kDefaultModel), std::string::npos)
        << "error should list the known registry keys";
  }
}

TEST(Registry, UserModelsRegisterButCannotShadowBuiltins) {
  model::ModelSpec custom = model::make_model("ns/mac22/quiet");
  EXPECT_THROW(model::register_model("", custom), std::invalid_argument);
  EXPECT_THROW(model::register_model(model::kDefaultModel, custom),
               std::invalid_argument);
  model::register_model("lab/cold-jet", custom);
  ASSERT_TRUE(model::has_model("lab/cold-jet"));
  EXPECT_EQ(model::make_model("lab/cold-jet").name, "lab/cold-jet")
      << "registration rewrites the spec name to its key";
  const auto names = model::model_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "lab/cold-jet"),
            names.end());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, TraitsSpecBindsTheAxesAtCompileTime) {
  using T = model::Traits<Scheme::Mac22, model::Physics::Euler,
                          Excitation::Quiet>;
  static_assert(T::kScheme == Scheme::Mac22);
  static_assert(!T::kViscous);
  EXPECT_EQ(T::spec().canonical_name(), "euler/mac22/quiet");
  SolverConfig cfg = jet_cfg();
  T::spec().configure(&cfg);
  EXPECT_EQ(cfg.scheme, Scheme::Mac22);
  EXPECT_FALSE(cfg.viscous);
  EXPECT_EQ(cfg.jet.excitation, Excitation::Quiet);
}

// ---- scheme kernels: template layer vs handwritten hot path ------------

/// Smooth deterministic fill: the kernels are pure per-point expression
/// trees, so any finite input exercises the bit-identity claim.
void fill_fields(StateField* a, StateField* b, core::Field2D* p,
                 core::Field2D* ttt, int ni, int nj) {
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = -kGhost; j < nj + kGhost; ++j) {
      for (int i = -kGhost; i < ni + kGhost; ++i) {
        (*a)[c](i, j) = 1.0 + 0.05 * std::sin(0.31 * i + 0.17 * j + c);
        (*b)[c](i, j) = 0.5 + 0.04 * std::cos(0.23 * i - 0.11 * j + 2 * c);
      }
    }
  }
  for (int j = -kGhost; j < nj + kGhost; ++j) {
    for (int i = -kGhost; i < ni + kGhost; ++i) {
      (*p)(i, j) = 0.7 + 0.03 * std::sin(0.19 * i + 0.29 * j);
      (*ttt)(i, j) = 0.01 * std::cos(0.13 * i - 0.07 * j);
    }
  }
}

TEST(SchemeKernels, Mac24TemplateMatchesHandwrittenBitwise) {
  // The Mac24 instantiation of the templated kernels exists to pin the
  // shared body: it must reproduce the handwritten golden-hashed
  // kernels bit-for-bit on every update, both sweep variants, viscous
  // and inviscid.
  const int ni = 48, nj = 20;
  const Grid grid = Grid::coarse(ni, nj);
  StateField q(ni, nj), f(ni, nj), p_state(ni, nj);
  core::Field2D p(ni, nj), ttt(ni, nj);
  fill_fields(&q, &f, &p, &ttt, ni, nj);
  fill_fields(&p_state, &f, &p, &ttt, ni, nj);
  const core::Range full{0, ni};
  const double lambda = 0.01, dt = 0.004;
  for (const SweepVariant v : {SweepVariant::L1, SweepVariant::L2}) {
    for (const bool viscous : {true, false}) {
      StateField hand(ni, nj), tmpl(ni, nj);
      core::tiled::predictor_x(q, f, hand, lambda, v, full);
      core::tiled::predictor_x_s<Scheme::Mac24>(q, f, tmpl, lambda, v, full);
      expect_state_equal(hand, tmpl);

      core::tiled::corrector_x(q, p_state, f, hand, lambda, v, full);
      core::tiled::corrector_x_s<Scheme::Mac24>(q, p_state, f, tmpl, lambda,
                                                v, full);
      expect_state_equal(hand, tmpl);

      core::tiled::predictor_r(grid, q, f, p, ttt, viscous, hand, dt, v,
                               full);
      core::tiled::predictor_r_s<Scheme::Mac24>(grid, q, f, p, ttt, viscous,
                                                tmpl, dt, v, full);
      expect_state_equal(hand, tmpl);

      core::tiled::corrector_r(grid, q, p_state, f, p, ttt, viscous, hand,
                               dt, v, full);
      core::tiled::corrector_r_s<Scheme::Mac24>(grid, q, p_state, f, p, ttt,
                                                viscous, tmpl, dt, v, full);
      expect_state_equal(hand, tmpl);

      core::tiled::predictor_r_rows(grid, q, f, p, ttt, viscous, hand, dt, v,
                                    full, 2, nj - 2);
      core::tiled::predictor_r_rows_s<Scheme::Mac24>(grid, q, f, p, ttt,
                                                     viscous, tmpl, dt, v,
                                                     full, 2, nj - 2);
      expect_state_equal(hand, tmpl);

      core::tiled::corrector_r_rows(grid, q, p_state, f, p, ttt, viscous,
                                    hand, dt, v, full, 2, nj - 2);
      core::tiled::corrector_r_rows_s<Scheme::Mac24>(grid, q, p_state, f, p,
                                                     ttt, viscous, tmpl, dt,
                                                     v, full, 2, nj - 2);
      expect_state_equal(hand, tmpl);
    }
  }
}

TEST(SchemeKernels, Mac22SchedulesAgreeBitwise) {
  // The 2-2 scheme exists only in span form, but every schedule that
  // runs it (reference stage order, tiled/fused, narrow tiles) must
  // still compute identical bits — the tiling contract is
  // scheme-independent.
  SolverConfig cfg = jet_cfg();
  cfg.scheme = Scheme::Mac22;
  cfg.tiled = false;
  const StateField want = run_serial(cfg);
  SolverConfig tiled = cfg;
  tiled.tiled = true;
  expect_state_equal(want, run_serial(tiled));
  for (int w : {7, 13}) {
    SolverConfig narrow = tiled;
    narrow.tile_i = w;
    expect_state_equal(want, run_serial(narrow));
  }
}

TEST(SchemeKernels, Mac22DecompositionsMatchSerial) {
  // KernelSet routing: the subdomain solvers must pick up the 2-2
  // update kernels through select_kernels(use_tiled, scheme) and keep
  // the paper's serial/parallel bit-identity (FreeStream far field).
  SolverConfig cfg = jet_cfg();
  cfg.scheme = Scheme::Mac22;
  const StateField want = run_serial(cfg, 10);
  for (int p : {2, 3}) {
    expect_state_equal(want, par::run_parallel_jet(cfg, p, 10));
  }
  expect_state_equal(want, par::run_parallel_jet_2d(cfg, 2, 2, 10));
  SolverConfig overlap = cfg;
  overlap.overlap_comm = true;
  expect_state_equal(want, par::run_parallel_jet_2d(overlap, 2, 2, 10));
}

TEST(SchemeKernels, Mac22IsADifferentDiscretization) {
  SolverConfig cfg = jet_cfg();
  const std::uint64_t mac24 = state_hash(run_serial(cfg));
  cfg.scheme = Scheme::Mac22;
  const std::uint64_t mac22 = state_hash(run_serial(cfg));
  EXPECT_NE(mac24, mac22) << "2-2 must actually change the bits";
}

// ---- excitation axis ---------------------------------------------------

TEST(ExcitationAxis, ModesProduceDistinctFiniteFlows) {
  std::set<std::uint64_t> hashes;
  for (const Excitation e :
       {Excitation::Mode1, Excitation::MultiMode, Excitation::Quiet}) {
    SolverConfig cfg = jet_cfg();
    cfg.jet.excitation = e;
    Solver s(cfg);
    s.initialize();
    s.run(20);
    EXPECT_TRUE(s.finite()) << static_cast<int>(e);
    hashes.insert(state_hash(s.state()));
  }
  EXPECT_EQ(hashes.size(), 3u) << "each excitation is a distinct flow";
}

TEST(ExcitationAxis, QuietInflowHasNoPerturbation) {
  const core::EigenMode quiet = core::JetConfig::quiet_mode();
  for (double r : {0.0, 0.3, 0.9}) {
    for (double phi : {0.0, 1.0, 4.0}) {
      const core::Primitive w = quiet.perturbation(r, phi);
      EXPECT_EQ(w.rho, 0.0);
      EXPECT_EQ(w.u, 0.0);
      EXPECT_EQ(w.v, 0.0);
      EXPECT_EQ(w.p, 0.0);
    }
  }
}

TEST(ExcitationAxis, Mode1SelectionIsTheAnalyticMode) {
  // The Mode1 arm of excitation_mode() must evaluate bit-identically to
  // analytic_mode(): the InflowBC(grid, jet) delegation rides on it.
  core::JetConfig jet;
  jet.excitation = Excitation::Mode1;
  const core::EigenMode a = jet.analytic_mode();
  const core::EigenMode b = jet.excitation_mode();
  for (double r : {0.05, 0.4, 0.85}) {
    for (double phi : {0.0, 0.7, 3.1}) {
      const core::Primitive wa = a.perturbation(r, phi);
      const core::Primitive wb = b.perturbation(r, phi);
      EXPECT_EQ(wa.rho, wb.rho);
      EXPECT_EQ(wa.u, wb.u);
      EXPECT_EQ(wa.v, wb.v);
      EXPECT_EQ(wa.p, wb.p);
    }
  }
}

// ---- defaults: the model layer must not move the golden bits -----------

TEST(ModelDefaults, DefaultModelKeepsTheGoldenHash) {
  // Routing the default model through ModelSpec::configure must leave
  // the production pipeline untouched: same golden FNV hash that
  // tests/test_tiling.cpp pins for the pre-model solver.
  SolverConfig cfg = jet_cfg();
  model::make_model(model::kDefaultModel).configure(&cfg);
  EXPECT_EQ(cfg.scheme, Scheme::Mac24);
  EXPECT_TRUE(cfg.viscous);
  EXPECT_EQ(cfg.jet.excitation, Excitation::Mode1);
  const StateField q = run_serial(cfg);
  EXPECT_EQ(state_hash(q), 0xf391c7019e0d96d8ull) << std::hex << state_hash(q);
}

TEST(ModelDefaults, DefaultScenarioSolverConfigIsModelFree) {
  // A Scenario that never names a model and one naming the default
  // explicitly build byte-identical solver configs and cache keys.
  const exec::Scenario plain = exec::Scenario::solve(40, 16, 10);
  const exec::Scenario named =
      exec::Scenario::solve(40, 16, 10).model(model::kDefaultModel);
  EXPECT_EQ(plain.cache_key(), named.cache_key());
  const SolverConfig a = plain.solver_config();
  const SolverConfig b = named.solver_config();
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.viscous, b.viscous);
  EXPECT_EQ(a.jet.excitation, b.jet.excitation);
}

// ---- Euler models vs the exact Riemann solution ------------------------

/// Mild shock tube through the full solver under `model_name` (must be
/// an euler/* model); returns the L1 density error against the exact
/// solution (the test_riemann.cpp construction).
double model_shock_tube_l1(const std::string& model_name) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(200, 6);
  model::make_model(model_name).configure(&cfg);
  cfg.left = XBoundary::Halo;
  cfg.right = XBoundary::Halo;
  cfg.far_field = RBoundary::ZeroGradient;
  cfg.jet.eps = 0.0;
  cfg.smoothing = 0.004;
  Solver s(cfg);
  s.initialize();

  const core::Gas g = cfg.jet.gas;
  const double x_mid = 25.0;
  const core::RiemannState L{1.0, 0.0, 2.0 / g.gamma};
  const core::RiemannState R{0.8, 0.0, 1.0 / g.gamma};
  StateField& q = s.mutable_state();
  for (int j = -kGhost; j < cfg.grid.nj + kGhost; ++j) {
    for (int i = -kGhost; i < cfg.grid.ni + kGhost; ++i) {
      const core::RiemannState& w = cfg.grid.x(i) < x_mid ? L : R;
      q.rho(i, j) = w.rho;
      q.mx(i, j) = w.rho * w.u;
      q.mr(i, j) = 0.0;
      q.e(i, j) = g.total_energy(w.rho, w.u, 0.0, w.p);
    }
  }
  s.run(static_cast<int>(std::ceil(8.0 / s.dt())));
  const double t = s.time();

  const core::RiemannSolution exact(g, L, R);
  double err = 0;
  for (int i = 0; i < cfg.grid.ni; ++i) {
    const double xi = (cfg.grid.x(i) - x_mid) / t;
    err += std::fabs(s.state().rho(i, 2) - exact.sample(xi).rho);
  }
  return err / cfg.grid.ni;
}

TEST(EulerModel, Mac24ShockTubeMatchesExactSolution) {
  EXPECT_LT(model_shock_tube_l1("euler/mac24/quiet"), 0.02);
}

TEST(EulerModel, Mac22ShockTubeStaysAccurate) {
  // The 2-2 scheme is more dissipative at the same smoothing; it must
  // still resolve the mild shock to a few percent mean density error.
  EXPECT_LT(model_shock_tube_l1("euler/mac22/quiet"), 0.05);
}

// ---- end-to-end: models through the exec engine ------------------------

TEST(ModelEndToEnd, FourModelsRunThroughTheEngine) {
  const std::vector<std::string> names = {
      "ns/mac24/mode1", "ns/mac22/mode1", "euler/mac24/quiet",
      "ns/mac24/multimode"};
  std::vector<exec::Scenario> cells;
  std::set<std::string> cache_keys;
  for (const auto& m : names) {
    cells.push_back(exec::Scenario::solve(40, 16, 10).model(m).label(m));
    cache_keys.insert(cells.back().cache_key());
  }
  EXPECT_EQ(cache_keys.size(), names.size())
      << "non-default models must open distinct memo-cache universes";
  exec::Engine eng;
  const exec::ResultSet rs = eng.run(cells);
  ASSERT_EQ(rs.results.size(), names.size());
  for (const auto& r : rs.results) {
    EXPECT_EQ(r.metric("finite"), 1.0) << r.label;
    EXPECT_EQ(r.metric("steps"), 10.0) << r.label;
    EXPECT_GT(r.metric("flops"), 0.0) << r.label;
  }
}

// ---- sysfs LLC probe ---------------------------------------------------

TEST(CacheProbe, ParsesSysfsLayoutAndSkipsInstructionCaches) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "nsp_cache_probe_fixture";
  fs::remove_all(root);
  const auto write = [](const fs::path& dir, const char* name,
                        const std::string& text) {
    fs::create_directories(dir);
    std::ofstream(dir / name) << text << "\n";
  };
  write(root / "index0", "type", "Data");
  write(root / "index0", "size", "48K");
  write(root / "index0", "shared_cpu_list", "0");
  write(root / "index1", "type", "Instruction");
  write(root / "index1", "size", "512M");  // must be skipped
  write(root / "index1", "shared_cpu_list", "0");
  write(root / "index2", "type", "Unified");
  write(root / "index2", "size", "2M");
  write(root / "index2", "shared_cpu_list", "0-3");
  write(root / "index3", "type", "Unified");
  write(root / "index3", "size", "36M");
  write(root / "index3", "shared_cpu_list", "0-15");
  write(root / "index4", "type", "Unified");
  write(root / "index4", "size", "banana");  // unparseable: ignored
  write(root / "index4", "shared_cpu_list", "0-15");
  write(root / "index5", "type", "Unified");  // no size file: ignored
  write(root / "index5", "shared_cpu_list", "0-15");
  write(root / "index6", "type", "Unified");  // no shared_cpu_list map:
  write(root / "index6", "size", "512M");     // not attributable, ignored
  EXPECT_EQ(core::detect_cache_bytes(root.string()), 36ull * 1024 * 1024);
  fs::remove_all(root);
}

TEST(CacheProbe, MissingTreeReportsZeroAndHostFallsBack) {
  EXPECT_EQ(core::detect_cache_bytes("/nonexistent/nsp/cache"), 0u);
  // Probed LLC or kDefaultCacheBytes — either way a sane blocking
  // budget, and stable across calls (probed once).
  const std::size_t host = core::host_cache_bytes();
  EXPECT_GE(host, 1024u * 1024);
  EXPECT_EQ(host, core::host_cache_bytes());
}

}  // namespace
}  // namespace nsp
