// Parallel correctness: the SPMD decomposition must reproduce the serial
// solver exactly (the ghost fluxes are the neighbour's own values, so
// interior arithmetic is identical).
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "par/subdomain_solver.hpp"

namespace nsp::par {
namespace {

using core::Grid;
using core::KernelVariant;
using core::Solver;
using core::SolverConfig;
using core::StateField;

double max_interior_diff(const StateField& a, const StateField& b, int ni,
                         int nj) {
  double m = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      for (int i = 0; i < ni; ++i) {
        m = std::max(m, std::fabs(a[c](i, j) - b[c](i, j)));
      }
    }
  }
  return m;
}

struct ParCase {
  int nprocs;
  bool viscous;
};

class ParallelEquivalence : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParallelEquivalence, MatchesSerialBitwise) {
  const auto [nprocs, viscous] = GetParam();
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  cfg.viscous = viscous;
  Solver serial(cfg);
  serial.initialize();
  serial.run(16);
  const StateField qpar = run_parallel_jet(cfg, nprocs, 16);
  EXPECT_EQ(max_interior_diff(serial.state(), qpar, 64, 24), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid64, ParallelEquivalence,
    ::testing::Values(ParCase{1, true}, ParCase{2, true}, ParCase{4, true},
                      ParCase{8, true}, ParCase{2, false}, ParCase{4, false},
                      ParCase{8, false}),
    [](const auto& info) {
      return std::string(info.param.viscous ? "NS" : "Euler") + "_P" +
             std::to_string(info.param.nprocs);
    });

TEST(ParallelEquivalence, UnevenBlocksStillExact) {
  // 50 columns over 7 ranks: widths 8 and 7.
  SolverConfig cfg;
  cfg.grid = Grid::coarse(50, 16);
  Solver serial(cfg);
  serial.initialize();
  serial.run(10);
  const StateField qpar = run_parallel_jet(cfg, 7, 10);
  EXPECT_EQ(max_interior_diff(serial.state(), qpar, 50, 16), 0.0);
}

TEST(ParallelEquivalence, NonDefaultVariantAlsoExact) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(48, 16);
  cfg.variant = KernelVariant::V3;
  Solver serial(cfg);
  serial.initialize();
  serial.run(8);
  const StateField qpar = run_parallel_jet(cfg, 4, 8);
  EXPECT_EQ(max_interior_diff(serial.state(), qpar, 48, 16), 0.0);
}

TEST(SubdomainSolver, Version6OverlapIsNumericallyIdentical) {
  // Live Version 6 reorders the schedule (interior columns advance
  // while halos are in flight) without changing a single value.
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  const StateField v5 = run_parallel_jet(cfg, 4, 14);
  cfg.overlap_comm = true;
  const StateField v6 = run_parallel_jet(cfg, 4, 14);
  EXPECT_EQ(max_interior_diff(v5, v6, 64, 24), 0.0);
}

TEST(SubdomainSolver, Version6MatchesSerialToo) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  cfg.overlap_comm = true;
  Solver serial(cfg);
  serial.initialize();
  serial.run(14);
  const StateField v6 = run_parallel_jet(cfg, 8, 14);
  EXPECT_EQ(max_interior_diff(serial.state(), v6, 64, 24), 0.0);
}

TEST(SubdomainSolver, Version6EulerIdentical) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  cfg.viscous = false;
  const StateField v5 = run_parallel_jet(cfg, 4, 14);
  cfg.overlap_comm = true;
  const StateField v6 = run_parallel_jet(cfg, 4, 14);
  EXPECT_EQ(max_interior_diff(v5, v6, 64, 24), 0.0);
}

TEST(SubdomainSolver, Version6SameMessageCounts) {
  // Overlap changes scheduling, not the communication volume.
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 24);
  std::vector<core::CommCounter> v5, v6;
  run_parallel_jet(cfg, 4, 8, &v5);
  cfg.overlap_comm = true;
  run_parallel_jet(cfg, 4, 8, &v6);
  for (std::size_t r = 0; r < v5.size(); ++r) {
    EXPECT_EQ(v5[r].sends, v6[r].sends);
    EXPECT_DOUBLE_EQ(v5[r].bytes_sent, v6[r].bytes_sent);
  }
}

TEST(SubdomainSolver, RejectsSmoothing) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(40, 16);
  cfg.smoothing = 0.01;
  mp::Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](mp::Comm& comm) { SubdomainSolver s(cfg, comm); }),
               std::invalid_argument);
}

TEST(SubdomainSolver, RejectsTooNarrowSubdomains) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(16, 8);  // 16/8 = 2 columns < 2*kGhost
  mp::Cluster cluster(8);
  EXPECT_THROW(cluster.run([&](mp::Comm& comm) { SubdomainSolver s(cfg, comm); }),
               std::invalid_argument);
}

TEST(SubdomainSolver, DtMatchesSerialExactly) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(40, 16);
  Solver serial(cfg);
  serial.initialize();
  mp::Cluster cluster(4);
  cluster.run([&](mp::Comm& comm) {
    SubdomainSolver s(cfg, comm);
    s.initialize();
    EXPECT_EQ(s.dt(), serial.dt());
  });
}

TEST(SubdomainSolver, MessageCountsFollowSection5Schedule) {
  // Navier-Stokes, interior rank: per step 6 primitive-halo sends (two
  // per x stage, two across the radial stages) + 2 flux sends = 10; the
  // paper's Table 1 counts "start-ups" as sends + receives.
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 16);
  std::vector<core::CommCounter> ctr;
  const int steps = 12;
  run_parallel_jet(cfg, 4, steps, &ctr);
  const auto& interior = ctr[1];
  EXPECT_EQ(interior.sends, 10u * steps + 1u);  // +1 gather message
  EXPECT_EQ(interior.recvs, 10u * steps);
  // Edge ranks communicate on one side only (about half the sends).
  EXPECT_LT(ctr[0].sends, interior.sends);
}

TEST(SubdomainSolver, EulerNeedsOnlyFluxExchanges) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(64, 16);
  cfg.viscous = false;
  std::vector<core::CommCounter> ctr;
  const int steps = 12;
  run_parallel_jet(cfg, 4, steps, &ctr);
  EXPECT_EQ(ctr[1].sends, 2u * steps + 1u);  // two flux sends per step + gather
}

TEST(SubdomainSolver, CommVolumeScalesWithRadialPoints) {
  SolverConfig small, big;
  small.grid = Grid::coarse(64, 16);
  big.grid = Grid::coarse(64, 32);
  std::vector<core::CommCounter> cs, cb;
  run_parallel_jet(small, 4, 4, &cs);
  run_parallel_jet(big, 4, 4, &cb);
  // Same message count, double the bytes.
  const double gather_small = 4.0 * 16 * 16 * 8;  // rank1 interior block
  const double gather_big = 4.0 * 16 * 32 * 8;
  EXPECT_NEAR((cb[1].bytes_sent - gather_big) /
                  (cs[1].bytes_sent - gather_small),
              2.0, 0.01);
}

TEST(SubdomainSolver, LongerRunStaysFiniteInParallel) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(60, 20);
  const StateField q = run_parallel_jet(cfg, 6, 60);
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < 20; ++j) {
      for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(std::isfinite(q[c](i, j)));
      }
    }
  }
}

}  // namespace
}  // namespace nsp::par
