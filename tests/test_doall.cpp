// The shared-memory DOALL path (the paper's Cray Y-MP parallelization)
// must be numerically identical to the sequential solver for any thread
// count: chunking only partitions loop ranges.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"

namespace nsp::core {
namespace {

class DoallEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DoallEquivalence, MatchesSequentialBitwise) {
  SolverConfig seq_cfg;
  seq_cfg.grid = Grid::coarse(56, 20);
  Solver seq(seq_cfg);
  seq.initialize();
  seq.run(12);

  SolverConfig par_cfg = seq_cfg;
  par_cfg.num_threads = GetParam();
  Solver par(par_cfg);
  par.initialize();
  par.run(12);

  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < 20; ++j) {
      for (int i = 0; i < 56; ++i) {
        ASSERT_EQ(par.state()[c](i, j), seq.state()[c](i, j))
            << "c=" << c << " i=" << i << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DoallEquivalence, ::testing::Values(2, 3, 4, 8),
                         [](const auto& info) {
                           return "T" + std::to_string(info.param);
                         });

TEST(Doall, MoreThreadsThanColumnsStillCorrect) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(24, 10);
  cfg.num_threads = 64;
  Solver s(cfg);
  s.initialize();
  s.run(5);
  EXPECT_TRUE(s.finite());
}

TEST(Doall, EulerModeAlsoEquivalent) {
  SolverConfig a;
  a.grid = Grid::coarse(40, 16);
  a.viscous = false;
  SolverConfig b = a;
  b.num_threads = 4;
  Solver sa(a), sb(b);
  sa.initialize();
  sb.initialize();
  sa.run(10);
  sb.run(10);
  double m = 0;
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 40; ++i)
      m = std::max(m, std::fabs(sa.state().rho(i, j) - sb.state().rho(i, j)));
  EXPECT_EQ(m, 0.0);
}

TEST(Doall, FlopCountingDisabledUnderThreads) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(24, 10);
  cfg.num_threads = 4;
  cfg.count_flops = true;
  Solver s(cfg);
  s.initialize();
  s.run(2);
  EXPECT_EQ(s.flops().total(), 0.0);
}

}  // namespace
}  // namespace nsp::core
