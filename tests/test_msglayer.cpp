#include "arch/msglayer.hpp"

#include <gtest/gtest.h>

namespace nsp::arch {
namespace {

TEST(MsgLayer, MplLeanerThanPvme) {
  // Figures 11-12: MPL consistently faster than PVMe on the SP.
  const auto mpl = MsgLayerModel::mpl_sp();
  const auto pvme = MsgLayerModel::pvme_sp();
  EXPECT_LT(mpl.send_overhead_s, pvme.send_overhead_s);
  EXPECT_LT(mpl.recv_overhead_s, pvme.recv_overhead_s);
  EXPECT_LT(mpl.per_byte_cpu_s, pvme.per_byte_cpu_s);
}

TEST(MsgLayer, MplIsBlockingSendOnly) {
  // "we were forced to use either blocking send or a constrained form
  // of non-blocking send."
  EXPECT_TRUE(MsgLayerModel::mpl_sp().blocking_send);
  EXPECT_FALSE(MsgLayerModel::pvme_sp().blocking_send);
  EXPECT_FALSE(MsgLayerModel::pvm_lace().blocking_send);
}

TEST(MsgLayer, CrayPvmHasSmallSetupCost) {
  // "the T3D ... a relatively small setup cost."
  const auto t3d = MsgLayerModel::pvm_t3d();
  const auto lace = MsgLayerModel::pvm_lace();
  EXPECT_LT(t3d.send_overhead_s, 0.3 * lace.send_overhead_s);
  EXPECT_LT(t3d.inflight_latency_s, 0.1 * lace.inflight_latency_s);
}

TEST(MsgLayer, SharedMemoryHasNoMessageCosts) {
  const auto sm = MsgLayerModel::shared_memory();
  EXPECT_EQ(sm.send_overhead_s, 0.0);
  EXPECT_EQ(sm.recv_overhead_s, 0.0);
  EXPECT_EQ(sm.send_cpu_s(100000), 0.0);
}

TEST(MsgLayer, PerMessageCostGrowsWithSize) {
  const auto pvm = MsgLayerModel::pvm_lace();
  EXPECT_GT(pvm.send_cpu_s(10000), pvm.send_cpu_s(100));
  EXPECT_DOUBLE_EQ(pvm.send_cpu_s(0), pvm.send_overhead_s);
  EXPECT_DOUBLE_EQ(pvm.recv_cpu_s(0), pvm.recv_overhead_s);
}

TEST(MsgLayer, StartupDominatesPerWordCost) {
  // Section 5: "the startup cost is 2-3 orders of magnitude higher than
  // the per word transfer cost."
  for (const auto& m : {MsgLayerModel::pvm_lace(), MsgLayerModel::pvme_sp(),
                        MsgLayerModel::mpl_sp(), MsgLayerModel::pvm_t3d()}) {
    const double per_word = m.per_byte_cpu_s * 8.0;
    EXPECT_GT(m.send_overhead_s, 100.0 * per_word) << m.name;
  }
}

TEST(MsgLayer, ShmemIsMicrosecondClass) {
  // The T3D programming model the paper did not use: one-sided puts.
  const auto shm = MsgLayerModel::shmem_t3d();
  const auto pvm = MsgLayerModel::pvm_t3d();
  EXPECT_LT(shm.send_overhead_s, 1e-5);
  EXPECT_LT(shm.send_overhead_s, 0.1 * pvm.send_overhead_s);
  EXPECT_FALSE(shm.blocking_send);
}

TEST(MsgLayer, NamesArePaperNames) {
  EXPECT_EQ(MsgLayerModel::mpl_sp().name, "MPL");
  EXPECT_EQ(MsgLayerModel::pvme_sp().name, "PVMe");
  EXPECT_NE(MsgLayerModel::pvm_lace().name.find("PVM"), std::string::npos);
}

}  // namespace
}  // namespace nsp::arch
