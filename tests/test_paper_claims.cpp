// Every qualitative claim of the paper's Section 7 (Results), asserted
// against the platform simulator. These are the reproduction's
// acceptance tests: who wins, where curves cross, what saturates.
#include <gtest/gtest.h>

#include "perf/replay.hpp"

#include "exec/run_result.hpp"

namespace nsp::perf {
namespace {

using arch::CodeVersion;
using arch::Equations;
using arch::Platform;

AppModel ns(CodeVersion v = CodeVersion::V5_CommonCollapse) {
  return AppModel::paper(Equations::NavierStokes, v);
}
AppModel euler(CodeVersion v = CodeVersion::V5_CommonCollapse) {
  return AppModel::paper(Equations::Euler, v);
}

double t(const AppModel& app, const Platform& p, int procs) {
  return replay(app, p, procs).exec_time;
}

// ---- Section 7.1: performance of LACE ----

TEST(PaperClaims, ExecutionTimeFallsWithProcessorsOnAllnode) {
  const auto p = Platform::lace560_allnode_s();
  const auto app = ns();
  double prev = 1e300;
  for (int procs : {1, 2, 4, 8, 12, 16}) {
    const double cur = t(app, p, procs);
    EXPECT_LT(cur, prev) << procs << " procs";
    prev = cur;
  }
}

TEST(PaperClaims, AllnodeSublinearBeyond12) {
  // "sublinearity effects begin to show beyond 12 processors."
  const auto p = Platform::lace560_allnode_s();
  const auto app = ns();
  const double t2 = t(app, p, 2);
  const double t12 = t(app, p, 12);
  const double t16 = t(app, p, 16);
  const double eff12 = (t2 * 2) / (t12 * 12.0);
  const double eff16 = (t2 * 2) / (t16 * 16.0);
  EXPECT_GT(eff12, 0.7);
  EXPECT_LT(eff16, eff12);
}

TEST(PaperClaims, EthernetSaturatesAroundEightToTenProcessors) {
  // "Ethernet performance reaches its peak at 8 processors ... Beyond
  // this, the communication requirements overwhelm the network."
  const auto p = Platform::lace560_ethernet();
  const auto app = ns();
  const double t8 = t(app, p, 8);
  const double t16 = t(app, p, 16);
  EXPECT_GT(t16, t8);  // worse at 16 than at 8
  // And the minimum over the sweep sits in the 8-12 band.
  double best = 1e300;
  int best_p = 0;
  for (int procs : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    const double cur = t(app, p, procs);
    if (cur < best) {
      best = cur;
      best_p = procs;
    }
  }
  EXPECT_GE(best_p, 6);
  EXPECT_LE(best_p, 12);
}

TEST(PaperClaims, AllnodeFBeatsAllnodeSByLargeMargin) {
  // "ALLNODE-F is about 70%-80% faster than ALLNODE-S" (network 2x +
  // better 590 node).
  const auto app = ns();
  const double s16 = t(app, Platform::lace560_allnode_s(), 16);
  const double f16 = t(app, Platform::lace590_allnode_f(), 16);
  EXPECT_GT(s16 / f16, 1.4);
  EXPECT_LT(s16 / f16, 2.1);
}

TEST(PaperClaims, ProcessorBusyTimeFallsLinearly) {
  const auto p = Platform::lace560_allnode_s();
  const auto app = ns();
  const auto r4 = replay(app, p, 4);
  const auto r16 = replay(app, p, 16);
  EXPECT_NEAR(exec::avg_busy(r4) / exec::avg_busy(r16), 4.0, 0.8);
}

TEST(PaperClaims, EthernetNonOverlappedCommGrowsSuperlinearly) {
  // Figure 5: with Ethernet the communication component grows
  // superlinearly with processors.
  const auto p = Platform::lace560_ethernet();
  const auto app = ns();
  const double w4 = exec::avg_wait(replay(app, p, 4));
  const double w8 = exec::avg_wait(replay(app, p, 8));
  const double w16 = exec::avg_wait(replay(app, p, 16));
  EXPECT_GT(w8, w4);
  EXPECT_GT(w16, 2.0 * w8);  // accelerating growth
}

TEST(PaperClaims, AllnodeCommStaysModestThenComparableAt16) {
  // Figure 5: ALLNODE's non-overlapped communication stays flat-ish and
  // at 16 processors is "comparable to the computation" (same decade).
  const auto p = Platform::lace560_allnode_s();
  const auto app = ns();
  const auto r16 = replay(app, p, 16);
  EXPECT_GT(exec::avg_wait(r16), 0.1 * exec::avg_busy(r16));
  EXPECT_LT(exec::avg_wait(r16), 1.5 * exec::avg_busy(r16));
  // And far below Ethernet's wait at 16.
  const auto e16 = replay(app, Platform::lace560_ethernet(), 16);
  EXPECT_LT(exec::avg_wait(r16), 0.3 * exec::avg_wait(e16));
}

// ---- Versions 5/6/7 (Figures 7-8) ----

TEST(PaperClaims, OverlappingVersion6GainsLittle) {
  // "The performance of Version 6 is very close to that of Version 5."
  for (const auto& p :
       {Platform::lace560_ethernet(), Platform::lace560_allnode_s()}) {
    const double v5 = t(ns(CodeVersion::V5_CommonCollapse), p, 16);
    const double v6 = t(ns(CodeVersion::V6_OverlapComm), p, 16);
    EXPECT_NEAR(v6 / v5, 1.0, 0.15) << p.name;
  }
}

TEST(PaperClaims, UnbundledVersion7HurtsAllnodeMuchMoreThanEthernet) {
  // Paper: Version 7 helps Ethernet slightly and hurts ALLNODE-S
  // "appreciably" ("reducing bursty communication only harms the
  // performance since the number of startups increase"). In our model
  // the extra start-up software cost offsets the Ethernet burst relief,
  // so V7 lands within a few percent of V5 there (see EXPERIMENTS.md),
  // while the ALLNODE-S penalty reproduces cleanly.
  const double e5 = t(ns(CodeVersion::V5_CommonCollapse),
                      Platform::lace560_ethernet(), 16);
  const double e7 = t(ns(CodeVersion::V7_UnbundledSends),
                      Platform::lace560_ethernet(), 16);
  EXPECT_LT(e7, 1.06 * e5);
  const double a5 = t(ns(CodeVersion::V5_CommonCollapse),
                      Platform::lace560_allnode_s(), 16);
  const double a7 = t(ns(CodeVersion::V7_UnbundledSends),
                      Platform::lace560_allnode_s(), 16);
  EXPECT_GT(a7, a5 * 1.05);
  // The relative damage on ALLNODE-S exceeds that on Ethernet.
  EXPECT_GT(a7 / a5, e7 / e5);
}

// ---- Section 7.2: comparative performance (Figures 9-10) ----

TEST(PaperClaims, LaceWithSlowAllnodeOutperformsSp) {
  // "Surprisingly, LACE, even with ALLNODE-S, outperforms SP."
  const auto app = ns();
  for (int procs : {1, 2, 4, 8, 16}) {
    EXPECT_LT(t(app, Platform::lace560_allnode_s(), procs),
              t(app, Platform::ibm_sp_mpl(), procs))
        << procs << " procs";
  }
}

TEST(PaperClaims, T3dWorseThanAllnodeFEverywhere) {
  // "the relatively poor performance of Cray T3D which is consistently
  // worse than ALLNODE-F."
  const auto app = ns();
  for (int procs : {1, 2, 4, 8, 16}) {
    EXPECT_GT(t(app, Platform::cray_t3d(), procs),
              t(app, Platform::lace590_allnode_f(), procs))
        << procs << " procs";
  }
}

TEST(PaperClaims, T3dCrossesAllnodeSBeyondEight) {
  // "...worse than ALLNODE-S for less than 8 processors. Beyond 8
  // processors, T3D with its superior network performs better."
  const auto app = ns();
  for (int procs : {1, 2, 4}) {
    EXPECT_GT(t(app, Platform::cray_t3d(), procs),
              t(app, Platform::lace560_allnode_s(), procs))
        << procs << " procs";
  }
  for (int procs : {12, 16}) {
    EXPECT_LT(t(app, Platform::cray_t3d(), procs),
              t(app, Platform::lace560_allnode_s(), procs))
        << procs << " procs";
  }
}

TEST(PaperClaims, T3dBetterThanSp) {
  // "The T3D is still superior to the IBM SP."
  const auto app = ns();
  for (int procs : {1, 4, 8, 16}) {
    EXPECT_LT(t(app, Platform::cray_t3d(), procs),
              t(app, Platform::ibm_sp_mpl(), procs));
  }
}

TEST(PaperClaims, YmpDominatesEverything) {
  // "Cray Y-MP has by far the best performance."
  const auto app = ns();
  const double ymp8 = t(app, Platform::cray_ymp(), 8);
  for (const auto& p :
       {Platform::lace590_allnode_f(), Platform::cray_t3d(),
        Platform::ibm_sp_mpl()}) {
    EXPECT_LT(ymp8, 0.5 * t(app, p, 16)) << p.name;
  }
}

TEST(PaperClaims, Lace590SixteenComparableToSingleYmp) {
  // "The performance of LACE/590 with 16 processors is comparable to the
  // single node performance of the Y-MP."
  const auto app = ns();
  const double lace16 = t(app, Platform::lace590_allnode_f(), 16);
  const double ymp1 = t(app, Platform::cray_ymp(), 1);
  EXPECT_GT(lace16 / ymp1, 0.5);
  EXPECT_LT(lace16 / ymp1, 1.6);
}

TEST(PaperClaims, SpAndT3dScaleAlmostLinearly) {
  // "Both T3D and SP exhibit very good speedup characteristics."
  const auto app = ns();
  for (const auto& p : {Platform::ibm_sp_mpl(), Platform::cray_t3d()}) {
    const double speedup = t(app, p, 1) / t(app, p, 16);
    EXPECT_GT(speedup, 12.0) << p.name;
  }
}

TEST(PaperClaims, AtmMatchesAllnodeFAndFddiMatchesAllnodeS) {
  // "The performance of the ATM and the FDDI networks are almost
  // identical with ALLNODE-F and ALLNODE-S respectively."
  const auto app = ns();
  const double atm = t(app, Platform::lace590_atm(), 16);
  const double anf = t(app, Platform::lace590_allnode_f(), 16);
  EXPECT_NEAR(atm / anf, 1.0, 0.15);
  const double fddi = t(app, Platform::lace560_fddi(), 16);
  const double ans = t(app, Platform::lace560_allnode_s(), 16);
  EXPECT_NEAR(fddi / ans, 1.0, 0.2);
}

// ---- Section 7.3: message-passing libraries (Figures 11-12) ----

TEST(PaperClaims, MplConsistentlyFasterThanPvme) {
  for (const auto& app : {ns(), euler()}) {
    for (int procs : {2, 4, 8, 16}) {
      EXPECT_LT(t(app, Platform::ibm_sp_mpl(), procs),
                t(app, Platform::ibm_sp_pvme(), procs))
          << procs << " procs";
    }
  }
}

TEST(PaperClaims, MplPvmeGapIsLargeAtSixteen) {
  // Paper: ~75% for Navier-Stokes (our model reproduces the ordering
  // with a 40-60% gap; see EXPERIMENTS.md).
  const double gap = t(ns(), Platform::ibm_sp_pvme(), 16) /
                     t(ns(), Platform::ibm_sp_mpl(), 16);
  EXPECT_GT(gap, 1.3);
  EXPECT_LT(gap, 2.1);
}

TEST(PaperClaims, SpNonOverlappedCommIsNegligible) {
  // "the amount of non-overlapped communication is not only negligibly
  // small but decreases with the number of processors."
  const auto app = ns();
  const auto r8 = replay(app, Platform::ibm_sp_mpl(), 8);
  EXPECT_LT(exec::avg_wait(r8), 0.1 * exec::avg_busy(r8));
  const auto r16 = replay(app, Platform::ibm_sp_mpl(), 16);
  EXPECT_LT(exec::avg_wait(r16), 0.15 * exec::avg_busy(r16));
}

// ---- Section 7.4: load balancing (Figure 13) ----

TEST(PaperClaims, NearPerfectLoadBalanceOnSp) {
  // "we were able to achieve almost perfect load balancing."
  const auto r = replay(ns(), Platform::ibm_sp_mpl(), 16);
  double bmin = 1e300, bmax = 0;
  for (const auto& rk : r.ranks) {
    bmin = std::min(bmin, rk.busy());
    bmax = std::max(bmax, rk.busy());
  }
  EXPECT_LT((bmax - bmin) / bmax, 0.08);
}

// ---- Extensions: roads the paper did not take ----

TEST(PaperClaims, ShmemWouldHaveHelpedT3dButNotEnough) {
  // "The T3D supports multiple programming models" — one-sided SHMEM
  // puts beat Cray PVM, but the weak-cache node keeps the T3D behind
  // ALLNODE-F regardless.
  const auto app = ns();
  for (int procs : {8, 16}) {
    const double pvm = t(app, Platform::cray_t3d(), procs);
    const double shm = t(app, Platform::cray_t3d_shmem(), procs);
    EXPECT_LT(shm, pvm) << procs;
    EXPECT_GT(shm, t(app, Platform::lace590_allnode_f(), procs)) << procs;
  }
}

TEST(PaperClaims, YmpAlongSweepPartitioningWastesVectorLength) {
  // Section 5: the authors partitioned orthogonal to the sweep "to keep
  // the vector lengths large"; the alternative pays the n-half law.
  const auto app = ns();
  auto bad = Platform::cray_ymp();
  bad.doall_partition_along_sweep = true;
  const double good8 = t(app, Platform::cray_ymp(), 8);
  const double bad8 = t(app, bad, 8);
  EXPECT_GT(bad8, 1.5 * good8);
  // At one processor the choice is immaterial.
  EXPECT_NEAR(t(app, bad, 1), t(app, Platform::cray_ymp(), 1), 1e-6);
}

// ---- Section 1/7: the cache story ----

TEST(PaperClaims, T3dSingleProcessorSlowerThan560DespiteFastClock) {
  const auto app = ns();
  EXPECT_GT(t(app, Platform::cray_t3d(), 1),
            t(app, Platform::lace560_allnode_s(), 1));
}

TEST(PaperClaims, EulerEthernetAlsoSaturates) {
  // "Ethernet performance reaches its peak ... at 10 processors for
  // Euler."
  const auto app = euler();
  const auto p = Platform::lace560_ethernet();
  double best = 1e300;
  int best_p = 0;
  for (int procs : {2, 4, 6, 8, 10, 12, 14, 16}) {
    const double cur = t(app, p, procs);
    if (cur < best) {
      best = cur;
      best_p = procs;
    }
  }
  EXPECT_GE(best_p, 6);
  EXPECT_LE(best_p, 12);
  EXPECT_GT(t(app, p, 16), best);
}

TEST(PaperClaims, EulerCommRoughly60PercentOfBusyAtSixteen) {
  // "...while the ratio is about 60% for Euler" (ALLNODE-S, 16 procs).
  const auto r = replay(euler(), Platform::lace560_allnode_s(), 16);
  const double ratio = exec::avg_wait(r) / exec::avg_busy(r);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 1.0);
}

TEST(PaperClaims, EulerVersionsBehaveLikeNavierStokes) {
  // Figure 8: same V5/V6/V7 ordering for Euler.
  const double v5 = t(euler(CodeVersion::V5_CommonCollapse),
                      Platform::lace560_allnode_s(), 16);
  const double v6 = t(euler(CodeVersion::V6_OverlapComm),
                      Platform::lace560_allnode_s(), 16);
  const double v7 = t(euler(CodeVersion::V7_UnbundledSends),
                      Platform::lace560_allnode_s(), 16);
  EXPECT_NEAR(v6 / v5, 1.0, 0.15);
  EXPECT_GT(v7, 1.05 * v5);
}

TEST(PaperClaims, EulerRunsFasterThanNavierStokesEverywhere) {
  // Half the compute and 3/4 the communication: Euler must be faster on
  // every platform at every processor count.
  for (const auto& p : Platform::all()) {
    for (int procs : {1, 8, std::min(16, p.max_procs)}) {
      if (procs > p.max_procs) continue;
      EXPECT_LT(t(euler(), p, procs), t(ns(), p, procs))
          << p.name << " P=" << procs;
    }
  }
}

TEST(PaperClaims, EulerTrendsMatchNavierStokes) {
  // "In almost all the experiments, Navier-Stokes and Euler show
  // similar trends."
  const auto app = euler();
  // (At 16 processors the SP's leaner Euler compute closes the gap in
  // our model; the paper's ordering holds through 12.)
  EXPECT_LT(t(app, Platform::lace560_allnode_s(), 12),
            t(app, Platform::ibm_sp_mpl(), 12));
  EXPECT_LT(t(app, Platform::cray_t3d(), 16),
            t(app, Platform::lace560_allnode_s(), 16));
  EXPECT_LT(t(app, Platform::cray_ymp(), 8),
            0.5 * t(app, Platform::lace590_allnode_f(), 16));
}

}  // namespace
}  // namespace nsp::perf
