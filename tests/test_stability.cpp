#include "core/stability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"

namespace nsp::core::stability {
namespace {

Mode paper_mode() {
  static const Mode mode = [] {
    JetConfig jet;  // the paper's case: Mc=1.5, T ratio 1/2, St=1/8
    return solve(jet, jet.omega());
  }();
  return mode;
}

TEST(Stability, ConvergesForThePaperCase) {
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  EXPECT_LT(m.residual, 1e-6);
  EXPECT_LT(m.iterations, 60);
}

TEST(Stability, ShearLayerModeIsUnstable) {
  // The excited jet column is convectively unstable: Im(alpha) < 0.
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.growth_rate(), 0.0);
  EXPECT_LT(m.growth_rate(), 1.0);  // but not absurdly so
}

TEST(Stability, PhaseSpeedBetweenStreams) {
  // A Kelvin-Helmholtz-type mode convects between the free-stream and
  // centerline speeds (allowing some compressible leeway).
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.phase_speed(), 0.2);
  EXPECT_LT(m.phase_speed(), 1.6);
}

TEST(Stability, EigenfunctionPeaksInShearLayer) {
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  double best = 0, r_peak = 0;
  for (std::size_t k = 0; k < m.r.size(); ++k) {
    if (std::abs(m.u[k]) > best) {
      best = std::abs(m.u[k]);
      r_peak = m.r[k];
    }
  }
  EXPECT_NEAR(r_peak, 1.0, 0.3);
}

TEST(Stability, EigenfunctionDecaysInFarField) {
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  double u_far = 0;
  for (std::size_t k = 0; k < m.r.size(); ++k) {
    if (m.r[k] > 0.8 * m.r.back()) u_far = std::max(u_far, std::abs(m.u[k]));
  }
  EXPECT_LT(u_far, 0.05);  // vs the unit peak
}

TEST(Stability, MismatchVanishesAtTheEigenvalue) {
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  JetConfig jet;
  const Options opts;
  EXPECT_LT(std::abs(farfield_mismatch(jet, m.omega, m.alpha, opts)), 1e-6);
  // And is O(1) away from it.
  const Complex off = m.alpha * Complex{1.3, 0.0};
  EXPECT_GT(std::abs(farfield_mismatch(jet, m.omega, off, opts)), 1e-3);
}

TEST(Stability, SatisfiesTheOdeAlongTheTrajectory) {
  // Finite-difference the converged p(r) and plug it back into the
  // Pridmore-Brown equation at mid-shear-layer points.
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  JetConfig jet;
  const double gamma_r = 1e-6;
  for (std::size_t k = m.r.size() / 4; k < 3 * m.r.size() / 4; k += 37) {
    const double r = m.r[k];
    const double h = m.r[k + 1] - m.r[k];
    const Complex p = m.p[k];
    const Complex dp = (m.p[k + 1] - m.p[k - 1]) / (2 * h);
    const Complex d2p = (m.p[k + 1] - 2.0 * m.p[k] + m.p[k - 1]) / (h * h);
    const double u = jet.mean_u(r);
    const double t = jet.mean_t(r);
    const double rho = jet.mean_rho(r);
    const double du = (jet.mean_u(r + gamma_r) - jet.mean_u(r - gamma_r)) / (2 * gamma_r);
    const double drho =
        (jet.mean_rho(r + gamma_r) - jet.mean_rho(r - gamma_r)) / (2 * gamma_r);
    const Complex w = m.omega - m.alpha * u;
    const Complex res = d2p +
                        (1.0 / r - drho / rho + 2.0 * m.alpha * du / w) * dp +
                        (w * w / t - m.alpha * m.alpha) * p;
    // Relative to the local solution scale.
    const double scale = std::abs(p) * std::norm(m.alpha) + 1e-12;
    EXPECT_LT(std::abs(res) / scale, 0.2) << "r=" << r;
  }
}

TEST(Stability, GrowthRateVariesWithFrequency) {
  JetConfig jet;
  jet.strouhal = 0.0625;
  const Mode low = solve(jet, jet.omega());
  jet.strouhal = 0.125;
  const Mode mid = solve(jet, jet.omega());
  ASSERT_TRUE(low.converged);
  ASSERT_TRUE(mid.converged);
  EXPECT_GT(mid.growth_rate(), low.growth_rate());
}

TEST(Stability, CallerGuessIsHonoured) {
  JetConfig jet;
  const Mode ref = paper_mode();
  ASSERT_TRUE(ref.converged);
  Options opts;
  opts.alpha_guess = ref.alpha * Complex{1.01, 0.0};
  const Mode m = solve(jet, jet.omega(), opts);
  ASSERT_TRUE(m.converged);
  EXPECT_NEAR(m.alpha.real(), ref.alpha.real(), 1e-6);
  EXPECT_NEAR(m.alpha.imag(), ref.alpha.imag(), 1e-6);
  EXPECT_LE(m.iterations, ref.iterations);
}

TEST(Stability, ToEigenmodeScalesWithEpsilon) {
  JetConfig jet;
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  jet.eps = 1e-4;
  const EigenMode e1 = to_eigenmode(m, jet);
  jet.eps = 2e-4;
  const EigenMode e2 = to_eigenmode(m, jet);
  const double u1 = e1.perturbation(1.0, 0.4).u;
  const double u2 = e2.perturbation(1.0, 0.4).u;
  EXPECT_NEAR(u2, 2.0 * u1, 1e-12);
}

TEST(Stability, ToEigenmodeFallsBackWhenNotConverged) {
  JetConfig jet;
  Mode bad;
  bad.converged = false;
  const EigenMode e = to_eigenmode(bad, jet);
  // Must behave like the analytic mode (nonzero in the shear layer).
  EXPECT_NE(e.perturbation(1.0, 0.0).u, 0.0);
}

TEST(Stability, ToEigenmodeOscillatesAtOmega) {
  JetConfig jet;
  const Mode m = paper_mode();
  ASSERT_TRUE(m.converged);
  const EigenMode e = to_eigenmode(m, jet);
  constexpr double kTwoPi = 6.283185307179586;
  const double a = e.perturbation(1.0, 0.0).u;
  const double b = e.perturbation(1.0, kTwoPi).u;
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Stability, HelicalModeConverges) {
  // n = 1: the helical mode that often dominates round jets. The
  // axisymmetric solver cannot be excited with it, but the eigenvalue
  // tool handles it (the -n^2/r^2 term + r^n axis behaviour).
  JetConfig jet;
  Options opts;
  opts.azimuthal_n = 1;
  const Mode m = solve(jet, jet.omega(), opts);
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.growth_rate(), 0.0);
  EXPECT_GT(m.phase_speed(), 0.2);
  EXPECT_LT(m.phase_speed(), 1.6);
}

TEST(Stability, HelicalPressureVanishesOnAxis) {
  JetConfig jet;
  Options opts;
  opts.azimuthal_n = 1;
  const Mode m = solve(jet, jet.omega(), opts);
  ASSERT_TRUE(m.converged);
  // p ~ r^n near the axis: the innermost amplitude is far below the peak.
  double pmax = 0;
  for (const auto& p : m.p) pmax = std::max(pmax, std::abs(p));
  EXPECT_LT(std::abs(m.p.front()), 0.1 * pmax);
}

TEST(Stability, HelicalDiffersFromAxisymmetric) {
  JetConfig jet;
  Options o0, o1;
  o1.azimuthal_n = 1;
  const Mode m0 = solve(jet, jet.omega(), o0);
  const Mode m1 = solve(jet, jet.omega(), o1);
  ASSERT_TRUE(m0.converged);
  ASSERT_TRUE(m1.converged);
  EXPECT_GT(std::abs(m1.alpha - m0.alpha), 1e-3);
}

TEST(Stability, SolverRunsWithRayleighInflow) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(60, 24);
  cfg.rayleigh_inflow = true;
  Solver s(cfg);
  s.initialize();
  s.run(60);
  EXPECT_TRUE(s.finite());
  // The eigenmode excitation injects radial momentum near the inflow.
  double vmax = 0;
  for (int j = 0; j < 24; ++j) {
    for (int i = 0; i < 12; ++i) {
      vmax = std::max(vmax, std::fabs(s.state().mr(i, j)));
    }
  }
  EXPECT_GT(vmax, 1e-8);
}

}  // namespace
}  // namespace nsp::core::stability
