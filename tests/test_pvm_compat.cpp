#include "mp/pvm_compat.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace nsp::mp::pvm {
namespace {

TEST(PvmCompat, TidAndGroupSize) {
  Cluster c(3);
  c.run([](Comm& comm) {
    Session pvm(comm);
    EXPECT_EQ(pvm.mytid(), comm.rank());
    EXPECT_EQ(pvm.gsize(), 3);
  });
}

TEST(PvmCompat, PackSendRecvUnpackRoundTrip) {
  Cluster c(2);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      std::vector<double> u{1.0, 2.0, 3.0};
      std::vector<int> meta{42, 7};
      pvm.initsend();
      EXPECT_EQ(pvm.pkdouble(u.data(), 3), Session::PvmOk);
      EXPECT_EQ(pvm.pkint(meta.data(), 2), Session::PvmOk);
      EXPECT_EQ(pvm.send(1, 99), Session::PvmOk);
    } else {
      EXPECT_EQ(pvm.recv(0, 99), 1);
      double u[3];
      int meta[2];
      EXPECT_EQ(pvm.upkdouble(u, 3), Session::PvmOk);
      EXPECT_EQ(pvm.upkint(meta, 2), Session::PvmOk);
      EXPECT_DOUBLE_EQ(u[2], 3.0);
      EXPECT_EQ(meta[0], 42);
      EXPECT_EQ(meta[1], 7);
      EXPECT_EQ(pvm.unread(), 0u);
    }
  });
}

TEST(PvmCompat, StridedPackAndUnpack) {
  Cluster c(2);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      // Pack every other element of a 6-vector (a PVM idiom for
      // extracting a boundary column from a 2-D array).
      std::vector<double> a{0, 10, 1, 11, 2, 12};
      pvm.initsend();
      pvm.pkdouble(a.data() + 1, 3, 2);  // 10, 11, 12
      pvm.send(1, 5);
    } else {
      pvm.recv(0, 5);
      std::vector<double> out(6, -1);
      pvm.upkdouble(out.data(), 3, 2);  // scatter back with stride 2
      EXPECT_DOUBLE_EQ(out[0], 10);
      EXPECT_DOUBLE_EQ(out[2], 11);
      EXPECT_DOUBLE_EQ(out[4], 12);
      EXPECT_DOUBLE_EQ(out[1], -1);
    }
  });
}

TEST(PvmCompat, BufinfoReportsTagSourceLength) {
  Cluster c(2);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      const double x = 3.5;
      pvm.initsend();
      pvm.pkdouble(&x, 1);
      pvm.send(1, 77);
    } else {
      pvm.recv(-1, -1);
      int bytes = 0, tag = 0, tid = -2;
      EXPECT_EQ(pvm.bufinfo(&bytes, &tag, &tid), Session::PvmOk);
      EXPECT_EQ(bytes, 8);
      EXPECT_EQ(tag, 77);
      EXPECT_EQ(tid, 0);
    }
  });
}

TEST(PvmCompat, McastReachesAllListedTasks) {
  Cluster c(4);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      const double v = 9.0;
      pvm.initsend();
      pvm.pkdouble(&v, 1);
      pvm.mcast({1, 2, 3}, 4);
    } else {
      pvm.recv(0, 4);
      double v = 0;
      pvm.upkdouble(&v, 1);
      EXPECT_DOUBLE_EQ(v, 9.0);
    }
  });
}

TEST(PvmCompat, SendBufferSurvivesForResend) {
  // PVM semantics: pvm_send does not consume the buffer.
  Cluster c(3);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      const double v = 1.5;
      pvm.initsend();
      pvm.pkdouble(&v, 1);
      pvm.send(1, 2);
      pvm.send(2, 2);  // same buffer again
    } else {
      pvm.recv(0, 2);
      double v = 0;
      pvm.upkdouble(&v, 1);
      EXPECT_DOUBLE_EQ(v, 1.5);
    }
  });
}

TEST(PvmCompat, ErrorsWithoutActiveBuffers) {
  Cluster c(1);
  c.run([](Comm& comm) {
    Session pvm(comm);
    const double x = 1.0;
    double y = 0;
    EXPECT_EQ(pvm.pkdouble(&x, 1), Session::PvmNoBuf);
    EXPECT_EQ(pvm.send(0, 1), Session::PvmNoBuf);
    EXPECT_EQ(pvm.upkdouble(&y, 1), Session::PvmNoBuf);
    EXPECT_EQ(pvm.bufinfo(nullptr, nullptr, nullptr), Session::PvmNoBuf);
  });
}

TEST(PvmCompat, UnpackPastEndReturnsNoData) {
  Cluster c(2);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      const double v[2] = {1, 2};
      pvm.initsend();
      pvm.pkdouble(v, 2);
      pvm.send(1, 1);
    } else {
      pvm.recv(0, 1);
      double out[3];
      EXPECT_EQ(pvm.upkdouble(out, 3), Session::PvmNoData);
      // Partial reads still work afterwards.
      EXPECT_EQ(pvm.upkdouble(out, 2), Session::PvmOk);
    }
  });
}

TEST(PvmCompat, NrecvPollsWithoutBlocking) {
  Cluster c(2);
  c.run([](Comm& comm) {
    Session pvm(comm);
    if (comm.rank() == 0) {
      EXPECT_EQ(pvm.nrecv(1, 9), 0);  // nothing yet
      comm.barrier();
      // After the barrier the message must be there.
      while (pvm.nrecv(1, 9) == 0) {
      }
      double v = 0;
      pvm.upkdouble(&v, 1);
      EXPECT_DOUBLE_EQ(v, 4.0);
    } else {
      const double v = 4.0;
      pvm.initsend();
      pvm.pkdouble(&v, 1);
      pvm.send(0, 9);
      comm.barrier();
    }
  });
}

TEST(PvmCompat, HaloExchangeIdiomMatchesPaperStyle) {
  // The paper's Version-5 pattern written in PVM style: every task
  // packs its boundary column and exchanges with both neighbours.
  const int n = 16;
  Cluster c(4);
  c.run([n](Comm& comm) {
    Session pvm(comm);
    const int me = pvm.mytid();
    std::vector<double> mine(n, static_cast<double>(me));
    std::vector<double> from_left(n, -1), from_right(n, -1);
    if (me > 0) {
      pvm.initsend();
      pvm.pkdouble(mine.data(), n);
      pvm.send(me - 1, 11);
    }
    if (me < pvm.gsize() - 1) {
      pvm.initsend();
      pvm.pkdouble(mine.data(), n);
      pvm.send(me + 1, 11);
    }
    if (me > 0) {
      pvm.recv(me - 1, 11);
      pvm.upkdouble(from_left.data(), n);
      EXPECT_DOUBLE_EQ(from_left[0], me - 1);
    }
    if (me < pvm.gsize() - 1) {
      pvm.recv(me + 1, 11);
      pvm.upkdouble(from_right.data(), n);
      EXPECT_DOUBLE_EQ(from_right[n - 1], me + 1);
    }
  });
}

}  // namespace
}  // namespace nsp::mp::pvm
