#include "core/riemann.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"

namespace nsp::core {
namespace {

Gas gas() { return Gas{}; }  // gamma = 1.4

TEST(Riemann, TrivialProblemStaysUniform) {
  const RiemannState s{1.2, 0.4, 0.9};
  RiemannSolution sol(gas(), s, s);
  ASSERT_TRUE(sol.converged());
  EXPECT_NEAR(sol.p_star(), 0.9, 1e-10);
  EXPECT_NEAR(sol.u_star(), 0.4, 1e-10);
  const RiemannState a = sol.sample(0.0);
  EXPECT_NEAR(a.rho, 1.2, 1e-10);
}

TEST(Riemann, SodProblemStarValues) {
  // Toro, Table 4.2, Test 1: p* = 0.30313, u* = 0.92745.
  RiemannSolution sol(gas(), RiemannState{1.0, 0.0, 1.0},
                      RiemannState{0.125, 0.0, 0.1});
  ASSERT_TRUE(sol.converged());
  EXPECT_NEAR(sol.p_star(), 0.30313, 2e-4);
  EXPECT_NEAR(sol.u_star(), 0.92745, 2e-4);
  EXPECT_FALSE(sol.left_is_shock());
  EXPECT_TRUE(sol.right_is_shock());
}

TEST(Riemann, TwoShockCollision) {
  // Toro Test 5-like: two streams colliding -> two shocks.
  RiemannSolution sol(gas(), RiemannState{1.0, 2.0, 1.0},
                      RiemannState{1.0, -2.0, 1.0});
  ASSERT_TRUE(sol.converged());
  EXPECT_TRUE(sol.left_is_shock());
  EXPECT_TRUE(sol.right_is_shock());
  EXPECT_NEAR(sol.u_star(), 0.0, 1e-10);  // symmetric
  EXPECT_GT(sol.p_star(), 1.0);
}

TEST(Riemann, TwoRarefactions) {
  RiemannSolution sol(gas(), RiemannState{1.0, -0.5, 1.0},
                      RiemannState{1.0, 0.5, 1.0});
  ASSERT_TRUE(sol.converged());
  EXPECT_FALSE(sol.left_is_shock());
  EXPECT_FALSE(sol.right_is_shock());
  EXPECT_LT(sol.p_star(), 1.0);
}

TEST(Riemann, ContactPreservesPressureAndVelocity) {
  RiemannSolution sol(gas(), RiemannState{1.0, 0.3, 0.7},
                      RiemannState{2.0, 0.3, 0.7});
  ASSERT_TRUE(sol.converged());
  // Pure contact: no waves, p and u unchanged, density jumps advect.
  EXPECT_NEAR(sol.p_star(), 0.7, 1e-9);
  EXPECT_NEAR(sol.u_star(), 0.3, 1e-9);
  EXPECT_NEAR(sol.sample(0.29).rho, 1.0, 1e-6);
  EXPECT_NEAR(sol.sample(0.31).rho, 2.0, 1e-6);
}

TEST(Riemann, SampleIsPiecewiseConsistent) {
  RiemannSolution sol(gas(), RiemannState{1.0, 0.0, 1.0},
                      RiemannState{0.125, 0.0, 0.1});
  // Far left/right recover the inputs.
  EXPECT_NEAR(sol.sample(-10.0).rho, 1.0, 1e-12);
  EXPECT_NEAR(sol.sample(+10.0).rho, 0.125, 1e-12);
  // Pressure is continuous across the contact.
  EXPECT_NEAR(sol.sample(sol.u_star() - 1e-9).p,
              sol.sample(sol.u_star() + 1e-9).p, 1e-6);
  // Monotone pressure through the left rarefaction.
  double prev = 1.0;
  for (double xi = -1.2; xi < sol.u_star(); xi += 0.01) {
    const double p = sol.sample(xi).p;
    EXPECT_LE(p, prev + 1e-9);
    prev = p;
  }
}

TEST(Riemann, InvalidStatesThrow) {
  EXPECT_THROW(RiemannSolution(gas(), RiemannState{-1, 0, 1},
                               RiemannState{1, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(RiemannSolution(gas(), RiemannState{1, 0, 0},
                               RiemannState{1, 0, 1}),
               std::invalid_argument);
}

// ---- Shock-tube validation of the 2-4 MacCormack solver ----

/// Runs a mild Riemann problem through the full axisymmetric solver
/// (uniform in r, so the problem is purely axial) and returns the L1
/// density error against the exact solution.
double shock_tube_l1_error(double p_ratio, int ni, double* shock_pos_err) {
  SolverConfig cfg;
  cfg.grid = Grid::coarse(ni, 6);
  cfg.viscous = false;
  cfg.left = XBoundary::Halo;   // free (extrapolated-flux) ends;
  cfg.right = XBoundary::Halo;  // the waves stay interior
  cfg.far_field = RBoundary::ZeroGradient;  // not a jet problem
  cfg.jet.eps = 0.0;
  cfg.smoothing = 0.004;  // the 2-4 scheme needs smoothing at shocks
  Solver s(cfg);
  s.initialize();

  const Gas g = cfg.jet.gas;
  const double x_mid = 25.0;
  const RiemannState L{1.0, 0.0, p_ratio * 1.0 / g.gamma};
  const RiemannState R{0.8, 0.0, 1.0 / g.gamma};
  StateField& q = s.mutable_state();
  for (int j = -kGhost; j < cfg.grid.nj + kGhost; ++j) {
    for (int i = -kGhost; i < cfg.grid.ni + kGhost; ++i) {
      const RiemannState& w = cfg.grid.x(i) < x_mid ? L : R;
      q.rho(i, j) = w.rho;
      q.mx(i, j) = w.rho * w.u;
      q.mr(i, j) = 0.0;
      q.e(i, j) = g.total_energy(w.rho, w.u, 0.0, w.p);
    }
  }
  const double t_final = 8.0;
  s.run(static_cast<int>(std::ceil(t_final / s.dt())));
  const double t = s.time();

  RiemannSolution exact(g, L, R);
  double err = 0;
  for (int i = 0; i < cfg.grid.ni; ++i) {
    const double xi = (cfg.grid.x(i) - x_mid) / t;
    err += std::fabs(s.state().rho(i, 2) - exact.sample(xi).rho);
  }
  err /= cfg.grid.ni;

  if (shock_pos_err) {
    // Locate the numerical shock as the steepest density drop right of
    // the contact and compare with the exact shock position.
    const double exact_pos = x_mid + exact.right_shock_speed() * t;
    int best_i = 0;
    double best_drop = 0;
    for (int i = 1; i < cfg.grid.ni - 1; ++i) {
      if (cfg.grid.x(i) < x_mid + exact.u_star() * t) continue;
      const double drop = s.state().rho(i - 1, 2) - s.state().rho(i + 1, 2);
      if (drop > best_drop) {
        best_drop = drop;
        best_i = i;
      }
    }
    *shock_pos_err = std::fabs(cfg.grid.x(best_i) - exact_pos);
  }
  return err;
}

TEST(ShockTube, MildShockMatchesExactSolution) {
  double pos_err = 0;
  const double l1 = shock_tube_l1_error(2.0, 200, &pos_err);
  EXPECT_LT(l1, 0.02);             // ~1-2% mean density error
  EXPECT_LT(pos_err, 3 * 50.0 / 200);  // shock within ~3 cells
}

TEST(ShockTube, ErrorShrinksWithResolution) {
  const double coarse = shock_tube_l1_error(2.0, 100, nullptr);
  const double fine = shock_tube_l1_error(2.0, 300, nullptr);
  EXPECT_LT(fine, 0.7 * coarse);
}

TEST(ShockTube, StrongerShockStillBounded) {
  const double l1 = shock_tube_l1_error(3.0, 200, nullptr);
  EXPECT_LT(l1, 0.05);
}

}  // namespace
}  // namespace nsp::core
