// Tests for nsp::check — macro semantics across levels, the violation
// registry, report serialization, order-independent trace hashing, and
// the engine determinism audit.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "nsp.hpp"

namespace {

using namespace nsp;
using check::Registry;
using check::Severity;
using check::TraceHash;
using check::Violation;

/// Every test starts from a zeroed registry with throwing disabled, and
/// leaves it that way for whatever runs next in the binary.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().set_throw_on_error(false);
    Registry::instance().reset();
  }
  void TearDown() override {
    Registry::instance().set_throw_on_error(false);
    Registry::instance().reset();
  }
};

// ---- Macro semantics ---------------------------------------------------

TEST_F(CheckTest, PassingCheckDoesNotCount) {
  NSP_CHECK(1 + 1 == 2, "test.check.pass");
  EXPECT_EQ(Registry::instance().count("test.check.pass"), 0u);
  EXPECT_EQ(Registry::instance().total(), 0u);
}

// Violation counting, throwing, and reporting only exist at levels >= 1
// (at level 0 every macro is an unevaluated sizeof); the level-0
// evaluation contract itself is covered below and, independently of the
// build's own level, in test_check_level0.cpp.
#if NSP_CHECK_LEVEL >= 1

TEST_F(CheckTest, FailingCheckCountsPerSite) {
  for (int k = 0; k < 3; ++k) {
    NSP_CHECK(k < 0, "test.check.count3");
  }
  EXPECT_EQ(Registry::instance().count("test.check.count3"), 3u);
  EXPECT_EQ(Registry::instance().total(), 3u);
}

TEST_F(CheckTest, ErrorDoesNotThrowByDefault) {
  EXPECT_NO_THROW([&] { NSP_CHECK(false, "test.check.error_quiet"); }());
  EXPECT_EQ(Registry::instance().count("test.check.error_quiet"), 1u);
}

TEST_F(CheckTest, ErrorThrowsInThrowOnErrorMode) {
  Registry::instance().set_throw_on_error(true);
  try {
    NSP_CHECK(false, "test.check.error_throws");
    FAIL() << "expected Violation";
  } catch (const Violation& v) {
    EXPECT_STREQ(v.id(), "test.check.error_throws");
    EXPECT_NE(std::string(v.what()).find("test.check.error_throws"),
              std::string::npos);
  }
  // The violation is still counted even though it threw.
  EXPECT_EQ(Registry::instance().count("test.check.error_throws"), 1u);
}

TEST_F(CheckTest, WarningNeverThrows) {
  Registry::instance().set_throw_on_error(true);
  EXPECT_NO_THROW([&] { NSP_CHECK_WARN(false, "test.check.warn_quiet"); }());
  EXPECT_EQ(Registry::instance().count("test.check.warn_quiet"), 1u);
}

TEST_F(CheckTest, FatalAlwaysThrows) {
  EXPECT_THROW([&] { NSP_CHECK_FATAL(false, "test.check.fatal"); }(), Violation);
  EXPECT_EQ(Registry::instance().count("test.check.fatal"), 1u);
}

TEST_F(CheckTest, FiniteCheckCatchesNanAndInf) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  NSP_CHECK_FINITE(1.5, "test.check.finite");
  EXPECT_EQ(Registry::instance().count("test.check.finite"), 0u);
  NSP_CHECK_FINITE(nan, "test.check.finite");
  NSP_CHECK_FINITE(inf, "test.check.finite");
  EXPECT_EQ(Registry::instance().count("test.check.finite"), 2u);
}

TEST_F(CheckTest, ResetZeroesCountersButKeepsSites) {
  NSP_CHECK_WARN(false, "test.check.reset_me");
  ASSERT_EQ(Registry::instance().count("test.check.reset_me"), 1u);
  Registry::instance().reset();
  EXPECT_EQ(Registry::instance().count("test.check.reset_me"), 0u);
  bool known = false;
  for (const auto* s : Registry::instance().sites()) {
    if (std::string(s->id) == "test.check.reset_me") known = true;
  }
  EXPECT_TRUE(known) << "reset() must keep the site registered";
}

#endif  // NSP_CHECK_LEVEL >= 1

// ---- Level gating ------------------------------------------------------

#if NSP_CHECK_LEVEL >= 1
TEST_F(CheckTest, ConditionEvaluatedExactlyOnce) {
  // Exactly once whether the check passes or fails, for every severity:
  // a condition evaluated twice would double side effects; zero times
  // would skip them. Both have bitten real check layers.
  int evals = 0;
  NSP_CHECK((++evals, true), "test.check.eval_once");
  EXPECT_EQ(evals, 1);
  NSP_CHECK((++evals, false), "test.check.eval_once_fail");
  EXPECT_EQ(evals, 2);
  NSP_CHECK_WARN((++evals, false), "test.check.eval_once_warn");
  EXPECT_EQ(evals, 3);
  NSP_CHECK_FINITE((++evals, 1.0), "test.check.eval_once_finite");
  EXPECT_EQ(evals, 4);
  EXPECT_THROW(
      [&] { NSP_CHECK_FATAL((++evals, false), "test.check.eval_once_fatal"); }(),
      Violation);
  EXPECT_EQ(evals, 5);
}
#else
TEST_F(CheckTest, DisabledChecksEvaluateZeroTimes) {
  // Level 0: conditions sit inside an unevaluated sizeof — type-checked
  // (this TU compiling is that half of the contract) but never run.
  int evals = 0;
  NSP_CHECK((++evals, true), "test.check.l0");
  NSP_CHECK((++evals, false), "test.check.l0_fail");
  NSP_CHECK_WARN((++evals, false), "test.check.l0_warn");
  NSP_CHECK_FATAL((++evals, false), "test.check.l0_fatal");
  NSP_CHECK_FINITE((++evals, 0.0), "test.check.l0_finite");
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(Registry::instance().total(), 0u);
}
#endif

#if NSP_CHECK_LEVEL < 2
TEST_F(CheckTest, SlowChecksCompileOutBelowLevel2) {
  int evals = 0;
  NSP_CHECK_SLOW((++evals, false), "test.check.slow_gated");
  NSP_CHECK_SLOW_FATAL((++evals, false), "test.check.slow_fatal_gated");
  EXPECT_EQ(evals, 0) << "level-2 checks must not evaluate their condition";
  EXPECT_EQ(Registry::instance().count("test.check.slow_gated"), 0u);
}
#endif

// ---- Report serialization ----------------------------------------------

TEST_F(CheckTest, CleanReport) {
  const auto rep = check::snapshot();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.total(), 0u);
  EXPECT_EQ(rep.str(), "check: all invariants held\n");
}

#if NSP_CHECK_LEVEL >= 1
TEST_F(CheckTest, ReportListsViolatedSites) {
  NSP_CHECK_WARN(false, "test.report.alpha");
  // One site violated twice (each macro expansion is its own site, so a
  // loop — not two statements — produces a count of 2).
  for (int k = 0; k < 2; ++k) {
    NSP_CHECK(false, "test.report.beta");
  }
  const auto rep = check::snapshot();
  ASSERT_FALSE(rep.clean());
  EXPECT_EQ(rep.total(), 3u);

  bool saw_alpha = false, saw_beta = false;
  for (const auto& e : rep.entries) {
    if (e.id == "test.report.alpha") {
      saw_alpha = true;
      EXPECT_EQ(e.severity, Severity::Warning);
      EXPECT_EQ(e.count, 1u);
    }
    if (e.id == "test.report.beta") {
      saw_beta = true;
      EXPECT_EQ(e.severity, Severity::Error);
      EXPECT_EQ(e.count, 2u);
    }
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);

  const std::string table = rep.str();
  EXPECT_NE(table.find("test.report.alpha"), std::string::npos);
  EXPECT_NE(table.find("warning"), std::string::npos);

  const std::string csv = rep.to_csv();
  EXPECT_NE(csv.find("check,severity,count,condition,site\n"),
            std::string::npos);
  EXPECT_NE(csv.find("test.report.beta,error,2"), std::string::npos);

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"check\": \"test.report.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

// ---- Instrumented library sites ----------------------------------------

TEST_F(CheckTest, OversizedTableRowCountsViolation) {
  io::Table t({"a", "b"});
  t.row({"1", "2", "3"});  // one cell too many: counted and truncated
  EXPECT_EQ(Registry::instance().count("io.table.row_width"), 1u);
  EXPECT_EQ(t.rows(), 1u);
}

TEST_F(CheckTest, UnmatchedResourceReleaseIsFatal) {
  sim::Simulator s;
  sim::Resource r(s, 1, "disk");
  EXPECT_THROW(r.release(), Violation);
  EXPECT_EQ(Registry::instance().count("sim.resource.release_matched"), 1u);
}

TEST_F(CheckTest, NonFiniteChartPointCountsWarning) {
  io::Series s;
  s.label = "bad";
  s.x = {0.0, 1.0};
  s.y = {1.0, std::nan("")};
  io::LineChart chart{{}};
  chart.add(s);
  EXPECT_EQ(Registry::instance().count("io.chart.point_finite"), 1u);
}
#endif  // NSP_CHECK_LEVEL >= 1

// ---- TraceHash ---------------------------------------------------------

TEST(TraceHash, OrderIndependent) {
  TraceHash ab, ba;
  ab.record("cell.a", 1.25);
  ab.record("cell.b", -3.5);
  ba.record("cell.b", -3.5);
  ba.record("cell.a", 1.25);
  EXPECT_EQ(ab.digest(), ba.digest());
  EXPECT_EQ(ab.count(), 2u);
}

TEST(TraceHash, MergeMatchesSequentialMixing) {
  TraceHash whole, left, right;
  whole.record("x", 1.0);
  whole.record("y", 2.0);
  whole.record("z", 3.0);
  left.record("x", 1.0);
  right.record("y", 2.0);
  right.record("z", 3.0);
  left.merge(right);
  EXPECT_EQ(whole.digest(), left.digest());
  EXPECT_EQ(whole.count(), left.count());
}

TEST(TraceHash, EmptyDiffersFromZeroRecord) {
  TraceHash empty, one;
  one.mix(0);  // one record whose hash is zero
  EXPECT_NE(empty.digest(), one.digest());
}

TEST(TraceHash, DoubleHashIsBitExact) {
  TraceHash pos, neg;
  pos.record("v", 0.0);
  neg.record("v", -0.0);
  EXPECT_NE(pos.digest(), neg.digest())
      << "trace must distinguish -0.0 from +0.0";

  EXPECT_NE(check::fnv1a("abc"), check::fnv1a("abd"));
  EXPECT_NE(check::fnv1a(std::uint64_t{1}), check::fnv1a(std::uint64_t{2}));
}

// ---- Determinism audit -------------------------------------------------

TEST(Audit, SerialAndParallelEnginesAgree) {
  std::vector<Scenario> sweep;
  for (const char* key : {"t3d", "sp-mpl"}) {
    for (int p : {1, 4}) {
      sweep.push_back(
          Scenario::jet(50, 20, 100).sim_steps(25).platform(key).threads(p));
    }
  }
  const auto rep = exec::audit(sweep, 4);
  EXPECT_EQ(rep.parallel_threads, 4);
  ASSERT_EQ(rep.cells.size(), sweep.size());
  EXPECT_TRUE(rep.clean()) << rep.str();
  EXPECT_EQ(rep.serial_digest, rep.parallel_digest);
  for (const auto& c : rep.cells) {
    EXPECT_NE(c.serial_hash, 0u);
    EXPECT_TRUE(c.match()) << c.key;
  }
  const std::string text = rep.str();
  EXPECT_NE(text.find("audit clean"), std::string::npos);
}

TEST(Audit, TraceHashDetectsMetricDivergence) {
  exec::RunResult a, b;
  a.key = b.key = "cell";
  a.platform = b.platform = "p";
  a.nprocs = b.nprocs = 4;
  a.set("exec_s", 1.0);
  b.set("exec_s", 1.0 + 1e-15);  // one ulp-ish wiggle must change the hash
  EXPECT_NE(exec::trace_hash(a), exec::trace_hash(b));
  EXPECT_EQ(exec::trace_hash(a), exec::trace_hash(a));
}

}  // namespace
