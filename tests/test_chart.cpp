#include "io/chart.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace nsp::io {
namespace {

TEST(LineChart, RendersSeriesGlyphsAndLegend) {
  ChartOptions o;
  o.title = "Execution time";
  LineChart c(o);
  c.add({"ALLNODE-F", {1, 2, 4, 8, 16}, {5604, 2953, 1583, 888, 539}});
  c.add({"Ethernet", {1, 2, 4, 8, 16}, {8787, 4684, 2620, 1672, 2261}});
  const std::string s = c.str();
  EXPECT_NE(s.find("Execution time"), std::string::npos);
  EXPECT_NE(s.find("ALLNODE-F"), std::string::npos);
  EXPECT_NE(s.find("Ethernet"), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);  // first series glyph
  EXPECT_NE(s.find('x'), std::string::npos);  // second series glyph
}

TEST(LineChart, EmptySeriesProducesPlaceholder) {
  LineChart c;
  EXPECT_NE(c.str().find("no plottable points"), std::string::npos);
}

TEST(LineChart, NonPositiveValuesSkippedOnLogAxes) {
  LineChart c;
  c.add({"s", {0.0, 1.0, 2.0}, {-5.0, 10.0, 20.0}});
  EXPECT_NO_THROW(c.str());
}

TEST(LineChart, LinearAxesSupported) {
  ChartOptions o;
  o.log_x = false;
  o.log_y = false;
  LineChart c(o);
  c.add({"lin", {0, 1, 2}, {0, 1, 2}});
  EXPECT_NO_THROW(c.str());
}

TEST(LineChart, ConstantSeriesDoesNotDivideByZero) {
  LineChart c;
  c.add({"flat", {1, 2, 4}, {7, 7, 7}});
  EXPECT_NO_THROW(c.str());
}

TEST(BarChart, BarsScaleWithValues) {
  const std::string s =
      bar_chart("busy", {"p0", "p1"}, {100.0, 50.0}, 40, "s");
  // p0's bar should be about twice p1's.
  const auto count_hashes = [&](const std::string& label) {
    const auto pos = s.find(label);
    const auto eol = s.find('\n', pos);
    int n = 0;
    for (auto i = pos; i < eol; ++i) n += s[i] == '#';
    return n;
  };
  EXPECT_NEAR(count_hashes("p0"), 2 * count_hashes("p1"), 1);
}

TEST(BarChart, ZeroValuesHandled) {
  EXPECT_NO_THROW(bar_chart("", {"a"}, {0.0}));
}

TEST(ContourMap, RendersFieldWithMinMax) {
  std::vector<double> f(20 * 10);
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 10; ++j) f[i * 10 + j] = i + j;
  const std::string s = contour_map(f, 20, 10, 20, 10);
  EXPECT_NE(s.find("min="), std::string::npos);
  EXPECT_NE(s.find("max="), std::string::npos);
  // Bottom-left (row 0 prints last) is the minimum -> lightest shade ' '.
  // Top-right is densest '@'.
  EXPECT_NE(s.find('@'), std::string::npos);
}

TEST(ContourMap, ConstantFieldDoesNotCrash) {
  std::vector<double> f(16, 3.0);
  EXPECT_NO_THROW(contour_map(f, 4, 4));
}

TEST(SeriesCsv, WritesHeaderAndAlignedRows) {
  const std::string path = "/tmp/nsp_test_series.csv";
  write_series_csv(path, {{"a", {1, 2}, {10, 20}}, {"b", {1, 2}, {30, 40}}});
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,10,30");
  std::getline(f, line);
  EXPECT_EQ(line, "2,20,40");
  std::remove(path.c_str());
}

TEST(Gnuplot, ScriptReferencesCsvAndAllSeries) {
  const std::string gp = "/tmp/nsp_test_fig.gp";
  ChartOptions o;
  o.title = "Figure 3";
  o.x_label = "Number of Processors";
  write_gnuplot_script(gp, "fig3.csv", 3, o);
  std::ifstream f(gp);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("fig3.csv"), std::string::npos);
  EXPECT_NE(all.find("fig3.png"), std::string::npos);
  EXPECT_NE(all.find("using 1:2"), std::string::npos);
  EXPECT_NE(all.find("using 1:4"), std::string::npos);
  EXPECT_EQ(all.find("using 1:5"), std::string::npos);
  EXPECT_NE(all.find("set logscale x"), std::string::npos);
  EXPECT_NE(all.find("set title 'Figure 3'"), std::string::npos);
  std::remove(gp.c_str());
}

TEST(Gnuplot, LinearAxesOmitLogscale) {
  const std::string gp = "/tmp/nsp_test_fig2.gp";
  ChartOptions o;
  o.log_x = false;
  o.log_y = false;
  write_gnuplot_script(gp, "a.csv", 1, o);
  std::ifstream f(gp);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all.find("logscale"), std::string::npos);
  std::remove(gp.c_str());
}

TEST(Gnuplot, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(write_gnuplot_script("/nonexistent-dir/x.gp", "a.csv", 1));
}

TEST(SeriesCsv, RaggedSeriesLeaveBlanks) {
  const std::string path = "/tmp/nsp_test_series2.csv";
  write_series_csv(path, {{"a", {1, 2, 3}, {1, 2, 3}}, {"b", {1}, {9}}});
  std::ifstream f(path);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("3,3,"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsp::io
