// nsp::fault tests: deterministic injection, failure detection,
// checkpoint/restart recovery, and the fault-free byte-identity
// guarantee. Run via `ctest -L fault`.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "arch/network.hpp"
#include "exec/audit.hpp"
#include "exec/engine.hpp"
#include "exec/scenario.hpp"
#include "fault/detect.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "mp/comm.hpp"
#include "par/subdomain_solver.hpp"
#include "sim/simulator.hpp"

namespace nsp::fault {
namespace {

// ---- FaultSpec ---------------------------------------------------------

TEST(FaultSpec, DisabledByDefaultAndStringifiesEmpty) {
  FaultSpec s;
  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(s.str(), "");
}

TEST(FaultSpec, ParseStrRoundTrip) {
  FaultSpec s = FaultSpec::parse("crash=0.5,drop=0.01,ckpt=100,rto=0.025");
  EXPECT_TRUE(s.enabled);
  EXPECT_DOUBLE_EQ(s.crash_rate_per_hour, 0.5);
  EXPECT_DOUBLE_EQ(s.drop_prob, 0.01);
  EXPECT_EQ(s.checkpoint_interval_steps, 100);
  EXPECT_DOUBLE_EQ(s.rto_s, 0.025);
  EXPECT_EQ(FaultSpec::parse(s.str()), s);
  // Defaults are omitted from the canonical form.
  EXPECT_EQ(s.str(), "crash=0.5,drop=0.01,rto=0.025,ckpt=100");
}

TEST(FaultSpec, EnabledAllDefaultsRoundTrips) {
  FaultSpec s;
  s.enabled = true;
  EXPECT_EQ(s.str(), "on");
  EXPECT_EQ(FaultSpec::parse("on"), s);
}

TEST(FaultSpec, HeartbeatBytesAndCheckpointCostRoundTrip) {
  FaultSpec s = FaultSpec::parse("hb_bytes=128,ckpt_s=2.5");
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.heartbeat_bytes, 128);
  EXPECT_DOUBLE_EQ(s.checkpoint_cost_s, 2.5);
  EXPECT_EQ(s.str(), "hb_bytes=128,ckpt_s=2.5");
  EXPECT_EQ(FaultSpec::parse(s.str()), s);
  // ckpt_s defaults to 0 = "derive the cost from the platform's I/O
  // path"; the default is omitted from the canonical form.
  EXPECT_DOUBLE_EQ(FaultSpec::parse("on").checkpoint_cost_s, 0.0);
  EXPECT_EQ(FaultSpec::parse("on").str(), "on");
}

TEST(FaultSpec, UnknownKeyThrows) {
  EXPECT_THROW(FaultSpec::parse("warp=9"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("crash"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("crash=banana"), std::invalid_argument);
}

// ---- FaultSchedule -----------------------------------------------------

TEST(FaultSchedule, DeterministicForSameSeed) {
  FaultSpec s = FaultSpec::parse("degrade=20,straggle=30");
  const auto a = FaultSchedule::generate(s, 8, 3600.0, 99);
  const auto b = FaultSchedule::generate(s, 8, 3600.0, 99);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_GT(a.events.size(), 0u);
  for (std::size_t k = 0; k < a.events.size(); ++k) {
    EXPECT_EQ(a.events[k].time, b.events[k].time);
    EXPECT_EQ(a.events[k].node, b.events[k].node);
    EXPECT_EQ(a.events[k].kind, b.events[k].kind);
  }
  // A different seed gives a different timeline.
  const auto c = FaultSchedule::generate(s, 8, 3600.0, 100);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t k = 0; !differs && k < a.events.size(); ++k) {
    differs = a.events[k].time != c.events[k].time;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, ZeroRatesProduceNoEvents) {
  FaultSpec s;
  s.enabled = true;
  EXPECT_TRUE(FaultSchedule::generate(s, 8, 3600.0, 1).events.empty());
}

TEST(FaultSchedule, ComputeFactorInsideWindowOnly) {
  FaultSchedule sched;
  sched.events.push_back({FaultKind::Straggler, 10.0, 2, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(sched.compute_factor(2, 9.0), 1.0);
  EXPECT_DOUBLE_EQ(sched.compute_factor(2, 12.0), 3.0);
  EXPECT_DOUBLE_EQ(sched.compute_factor(2, 15.5), 1.0);
  EXPECT_DOUBLE_EQ(sched.compute_factor(1, 12.0), 1.0);  // other node
}

// ---- Injector on a network model ---------------------------------------

/// Counts deliveries through an injector-wrapped perfect network.
struct DropStormResult {
  int delivered = 0;
  double last_time = 0;
  FaultStats stats;
};

DropStormResult drop_storm(double drop_prob, std::uint64_t seed, int n) {
  sim::Simulator sim;
  FaultSpec spec = FaultSpec::parse("drop=" + std::to_string(drop_prob));
  Injector inj(spec, 4, 1e9, seed);
  auto net = inj.wrap(sim, std::make_unique<arch::EthernetBus>(sim));
  DropStormResult r;
  for (int k = 0; k < n; ++k) {
    sim.after(k * 1e-3, [&, k] {
      net->transmit(k % 2, 2 + k % 2, 1024, [&] {
        ++r.delivered;
        r.last_time = sim.now();
      });
    });
  }
  sim.run();
  r.stats = inj.stats();
  return r;
}

TEST(Injector, DropStormOnEthernetRetransmitsEverything) {
  const auto r = drop_storm(0.4, 7, 200);
  EXPECT_EQ(r.delivered, 200);  // nothing is lost for good
  EXPECT_GT(r.stats.drops, 20u);
  EXPECT_EQ(r.stats.retransmits, r.stats.drops + r.stats.corruptions);
  EXPECT_EQ(r.stats.give_ups, 0u);
  // Retransmission costs time: slower than the fault-free storm.
  const auto clean = drop_storm(0.0, 7, 200);
  EXPECT_EQ(clean.stats.drops, 0u);
  EXPECT_GT(r.last_time, clean.last_time);
}

TEST(Injector, DropStormIsDeterministic) {
  const auto a = drop_storm(0.4, 11, 150);
  const auto b = drop_storm(0.4, 11, 150);
  EXPECT_EQ(a.stats.drops, b.stats.drops);
  EXPECT_EQ(a.stats.timeline_digest(), b.stats.timeline_digest());
  EXPECT_EQ(a.last_time, b.last_time);
  const auto c = drop_storm(0.4, 12, 150);
  EXPECT_NE(a.stats.timeline_digest(), c.stats.timeline_digest());
}

TEST(Injector, GiveUpForcesDeliveryAfterBudget) {
  sim::Simulator sim;
  FaultSpec spec = FaultSpec::parse("drop=1,retries=3");
  Injector inj(spec, 2, 1e9, 5);
  auto net = inj.wrap(sim, std::make_unique<arch::PerfectNetwork>(sim));
  int delivered = 0;
  net->transmit(0, 1, 256, [&] { ++delivered; });
  sim.run();
  // drop=1 loses every attempt; the budget exhausts and the message is
  // forced through so the replay cannot wedge.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(inj.stats().give_ups, 1u);
  EXPECT_EQ(inj.stats().drops, 3u);  // attempts 0..2; attempt 3 forced
}

/// Delivery time of one message whose only wire touch is the forced
/// retry: attempt 0 (t = 0) is dropped before the wire, the retry goes
/// out at t = rto — inside the degrade window when one is scheduled.
double degraded_retry_delivery(bool window) {
  sim::Simulator sim;
  FaultSpec spec = FaultSpec::parse("drop=1,retries=1,rto=0.1");
  FaultSchedule sched;
  if (window) {
    sched.events.push_back(
        {FaultKind::LinkDegrade, /*time=*/0.05, /*node=*/-1,
         /*duration=*/1.0, /*factor=*/10.0});
  }
  Injector inj(spec, std::move(sched), 5);
  auto net = inj.wrap(sim, std::make_unique<arch::EthernetBus>(sim));
  double delivered_at = -1;
  net->transmit(0, 1, 125000, [&] { delivered_at = sim.now(); });
  sim.run();
  return delivered_at;
}

TEST(Injector, DegradeWindowPricesEveryWireTouch) {
  // The window opens at t=0.05, after the first (dropped) attempt was
  // injected but before the retry touches the wire at t=0.1. Sampling
  // the degrade factor only at the first attempt would let the retry
  // cross a degraded fabric at full speed.
  const double clean = degraded_retry_delivery(false);
  const double slowed = degraded_retry_delivery(true);
  EXPECT_GT(clean, 0.1);  // the rto elapsed before any wire touch
  // The retry pays the window's surcharge: (10-1) x 125 kB at the
  // Ethernet's ~1.25 MB/s is ~0.9 s of extra serialization.
  EXPECT_GT(slowed, clean + 0.5);
}

// ---- Replay integration ------------------------------------------------

TEST(Injector, FaultyReplayIsDeterministicAndSlower) {
  const auto app = exec::Scenario::jet250x100()
                       .platform("lace-ethernet")
                       .threads(8)
                       .app_model();
  const auto plat = exec::Scenario::jet250x100()
                        .platform("lace-ethernet")
                        .platform_model();
  perf::ReplayOptions opts;
  opts.sim_steps = 60;
  const auto clean = perf::replay(app, plat, 8, opts);

  FaultSpec spec = FaultSpec::parse("drop=0.02,straggle=40,straggle_x=4");
  const auto run = [&] {
    Injector inj(spec, 8, 2e4, 21);
    perf::ReplayOptions o = opts;
    o.injector = &inj;
    auto r = perf::replay(app, plat, 8, o);
    return std::make_pair(r.exec_time, inj.stats().timeline_digest());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // bit-identical, not just close
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, clean.exec_time);
}

TEST(Injector, ReplayBeatsHeartbeatsOnlyUnderACrashSpec) {
  const auto app = exec::Scenario::jet250x100()
                       .platform("lace-ethernet")
                       .threads(8)
                       .app_model();
  const auto plat = exec::Scenario::jet250x100()
                        .platform("lace-ethernet")
                        .platform_model();
  perf::ReplayOptions opts;
  opts.sim_steps = 40;
  // A crash-bearing spec makes every rank beat its ring successor
  // through the platform network, so detector traffic is wire-priced.
  FaultSpec crashy = FaultSpec::parse("crash=2");
  Injector with(crashy, 8, 2e4, 21);
  opts.injector = &with;
  perf::replay(app, plat, 8, opts);
  EXPECT_GT(with.stats().heartbeats, 0u);
  // Message faults alone run no detector: no beats, no wire cost.
  FaultSpec droppy = FaultSpec::parse("drop=0.02");
  Injector without(droppy, 8, 2e4, 21);
  opts.injector = &without;
  perf::replay(app, plat, 8, opts);
  EXPECT_EQ(without.stats().heartbeats, 0u);
}

// ---- CrashDetector -----------------------------------------------------

TEST(CrashDetector, SuspectsAfterMissedBeats) {
  CrashDetector d(3, 1.0, 3);
  for (double t = 0; t <= 10.0; t += 1.0) {
    d.beat(0, t);
    d.beat(1, t);
    if (t <= 4.0) d.beat(2, t);  // node 2 dies at t=4
  }
  EXPECT_FALSE(d.suspected(0, 10.0));
  EXPECT_FALSE(d.suspected(1, 10.0));
  EXPECT_FALSE(d.suspected(2, 6.9));   // within 3 periods of last beat
  EXPECT_TRUE(d.suspected(2, 7.1));    // 3 periods elapsed
  EXPECT_EQ(d.suspects(10.0), std::vector<int>{2});
  EXPECT_DOUBLE_EQ(d.detect_latency_s(), 3.0);
}

// ---- ReliableLink over a lossy Cluster ---------------------------------

TEST(ReliableLink, DeliversThroughDropsAndCorruption) {
  mp::Cluster cluster(2);
  DropPlan plan;
  plan.drop_first(0, 1, 200007, 2);  // lose the first two data frames
  cluster.set_delivery_filter(plan.filter());
  LinkStats sender, receiver;
  std::vector<double> got;
  cluster.run([&](mp::Comm& c) {
    ReliableLink link(c, /*rto_s=*/5e-3, /*max_retries=*/8);
    if (c.rank() == 0) {
      const std::vector<double> payload{3.14, 2.71, 1.41};
      ASSERT_TRUE(link.send(1, 7, payload));
      sender = link.stats();
    } else {
      auto m = link.recv(0, 7, /*timeout_s=*/5.0);
      ASSERT_TRUE(m.has_value());
      got = *m;
      receiver = link.stats();
    }
  });
  EXPECT_EQ(got, (std::vector<double>{3.14, 2.71, 1.41}));
  EXPECT_EQ(sender.retransmits, 2u);
  EXPECT_EQ(sender.acked, 1u);
  EXPECT_EQ(receiver.delivered, 1u);
}

TEST(ReliableLink, CorruptedFrameIsRejectedThenRetransmitted) {
  mp::Cluster cluster(2);
  DropPlan plan;
  plan.corrupt_first(0, 1, 200003, 1);  // first data frame arrives mangled
  cluster.set_delivery_filter(plan.filter());
  LinkStats receiver;
  bool sent_ok = false;
  cluster.run([&](mp::Comm& c) {
    ReliableLink link(c, 5e-3, 8);
    if (c.rank() == 0) {
      const std::vector<double> payload{42.0, -1.0};
      sent_ok = link.send(1, 3, payload);
    } else {
      auto m = link.recv(0, 3, 5.0);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ((*m)[0], 42.0);
      receiver = link.stats();
    }
  });
  EXPECT_TRUE(sent_ok);
  EXPECT_EQ(receiver.rejected, 1u);   // checksum caught the corruption
  EXPECT_EQ(receiver.delivered, 1u);
}

TEST(ReliableLink, GivesUpWhenBudgetExhausted) {
  mp::Cluster cluster(2);
  DropPlan plan;
  plan.drop_first(0, 1, 200001, 100);  // every data frame is lost
  cluster.set_delivery_filter(plan.filter());
  bool result = true;
  cluster.run([&](mp::Comm& c) {
    ReliableLink link(c, 1e-3, 2);
    if (c.rank() == 0) {
      const double v = 1.0;
      result = link.send(1, 1, std::span(&v, 1));
    } else {
      // The receiver times out empty-handed.
      EXPECT_FALSE(link.recv(0, 1, 50e-3).has_value());
    }
  });
  EXPECT_FALSE(result);
}

TEST(ReliableLink, StaleAckFloodCannotStretchTheRtoWindow) {
  // Rank 1 never runs the protocol: it floods stale acks (wrong seq)
  // at 10 ms intervals for ~0.6 s. Each send attempt owns one absolute
  // deadline, so the send must exhaust its 30+60+120 ms budget and
  // fail long before the flood ends — restarting the timeout on every
  // inspected ack would keep the first attempt alive for the duration.
  mp::Cluster cluster(2);
  bool ok = true;
  double waited = 0;
  cluster.run([&](mp::Comm& c) {
    if (c.rank() == 0) {
      ReliableLink link(c, /*rto_s=*/0.03, /*max_retries=*/2);
      const double v = 1.0;
      const auto t0 = std::chrono::steady_clock::now();
      ok = link.send(1, 4, std::span(&v, 1));
      waited = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    } else {
      const std::vector<double> stale{999.0};
      for (int k = 0; k < 60; ++k) {
        c.send(0, 300004, stale);  // kAckBase + tag 4
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  });
  EXPECT_FALSE(ok);  // the real ack never comes
  EXPECT_LT(waited, 0.45);
}

TEST(ReliableLink, MalformedEmptyAckIsCountedNotFatal) {
  // The acks are pre-loaded into rank 0's mailbox before send() runs:
  // the genuine ack for seq 0 first, then an empty frame. The ack-drain
  // loop must consume the malformed frame as `rejected` instead of
  // indexing into it.
  mp::Cluster cluster(2);
  bool ok = false;
  LinkStats sender;
  cluster.run([&](mp::Comm& c) {
    if (c.rank() == 1) {
      const double ack0 = 0.0;
      c.send(0, 300004, std::span(&ack0, 1));      // acks seq 0
      c.send(0, 300004, std::span<const double>{});  // malformed: empty
    }
    c.barrier();
    if (c.rank() == 0) {
      ReliableLink link(c, 0.05, 3);
      const double v = 2.0;
      ok = link.send(1, 4, std::span(&v, 1));
      sender = link.stats();
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(sender.acked, 1u);
  EXPECT_EQ(sender.rejected, 1u);  // the empty frame, drained and counted
}

// ---- Timeline model ----------------------------------------------------

TEST(Timeline, NoFaultsMeansBaselinePlusCheckpoints) {
  FaultSpec spec = FaultSpec::parse("ckpt=10,ckpt_s=2");
  TimelineInputs in;
  in.steps = 100;
  in.nprocs = 8;
  in.step_time_s = [](int) { return 1.0; };
  const auto r = simulate_timeline(spec, in, 3);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.final_procs, 8);
  EXPECT_EQ(r.stats.crashes, 0u);
  // 9 interior checkpoint boundaries (step 100 is the finish line).
  EXPECT_EQ(r.stats.checkpoints, 9u);
  EXPECT_DOUBLE_EQ(r.time_to_solution_s, 100.0 + 9 * 2.0);
  EXPECT_DOUBLE_EQ(r.fault_free_s, 100.0);
}

TEST(Timeline, CheckpointingBoundsWastedWork) {
  // Crashes arrive every ~45 s on aggregate while the run needs ~200 s:
  // checkpointing every 20 steps must beat running naked (which loses
  // everything on each crash). Every crash retires a node for good, so
  // the rate has to leave enough survivors to finish.
  FaultSpec crashy = FaultSpec::parse("crash=5,ckpt=20");
  FaultSpec naked = FaultSpec::parse("crash=5");
  TimelineInputs in;
  in.steps = 200;
  in.nprocs = 16;
  in.step_time_s = [](int p) { return 16.0 / p; };
  const auto with_ckpt = simulate_timeline(crashy, in, 5);
  const auto without = simulate_timeline(naked, in, 5);
  ASSERT_TRUE(with_ckpt.completed);
  EXPECT_GT(with_ckpt.stats.crashes, 0u);
  if (without.completed) {
    EXPECT_LT(with_ckpt.time_to_solution_s, without.time_to_solution_s);
  }
  EXPECT_EQ(with_ckpt.stats.restarts, with_ckpt.stats.crashes);
  EXPECT_GT(with_ckpt.stats.wasted_work_s, 0.0);
}

TEST(Timeline, BackToBackCrashesAreWastedOnlyOnce) {
  // With a constant step time and no checkpointing, every completed
  // walk satisfies the exact budget identity
  //     time_to_solution == useful work + wasted work
  // because each moment between a durable point and the next crash's
  // resume is wasted exactly once. A walk that fails to advance the
  // durable clock at resume re-counts every earlier crash's stall when
  // the next crash lands in the same segment.
  FaultSpec spec = FaultSpec::parse("crash=15");
  TimelineInputs in;
  in.steps = 50;
  in.nprocs = 8;
  in.step_time_s = [](int) { return 1.0; };
  bool saw_multi_crash_completion = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto r = simulate_timeline(spec, in, seed);
    if (!r.completed) continue;
    EXPECT_NEAR(r.time_to_solution_s, 50.0 + r.stats.wasted_work_s, 1e-9)
        << "seed " << seed << " crashes " << r.stats.crashes;
    if (r.stats.crashes >= 2) saw_multi_crash_completion = true;
  }
  // The identity is only interesting if some seed survives >= 2 crashes.
  EXPECT_TRUE(saw_multi_crash_completion);
}

TEST(Timeline, CheckpointCostPrefersSpecOverrideThenInputs) {
  TimelineInputs in;
  in.steps = 30;
  in.nprocs = 4;
  in.step_time_s = [](int) { return 1.0; };
  in.checkpoint_cost_s = 3.0;  // what the platform's I/O path charges
  // ckpt_s unset (0): the platform-derived cost from the inputs wins.
  const auto derived = simulate_timeline(FaultSpec::parse("ckpt=10"), in, 1);
  EXPECT_DOUBLE_EQ(derived.time_to_solution_s, 30.0 + 2 * 3.0);
  // A positive ckpt_s is a flat override for model studies.
  const auto flat =
      simulate_timeline(FaultSpec::parse("ckpt=10,ckpt_s=2"), in, 1);
  EXPECT_DOUBLE_EQ(flat.time_to_solution_s, 30.0 + 2 * 2.0);
}

TEST(Timeline, PlatformCheckpointCostFollowsTheIoPath) {
  arch::Platform plat = arch::Platform::lace560_ethernet();
  plat.io_bandwidth_Bps = 8e6;
  plat.io_latency_s = 0.05;
  // 100 x 50 interior points x 4 conserved components x 8 bytes.
  EXPECT_DOUBLE_EQ(platform_checkpoint_cost_s(plat, 100, 50),
                   0.05 + 100.0 * 50.0 * 4.0 * 8.0 / 8e6);
  // The presets order the paper's machines sensibly: the T3D's I/O
  // subsystem beats checkpointing over the LACE cluster's NFS path.
  EXPECT_LT(
      platform_checkpoint_cost_s(arch::Platform::cray_t3d(), 250, 100),
      platform_checkpoint_cost_s(arch::Platform::lace560_ethernet(), 250,
                                 100));
}

TEST(Timeline, AbandonsBelowMinProcs) {
  FaultSpec spec = FaultSpec::parse("crash=10000,ckpt=5,min_procs=3");
  TimelineInputs in;
  in.steps = 1000;
  in.nprocs = 4;
  in.step_time_s = [](int) { return 1.0; };
  const auto r = simulate_timeline(spec, in, 1);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.final_procs, 2);  // died going from 3 to 2
  EXPECT_EQ(r.stats.crashes, 2u);
}

TEST(Timeline, DeterministicPerSeed) {
  FaultSpec spec = FaultSpec::parse("crash=30,ckpt=25");
  TimelineInputs in;
  in.steps = 300;
  in.nprocs = 8;
  in.step_time_s = [](int p) { return 8.0 / p; };
  const auto a = simulate_timeline(spec, in, 77);
  const auto b = simulate_timeline(spec, in, 77);
  EXPECT_EQ(a.time_to_solution_s, b.time_to_solution_s);
  EXPECT_EQ(a.stats.timeline_digest(), b.stats.timeline_digest());
  const auto c = simulate_timeline(spec, in, 78);
  EXPECT_NE(a.stats.timeline_digest(), c.stats.timeline_digest());
}

// ---- Unified DES timeline ----------------------------------------------

TEST(TimelineDes, DeterministicPerSeed) {
  FaultSpec spec = FaultSpec::parse("crash=30,ckpt=25");
  TimelineInputs in;
  in.steps = 300;
  in.nprocs = 8;
  in.step_time_s = [](int p) { return 8.0 / p; };
  const auto plat = arch::Platform::ibm_sp_mpl();
  const auto a = simulate_timeline_des(spec, in, plat, 77);
  const auto b = simulate_timeline_des(spec, in, plat, 77);
  EXPECT_EQ(a.time_to_solution_s, b.time_to_solution_s);
  EXPECT_EQ(a.stats.timeline_digest(), b.stats.timeline_digest());
  EXPECT_GT(a.stats.crashes, 0u);
  EXPECT_GT(a.stats.heartbeats, 0u);
  const auto c = simulate_timeline_des(spec, in, plat, 78);
  EXPECT_NE(a.stats.timeline_digest(), c.stats.timeline_digest());
}

TEST(TimelineDes, OneProcFallsBackToAnalyticExactly) {
  // A one-node launch has no peer to observe its heartbeats; the
  // analytic walk is exact for that degenerate cluster.
  FaultSpec spec = FaultSpec::parse("crash=5,ckpt=10");
  TimelineInputs in;
  in.steps = 40;
  in.nprocs = 1;
  in.step_time_s = [](int) { return 1.0; };
  const auto des =
      simulate_timeline_des(spec, in, arch::Platform::lace560_ethernet(), 9);
  const auto analytic = simulate_timeline(spec, in, 9);
  EXPECT_EQ(des.time_to_solution_s, analytic.time_to_solution_s);
  EXPECT_EQ(des.stats.timeline_digest(), analytic.stats.timeline_digest());
}

TEST(TimelineDes, DetectionLatencyIsWirePriced) {
  // Same spec, same seed, same crash draw stream: the only thing that
  // differs between the two runs is the interconnect the heartbeat
  // frames cross. min_procs equals the launch width, so the first
  // crash abandons the run on both platforms — at the same simulated
  // instant, on the same victim — and the two time-to-solutions differ
  // purely by when the surviving beats' absence was noticed.
  FaultSpec spec = FaultSpec::parse("crash=200,min_procs=4");
  TimelineInputs in;
  in.steps = 10000;
  in.nprocs = 4;
  in.step_time_s = [](int) { return 1.0; };
  const auto eth =
      simulate_timeline_des(spec, in, arch::Platform::lace560_ethernet(), 3);
  const auto t3d =
      simulate_timeline_des(spec, in, arch::Platform::cray_t3d(), 3);
  ASSERT_EQ(eth.stats.crashes, 1u);
  ASSERT_EQ(t3d.stats.crashes, 1u);
  EXPECT_EQ(eth.stats.timeline_digest(), t3d.stats.timeline_digest());
  EXPECT_FALSE(eth.completed);
  EXPECT_FALSE(t3d.completed);
  ASSERT_EQ(eth.stats.detections, 1u);
  ASSERT_EQ(t3d.stats.detections, 1u);
  // The shared 10 Mb/s Ethernet charges more per beat than the torus,
  // so it observes the same crash later — and the stall shows up in
  // time-to-solution.
  EXPECT_GT(eth.stats.detect_latency_s, t3d.stats.detect_latency_s);
  EXPECT_GT(eth.time_to_solution_s, t3d.time_to_solution_s);
  // Both observed latencies live inside the detector's logical window
  // ((misses-1) .. misses periods after the last surviving beat) plus
  // what the wire charged.
  EXPECT_GT(t3d.stats.detect_latency_s, 2.0);
  EXPECT_LT(eth.stats.detect_latency_s, 3.1);
  EXPECT_GT(eth.stats.heartbeats, 0u);
}

TEST(TimelineDes, AgreesWithAnalyticWithinDocumentedTolerance) {
  // The two walks consume the identical "fault.crash" stream in the
  // same draw order, so they see the same crash timeline. What differs
  // is detection: the analytic walk charges the worst case (period x
  // misses) while the DES observes the real gap, which lands within
  // one heartbeat period below that — plus the wire's charge. The
  // documented tolerance (docs/FAULTS.md): one heartbeat period per
  // crash, one step of slack for a resume that slides across a step
  // boundary, and 2% of the analytic walk for compounding.
  TimelineInputs in;
  in.steps = 200;
  in.nprocs = 8;
  in.step_time_s = [](int p) { return 8.0 / p; };
  const auto plat = arch::Platform::ibm_sp_mpl();
  for (double rate : {2.0, 6.0}) {
    for (int k : {10, 40}) {
      FaultSpec spec = FaultSpec::parse("crash=" + std::to_string(rate) +
                                        ",ckpt=" + std::to_string(k));
      const auto analytic = simulate_timeline(spec, in, 42);
      const auto des = simulate_timeline_des(spec, in, plat, 42);
      ASSERT_TRUE(analytic.completed);
      ASSERT_TRUE(des.completed);
      EXPECT_EQ(des.stats.crashes, analytic.stats.crashes);
      const double crashes = static_cast<double>(des.stats.crashes);
      const double tol = 0.02 * analytic.time_to_solution_s +
                         crashes * (spec.heartbeat_period_s + 2.0);
      EXPECT_NEAR(des.time_to_solution_s, analytic.time_to_solution_s, tol)
          << "rate " << rate << " ckpt " << k;
    }
  }
}

// ---- Live checkpoint/restart recovery ----------------------------------

core::SolverConfig recovery_cfg() {
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(48, 16);
  cfg.viscous = true;
  return cfg;
}

TEST(Recovery, CrashMidSweepRecoversBitExact) {
  // 4 ranks, checkpoint every 10 steps, crash at step 25: the driver
  // reloads the step-20 checkpoint from disk, re-decomposes onto 3
  // ranks, and finishes. The acceptance criterion: the final physics
  // state is bit-identical to the run that never crashed.
  const auto cfg = recovery_cfg();
  RecoveryOptions opts;
  opts.checkpoint_interval = 10;
  opts.crash_step = 25;
  const auto out = run_with_recovery(cfg, 4, 40, opts);
  EXPECT_EQ(out.final_procs, 3);
  EXPECT_EQ(out.restarts, 1);
  // The heartbeat protocol — not the crash script — flagged the victim.
  EXPECT_EQ(out.detections, 1);
  EXPECT_EQ(out.wasted_steps, 5);  // steps 20..25 recomputed
  EXPECT_GE(out.checkpoints, 3);

  const auto uninterrupted = par::run_parallel_jet(cfg, 4, 40);
  EXPECT_EQ(out.state_hash, state_hash(uninterrupted));
  // And equal to the survivors-only decomposition, i.e. the hash is a
  // property of the physics, not of who computed it.
  const auto survivors = par::run_parallel_jet(cfg, 3, 40);
  EXPECT_EQ(out.state_hash, state_hash(survivors));
}

TEST(Recovery, NoCrashMatchesDirectRun) {
  const auto cfg = recovery_cfg();
  RecoveryOptions opts;
  opts.checkpoint_interval = 8;
  const auto out = run_with_recovery(cfg, 3, 20, opts);
  EXPECT_EQ(out.restarts, 0);
  EXPECT_EQ(out.detections, 0);
  EXPECT_EQ(out.wasted_steps, 0);
  EXPECT_EQ(out.final_procs, 3);
  EXPECT_EQ(out.checkpoints, 2);  // steps 8 and 16
  const auto direct = par::run_parallel_jet(cfg, 3, 20);
  EXPECT_EQ(out.state_hash, state_hash(direct));
}

TEST(Recovery, CrashBeforeFirstCheckpointRestartsFromScratch) {
  const auto cfg = recovery_cfg();
  RecoveryOptions opts;
  opts.checkpoint_interval = 10;
  opts.crash_step = 4;
  const auto out = run_with_recovery(cfg, 2, 12, opts);
  EXPECT_EQ(out.wasted_steps, 4);
  EXPECT_EQ(out.final_procs, 1);
  const auto direct = par::run_parallel_jet(cfg, 2, 12);
  EXPECT_EQ(out.state_hash, state_hash(direct));
}

// ---- Engine + audit integration ----------------------------------------

exec::Scenario faulty_scenario() {
  return exec::Scenario::jet250x100()
      .platform("lace-ethernet")
      .threads(8)
      .sim_steps(40)
      .faults("crash=2,drop=0.01,ckpt=500");
}

TEST(EngineFaults, MetricsPresentAndDeterministic) {
  exec::EngineOptions eo;
  eo.threads = 1;
  exec::Engine engine(eo);
  const auto a = engine.run_scenario(faulty_scenario());
  const auto b = engine.run_scenario(faulty_scenario());
  EXPECT_TRUE(a.has("fault_crashes"));
  EXPECT_TRUE(a.has("fault_wasted_s"));
  // Detector traffic is wire-priced in both the replay and the DES
  // lifetime walk; a crash-bearing spec always beats.
  EXPECT_GT(a.metric("fault_heartbeats"), 0.0);
  // The analytic walk rides along as a cross-check metric.
  EXPECT_TRUE(a.has("fault_model_s"));
  EXPECT_GT(exec::fault_digest(a), 0u);
  EXPECT_EQ(a, b);  // exact metric bits, including the digest halves
  // Time-to-solution dominates the fault-free baseline.
  EXPECT_GE(a.metric("exec_s"), a.metric("fault_free_s"));
}

TEST(EngineFaults, AuditComparesFaultTimelines) {
  const auto report = exec::audit({faulty_scenario()}, 2);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_NE(report.cells[0].serial_timeline, 0u);
  EXPECT_TRUE(report.cells[0].timeline_match());
  EXPECT_TRUE(report.clean());
  // The report surfaces the timeline verdict.
  EXPECT_NE(report.str().find("fault timeline"), std::string::npos);
  EXPECT_NE(report.str().find("agree"), std::string::npos);
}

TEST(EngineFaults, DisabledSpecKeepsCacheKeyAndResultsByteIdentical) {
  // The byte-identity guarantee: a default (disabled) FaultSpec changes
  // nothing — not the cache key, not a single metric bit.
  const auto plain = exec::Scenario::jet250x100()
                         .platform("sp-mpl")
                         .threads(8)
                         .sim_steps(40);
  auto with_disabled = plain;
  with_disabled.faults(FaultSpec{});
  EXPECT_EQ(plain.cache_key(), with_disabled.cache_key());
  EXPECT_EQ(plain.cache_key(),
            "replay|Navier-Stokes|v5|250x100x5000|px0|sp-mpl|default|"
            "default|p8|ss40|seed0");

  exec::EngineOptions eo;
  eo.threads = 2;
  eo.cache = false;
  exec::Engine engine(eo);
  const auto a = engine.run({plain});
  const auto b = engine.run({with_disabled});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_FALSE(a.results.at(0).has("fault_crashes"));
}

}  // namespace
}  // namespace nsp::fault
