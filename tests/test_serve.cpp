// Serving-layer tests (`ctest -L serve`): the io::json parser, the
// Scenario wire format's round-trip contract, the protocol builders,
// the content-addressed result store, and serve::Server end-to-end —
// dedup, admission control, quotas, stats, and cross-process store
// reuse, plus a file-queue replay of the daemon binary itself (the CI
// serve-smoke job's local twin).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/scenario.hpp"
#include "io/json.hpp"
#include "io/result_store.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace nsp;

// ---- io::json ----------------------------------------------------------

io::JsonValue parse_ok(const std::string& text) {
  io::JsonValue v;
  std::string err;
  EXPECT_TRUE(io::json_parse(text, &v, &err)) << text << ": " << err;
  return v;
}

TEST(JsonParse, CoversEveryValueKind) {
  const io::JsonValue v = parse_ok(
      R"({"s":"a\"b","n":-1.5e2,"t":true,"f":false,"z":null,)"
      R"("a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("s", ""), "a\"b");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0), -150.0);
  EXPECT_TRUE(v.bool_or("t", false));
  EXPECT_FALSE(v.bool_or("f", true));
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_TRUE(v.find("a")->is_array());
  EXPECT_EQ(v.find("a")->items.size(), 3u);
  EXPECT_EQ(v.find("o")->string_or("k", ""), "v");
}

TEST(JsonParse, NumberKeepsRawTextFor64BitRoundTrip) {
  const io::JsonValue v = parse_ok(R"({"seed":18446744073709551615})");
  const io::JsonValue* seed = v.find("seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->text, "18446744073709551615");
  EXPECT_EQ(std::strtoull(seed->text.c_str(), nullptr, 10),
            18446744073709551615ull);
}

TEST(JsonParse, RejectsMalformedInput) {
  io::JsonValue v;
  std::string err;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1}tail", "\"\\x\"", "01a",
        "{'a':1}", "nul"}) {
    EXPECT_FALSE(io::json_parse(bad, &v, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  // Two-byte, three-byte, and (via a surrogate pair) four-byte UTF-8.
  const io::JsonValue v =
      parse_ok(R"({"s":"\u00e9 \u20ac \ud83d\ude00"})");
  EXPECT_EQ(v.string_or("s", ""),
            "\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80");
  // A hand-escaped ASCII label means the same string as the raw
  // spelling.
  EXPECT_EQ(parse_ok(R"("\u0070\u0076\u006d")").text, "pvm");
}

TEST(JsonParse, RejectsLoneAndMalformedSurrogates) {
  io::JsonValue v;
  std::string err;
  for (const char* bad :
       {R"("\ud83d")",        // high surrogate at end of string
        R"("\udc00")",        // low surrogate with no high half
        R"("\ud83dx")",       // high surrogate followed by a plain char
        R"("\ud83d\n")",       // ... by a non-\u escape
        R"("\ud83dA")"}   // ... by a non-surrogate code unit
  ) {
    EXPECT_FALSE(io::json_parse(bad, &v, &err)) << bad;
    EXPECT_NE(err.find("surrogate"), std::string::npos) << bad << " → " << err;
  }
}

TEST(JsonParse, ObjectKeepsInsertionOrderAndLastDuplicate) {
  const io::JsonValue v = parse_ok(R"({"b":1,"a":2,"b":3})");
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "b");
  EXPECT_DOUBLE_EQ(v.members[0].second.number, 3.0);
  EXPECT_EQ(v.members[1].first, "a");
}

// ---- Scenario wire format ----------------------------------------------

exec::Scenario from_json_ok(const std::string& text) {
  exec::Scenario s;
  std::string err;
  const io::JsonValue doc = parse_ok(text);
  EXPECT_TRUE(exec::Scenario::from_json(doc, &s, &err)) << text << ": " << err;
  return s;
}

void expect_round_trip(const exec::Scenario& s, const std::string& axis) {
  const exec::Scenario back = from_json_ok(s.to_json());
  EXPECT_EQ(back.cache_key(), s.cache_key()) << "axis: " << axis;
  EXPECT_EQ(back.key(), s.key()) << "axis: " << axis;
  EXPECT_EQ(back.to_json(), s.to_json()) << "axis: " << axis;
}

TEST(ScenarioWire, RoundTripIsIdentityForEveryAxis) {
  // One mutation per wire field (docs/SERVING.md scenario schema);
  // to_json → from_json → cache_key must be the identity on each.
  using Mutation = std::pair<const char*, std::function<exec::Scenario()>>;
  const std::vector<Mutation> axes = {
      {"default", [] { return exec::Scenario::jet250x100(); }},
      {"workload-solve", [] { return exec::Scenario::solve(40, 16, 10); }},
      {"workload-netprobe", [] { return exec::Scenario::net_probe("t3d"); }},
      {"equations", [] { return exec::Scenario::jet250x100().euler(); }},
      {"version",
       [] {
         return exec::Scenario::jet250x100().version(
             arch::CodeVersion::V7_UnbundledSends);
       }},
      {"kernel",
       [] {
         return exec::Scenario::solve(40, 16, 10).kernel(
             core::KernelVariant::V2);
       }},
      {"grid", [] { return exec::Scenario::jet(64, 32, 123); }},
      {"grid2d", [] { return exec::Scenario::jet250x100().grid2d(4); }},
      {"sim_steps", [] { return exec::Scenario::jet250x100().sim_steps(55); }},
      {"platform",
       [] { return exec::Scenario::jet250x100().platform("lace-fddi-8"); }},
      {"msglayer",
       [] { return exec::Scenario::jet250x100().msglayer("pvme"); }},
      {"network",
       [] {
         return exec::Scenario::jet250x100().network(arch::NetKind::Atm);
       }},
      {"threads", [] { return exec::Scenario::jet250x100().threads(12); }},
      {"seed",
       [] { return exec::Scenario::jet250x100().seed(18446744073709551615ull); }},
      {"label", [] { return exec::Scenario::jet250x100().label("paper run"); }},
      {"faults",
       [] {
         return exec::Scenario::jet250x100().faults(
             "crash=0.5,drop=0.01,ckpt=250");
       }},
      {"model",
       [] { return exec::Scenario::jet250x100().model("euler/mac22/quiet"); }},
      {"overlap",
       [] { return exec::Scenario::jet250x100().overlap_comm(); }},
  };
  for (const auto& [axis, make] : axes) {
    expect_round_trip(make(), axis);
  }
}

TEST(ScenarioWire, EveryNetworkKindRoundTrips) {
  for (const arch::NetKind k :
       {arch::NetKind::Perfect, arch::NetKind::Ethernet, arch::NetKind::Fddi,
        arch::NetKind::Atm, arch::NetKind::AllnodeF, arch::NetKind::AllnodeS,
        arch::NetKind::SpSwitch, arch::NetKind::Torus3D,
        arch::NetKind::Torus2D, arch::NetKind::FatTree,
        arch::NetKind::Dragonfly}) {
    expect_round_trip(exec::Scenario::jet250x100().network(k),
                      "network:" + arch::to_string(k));
  }
}

TEST(ScenarioWire, OverlapOffIsCacheKeyNeutral) {
  // Off is the historical behaviour; only the enabled axis may open a
  // new cache universe.
  EXPECT_EQ(exec::Scenario::jet250x100().overlap_comm(false).cache_key(),
            exec::Scenario::jet250x100().cache_key());
  const exec::Scenario on = exec::Scenario::jet250x100().overlap_comm();
  EXPECT_NE(on.cache_key(), exec::Scenario::jet250x100().cache_key());
  EXPECT_NE(on.cache_key().find("|ov"), std::string::npos);
}

TEST(ScenarioWire, MinimalRequestTakesDefaults) {
  const exec::Scenario s = from_json_ok(R"({"platform":"t3d-16"})");
  EXPECT_EQ(s.cache_key(),
            exec::Scenario::jet250x100().platform("t3d-16").cache_key());
}

TEST(ScenarioWire, DefaultModelSpellingIsCacheKeyNeutral) {
  // The default model IS the historical pipeline, so naming it
  // explicitly must not open a new memo-cache universe.
  EXPECT_EQ(exec::Scenario::jet250x100().model("ns/mac24/mode1").cache_key(),
            exec::Scenario::jet250x100().cache_key());
  const exec::Scenario other =
      exec::Scenario::jet250x100().model("ns/mac22/mode1");
  EXPECT_NE(other.cache_key(), exec::Scenario::jet250x100().cache_key());
  EXPECT_NE(other.cache_key().find("|model:ns/mac22/mode1"),
            std::string::npos);
}

TEST(ScenarioWire, SeedAcceptsStringAndIntegerSpellings) {
  const exec::Scenario a = from_json_ok(R"({"seed":"18446744073709551615"})");
  const exec::Scenario b = from_json_ok(R"({"seed":18446744073709551615})");
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(
      a.cache_key(),
      exec::Scenario::jet250x100().seed(18446744073709551615ull).cache_key());
}

TEST(ScenarioWire, RejectsBadFields) {
  exec::Scenario s;
  std::string err;
  const std::vector<std::pair<const char*, const char*>> cases = {
      {R"({"thread":4})", "unknown field"},          // typo
      {R"({"workload":"sleep"})", "unknown workload"},
      {R"({"equations":"mhd"})", "unknown equations"},
      {R"({"version":9})", "out of range"},
      {R"({"kernel":0})", "out of range"},
      {R"({"ni":1.5})", "must be an integer"},
      {R"({"platform":"cm-5"})", "unknown platform"},
      {R"({"msglayer":"tcgmsg"})", "unknown msglayer"},
      {R"({"overlap":2})", "out of range"},
      {R"({"network":"infiniband"})", "unknown network"},
      {R"({"seed":"twelve"})", "not a decimal integer"},
      {R"({"faults":"crash=oops"})", "bad faults spec"},
      {R"({"model":"ns/mac99/mode1"})", "unknown model"},
      {R"([1,2])", "must be a JSON object"},
  };
  for (const auto& [text, expect] : cases) {
    const io::JsonValue doc = parse_ok(text);
    ASSERT_FALSE(exec::Scenario::from_json(doc, &s, &err)) << text;
    EXPECT_NE(err.find(expect), std::string::npos) << text << " → " << err;
  }
}

// ---- protocol ----------------------------------------------------------

TEST(Protocol, ParseRequestEchoesIdOnErrors) {
  serve::Request req;
  std::string code, msg;
  EXPECT_FALSE(serve::parse_request(R"({"id":"x9","op":"fly"})", &req, &code,
                                    &msg));
  EXPECT_EQ(code, serve::code::kBadRequest);
  EXPECT_EQ(req.id, "x9");

  EXPECT_FALSE(serve::parse_request(R"({"op":"run"})", &req, &code, &msg));
  EXPECT_EQ(code, serve::code::kBadRequest);

  EXPECT_FALSE(serve::parse_request(R"({"id":"y","op":"run"})", &req, &code,
                                    &msg));
  EXPECT_EQ(code, serve::code::kBadScenario);

  EXPECT_FALSE(serve::parse_request("not json", &req, &code, &msg));
  EXPECT_EQ(code, serve::code::kBadRequest);
}

TEST(Protocol, ParseRequestFillsClientAndOps) {
  serve::Request req;
  std::string code, msg;
  ASSERT_TRUE(serve::parse_request(
      R"({"id":"a","client":"alice","scenario":{"platform":"t3d-8"}})", &req,
      &code, &msg))
      << msg;
  EXPECT_EQ(req.op, serve::Op::Run);
  EXPECT_EQ(req.client, "alice");
  ASSERT_TRUE(serve::parse_request(R"({"id":"b","op":"stats"})", &req, &code,
                                   &msg));
  EXPECT_EQ(req.op, serve::Op::Stats);
  EXPECT_EQ(req.client, "anon");
  ASSERT_TRUE(serve::parse_request(R"({"id":"c","op":"shutdown"})", &req,
                                   &code, &msg));
  EXPECT_EQ(req.op, serve::Op::Shutdown);
}

TEST(Protocol, ResultBodyRoundTrips) {
  exec::RunResult r;
  r.key = "some|key";
  r.label = "lbl";
  r.platform = "Cray T3D";
  r.nprocs = 8;
  r.seed = 18446744073709551615ull;
  r.set("exec_s", 24.901021851579497);
  r.set("messages", 28000);
  exec::RunResult back;
  std::string err;
  ASSERT_TRUE(serve::parse_result_body(serve::result_body(r), &back, &err))
      << err;
  EXPECT_EQ(back, r);  // identity comparison: exact metric bits
  EXPECT_EQ(serve::result_body(back), serve::result_body(r));
}

// ---- io::ResultStore ---------------------------------------------------

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "nsp_serve_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ResultStore, PutGetAndPersistenceAcrossInstances) {
  const std::string dir = fresh_dir("persist");
  {
    io::ResultStore store(dir, 0);
    store.put("key-a", "{\"a\":1}");
    store.put("key-b", "{\"b\":2}");
    EXPECT_EQ(store.size(), 2u);
    std::string body;
    ASSERT_TRUE(store.get("key-a", &body));
    EXPECT_EQ(body, "{\"a\":1}");
    EXPECT_FALSE(store.get("key-missing", &body));
  }
  io::ResultStore reopened(dir, 0);  // fresh process, same directory
  EXPECT_EQ(reopened.size(), 2u);
  std::string body;
  ASSERT_TRUE(reopened.get("key-b", &body));
  EXPECT_EQ(body, "{\"b\":2}");
}

TEST(ResultStore, EvictsLeastRecentlyUsedAtByteBudget) {
  const std::string dir = fresh_dir("lru");
  io::ResultStore store(dir, 20);  // room for two 8-byte bodies
  store.put("k1", "11111111");
  store.put("k2", "22222222");
  std::string body;
  ASSERT_TRUE(store.get("k1", &body));  // bump k1: k2 is now LRU
  store.put("k3", "33333333");
  EXPECT_TRUE(store.get("k1", &body));
  EXPECT_FALSE(store.get("k2", &body)) << "k2 should have been evicted";
  EXPECT_TRUE(store.get("k3", &body));
  EXPECT_LE(store.bytes(), 20u);
}

TEST(ResultStore, OversizedBodyIsNotAdmitted) {
  const std::string dir = fresh_dir("oversize");
  io::ResultStore store(dir, 4);
  store.put("big", "123456789");
  std::string body;
  EXPECT_FALSE(store.get("big", &body));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ResultStore, ExactByteBudgetIsNotOverBudget) {
  // The budget is inclusive: a store holding exactly max_bytes evicts
  // nothing — neither on put nor when an existing store reopens.
  const std::string dir = fresh_dir("boundary");
  {
    io::ResultStore store(dir, 16);
    store.put("k1", "11111111");
    store.put("k2", "22222222");  // total == budget exactly
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.bytes(), 16u);
    store.put("k3", "3");  // one byte over: LRU (k1) must go
    std::string body;
    EXPECT_FALSE(store.get("k1", &body));
    EXPECT_TRUE(store.get("k2", &body));
    EXPECT_TRUE(store.get("k3", &body));
    EXPECT_LE(store.bytes(), 16u);
  }
  io::ResultStore reopened(dir, 9);  // resident 9 bytes == new budget
  EXPECT_EQ(reopened.size(), 2u) << "exactly-at-budget store must not trim";
  EXPECT_EQ(reopened.bytes(), 9u);
}

TEST(ResultStore, FailedIndexRewriteKeepsOldIndex) {
  // Injected write failure: point store.index.tmp at /dev/full so every
  // byte of the rewrite is lost at flush. The store must notice and keep
  // the previous index instead of renaming a corpse over it.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
  const std::string dir = fresh_dir("injected");
  {
    io::ResultStore store(dir, 0);
    store.put("k1", "11111111");
    store.put("k2", "22222222");
  }
  const std::filesystem::path index =
      std::filesystem::path(dir) / "store" / "store.index";
  const std::filesystem::path tmp =
      std::filesystem::path(dir) / "store" / "store.index.tmp";
  std::filesystem::create_symlink("/dev/full", tmp);
  {
    io::ResultStore store(dir, 0);  // ctor rewrites the index through tmp
    EXPECT_EQ(store.size(), 2u);
  }
  EXPECT_FALSE(std::filesystem::is_symlink(index))
      << "failed rewrite renamed the doomed tmp over the live index";
  ASSERT_TRUE(std::filesystem::is_regular_file(index));
  std::ifstream in(index);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("k1"), std::string::npos) << text;
  EXPECT_NE(text.find("k2"), std::string::npos) << text;
  // The failure is transient: once the bad tmp is cleared, a reopen sees
  // every entry.
  io::ResultStore reopened(dir, 0);
  EXPECT_EQ(reopened.size(), 2u);
}

// ---- serve::Server -----------------------------------------------------

// A cheap replay cell (~milliseconds): the engine tests' small-sweep
// sizing.
std::string run_request(const std::string& id, const std::string& extra = "") {
  return "{\"id\":\"" + id +
         "\",\"op\":\"run\",\"scenario\":{\"platform\":\"t3d-4\",\"ni\":50,"
         "\"nj\":20,\"steps\":100,\"sim_steps\":25" + extra + "}}";
}

serve::ServerOptions manual_options() {
  serve::ServerOptions o;
  o.auto_pump = false;
  o.engine_threads = 1;
  return o;
}

TEST(Server, TwoIdenticalConcurrentRequestsRunOnce) {
  serve::Server server(manual_options());
  std::string ra, rb;
  std::thread ta([&] { ra = server.handle(run_request("same-id")); });
  std::thread tb([&] { rb = server.handle(run_request("same-id")); });
  while (server.pending() < 2) std::this_thread::yield();
  EXPECT_TRUE(server.pump());
  ta.join();
  tb.join();
  EXPECT_EQ(ra, rb) << "coalesced waiters must receive identical responses";
  EXPECT_NE(ra.find("\"ok\":true"), std::string::npos) << ra;
  const serve::ServeStats st = server.stats();
  EXPECT_EQ(st.dedup_coalesced, 1u);
  EXPECT_EQ(st.engine.executed, 1u) << "one Engine run for two requests";
  EXPECT_EQ(st.ok, 2u);
}

TEST(Server, CoalescedWaitersKeepTheirOwnLabels) {
  serve::Server server(manual_options());
  const auto a = server.submit(run_request("a", ",\"label\":\"mine\""));
  const auto b = server.submit(run_request("b", ",\"label\":\"yours\""));
  ASSERT_FALSE(a.immediate);
  ASSERT_FALSE(b.immediate);
  EXPECT_TRUE(server.pump());
  const std::string res_a = server.wait(a);
  const std::string res_b = server.wait(b);
  EXPECT_NE(res_a.find("\"label\":\"mine\""), std::string::npos) << res_a;
  EXPECT_NE(res_b.find("\"label\":\"yours\""), std::string::npos) << res_b;
  EXPECT_EQ(server.stats().dedup_coalesced, 1u)
      << "labels differ but cache keys match: still one run";
}

TEST(Server, OverCapacityRequestsGetStructuredShedResponses) {
  serve::ServerOptions o = manual_options();
  o.queue_capacity = 1;
  serve::Server server(o);
  const auto ok = server.submit(run_request("fits"));
  EXPECT_FALSE(ok.immediate);
  const auto shed = server.submit(run_request("shed-me", ",\"steps\":200"));
  ASSERT_TRUE(shed.immediate);
  EXPECT_NE(shed.response.find("\"code\":\"shed\""), std::string::npos)
      << shed.response;
  EXPECT_NE(shed.response.find("\"id\":\"shed-me\""), std::string::npos);
  EXPECT_TRUE(server.pump());
  EXPECT_NE(server.wait(ok).find("\"ok\":true"), std::string::npos);
  const serve::ServeStats st = server.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.ok, 1u);
  EXPECT_EQ(st.errors, 1u);
}

TEST(Server, PerClientTokenBucketsRefillOnPumpTicks) {
  serve::ServerOptions o = manual_options();
  o.quota_burst = 2;
  o.quota_tokens_per_tick = 1;
  serve::Server server(o);
  auto t1 = server.submit(run_request("q1"));
  auto t2 = server.submit(run_request("q2"));
  auto t3 = server.submit(run_request("q3"));
  EXPECT_FALSE(t1.immediate);
  EXPECT_FALSE(t2.immediate);
  ASSERT_TRUE(t3.immediate) << "burst of 2 exhausted";
  EXPECT_NE(t3.response.find("\"code\":\"quota\""), std::string::npos)
      << t3.response;
  // A different client has its own bucket.
  auto other = server.submit(
      "{\"id\":\"o1\",\"op\":\"run\",\"client\":\"other\",\"scenario\":"
      "{\"platform\":\"t3d-4\",\"ni\":50,\"nj\":20,\"steps\":100,"
      "\"sim_steps\":25}}");
  EXPECT_FALSE(other.immediate);
  EXPECT_TRUE(server.pump());  // refills one token per tick
  auto t4 = server.submit(run_request("q4"));
  EXPECT_FALSE(t4.immediate) << "tick refilled the bucket";
  server.pump();
  server.wait(t1);
  server.wait(t2);
  server.wait(t4);
  server.wait(other);
  EXPECT_EQ(server.stats().quota_denied, 1u);
}

TEST(Server, StatsAndShutdownOps) {
  serve::Server server(manual_options());
  const auto stats = server.submit(R"({"id":"s","op":"stats"})");
  ASSERT_TRUE(stats.immediate);
  EXPECT_NE(stats.response.find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(stats.response.find("\"dedup_coalesced\":0"), std::string::npos);

  const auto bye = server.submit(R"({"id":"bye","op":"shutdown"})");
  ASSERT_TRUE(bye.immediate);
  EXPECT_NE(bye.response.find("\"type\":\"shutdown\""), std::string::npos);
  EXPECT_TRUE(server.shutdown_requested());

  const auto refused = server.submit(run_request("late"));
  ASSERT_TRUE(refused.immediate);
  EXPECT_NE(refused.response.find("\"code\":\"shutting-down\""),
            std::string::npos)
      << refused.response;
}

TEST(Server, BadRequestsAnswerWithoutQueueing) {
  serve::Server server(manual_options());
  const auto bad = server.submit("{\"id\":\"b\",\"op\":\"run\","
                                 "\"scenario\":{\"platform\":\"nope\"}}");
  ASSERT_TRUE(bad.immediate);
  EXPECT_NE(bad.response.find("\"code\":\"bad-scenario\""), std::string::npos);
  const auto garbage = server.submit("}{");
  ASSERT_TRUE(garbage.immediate);
  EXPECT_NE(garbage.response.find("\"code\":\"bad-request\""),
            std::string::npos);
  EXPECT_EQ(server.pending(), 0u);
  EXPECT_EQ(server.stats().errors, 2u);
}

TEST(Server, UnknownModelIsStructuredErrorNotShed) {
  serve::Server server(manual_options());
  const auto bad =
      server.submit(run_request("m-bad", ",\"model\":\"ns/mac99/mode1\""));
  ASSERT_TRUE(bad.immediate) << "rejected before admission control";
  EXPECT_NE(bad.response.find("\"code\":\"bad-scenario\""), std::string::npos)
      << bad.response;
  EXPECT_NE(bad.response.find("unknown model"), std::string::npos)
      << bad.response;
  // A known non-default model runs end-to-end through the same daemon.
  const auto ok =
      server.submit(run_request("m-ok", ",\"model\":\"ns/mac22/mode1\""));
  ASSERT_FALSE(ok.immediate);
  EXPECT_TRUE(server.pump());
  EXPECT_NE(server.wait(ok).find("\"ok\":true"), std::string::npos);
  const serve::ServeStats st = server.stats();
  EXPECT_EQ(st.shed, 0u) << "bad model must be an error, never a shed";
  EXPECT_EQ(st.errors, 1u);
  EXPECT_EQ(st.ok, 1u);
}

TEST(Server, ResultStoreServesAcrossServerInstances) {
  const std::string dir = fresh_dir("server_store");
  std::string first;
  {
    serve::ServerOptions o = manual_options();
    o.store_dir = dir;
    serve::Server server(o);
    auto t = server.submit(run_request("gen1"));
    server.pump();
    first = server.wait(t);
    EXPECT_EQ(server.stats().store_puts, 1u);
  }
  serve::ServerOptions o = manual_options();
  o.store_dir = dir;
  serve::Server server(o);  // fresh engine: memo cache is empty
  auto t = server.submit(run_request("gen1"));
  server.pump();
  EXPECT_EQ(server.wait(t), first)
      << "store-served response must be byte-identical to the computed one";
  const serve::ServeStats st = server.stats();
  EXPECT_EQ(st.store_hits, 1u);
  EXPECT_EQ(st.engine.executed, 0u) << "no recomputation";
}

TEST(Server, AutoPumpModeAnswersWithoutManualPumps) {
  serve::ServerOptions o;
  o.engine_threads = 1;  // auto_pump defaults to true
  serve::Server server(o);
  const std::string res = server.handle(run_request("auto"));
  EXPECT_NE(res.find("\"ok\":true"), std::string::npos) << res;
}

// ---- daemon binary, file-queue mode ------------------------------------

TEST(ServeDaemon, FileQueueReplayIsByteIdenticalWithStoreHits) {
  // NSP_SERVE_BIN comes from CMake. Same request file, fresh daemon
  // process each pass, shared store: pass 2 must answer byte-identically
  // and entirely from the store — the CI serve-smoke contract.
  const std::string dir = fresh_dir("daemon");
  const std::string requests = dir + "/requests.ndjson";
  {
    std::ofstream out(requests);
    out << run_request("d1") << "\n"
        << run_request("d2") << "\n"          // dedup of d1
        << run_request("d3", ",\"platform\":\"lace-ethernet-4\"") << "\n"
        << "{\"id\":\"d4\",\"op\":\"run\",\"scenario\":{\"platform\":"
           "\"bogus\"}}\n";
  }
  const std::string base = std::string(NSP_SERVE_BIN) + " --queue " +
                           requests + " --store " + dir + "/cas";
  ASSERT_EQ(std::system((base + " --out " + dir + "/pass1.ndjson --stats " +
                         dir + "/stats1.json")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((base + " --out " + dir + "/pass2.ndjson --stats " +
                         dir + "/stats2.json")
                            .c_str()),
            0);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string pass1 = slurp(dir + "/pass1.ndjson");
  const std::string pass2 = slurp(dir + "/pass2.ndjson");
  EXPECT_FALSE(pass1.empty());
  EXPECT_EQ(pass1, pass2) << "daemon replay must be byte-identical";
  EXPECT_NE(pass1.find("\"id\":\"d1\",\"ok\":true"), std::string::npos);
  EXPECT_NE(pass1.find("\"code\":\"bad-scenario\""), std::string::npos);

  const std::string stats1 = slurp(dir + "/stats1.json");
  const std::string stats2 = slurp(dir + "/stats2.json");
  EXPECT_NE(stats1.find("\"store_puts\":2"), std::string::npos) << stats1;
  EXPECT_NE(stats2.find("\"store_hits\":2"), std::string::npos) << stats2;
  EXPECT_NE(stats2.find("\"executed\":0"), std::string::npos) << stats2;
  EXPECT_NE(stats2.find("\"dedup_coalesced\":1"), std::string::npos) << stats2;
}

}  // namespace
