#include "arch/cpu_model.hpp"

#include <gtest/gtest.h>

namespace nsp::arch {
namespace {

KernelProfile ns(CodeVersion v) {
  return KernelProfile::make(Equations::NavierStokes, v);
}

// ---- The paper's measured single-processor anchors (Section 6) ----

TEST(CpuModel, Rs560Version1Near9MFlops) {
  // "from 9.3 MFLOPS" before optimization on the RS6000/560.
  const double m = CpuModel::rs6000_560().effective_mflops(ns(CodeVersion::V1_Original));
  EXPECT_NEAR(m, 9.3, 0.9);
}

TEST(CpuModel, Rs560Version5Near16MFlops) {
  // "...to 16.0 MFLOPS" with all optimizations.
  const double m = CpuModel::rs6000_560().effective_mflops(
      ns(CodeVersion::V5_CommonCollapse));
  EXPECT_NEAR(m, 16.0, 1.6);
}

TEST(CpuModel, OverallImprovementRoughly80Percent) {
  const auto cpu = CpuModel::rs6000_560();
  const double v1 = cpu.effective_mflops(ns(CodeVersion::V1_Original));
  const double v5 = cpu.effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  EXPECT_GT(v5 / v1, 1.5);
  EXPECT_LT(v5 / v1, 2.2);
}

TEST(CpuModel, LoopInterchangeIsTheBiggestSingleWin) {
  // "the modified program ... resulted in this version running faster by
  // approximately 50% compared to Version 2."
  const auto cpu = CpuModel::rs6000_560();
  const double t2 = cpu.seconds(ns(CodeVersion::V2_StrengthReduction));
  const double t3 = cpu.seconds(ns(CodeVersion::V3_LoopInterchange));
  EXPECT_GT(t2 / t3, 1.25);
  EXPECT_LT(t2 / t3, 1.7);
  // and it is the largest step of the ladder
  const double t1 = cpu.seconds(ns(CodeVersion::V1_Original));
  const double t4 = cpu.seconds(ns(CodeVersion::V4_DivisionToMultiply));
  const double t5 = cpu.seconds(ns(CodeVersion::V5_CommonCollapse));
  EXPECT_GT(t2 / t3, t1 / t2);
  EXPECT_GT(t2 / t3, t3 / t4);
  EXPECT_GT(t2 / t3, t4 / t5);
}

TEST(CpuModel, VersionLadderMonotonicallyImproves) {
  const auto cpu = CpuModel::rs6000_560();
  double prev = 0;
  for (int v = 1; v <= 5; ++v) {
    const double m = cpu.effective_mflops(ns(static_cast<CodeVersion>(v)));
    EXPECT_GT(m, prev) << "version " << v;
    prev = m;
  }
}

// ---- Cross-platform ordering (Section 7.2) ----

TEST(CpuModel, Model590FasterThan560ByAboutHalf) {
  // "33% faster clock, 4x bigger caches, 4x wider memory bus."
  const double m560 =
      CpuModel::rs6000_560().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  const double m590 =
      CpuModel::rs6000_590().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  EXPECT_GT(m590 / m560, 1.35);
  EXPECT_LT(m590 / m560, 1.9);
}

TEST(CpuModel, SpNodeSlowerThan560DespiteFasterClock) {
  // The paper attributes the SP's poor showing partly to its 32 KB cache.
  const double m560 =
      CpuModel::rs6000_560().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  const double m370 =
      CpuModel::rs6k_370().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  EXPECT_LT(m370, m560);
  EXPECT_GT(CpuModel::rs6k_370().clock_hz, CpuModel::rs6000_560().clock_hz);
}

TEST(CpuModel, T3dNodeSlowerThan560DespiteTripleClockRating) {
  // "The T3D's CPU has a peak rating ... 3x the 560. We attribute the
  // T3D's poor performance to the small direct-mapped cache."
  const double m560 =
      CpuModel::rs6000_560().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  const double t3d =
      CpuModel::alpha_t3d().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  EXPECT_LT(t3d, m560);
  EXPECT_GE(CpuModel::alpha_t3d().clock_hz / CpuModel::rs6000_560().clock_hz, 3.0);
}

TEST(CpuModel, YmpVectorDominatesEveryRiscNode) {
  const double ymp =
      CpuModel::ymp_vector().effective_mflops(ns(CodeVersion::V5_CommonCollapse));
  for (const auto& cpu : {CpuModel::rs6000_560(), CpuModel::rs6000_590(),
                          CpuModel::rs6k_370(), CpuModel::alpha_t3d()}) {
    EXPECT_GT(ymp, 5.0 * cpu.effective_mflops(ns(CodeVersion::V5_CommonCollapse)));
  }
}

// ---- Model structure ----

TEST(CpuModel, BiggerCacheNeverSlower) {
  CpuModel a = CpuModel::rs6k_370();
  CpuModel b = a;
  b.dcache.size_bytes *= 8;
  for (int v = 1; v <= 5; ++v) {
    const auto p = ns(static_cast<CodeVersion>(v));
    EXPECT_LE(b.seconds(p), a.seconds(p)) << "version " << v;
  }
}

TEST(CpuModel, HigherAssociativityNeverSlower) {
  CpuModel a = CpuModel::alpha_t3d();
  CpuModel b = a;
  b.dcache.associativity = 4;
  const auto p = ns(CodeVersion::V5_CommonCollapse);
  EXPECT_LE(b.seconds(p), a.seconds(p));
}

TEST(CpuModel, WiderBusReducesMissPenalty) {
  CpuModel a = CpuModel::rs6000_560();
  CpuModel b = a;
  b.bus_bytes_per_cycle *= 4;
  EXPECT_LT(b.miss_penalty_cycles(), a.miss_penalty_cycles());
}

TEST(CpuModel, DirectMappedLosesEffectiveCapacity) {
  CpuModel dm = CpuModel::alpha_t3d();
  EXPECT_NEAR(dm.effective_capacity_bytes(), 0.5 * dm.dcache.size_bytes, 1.0);
  CpuModel sa = CpuModel::rs6000_560();
  EXPECT_GT(sa.effective_capacity_bytes(), 0.85 * sa.dcache.size_bytes);
}

TEST(CpuModel, CycleBreakdownComponentsSumToTotal) {
  const auto cpu = CpuModel::rs6000_560();
  const auto b = cpu.cycles(ns(CodeVersion::V1_Original), 10.0);
  EXPECT_DOUBLE_EQ(
      b.total(), b.flop_cycles + b.divide_cycles + b.pow_cycles + b.stall_cycles);
  EXPECT_GT(b.pow_cycles, 0.0);
  EXPECT_GT(b.stall_cycles, 0.0);
}

TEST(CpuModel, SecondsScaleLinearlyWithPoints) {
  const auto cpu = CpuModel::rs6000_560();
  const auto p = ns(CodeVersion::V5_CommonCollapse);
  EXPECT_NEAR(cpu.seconds(p, 2000.0), 2.0 * cpu.seconds(p, 1000.0), 1e-12);
}

TEST(CpuModel, VectorEfficiencyFollowsNHalfLaw) {
  const auto ymp = CpuModel::ymp_vector();
  EXPECT_NEAR(ymp.vector_efficiency(ymp.vector_n_half), 0.5, 1e-12);
  EXPECT_GT(ymp.vector_efficiency(250), 0.8);
  EXPECT_LT(ymp.vector_efficiency(10), ymp.vector_efficiency(100));
  EXPECT_DOUBLE_EQ(ymp.vector_efficiency(0), 1.0);  // degenerate guard
  // Scalar CPUs are unaffected.
  EXPECT_DOUBLE_EQ(CpuModel::rs6000_560().vector_efficiency(4), 1.0);
}

TEST(CpuModel, YmpSustained220AtPaperVectorLength) {
  const auto ymp = CpuModel::ymp_vector();
  const auto p = ns(CodeVersion::V5_CommonCollapse);
  const double sustained =
      ymp.effective_mflops(p) * ymp.vector_efficiency(250.0);
  EXPECT_NEAR(sustained, 220.0, 10.0);
}

TEST(CpuModel, VectorModelIgnoresStride) {
  const auto ymp = CpuModel::ymp_vector();
  const double bad = ymp.effective_mflops(ns(CodeVersion::V2_StrengthReduction));
  const double good = ymp.effective_mflops(ns(CodeVersion::V3_LoopInterchange));
  EXPECT_NEAR(bad, good, 1e-9);
}

}  // namespace
}  // namespace nsp::arch
