#include "perf/app_model.hpp"

#include <gtest/gtest.h>

namespace nsp::perf {
namespace {

using arch::CodeVersion;
using arch::Equations;

TEST(AppModel, Table1TotalsNavierStokes) {
  const auto m = AppModel::paper(Equations::NavierStokes);
  EXPECT_NEAR(m.total_flops(), 145000e6, 0.06 * 145000e6);
  EXPECT_DOUBLE_EQ(m.startups_per_proc(16), 80000.0);
  EXPECT_NEAR(m.volume_per_proc(16), 125e6, 0.05 * 125e6);
}

TEST(AppModel, Table1TotalsEuler) {
  const auto m = AppModel::paper(Equations::Euler);
  EXPECT_NEAR(m.total_flops(), 77000e6, 0.06 * 77000e6);
  EXPECT_DOUBLE_EQ(m.startups_per_proc(16), 60000.0);
  EXPECT_NEAR(m.volume_per_proc(16), 95e6, 0.05 * 95e6);
}

TEST(AppModel, EulerCommunicationIsThreeQuartersOfNs) {
  // "Euler has ... roughly 75% of the communication of Navier-Stokes."
  const auto ns = AppModel::paper(Equations::NavierStokes);
  const auto eu = AppModel::paper(Equations::Euler);
  EXPECT_NEAR(eu.volume_per_proc(16) / ns.volume_per_proc(16), 0.76, 0.03);
  EXPECT_NEAR(eu.startups_per_proc(16) / ns.startups_per_proc(16), 0.75, 0.01);
}

TEST(AppModel, PhaseFractionsSumToOne) {
  for (auto eq : {Equations::NavierStokes, Equations::Euler}) {
    const auto m = AppModel::paper(eq);
    double sum = 0;
    for (const auto& ph : m.phases) sum += ph.compute_fraction;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AppModel, EdgeRanksSendLess) {
  const auto m = AppModel::paper(Equations::NavierStokes);
  EXPECT_LT(m.sends_per_step(16, 0), m.sends_per_step(16, 1));
  EXPECT_LT(m.sends_per_step(16, 15), m.sends_per_step(16, 1));
  EXPECT_EQ(m.sends_per_step(16, 1), m.sends_per_step(16, 8));
}

TEST(AppModel, InteriorRankSendsEightTimesPerStepNs) {
  const auto m = AppModel::paper(Equations::NavierStokes);
  EXPECT_EQ(m.sends_per_step(16, 5), 8);  // 16 start-ups = 8 sends + 8 recvs
}

TEST(AppModel, SingleProcessorHasNoCommunication) {
  const auto m = AppModel::paper(Equations::NavierStokes);
  EXPECT_EQ(m.sends_per_step(1, 0), 0);
  EXPECT_DOUBLE_EQ(m.volume_per_proc(1), 0.0);
}

TEST(AppModel, Version7MultipliesStartupsSameVolume) {
  // "Version 7 attempts to reduce bursty communication at the cost of
  // increased number of communication startups."
  const auto v5 = AppModel::paper(Equations::NavierStokes,
                                  CodeVersion::V5_CommonCollapse);
  const auto v7 = AppModel::paper(Equations::NavierStokes,
                                  CodeVersion::V7_UnbundledSends);
  EXPECT_GT(v7.startups_per_proc(16), 2.0 * v5.startups_per_proc(16));
  EXPECT_NEAR(v7.volume_per_proc(16), v5.volume_per_proc(16),
              0.05 * v5.volume_per_proc(16));
}

TEST(AppModel, Version7SendsAreStaggered) {
  const auto v7 = AppModel::paper(Equations::NavierStokes,
                                  CodeVersion::V7_UnbundledSends);
  bool found_early = false;
  for (const auto& ph : v7.phases) {
    for (const auto& s : ph.sends) {
      if (s.inject_frac < 0.999) found_early = true;
    }
  }
  EXPECT_TRUE(found_early);
}

TEST(AppModel, Version6EnablesOverlapWithBusyPenalty) {
  const auto v6 = AppModel::paper(Equations::NavierStokes,
                                  CodeVersion::V6_OverlapComm);
  EXPECT_GT(v6.overlap_fraction, 0.0);
  EXPECT_GT(v6.busy_penalty, 0.0);
  const auto v5 = AppModel::paper(Equations::NavierStokes);
  EXPECT_EQ(v5.overlap_fraction, 0.0);
}

TEST(AppModel, VolumeScalesWithRadialPoints) {
  const auto a = AppModel::paper(Equations::NavierStokes,
                                 CodeVersion::V5_CommonCollapse, 250, 100);
  const auto b = AppModel::paper(Equations::NavierStokes,
                                 CodeVersion::V5_CommonCollapse, 250, 200);
  EXPECT_NEAR(b.volume_per_proc(16) / a.volume_per_proc(16), 2.0, 0.01);
}

TEST(AppModel, FlopsScaleWithGridAndSteps) {
  const auto a = AppModel::paper(Equations::Euler);
  auto b = AppModel::paper(Equations::Euler, CodeVersion::V5_CommonCollapse,
                           250, 100, 10000);
  EXPECT_NEAR(b.total_flops() / a.total_flops(), 2.0, 1e-9);
}

TEST(AppModel, PeerTopology1D) {
  const auto m = AppModel::paper(Equations::NavierStokes);
  EXPECT_EQ(m.peer(4, 0, -1), -1);
  EXPECT_EQ(m.peer(4, 0, +1), 1);
  EXPECT_EQ(m.peer(4, 3, +1), -1);
  EXPECT_EQ(m.peer(4, 2, -1), 1);
  EXPECT_EQ(m.peer(4, 1, +2), -1);  // no radial neighbours in a chain
}

TEST(AppModel, PeerTopology2D) {
  const auto m = AppModel::paper_grid(Equations::NavierStokes, 4, 4);
  // rank 5 = (1, 1) of a 4x4 grid.
  EXPECT_EQ(m.peer(16, 5, -1), 4);
  EXPECT_EQ(m.peer(16, 5, +1), 6);
  EXPECT_EQ(m.peer(16, 5, -2), 1);
  EXPECT_EQ(m.peer(16, 5, +2), 9);
  // rank 3 = (3, 0): right and bottom edges.
  EXPECT_EQ(m.peer(16, 3, +1), -1);
  EXPECT_EQ(m.peer(16, 3, -2), -1);
  EXPECT_EQ(m.peer(16, 3, +2), 7);
}

TEST(AppModel, GridDegeneratesToChainAtPyOne) {
  const auto chain = AppModel::paper(Equations::NavierStokes);
  const auto grid = AppModel::paper_grid(Equations::NavierStokes, 16, 1);
  EXPECT_EQ(grid.sends_per_step(16, 5), chain.sends_per_step(16, 5));
  EXPECT_NEAR(grid.volume_per_proc(16), chain.volume_per_proc(16),
              0.01 * chain.volume_per_proc(16));
}

TEST(AppModel, RadialCutMovesMoreBytesOnElongatedGrid) {
  const auto axial = AppModel::paper(Equations::NavierStokes);
  const auto radial = AppModel::paper_grid(Equations::NavierStokes, 1, 16);
  EXPECT_GT(radial.volume_per_proc(16), 1.5 * axial.volume_per_proc(16));
}

TEST(AppModel, SquareGridInteriorRankHasMoreStartups) {
  const auto grid = AppModel::paper_grid(Equations::NavierStokes, 4, 4);
  const auto chain = AppModel::paper(Equations::NavierStokes);
  EXPECT_GT(grid.startups_per_proc(16), chain.startups_per_proc(16));
}

TEST(AppModel, Table2RatiosMatchPaper) {
  // Table 2: FPs/byte and FPs/start-up at P = 2..16 are the Table 1
  // totals divided by P and the per-processor communication.
  const auto ns = AppModel::paper(Equations::NavierStokes);
  const double fp_per_byte_p2 = ns.total_flops() / 2 / ns.volume_per_proc(16);
  const double fp_per_startup_p2 =
      ns.total_flops() / 2 / ns.startups_per_proc(16);
  EXPECT_NEAR(fp_per_byte_p2, 580.0, 0.12 * 580.0);
  EXPECT_NEAR(fp_per_startup_p2, 906e3, 0.12 * 906e3);
  const auto eu = AppModel::paper(Equations::Euler);
  EXPECT_NEAR(eu.total_flops() / 2 / eu.volume_per_proc(16), 405.0,
              0.12 * 405.0);
  EXPECT_NEAR(eu.total_flops() / 2 / eu.startups_per_proc(16), 642e3,
              0.12 * 642e3);
}

}  // namespace
}  // namespace nsp::perf
