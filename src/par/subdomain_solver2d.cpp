#include "par/subdomain_solver2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/check.hpp"
#include "core/kernels_tiled.hpp"
#include "mp/comm.hpp"

namespace nsp::par {

using core::Field2D;
using core::kGhost;
using core::PrimitiveField;
using core::Range;
using core::StateField;
using core::SweepVariant;

namespace {
constexpr int kTagPrimCol = 201;
constexpr int kTagPrimRow = 202;
constexpr int kTagFluxX = 203;
constexpr int kTagFluxR = 204;
constexpr int kTagGather = 205;

core::Grid make_local_grid(const core::Grid& g, Range xr, Range jr) {
  return g.subgrid(xr.begin, xr.end - xr.begin, jr.begin, jr.end - jr.begin);
}
}  // namespace

SubdomainSolver2D::SubdomainSolver2D(const core::SolverConfig& cfg,
                                     mp::Comm& comm, int px, int py)
    : global_cfg_(cfg),
      comm_(&comm),
      px_(px),
      py_(py),
      rx_(comm.rank() % px),
      ry_(comm.rank() / px),
      xrange_(axial_blocks(cfg.grid.ni, px)[static_cast<std::size_t>(rx_)]),
      jrange_(axial_blocks(cfg.grid.nj, py)[static_cast<std::size_t>(ry_)]),
      width_(xrange_.end - xrange_.begin),
      height_(jrange_.end - jrange_.begin),
      local_grid_(make_local_grid(cfg.grid, xrange_, jrange_)),
      inflow_(local_grid_, cfg.jet),
      outflow_(cfg.jet.gas),
      q_(width_, height_),
      qp_(width_, height_),
      qn_(width_, height_),
      w_(width_, height_),
      s_(width_, height_),
      flux_(width_, height_) {
  if (comm.size() != px * py) {
    throw std::invalid_argument("SubdomainSolver2D: size != px*py");
  }
  if (std::fabs(cfg.smoothing) > 0.0) {
    throw std::invalid_argument(
        "SubdomainSolver2D: smoothing is not decomposition-invariant");
  }
  if (width_ < 2 * kGhost || height_ < 2 * kGhost) {
    throw std::invalid_argument("SubdomainSolver2D: subdomain too small");
  }
  global_cfg_.jet.gas.mu = cfg.viscous ? cfg.jet.viscosity() : 0.0;
  inflow_ = core::InflowBC(local_grid_, global_cfg_.jet);
  outflow_ = core::OutflowBC(global_cfg_.jet.gas);
  // Far-field state is defined at the GLOBAL outer radius, exactly as
  // the serial solver computes it.
  const core::InflowBC global_bc(global_cfg_.grid, global_cfg_.jet);
  global_bc.farfield_conserved(far_q_);
  far_w_ = core::to_primitive(global_cfg_.jet.gas, far_q_[0], far_q_[1],
                              far_q_[2], far_q_[3]);
  leftmost_ = rx_ == 0;
  rightmost_ = rx_ == px_ - 1;
  bottom_ = ry_ == 0;
  top_ = ry_ == py_ - 1;
}

void SubdomainSolver2D::initialize() {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::Grid& g = global_cfg_.grid;
  double max_x_speed = 0, max_r_speed = 0;
  // Identical dt expression to the serial solver (full radial extent).
  for (int j = -kGhost; j < g.nj + kGhost; ++j) {
    const double r = std::fabs(g.r(j));
    const double u = global_cfg_.jet.mean_u(r);
    const double p = global_cfg_.jet.mean_p();
    const double rho = global_cfg_.jet.mean_rho(r);
    const double c = gas.sound_speed(p, rho);
    max_x_speed = std::max(max_x_speed, std::fabs(u) + c);
    max_r_speed = std::max(max_r_speed, c);
  }
  dt_ = global_cfg_.cfl * std::min(g.dx() / (1.3 * max_x_speed),
                                   g.dr() / (1.3 * max_r_speed));
  for (int j = -kGhost; j < height_ + kGhost; ++j) {
    const double r = std::fabs(local_grid_.r(j));
    const double rho = global_cfg_.jet.mean_rho(r);
    const double u = global_cfg_.jet.mean_u(r);
    const double e = gas.total_energy(rho, u, 0.0, global_cfg_.jet.mean_p());
    for (int i = -kGhost; i < width_ + kGhost; ++i) {
      q_.rho(i, j) = rho;
      q_.mx(i, j) = rho * u;
      q_.mr(i, j) = 0.0;
      q_.e(i, j) = e;
    }
  }
  t_ = 0;
  steps_ = 0;
}

namespace {

// Column packs are strided (one value per row), so they go through
// operator(); row packs cover contiguous row spans and copy them
// directly, which also hoists the level-2 per-point index checks to
// one row_span check per field.
std::vector<double> pack_prim_col(const core::PrimitiveField& w, int i,
                                  int h) {
  std::vector<double> buf(static_cast<std::size_t>(4) * h);
  for (int j = 0; j < h; ++j) {
    buf[0 * h + j] = w.u(i, j);
    buf[1 * h + j] = w.v(i, j);
    buf[2 * h + j] = w.t(i, j);
    buf[3 * h + j] = w.p(i, j);
  }
  return buf;
}

void unpack_prim_col(core::PrimitiveField& w, int i, int h,
                     const std::vector<double>& buf) {
  NSP_CHECK(buf.size() == static_cast<std::size_t>(4) * h,
            "par2d.halo.prim_col_size");
  for (int j = 0; j < h; ++j) {
    w.u(i, j) = buf[0 * h + j];
    w.v(i, j) = buf[1 * h + j];
    w.t(i, j) = buf[2 * h + j];
    w.p(i, j) = buf[3 * h + j];
  }
}

std::vector<double> pack_prim_row(const core::PrimitiveField& w, int j,
                                  int ni) {
  std::vector<double> buf(static_cast<std::size_t>(4) * ni);
  const Field2D* f[4] = {&w.u, &w.v, &w.t, &w.p};
  for (int c = 0; c < 4; ++c) {
    const double* row = f[c]->row_span(j);
    std::copy(row, row + ni, buf.begin() + static_cast<std::size_t>(c) * ni);
  }
  return buf;
}

void unpack_prim_row(core::PrimitiveField& w, int j, int ni,
                     const std::vector<double>& buf) {
  NSP_CHECK(buf.size() == static_cast<std::size_t>(4) * ni,
            "par2d.halo.prim_row_size");
  Field2D* f[4] = {&w.u, &w.v, &w.t, &w.p};
  for (int c = 0; c < 4; ++c) {
    std::copy(buf.begin() + static_cast<std::size_t>(c) * ni,
              buf.begin() + static_cast<std::size_t>(c + 1) * ni,
              f[c]->row_span(j));
  }
}

std::vector<double> pack_flux_cols(const StateField& f, int i0, int i1,
                                   int h) {
  std::vector<double> buf(static_cast<std::size_t>(8) * h);
  std::size_t k = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < h; ++j) buf[k++] = f[c](i0, j);
    for (int j = 0; j < h; ++j) buf[k++] = f[c](i1, j);
  }
  return buf;
}

void unpack_flux_cols(StateField& f, int i0, int i1, int h,
                      const std::vector<double>& buf) {
  NSP_CHECK(buf.size() == static_cast<std::size_t>(8) * h,
            "par2d.halo.flux_col_size");
  std::size_t k = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < h; ++j) f[c](i0, j) = buf[k++];
    for (int j = 0; j < h; ++j) f[c](i1, j) = buf[k++];
  }
}

std::vector<double> pack_flux_rows(const StateField& f, int j0, int j1,
                                   int ni) {
  std::vector<double> buf(static_cast<std::size_t>(8) * ni);
  auto out = buf.begin();
  for (int c = 0; c < StateField::kComponents; ++c) {
    const double* r0 = f[c].row_span(j0);
    const double* r1 = f[c].row_span(j1);
    out = std::copy(r0, r0 + ni, out);
    out = std::copy(r1, r1 + ni, out);
  }
  return buf;
}

void unpack_flux_rows(StateField& f, int j0, int j1, int ni,
                      const std::vector<double>& buf) {
  NSP_CHECK(buf.size() == static_cast<std::size_t>(8) * ni,
            "par2d.halo.flux_row_size");
  auto in = buf.begin();
  for (int c = 0; c < StateField::kComponents; ++c) {
    std::copy(in, in + ni, f[c].row_span(j0));
    in += ni;
    std::copy(in, in + ni, f[c].row_span(j1));
    in += ni;
  }
}

}  // namespace

void SubdomainSolver2D::send_primitives() {
  const int h = height_, w = width_;
  if (!leftmost_) {
    comm_->send(rank_of(rx_ - 1, ry_), kTagPrimCol, pack_prim_col(w_, 0, h));
  }
  if (!rightmost_) {
    comm_->send(rank_of(rx_ + 1, ry_), kTagPrimCol,
                pack_prim_col(w_, w - 1, h));
  }
  if (!bottom_) {
    comm_->send(rank_of(rx_, ry_ - 1), kTagPrimRow, pack_prim_row(w_, 0, w));
  }
  if (!top_) {
    comm_->send(rank_of(rx_, ry_ + 1), kTagPrimRow,
                pack_prim_row(w_, h - 1, w));
  }
}

void SubdomainSolver2D::recv_primitives() {
  const int h = height_, w = width_;
  if (!leftmost_) {
    unpack_prim_col(w_, -1, h, comm_->recv(rank_of(rx_ - 1, ry_),
                                           kTagPrimCol).data);
  }
  if (!rightmost_) {
    unpack_prim_col(w_, w, h, comm_->recv(rank_of(rx_ + 1, ry_),
                                          kTagPrimCol).data);
  }
  if (!bottom_) {
    unpack_prim_row(w_, -1, w, comm_->recv(rank_of(rx_, ry_ - 1),
                                           kTagPrimRow).data);
  }
  if (!top_) {
    unpack_prim_row(w_, h, w, comm_->recv(rank_of(rx_, ry_ + 1),
                                          kTagPrimRow).data);
  }
}

void SubdomainSolver2D::compute_stresses_with_halo(bool fill_prim_ghosts) {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::KernelSet ks = core::select_kernels(global_cfg_.tiled, global_cfg_.scheme);
  const int h = height_, w = width_;
  const int ilo_avail = leftmost_ ? 0 : -1;
  const int ihi_avail = rightmost_ ? w : w + 1;
  const Range full{0, w};
  const Range avail{ilo_avail, ihi_avail};
  const auto fill_ghost_rows = [&](Range cols) {
    if (cols.begin >= cols.end) return;
    if (bottom_) core::fill_primitive_ghost_rows_axis(w_, cols);
    if (top_) core::fill_primitive_ghost_rows_far(gas, w_, cols, far_w_);
  };
  if (!global_cfg_.overlap_comm) {
    exchange_primitives();
    if (fill_prim_ghosts) fill_ghost_rows(avail);
    ks.stresses(gas, local_grid_, w_, s_, full, ilo_avail, ihi_avail,
                nullptr);
    return;
  }
  // Version 6 schedule: every stress point whose stencil reads only
  // local primitives proceeds while the halo messages are in flight.
  // Ghost-row reads are same-column, so the local axis/far fills over
  // the interior columns unlock the interior's boundary rows too.
  send_primitives();
  const int a = leftmost_ ? 0 : 1;
  const int b = rightmost_ ? w : w - 1;
  const int rb = bottom_ ? 0 : 1;
  const int rt = top_ ? h : h - 1;
  if (fill_prim_ghosts) fill_ghost_rows(Range{a, b});
  core::tiled::compute_stresses_rows(core::tiled::StressOutputs::All, gas,
                                     local_grid_, w_, s_, Range{a, b}, rb, rt,
                                     ilo_avail, ihi_avail);
  recv_primitives();
  if (fill_prim_ghosts) {
    fill_ghost_rows(Range{ilo_avail, a});
    fill_ghost_rows(Range{b, ihi_avail});
  }
  // Boundary strips: left/right columns over all rows, then the top/
  // bottom rows of the interior columns. Strip points recompute the
  // same pure per-point expressions, so overlap at corners is exact.
  if (!leftmost_) {
    core::tiled::compute_stresses_rows(core::tiled::StressOutputs::All, gas,
                                       local_grid_, w_, s_, Range{0, 1}, 0, h,
                                       ilo_avail, ihi_avail);
  }
  if (!rightmost_) {
    core::tiled::compute_stresses_rows(core::tiled::StressOutputs::All, gas,
                                       local_grid_, w_, s_, Range{w - 1, w},
                                       0, h, ilo_avail, ihi_avail);
  }
  if (!bottom_) {
    core::tiled::compute_stresses_rows(core::tiled::StressOutputs::All, gas,
                                       local_grid_, w_, s_, Range{a, b}, 0, 1,
                                       ilo_avail, ihi_avail);
  }
  if (!top_) {
    core::tiled::compute_stresses_rows(core::tiled::StressOutputs::All, gas,
                                       local_grid_, w_, s_, Range{a, b},
                                       h - 1, h, ilo_avail, ihi_avail);
  }
}

void SubdomainSolver2D::send_flux_x(const StateField& f, bool from_right) {
  const int h = height_, w = width_;
  if (from_right) {
    if (!leftmost_) {
      comm_->send(rank_of(rx_ - 1, ry_), kTagFluxX, pack_flux_cols(f, 0, 1, h));
    }
  } else {
    if (!rightmost_) {
      comm_->send(rank_of(rx_ + 1, ry_), kTagFluxX,
                  pack_flux_cols(f, w - 1, w - 2, h));
    }
  }
}

void SubdomainSolver2D::recv_flux_x(StateField& f, bool from_right) {
  const int h = height_, w = width_;
  if (from_right) {
    if (!rightmost_) {
      unpack_flux_cols(f, w, w + 1, h,
                       comm_->recv(rank_of(rx_ + 1, ry_), kTagFluxX).data);
    } else {
      core::extrapolate_flux_ghost_x(f, w, +1);
    }
    if (leftmost_) core::extrapolate_flux_ghost_x(f, w, -1);
  } else {
    if (!leftmost_) {
      unpack_flux_cols(f, -1, -2, h,
                       comm_->recv(rank_of(rx_ - 1, ry_), kTagFluxX).data);
    } else {
      core::extrapolate_flux_ghost_x(f, w, -1);
    }
    if (rightmost_) core::extrapolate_flux_ghost_x(f, w, +1);
  }
}

void SubdomainSolver2D::send_flux_r(const StateField& f, bool from_up) {
  const int h = height_, w = width_;
  if (from_up) {
    // Forward radial differences need rows h, h+1 from above; the top
    // ranks computed their far-field ghost rows locally.
    if (!bottom_) {
      comm_->send(rank_of(rx_, ry_ - 1), kTagFluxR, pack_flux_rows(f, 0, 1, w));
    }
  } else {
    // Backward differences need rows -1, -2 from below; the bottom
    // ranks already reflected across the axis.
    if (!top_) {
      comm_->send(rank_of(rx_, ry_ + 1), kTagFluxR,
                  pack_flux_rows(f, h - 1, h - 2, w));
    }
  }
}

void SubdomainSolver2D::recv_flux_r(StateField& f, bool from_up) {
  const int h = height_, w = width_;
  if (from_up) {
    if (!top_) {
      unpack_flux_rows(f, h, h + 1, w,
                       comm_->recv(rank_of(rx_, ry_ + 1), kTagFluxR).data);
    }
  } else {
    if (!bottom_) {
      unpack_flux_rows(f, -1, -2, w,
                       comm_->recv(rank_of(rx_, ry_ - 1), kTagFluxR).data);
    }
  }
}

void SubdomainSolver2D::apply_x_boundaries(StateField& q_stage) {
  if (leftmost_ && global_cfg_.left == core::XBoundary::Inflow) {
    inflow_.apply(q_stage, 0, t_ + dt_);
  }
  if (rightmost_ && global_cfg_.right == core::XBoundary::CharacteristicOutflow) {
    outflow_.apply(q_stage, q_, width_ - 1, dt_);
  }
}

void SubdomainSolver2D::sweep_x(SweepVariant v) {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::KernelSet ks = core::select_kernels(global_cfg_.tiled, global_cfg_.scheme);
  const Range full{0, width_};
  const double lambda = dt_ / (6.0 * local_grid_.dx());
  const bool visc = global_cfg_.viscous;
  const bool overlap = global_cfg_.overlap_comm;

  for (int stage = 0; stage < 2; ++stage) {
    const StateField& qs = stage == 0 ? q_ : qp_;
    ks.primitives(gas, qs, w_, full, 0, height_, global_cfg_.variant,
                  nullptr);
    if (visc) compute_stresses_with_halo(/*fill_prim_ghosts=*/true);
    ks.flux_x(gas, qs, w_, s_, visc, flux_, full, global_cfg_.variant,
              nullptr);
    // L1 predictor and L2 corrector use forward differences.
    const bool forward = (v == SweepVariant::L1) == (stage == 0);
    send_flux_x(flux_, forward);
    const auto update = [&](Range r) {
      if (r.begin >= r.end) return;
      if (stage == 0) {
        ks.pred_x(q_, flux_, qp_, lambda, v, r, nullptr);
      } else {
        ks.corr_x(q_, qp_, flux_, qn_, lambda, v, r, nullptr);
      }
    };
    if (overlap) {
      // Version 6: columns that need no ghost fluxes update while the
      // halo is in flight; the boundary-adjacent columns follow.
      const Range interior =
          forward ? Range{0, width_ - 2} : Range{2, width_};
      const Range edge = forward ? Range{width_ - 2, width_} : Range{0, 2};
      update(interior);
      recv_flux_x(flux_, forward);
      update(edge);
    } else {
      recv_flux_x(flux_, forward);
      update(full);
    }
    apply_x_boundaries(stage == 0 ? qp_ : qn_);
  }
  std::swap(q_, qn_);
}

void SubdomainSolver2D::sweep_r(SweepVariant v) {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::KernelSet ks = core::select_kernels(global_cfg_.tiled, global_cfg_.scheme);
  const Range full{0, width_};
  const bool visc = global_cfg_.viscous;
  const bool overlap = global_cfg_.overlap_comm;
  const int h = height_;

  for (int stage = 0; stage < 2; ++stage) {
    StateField& qs = stage == 0 ? q_ : qp_;
    if (bottom_) core::fill_q_ghost_rows_axis(qs, full);
    if (top_) core::fill_q_ghost_rows_far(qs, full, far_q_);
    const int jlo = bottom_ ? -kGhost : 0;
    const int jhi = top_ ? h + kGhost : h;
    ks.primitives(gas, qs, w_, full, jlo, jhi, global_cfg_.variant, nullptr);
    if (visc) {
      // The radial flux's txr needs d(u)/dx: exchange boundary
      // primitives so the x-derivative stays central at interior
      // subdomain edges. (Euler radial sweeps need no halo primitives:
      // the flux rows are exchanged directly.)
      compute_stresses_with_halo(/*fill_prim_ghosts=*/false);
      if (top_) core::fill_stress_ghost_rows_far(s_, full.begin, full.end);
    }
    ks.flux_r(gas, local_grid_, qs, w_, s_, visc, flux_, full, 0,
              top_ ? h + kGhost : h, global_cfg_.variant, nullptr);
    if (bottom_) core::reflect_flux_r_axis(flux_, full);
    const bool forward = (v == SweepVariant::L1) == (stage == 0);
    send_flux_r(flux_, forward);
    const auto update = [&](int rlo, int rhi) {
      if (rlo >= rhi) return;
      if (stage == 0) {
        ks.pred_r_rows(local_grid_, q_, flux_, w_.p, s_.ttt, visc, qp_, dt_,
                       v, full, rlo, rhi, nullptr);
      } else {
        ks.corr_r_rows(local_grid_, q_, qp_, flux_, w_.p, s_.ttt, visc, qn_,
                       dt_, v, full, rlo, rhi, nullptr);
      }
    };
    if (overlap) {
      // Version 6, radial flavour: the difference at row j reaches rows
      // j +- 2, so all but two boundary rows update while the halo flux
      // rows are in flight. Ranks owning the axis (bottom) or far field
      // (top) built those rows locally and have no waiting to hide.
      const int rb = (!forward && !bottom_) ? 2 : 0;
      const int rt = (forward && !top_) ? h - 2 : h;
      update(rb, rt);
      recv_flux_r(flux_, forward);
      update(0, rb);
      update(rt, h);
    } else {
      recv_flux_r(flux_, forward);
      update(0, h);
    }
    apply_x_boundaries(stage == 0 ? qp_ : qn_);
  }
  std::swap(q_, qn_);
}

void SubdomainSolver2D::step() {
  if (dt_ <= 0) initialize();
  if (steps_ % 2 == 0) {
    sweep_r(SweepVariant::L1);
    sweep_x(SweepVariant::L1);
  } else {
    sweep_x(SweepVariant::L2);
    sweep_r(SweepVariant::L2);
  }
  ++steps_;
  t_ += dt_;
}

void SubdomainSolver2D::run(int n) {
  for (int k = 0; k < n; ++k) step();
}

std::optional<StateField> SubdomainSolver2D::gather() {
  if (comm_->rank() != 0) {
    std::vector<double> buf(
        static_cast<std::size_t>(4) * width_ * height_);
    std::size_t k = 0;
    for (int c = 0; c < StateField::kComponents; ++c) {
      for (int i = 0; i < width_; ++i) {
        for (int j = 0; j < height_; ++j) buf[k++] = q_[c](i, j);
      }
    }
    comm_->send(0, kTagGather, buf);
    return std::nullopt;
  }
  StateField out(global_cfg_.grid.ni, global_cfg_.grid.nj);
  const auto xb = axial_blocks(global_cfg_.grid.ni, px_);
  const auto jb = axial_blocks(global_cfg_.grid.nj, py_);
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int i = 0; i < width_; ++i) {
      for (int j = 0; j < height_; ++j) {
        out[c](xrange_.begin + i, jrange_.begin + j) = q_[c](i, j);
      }
    }
  }
  for (int r = 1; r < comm_->size(); ++r) {
    const mp::Message m = comm_->recv(r, kTagGather);
    const Range bx = xb[static_cast<std::size_t>(r % px_)];
    const Range bj = jb[static_cast<std::size_t>(r / px_)];
    std::size_t k = 0;
    for (int c = 0; c < StateField::kComponents; ++c) {
      for (int i = bx.begin; i < bx.end; ++i) {
        for (int j = bj.begin; j < bj.end; ++j) out[c](i, j) = m.data[k++];
      }
    }
  }
  return out;
}

core::StateField run_parallel_jet_2d(const core::SolverConfig& cfg, int px,
                                     int py, int nsteps,
                                     std::vector<core::CommCounter>* counters) {
  mp::Cluster cluster(px * py);
  core::StateField result;
  check::Mutex m;
  cluster.run([&](mp::Comm& comm) {
    SubdomainSolver2D s(cfg, comm, px, py);
    s.initialize();
    s.run(nsteps);
    auto gathered = s.gather();
    if (gathered) {
      check::MutexLock lk(m);
      result = std::move(*gathered);
    }
  });
  if (counters) *counters = cluster.last_counters();
  return result;
}

}  // namespace nsp::par
