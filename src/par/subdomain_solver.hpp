// SPMD subdomain solver: the paper's parallelization of the jet code.
//
// Each rank owns a contiguous axial block of the global grid with two
// ghost columns per side and advances it with the same kernels as the
// serial solver. Per sweep stage the ranks exchange, exactly as Section
// 5 describes for Version 5:
//   * velocity and temperature (we bundle u, v, T, p in one message)
//     along the subdomain boundary — needed for the viscous stress
//     derivatives, so Navier-Stokes only;
//   * the two flux columns nearest the boundary, combined into a single
//     send, in the direction the one-sided difference of the stage
//     needs them.
// Because ghost fluxes come from the neighbour's own computed values,
// every interior point sees bit-for-bit the same arithmetic as the
// serial solver, which the tests assert for P in {1, 2, 4, 8}.
#pragma once

#include <optional>

#include "core/solver.hpp"
#include "mp/comm.hpp"
#include "par/decomposition.hpp"

namespace nsp::par {

class SubdomainSolver {
 public:
  /// `cfg` describes the *global* problem; the subdomain is derived from
  /// comm.rank()/comm.size(). cfg.smoothing must be 0 (the smoothing
  /// stencil is not decomposition-invariant).
  SubdomainSolver(const core::SolverConfig& cfg, mp::Comm& comm);

  void initialize();
  void step();
  void run(int n);

  /// Restores this rank's interior from a *global* state (a gathered
  /// checkpoint), as of simulated time `time` after `steps` steps.
  /// Works for any decomposition — in particular one with fewer ranks
  /// than wrote the checkpoint, which is how post-crash
  /// re-decomposition onto the survivors happens. Ghost columns are
  /// left as initialize() set them (the kernels never read the axial
  /// ghosts of q_ between steps; radial ghosts are refilled from the
  /// free stream every sweep), so restore(); run(b) is bit-identical
  /// to an uninterrupted run(a + b) on any rank count.
  void restore(const core::StateField& global, double time, int steps);

  int steps_taken() const { return steps_; }
  double time() const { return t_; }
  double dt() const { return dt_; }
  core::Range global_range() const { return range_; }
  const core::StateField& local_state() const { return q_; }

  /// Gathers the interior of all ranks onto rank 0. Returns the full
  /// global state on rank 0, std::nullopt elsewhere. Collective.
  std::optional<core::StateField> gather();

 private:
  void sweep_x(core::SweepVariant v);
  void sweep_r(core::SweepVariant v);
  /// Split halo exchange so Version 6 can compute interior columns
  /// between the send and the (blocking) receive.
  void send_primitives();
  void recv_primitives();
  void exchange_primitives() {
    send_primitives();
    recv_primitives();
  }
  /// `from_right`: ghost flux columns come from the right neighbour
  /// (forward differences); otherwise from the left (backward).
  void send_flux(const core::StateField& f, bool from_right);
  void recv_flux(core::StateField& f, bool from_right);
  /// Computes the viscous stresses from w_, exchanging halo primitives;
  /// with overlap_comm the interior columns proceed while the halo is
  /// in flight (live Version 6).
  void compute_stresses_with_halo();
  void apply_x_boundaries(core::StateField& q_stage);

  core::SolverConfig global_cfg_;
  mp::Comm* comm_;
  core::Range range_;   // global axial index range of this rank
  int width_;           // local columns
  core::Grid local_grid_;
  core::InflowBC inflow_;
  core::OutflowBC outflow_;
  double far_q_[4] = {0, 0, 0, 0};
  core::Primitive far_w_{};
  bool leftmost_ = false;
  bool rightmost_ = false;

  core::StateField q_, qp_, qn_;
  core::PrimitiveField w_;
  core::StressField s_;
  core::StateField flux_;
  double dt_ = 0;
  double t_ = 0;
  int steps_ = 0;
};

/// Convenience driver: runs the global problem on `nprocs` ranks for
/// `nsteps` steps and returns the gathered final state (from rank 0).
/// If `counters` is non-null it receives each rank's message statistics.
core::StateField run_parallel_jet(const core::SolverConfig& cfg, int nprocs,
                                  int nsteps,
                                  std::vector<core::CommCounter>* counters = nullptr);

}  // namespace nsp::par
