// Two-dimensional (axial x radial) block decomposition: the paper's
// future work ("We will then explore other problem decompositions such
// as blocking along the radial direction") made live.
//
// Ranks form a px x py grid (rank = ry*px + rx). Axial halo exchange
// works exactly as in the 1-D solver; radially, interior ranks exchange
// boundary primitive rows and the two radial-flux rows the one-sided
// differences need, while the bottom row of ranks owns the axis
// (reflection ghosts) and the top row owns the far field. As in the
// 1-D case, ghost fluxes are the neighbour's own computed values, so
// the decomposition reproduces the serial solution bit-for-bit.
#pragma once

#include <optional>

#include "core/solver.hpp"
#include "mp/comm.hpp"
#include "par/decomposition.hpp"

namespace nsp::par {

class SubdomainSolver2D {
 public:
  /// `cfg` describes the global problem; the rank grid is px x py and
  /// comm.size() must equal px * py. cfg.smoothing must be 0.
  SubdomainSolver2D(const core::SolverConfig& cfg, mp::Comm& comm, int px,
                    int py);

  void initialize();
  void step();
  void run(int n);

  double dt() const { return dt_; }
  int steps_taken() const { return steps_; }
  core::Range x_range() const { return xrange_; }
  core::Range r_range() const { return jrange_; }

  /// Gathers the interior of all ranks onto rank 0 (collective).
  std::optional<core::StateField> gather();

 private:
  void sweep_x(core::SweepVariant v);
  void sweep_r(core::SweepVariant v);
  /// Halo exchanges are split into send and (blocking) receive halves
  /// so the Version 6 schedule (cfg.overlap_comm) can compute interior
  /// points while the messages are in flight.
  void send_primitives();
  void recv_primitives();
  void exchange_primitives() {
    send_primitives();
    recv_primitives();
  }
  /// Viscous stresses with halo primitives. With overlap_comm the
  /// interior rows and columns (whose stencil never reads a halo value)
  /// proceed between send and receive; the boundary strips follow.
  /// `fill_prim_ghosts`: also fill the local radial ghost rows
  /// (axis reflection / far field) per column range — the x sweep's
  /// schedule; the r sweep computed its ghost-row primitives already.
  void compute_stresses_with_halo(bool fill_prim_ghosts);
  void send_flux_x(const core::StateField& f, bool from_right);
  void recv_flux_x(core::StateField& f, bool from_right);
  void send_flux_r(const core::StateField& f, bool from_up);
  void recv_flux_r(core::StateField& f, bool from_up);
  void apply_x_boundaries(core::StateField& q_stage);
  int rank_of(int rx, int ry) const { return ry * px_ + rx; }

  core::SolverConfig global_cfg_;
  mp::Comm* comm_;
  int px_, py_, rx_, ry_;
  core::Range xrange_, jrange_;
  int width_, height_;
  core::Grid local_grid_;
  core::InflowBC inflow_;
  core::OutflowBC outflow_;
  double far_q_[4] = {0, 0, 0, 0};
  core::Primitive far_w_{};
  bool leftmost_ = false, rightmost_ = false, bottom_ = false, top_ = false;

  core::StateField q_, qp_, qn_;
  core::PrimitiveField w_;
  core::StressField s_;
  core::StateField flux_;
  double dt_ = 0;
  double t_ = 0;
  int steps_ = 0;
};

/// Convenience driver mirroring run_parallel_jet for the 2-D case.
core::StateField run_parallel_jet_2d(const core::SolverConfig& cfg, int px,
                                     int py, int nsteps,
                                     std::vector<core::CommCounter>* counters = nullptr);

}  // namespace nsp::par
