// 1-D axial block decomposition (Section 5: "we chose to decompose the
// domain by blocks along the axial direction only").
#pragma once

#include <stdexcept>
#include <vector>

#include "check/check.hpp"
#include "core/kernels.hpp"

namespace nsp::par {

/// Contiguous axial blocks, remainder cells spread over the first
/// ranks so widths differ by at most one (the near-perfect load balance
/// of the paper's Figure 13).
inline std::vector<core::Range> axial_blocks(int ni, int nprocs) {
  if (nprocs < 1 || ni < nprocs) {
    throw std::invalid_argument("axial_blocks: need 1 <= nprocs <= ni");
  }
  std::vector<core::Range> blocks;
  blocks.reserve(nprocs);
  const int base = ni / nprocs;
  const int rem = ni % nprocs;
  int start = 0;
  for (int r = 0; r < nprocs; ++r) {
    const int w = base + (r < rem ? 1 : 0);
    NSP_CHECK(w >= 1, "par.decomp.nonempty_block");
    blocks.push_back(core::Range{start, start + w});
    start += w;
  }
  // Contiguous construction makes the blocks non-overlapping; ending
  // exactly at ni makes the cover exact.
  NSP_CHECK(start == ni, "par.decomp.exact_cover");
  return blocks;
}

}  // namespace nsp::par
