#include "par/subdomain_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/check.hpp"
#include "core/kernels_tiled.hpp"
#include "mp/comm.hpp"

namespace nsp::par {

using core::Field2D;
using core::kGhost;
using core::PrimitiveField;
using core::Range;
using core::StateField;
using core::SweepVariant;

namespace {
constexpr int kTagPrim = 101;
constexpr int kTagFlux = 102;
constexpr int kTagGather = 103;

core::Grid make_local_grid(const core::Grid& g, Range r) {
  return g.subgrid(r.begin, r.end - r.begin, 0, g.nj);
}
}  // namespace

SubdomainSolver::SubdomainSolver(const core::SolverConfig& cfg, mp::Comm& comm)
    : global_cfg_(cfg),
      comm_(&comm),
      range_(axial_blocks(cfg.grid.ni, comm.size())[comm.rank()]),
      width_(range_.end - range_.begin),
      local_grid_(make_local_grid(cfg.grid, range_)),
      inflow_(local_grid_, cfg.jet),
      outflow_(cfg.jet.gas),
      q_(width_, cfg.grid.nj),
      qp_(width_, cfg.grid.nj),
      qn_(width_, cfg.grid.nj),
      w_(width_, cfg.grid.nj),
      s_(width_, cfg.grid.nj),
      flux_(width_, cfg.grid.nj) {
  if (std::fabs(cfg.smoothing) > 0.0) {
    throw std::invalid_argument(
        "SubdomainSolver: smoothing is not decomposition-invariant");
  }
  if (width_ < 2 * kGhost) {
    throw std::invalid_argument("SubdomainSolver: subdomain too narrow");
  }
  global_cfg_.jet.gas.mu = cfg.viscous ? cfg.jet.viscosity() : 0.0;
  inflow_ = core::InflowBC(local_grid_, global_cfg_.jet);
  outflow_ = core::OutflowBC(global_cfg_.jet.gas);
  inflow_.farfield_conserved(far_q_);
  far_w_ = core::to_primitive(global_cfg_.jet.gas, far_q_[0], far_q_[1],
                              far_q_[2], far_q_[3]);
  leftmost_ = comm.rank() == 0;
  rightmost_ = comm.rank() == comm.size() - 1;
}

void SubdomainSolver::initialize() {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::Grid& g = global_cfg_.grid;
  double max_x_speed = 0, max_r_speed = 0;
  for (int j = -kGhost; j < g.nj + kGhost; ++j) {
    const double r = std::fabs(g.r(j));
    const double rho = global_cfg_.jet.mean_rho(r);
    const double u = global_cfg_.jet.mean_u(r);
    const double p = global_cfg_.jet.mean_p();
    const double e = gas.total_energy(rho, u, 0.0, p);
    const double c = gas.sound_speed(p, rho);
    max_x_speed = std::max(max_x_speed, std::fabs(u) + c);
    max_r_speed = std::max(max_r_speed, c);
    for (int i = -kGhost; i < width_ + kGhost; ++i) {
      q_.rho(i, j) = rho;
      q_.mx(i, j) = rho * u;
      q_.mr(i, j) = 0.0;
      q_.e(i, j) = e;
    }
  }
  // Identical expression (over the full radial extent) to the serial
  // solver, so dt matches to the bit.
  dt_ = global_cfg_.cfl * std::min(g.dx() / (1.3 * max_x_speed),
                                   g.dr() / (1.3 * max_r_speed));
  t_ = 0;
  steps_ = 0;
}

namespace {
/// Bundles u, v, T, p of one boundary column into a single message
/// ("packaged into a single send").
std::vector<double> pack_prim_col(const PrimitiveField& w, int i, int nj) {
  std::vector<double> buf(static_cast<std::size_t>(4) * nj);
  for (int j = 0; j < nj; ++j) {
    buf[0 * nj + j] = w.u(i, j);
    buf[1 * nj + j] = w.v(i, j);
    buf[2 * nj + j] = w.t(i, j);
    buf[3 * nj + j] = w.p(i, j);
  }
  return buf;
}

void unpack_prim_col(PrimitiveField& w, int i, int nj,
                     const std::vector<double>& buf) {
  // Halo size consistency: a mangled tag or rank pairing shows up here
  // as a wrong-sized message long before it corrupts the fields.
  NSP_CHECK(buf.size() == static_cast<std::size_t>(4) * nj,
            "par.halo.prim_size");
  for (int j = 0; j < nj; ++j) {
    w.u(i, j) = buf[0 * nj + j];
    w.v(i, j) = buf[1 * nj + j];
    w.t(i, j) = buf[2 * nj + j];
    w.p(i, j) = buf[3 * nj + j];
  }
}
}  // namespace

void SubdomainSolver::send_primitives() {
  const int nj = global_cfg_.grid.nj;
  const int rank = comm_->rank();
  if (!leftmost_) comm_->send(rank - 1, kTagPrim, pack_prim_col(w_, 0, nj));
  if (!rightmost_) {
    comm_->send(rank + 1, kTagPrim, pack_prim_col(w_, width_ - 1, nj));
  }
}

void SubdomainSolver::recv_primitives() {
  const int nj = global_cfg_.grid.nj;
  const int rank = comm_->rank();
  if (!leftmost_) {
    unpack_prim_col(w_, -1, nj, comm_->recv(rank - 1, kTagPrim).data);
  }
  if (!rightmost_) {
    unpack_prim_col(w_, width_, nj, comm_->recv(rank + 1, kTagPrim).data);
  }
}

void SubdomainSolver::compute_stresses_with_halo() {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::KernelSet ks = core::select_kernels(global_cfg_.tiled, global_cfg_.scheme);
  const int ilo_avail = leftmost_ ? 0 : -1;
  const int ihi_avail = rightmost_ ? width_ : width_ + 1;
  if (!global_cfg_.overlap_comm) {
    exchange_primitives();
    ks.stresses(gas, local_grid_, w_, s_, Range{0, width_}, ilo_avail,
                ihi_avail, nullptr);
    return;
  }
  // Live Version 6: interior stress columns proceed while the halo
  // primitives are in flight; the boundary columns follow the receive.
  send_primitives();
  const int a = leftmost_ ? 0 : 1;
  const int b = rightmost_ ? width_ : width_ - 1;
  ks.stresses(gas, local_grid_, w_, s_, Range{a, b}, ilo_avail, ihi_avail,
              nullptr);
  recv_primitives();
  if (!leftmost_) {
    ks.stresses(gas, local_grid_, w_, s_, Range{0, 1}, ilo_avail, ihi_avail,
                nullptr);
  }
  if (!rightmost_) {
    ks.stresses(gas, local_grid_, w_, s_, Range{width_ - 1, width_},
                ilo_avail, ihi_avail, nullptr);
  }
}

namespace {
/// Two flux columns, all four components, in one message ("the two flux
/// columns nearest each boundary are combined into a single send").
std::vector<double> pack_flux_cols(const StateField& f, int i0, int i1, int nj) {
  std::vector<double> buf(static_cast<std::size_t>(8) * nj);
  std::size_t k = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) buf[k++] = f[c](i0, j);
    for (int j = 0; j < nj; ++j) buf[k++] = f[c](i1, j);
  }
  return buf;
}

void unpack_flux_cols(StateField& f, int i0, int i1, int nj,
                      const std::vector<double>& buf) {
  NSP_CHECK(buf.size() == static_cast<std::size_t>(8) * nj,
            "par.halo.flux_size");
  std::size_t k = 0;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) f[c](i0, j) = buf[k++];
    for (int j = 0; j < nj; ++j) f[c](i1, j) = buf[k++];
  }
}
}  // namespace

void SubdomainSolver::send_flux(const StateField& f, bool from_right) {
  const int nj = global_cfg_.grid.nj;
  const int rank = comm_->rank();
  if (from_right) {
    // Forward differences need F(width), F(width+1) from the right
    // neighbour's first two columns; symmetric send to our left.
    if (!leftmost_) {
      comm_->send(rank - 1, kTagFlux, pack_flux_cols(f, 0, 1, nj));
    }
  } else {
    // Backward differences need F(-1), F(-2) from the left neighbour's
    // last two columns.
    if (!rightmost_) {
      comm_->send(rank + 1, kTagFlux,
                  pack_flux_cols(f, width_ - 1, width_ - 2, nj));
    }
  }
}

void SubdomainSolver::recv_flux(StateField& f, bool from_right) {
  const int nj = global_cfg_.grid.nj;
  const int rank = comm_->rank();
  if (from_right) {
    if (!rightmost_) {
      unpack_flux_cols(f, width_, width_ + 1, nj,
                       comm_->recv(rank + 1, kTagFlux).data);
    } else {
      core::extrapolate_flux_ghost_x(f, width_, +1);
    }
    if (leftmost_) core::extrapolate_flux_ghost_x(f, width_, -1);
  } else {
    if (!leftmost_) {
      unpack_flux_cols(f, -1, -2, nj, comm_->recv(rank - 1, kTagFlux).data);
    } else {
      core::extrapolate_flux_ghost_x(f, width_, -1);
    }
    if (rightmost_) core::extrapolate_flux_ghost_x(f, width_, +1);
  }
}

void SubdomainSolver::apply_x_boundaries(StateField& q_stage) {
  if (leftmost_ && global_cfg_.left == core::XBoundary::Inflow) {
    inflow_.apply(q_stage, 0, t_ + dt_);
  }
  if (rightmost_ && global_cfg_.right == core::XBoundary::CharacteristicOutflow) {
    outflow_.apply(q_stage, q_, width_ - 1, dt_);
  }
}

void SubdomainSolver::sweep_x(SweepVariant v) {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::KernelSet ks = core::select_kernels(global_cfg_.tiled, global_cfg_.scheme);
  const Range full{0, width_};
  const double lambda = dt_ / (6.0 * local_grid_.dx());
  const bool visc = global_cfg_.viscous;
  const bool overlap = global_cfg_.overlap_comm;

  for (int stage = 0; stage < 2; ++stage) {
    const StateField& qs = stage == 0 ? q_ : qp_;
    ks.primitives(gas, qs, w_, full, 0, local_grid_.nj, global_cfg_.variant,
                  nullptr);
    if (visc) {
      core::fill_primitive_ghost_rows(gas, w_, full, far_w_);
      compute_stresses_with_halo();
    }
    ks.flux_x(gas, qs, w_, s_, visc, flux_, full, global_cfg_.variant,
              nullptr);
    // L1 predictor and L2 corrector use forward differences.
    const bool forward = (v == SweepVariant::L1) == (stage == 0);
    send_flux(flux_, forward);
    // Version 6: update the columns that need no ghost fluxes while the
    // halo is in flight, then finish the boundary-adjacent columns.
    const Range interior = forward ? Range{0, width_ - 2} : Range{2, width_};
    const Range edge = forward ? Range{width_ - 2, width_} : Range{0, 2};
    const auto update = [&](Range r) {
      if (stage == 0) {
        ks.pred_x(q_, flux_, qp_, lambda, v, r, nullptr);
      } else {
        ks.corr_x(q_, qp_, flux_, qn_, lambda, v, r, nullptr);
      }
    };
    if (overlap) {
      update(interior);
      recv_flux(flux_, forward);
      update(edge);
    } else {
      recv_flux(flux_, forward);
      update(full);
    }
    apply_x_boundaries(stage == 0 ? qp_ : qn_);
  }
  std::swap(q_, qn_);
}

void SubdomainSolver::sweep_r(SweepVariant v) {
  const core::Gas& gas = global_cfg_.jet.gas;
  const core::KernelSet ks = core::select_kernels(global_cfg_.tiled, global_cfg_.scheme);
  const Range full{0, width_};
  const bool visc = global_cfg_.viscous;
  const int nj = local_grid_.nj;

  for (int stage = 0; stage < 2; ++stage) {
    StateField& qs = stage == 0 ? q_ : qp_;
    core::fill_q_ghost_rows(qs, full, far_q_);
    ks.primitives(gas, qs, w_, full, -kGhost, nj + kGhost, global_cfg_.variant,
                  nullptr);
    if (visc) {
      // The radial flux's txr needs d(u)/dx: exchange boundary
      // primitives so the x-derivative stays central at interior
      // subdomain edges (with Version 6 the interior stress columns
      // overlap the exchange).
      compute_stresses_with_halo();
      core::fill_stress_ghost_rows(s_, full.begin, full.end);
    }
    ks.flux_r(gas, local_grid_, qs, w_, s_, visc, flux_, full, 0, nj + kGhost,
              global_cfg_.variant, nullptr);
    core::reflect_flux_r_axis(flux_, full);
    if (stage == 0) {
      ks.pred_r(local_grid_, q_, flux_, w_.p, s_.ttt, visc, qp_, dt_, v, full,
                nullptr);
      apply_x_boundaries(qp_);
    } else {
      ks.corr_r(local_grid_, q_, qp_, flux_, w_.p, s_.ttt, visc, qn_, dt_, v,
                full, nullptr);
      apply_x_boundaries(qn_);
    }
  }
  std::swap(q_, qn_);
}

void SubdomainSolver::step() {
  if (dt_ <= 0) initialize();
  if (steps_ % 2 == 0) {
    sweep_r(SweepVariant::L1);
    sweep_x(SweepVariant::L1);
  } else {
    sweep_x(SweepVariant::L2);
    sweep_r(SweepVariant::L2);
  }
  ++steps_;
  t_ += dt_;
}

void SubdomainSolver::run(int n) {
  for (int k = 0; k < n; ++k) step();
}

void SubdomainSolver::restore(const StateField& global, double time,
                              int steps) {
  const core::Grid& g = global_cfg_.grid;
  if (global.ni() != g.ni || global.nj() != g.nj) {
    throw std::invalid_argument("SubdomainSolver::restore: dimension mismatch");
  }
  // initialize() owns dt_ (a pure function of the global config, so
  // bit-identical across decompositions) and the ghost-column fill.
  initialize();
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int i = 0; i < width_; ++i) {
      for (int j = 0; j < g.nj; ++j) {
        q_[c](i, j) = global[c](range_.begin + i, j);
      }
    }
  }
  t_ = time;
  steps_ = steps;
}

std::optional<StateField> SubdomainSolver::gather() {
  const int nj = global_cfg_.grid.nj;
  if (comm_->rank() != 0) {
    std::vector<double> buf(static_cast<std::size_t>(4) * width_ * nj);
    std::size_t k = 0;
    for (int c = 0; c < StateField::kComponents; ++c) {
      for (int i = 0; i < width_; ++i) {
        for (int j = 0; j < nj; ++j) buf[k++] = q_[c](i, j);
      }
    }
    comm_->send(0, kTagGather, buf);
    return std::nullopt;
  }
  StateField out(global_cfg_.grid.ni, nj);
  const auto blocks = axial_blocks(global_cfg_.grid.ni, comm_->size());
  // Rank 0's own block.
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int i = 0; i < width_; ++i) {
      for (int j = 0; j < nj; ++j) out[c](range_.begin + i, j) = q_[c](i, j);
    }
  }
  for (int r = 1; r < comm_->size(); ++r) {
    const mp::Message m = comm_->recv(r, kTagGather);
    const Range br = blocks[static_cast<std::size_t>(r)];
    const int bw = br.end - br.begin;
    std::size_t k = 0;
    for (int c = 0; c < StateField::kComponents; ++c) {
      for (int i = 0; i < bw; ++i) {
        for (int j = 0; j < nj; ++j) out[c](br.begin + i, j) = m.data[k++];
      }
    }
  }
  return out;
}

core::StateField run_parallel_jet(const core::SolverConfig& cfg, int nprocs,
                                  int nsteps,
                                  std::vector<core::CommCounter>* counters) {
  mp::Cluster cluster(nprocs);
  core::StateField result;
  check::Mutex m;
  cluster.run([&](mp::Comm& comm) {
    SubdomainSolver s(cfg, comm);
    s.initialize();
    s.run(nsteps);
    auto gathered = s.gather();
    if (gathered) {
      check::MutexLock lk(m);
      result = std::move(*gathered);
    }
  });
  if (counters) *counters = cluster.last_counters();
  return result;
}

}  // namespace nsp::par
