// Name-keyed construction of models, mirroring exec's platform registry.
//
// Scenarios refer to models by string key ("euler/mac22/quiet") instead
// of assembling ModelSpec values, so sweeps, wire requests and CLI
// flags stay data. The twelve builtin names are the full cross product
// of the three axes, generated from the compile-time Traits layer;
// user-defined specs join at runtime via register_model().
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace nsp::model {

/// The default model: the paper's pipeline (2-4 MacCormack,
/// Navier-Stokes, single-eigenmode excitation). Scenarios that never
/// touch the model axis behave — and cache — exactly as this model.
inline constexpr const char* kDefaultModel = "ns/mac24/mode1";

/// All registered model names, sorted (builtins plus anything added
/// with register_model()).
std::vector<std::string> model_names();

/// True if `key` resolves.
bool has_model(const std::string& key);

/// The spec registered under `key`; throws std::invalid_argument with
/// the list of known keys on an unknown name.
ModelSpec make_model(const std::string& key);

/// Registers (or replaces) a user-defined model under `key` (non-empty;
/// builtin names cannot be shadowed). The stored spec's `name` is
/// rewritten to `key`.
void register_model(const std::string& key, const ModelSpec& spec);

}  // namespace nsp::model
