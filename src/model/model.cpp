#include "model/model.hpp"

#include "core/jet.hpp"
#include "core/kernels.hpp"
#include "core/solver.hpp"

namespace nsp::model {

const char* to_token(core::Scheme s) {
  return s == core::Scheme::Mac22 ? "mac22" : "mac24";
}

const char* to_token(Physics p) {
  return p == Physics::Euler ? "euler" : "ns";
}

const char* to_token(core::Excitation e) {
  switch (e) {
    case core::Excitation::MultiMode:
      return "multimode";
    case core::Excitation::Quiet:
      return "quiet";
    case core::Excitation::Mode1:
      break;
  }
  return "mode1";
}

void ModelSpec::configure(core::SolverConfig* cfg) const {
  cfg->scheme = scheme;
  cfg->viscous = physics == Physics::NavierStokes;
  cfg->jet.excitation = excitation;
}

bool ModelSpec::is_default() const {
  return scheme == core::Scheme::Mac24 && physics == Physics::NavierStokes &&
         excitation == core::Excitation::Mode1;
}

std::string ModelSpec::canonical_name() const {
  return std::string(to_token(physics)) + "/" + to_token(scheme) + "/" +
         to_token(excitation);
}

}  // namespace nsp::model
