// nsp::model — the pluggable scheme / physics / excitation space.
//
// The paper's solver is one fixed pipeline: 2-4 MacCormack, axisymmetric
// Navier-Stokes, single-eigenmode excited-jet inflow. This subsystem
// names points in the three-axis space around that pipeline:
//
//   * discretization — core::Scheme (the 2-4 Gottlieb-Turkel difference
//     or the classical 2-2 MacCormack), selected as compile-time kernel
//     policies in core/kernels_scheme.hpp so either scheme runs the
//     tuned span hot path;
//   * physics — the full Navier-Stokes equations or the inviscid Euler
//     subset (SolverConfig::viscous; mu = 0, no stress stages);
//   * inflow excitation — core::Excitation (single mode, fundamental +
//     subharmonic, or quiet).
//
// A ModelSpec is the runtime value; model/traits.hpp is the compile-time
// mirror (one Traits instantiation per combination, kernels resolved
// statically); model/registry.hpp is the name-keyed factory the
// Scenario API, CLI and serving daemon consume. The default model
// ("ns/mac24/mode1") configures exactly the pre-model pipeline — the
// golden-hash suites pin it bit-identical. docs/MODELS.md tells the
// full story.
#pragma once

#include <string>

#include "core/jet.hpp"
#include "core/kernels.hpp"
#include "core/solver.hpp"

namespace nsp::model {

/// Physics axis: the full Navier-Stokes equations or the inviscid Euler
/// subset. Distinct from arch::Equations (which prices replays); the
/// Scenario layer keeps the two coherent.
enum class Physics { NavierStokes, Euler };

/// Wire/registry tokens per axis (lowercase, slash-joined into names).
const char* to_token(core::Scheme s);       // "mac24" | "mac22"
const char* to_token(Physics p);            // "ns" | "euler"
const char* to_token(core::Excitation e);   // "mode1" | "multimode" | "quiet"

/// One named point in the (physics x scheme x excitation) space.
struct ModelSpec {
  std::string name;  ///< registry key, "<physics>/<scheme>/<excitation>"
  core::Scheme scheme = core::Scheme::Mac24;
  Physics physics = Physics::NavierStokes;
  core::Excitation excitation = core::Excitation::Mode1;

  /// Applies the three axes to a solver configuration: cfg->scheme,
  /// cfg->viscous and cfg->jet.excitation. Every other field (grid,
  /// kernel variant, tiling, boundaries, ...) is left untouched, so a
  /// model composes with the existing Scenario axes.
  void configure(core::SolverConfig* cfg) const;

  /// True when the spec's axes equal the default model's (the paper's
  /// pipeline), whatever its name says.
  bool is_default() const;

  /// The canonical "<physics>/<scheme>/<excitation>" name of the axes.
  std::string canonical_name() const;
};

}  // namespace nsp::model
