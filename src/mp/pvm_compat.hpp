// A PVM 3.x-flavoured compatibility layer over the mp runtime.
//
// The paper parallelized the solver with PVM ("we have used the popular
// PVM message passing library (version 3.2.2)"), whose idiom is pack
// buffers: pvm_initsend / pvm_pkdouble / pvm_send on one side,
// pvm_recv / pvm_upkdouble on the other. This shim reproduces that API
// (minus the daemon) so 1995-style code ports onto nsp::mp::Cluster
// nearly verbatim:
//
//   nsp::mp::pvm::Session pvm(comm);
//   pvm.initsend();
//   pvm.pkdouble(boundary.data(), n, 1);
//   pvm.send(left_tid, kTagPrim);
//   ...
//   pvm.recv(right_tid, kTagPrim);
//   pvm.upkdouble(ghost.data(), n, 1);
//
// Task ids ("tids") are ranks; pvm_mytid/pvm_gsize map onto the Comm.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/comm.hpp"

namespace nsp::mp::pvm {

/// Per-task PVM session bound to a Comm endpoint. Not thread-shared:
/// each rank owns its own Session (as each PVM task owned its buffers).
class Session {
 public:
  explicit Session(Comm& comm) : comm_(&comm) {}

  /// pvm_mytid: this task's id (the rank).
  int mytid() const { return comm_->rank(); }

  /// pvm_gsize: number of tasks in the (static) group.
  int gsize() const { return comm_->size(); }

  /// pvm_initsend: clears the active send buffer. Returns a buffer id
  /// (always 1; kept for signature familiarity).
  int initsend();

  /// pvm_pkdouble / pvm_pkint: append n items with the given stride
  /// (stride 1 = contiguous, as in PVM).
  int pkdouble(const double* data, int n, int stride = 1);
  int pkint(const int* data, int n, int stride = 1);

  /// pvm_send: ships the active send buffer to task `tid` with `tag`.
  /// The buffer stays intact (PVM allowed multicasting the same buffer).
  int send(int tid, int tag);

  /// pvm_mcast: ships the active buffer to several tasks.
  int mcast(const std::vector<int>& tids, int tag);

  /// pvm_recv: blocks for a message from `tid` (-1 = any) with `tag`
  /// (-1 = any) and makes it the active receive buffer.
  int recv(int tid = -1, int tag = -1);

  /// pvm_nrecv: non-blocking probe-receive; returns 0 when no message
  /// is pending, 1 when a buffer was received.
  int nrecv(int tid = -1, int tag = -1);

  /// pvm_bufinfo: length (in doubles-equivalent items packed), tag and
  /// source of the active receive buffer.
  int bufinfo(int* bytes, int* tag, int* tid) const;

  /// pvm_upkdouble / pvm_upkint: unpack n items with stride from the
  /// active receive buffer; items are consumed in pack order.
  int upkdouble(double* data, int n, int stride = 1);
  int upkint(int* data, int n, int stride = 1);

  /// Remaining unread items in the receive buffer.
  std::size_t unread() const { return recv_buf_.size() - recv_pos_; }

  static constexpr int PvmOk = 0;
  static constexpr int PvmNoData = -5;   ///< unpack past end of buffer
  static constexpr int PvmNoBuf = -12;   ///< no active buffer

 private:
  Comm* comm_;
  std::vector<double> send_buf_;
  bool send_active_ = false;
  std::vector<double> recv_buf_;
  std::size_t recv_pos_ = 0;
  bool recv_active_ = false;
  int recv_tag_ = -1;
  int recv_src_ = -1;
};

}  // namespace nsp::mp::pvm
