// A small threads-backed message-passing runtime in the spirit of PVM.
//
// The paper parallelizes the solver in SPMD style with explicit message
// passing (PVM on LACE and the T3D, MPL/PVMe on the SP). This runtime
// provides the same programming model on threads of one process: each
// rank runs the SPMD function on its own thread, sends are buffered and
// asynchronous, receives block with (source, tag) matching, and every
// rank keeps start-up/volume counters so the live solver can report the
// paper's Table 1 quantities.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "check/thread_safety.hpp"
#include "core/counters.hpp"

namespace nsp::mp {

/// Wildcard for Comm::recv source/tag matching.
inline constexpr int kAny = -1;

/// A typed message of doubles.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<double> data;
};

/// What a delivery filter decides for one in-flight message.
enum class Delivery {
  Deliver,  ///< enqueue unchanged
  Drop,     ///< silently lose the message
  Corrupt,  ///< flip one bit of the payload, then enqueue
};

/// Fault hook consulted for every message a Cluster delivers. Called
/// from the sending rank's thread with (message, destination rank);
/// implementations must be thread-safe and should be deterministic in
/// per-(src,dst,tag) program order (see fault/detect.hpp).
using DeliveryFilter = std::function<Delivery(const Message&, int dst)>;

class Cluster;

/// Per-rank communication endpoint handed to the SPMD function.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Sends a copy of `data` to `dst` with the given tag (asynchronous,
  /// buffered: never blocks).
  void send(int dst, int tag, std::span<const double> data);

  /// Receives the oldest matching message (blocking). Use kAny to match
  /// any source and/or tag.
  Message recv(int src = kAny, int tag = kAny);

  /// Receives a matching message into `out`; the message length must
  /// equal out.size().
  void recv_into(int src, int tag, std::span<double> out);

  /// Non-blocking probe-and-receive.
  std::optional<Message> try_recv(int src = kAny, int tag = kAny);

  /// Blocking receive with a timeout: waits up to `timeout_s` seconds
  /// for a matching message, then gives up with nullopt. The building
  /// block of the fault layer's retransmission and crash detection
  /// (fault/detect.hpp).
  std::optional<Message> recv_for(double timeout_s, int src = kAny,
                                  int tag = kAny);

  /// Blocking receive with an *absolute* deadline: repeated calls
  /// against the same deadline share one timeout budget, so a chatty
  /// peer delivering unwanted messages cannot stretch the window the
  /// way per-call recv_for timeouts can (fault::ReliableLink's
  /// retransmission attempts are built on this).
  std::optional<Message> recv_until(
      std::chrono::steady_clock::time_point deadline, int src = kAny,
      int tag = kAny);

  /// Synchronizes all ranks of the cluster.
  void barrier();

  /// Global reductions (implemented with messages through rank 0, so
  /// they show up in the communication counters like any other traffic).
  double allreduce_sum(double v);
  double allreduce_max(double v);

  /// Broadcasts `data` from `root` to every rank (in place).
  void broadcast(std::vector<double>& data, int root = 0);

  /// Gathers each rank's `data` onto `root`, concatenated in rank
  /// order. Returns the concatenation on root, an empty vector
  /// elsewhere. Contributions may differ in length.
  std::vector<double> gather(std::span<const double> data, int root = 0);

  /// Element-wise sum reduction of equal-length vectors across all
  /// ranks; every rank receives the result (in place).
  void allreduce_sum_vec(std::vector<double>& data);

  /// Message accounting for this rank.
  const core::CommCounter& counters() const { return counters_; }

 private:
  friend class Cluster;
  Comm(Cluster& cluster, int rank, int size)
      : cluster_(&cluster), rank_(rank), size_(size) {}

  Cluster* cluster_;
  int rank_;
  int size_;
  core::CommCounter counters_;
};

/// A virtual cluster: runs one SPMD function on `size` ranks (threads)
/// and joins them. Mailboxes live for the duration of run().
class Cluster {
 public:
  explicit Cluster(int size);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return size_; }

  /// Runs fn(comm) on every rank; returns when all ranks finish.
  /// Exceptions thrown by any rank are rethrown (first one wins) after
  /// all threads have been joined.
  void run(const std::function<void(Comm&)>& fn);

  /// Per-rank counters of the last run().
  const std::vector<core::CommCounter>& last_counters() const {
    return last_counters_;
  }

  /// Installs (or clears, with nullptr) the delivery fault filter. Set
  /// it before run(); the cluster consults it for every send. Dropped
  /// messages count at the sender but never reach a mailbox.
  void set_delivery_filter(DeliveryFilter filter) {
    filter_ = std::move(filter);
  }

 private:
  friend class Comm;

  /// One rank's inbox. The queue is only touched with `m` held; every
  /// sender notifies `cv` after enqueueing (statically checked under
  /// Clang -Wthread-safety).
  struct Mailbox {
    check::Mutex m;
    check::CondVar cv;
    std::deque<Message> queue NSP_GUARDED_BY(m);
  };

  void deliver(int dst, Message msg);
  std::optional<Message> match(int dst, int src, int tag, bool block);
  std::optional<Message> match_for(int dst, int src, int tag,
                                   double timeout_s);
  std::optional<Message> match_until(
      int dst, int src, int tag,
      std::chrono::steady_clock::time_point deadline);

  int size_;
  std::vector<Mailbox> boxes_;
  DeliveryFilter filter_;  ///< set before run(); read-only during it

  // barrier state (classic generation-counted barrier)
  check::Mutex bar_m_;
  check::CondVar bar_cv_;
  int bar_count_ NSP_GUARDED_BY(bar_m_) = 0;
  std::uint64_t bar_generation_ NSP_GUARDED_BY(bar_m_) = 0;

  std::vector<core::CommCounter> last_counters_;  ///< run() caller only
};

}  // namespace nsp::mp
