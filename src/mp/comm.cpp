#include "mp/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "check/check.hpp"

namespace nsp::mp {

// ------------------------------------------------------------------ Comm

void Comm::send(int dst, int tag, std::span<const double> data) {
  if (dst < 0 || dst >= size_) throw std::out_of_range("Comm::send: bad rank");
  // The SPMD solver never talks to itself; a self-send is a decomposition
  // bug (and would deadlock a synchronous message layer).
  NSP_CHECK(dst != rank_, "mp.comm.send_to_self");
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.data.assign(data.begin(), data.end());
  ++counters_.sends;
  counters_.bytes_sent += static_cast<double>(data.size_bytes());
  cluster_->deliver(dst, std::move(m));
}

Message Comm::recv(int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  auto m = cluster_->match(rank_, src, tag, /*block=*/true);
  counters_.wait_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++counters_.recvs;
  counters_.bytes_received += static_cast<double>(m->data.size() * sizeof(double));
  return std::move(*m);
}

void Comm::recv_into(int src, int tag, std::span<double> out) {
  Message m = recv(src, tag);
  NSP_CHECK_WARN(m.data.size() == out.size(), "mp.comm.recv_size_matched");
  if (m.data.size() != out.size()) {
    throw std::runtime_error("Comm::recv_into: length mismatch");
  }
  std::copy(m.data.begin(), m.data.end(), out.begin());
}

std::optional<Message> Comm::try_recv(int src, int tag) {
  auto m = cluster_->match(rank_, src, tag, /*block=*/false);
  if (m) {
    ++counters_.recvs;
    counters_.bytes_received +=
        static_cast<double>(m->data.size() * sizeof(double));
  }
  return m;
}

std::optional<Message> Comm::recv_for(double timeout_s, int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  auto m = cluster_->match_for(rank_, src, tag, timeout_s);
  counters_.wait_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (m) {
    ++counters_.recvs;
    counters_.bytes_received +=
        static_cast<double>(m->data.size() * sizeof(double));
  }
  return m;
}

std::optional<Message> Comm::recv_until(
    std::chrono::steady_clock::time_point deadline, int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  auto m = cluster_->match_until(rank_, src, tag, deadline);
  counters_.wait_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (m) {
    ++counters_.recvs;
    counters_.bytes_received +=
        static_cast<double>(m->data.size() * sizeof(double));
  }
  return m;
}

void Comm::barrier() {
  check::MutexLock lk(cluster_->bar_m_);
  const std::uint64_t gen = cluster_->bar_generation_;
  if (++cluster_->bar_count_ == size_) {
    cluster_->bar_count_ = 0;
    ++cluster_->bar_generation_;
    cluster_->bar_cv_.notify_all();
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    while (cluster_->bar_generation_ == gen) {
      cluster_->bar_cv_.wait(cluster_->bar_m_);
    }
    counters_.wait_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
}

namespace {
constexpr int kReduceTag = -1000;
constexpr int kBcastTag = -1001;
}  // namespace

double Comm::allreduce_sum(double v) {
  if (size_ == 1) return v;
  if (rank_ == 0) {
    double acc = v;
    for (int r = 1; r < size_; ++r) acc += recv(r, kReduceTag).data.at(0);
    for (int r = 1; r < size_; ++r) send(r, kBcastTag, std::span(&acc, 1));
    return acc;
  }
  send(0, kReduceTag, std::span(&v, 1));
  return recv(0, kBcastTag).data.at(0);
}

double Comm::allreduce_max(double v) {
  if (size_ == 1) return v;
  if (rank_ == 0) {
    double acc = v;
    for (int r = 1; r < size_; ++r) acc = std::max(acc, recv(r, kReduceTag).data.at(0));
    for (int r = 1; r < size_; ++r) send(r, kBcastTag, std::span(&acc, 1));
    return acc;
  }
  send(0, kReduceTag, std::span(&v, 1));
  return recv(0, kBcastTag).data.at(0);
}

namespace {
constexpr int kBcastTag2 = -1002;
constexpr int kGatherTag = -1003;
constexpr int kVecReduceTag = -1004;
constexpr int kVecResultTag = -1005;
}  // namespace

void Comm::broadcast(std::vector<double>& data, int root) {
  if (size_ == 1) return;
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r != root) send(r, kBcastTag2, data);
    }
  } else {
    data = recv(root, kBcastTag2).data;
  }
}

std::vector<double> Comm::gather(std::span<const double> data, int root) {
  if (rank_ != root) {
    send(root, kGatherTag, data);
    return {};
  }
  std::vector<double> out;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) {
      out.insert(out.end(), data.begin(), data.end());
    } else {
      const Message m = recv(r, kGatherTag);
      out.insert(out.end(), m.data.begin(), m.data.end());
    }
  }
  return out;
}

void Comm::allreduce_sum_vec(std::vector<double>& data) {
  if (size_ == 1) return;
  if (rank_ == 0) {
    for (int r = 1; r < size_; ++r) {
      const Message m = recv(r, kVecReduceTag);
      if (m.data.size() != data.size()) {
        throw std::runtime_error("allreduce_sum_vec: length mismatch");
      }
      for (std::size_t k = 0; k < data.size(); ++k) data[k] += m.data[k];
    }
    for (int r = 1; r < size_; ++r) send(r, kVecResultTag, data);
  } else {
    send(0, kVecReduceTag, data);
    data = recv(0, kVecResultTag).data;
  }
}

// --------------------------------------------------------------- Cluster

Cluster::Cluster(int size) : size_(size), boxes_(size) {
  if (size < 1) throw std::invalid_argument("Cluster: size must be >= 1");
}

Cluster::~Cluster() = default;

void Cluster::deliver(int dst, Message msg) {
  if (filter_) {
    switch (filter_(msg, dst)) {
      case Delivery::Deliver:
        break;
      case Delivery::Drop:
        return;  // lost: the sender's counters saw it, no mailbox will
      case Delivery::Corrupt:
        // Flip one mantissa bit of the middle payload word — enough to
        // fail any checksum while keeping the value finite.
        if (!msg.data.empty()) {
          double& v = msg.data[msg.data.size() / 2];
          std::uint64_t bits;
          std::memcpy(&bits, &v, sizeof(bits));
          bits ^= 1;
          std::memcpy(&v, &bits, sizeof(bits));
        }
        break;
    }
  }
  Mailbox& box = boxes_.at(dst);
  {
    check::MutexLock lk(box.m);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

namespace {

/// Oldest message in `q` matching (src, tag), or q.end(). Callers pass
/// the mailbox queue with its mutex held.
std::deque<Message>::iterator find_match(std::deque<Message>& q, int src,
                                         int tag) {
  for (auto it = q.begin(); it != q.end(); ++it) {
    if ((src == kAny || it->src == src) && (tag == kAny || it->tag == tag)) {
      return it;
    }
  }
  return q.end();
}

}  // namespace

std::optional<Message> Cluster::match(int dst, int src, int tag, bool block) {
  Mailbox& box = boxes_.at(dst);
  check::MutexLock lk(box.m);
  // Explicit wait loop (not the predicate overload of std::condition_
  // variable): the re-test runs in this scope, where the analysis sees
  // box.m held around every queue access.
  auto it = find_match(box.queue, src, tag);
  if (it == box.queue.end() && !block) return std::nullopt;
  while (it == box.queue.end()) {
    box.cv.wait(box.m);
    it = find_match(box.queue, src, tag);
  }
  Message m = std::move(*it);
  box.queue.erase(it);
  return m;
}

std::optional<Message> Cluster::match_for(int dst, int src, int tag,
                                          double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, timeout_s)));
  return match_until(dst, src, tag, deadline);
}

std::optional<Message> Cluster::match_until(
    int dst, int src, int tag,
    std::chrono::steady_clock::time_point deadline) {
  Mailbox& box = boxes_.at(dst);
  check::MutexLock lk(box.m);
  auto it = find_match(box.queue, src, tag);
  while (it == box.queue.end()) {
    if (box.cv.wait_until(box.m, deadline) == std::cv_status::timeout) {
      // One last scan: the message may have landed between the deadline
      // passing and the wait returning.
      it = find_match(box.queue, src, tag);
      if (it == box.queue.end()) return std::nullopt;
      break;
    }
    it = find_match(box.queue, src, tag);
  }
  Message m = std::move(*it);
  box.queue.erase(it);
  return m;
}

void Cluster::run(const std::function<void(Comm&)>& fn) {
  for (auto& box : boxes_) {
    check::MutexLock lk(box.m);
    box.queue.clear();
  }
  {
    // Reset under the lock: a previous run() that ended with an
    // exception thrown out of a rank can leave stragglers parked in
    // barrier(), and bar_count_ is guarded state like any other.
    check::MutexLock lk(bar_m_);
    bar_count_ = 0;
  }

  std::vector<Comm> comms;
  comms.reserve(size_);
  for (int r = 0; r < size_; ++r) comms.push_back(Comm(*this, r, size_));

  std::exception_ptr first_error;
  check::Mutex err_m;
  std::vector<std::thread> threads;
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r]() {
      try {
        fn(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        check::MutexLock lk(err_m);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Matched posts: every send must have been consumed by a receive.
  // (Only meaningful when the ranks exited cleanly — an exception
  // legitimately strands in-flight messages.)
  if (!first_error) {
    std::size_t unconsumed = 0;
    for (auto& box : boxes_) {
      check::MutexLock lk(box.m);
      unconsumed += box.queue.size();
    }
    NSP_CHECK_WARN(unconsumed == 0, "mp.comm.posts_matched");
  }

  last_counters_.clear();
  for (const auto& c : comms) last_counters_.push_back(c.counters());
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nsp::mp
