#include "mp/pvm_compat.hpp"

namespace nsp::mp::pvm {

int Session::initsend() {
  send_buf_.clear();
  send_active_ = true;
  return 1;
}

int Session::pkdouble(const double* data, int n, int stride) {
  if (!send_active_) return PvmNoBuf;
  for (int k = 0; k < n; ++k) send_buf_.push_back(data[k * stride]);
  return PvmOk;
}

int Session::pkint(const int* data, int n, int stride) {
  if (!send_active_) return PvmNoBuf;
  // PVM encoded ints natively; doubles hold 32-bit ints exactly.
  for (int k = 0; k < n; ++k) {
    send_buf_.push_back(static_cast<double>(data[k * stride]));
  }
  return PvmOk;
}

int Session::send(int tid, int tag) {
  if (!send_active_) return PvmNoBuf;
  comm_->send(tid, tag, send_buf_);
  return PvmOk;
}

int Session::mcast(const std::vector<int>& tids, int tag) {
  if (!send_active_) return PvmNoBuf;
  for (int tid : tids) comm_->send(tid, tag, send_buf_);
  return PvmOk;
}

int Session::recv(int tid, int tag) {
  const Message m = comm_->recv(tid < 0 ? kAny : tid, tag < 0 ? kAny : tag);
  recv_buf_ = std::move(m.data);
  recv_pos_ = 0;
  recv_active_ = true;
  recv_tag_ = m.tag;
  recv_src_ = m.src;
  return 1;
}

int Session::nrecv(int tid, int tag) {
  auto m = comm_->try_recv(tid < 0 ? kAny : tid, tag < 0 ? kAny : tag);
  if (!m) return 0;
  recv_buf_ = std::move(m->data);
  recv_pos_ = 0;
  recv_active_ = true;
  recv_tag_ = m->tag;
  recv_src_ = m->src;
  return 1;
}

int Session::bufinfo(int* bytes, int* tag, int* tid) const {
  if (!recv_active_) return PvmNoBuf;
  if (bytes) *bytes = static_cast<int>(recv_buf_.size() * sizeof(double));
  if (tag) *tag = recv_tag_;
  if (tid) *tid = recv_src_;
  return PvmOk;
}

int Session::upkdouble(double* data, int n, int stride) {
  if (!recv_active_) return PvmNoBuf;
  if (recv_pos_ + static_cast<std::size_t>(n) > recv_buf_.size()) {
    return PvmNoData;
  }
  for (int k = 0; k < n; ++k) data[k * stride] = recv_buf_[recv_pos_++];
  return PvmOk;
}

int Session::upkint(int* data, int n, int stride) {
  if (!recv_active_) return PvmNoBuf;
  if (recv_pos_ + static_cast<std::size_t>(n) > recv_buf_.size()) {
    return PvmNoData;
  }
  for (int k = 0; k < n; ++k) {
    data[k * stride] = static_cast<int>(recv_buf_[recv_pos_++]);
  }
  return PvmOk;
}

}  // namespace nsp::mp::pvm
