#include "io/snapshot.hpp"
#include "core/field.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace nsp::io {

namespace {

constexpr char kMagic[8] = {'N', 'S', 'P', 'S', 'N', 'A', 'P', '1'};

struct Header {
  char magic[8];
  std::int32_t ni;
  std::int32_t nj;
  std::int32_t steps;
  std::int32_t viscous;
  double time;
  double dt;
};

bool write_component(std::ofstream& f, const core::Field2D& a) {
  const int ni = a.ni(), nj = a.nj();
  for (int j = -core::kGhost; j < nj + core::kGhost; ++j) {
    for (int i = -core::kGhost; i < ni + core::kGhost; ++i) {
      const double v = a(i, j);
      f.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  }
  return f.good();
}

bool read_component(std::ifstream& f, core::Field2D& a) {
  const int ni = a.ni(), nj = a.nj();
  for (int j = -core::kGhost; j < nj + core::kGhost; ++j) {
    for (int i = -core::kGhost; i < ni + core::kGhost; ++i) {
      double v;
      f.read(reinterpret_cast<char*>(&v), sizeof(v));
      if (!f.good()) return false;
      a(i, j) = v;
    }
  }
  return true;
}

}  // namespace

bool write_snapshot(const std::string& path, const core::StateField& q,
                    const SnapshotInfo& info) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.ni = q.ni();
  h.nj = q.nj();
  h.steps = info.steps;
  h.viscous = info.viscous ? 1 : 0;
  h.time = info.time;
  h.dt = info.dt;
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (int c = 0; c < core::StateField::kComponents; ++c) {
    if (!write_component(f, q[c])) return false;
  }
  return f.good();
}

bool read_snapshot(const std::string& path, core::StateField& q,
                   SnapshotInfo& info) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  Header h{};
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f.good() || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (h.ni <= 0 || h.nj <= 0 || h.ni > (1 << 20) || h.nj > (1 << 20)) {
    return false;
  }
  q = core::StateField(h.ni, h.nj);
  for (int c = 0; c < core::StateField::kComponents; ++c) {
    if (!read_component(f, q[c])) return false;
  }
  info.ni = h.ni;
  info.nj = h.nj;
  info.steps = h.steps;
  info.viscous = h.viscous != 0;
  info.time = h.time;
  info.dt = h.dt;
  return true;
}

bool write_field_csv(const std::string& path, const core::Grid& grid,
                     const core::Field2D& f) {
  std::ofstream out(path);
  if (!out) return false;
  out << "x,r,value\n";
  for (int j = 0; j < grid.nj; ++j) {
    for (int i = 0; i < grid.ni; ++i) {
      out << grid.x(i) << ',' << grid.r(j) << ',' << f(i, j) << '\n';
    }
  }
  return out.good();
}

}  // namespace nsp::io
