// Flow-field snapshots: binary checkpoint/restart for long runs (the
// paper's production computation was 16000 steps — hours of 1995 CPU
// time) and portable CSV export of fields for plotting.
#pragma once

#include <string>

#include "core/field.hpp"
#include "core/grid.hpp"

namespace nsp::io {

/// Snapshot header metadata.
struct SnapshotInfo {
  int ni = 0;
  int nj = 0;
  int steps = 0;
  double time = 0;
  double dt = 0;
  bool viscous = true;
};

/// Writes q (interior + ghost cells) and metadata to a binary file.
/// Returns false on I/O failure. The format is a fixed little-endian
/// header ("NSPSNAP1") followed by the four component arrays.
bool write_snapshot(const std::string& path, const core::StateField& q,
                    const SnapshotInfo& info);

/// Reads a snapshot written by write_snapshot. On success q is resized
/// to the stored dimensions and info is filled. Returns false on any
/// mismatch (bad magic, truncated file).
bool read_snapshot(const std::string& path, core::StateField& q,
                   SnapshotInfo& info);

/// Writes one scalar field as CSV: header "x,r,value", one row per
/// interior point (axial fastest), using the grid for coordinates.
bool write_field_csv(const std::string& path, const core::Grid& grid,
                     const core::Field2D& f);

}  // namespace nsp::io
