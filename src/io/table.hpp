// Fixed-width table formatting used by the benchmark harnesses to print
// paper-style tables (Table 1, Table 2) and paper-vs-measured summaries.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nsp::io {

/// Horizontal alignment of a cell within its column.
enum class Align { Left, Right, Center };

/// A simple monospace table builder.
///
/// Columns are sized to the widest cell; numeric cells should be
/// preformatted with format_fixed()/format_sci()/format_si(). The table
/// renders with a header rule and an optional title, e.g.
///
///   Table 1: Application Characteristics
///   ------------------------------------
///   Appln   Total Comp (MFLOP)   Start-ups   Volume (MB)
///   N-S     145000               80000       125
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Sets a title line printed above the table.
  Table& title(std::string t);

  /// Sets per-column alignment; default is Left for column 0 and Right
  /// for the rest. Missing entries keep the default.
  Table& align(std::vector<Align> aligns);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows are counted as a check violation
  /// ("io.table.row_width") and truncated to the header width.
  Table& row(std::vector<std::string> cells);

  /// Appends a separator rule between data rows.
  Table& rule();

  /// Number of data rows added so far (rules excluded).
  std::size_t rows() const;

  /// Renders the table to a string (trailing newline included).
  std::string str() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  // Empty vector encodes a rule row.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v with `prec` digits after the decimal point ("12.35").
std::string format_fixed(double v, int prec);

/// Formats v in scientific notation with `prec` mantissa digits.
std::string format_sci(double v, int prec);

/// Formats a count with SI-style suffixes as the paper does for
/// FPs/start-up ("906K", "1.2M"); values below 1000 print as integers.
std::string format_si(double v);

/// Formats seconds either as "123.4 s" or "1.23e+04 s" for large values.
std::string format_seconds(double s);

/// Formats a ratio as a percentage ("75%").
std::string format_percent(double ratio);

// ---- Machine-readable record emission ----------------------------------
//
// One CSV and one JSON writer shared by everything that persists result
// records (the exec engine's ResultSet, the bench harnesses); the
// per-bench ad-hoc row assembly used to live next to each binary.

/// Formats a double so that parsing the text recovers the exact bit
/// pattern ("%.17g"); non-finite values render as "nan"/"inf"/"-inf".
std::string format_exact(double v);

/// RFC-4180-style escaping: quotes the cell if it contains a comma,
/// quote, or newline.
std::string csv_escape(const std::string& cell);

/// JSON string-literal escaping (without the surrounding quotes).
std::string json_escape(const std::string& s);

/// Writes header + rows as CSV. Cells are escaped; rows shorter than the
/// header are padded with empty cells.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// A flat record: ordered (name, already-serialized JSON value) pairs.
/// Values must be valid JSON fragments ("\"text\"", "42", "{...}").
using JsonRecord = std::vector<std::pair<std::string, std::string>>;

/// Renders records as a stable, deterministic JSON array of objects
/// (two-space indentation, fields in the given order, trailing newline).
std::string json_records(const std::vector<JsonRecord>& records);

/// Writes json_records(records) to `path`.
void write_json_records(const std::string& path,
                        const std::vector<JsonRecord>& records);

}  // namespace nsp::io
