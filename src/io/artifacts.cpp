#include "io/artifacts.hpp"

#include <cstdlib>
#include <filesystem>

namespace nsp::io {

std::string results_dir() {
  const char* env = std::getenv("NSP_RESULTS_DIR");
  if (env == nullptr || *env == '\0') return ".";
  std::error_code ec;
  std::filesystem::create_directories(env, ec);  // best effort
  return env;
}

std::string artifact_path(const std::string& name) {
  if (!name.empty() && name.front() == '/') return name;
  const std::string dir = results_dir();
  if (dir == ".") return name;
  return dir + "/" + name;
}

}  // namespace nsp::io
