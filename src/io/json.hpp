// A minimal, dependency-free JSON reader for the serving wire format.
//
// The repo's JSON *writers* (json_records, ResultSet::to_json) emit
// deterministic text and never needed a parser; the serving daemon does:
// requests arrive as newline-delimited JSON objects. This parser covers
// exactly RFC 8259 minus two deliberate simplifications:
//
//   - numbers keep their raw source text alongside the double value, so
//     64-bit integers (scenario seeds) round-trip without going through
//     a double;
//   - \uXXXX escapes decode to UTF-8, including astral code points
//     written as surrogate pairs (\uD83D\uDE00). Lone or malformed
//     surrogates are a structured parse error, not silent pass-through,
//     so a request with a mangled label fails loudly at the wire.
//
// Object members preserve insertion order; duplicate keys keep the last
// value (matching common parser behaviour).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nsp::io {

/// One parsed JSON value. A small closed variant rather than
/// std::variant so lookups read naturally at call sites.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  /// Numeric value as double (valid when kind == Number).
  double number = 0.0;
  /// For String: the decoded text. For Number: the raw literal as it
  /// appeared in the source (use with strtoll/strtoull for exact
  /// integer round-trips).
  std::string text;
  /// Array elements, in order (valid when kind == Array).
  std::vector<JsonValue> items;
  /// Object members in insertion order (valid when kind == Object).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object. Linear
  /// scan — wire objects have a dozen members at most.
  const JsonValue* find(const std::string& key) const;

  /// find(key), but returns value.text for strings ("" when absent or
  /// not a string).
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  /// find(key), but returns the numeric value ("fallback" when absent
  /// or not a number).
  double number_or(const std::string& key, double fallback) const;

  /// find(key), but returns the boolean value.
  bool bool_or(const std::string& key, bool fallback) const;
};

/// Parses one JSON document from `text`. Returns true and fills `out`
/// on success; returns false and puts a one-line diagnostic (with a
/// character offset) in `err` on malformed input. Trailing whitespace
/// is allowed; trailing non-whitespace is an error.
bool json_parse(const std::string& text, JsonValue* out, std::string* err);

}  // namespace nsp::io
