#include "io/signal.hpp"

#include <algorithm>
#include <cmath>

namespace nsp::io {

namespace {
constexpr double kTwoPi = 6.28318530717958647692528676655900577;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0;
  double s = 0;
  for (double v : samples) s += v;
  return s / static_cast<double>(samples.size());
}

double rms(std::span<const double> samples) {
  if (samples.empty()) return 0;
  const double m = mean(samples);
  double s = 0;
  for (double v : samples) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(samples.size()));
}

Spectrum amplitude_spectrum(std::span<const double> samples, double dt_sample,
                            bool hann_window) {
  Spectrum out;
  const std::size_t n = samples.size();
  if (n < 4 || dt_sample <= 0) return out;
  const double m = mean(samples);

  std::vector<double> x(n);
  double window_gain = 1.0;
  if (hann_window) {
    double wsum = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const double w =
          0.5 * (1.0 - std::cos(kTwoPi * static_cast<double>(k) /
                                static_cast<double>(n - 1)));
      x[k] = (samples[k] - m) * w;
      wsum += w;
    }
    window_gain = wsum / static_cast<double>(n);  // amplitude correction
  } else {
    for (std::size_t k = 0; k < n; ++k) x[k] = samples[k] - m;
  }

  const std::size_t nbins = n / 2;
  out.frequency.reserve(nbins);
  out.amplitude.reserve(nbins);
  for (std::size_t b = 1; b <= nbins; ++b) {
    double re = 0, im = 0;
    const double w = kTwoPi * static_cast<double>(b) / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      re += x[k] * std::cos(w * static_cast<double>(k));
      im -= x[k] * std::sin(w * static_cast<double>(k));
    }
    const double amp = 2.0 * std::hypot(re, im) /
                       (static_cast<double>(n) * window_gain);
    out.frequency.push_back(static_cast<double>(b) /
                            (static_cast<double>(n) * dt_sample));
    out.amplitude.push_back(amp);
  }
  return out;
}

ToneEstimate project_tone(std::span<const double> samples, double dt_sample,
                          double omega) {
  ToneEstimate t;
  const std::size_t n = samples.size();
  if (n == 0) return t;
  const double m = mean(samples);
  double re = 0, im = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double ph = omega * dt_sample * static_cast<double>(k);
    re += (samples[k] - m) * std::cos(ph);
    im += (samples[k] - m) * std::sin(ph);
  }
  t.amplitude = 2.0 * std::hypot(re, im) / static_cast<double>(n);
  t.phase = std::atan2(im, re);
  return t;
}

std::size_t dominant_bin(const Spectrum& s) {
  if (s.amplitude.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(s.amplitude.begin(), s.amplitude.end()) -
      s.amplitude.begin());
}

}  // namespace nsp::io
