#include "io/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "check/check.hpp"

namespace nsp::io {

namespace {

constexpr const char kGlyphs[] = {'o', 'x', '+', '*', '#', '@', '%', '&'};

double tx(double v, bool logscale) { return logscale ? std::log10(v) : v; }

bool usable(double v, bool logscale) {
  return std::isfinite(v) && (!logscale || v > 0.0);
}

std::string tick_label(double v) {
  char buf[32];
  if (std::fabs(v) > 0.0 && (std::fabs(v) >= 1e5 || std::fabs(v) < 1e-2)) {
    std::snprintf(buf, sizeof(buf), "%.1e", v);
  } else if (std::fabs(v - std::round(v)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  }
  return buf;
}

}  // namespace

LineChart::LineChart(ChartOptions opts) : opts_(std::move(opts)) {}

LineChart& LineChart::add(Series s) {
  // Non-finite points are skipped at render time; count them here (once
  // per added series) so bad data is visible in the check report.
  for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
    NSP_CHECK_WARN(std::isfinite(s.x[i]) && std::isfinite(s.y[i]),
                   "io.chart.point_finite");
  }
  series_.push_back(std::move(s));
  return *this;
}

std::string LineChart::str() const {
  const int W = std::max(16, opts_.width);
  const int H = std::max(8, opts_.height);

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (!usable(s.x[i], opts_.log_x) || !usable(s.y[i], opts_.log_y)) continue;
      xmin = std::min(xmin, tx(s.x[i], opts_.log_x));
      xmax = std::max(xmax, tx(s.x[i], opts_.log_x));
      ymin = std::min(ymin, tx(s.y[i], opts_.log_y));
      ymax = std::max(ymax, tx(s.y[i], opts_.log_y));
    }
  }
  std::ostringstream os;
  if (!opts_.title.empty()) os << opts_.title << '\n';
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) {
    os << "(no plottable points)\n";
    return os.str();
  }
  if (xmax - xmin < 1e-12) { xmin -= 0.5; xmax += 0.5; }
  if (ymax - ymin < 1e-12) { ymin -= 0.5; ymax += 0.5; }

  std::vector<std::string> canvas(H, std::string(W, ' '));
  auto plot = [&](double xv, double yv, char g) {
    const int c = static_cast<int>(std::lround((tx(xv, opts_.log_x) - xmin) /
                                               (xmax - xmin) * (W - 1)));
    const int r = static_cast<int>(std::lround((tx(yv, opts_.log_y) - ymin) /
                                               (ymax - ymin) * (H - 1)));
    if (c < 0 || c >= W || r < 0 || r >= H) return;
    char& cell = canvas[H - 1 - r][c];
    cell = (cell == ' ' || cell == g) ? g : '?';  // '?' marks overlap
  };

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char g = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series_[si];
    // Draw line segments by dense parametric sampling between points so
    // slopes are visible, then overdraw the data points.
    for (std::size_t i = 0; i + 1 < s.x.size() && i + 1 < s.y.size(); ++i) {
      if (!usable(s.x[i], opts_.log_x) || !usable(s.y[i], opts_.log_y) ||
          !usable(s.x[i + 1], opts_.log_x) || !usable(s.y[i + 1], opts_.log_y)) {
        continue;
      }
      const int steps = 2 * W;
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        const double lx = tx(s.x[i], opts_.log_x) * (1 - t) + tx(s.x[i + 1], opts_.log_x) * t;
        const double ly = tx(s.y[i], opts_.log_y) * (1 - t) + tx(s.y[i + 1], opts_.log_y) * t;
        const int c = static_cast<int>(std::lround((lx - xmin) / (xmax - xmin) * (W - 1)));
        const int r = static_cast<int>(std::lround((ly - ymin) / (ymax - ymin) * (H - 1)));
        if (c < 0 || c >= W || r < 0 || r >= H) continue;
        char& cell = canvas[H - 1 - r][c];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (usable(s.x[i], opts_.log_x) && usable(s.y[i], opts_.log_y)) {
        plot(s.x[i], s.y[i], g);
      }
    }
  }

  auto untx = [](double v, bool logscale) { return logscale ? std::pow(10.0, v) : v; };
  if (!opts_.y_label.empty()) os << opts_.y_label << '\n';
  for (int r = 0; r < H; ++r) {
    std::string lbl;
    if (r == 0) {
      lbl = tick_label(untx(ymax, opts_.log_y));
    } else if (r == H - 1) {
      lbl = tick_label(untx(ymin, opts_.log_y));
    } else if (r == H / 2) {
      lbl = tick_label(untx((ymin + ymax) / 2, opts_.log_y));
    }
    os << (lbl.size() < 9 ? std::string(9 - lbl.size(), ' ') + lbl : lbl) << " |"
       << canvas[r] << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(W, '-') << '\n';
  {
    const std::string lo = tick_label(untx(xmin, opts_.log_x));
    const std::string mid = tick_label(untx((xmin + xmax) / 2, opts_.log_x));
    const std::string hi = tick_label(untx(xmax, opts_.log_x));
    std::string axis(11 + W, ' ');
    auto put = [&](std::size_t pos, const std::string& s) {
      for (std::size_t i = 0; i < s.size() && pos + i < axis.size(); ++i) axis[pos + i] = s[i];
    };
    put(11, lo);
    put(11 + W / 2 - mid.size() / 2, mid);
    put(std::max<std::size_t>(11, 11 + W - hi.size()), hi);
    os << axis << '\n';
  }
  if (!opts_.x_label.empty()) {
    os << std::string(11 + std::max(0, W / 2 - static_cast<int>(opts_.x_label.size()) / 2), ' ')
       << opts_.x_label << '\n';
  }
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "    " << kGlyphs[si % sizeof(kGlyphs)] << "  " << series_[si].label << '\n';
  }
  return os.str();
}

std::string bar_chart(const std::string& title, const std::vector<std::string>& labels,
                      const std::vector<double>& values, int max_width,
                      const std::string& unit) {
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  double vmax = 0.0;
  for (double v : values) vmax = std::max(vmax, v);
  if (vmax <= 0.0) vmax = 1.0;
  std::size_t lw = 0;
  for (const auto& l : labels) lw = std::max(lw, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string l = i < labels.size() ? labels[i] : std::string();
    const int n = static_cast<int>(std::lround(values[i] / vmax * max_width));
    os << l << std::string(lw - l.size() + 1, ' ') << '|'
       << std::string(std::max(0, n), '#') << ' ' << tick_label(values[i]);
    if (!unit.empty()) os << ' ' << unit;
    os << '\n';
  }
  return os.str();
}

std::string contour_map(const std::vector<double>& field, std::size_t nx,
                        std::size_t ny, int width, int height) {
  static constexpr const char* kShades = " .:-=+*#%@";
  const int W = std::min<std::size_t>(width, nx);
  const int H = std::min<std::size_t>(height, ny);
  double vmin = std::numeric_limits<double>::infinity(), vmax = -vmin;
  for (double v : field) {
    if (!std::isfinite(v)) continue;
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  if (!std::isfinite(vmin) || vmax - vmin < 1e-300) { vmin = 0; vmax = 1; }
  std::ostringstream os;
  for (int r = H - 1; r >= 0; --r) {
    const std::size_t j = static_cast<std::size_t>(r) * (ny - 1) / std::max(1, H - 1);
    for (int c = 0; c < W; ++c) {
      const std::size_t i = static_cast<std::size_t>(c) * (nx - 1) / std::max(1, W - 1);
      const double v = field[i * ny + j];
      int shade = static_cast<int>((v - vmin) / (vmax - vmin) * 9.999);
      shade = std::clamp(shade, 0, 9);
      os << kShades[shade];
    }
    os << '\n';
  }
  os << "min=" << tick_label(vmin) << " max=" << tick_label(vmax) << '\n';
  return os.str();
}

bool write_gnuplot_script(const std::string& script_path,
                          const std::string& csv_path, std::size_t num_series,
                          const ChartOptions& opts) {
  std::ofstream f(script_path);
  if (!f) return false;
  std::string png = csv_path;
  const auto dot = png.find_last_of('.');
  if (dot != std::string::npos) png.erase(dot);
  png += ".png";
  f << "# generated by nsp::io::write_gnuplot_script\n"
    << "set terminal pngcairo size 900,600\n"
    << "set output '" << png << "'\n"
    << "set datafile separator ','\n"
    << "set key outside right\n"
    << "set grid\n";
  if (!opts.title.empty()) f << "set title '" << opts.title << "'\n";
  if (!opts.x_label.empty()) f << "set xlabel '" << opts.x_label << "'\n";
  if (!opts.y_label.empty()) f << "set ylabel '" << opts.y_label << "'\n";
  if (opts.log_x) f << "set logscale x\n";
  if (opts.log_y) f << "set logscale y\n";
  f << "plot ";
  for (std::size_t s = 0; s < num_series; ++s) {
    if (s) f << ", \\\n     ";
    f << "'" << csv_path << "' using 1:" << (s + 2)
      << " with linespoints title columnheader(" << (s + 2) << ")";
  }
  f << '\n';
  return f.good();
}

void write_series_csv(const std::string& path, const std::vector<Series>& series) {
  std::ofstream f(path);
  if (!f) return;
  f << "x";
  for (const auto& s : series) f << ',' << s.label;
  f << '\n';
  std::size_t n = 0;
  for (const auto& s : series) n = std::max(n, s.x.size());
  for (std::size_t i = 0; i < n; ++i) {
    bool have_x = false;
    for (const auto& s : series) {
      if (i < s.x.size()) {
        f << s.x[i];
        have_x = true;
        break;
      }
    }
    if (!have_x) f << "";
    for (const auto& s : series) {
      f << ',';
      if (i < s.y.size()) f << s.y[i];
    }
    f << '\n';
  }
}

}  // namespace nsp::io
