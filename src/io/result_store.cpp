#include "io/result_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/thread_safety.hpp"

namespace nsp::io {

namespace fs = std::filesystem;

std::string ResultStore::content_hash(const std::string& key) {
  // FNV-1a, 64-bit — the same construction exec uses for scenario
  // content hashes; reimplemented here because io sits below exec.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

ResultStore::ResultStore(const std::string& dir, std::uint64_t max_bytes)
    : root_((fs::path(dir) / "store").string()), max_bytes_(max_bytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);  // best-effort, like results_dir()
  check::MutexLock lock(mu_);
  load();
  evict_to_budget();
  rewrite_index();
}

std::string ResultStore::body_path(const std::string& hash) const {
  return (fs::path(root_) / (hash + ".json")).string();
}

void ResultStore::load() {
  std::ifstream in(fs::path(root_) / "store.index");
  if (!in.is_open()) return;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string seq_text, hash, bytes_text, key;
    if (!std::getline(fields, seq_text, '\t') ||
        !std::getline(fields, hash, '\t') ||
        !std::getline(fields, bytes_text, '\t') ||
        !std::getline(fields, key)) {
      continue;  // malformed line: skip, keep the rest of the index
    }
    Entry e;
    e.hash = hash;
    e.seq = std::strtoull(seq_text.c_str(), nullptr, 10);
    e.bytes = std::strtoull(bytes_text.c_str(), nullptr, 10);
    std::error_code ec;
    if (!fs::exists(body_path(e.hash), ec)) continue;  // body lost: drop
    total_bytes_ += e.bytes;
    if (e.seq >= next_seq_) next_seq_ = e.seq + 1;
    entries_[key] = e;
  }
}

void ResultStore::rewrite_index() {
  const fs::path index = fs::path(root_) / "store.index";
  const fs::path tmp = fs::path(root_) / "store.index.tmp";
  bool written = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return;  // read-only dir: store degrades to RAM
    for (const auto& [key, e] : entries_) {
      out << e.seq << '\t' << e.hash << '\t' << e.bytes << '\t' << key
          << '\n';
    }
    // Force the buffered lines to disk while the stream can still report
    // the outcome; renaming an unflushed tmp over the live index would
    // trade a good index for a truncated one on a full disk.
    out.flush();
    written = out.good();
  }
  std::error_code ec;
  if (!written) {
    fs::remove(tmp, ec);  // keep the previous index; retry next mutation
    return;
  }
  fs::rename(tmp, index, ec);
}

void ResultStore::evict_to_budget() {
  if (max_bytes_ == 0) return;
  while (total_bytes_ > max_bytes_ && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.seq < victim->second.seq) victim = it;
    }
    std::error_code ec;
    fs::remove(body_path(victim->second.hash), ec);
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
  }
}

bool ResultStore::get(const std::string& key, std::string* body) {
  check::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  std::ifstream in(body_path(it->second.hash), std::ios::binary);
  if (!in.is_open()) {
    // Body vanished underneath us (external cleanup): drop the entry.
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
    rewrite_index();
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *body = ss.str();
  it->second.seq = next_seq_++;
  rewrite_index();
  return true;
}

void ResultStore::put(const std::string& key, const std::string& body) {
  check::MutexLock lock(mu_);
  if (max_bytes_ != 0 && body.size() > max_bytes_) return;  // never fits
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  Entry e;
  e.hash = content_hash(key);
  e.bytes = body.size();
  e.seq = next_seq_++;
  {
    std::ofstream out(body_path(e.hash), std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return;  // read-only dir: skip persistence
    out << body;
  }
  total_bytes_ += e.bytes;
  entries_[key] = e;
  evict_to_budget();
  rewrite_index();
}

std::size_t ResultStore::size() const {
  check::MutexLock lock(mu_);
  return entries_.size();
}

std::uint64_t ResultStore::bytes() const {
  check::MutexLock lock(mu_);
  return total_bytes_;
}

}  // namespace nsp::io
