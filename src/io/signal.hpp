// Time-series analysis for the jet-noise workflow: the paper's
// application exists to produce time-accurate near-field histories that
// an acoustic analogy converts to radiated sound, so the natural
// post-processing is spectra of pressure probes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nsp::io {

/// Single-sided amplitude spectrum of a uniformly sampled record.
struct Spectrum {
  std::vector<double> frequency;  ///< cyclic frequency (1/time-unit)
  std::vector<double> amplitude;  ///< amplitude of each bin
};

/// Mean of a record.
double mean(std::span<const double> samples);

/// Root-mean-square of a record about its mean.
double rms(std::span<const double> samples);

/// Computes the single-sided amplitude spectrum (mean removed,
/// optionally Hann-windowed with amplitude correction). `dt_sample` is
/// the sampling interval. Bins run from 1/(N dt) to Nyquist.
Spectrum amplitude_spectrum(std::span<const double> samples, double dt_sample,
                            bool hann_window = true);

/// Amplitude and phase of the component at angular frequency `omega`
/// (single-bin Fourier projection over the whole record).
struct ToneEstimate {
  double amplitude = 0;
  double phase = 0;  ///< radians, cos convention
};
ToneEstimate project_tone(std::span<const double> samples, double dt_sample,
                          double omega);

/// Index of the largest-amplitude bin.
std::size_t dominant_bin(const Spectrum& s);

}  // namespace nsp::io
