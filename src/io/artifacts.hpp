// Where generated artifacts (CSV, JSON, gnuplot scripts) land.
//
// The bench and example binaries historically wrote output paths
// relative to whatever directory they were launched from; every
// artifact write is now routed through results_dir(), which honours the
// NSP_RESULTS_DIR environment variable and falls back to the current
// directory (preserving the old behaviour when the variable is unset).
#pragma once

#include <string>

namespace nsp::io {

/// The artifact output directory: $NSP_RESULTS_DIR if set (created on
/// demand), otherwise "." — the launch directory, as before.
std::string results_dir();

/// Joins `name` onto results_dir(). Names that are already absolute
/// paths are returned unchanged so callers can still opt out.
std::string artifact_path(const std::string& name);

}  // namespace nsp::io
