// ASCII chart rendering so the benchmark binaries can draw the paper's
// figures (log-log execution-time curves, bar charts, flow contours)
// directly in a terminal, alongside machine-readable CSV output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nsp::io {

/// One plotted curve: a label and (x, y) points.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Options for LineChart rendering.
struct ChartOptions {
  int width = 72;        ///< plot-area columns
  int height = 24;       ///< plot-area rows
  bool log_x = true;     ///< log10 x axis (the paper plots log-log)
  bool log_y = true;     ///< log10 y axis
  std::string x_label;   ///< axis caption under the chart
  std::string y_label;   ///< axis caption left of the chart (printed above)
  std::string title;
};

/// Renders one or more series as an ASCII line chart. Each series is
/// drawn with its own glyph (o, x, +, *, #, @, %, &) and listed in a
/// legend. Points with non-positive coordinates are skipped on log axes.
class LineChart {
 public:
  explicit LineChart(ChartOptions opts = {});

  /// Adds a curve; returns *this for chaining.
  LineChart& add(Series s);

  /// Renders to a string (multi-line, trailing newline).
  std::string str() const;

 private:
  ChartOptions opts_;
  std::vector<Series> series_;
};

/// Renders a labelled horizontal bar chart (used for Figure 13's
/// per-processor busy times). Bars are scaled to max_width columns.
std::string bar_chart(const std::string& title,
                      const std::vector<std::string>& labels,
                      const std::vector<double>& values, int max_width = 56,
                      const std::string& unit = "");

/// Renders a 2-D scalar field as an ASCII contour/intensity map (used to
/// preview the Figure 1 axial-momentum contours). `field` is row-major
/// with `nx` columns (axial) and `ny` rows (radial); row 0 prints at the
/// bottom (the jet axis).
std::string contour_map(const std::vector<double>& field, std::size_t nx,
                        std::size_t ny, int width = 100, int height = 26);

/// Writes series as CSV: header "x,label1,label2,..." with one row per
/// distinct x (series sampled at matching x indices must align).
void write_series_csv(const std::string& path, const std::vector<Series>& series);

/// Writes a ready-to-run gnuplot script that renders the CSV written by
/// write_series_csv into a PNG, using the given axis options (log-log by
/// default, like the paper's figures). Returns false on I/O failure.
///
///   io::write_series_csv("fig3.csv", series);
///   io::write_gnuplot_script("fig3.gp", "fig3.csv", series.size(), opts);
///   // then: gnuplot fig3.gp  ->  fig3.png
bool write_gnuplot_script(const std::string& script_path,
                          const std::string& csv_path, std::size_t num_series,
                          const ChartOptions& opts = {});

}  // namespace nsp::io
