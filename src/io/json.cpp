#include "io/json.hpp"

#include <cctype>
#include <cstdlib>

namespace nsp::io {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v && v->is_string()) ? v->text : fallback;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v && v->is_number()) ? v->number : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v && v->is_bool()) ? v->boolean : fallback;
}

namespace {

/// Recursive-descent parser over a borrowed string. Depth is bounded to
/// keep hostile wire input from overflowing the stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : text_(text), err_(err) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (err_ && err_->empty()) {
      *err_ = "json: " + what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out->kind = JsonValue::Kind::Null;
        return literal("null", 4);
      case 't':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = false;
        return literal("false", 5);
      case '"':
        out->kind = JsonValue::Kind::String;
        return parse_string(&out->text);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  /// Reads the four hex digits of a \uXXXX escape (pos_ just past the
  /// "\u") and advances past them.
  bool read_hex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<std::size_t>(i)];
      if (!std::isxdigit(static_cast<unsigned char>(h))) {
        return fail("bad hex digit in \\u escape");
      }
      value = value * 16 +
              static_cast<unsigned>(
                  h <= '9' ? h - '0'
                           : (std::tolower(static_cast<unsigned char>(h)) -
                              'a' + 10));
    }
    pos_ += 4;
    *code = value;
    return true;
  }

  /// Appends the UTF-8 encoding of a code point (valid range ensured by
  /// the surrogate handling in parse_string).
  static void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!read_hex4(&code)) return false;
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired low surrogate in \\u escape");
          }
          unsigned cp = code;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // A high surrogate is only meaningful as the first half of
            // a \uD800-\uDBFF + \uDC00-\uDFFF pair.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("high surrogate not followed by a \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!read_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("high surrogate not followed by a low surrogate");
            }
            cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits) return fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) return fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t expo = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == expo) return fail("digits required in exponent");
    }
    out->kind = JsonValue::Kind::Number;
    out->text = text_.substr(start, pos_ - start);
    out->number = std::strtod(out->text.c_str(), nullptr);
    return true;
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::Array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      skip_ws();
      if (!parse_value(&item, depth + 1)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::Object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected string key in object");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      // Duplicate keys keep the last value.
      bool replaced = false;
      for (auto& [name, existing] : out->members) {
        if (name == key) {
          existing = std::move(value);
          replaced = true;
          break;
        }
      }
      if (!replaced) out->members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out, std::string* err) {
  if (err) err->clear();
  *out = JsonValue{};
  Parser p(text, err);
  return p.parse(out);
}

}  // namespace nsp::io
