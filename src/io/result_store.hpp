// Content-addressed, size-capped result store under NSP_RESULTS_DIR.
//
// Before the serving daemon, NSP_RESULTS_DIR was a flat directory of
// named artifacts (CSV/JSON written through artifact_path()). The store
// adds a second, managed layer beneath it: completed RunResult bodies
// keyed by the scenario cache key, persisted across processes, with an
// LRU eviction policy bounded by a byte budget. The daemon consults it
// before running a batch; the batch CLI can warm it; a second daemon
// process started against the same directory serves hits from the first
// one's work.
//
// Layout (all under <dir>/store/):
//   <hash>.json   one entry body, filename = 16-hex-digit FNV-1a of the
//                 exact cache key (content addressing: identical keys
//                 collide to the same file by construction)
//   store.index   one line per entry: "<seq>\t<hash>\t<bytes>\t<key>",
//                 rewritten on every mutation. `seq` is a monotonic
//                 logical counter — recency without wall clocks, so
//                 eviction order is deterministic and replayable.
//
// Thread-safe; every operation takes the store mutex. Crash-safety is
// best-effort: the index is rewritten atomically (temp file + rename),
// and entries whose body file is missing at load are dropped.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "check/thread_safety.hpp"

namespace nsp::io {

/// A persistent key → JSON-body cache with LRU byte-capped eviction.
class ResultStore {
 public:
  /// Opens (creating if needed) the store under `dir`/store. Existing
  /// index and bodies are loaded; `max_bytes` caps the sum of body
  /// sizes (0 = unlimited). An over-budget existing store is trimmed
  /// immediately.
  ResultStore(const std::string& dir, std::uint64_t max_bytes);

  /// Looks up `key`; on a hit fills `*body`, bumps the entry's recency,
  /// and returns true.
  bool get(const std::string& key, std::string* body);

  /// Inserts or refreshes `key` with `body`, then evicts
  /// least-recently-used entries until the byte budget holds. A body
  /// larger than the whole budget is not admitted (the store would
  /// immediately evict it).
  void put(const std::string& key, const std::string& body);

  /// Number of entries currently resident.
  std::size_t size() const;

  /// Sum of resident body sizes in bytes.
  std::uint64_t bytes() const;

  /// The FNV-1a content hash used for body filenames, exposed for tests
  /// and tooling.
  static std::string content_hash(const std::string& key);

 private:
  struct Entry {
    std::string hash;     // body filename stem
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;  // logical recency; larger = more recent
  };

  void load() NSP_REQUIRES(mu_);
  void rewrite_index() NSP_REQUIRES(mu_);
  void evict_to_budget() NSP_REQUIRES(mu_);
  std::string body_path(const std::string& hash) const;

  std::string root_;             // <dir>/store
  std::uint64_t max_bytes_ = 0;  // 0 = unlimited
  mutable check::Mutex mu_;
  std::map<std::string, Entry> entries_ NSP_GUARDED_BY(mu_);  // key → entry
  std::uint64_t next_seq_ NSP_GUARDED_BY(mu_) = 1;
  std::uint64_t total_bytes_ NSP_GUARDED_BY(mu_) = 0;
};

}  // namespace nsp::io
