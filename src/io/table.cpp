#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "check/check.hpp"

namespace nsp::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  aligns_.assign(headers_.size(), Align::Right);
  if (!aligns_.empty()) aligns_[0] = Align::Left;
}

Table& Table::title(std::string t) {
  title_ = std::move(t);
  return *this;
}

Table& Table::align(std::vector<Align> aligns) {
  for (std::size_t i = 0; i < aligns.size() && i < aligns_.size(); ++i) {
    aligns_[i] = aligns[i];
  }
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  // Oversized rows are counted as violations and truncated; short rows
  // are legitimately padded.
  NSP_CHECK(cells.size() <= headers_.size(), "io.table.row_width");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::rule() {
  rows_.emplace_back();  // empty row encodes a rule
  return *this;
}

std::size_t Table::rows() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.empty() ? 0 : 1;
  return n;
}

namespace {

std::string pad(const std::string& s, std::size_t w, Align a) {
  if (s.size() >= w) return s;
  const std::size_t space = w - s.size();
  switch (a) {
    case Align::Left:
      return s + std::string(space, ' ');
    case Align::Right:
      return std::string(space, ' ') + s;
    case Align::Center: {
      const std::size_t l = space / 2;
      return std::string(l, ' ') + s + std::string(space - l, ' ');
    }
  }
  return s;
}

}  // namespace

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::size_t total = 0;
  for (std::size_t w : width) total += w;
  total += headers_.empty() ? 0 : 3 * (headers_.size() - 1);

  std::ostringstream os;
  if (!title_.empty()) {
    os << title_ << '\n' << std::string(std::max(total, title_.size()), '=') << '\n';
  }
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << " | ";
    os << pad(headers_[c], width[c], aligns_[c]);
  }
  os << '\n' << std::string(total, '-') << '\n';
  for (const auto& r : rows_) {
    if (r.empty()) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << " | ";
      os << pad(r[c], width[c], aligns_[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.str(); }

std::string format_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string format_sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
  return buf;
}

std::string format_si(double v) {
  const double a = std::fabs(v);
  char buf[64];
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string format_seconds(double s) {
  char buf[64];
  if (s >= 1e5 || (s > 0 && s < 1e-2)) {
    std::snprintf(buf, sizeof(buf), "%.3e s", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", s);
  }
  return buf;
}

std::string format_percent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * ratio);
  return buf;
}

std::string format_exact(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  for (std::size_t c = 0; c < header.size(); ++c) {
    std::fprintf(f, "%s%s", c ? "," : "", csv_escape(header[c]).c_str());
  }
  std::fprintf(f, "\n");
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < header.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string();
      std::fprintf(f, "%s%s", c ? "," : "", csv_escape(cell).c_str());
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

std::string json_records(const std::vector<JsonRecord>& records) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < records.size(); ++r) {
    os << "  {";
    for (std::size_t k = 0; k < records[r].size(); ++k) {
      if (k) os << ", ";
      os << '"' << json_escape(records[r][k].first)
         << "\": " << records[r][k].second;
    }
    os << '}' << (r + 1 < records.size() ? "," : "") << '\n';
  }
  os << "]\n";
  return os.str();
}

void write_json_records(const std::string& path,
                        const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  const std::string body = json_records(records);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace nsp::io
