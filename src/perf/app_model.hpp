// The application performance model: what one time step of the
// decomposed jet solver costs and communicates, per rank.
//
// The numbers are anchored to the paper's Table 1 (for the 250 x 100
// grid, 5000 steps, 16 processors):
//   Navier-Stokes: 145,000e6 total FP ops; per processor 80,000
//     start-ups (sends + receives) and 125 MB volume
//   Euler: 77,000e6 FP ops; 60,000 start-ups; 95 MB
// which per step and interior rank means 8 sends (16 start-ups) of
// 25.6 KB for Navier-Stokes and 6 sends (12) of 19.456 KB for Euler.
//
// A step is modelled as three compute phases (x-predictor, x-corrector,
// radial sweep + boundary work); the message exchanges of Section 5
// hang off the first two. Version 5 groups messages and sends at phase
// end; Version 6 overlaps interior computation with the waits; Version
// 7 unbundles the grouped sends into per-column messages injected as
// they are produced (less bursty, more start-ups).
#pragma once

#include <cstddef>
#include <vector>

#include "arch/kernel_profile.hpp"

namespace nsp::perf {

/// One message posted by a rank during a phase.
struct MessageSpec {
  /// Direction: -1/+1 = axial left/right neighbour; -2/+2 = radial
  /// down/up neighbour (2-D process grids only).
  int dir = +1;
  std::size_t bytes = 0;
  double inject_frac = 1.0;  ///< position within the phase's compute
                             ///< where the send is issued (V7 staggers)
};

/// One compute phase of a time step.
struct PhaseSpec {
  double compute_fraction = 0;  ///< share of the per-step CPU work
  std::vector<MessageSpec> sends;
};

struct AppModel {
  arch::Equations eq = arch::Equations::NavierStokes;
  arch::CodeVersion version = arch::CodeVersion::V5_CommonCollapse;
  int ni = 250;
  int nj = 100;
  int steps = 5000;
  arch::KernelProfile profile;   ///< per-point per-step operation mix
  std::vector<PhaseSpec> phases; ///< interior-rank schedule per step

  // Version 6 parameters: fraction of the next phase's compute that is
  // interior work executable before the halo arrives, and the loop/cache
  // penalty the paper blames for V6's lack of gain.
  double overlap_fraction = 0.0;
  double busy_penalty = 0.0;

  /// Process-grid width for 2-D decompositions (0 = 1-D axial chain,
  /// the paper's choice). With px > 0, ranks form a px x (nprocs/px)
  /// grid and MessageSpec::dir = +-2 addresses radial neighbours.
  int proc_grid_px = 0;

  /// Paper-anchored model for the given equations and code version.
  static AppModel paper(arch::Equations eq,
                        arch::CodeVersion v = arch::CodeVersion::V5_CommonCollapse,
                        int ni = 250, int nj = 100, int steps = 5000);

  /// 2-D (axial x radial) decomposition over a px x py process grid —
  /// the paper's future-work variant. Message sizes follow the block
  /// boundary lengths (axial halos carry nj/py points, radial halos
  /// ni/px points); the radial sweep gains its own exchange phase.
  static AppModel paper_grid(arch::Equations eq, int px, int py,
                             arch::CodeVersion v = arch::CodeVersion::V5_CommonCollapse,
                             int ni = 250, int nj = 100, int steps = 5000);

  /// Neighbour of `rank` in direction `dir` (see MessageSpec), or -1 if
  /// that side is a physical boundary.
  int peer(int nprocs, int rank, int dir) const;

  double points() const { return static_cast<double>(ni) * nj; }

  /// Total FP operations of the whole run (all ranks).
  double total_flops() const {
    return (profile.flops + profile.divides + profile.pow_calls) * points() *
           steps;
  }

  /// Sends per step issued by `rank` of `nprocs` (edge ranks skip the
  /// messages pointing outside).
  int sends_per_step(int nprocs, int rank) const;

  /// Bytes sent per step by `rank`.
  double bytes_per_step(int nprocs, int rank) const;

  /// A maximally-connected ("interior") rank of the decomposition.
  int interior_rank(int nprocs) const;

  /// Paper-style per-processor start-ups for the whole run (sends +
  /// receives, interior rank).
  double startups_per_proc(int nprocs) const;

  /// Paper-style per-processor communication volume in bytes (sent,
  /// interior rank).
  double volume_per_proc(int nprocs) const;
};

}  // namespace nsp::perf
