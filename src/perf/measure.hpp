// Builds an AppModel from *measured* behaviour of the live C++ solver,
// so a user can put their own workload (their grid, their equations,
// their kernel version) on the 1995 platforms instead of the paper's
// published Table 1 numbers.
#pragma once

#include "core/solver.hpp"
#include "perf/app_model.hpp"

namespace nsp::perf {

/// Result of instrumenting the live solver.
struct LiveMeasurement {
  double flops_per_point_step = 0;   ///< total FP ops / (ni*nj*steps)
  double divides_per_point_step = 0;
  int sends_per_step_interior = 0;   ///< interior-rank sends per step
  double bytes_per_step_interior = 0;
  /// Interior-rank wall-clock seconds per step spent blocked in
  /// receives during the probe run (core::CommCounter::wait_s) — the
  /// live quantity comm/compute overlap hides.
  double wait_s_per_step_interior = 0;
  int probe_steps = 0;
};

/// Runs a short instrumented serial solve plus a small live parallel
/// run and extracts the per-step costs. `probe_steps` controls the
/// measurement length (the schedule is periodic, so a few steps
/// suffice).
LiveMeasurement measure_live(const core::SolverConfig& cfg, int probe_steps = 4);

/// Converts a measurement into an AppModel for `steps` total steps on
/// the measured grid: the compute profile keeps the paper's memory-
/// behaviour shape (stride, working set) scaled to the measured flops;
/// the message schedule mirrors the live solver's (per-stage primitive
/// and flux exchanges).
AppModel model_from_measurement(const core::SolverConfig& cfg,
                                const LiveMeasurement& m, int steps);

}  // namespace nsp::perf
