#include "perf/replay.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "par/decomposition.hpp"
#include "arch/platform.hpp"
#include "fault/injector.hpp"
#include "sim/simulator.hpp"

namespace nsp::perf {

namespace {

/// Shared-memory DOALL execution (the Cray Y-MP): Amdahl scaling of the
/// vectorized step plus fork/join synchronization per parallel region.
ReplayResult replay_shared_memory(const AppModel& app,
                                  const arch::Platform& plat, int nprocs) {
  ReplayResult res;
  res.platform = plat.name;
  res.nprocs = nprocs;
  // Finite-vector-length derating: partitioning orthogonal to the
  // sweep keeps full-length vectors; partitioning along the sweep cuts
  // each processor's vectors to length/P.
  double vec_eff = 1.0;
  if (plat.doall_vector_length > 0) {
    const double len = plat.doall_partition_along_sweep
                           ? plat.doall_vector_length / nprocs
                           : plat.doall_vector_length;
    vec_eff = plat.cpu.vector_efficiency(len);
  }
  const double step_serial =
      plat.cpu.seconds(app.profile, app.points()) / vec_eff;
  const double f = plat.doall_parallel_fraction;
  const double sync = plat.doall_sync_s * plat.doall_regions_per_step;
  // DASH-style cc-NUMA: implicit communication through remote cache
  // misses on the two boundary columns of each processor's block.
  double numa = 0;
  if (plat.numa_remote_miss_s > 0 && nprocs > 1) {
    numa = 2.0 * app.nj * plat.numa_halo_lines_per_point *
           plat.numa_remote_miss_s;
  }
  const double step_par = step_serial * ((1.0 - f) + f / nprocs) + sync + numa;
  res.exec_time = step_par * app.steps;
  res.ranks.assign(static_cast<std::size_t>(nprocs), RankStats{});
  for (auto& r : res.ranks) {
    r.compute = (step_serial * f / nprocs + step_serial * (1.0 - f)) * app.steps;
    r.sw_overhead = sync * app.steps;
    r.finish = res.exec_time;
  }
  return res;
}

struct Msg {
  int dir;  // resolved to a peer rank at issue time
  std::size_t bytes;
};

struct Segment {
  double compute_s = 0;
  std::vector<Msg> sends;
};

constexpr int kPhases = 3;

/// Per-step schedule shared by every rank with the same decomposition
/// class. On the no-wrap process lattice a rank's segment layout,
/// expected arrivals, and compute splits depend only on (a) which of its
/// four sides are physical boundaries and (b) how many points it owns —
/// a handful of classes at any scale, so a 10^5-rank replay builds a
/// few schedules instead of 10^5 copies of one.
struct Schedule {
  std::vector<std::vector<Segment>> segments;            // per phase
  std::vector<int> expected_count;                       // per phase
  std::vector<std::vector<std::size_t>> expected_bytes;  // per phase
  double phase_compute[kPhases] = {0, 0, 0};
};

/// Arrivals are tracked in a fixed window of exchange keys ahead of the
/// rank's current (step, phase). A neighbour can run at most one
/// blocking exchange ahead, so the window never sees more than a few
/// live keys; the map this replaces cost an allocation plus an ordered
/// lookup per message.
constexpr int kArrivalWindow = 16;

struct Rank {
  int id = 0;
  const Schedule* sched = nullptr;

  int step = 0;
  int phase = 0;
  std::size_t seg = 0;
  double next_phase_reduction = 0;  // V6 overlap credit already spent
  int arrived[kArrivalWindow] = {};
  bool blocked = false;
  long blocked_key = 0;
  double blocked_since = 0;
  bool done = false;
  RankStats stats;
};

class Engine {
 public:
  Engine(const AppModel& app, const arch::Platform& plat, int nprocs,
         int sim_steps, fault::Injector* injector)
      : app_(app), plat_(plat), nprocs_(nprocs), sim_steps_(sim_steps),
        injector_(injector) {
    net_ = plat.make_network(sim_, std::max(2, nprocs));
    if (injector_) net_ = injector_->wrap(sim_, std::move(net_));
    build_ranks();
  }

  ReplayResult run() {
    for (auto& r : ranks_) begin_phase(r);
    // Crash specs run a heartbeat ring through the same network model,
    // so detector traffic contends with the halo exchanges (staggered
    // first beats keep a shared medium from seeing synchronized
    // bursts). The chain stops once every rank has finished.
    if (injector_ && injector_->spec().crash_rate_per_hour > 0 &&
        nprocs_ >= 2) {
      const double period = injector_->spec().heartbeat_period_s;
      for (int n = 0; n < nprocs_; ++n) {
        sim_.after(period * n / nprocs_, [this, n] { beat(n); });
      }
    }
    sim_.run();
    ReplayResult res;
    res.platform = plat_.name;
    res.nprocs = nprocs_;
    const double scale =
        static_cast<double>(app_.steps) / static_cast<double>(sim_steps_);
    for (auto& r : ranks_) {
      RankStats s = r.stats;
      s.compute *= scale;
      s.sw_overhead *= scale;
      s.wait *= scale;
      s.finish *= scale;
      s.sends = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(s.sends) * scale));
      s.recvs = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(s.recvs) * scale));
      s.bytes_sent *= scale;
      res.exec_time = std::max(res.exec_time, s.finish);
      res.ranks.push_back(s);
    }
    return res;
  }

 private:
  /// Points owned by rank r under the model's decomposition.
  double rank_points(int r) const {
    if (app_.proc_grid_px > 0) {
      const int px = app_.proc_grid_px;
      const auto xb = par::axial_blocks(app_.ni, px);
      const auto jb = par::axial_blocks(app_.nj, nprocs_ / px);
      const auto& bx = xb[static_cast<std::size_t>(r % px)];
      const auto& bj = jb[static_cast<std::size_t>(r / px)];
      return static_cast<double>(bx.end - bx.begin) * (bj.end - bj.begin);
    }
    const auto blocks = par::axial_blocks(app_.ni, nprocs_);
    return static_cast<double>(blocks[static_cast<std::size_t>(r)].end -
                               blocks[static_cast<std::size_t>(r)].begin) *
           app_.nj;
  }

  /// Builds (or returns) the shared schedule of rank `r`'s class; `pts`
  /// is the rank's owned point count.
  const Schedule* schedule_for(int r, double pts) {
    int mask = 0;
    for (int d : {-1, +1, -2, +2}) {
      mask = (mask << 1) | (app_.peer(nprocs_, r, d) >= 0 ? 1 : 0);
    }
    auto [it, fresh] = schedules_.try_emplace(
        std::make_pair(mask, static_cast<long long>(pts)));
    if (!fresh) return it->second.get();
    auto sched = std::make_unique<Schedule>();
    Schedule& sk = *sched;
    const double step_s =
        plat_.cpu.seconds(app_.profile, pts) * (1.0 + app_.busy_penalty);
    sk.segments.resize(kPhases);
    sk.expected_count.assign(kPhases, 0);
    sk.expected_bytes.resize(kPhases);
    for (int ph = 0; ph < kPhases; ++ph) {
      const PhaseSpec& spec = app_.phases[static_cast<std::size_t>(ph)];
      sk.phase_compute[ph] = spec.compute_fraction * step_s;
      // Partition the phase compute at the injection fractions.
      std::vector<double> cuts{0.0};
      for (const MessageSpec& m : spec.sends) cuts.push_back(m.inject_frac);
      cuts.push_back(1.0);
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
        Segment seg;
        seg.compute_s = (cuts[k + 1] - cuts[k]) * sk.phase_compute[ph];
        for (const MessageSpec& m : spec.sends) {
          if (m.inject_frac == cuts[k + 1] &&
              app_.peer(nprocs_, r, m.dir) >= 0) {
            seg.sends.push_back(Msg{m.dir, m.bytes});
          }
        }
        sk.segments[static_cast<std::size_t>(ph)].push_back(seg);
      }
      // Expected arrivals: neighbours' messages pointing at us in the
      // same phase. The lattice has no wrap-around, so this depends
      // only on the class's boundary mask — any rank of the class sees
      // the same counts and byte order.
      for (int d : {-1, +1, -2, +2}) {
        const int nb = app_.peer(nprocs_, r, d);
        if (nb < 0) continue;
        for (const MessageSpec& m : spec.sends) {
          if (app_.peer(nprocs_, nb, m.dir) == r) {
            sk.expected_count[ph] += 1;
            sk.expected_bytes[static_cast<std::size_t>(ph)].push_back(m.bytes);
          }
        }
      }
    }
    it->second = std::move(sched);
    return it->second.get();
  }

  void build_ranks() {
    ranks_.resize(static_cast<std::size_t>(nprocs_));
    for (int r = 0; r < nprocs_; ++r) {
      Rank& rk = ranks_[static_cast<std::size_t>(r)];
      rk.id = r;
      rk.sched = schedule_for(r, rank_points(r));
    }
  }

  static long key_of(int step, int phase) { return long{step} * kPhases + phase; }

  void begin_phase(Rank& r) {
    r.seg = 0;
    run_segment(r);
  }

  void run_segment(Rank& r) {
    const auto& segs = r.sched->segments[static_cast<std::size_t>(r.phase)];
    if (r.seg >= segs.size()) {
      end_phase(r);
      return;
    }
    double c = segs[r.seg].compute_s;
    if (r.next_phase_reduction > 0) {
      const double used = std::min(c, r.next_phase_reduction);
      c -= used;
      r.next_phase_reduction -= used;
    }
    // Straggler dilation: a rank inside a slowdown window takes factor
    // times longer on its compute segments (the factor is sampled at
    // segment start — windows are long relative to segments).
    if (injector_) c *= injector_->compute_factor(r.id, sim_.now());
    sim_.after(c, [this, &r, c]() {
      r.stats.compute += c;
      issue_sends(r, 0);
    });
  }

  void issue_sends(Rank& r, std::size_t idx) {
    const auto& seg =
        r.sched->segments[static_cast<std::size_t>(r.phase)][r.seg];
    if (idx >= seg.sends.size()) {
      ++r.seg;
      run_segment(r);
      return;
    }
    const Msg m = seg.sends[idx];
    const int peer = app_.peer(nprocs_, r.id, m.dir);
    const double cpu = plat_.msglayer.send_cpu_s(m.bytes) * plat_.sw_speed_factor;
    sim_.after(cpu, [this, &r, peer, bytes = m.bytes, idx, cpu]() {
      r.stats.sw_overhead += cpu;
      ++r.stats.sends;
      r.stats.bytes_sent += static_cast<double>(bytes);
      const long key = key_of(r.step, r.phase);
      const int dst = peer;
      const double sent_at = sim_.now();
      auto delivered = [this, dst, key, bytes]() {
        sim_.after(plat_.msglayer.inflight_latency_s * plat_.sw_speed_factor,
                   [this, dst, key, bytes]() { on_arrival(dst, key, bytes); });
      };
      if (plat_.msglayer.blocking_send) {
        // The constrained MPL blocking send: the CPU stalls until the
        // payload has been delivered to the destination adapter.
        net_->transmit(r.id, dst, bytes, [this, &r, idx, sent_at,
                                          delivered]() {
          r.stats.wait += sim_.now() - sent_at;
          delivered();
          issue_sends(r, idx + 1);
        });
      } else {
        net_->transmit(r.id, dst, bytes, delivered);
        issue_sends(r, idx + 1);
      }
    });
  }

  void end_phase(Rank& r) {
    const long key = key_of(r.step, r.phase);
    const int expected =
        r.sched->expected_count[static_cast<std::size_t>(r.phase)];
    if (expected == 0) {
      advance_phase(r);
      return;
    }
    // Overlap (Version 6 and the modern overlap_comm axis): compute the
    // interior part of the next phase before blocking on the halos —
    // but only when there is a wait to hide and a next phase to draw
    // the credit from. Burning credit at the very last exchange charges
    // work no phase ever repays, and the steps/sim_steps scaling then
    // amplifies that half-phase into a visible per-run penalty. If
    // every expected message already arrived, skipping the credit
    // avoids pushing the next phase's sends later for zero gain.
    const bool has_next = r.phase + 1 < kPhases || r.step + 1 < sim_steps_;
    if (app_.overlap_fraction > 0 && r.next_phase_reduction == 0 &&
        has_next) {
      if (!overflow_.empty()) migrate_overflow(r, key);
      if (slot(r, key) < expected) {
        const int nph = (r.phase + 1) % kPhases;
        const double credit =
            app_.overlap_fraction * r.sched->phase_compute[nph];
        r.next_phase_reduction = credit;
        sim_.after(credit, [this, &r, key, expected, credit]() {
          r.stats.compute += credit;
          wait_for(r, key, expected);
        });
        return;
      }
    }
    wait_for(r, key, expected);
  }

  int& slot(Rank& r, long key) {
    return r.arrived[static_cast<std::size_t>(key) % kArrivalWindow];
  }

  /// Moves any banked beyond-window arrivals whose keys entered the
  /// window. The overflow map is empty in every normal run (a neighbour
  /// can only run one blocking exchange ahead); it exists so an exotic
  /// phase mix degrades to the old map behaviour instead of deadlocking.
  void migrate_overflow(Rank& r, long cur) {
    auto it = overflow_.lower_bound(std::make_pair(r.id, cur));
    while (it != overflow_.end() && it->first.first == r.id &&
           it->first.second < cur + kArrivalWindow) {
      slot(r, it->first.second) += it->second;
      it = overflow_.erase(it);
    }
  }

  void wait_for(Rank& r, long key, int expected) {
    if (!overflow_.empty()) migrate_overflow(r, key);
    int& n = slot(r, key);
    if (n >= expected) {
      n = 0;
      consume_recvs(r);
      return;
    }
    r.blocked = true;
    r.blocked_key = key;
    r.blocked_since = sim_.now();
  }

  void consume_recvs(Rank& r) {
    const auto& bytes =
        r.sched->expected_bytes[static_cast<std::size_t>(r.phase)];
    if (bytes.empty()) {
      advance_phase(r);
      return;
    }
    // One fused event for the whole receive chain. The arrival time and
    // the stats accumulate with the same left-to-right association the
    // per-message chain used, so the result is bit-identical.
    double t = sim_.now();
    for (const std::size_t b : bytes) {
      t += plat_.msglayer.recv_cpu_s(b) * plat_.sw_speed_factor;
    }
    sim_.at(t, [this, &r]() {
      const auto& bs =
          r.sched->expected_bytes[static_cast<std::size_t>(r.phase)];
      for (const std::size_t b : bs) {
        r.stats.sw_overhead += plat_.msglayer.recv_cpu_s(b) * plat_.sw_speed_factor;
        ++r.stats.recvs;
      }
      advance_phase(r);
    });
  }

  void advance_phase(Rank& r) {
    ++r.phase;
    if (r.phase == kPhases) {
      r.phase = 0;
      ++r.step;
      if (r.step >= sim_steps_) {
        r.done = true;
        ++done_ranks_;
        r.stats.finish = sim_.now();
        return;
      }
    }
    begin_phase(r);
  }

  void beat(int n) {
    if (done_ranks_ >= nprocs_) return;  // run over: the ring winds down
    injector_->note_heartbeat();
    net_->transmit(
        n, (n + 1) % nprocs_,
        static_cast<std::size_t>(injector_->spec().heartbeat_bytes), [] {});
    sim_.after(injector_->spec().heartbeat_period_s,
               [this, n] { beat(n); });
  }

  void on_arrival(int dst, long key, std::size_t /*bytes*/) {
    Rank& r = ranks_[static_cast<std::size_t>(dst)];
    const long cur = key_of(r.step, r.phase);
    // Stale arrival for an exchange the rank already consumed (possible
    // only under fault injection); the old map banked these in entries
    // nothing ever read again.
    if (key < cur) return;
    if (key >= cur + kArrivalWindow) {
      ++overflow_[std::make_pair(dst, key)];
      return;
    }
    int& n = slot(r, key);
    ++n;
    if (r.blocked && r.blocked_key == key &&
        n >= r.sched->expected_count[static_cast<std::size_t>(r.phase)]) {
      r.blocked = false;
      r.stats.wait += sim_.now() - r.blocked_since;
      n = 0;
      consume_recvs(r);
    }
  }

  const AppModel& app_;
  const arch::Platform& plat_;
  int nprocs_;
  int sim_steps_;
  fault::Injector* injector_;
  sim::Simulator sim_;
  std::unique_ptr<arch::NetworkModel> net_;
  std::vector<Rank> ranks_;
  std::map<std::pair<int, long long>, std::unique_ptr<Schedule>> schedules_;
  std::map<std::pair<int, long>, int> overflow_;  // (rank, key) -> count
  int done_ranks_ = 0;
};

}  // namespace

ReplayResult replay(const AppModel& app, const arch::Platform& platform,
                    int nprocs, const ReplayOptions& opts) {
  if (platform.shared_memory) {
    return replay_shared_memory(app, platform, nprocs);
  }
  Engine engine(app, platform, nprocs, opts.sim_steps, opts.injector);
  return engine.run();
}

}  // namespace nsp::perf
