#include "perf/measure.hpp"

#include <algorithm>

#include "par/subdomain_solver.hpp"
#include "arch/kernel_profile.hpp"
#include "core/solver.hpp"

namespace nsp::perf {

LiveMeasurement measure_live(const core::SolverConfig& cfg, int probe_steps) {
  LiveMeasurement m;
  m.probe_steps = std::max(1, probe_steps);

  // Serial instrumented run for the arithmetic.
  core::SolverConfig scfg = cfg;
  scfg.count_flops = true;
  scfg.num_threads = 1;
  core::Solver s(scfg);
  s.initialize();
  s.run(m.probe_steps);
  const double pts = static_cast<double>(cfg.grid.ni) * cfg.grid.nj;
  m.flops_per_point_step = s.flops().total() / (pts * m.probe_steps);
  m.divides_per_point_step = s.flops().divides / (pts * m.probe_steps);

  // Small live parallel run for the message schedule. Use 4 ranks so
  // rank 1 is interior; subtract its single gather message.
  const int nprocs = 4;
  if (cfg.grid.ni >= nprocs * 2 * core::kGhost) {
    std::vector<core::CommCounter> ctr;
    par::run_parallel_jet(cfg, nprocs, m.probe_steps, &ctr);
    const auto blocks = par::axial_blocks(cfg.grid.ni, nprocs);
    const double gather_bytes =
        static_cast<double>(blocks[1].end - blocks[1].begin) * cfg.grid.nj *
        core::StateField::kComponents * sizeof(double);
    m.sends_per_step_interior = static_cast<int>(
        (static_cast<double>(ctr[1].sends) - 1.0) / m.probe_steps);
    m.bytes_per_step_interior =
        (ctr[1].bytes_sent - gather_bytes) / m.probe_steps;
    m.wait_s_per_step_interior = ctr[1].wait_s / m.probe_steps;
  }
  return m;
}

AppModel model_from_measurement(const core::SolverConfig& cfg,
                                const LiveMeasurement& m, int steps) {
  AppModel app;
  app.eq = cfg.viscous ? arch::Equations::NavierStokes : arch::Equations::Euler;
  app.version = static_cast<arch::CodeVersion>(cfg.variant);
  app.ni = cfg.grid.ni;
  app.nj = cfg.grid.nj;
  app.steps = steps;

  // Memory-behaviour shape from the matching paper profile, scaled to
  // the measured arithmetic density.
  app.profile = arch::KernelProfile::make(app.eq, app.version, cfg.grid.nj);
  const double base = app.profile.flops + app.profile.divides + app.profile.pow_calls;
  const double scale = base > 0 ? m.flops_per_point_step / base : 1.0;
  app.profile.flops *= scale;
  app.profile.divides = m.divides_per_point_step;
  app.profile.pow_calls *= scale;
  app.profile.mem_accesses *= scale;
  app.profile.name += " (measured live)";

  // Message schedule: distribute the measured sends over the two x
  // phases symmetrically; the radial phase carries the remainder (the
  // live Navier-Stokes solver exchanges primitives there too).
  const int sends = std::max(0, m.sends_per_step_interior);
  const std::size_t bytes_each =
      sends > 0 ? static_cast<std::size_t>(m.bytes_per_step_interior / sends)
                : 0;
  PhaseSpec ph0, ph1, ph2;
  ph0.compute_fraction = 0.30;
  ph1.compute_fraction = 0.30;
  ph2.compute_fraction = 0.40;
  for (int k = 0; k < sends; ++k) {
    MessageSpec msg{k % 2 == 0 ? -1 : +1, bytes_each, 1.0};
    (k % 3 == 0 ? ph0 : (k % 3 == 1 ? ph1 : ph2)).sends.push_back(msg);
  }
  app.phases = {ph0, ph1, ph2};
  // Mirror the live solver's schedule choice: with overlap_comm the
  // subdomain solvers run interior columns while halos are in flight,
  // so the replay gets the same interior-work credit the Scenario
  // overlap axis grants (and no Version 6 cache penalty — the live
  // kernels pay none).
  if (cfg.overlap_comm) {
    app.overlap_fraction = std::max(app.overlap_fraction, 0.5);
    app.busy_penalty = 0.0;
  }
  return app;
}

}  // namespace nsp::perf
