#include "perf/app_model.hpp"
#include "arch/kernel_profile.hpp"

#include <cmath>

namespace nsp::perf {

namespace {

/// Splits a grouped message into `n` pieces injected progressively
/// through the phase (Version 7's one-column-at-a-time sends).
void split_message(std::vector<MessageSpec>& out, const MessageSpec& m, int n) {
  for (int k = 0; k < n; ++k) {
    MessageSpec piece = m;
    piece.bytes = m.bytes / n;
    piece.inject_frac = 0.5 + 0.5 * (k + 1) / n;
    out.push_back(piece);
  }
}

}  // namespace

AppModel AppModel::paper(arch::Equations eq, arch::CodeVersion v, int ni,
                         int nj, int steps) {
  AppModel m;
  m.eq = eq;
  m.version = v;
  m.ni = ni;
  m.nj = nj;
  m.steps = steps;
  m.profile = arch::KernelProfile::make(eq, v, nj);

  const bool ns = eq == arch::Equations::NavierStokes;
  // Message sizes in bytes per radial point (doubles are 8 bytes):
  // grouped velocity+temperature columns and the two combined flux
  // columns. At nj = 100 these give the Table 1 volumes exactly.
  const double scale = static_cast<double>(nj);
  const std::size_t prim_bytes =
      static_cast<std::size_t>((ns ? 24.0 : 17.28) * scale);
  const std::size_t flux_bytes = static_cast<std::size_t>(40.0 * scale);

  // Three phases: x-predictor, x-corrector, radial sweep + boundaries.
  PhaseSpec ph0, ph1, ph2;
  ph0.compute_fraction = 0.30;
  ph1.compute_fraction = 0.30;
  ph2.compute_fraction = 0.40;

  std::vector<MessageSpec> grouped0, grouped1;
  if (ns) {
    grouped0 = {{-1, prim_bytes, 1.0}, {+1, prim_bytes, 1.0},
                {-1, flux_bytes, 1.0}, {+1, flux_bytes, 1.0}};
    grouped1 = grouped0;
  } else {
    grouped0 = {{-1, flux_bytes, 1.0}, {+1, flux_bytes, 1.0},
                {-1, prim_bytes, 1.0}};
    grouped1 = {{-1, flux_bytes, 1.0}, {+1, flux_bytes, 1.0},
                {+1, prim_bytes, 1.0}};
  }

  const bool unbundled = v == arch::CodeVersion::V7_UnbundledSends;
  const auto emit = [&](PhaseSpec& ph, const std::vector<MessageSpec>& msgs) {
    for (const MessageSpec& g : msgs) {
      if (unbundled) {
        // Primitives split into three per-variable sends, fluxes into
        // one send per column.
        split_message(ph.sends, g, g.bytes == flux_bytes ? 2 : 3);
      } else {
        ph.sends.push_back(g);
      }
    }
  };
  emit(ph0, grouped0);
  emit(ph1, grouped1);

  m.phases = {ph0, ph1, ph2};

  if (v == arch::CodeVersion::V6_OverlapComm) {
    // Only a modest slice of the next phase is boundary-independent once
    // the loops are split, and the split costs busy time through loop
    // setup and lost temporal locality — which is why the paper found
    // Version 6 "very close to" (or worse than) Version 5.
    m.overlap_fraction = 0.15;
    m.busy_penalty = 0.06;
  }
  return m;
}

AppModel AppModel::paper_grid(arch::Equations eq, int px, int py,
                              arch::CodeVersion v, int ni, int nj, int steps) {
  AppModel m = paper(eq, v, ni, nj, steps);
  m.proc_grid_px = px;
  const bool ns = eq == arch::Equations::NavierStokes;
  // Per-point message weights as in paper(): 24 B/point for the bundled
  // primitives, 40 B/point for the two combined flux columns/rows.
  const double x_pts = static_cast<double>(nj) / py;
  const double r_pts = static_cast<double>(ni) / px;
  const auto bytes_prim_x = static_cast<std::size_t>((ns ? 24.0 : 17.28) * x_pts);
  const auto bytes_flux_x = static_cast<std::size_t>(40.0 * x_pts);
  const auto bytes_prim_r = static_cast<std::size_t>((ns ? 24.0 : 17.28) * r_pts);
  const auto bytes_flux_r = static_cast<std::size_t>(40.0 * r_pts);

  PhaseSpec ph0, ph1, ph2;
  ph0.compute_fraction = 0.30;
  ph1.compute_fraction = 0.30;
  ph2.compute_fraction = 0.40;
  for (PhaseSpec* ph : {&ph0, &ph1}) {
    ph->sends.push_back({-1, bytes_prim_x, 1.0});
    ph->sends.push_back({+1, bytes_prim_x, 1.0});
    if (ns) {
      // Viscous stresses need radial halos during the axial sweep too.
      ph->sends.push_back({-2, bytes_prim_r, 1.0});
      ph->sends.push_back({+2, bytes_prim_r, 1.0});
    }
    ph->sends.push_back({-1, bytes_flux_x, 1.0});
    ph->sends.push_back({+1, bytes_flux_x, 1.0});
  }
  // The radial sweep, local under a 1-D axial cut, now exchanges its
  // own flux rows.
  ph2.sends.push_back({-2, bytes_flux_r, 1.0});
  ph2.sends.push_back({+2, bytes_flux_r, 1.0});
  m.phases = {ph0, ph1, ph2};
  return m;
}

int AppModel::peer(int nprocs, int rank, int dir) const {
  if (proc_grid_px <= 0) {
    if (dir != -1 && dir != +1) return -1;
    const int p = rank + dir;
    return (p >= 0 && p < nprocs) ? p : -1;
  }
  const int px = proc_grid_px;
  const int py = nprocs / px;
  const int rx = rank % px;
  const int ry = rank / px;
  switch (dir) {
    case -1: return rx > 0 ? rank - 1 : -1;
    case +1: return rx < px - 1 ? rank + 1 : -1;
    case -2: return ry > 0 ? rank - px : -1;
    case +2: return ry < py - 1 ? rank + px : -1;
    default: return -1;
  }
}

int AppModel::sends_per_step(int nprocs, int rank) const {
  int n = 0;
  for (const PhaseSpec& ph : phases) {
    for (const MessageSpec& s : ph.sends) {
      if (peer(nprocs, rank, s.dir) >= 0) ++n;
    }
  }
  return n;
}

double AppModel::bytes_per_step(int nprocs, int rank) const {
  double b = 0;
  for (const PhaseSpec& ph : phases) {
    for (const MessageSpec& s : ph.sends) {
      if (peer(nprocs, rank, s.dir) >= 0) b += static_cast<double>(s.bytes);
    }
  }
  return b;
}

int AppModel::interior_rank(int nprocs) const {
  if (proc_grid_px <= 0) return nprocs > 2 ? 1 : 0;
  // The most connected rank of the grid: center-ish.
  const int px = proc_grid_px;
  const int py = nprocs / px;
  const int rx = px > 2 ? 1 : 0;
  const int ry = py > 2 ? 1 : 0;
  return ry * px + rx;
}

double AppModel::startups_per_proc(int nprocs) const {
  if (nprocs < 2) return 0;
  const int rank = interior_rank(nprocs);
  // Interior ranks receive as many messages as they send (symmetric
  // schedule), so start-ups = 2 * sends.
  return 2.0 * sends_per_step(nprocs, rank) * steps;
}

double AppModel::volume_per_proc(int nprocs) const {
  if (nprocs < 2) return 0;
  return bytes_per_step(nprocs, interior_rank(nprocs)) * steps;
}

}  // namespace nsp::perf
