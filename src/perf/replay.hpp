// Replays the application model through the discrete-event platform
// simulator and reports the two additive components the paper plots:
// processor busy time (computation + message-layer software overheads)
// and non-overlapped communication time (time blocked waiting for
// messages, including blocking-send stalls).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "fault/injector.hpp"
#include "perf/app_model.hpp"

namespace nsp::perf {

/// Per-rank outcome of a replay.
struct RankStats {
  double compute = 0;      ///< pure computation seconds
  double sw_overhead = 0;  ///< message-layer CPU cost (send + recv)
  double wait = 0;         ///< blocked on messages (non-overlapped comm)
  double finish = 0;       ///< completion time of the rank
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  double bytes_sent = 0;

  /// The paper's "processor busy time".
  double busy() const { return compute + sw_overhead; }
};

/// The raw per-rank outcome of one replay. Aggregate summary statistics
/// (average busy time, total messages, ...) live in exec::RunResult's
/// named metrics — see exec/run_result.hpp.
struct ReplayResult {
  std::string platform;
  int nprocs = 1;
  double exec_time = 0;  ///< max rank finish time (total execution time)
  std::vector<RankStats> ranks;
};

struct ReplayOptions {
  /// Steps actually simulated; results are scaled to app.steps. The
  /// schedule is periodic, so a few hundred steps capture the steady
  /// state (including sustained network overload, whose cost is linear
  /// in steps).
  int sim_steps = 400;
  /// Optional fault injection: the network model is wrapped in the
  /// injector's decorator (drops/corruption/degrade windows with
  /// retransmission) and compute segments are dilated through straggler
  /// windows. When the spec carries a crash rate, each rank additionally
  /// beats a heartbeat frame to its ring successor every
  /// heartbeat_period_s *through the same network model*, so detector
  /// traffic contends with halo exchanges and is priced like any other
  /// message (stats().heartbeats counts the beats). The injector must
  /// outlive the replay; its FaultStats accumulate the injected
  /// timeline. Null = fault-free, byte-identical to a build without the
  /// fault subsystem.
  fault::Injector* injector = nullptr;
};

/// Runs the model on `nprocs` ranks of the platform. Shared-memory
/// platforms (the Y-MP) are evaluated with the DOALL analytic model;
/// message-passing platforms run through the event simulator.
ReplayResult replay(const AppModel& app, const arch::Platform& platform,
                    int nprocs, const ReplayOptions& opts = {});

}  // namespace nsp::perf
