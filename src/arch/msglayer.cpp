#include "arch/msglayer.hpp"

namespace nsp::arch {

MsgLayerModel MsgLayerModel::pvm_lace() {
  MsgLayerModel m;
  m.name = "PVM 3.2.2";
  m.send_overhead_s = 1.2e-3;
  m.recv_overhead_s = 1.0e-3;
  m.per_byte_cpu_s = 33e-9;  // ~2 copies at ~60 MB/s
  // Daemon-routed UDP: application -> pvmd -> pvmd -> application, with
  // fragmentation and acknowledgements. Multi-KB messages spend tens of
  // milliseconds in the protocol path on a 1993 workstation.
  m.inflight_latency_s = 18e-3;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::pvme_sp() {
  MsgLayerModel m;
  m.name = "PVMe";
  m.send_overhead_s = 7.0e-3;
  m.recv_overhead_s = 5.5e-3;
  m.per_byte_cpu_s = 40e-9;
  m.inflight_latency_s = 0.8e-3;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::mpl_sp() {
  MsgLayerModel m;
  m.name = "MPL";
  m.send_overhead_s = 0.45e-3;
  m.recv_overhead_s = 0.35e-3;
  m.per_byte_cpu_s = 12e-9;
  m.inflight_latency_s = 0.1e-3;
  m.blocking_send = true;  // the paper could only use (constrained) blocking sends
  return m;
}

MsgLayerModel MsgLayerModel::pvm_t3d() {
  MsgLayerModel m;
  m.name = "PVM (T3D)";
  m.send_overhead_s = 0.25e-3;
  m.recv_overhead_s = 0.20e-3;
  m.per_byte_cpu_s = 8e-9;
  m.inflight_latency_s = 0.05e-3;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::shmem_t3d() {
  MsgLayerModel m;
  m.name = "SHMEM (T3D)";
  m.send_overhead_s = 5e-6;   // one-sided put setup
  m.recv_overhead_s = 2e-6;   // synchronization check
  m.per_byte_cpu_s = 2e-9;
  m.inflight_latency_s = 3e-6;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::mpi_modern() {
  MsgLayerModel m;
  m.name = "MPI (modern)";
  m.send_overhead_s = 1.5e-6;   // eager pt2pt software path
  m.recv_overhead_s = 1.5e-6;
  m.per_byte_cpu_s = 0.12e-9;   // one memcpy at ~8 GB/s
  m.inflight_latency_s = 1.0e-6;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::mpi_manycore() {
  MsgLayerModel m;
  m.name = "MPI (many-core)";
  // The same MPI stack clocked on a slow in-order-ish core: overheads
  // roughly double, copies run at the core's modest scalar rate.
  m.send_overhead_s = 3.5e-6;
  m.recv_overhead_s = 3.5e-6;
  m.per_byte_cpu_s = 0.35e-9;
  m.inflight_latency_s = 1.5e-6;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::mpi_gpu() {
  MsgLayerModel m;
  m.name = "MPI (GPU-aware)";
  // Device-buffer sends: stream synchronization and launch overheads
  // dominate the start-up; the copy itself is DMA-offloaded.
  m.send_overhead_s = 6.0e-6;
  m.recv_overhead_s = 6.0e-6;
  m.per_byte_cpu_s = 0.02e-9;
  m.inflight_latency_s = 2.0e-6;
  m.blocking_send = false;
  return m;
}

MsgLayerModel MsgLayerModel::shared_memory() {
  MsgLayerModel m;
  m.name = "DOALL (shared memory)";
  return m;
}

}  // namespace nsp::arch
