// Message-passing library cost models.
//
// The paper stresses that 1995 message-passing overheads came "mainly
// from the multiple times that data to be communicated is copied and
// from the context switching overheads ... in transferring a message
// between the application level and the physical layer" (Section 7.2),
// and compares PVM 3.2.2 on LACE, PVMe and MPL on the IBM SP, and Cray's
// customized PVM on the T3D (Figs 11-12).
//
// The model charges the *sending CPU* send_overhead + per-byte copy
// cost, the *receiving CPU* recv_overhead + per-byte copy cost (both are
// part of "processor busy time" in the paper's decomposition), and the
// *message* an in-flight protocol latency (daemon hops, fragmentation,
// acknowledgements) that is not attributable to either CPU. A blocking
// send additionally stalls the sender until the payload has left for
// the destination (the constrained MPL send the authors were forced to
// use).
#pragma once

#include <string>

namespace nsp::arch {

struct MsgLayerModel {
  std::string name;
  double send_overhead_s = 0;   ///< sender CPU time per send
  double recv_overhead_s = 0;   ///< receiver CPU time per receive
  double per_byte_cpu_s = 0;    ///< CPU copy cost per byte (each side)
  double inflight_latency_s = 0;///< protocol latency in flight
  bool blocking_send = false;   ///< sender stalls until network delivery

  /// Sender CPU cost for one message of `bytes` payload.
  double send_cpu_s(std::size_t bytes) const {
    return send_overhead_s + per_byte_cpu_s * static_cast<double>(bytes);
  }
  /// Receiver CPU cost for one message of `bytes` payload.
  double recv_cpu_s(std::size_t bytes) const {
    return recv_overhead_s + per_byte_cpu_s * static_cast<double>(bytes);
  }

  /// "Off-the-shelf" PVM 3.2.2 as run on the LACE cluster: daemon-routed
  /// UDP with multiple copies per message.
  static MsgLayerModel pvm_lace();
  /// IBM's PVMe on the SP: PVM 3.2 semantics over the switch; still
  /// copy- and context-switch-heavy.
  static MsgLayerModel pvme_sp();
  /// IBM's native MPL: lean, but only (constrained) blocking sends were
  /// usable for this communication pattern.
  static MsgLayerModel mpl_sp();
  /// Cray's customized PVM on the T3D: "a relatively small setup cost".
  static MsgLayerModel pvm_t3d();
  /// SHMEM-style one-sided puts on the T3D — the paper notes "the T3D
  /// supports multiple programming models" but used message passing;
  /// this is the road not taken (microsecond-class start-ups).
  static MsgLayerModel shmem_t3d();
  /// Shared-memory DOALL (Cray Y-MP): no messages at all.
  static MsgLayerModel shared_memory();

  // ---- Modern stacks (docs/PLATFORMS.md §6) -----------------------------
  /// Tuned MPI on a current cluster: microsecond start-ups, single-copy.
  static MsgLayerModel mpi_modern();
  /// The same stack on a slow many-core tile (KNL-class).
  static MsgLayerModel mpi_manycore();
  /// GPU-aware MPI on device buffers: launch/sync-dominated start-ups.
  static MsgLayerModel mpi_gpu();
};

}  // namespace nsp::arch
