// Interconnect models for every network in the paper.
//
//   EthernetBus    10 Mb/s shared medium (LACE "parallel" Ethernet)
//   FddiRing       100 Mb/s token ring (LACE nodes 9-24)
//   AtmSwitch      155 Mb/s point-to-point switch (LACE lower half)
//   OmegaSwitch    IBM ALLNODE-F (64 Mb/s/link), ALLNODE-S (32 Mb/s/link),
//                  and the SP High-Performance Switch (40 MB/s/link);
//                  multistage Omega topology with multiple
//                  contention-free internal paths, so contention happens
//                  only at the node adapters
//   Torus3D        Cray T3D 3-D torus, 150 MB/s links, dimension-order
//                  routing
//   PerfectNetwork zero-latency infinite-bandwidth reference (testing,
//                  and the shared-memory Y-MP which passes no messages)
//
// plus the modern interconnects the 10^3-10^5-rank scaling studies run
// on (docs/PLATFORMS.md §6):
//
//   Torus2D        wormhole-priced 2-D torus/mesh (many-core on-chip)
//   FatTree        multi-level, oversubscription-aware fat tree
//   Dragonfly      groups + pooled global optical links (Aries-class)
//
// All models are discrete-event: transmit() is called at the simulated
// injection time and the `delivered` callback fires at the simulated
// arrival time. Contention emerges from FIFO queueing on sim::Resource
// objects (the Ethernet bus, the FDDI token, switch ports, torus links),
// which is what produces the paper's Ethernet saturation beyond 8
// processors.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace nsp::arch {

/// Abstract interconnect. Node ids are 0-based ranks.
class NetworkModel {
 public:
  explicit NetworkModel(sim::Simulator& s) : sim_(s) {}
  virtual ~NetworkModel() = default;
  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Injects a message at sim.now(); `delivered` fires at arrival.
  virtual void transmit(int src, int dst, std::size_t bytes,
                        std::function<void()> delivered) = 0;

  /// Display name ("ALLNODE-F").
  virtual std::string name() const = 0;

  /// Nominal per-path bandwidth in bytes/second (for reporting).
  virtual double link_bandwidth_Bps() const = 0;

  std::uint64_t messages_sent() const { return messages_; }
  double bytes_sent() const { return bytes_; }

 protected:
  void count(std::size_t bytes) {
    ++messages_;
    bytes_ += static_cast<double>(bytes);
  }

  sim::Simulator& sim_;

 private:
  std::uint64_t messages_ = 0;
  double bytes_ = 0;
};

/// Zero-latency, infinite-bandwidth network (tests; shared-memory runs).
class PerfectNetwork final : public NetworkModel {
 public:
  using NetworkModel::NetworkModel;
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "perfect"; }
  double link_bandwidth_Bps() const override { return 1e300; }
};

/// 10 Mb/s shared-bus Ethernet with framing overhead and FIFO medium
/// arbitration. Offered load beyond ~10 Mb/s queues without bound —
/// exactly the saturation the paper derives for >= 8 processors.
class EthernetBus final : public NetworkModel {
 public:
  explicit EthernetBus(sim::Simulator& s, double bits_per_second = 10e6);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "Ethernet"; }
  double link_bandwidth_Bps() const override { return rate_bps_ / 8.0; }

  /// Mean utilization of the medium so far (0..1).
  double utilization() const;

 private:
  double rate_bps_;
  sim::Resource bus_;
  static constexpr double kFramePayload = 1460.0;   // bytes per frame
  static constexpr double kFrameOverhead = 38.0;    // preamble+hdr+CRC+IFG
  static constexpr double kBackoffSlot = 51.2e-6;   // CSMA/CD slot time
};

/// 100 Mb/s FDDI token ring: one token serializes transmissions; each
/// message additionally pays a token-rotation latency that grows with
/// the station count.
class FddiRing final : public NetworkModel {
 public:
  FddiRing(sim::Simulator& s, int stations, double bits_per_second = 100e6);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "FDDI"; }
  double link_bandwidth_Bps() const override { return rate_bps_ / 8.0; }

 private:
  double rate_bps_;
  int stations_;
  sim::Resource token_;
  static constexpr double kStationLatency = 1e-6;  // per-hop token delay
};

/// Output-port-contended point-to-point switch (used for ATM at
/// 155 Mb/s with the 48/53 cell tax).
class AtmSwitch final : public NetworkModel {
 public:
  AtmSwitch(sim::Simulator& s, int nodes, double bits_per_second = 155e6);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "ATM"; }
  double link_bandwidth_Bps() const override {
    return rate_bps_ / 8.0 * (48.0 / 53.0);
  }

 private:
  double rate_bps_;
  std::vector<std::unique_ptr<sim::Resource>> out_port_;
  std::vector<std::unique_ptr<sim::Resource>> in_port_;
  static constexpr double kSwitchLatency = 10e-6;
};

/// Multistage Omega switch with multiple contention-free internal paths
/// (IBM ALLNODE and the SP switch): messages contend only for the source
/// and destination adapters.
class OmegaSwitch final : public NetworkModel {
 public:
  /// `bits_per_second` is the per-link rate (ALLNODE-F 64e6, ALLNODE-S
  /// 32e6, SP switch 320e6); `latency` the one-way switch latency.
  OmegaSwitch(sim::Simulator& s, int nodes, double bits_per_second,
              std::string name, double latency = 5e-6);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return name_; }
  double link_bandwidth_Bps() const override { return rate_bps_ / 8.0; }

  static std::unique_ptr<OmegaSwitch> allnode_f(sim::Simulator& s, int nodes);
  static std::unique_ptr<OmegaSwitch> allnode_s(sim::Simulator& s, int nodes);
  static std::unique_ptr<OmegaSwitch> sp_switch(sim::Simulator& s, int nodes);

 private:
  double rate_bps_;
  std::string name_;
  double latency_;
  std::vector<std::unique_ptr<sim::Resource>> out_port_;
  std::vector<std::unique_ptr<sim::Resource>> in_port_;
};

/// Cray T3D 3-D torus with dimension-order routing and store-and-forward
/// per-hop link occupancy (a conservative wormhole approximation; the
/// application's traffic is nearest-neighbour, 1-2 hops).
class Torus3D final : public NetworkModel {
 public:
  /// The machine in the paper is 8 x 4 x 2 = 64 nodes.
  Torus3D(sim::Simulator& s, int dim_x = 8, int dim_y = 4, int dim_z = 2,
          double bytes_per_second = 150e6, double hop_latency = 2e-6);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "T3D torus"; }
  double link_bandwidth_Bps() const override { return rate_Bps_; }

  /// A torus sized to hold `nodes` ranks: the paper's 8 x 4 x 2 while it
  /// fits (so every historical replay prices identically), then grown by
  /// doubling the smallest dimension until the volume covers the ranks —
  /// the BG/Q-style partition shapes used at 10^3-10^5 ranks.
  static std::unique_ptr<Torus3D> sized_for(sim::Simulator& s, int nodes,
                                            double bytes_per_second = 150e6,
                                            double hop_latency = 2e-6);

  /// Number of links traversed between two ranks (dimension-order).
  int hops(int src, int dst) const;

 private:
  struct Coord {
    int x, y, z;
  };
  Coord coord(int rank) const;
  int rank_of(Coord c) const;
  /// Resource index for the link leaving `node` along `dim` in `dir`.
  int link_index(int node, int dim, int dir) const;
  sim::Resource& link(int index);
  void hop(std::vector<int> path, std::size_t index, std::size_t bytes,
           std::function<void()> delivered);

  int dx_, dy_, dz_;
  double rate_Bps_;
  double hop_latency_;
  // Lazily constructed: at 10^5 ranks the halo traffic touches a few
  // links per node out of the 6 directions, and eager construction of
  // nodes*6 resources dominates engine start-up.
  std::vector<std::unique_ptr<sim::Resource>> links_;
};

/// 2-D torus/mesh with wormhole (virtual cut-through) pricing — the
/// on-chip interconnect of a many-core node and the building block of
/// several modern machines. The message head pays hop_latency per link
/// in dimension-order; the body streams behind it, so the serialization
/// time bytes/rate is paid once, on the final (ejection) link, not per
/// hop as in the store-and-forward Torus3D. Links are held sequentially
/// (acquire -> timed hold -> release), so routed cycles cannot deadlock
/// the simulation. A zero-hop self-send occupies no link at all.
class Torus2D final : public NetworkModel {
 public:
  Torus2D(sim::Simulator& s, int dim_x, int dim_y,
          double bytes_per_second = 10e9, double hop_latency = 50e-9);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "2-D torus"; }
  double link_bandwidth_Bps() const override { return rate_Bps_; }

  /// Links traversed between two ranks: dimension-order, taking the
  /// shorter ring direction on both axes. hops(r, r) == 0.
  int hops(int src, int dst) const;

  /// A near-square torus covering `nodes` ranks.
  static std::unique_ptr<Torus2D> sized_for(sim::Simulator& s, int nodes,
                                            double bytes_per_second = 10e9,
                                            double hop_latency = 50e-9);

 private:
  struct Coord {
    int x, y;
  };
  Coord coord(int rank) const { return {rank % dx_, rank / dx_}; }
  int rank_of(Coord c) const { return c.y * dx_ + c.x; }
  int link_index(int node, int dim, int dir) const {
    return node * 4 + dim * 2 + (dir > 0 ? 0 : 1);
  }
  sim::Resource& link(int index);
  void hop(std::vector<int> path, std::size_t index, std::size_t bytes,
           std::function<void()> delivered);

  int dx_, dy_;
  double rate_Bps_;
  double hop_latency_;
  std::vector<std::unique_ptr<sim::Resource>> links_;  // lazy, 4 per node
};

/// Multi-level fat tree (the InfiniBand-cluster topology of the modern
/// strong-scaling studies). Nodes hang off leaf switches in groups of
/// `down_ports`; each leaf owns an up-pipe whose server count is
/// down_ports / oversubscription (a 2:1 tapered tree halves it) and a
/// symmetric down-pipe. The spine is assumed non-blocking beyond that
/// taper, so contention lives at the node adapters and the leaf up/down
/// pipes — the fat-tree analogue of the OmegaSwitch adapter model.
/// Latency counts switch traversals: 1 within a leaf, 3 within a pod
/// (leaf-spine-leaf), 5 across pods in a 3-tier tree.
class FatTree final : public NetworkModel {
 public:
  FatTree(sim::Simulator& s, int nodes, int down_ports = 24,
          double oversubscription = 1.0, double bytes_per_second = 12.5e9,
          double stage_latency = 120e-9);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "fat-tree"; }
  double link_bandwidth_Bps() const override { return rate_Bps_; }

  /// Switch traversals between two ranks (1, 3, or 5; 0 for self-sends).
  int switch_hops(int src, int dst) const;

 private:
  int leaf_of(int node) const { return node / down_ports_; }
  int pod_of(int node) const { return node / (down_ports_ * down_ports_); }

  int nodes_;
  int down_ports_;
  double rate_Bps_;
  double stage_latency_;
  std::vector<std::unique_ptr<sim::Resource>> nic_out_, nic_in_;
  std::vector<std::unique_ptr<sim::Resource>> leaf_up_, leaf_down_;
};

/// Dragonfly (Aries/Slingshot-class): all-to-all connected groups of
/// `group_routers` routers with `router_nodes` nodes each; every router
/// drives `global_links` optical links, pooled per group. Minimal
/// routing is node -> router -> (global link) -> router -> node, priced
/// store-and-forward per stage so the simulation cannot deadlock. The
/// contended resources are the node adapters, each router's local-link
/// pipe, and the per-group global pipe — tail latency under load comes
/// from the global pipe, which is the published Aries behaviour the
/// dragonfly validation curves key on.
class Dragonfly final : public NetworkModel {
 public:
  Dragonfly(sim::Simulator& s, int nodes, int router_nodes = 4,
            int group_routers = 16, int global_links = 2,
            double local_Bps = 10e9, double global_Bps = 12e9,
            double router_latency = 100e-9);
  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return "dragonfly"; }
  double link_bandwidth_Bps() const override { return global_Bps_; }

 private:
  int router_of(int node) const { return node / router_nodes_; }
  int group_of(int node) const { return router_of(node) / group_routers_; }

  int nodes_;
  int router_nodes_;
  int group_routers_;
  int global_links_;
  double local_Bps_;
  double global_Bps_;
  double router_latency_;
  std::vector<std::unique_ptr<sim::Resource>> nic_out_, nic_in_;
  std::vector<std::unique_ptr<sim::Resource>> router_local_;  // per router
  std::vector<std::unique_ptr<sim::Resource>> group_global_;  // per group
};

}  // namespace nsp::arch
