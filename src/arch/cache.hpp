// A trace-driven set-associative cache simulator.
//
// The analytic miss model in CpuModel answers "how fast is this kernel
// on this CPU"; this simulator answers "was the analytic model fair" —
// the cache-design ablation bench replays actual sweep address traces
// from the solver's access patterns through era-accurate geometries
// (T3D 8 KB direct-mapped vs LACE 64/256 KB 4-way) and reports real
// hit ratios.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/cpu_model.hpp"  // CacheGeometry

namespace nsp::arch {

/// LRU set-associative cache with write-allocate, write-back policy.
class CacheSim {
 public:
  explicit CacheSim(CacheGeometry geom);

  /// Simulates one access of `bytes` bytes at `addr`; accesses spanning
  /// line boundaries touch each line. `write` marks lines dirty.
  /// Returns true if every touched line hit.
  bool access(std::uint64_t addr, unsigned bytes = 8, bool write = false);

  /// Resets contents and statistics.
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  double miss_ratio() const {
    const std::uint64_t n = hits_ + misses_;
    return n ? static_cast<double>(misses_) / static_cast<double>(n) : 0.0;
  }
  const CacheGeometry& geometry() const { return geom_; }
  int num_sets() const { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
    bool dirty = false;
  };

  bool touch_line(std::uint64_t line_addr, bool write);

  CacheGeometry geom_;
  int num_sets_;
  int line_shift_;
  std::vector<Line> lines_;  // num_sets * associativity
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

/// Generates the address trace of one axial+radial 2-4 MacCormack sweep
/// pair over an ni x nj grid with `arrays` double arrays laid out
/// consecutively, visiting arrays in a stencil pattern. `stride1_radial`
/// selects the Version-3 loop order (radial sweeps access consecutive
/// memory) versus the Version-1 order (radial sweeps hop by ni doubles).
/// The trace is appended to `out` as byte addresses.
void append_sweep_trace(std::vector<std::uint64_t>& out, int ni, int nj,
                        int arrays, bool stride1_radial);

}  // namespace nsp::arch
