#include "arch/network.hpp"

#include <cmath>
#include <stdexcept>
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace nsp::arch {

// ---------------------------------------------------------------- Perfect

void PerfectNetwork::transmit(int /*src*/, int /*dst*/, std::size_t bytes,
                              std::function<void()> delivered) {
  count(bytes);
  sim_.after(0.0, std::move(delivered));
}

// --------------------------------------------------------------- Ethernet

EthernetBus::EthernetBus(sim::Simulator& s, double bits_per_second)
    : NetworkModel(s), rate_bps_(bits_per_second), bus_(s, 1, "ethernet-bus") {}

void EthernetBus::transmit(int /*src*/, int /*dst*/, std::size_t bytes,
                           std::function<void()> delivered) {
  count(bytes);
  const double frames = std::ceil(static_cast<double>(bytes) / kFramePayload);
  const double wire_bytes = static_cast<double>(bytes) + frames * kFrameOverhead;
  // CSMA/CD arbitration wastes ~30% of the raw medium under the bursty
  // SPMD traffic pattern (collisions + backoff + deference).
  constexpr double kCsmaEfficiency = 0.70;
  const double hold = wire_bytes * 8.0 / (rate_bps_ * kCsmaEfficiency);
  // Binary-exponential backoff under contention: a sender that meets a
  // busy, crowded medium spends extra slots backing off before winning
  // it. The delay hits the colliding message only (the medium keeps
  // serving others), so bursty send patterns pay more than staggered
  // ones — the paper's Version 7 effect.
  const double backoff =
      kBackoffSlot * static_cast<double>(bus_.queue_length() + bus_.busy());
  sim_.after(backoff, [this, hold, delivered = std::move(delivered)]() mutable {
    // The whole message holds the shared medium (back-to-back frames);
    // competing senders queue FIFO — the source of saturation.
    bus_.use(hold, std::move(delivered));
  });
}

double EthernetBus::utilization() const {
  const double elapsed = sim_.now();
  return elapsed > 0 ? bus_.busy_time_integral() / elapsed : 0.0;
}

// ------------------------------------------------------------------- FDDI

FddiRing::FddiRing(sim::Simulator& s, int stations, double bits_per_second)
    : NetworkModel(s),
      rate_bps_(bits_per_second),
      stations_(stations),
      token_(s, 1, "fddi-token") {
  if (stations < 2) throw std::invalid_argument("FddiRing: need >= 2 stations");
}

void FddiRing::transmit(int /*src*/, int /*dst*/, std::size_t bytes,
                        std::function<void()> delivered) {
  count(bytes);
  // Wait for the token (mean half-ring rotation), transmit, pass it on.
  const double rotation = 0.5 * stations_ * kStationLatency;
  const double hold = rotation + static_cast<double>(bytes) * 8.0 / rate_bps_;
  token_.use(hold, std::move(delivered));
}

// -------------------------------------------------------------------- ATM

AtmSwitch::AtmSwitch(sim::Simulator& s, int nodes, double bits_per_second)
    : NetworkModel(s), rate_bps_(bits_per_second) {
  if (nodes < 2) throw std::invalid_argument("AtmSwitch: need >= 2 nodes");
  out_port_.reserve(nodes);
  in_port_.reserve(nodes);
  for (int n = 0; n < nodes; ++n) {
    out_port_.push_back(std::make_unique<sim::Resource>(s, 1, "atm-out"));
    in_port_.push_back(std::make_unique<sim::Resource>(s, 1, "atm-in"));
  }
}

void AtmSwitch::transmit(int src, int dst, std::size_t bytes,
                         std::function<void()> delivered) {
  count(bytes);
  // 53-byte cells carry 48 payload bytes.
  const double wire_bytes = static_cast<double>(bytes) * 53.0 / 48.0;
  const double hold = wire_bytes * 8.0 / rate_bps_;
  auto& out = *out_port_.at(src);
  auto& in = *in_port_.at(dst);
  out.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
    in.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
      sim_.after(kSwitchLatency + hold,
                 [&out, &in, delivered = std::move(delivered)]() {
                   in.release();
                   out.release();
                   delivered();
                 });
    });
  });
}

// ------------------------------------------------------------------ Omega

OmegaSwitch::OmegaSwitch(sim::Simulator& s, int nodes, double bits_per_second,
                         std::string name, double latency)
    : NetworkModel(s), rate_bps_(bits_per_second), name_(std::move(name)),
      latency_(latency) {
  if (nodes < 2) throw std::invalid_argument("OmegaSwitch: need >= 2 nodes");
  out_port_.reserve(nodes);
  in_port_.reserve(nodes);
  for (int n = 0; n < nodes; ++n) {
    out_port_.push_back(std::make_unique<sim::Resource>(s, 1, "omega-out"));
    in_port_.push_back(std::make_unique<sim::Resource>(s, 1, "omega-in"));
  }
}

void OmegaSwitch::transmit(int src, int dst, std::size_t bytes,
                           std::function<void()> delivered) {
  count(bytes);
  const double hold = static_cast<double>(bytes) * 8.0 / rate_bps_;
  auto& out = *out_port_.at(src);
  auto& in = *in_port_.at(dst);
  // Multiple contention-free internal paths: only the adapters serialize.
  out.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
    in.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
      sim_.after(latency_ + hold,
                 [&out, &in, delivered = std::move(delivered)]() {
                   in.release();
                   out.release();
                   delivered();
                 });
    });
  });
}

std::unique_ptr<OmegaSwitch> OmegaSwitch::allnode_f(sim::Simulator& s, int nodes) {
  return std::make_unique<OmegaSwitch>(s, nodes, 64e6, "ALLNODE-F", 5e-6);
}

std::unique_ptr<OmegaSwitch> OmegaSwitch::allnode_s(sim::Simulator& s, int nodes) {
  return std::make_unique<OmegaSwitch>(s, nodes, 32e6, "ALLNODE-S", 8e-6);
}

std::unique_ptr<OmegaSwitch> OmegaSwitch::sp_switch(sim::Simulator& s, int nodes) {
  // SP High-Performance Switch: 40 MB/s per link.
  return std::make_unique<OmegaSwitch>(s, nodes, 320e6, "SP switch", 1e-6);
}

// ------------------------------------------------------------------ Torus

namespace {

/// Lazily constructs the `index`-th resource of a pool. The modern
/// models are instantiated for up to 10^5 nodes; building every port and
/// link eagerly costs more than the replay itself, while halo traffic
/// only ever touches a handful per node.
sim::Resource& lazy_lane(sim::Simulator& s,
                         std::vector<std::unique_ptr<sim::Resource>>& pool,
                         std::size_t index, int servers, const char* tag) {
  if (index >= pool.size()) pool.resize(index + 1);
  if (!pool[index]) pool[index] = std::make_unique<sim::Resource>(s, servers, tag);
  return *pool[index];
}

}  // namespace

Torus3D::Torus3D(sim::Simulator& s, int dim_x, int dim_y, int dim_z,
                 double bytes_per_second, double hop_latency)
    : NetworkModel(s), dx_(dim_x), dy_(dim_y), dz_(dim_z),
      rate_Bps_(bytes_per_second), hop_latency_(hop_latency) {
  if (dim_x < 1 || dim_y < 1 || dim_z < 1) {
    throw std::invalid_argument("Torus3D: dimensions must be >= 1");
  }
}

std::unique_ptr<Torus3D> Torus3D::sized_for(sim::Simulator& s, int nodes,
                                            double bytes_per_second,
                                            double hop_latency) {
  int dx = 8, dy = 4, dz = 2;  // the paper's machine
  while (dx * dy * dz < nodes) {
    // Double the smallest dimension: near-cubic growth, and the 8x4x2
    // prefix keeps every <= 64-rank path identical to the 1995 model.
    if (dz <= dy && dz <= dx) dz *= 2;
    else if (dy <= dx) dy *= 2;
    else dx *= 2;
  }
  return std::make_unique<Torus3D>(s, dx, dy, dz, bytes_per_second,
                                   hop_latency);
}

sim::Resource& Torus3D::link(int index) {
  return lazy_lane(sim_, links_, static_cast<std::size_t>(index), 1,
                   "torus-link");
}

Torus3D::Coord Torus3D::coord(int rank) const {
  return Coord{rank % dx_, (rank / dx_) % dy_, rank / (dx_ * dy_)};
}

int Torus3D::rank_of(Coord c) const { return (c.z * dy_ + c.y) * dx_ + c.x; }

int Torus3D::link_index(int node, int dim, int dir) const {
  return node * 6 + dim * 2 + (dir > 0 ? 0 : 1);
}

int Torus3D::hops(int src, int dst) const {
  const Coord a = coord(src), b = coord(dst);
  auto ring = [](int from, int to, int n) {
    const int fwd = ((to - from) % n + n) % n;
    return std::min(fwd, n - fwd);
  };
  return ring(a.x, b.x, dx_) + ring(a.y, b.y, dy_) + ring(a.z, b.z, dz_);
}

void Torus3D::hop(std::vector<int> path, std::size_t index, std::size_t bytes,
                  std::function<void()> delivered) {
  if (index + 1 >= path.size()) {
    delivered();
    return;
  }
  const Coord a = coord(path[index]);
  const Coord b = coord(path[index + 1]);
  int dim = 0, dir = 0;
  auto ring_dir = [](int from, int to, int n) {
    if (from == to) return 0;
    const int fwd = ((to - from) % n + n) % n;
    return fwd <= n - fwd ? +1 : -1;
  };
  if (a.x != b.x) {
    dim = 0;
    dir = ring_dir(a.x, b.x, dx_);
  } else if (a.y != b.y) {
    dim = 1;
    dir = ring_dir(a.y, b.y, dy_);
  } else {
    dim = 2;
    dir = ring_dir(a.z, b.z, dz_);
  }
  auto& lnk = link(link_index(path[index], dim, dir));
  const double hold = hop_latency_ + static_cast<double>(bytes) / rate_Bps_;
  lnk.use(hold, [this, path = std::move(path), index, bytes,
                 delivered = std::move(delivered)]() mutable {
    hop(std::move(path), index + 1, bytes, std::move(delivered));
  });
}

void Torus3D::transmit(int src, int dst, std::size_t bytes,
                       std::function<void()> delivered) {
  count(bytes);
  if (src == dst) {
    sim_.after(0.0, std::move(delivered));
    return;
  }
  // Dimension-order route: fix x, then y, then z, stepping the short way
  // around each ring.
  std::vector<int> path{src};
  Coord cur = coord(src);
  const Coord goal = coord(dst);
  auto step_ring = [](int from, int to, int n) {
    if (from == to) return from;
    const int fwd = ((to - from) % n + n) % n;
    const int dir = fwd <= n - fwd ? +1 : -1;
    return ((from + dir) % n + n) % n;
  };
  while (cur.x != goal.x) {
    cur.x = step_ring(cur.x, goal.x, dx_);
    path.push_back(rank_of(cur));
  }
  while (cur.y != goal.y) {
    cur.y = step_ring(cur.y, goal.y, dy_);
    path.push_back(rank_of(cur));
  }
  while (cur.z != goal.z) {
    cur.z = step_ring(cur.z, goal.z, dz_);
    path.push_back(rank_of(cur));
  }
  hop(std::move(path), 0, bytes, std::move(delivered));
}

// --------------------------------------------------------------- Torus2D

Torus2D::Torus2D(sim::Simulator& s, int dim_x, int dim_y,
                 double bytes_per_second, double hop_latency)
    : NetworkModel(s), dx_(dim_x), dy_(dim_y), rate_Bps_(bytes_per_second),
      hop_latency_(hop_latency) {
  if (dim_x < 1 || dim_y < 1) {
    throw std::invalid_argument("Torus2D: dimensions must be >= 1");
  }
}

std::unique_ptr<Torus2D> Torus2D::sized_for(sim::Simulator& s, int nodes,
                                            double bytes_per_second,
                                            double hop_latency) {
  int dx = 1;
  while (dx * dx < nodes) dx *= 2;
  const int dy = (nodes + dx - 1) / dx;
  return std::make_unique<Torus2D>(s, dx, std::max(1, dy), bytes_per_second,
                                   hop_latency);
}

sim::Resource& Torus2D::link(int index) {
  return lazy_lane(sim_, links_, static_cast<std::size_t>(index), 1,
                   "torus2d-link");
}

int Torus2D::hops(int src, int dst) const {
  const Coord a = coord(src), b = coord(dst);
  auto ring = [](int from, int to, int n) {
    const int fwd = ((to - from) % n + n) % n;
    return std::min(fwd, n - fwd);
  };
  return ring(a.x, b.x, dx_) + ring(a.y, b.y, dy_);
}

void Torus2D::hop(std::vector<int> path, std::size_t index, std::size_t bytes,
                  std::function<void()> delivered) {
  if (index + 1 >= path.size()) {
    delivered();
    return;
  }
  const Coord a = coord(path[index]);
  const Coord b = coord(path[index + 1]);
  auto ring_dir = [](int from, int to, int n) {
    if (from == to) return 0;
    const int fwd = ((to - from) % n + n) % n;
    return fwd <= n - fwd ? +1 : -1;
  };
  int dim = 0, dir = 0;
  if (a.x != b.x) {
    dim = 0;
    dir = ring_dir(a.x, b.x, dx_);
  } else {
    dim = 1;
    dir = ring_dir(a.y, b.y, dy_);
  }
  // Wormhole: every link advances the head by hop_latency; only the
  // final (ejection) link streams the whole body, so the uncontended
  // total is hops * hop_latency + bytes / rate — not hops * (both), the
  // store-and-forward total the 3-D torus charges.
  const bool last = index + 2 >= path.size();
  const double hold =
      hop_latency_ + (last ? static_cast<double>(bytes) / rate_Bps_ : 0.0);
  auto& lnk = link(link_index(path[index], dim, dir));
  lnk.use(hold, [this, path = std::move(path), index, bytes,
                 delivered = std::move(delivered)]() mutable {
    hop(std::move(path), index + 1, bytes, std::move(delivered));
  });
}

void Torus2D::transmit(int src, int dst, std::size_t bytes,
                       std::function<void()> delivered) {
  count(bytes);
  if (src == dst) {
    // Zero-hop self-send: delivered at the current time, and no link
    // occupancy or per-hop latency is ever charged.
    sim_.after(0.0, std::move(delivered));
    return;
  }
  std::vector<int> path{src};
  Coord cur = coord(src);
  const Coord goal = coord(dst);
  auto step_ring = [](int from, int to, int n) {
    if (from == to) return from;
    const int fwd = ((to - from) % n + n) % n;
    const int dir = fwd <= n - fwd ? +1 : -1;
    return ((from + dir) % n + n) % n;
  };
  while (cur.x != goal.x) {
    cur.x = step_ring(cur.x, goal.x, dx_);
    path.push_back(rank_of(cur));
  }
  while (cur.y != goal.y) {
    cur.y = step_ring(cur.y, goal.y, dy_);
    path.push_back(rank_of(cur));
  }
  hop(std::move(path), 0, bytes, std::move(delivered));
}

// --------------------------------------------------------------- FatTree

FatTree::FatTree(sim::Simulator& s, int nodes, int down_ports,
                 double oversubscription, double bytes_per_second,
                 double stage_latency)
    : NetworkModel(s), nodes_(nodes), down_ports_(std::max(1, down_ports)),
      rate_Bps_(bytes_per_second), stage_latency_(stage_latency) {
  if (nodes < 1) throw std::invalid_argument("FatTree: need >= 1 node");
  if (oversubscription < 1.0) {
    throw std::invalid_argument("FatTree: oversubscription must be >= 1");
  }
  const int leaves = (nodes_ + down_ports_ - 1) / down_ports_;
  const int up_servers = std::max(
      1, static_cast<int>(down_ports_ / oversubscription));
  leaf_up_.reserve(static_cast<std::size_t>(leaves));
  leaf_down_.reserve(static_cast<std::size_t>(leaves));
  for (int l = 0; l < leaves; ++l) {
    leaf_up_.push_back(
        std::make_unique<sim::Resource>(s, up_servers, "leaf-up"));
    leaf_down_.push_back(
        std::make_unique<sim::Resource>(s, up_servers, "leaf-down"));
  }
}

int FatTree::switch_hops(int src, int dst) const {
  if (src == dst) return 0;
  if (leaf_of(src) == leaf_of(dst)) return 1;
  // Two-tier within a pod of down_ports^2 nodes, three-tier across.
  return pod_of(src) == pod_of(dst) ? 3 : 5;
}

void FatTree::transmit(int src, int dst, std::size_t bytes,
                       std::function<void()> delivered) {
  count(bytes);
  if (src == dst) {
    sim_.after(0.0, std::move(delivered));
    return;
  }
  const double ser = static_cast<double>(bytes) / rate_Bps_;
  const double lat = switch_hops(src, dst) * stage_latency_;
  auto& out = lazy_lane(sim_, nic_out_, static_cast<std::size_t>(src), 1,
                        "nic-out");
  auto& in = lazy_lane(sim_, nic_in_, static_cast<std::size_t>(dst), 1,
                       "nic-in");
  // Cut-through with nested holds, ordered nic-out < leaf-up < leaf-down
  // < nic-in; each message holds at most one resource of each class, so
  // the wait-for graph is acyclic. Same-leaf traffic never touches the
  // up/down pipes — the taper only taxes traffic that leaves the leaf.
  if (leaf_of(src) == leaf_of(dst)) {
    out.acquire([this, &out, &in, lat, ser,
                 delivered = std::move(delivered)]() mutable {
      in.acquire([this, &out, &in, lat, ser,
                  delivered = std::move(delivered)]() mutable {
        sim_.after(lat + ser, [&out, &in, delivered = std::move(delivered)]() {
          in.release();
          out.release();
          delivered();
        });
      });
    });
    return;
  }
  auto& up = *leaf_up_.at(static_cast<std::size_t>(leaf_of(src)));
  auto& down = *leaf_down_.at(static_cast<std::size_t>(leaf_of(dst)));
  out.acquire([this, &out, &in, &up, &down, lat, ser,
               delivered = std::move(delivered)]() mutable {
    up.acquire([this, &out, &in, &up, &down, lat, ser,
                delivered = std::move(delivered)]() mutable {
      down.acquire([this, &out, &in, &up, &down, lat, ser,
                    delivered = std::move(delivered)]() mutable {
        in.acquire([this, &out, &in, &up, &down, lat, ser,
                    delivered = std::move(delivered)]() mutable {
          sim_.after(lat + ser, [&out, &in, &up, &down,
                                 delivered = std::move(delivered)]() {
            in.release();
            down.release();
            up.release();
            out.release();
            delivered();
          });
        });
      });
    });
  });
}

// ------------------------------------------------------------- Dragonfly

Dragonfly::Dragonfly(sim::Simulator& s, int nodes, int router_nodes,
                     int group_routers, int global_links, double local_Bps,
                     double global_Bps, double router_latency)
    : NetworkModel(s), nodes_(nodes),
      router_nodes_(std::max(1, router_nodes)),
      group_routers_(std::max(1, group_routers)),
      global_links_(std::max(1, global_links)), local_Bps_(local_Bps),
      global_Bps_(global_Bps), router_latency_(router_latency) {
  if (nodes < 1) throw std::invalid_argument("Dragonfly: need >= 1 node");
}

void Dragonfly::transmit(int src, int dst, std::size_t bytes,
                         std::function<void()> delivered) {
  count(bytes);
  if (src == dst) {
    sim_.after(0.0, std::move(delivered));
    return;
  }
  const double ser_local = static_cast<double>(bytes) / local_Bps_;
  const double ser_global = static_cast<double>(bytes) / global_Bps_;
  // Minimal route, store-and-forward per stage (each use() releases its
  // resource before the next acquires — no held-while-waiting cycles):
  //   nic-out -> [src router local pipe] -> [src group global pipe]
  //           -> [dst router local pipe] -> nic-in.
  // Same-router traffic skips the pipes; same-group traffic skips the
  // global pipe. The global pipe pools the group's group_routers *
  // global_links optical lanes — the resource whose queueing produces
  // the dragonfly's load-dependent tail.
  auto& out = lazy_lane(sim_, nic_out_, static_cast<std::size_t>(src), 1,
                        "nic-out");
  const bool same_router = router_of(src) == router_of(dst);
  const bool same_group = group_of(src) == group_of(dst);
  auto finish = [this, dst, ser_local,
                 delivered = std::move(delivered)]() mutable {
    auto& in = lazy_lane(sim_, nic_in_, static_cast<std::size_t>(dst), 1,
                         "nic-in");
    in.use(ser_local, std::move(delivered));
  };
  auto via_dst_local = [this, dst, ser_local, same_router,
                        finish = std::move(finish)]() mutable {
    if (same_router) {
      finish();
      return;
    }
    auto& local = lazy_lane(sim_, router_local_,
                            static_cast<std::size_t>(router_of(dst)),
                            std::max(1, group_routers_ - 1), "router-local");
    local.use(router_latency_ + ser_local, std::move(finish));
  };
  auto via_global = [this, src, same_group, ser_global,
                     via_dst_local = std::move(via_dst_local)]() mutable {
    if (same_group) {
      via_dst_local();
      return;
    }
    auto& global = lazy_lane(sim_, group_global_,
                             static_cast<std::size_t>(group_of(src)),
                             group_routers_ * global_links_, "group-global");
    global.use(router_latency_ + ser_global, std::move(via_dst_local));
  };
  auto via_src_local = [this, src, same_group, same_router, ser_local,
                        via_global = std::move(via_global)]() mutable {
    if (same_group || same_router) {
      // Intra-group minimal routes take a single router-router hop,
      // charged as the destination router's local pipe.
      via_global();
      return;
    }
    auto& local = lazy_lane(sim_, router_local_,
                            static_cast<std::size_t>(router_of(src)),
                            std::max(1, group_routers_ - 1), "router-local");
    local.use(router_latency_ + ser_local, std::move(via_global));
  };
  out.use(router_latency_ + ser_local, std::move(via_src_local));
}

}  // namespace nsp::arch
