#include "arch/network.hpp"

#include <cmath>
#include <stdexcept>
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace nsp::arch {

// ---------------------------------------------------------------- Perfect

void PerfectNetwork::transmit(int /*src*/, int /*dst*/, std::size_t bytes,
                              std::function<void()> delivered) {
  count(bytes);
  sim_.after(0.0, std::move(delivered));
}

// --------------------------------------------------------------- Ethernet

EthernetBus::EthernetBus(sim::Simulator& s, double bits_per_second)
    : NetworkModel(s), rate_bps_(bits_per_second), bus_(s, 1, "ethernet-bus") {}

void EthernetBus::transmit(int /*src*/, int /*dst*/, std::size_t bytes,
                           std::function<void()> delivered) {
  count(bytes);
  const double frames = std::ceil(static_cast<double>(bytes) / kFramePayload);
  const double wire_bytes = static_cast<double>(bytes) + frames * kFrameOverhead;
  // CSMA/CD arbitration wastes ~30% of the raw medium under the bursty
  // SPMD traffic pattern (collisions + backoff + deference).
  constexpr double kCsmaEfficiency = 0.70;
  const double hold = wire_bytes * 8.0 / (rate_bps_ * kCsmaEfficiency);
  // Binary-exponential backoff under contention: a sender that meets a
  // busy, crowded medium spends extra slots backing off before winning
  // it. The delay hits the colliding message only (the medium keeps
  // serving others), so bursty send patterns pay more than staggered
  // ones — the paper's Version 7 effect.
  const double backoff =
      kBackoffSlot * static_cast<double>(bus_.queue_length() + bus_.busy());
  sim_.after(backoff, [this, hold, delivered = std::move(delivered)]() mutable {
    // The whole message holds the shared medium (back-to-back frames);
    // competing senders queue FIFO — the source of saturation.
    bus_.use(hold, std::move(delivered));
  });
}

double EthernetBus::utilization() const {
  const double elapsed = sim_.now();
  return elapsed > 0 ? bus_.busy_time_integral() / elapsed : 0.0;
}

// ------------------------------------------------------------------- FDDI

FddiRing::FddiRing(sim::Simulator& s, int stations, double bits_per_second)
    : NetworkModel(s),
      rate_bps_(bits_per_second),
      stations_(stations),
      token_(s, 1, "fddi-token") {
  if (stations < 2) throw std::invalid_argument("FddiRing: need >= 2 stations");
}

void FddiRing::transmit(int /*src*/, int /*dst*/, std::size_t bytes,
                        std::function<void()> delivered) {
  count(bytes);
  // Wait for the token (mean half-ring rotation), transmit, pass it on.
  const double rotation = 0.5 * stations_ * kStationLatency;
  const double hold = rotation + static_cast<double>(bytes) * 8.0 / rate_bps_;
  token_.use(hold, std::move(delivered));
}

// -------------------------------------------------------------------- ATM

AtmSwitch::AtmSwitch(sim::Simulator& s, int nodes, double bits_per_second)
    : NetworkModel(s), rate_bps_(bits_per_second) {
  if (nodes < 2) throw std::invalid_argument("AtmSwitch: need >= 2 nodes");
  out_port_.reserve(nodes);
  in_port_.reserve(nodes);
  for (int n = 0; n < nodes; ++n) {
    out_port_.push_back(std::make_unique<sim::Resource>(s, 1, "atm-out"));
    in_port_.push_back(std::make_unique<sim::Resource>(s, 1, "atm-in"));
  }
}

void AtmSwitch::transmit(int src, int dst, std::size_t bytes,
                         std::function<void()> delivered) {
  count(bytes);
  // 53-byte cells carry 48 payload bytes.
  const double wire_bytes = static_cast<double>(bytes) * 53.0 / 48.0;
  const double hold = wire_bytes * 8.0 / rate_bps_;
  auto& out = *out_port_.at(src);
  auto& in = *in_port_.at(dst);
  out.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
    in.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
      sim_.after(kSwitchLatency + hold,
                 [&out, &in, delivered = std::move(delivered)]() {
                   in.release();
                   out.release();
                   delivered();
                 });
    });
  });
}

// ------------------------------------------------------------------ Omega

OmegaSwitch::OmegaSwitch(sim::Simulator& s, int nodes, double bits_per_second,
                         std::string name, double latency)
    : NetworkModel(s), rate_bps_(bits_per_second), name_(std::move(name)),
      latency_(latency) {
  if (nodes < 2) throw std::invalid_argument("OmegaSwitch: need >= 2 nodes");
  out_port_.reserve(nodes);
  in_port_.reserve(nodes);
  for (int n = 0; n < nodes; ++n) {
    out_port_.push_back(std::make_unique<sim::Resource>(s, 1, "omega-out"));
    in_port_.push_back(std::make_unique<sim::Resource>(s, 1, "omega-in"));
  }
}

void OmegaSwitch::transmit(int src, int dst, std::size_t bytes,
                           std::function<void()> delivered) {
  count(bytes);
  const double hold = static_cast<double>(bytes) * 8.0 / rate_bps_;
  auto& out = *out_port_.at(src);
  auto& in = *in_port_.at(dst);
  // Multiple contention-free internal paths: only the adapters serialize.
  out.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
    in.acquire([this, &out, &in, hold, delivered = std::move(delivered)]() mutable {
      sim_.after(latency_ + hold,
                 [&out, &in, delivered = std::move(delivered)]() {
                   in.release();
                   out.release();
                   delivered();
                 });
    });
  });
}

std::unique_ptr<OmegaSwitch> OmegaSwitch::allnode_f(sim::Simulator& s, int nodes) {
  return std::make_unique<OmegaSwitch>(s, nodes, 64e6, "ALLNODE-F", 5e-6);
}

std::unique_ptr<OmegaSwitch> OmegaSwitch::allnode_s(sim::Simulator& s, int nodes) {
  return std::make_unique<OmegaSwitch>(s, nodes, 32e6, "ALLNODE-S", 8e-6);
}

std::unique_ptr<OmegaSwitch> OmegaSwitch::sp_switch(sim::Simulator& s, int nodes) {
  // SP High-Performance Switch: 40 MB/s per link.
  return std::make_unique<OmegaSwitch>(s, nodes, 320e6, "SP switch", 1e-6);
}

// ------------------------------------------------------------------ Torus

Torus3D::Torus3D(sim::Simulator& s, int dim_x, int dim_y, int dim_z,
                 double bytes_per_second, double hop_latency)
    : NetworkModel(s), dx_(dim_x), dy_(dim_y), dz_(dim_z),
      rate_Bps_(bytes_per_second), hop_latency_(hop_latency) {
  if (dim_x < 1 || dim_y < 1 || dim_z < 1) {
    throw std::invalid_argument("Torus3D: dimensions must be >= 1");
  }
  const int nodes = dx_ * dy_ * dz_;
  links_.reserve(static_cast<std::size_t>(nodes) * 6);
  for (int i = 0; i < nodes * 6; ++i) {
    links_.push_back(std::make_unique<sim::Resource>(s, 1, "torus-link"));
  }
}

Torus3D::Coord Torus3D::coord(int rank) const {
  return Coord{rank % dx_, (rank / dx_) % dy_, rank / (dx_ * dy_)};
}

int Torus3D::rank_of(Coord c) const { return (c.z * dy_ + c.y) * dx_ + c.x; }

int Torus3D::link_index(int node, int dim, int dir) const {
  return node * 6 + dim * 2 + (dir > 0 ? 0 : 1);
}

int Torus3D::hops(int src, int dst) const {
  const Coord a = coord(src), b = coord(dst);
  auto ring = [](int from, int to, int n) {
    const int fwd = ((to - from) % n + n) % n;
    return std::min(fwd, n - fwd);
  };
  return ring(a.x, b.x, dx_) + ring(a.y, b.y, dy_) + ring(a.z, b.z, dz_);
}

void Torus3D::hop(std::vector<int> path, std::size_t index, std::size_t bytes,
                  std::function<void()> delivered) {
  if (index + 1 >= path.size()) {
    delivered();
    return;
  }
  const Coord a = coord(path[index]);
  const Coord b = coord(path[index + 1]);
  int dim = 0, dir = 0;
  auto ring_dir = [](int from, int to, int n) {
    if (from == to) return 0;
    const int fwd = ((to - from) % n + n) % n;
    return fwd <= n - fwd ? +1 : -1;
  };
  if (a.x != b.x) {
    dim = 0;
    dir = ring_dir(a.x, b.x, dx_);
  } else if (a.y != b.y) {
    dim = 1;
    dir = ring_dir(a.y, b.y, dy_);
  } else {
    dim = 2;
    dir = ring_dir(a.z, b.z, dz_);
  }
  auto& link = *links_.at(link_index(path[index], dim, dir));
  const double hold = hop_latency_ + static_cast<double>(bytes) / rate_Bps_;
  link.use(hold, [this, path = std::move(path), index, bytes,
                  delivered = std::move(delivered)]() mutable {
    hop(std::move(path), index + 1, bytes, std::move(delivered));
  });
}

void Torus3D::transmit(int src, int dst, std::size_t bytes,
                       std::function<void()> delivered) {
  count(bytes);
  if (src == dst) {
    sim_.after(0.0, std::move(delivered));
    return;
  }
  // Dimension-order route: fix x, then y, then z, stepping the short way
  // around each ring.
  std::vector<int> path{src};
  Coord cur = coord(src);
  const Coord goal = coord(dst);
  auto step_ring = [](int from, int to, int n) {
    if (from == to) return from;
    const int fwd = ((to - from) % n + n) % n;
    const int dir = fwd <= n - fwd ? +1 : -1;
    return ((from + dir) % n + n) % n;
  };
  while (cur.x != goal.x) {
    cur.x = step_ring(cur.x, goal.x, dx_);
    path.push_back(rank_of(cur));
  }
  while (cur.y != goal.y) {
    cur.y = step_ring(cur.y, goal.y, dy_);
    path.push_back(rank_of(cur));
  }
  while (cur.z != goal.z) {
    cur.z = step_ring(cur.z, goal.z, dz_);
    path.push_back(rank_of(cur));
  }
  hop(std::move(path), 0, bytes, std::move(delivered));
}

}  // namespace nsp::arch
