#include "arch/cache.hpp"

#include <bit>
#include <stdexcept>

namespace nsp::arch {

CacheSim::CacheSim(CacheGeometry geom) : geom_(geom) {
  if (geom.line_bytes == 0 || (geom.line_bytes & (geom.line_bytes - 1)) != 0) {
    throw std::invalid_argument("CacheSim: line size must be a power of two");
  }
  if (geom.associativity < 1) {
    throw std::invalid_argument("CacheSim: associativity must be >= 1");
  }
  const std::size_t lines_total = geom.size_bytes / geom.line_bytes;
  if (lines_total == 0 || lines_total % geom.associativity != 0) {
    throw std::invalid_argument("CacheSim: size/line/assoc geometry invalid");
  }
  num_sets_ = static_cast<int>(lines_total / geom.associativity);
  line_shift_ = std::countr_zero(geom.line_bytes);
  lines_.assign(lines_total, Line{});
}

void CacheSim::clear() {
  lines_.assign(lines_.size(), Line{});
  stamp_ = hits_ = misses_ = writebacks_ = 0;
}

bool CacheSim::touch_line(std::uint64_t line_addr, bool write) {
  const std::uint64_t set = line_addr % static_cast<std::uint64_t>(num_sets_);
  const std::uint64_t tag = line_addr / static_cast<std::uint64_t>(num_sets_);
  Line* set_base = &lines_[set * geom_.associativity];
  ++stamp_;

  Line* victim = set_base;
  for (int w = 0; w < geom_.associativity; ++w) {
    Line& l = set_base[w];
    if (l.valid && l.tag == tag) {
      l.lru = stamp_;
      if (write) l.dirty = true;
      ++hits_;
      return true;
    }
    if (!victim->valid) continue;       // keep first invalid victim
    if (!l.valid || l.lru < victim->lru) victim = &l;
  }
  ++misses_;
  if (victim->valid && victim->dirty) ++writebacks_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  victim->dirty = write;
  return false;
}

bool CacheSim::access(std::uint64_t addr, unsigned bytes, bool write) {
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) >> line_shift_;
  bool all_hit = true;
  for (std::uint64_t l = first; l <= last; ++l) {
    all_hit = touch_line(l, write) && all_hit;
  }
  return all_hit;
}

void append_sweep_trace(std::vector<std::uint64_t>& out, int ni, int nj,
                        int arrays, bool stride1_radial) {
  // Arrays are laid out back to back, each ni x nj doubles, axial index
  // fastest (Fortran column-major equivalent: A(i,j) at (j*ni + i)*8).
  // A small odd pad between arrays avoids the pathological case where
  // every array aliases to the same cache sets (real codes get this
  // from unrelated COMMON block members).
  constexpr std::uint64_t kPad = 264;
  const auto addr = [&](int a, int i, int j) {
    return static_cast<std::uint64_t>(a) *
               (static_cast<std::uint64_t>(ni) * nj * 8 + kPad) +
           (static_cast<std::uint64_t>(j) * ni + i) * 8;
  };

  // Axial sweep: for each j row, stream i with a 3-point stencil across
  // all arrays. This is stride-1 in either code version.
  for (int j = 0; j < nj; ++j) {
    for (int i = 1; i + 1 < ni; ++i) {
      for (int a = 0; a < arrays; ++a) {
        out.push_back(addr(a, i - 1, j));
        out.push_back(addr(a, i, j));
        out.push_back(addr(a, i + 1, j));
      }
    }
  }

  // Radial sweep: the Version-1 code keeps the i-outer/j-inner loop
  // order, so consecutive accesses hop ni doubles apart; the Version-3
  // interchange walks j-outer/i-inner, recovering stride 1.
  if (stride1_radial) {
    for (int j = 1; j + 1 < nj; ++j) {
      for (int i = 0; i < ni; ++i) {
        for (int a = 0; a < arrays; ++a) {
          out.push_back(addr(a, i, j - 1));
          out.push_back(addr(a, i, j));
          out.push_back(addr(a, i, j + 1));
        }
      }
    }
  } else {
    for (int i = 0; i < ni; ++i) {
      for (int j = 1; j + 1 < nj; ++j) {
        for (int a = 0; a < arrays; ++a) {
          out.push_back(addr(a, i, j - 1));
          out.push_back(addr(a, i, j));
          out.push_back(addr(a, i, j + 1));
        }
      }
    }
  }
}

}  // namespace nsp::arch
