// Per-grid-point cost profiles of the application kernels.
//
// The paper optimizes a Fortran Navier-Stokes code through five
// "Versions" (Section 6 / Figure 2):
//   V1  original: radial sweeps access arrays with non-unit stride,
//       exponentiation by pow(), division-heavy, many COMMON blocks
//   V2  strength reduction: exponentiation replaced by multiplication
//   V3  loop interchange: stride-1 access wherever possible (+50% speed)
//   V4  division replaced by multiplication (5.5e9 -> 2.0e9 divisions)
//   V5  COMMON blocks collapsed: better register use, fewer accesses
// V6/V7 change the communication schedule only (same single-CPU cost).
//
// A KernelProfile carries the per-point, per-time-step operation mix the
// CpuModel converts into cycles on a given 1995 CPU. The numbers are
// anchored to the paper's Table 1 totals (Navier-Stokes: 145,000 MFLOP
// over 5000 steps on a 250x100 grid = 1160 FP ops/point/step; Euler:
// 77,000 MFLOP = 616) and to its division counts (5.5e9 before V4,
// 2.0e9 after).
#pragma once

#include <string>

namespace nsp::arch {

/// Which governing equations a profile describes.
enum class Equations { NavierStokes, Euler };

/// The paper's single-processor code versions.
enum class CodeVersion : int {
  V1_Original = 1,
  V2_StrengthReduction = 2,
  V3_LoopInterchange = 3,
  V4_DivisionToMultiply = 4,
  V5_CommonCollapse = 5,
  // Communication-schedule variants; identical per-point CPU cost to V5.
  V6_OverlapComm = 6,
  V7_UnbundledSends = 7,
};

/// Returns a human-readable name ("Version 3 (loop interchange)").
std::string to_string(CodeVersion v);
std::string to_string(Equations e);

/// Per-grid-point per-time-step operation mix of one code version.
struct KernelProfile {
  std::string name;

  // Floating-point work (per point per step).
  double flops = 0;       ///< adds + multiplies
  double divides = 0;     ///< FP divides (expensive on all 1995 CPUs)
  double pow_calls = 0;   ///< library exponentiations (software, ~100 cyc)

  // Memory behaviour (per point per step).
  double mem_accesses = 0;          ///< executed loads + stores
  double unique_bytes = 0;          ///< compulsory streamed bytes
  double unit_stride_fraction = 1;  ///< share of accesses at stride 1
  double temporal_reuse_fraction = 0.6;  ///< share of accesses that could
                                         ///< hit if the sweep working set
                                         ///< stays resident
  double sweep_working_set_bytes = 0;    ///< bytes live across one sweep
                                         ///< line (grid line x arrays)

  /// Profile for the given equations and code version, for a grid with
  /// `nj` radial points (the radial extent sets the sweep working set).
  static KernelProfile make(Equations eq, CodeVersion v, int nj = 100);
};

}  // namespace nsp::arch
