#include "arch/platform.hpp"
#include "sim/simulator.hpp"

namespace nsp::arch {

std::string to_string(NetKind k) {
  switch (k) {
    case NetKind::Perfect: return "perfect";
    case NetKind::Ethernet: return "Ethernet";
    case NetKind::Fddi: return "FDDI";
    case NetKind::Atm: return "ATM";
    case NetKind::AllnodeF: return "ALLNODE-F";
    case NetKind::AllnodeS: return "ALLNODE-S";
    case NetKind::SpSwitch: return "SP switch";
    case NetKind::Torus3D: return "T3D torus";
  }
  return "?";
}

std::unique_ptr<NetworkModel> Platform::make_network(sim::Simulator& s,
                                                     int nodes) const {
  if (link_bandwidth_override_bps > 0 &&
      (net == NetKind::AllnodeF || net == NetKind::AllnodeS ||
       net == NetKind::SpSwitch)) {
    return std::make_unique<OmegaSwitch>(s, std::max(2, nodes),
                                         link_bandwidth_override_bps,
                                         "custom switch", 5e-6);
  }
  switch (net) {
    case NetKind::Perfect:
      return std::make_unique<PerfectNetwork>(s);
    case NetKind::Ethernet:
      return std::make_unique<EthernetBus>(s);
    case NetKind::Fddi:
      return std::make_unique<FddiRing>(s, std::max(2, nodes));
    case NetKind::Atm:
      return std::make_unique<AtmSwitch>(s, std::max(2, nodes));
    case NetKind::AllnodeF:
      return OmegaSwitch::allnode_f(s, std::max(2, nodes));
    case NetKind::AllnodeS:
      return OmegaSwitch::allnode_s(s, std::max(2, nodes));
    case NetKind::SpSwitch:
      return OmegaSwitch::sp_switch(s, std::max(2, nodes));
    case NetKind::Torus3D:
      return std::make_unique<Torus3D>(s);
  }
  return std::make_unique<PerfectNetwork>(s);
}

Platform Platform::lace560_ethernet() {
  Platform p;
  p.name = "LACE/560 Ethernet";
  p.cpu = CpuModel::rs6000_560();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.net = NetKind::Ethernet;
  p.max_procs = 16;
  // NFS home directories over the same shared Ethernet: checkpoints
  // crawl at well under the wire rate.
  p.io_bandwidth_Bps = 0.9e6;
  p.io_latency_s = 0.2;
  return p;
}

Platform Platform::lace560_allnode_s() {
  Platform p;
  p.name = "LACE/560 ALLNODE-S";
  p.cpu = CpuModel::rs6000_560();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.net = NetKind::AllnodeS;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 2.5e6;  // NFS server reached over ALLNODE
  p.io_latency_s = 0.15;
  return p;
}

Platform Platform::lace560_fddi() {
  Platform p;
  p.name = "LACE/560 FDDI";
  p.cpu = CpuModel::rs6000_560();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.net = NetKind::Fddi;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 4e6;  // NFS over the 100 Mb/s ring
  p.io_latency_s = 0.1;
  return p;
}

Platform Platform::lace590_allnode_f() {
  Platform p;
  p.name = "LACE/590 ALLNODE-F";
  p.cpu = CpuModel::rs6000_590();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.sw_speed_factor = 0.64;  // PVM runs on the faster 590
  p.net = NetKind::AllnodeF;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 6e6;
  p.io_latency_s = 0.1;
  return p;
}

Platform Platform::lace590_atm() {
  Platform p;
  p.name = "LACE/590 ATM";
  p.cpu = CpuModel::rs6000_590();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.sw_speed_factor = 0.64;
  p.net = NetKind::Atm;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 8e6;
  p.io_latency_s = 0.1;
  return p;
}

Platform Platform::ibm_sp_mpl() {
  Platform p;
  p.name = "IBM SP (MPL)";
  p.cpu = CpuModel::rs6k_370();
  p.msglayer = MsgLayerModel::mpl_sp();
  p.net = NetKind::SpSwitch;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 10e6;  // per-node SCSI behind the PIOFS layer
  p.io_latency_s = 0.02;
  return p;
}

Platform Platform::ibm_sp_pvme() {
  Platform p;
  p.name = "IBM SP (PVMe)";
  p.cpu = CpuModel::rs6k_370();
  p.msglayer = MsgLayerModel::pvme_sp();
  p.net = NetKind::SpSwitch;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 10e6;
  p.io_latency_s = 0.02;
  return p;
}

Platform Platform::cray_t3d() {
  Platform p;
  p.name = "Cray T3D";
  p.cpu = CpuModel::alpha_t3d();
  p.msglayer = MsgLayerModel::pvm_t3d();
  p.net = NetKind::Torus3D;
  p.max_procs = 16;  // 16 of 64 nodes were available in single-user mode
  p.io_bandwidth_Bps = 30e6;  // checkpoints funnel through the host Y-MP
  p.io_latency_s = 0.01;
  return p;
}

Platform Platform::cray_t3d_shmem() {
  Platform p = cray_t3d();
  p.name = "Cray T3D (SHMEM)";
  p.msglayer = MsgLayerModel::shmem_t3d();
  return p;
}

Platform Platform::cray_ymp() {
  Platform p;
  p.name = "Cray Y-MP";
  p.cpu = CpuModel::ymp_vector();
  p.msglayer = MsgLayerModel::shared_memory();
  p.net = NetKind::Perfect;
  p.max_procs = 8;
  p.shared_memory = true;
  // Partitioning orthogonal to the sweep keeps full 250-point vectors.
  p.doall_vector_length = 250;
  p.io_bandwidth_Bps = 200e6;  // the Y-MP I/O subsystem (IOS + SSD)
  p.io_latency_s = 0.002;
  return p;
}

Platform Platform::dash() {
  Platform p;
  p.name = "DASH (cc-NUMA)";
  // A 1992 DASH node: 33 MHz MIPS R3000 with a 64 KB + 256 KB cache
  // hierarchy; modelled here as one effective first-level geometry.
  CpuModel cpu;
  cpu.name = "MIPS R3000 (DASH node)";
  cpu.clock_hz = 33e6;
  cpu.flops_per_cycle = 1.0;
  cpu.dcache = {64 * 1024, 64, 1};
  cpu.memory_latency_cycles = 10;  // local cluster memory
  cpu.bus_bytes_per_cycle = 4;
  cpu.divide_cycles = 19;
  cpu.pow_cycles = 130;
  p.cpu = cpu;
  p.msglayer = MsgLayerModel::shared_memory();
  p.net = NetKind::Perfect;
  p.max_procs = 16;
  p.shared_memory = true;
  p.doall_parallel_fraction = 0.995;
  p.doall_sync_s = 15e-6;  // hardware-supported synchronization
  // ~3 us remote miss (100+ cycles through the directory + mesh) and
  // roughly one line per halo point per live array.
  p.numa_remote_miss_s = 3e-6;
  p.numa_halo_lines_per_point = 20;
  p.io_bandwidth_Bps = 4e6;  // local SCSI on the cluster node
  p.io_latency_s = 0.03;
  return p;
}

std::vector<Platform> Platform::all() {
  return {lace560_ethernet(), lace560_allnode_s(), lace560_fddi(),
          lace590_allnode_f(), lace590_atm(),      ibm_sp_mpl(),
          ibm_sp_pvme(),       cray_t3d(),         cray_ymp()};
}

}  // namespace nsp::arch
