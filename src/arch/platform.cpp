#include "arch/platform.hpp"
#include "sim/simulator.hpp"

namespace nsp::arch {

std::string to_string(NetKind k) {
  switch (k) {
    case NetKind::Perfect: return "perfect";
    case NetKind::Ethernet: return "Ethernet";
    case NetKind::Fddi: return "FDDI";
    case NetKind::Atm: return "ATM";
    case NetKind::AllnodeF: return "ALLNODE-F";
    case NetKind::AllnodeS: return "ALLNODE-S";
    case NetKind::SpSwitch: return "SP switch";
    case NetKind::Torus3D: return "T3D torus";
    case NetKind::Torus2D: return "2-D torus";
    case NetKind::FatTree: return "fat-tree";
    case NetKind::Dragonfly: return "dragonfly";
  }
  return "?";
}

std::unique_ptr<NetworkModel> Platform::make_network(sim::Simulator& s,
                                                     int nodes) const {
  if (link_bandwidth_override_bps > 0 &&
      (net == NetKind::AllnodeF || net == NetKind::AllnodeS ||
       net == NetKind::SpSwitch)) {
    return std::make_unique<OmegaSwitch>(s, std::max(2, nodes),
                                         link_bandwidth_override_bps,
                                         "custom switch", 5e-6);
  }
  switch (net) {
    case NetKind::Perfect:
      return std::make_unique<PerfectNetwork>(s);
    case NetKind::Ethernet:
      return std::make_unique<EthernetBus>(s);
    case NetKind::Fddi:
      return std::make_unique<FddiRing>(s, std::max(2, nodes));
    case NetKind::Atm:
      return std::make_unique<AtmSwitch>(s, std::max(2, nodes));
    case NetKind::AllnodeF:
      return OmegaSwitch::allnode_f(s, std::max(2, nodes));
    case NetKind::AllnodeS:
      return OmegaSwitch::allnode_s(s, std::max(2, nodes));
    case NetKind::SpSwitch:
      return OmegaSwitch::sp_switch(s, std::max(2, nodes));
    case NetKind::Torus3D:
      // Sized to the rank count: the fixed 8x4x2 of the paper's machine
      // used to be instantiated regardless of `nodes`, so a >= 65-rank
      // replay walked links off the end of the machine. sized_for keeps
      // the 8x4x2 shape (and its exact pricing) while it fits and grows
      // near-cubically beyond.
      return Torus3D::sized_for(s, std::max(2, nodes),
                                netp.link_Bps > 0 ? netp.link_Bps : 150e6,
                                netp.latency_s > 0 ? netp.latency_s : 2e-6);
    case NetKind::Torus2D:
      return Torus2D::sized_for(s, std::max(2, nodes),
                                netp.link_Bps > 0 ? netp.link_Bps : 10e9,
                                netp.latency_s > 0 ? netp.latency_s : 50e-9);
    case NetKind::FatTree:
      return std::make_unique<FatTree>(
          s, std::max(2, nodes), netp.radix > 0 ? netp.radix : 24,
          netp.oversubscription >= 1.0 ? netp.oversubscription : 1.0,
          netp.link_Bps > 0 ? netp.link_Bps : 12.5e9,
          netp.latency_s > 0 ? netp.latency_s : 120e-9);
    case NetKind::Dragonfly:
      return std::make_unique<Dragonfly>(
          s, std::max(2, nodes), netp.router_nodes > 0 ? netp.router_nodes : 4,
          netp.group_routers > 0 ? netp.group_routers : 16,
          netp.global_links > 0 ? netp.global_links : 2,
          netp.link_Bps > 0 ? netp.link_Bps : 10e9,
          netp.link_Bps > 0 ? 1.2 * netp.link_Bps : 12e9,
          netp.latency_s > 0 ? netp.latency_s : 100e-9);
  }
  return std::make_unique<PerfectNetwork>(s);
}

Platform Platform::lace560_ethernet() {
  Platform p;
  p.name = "LACE/560 Ethernet";
  p.cpu = CpuModel::rs6000_560();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.net = NetKind::Ethernet;
  p.max_procs = 16;
  // NFS home directories over the same shared Ethernet: checkpoints
  // crawl at well under the wire rate.
  p.io_bandwidth_Bps = 0.9e6;
  p.io_latency_s = 0.2;
  return p;
}

Platform Platform::lace560_allnode_s() {
  Platform p;
  p.name = "LACE/560 ALLNODE-S";
  p.cpu = CpuModel::rs6000_560();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.net = NetKind::AllnodeS;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 2.5e6;  // NFS server reached over ALLNODE
  p.io_latency_s = 0.15;
  return p;
}

Platform Platform::lace560_fddi() {
  Platform p;
  p.name = "LACE/560 FDDI";
  p.cpu = CpuModel::rs6000_560();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.net = NetKind::Fddi;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 4e6;  // NFS over the 100 Mb/s ring
  p.io_latency_s = 0.1;
  return p;
}

Platform Platform::lace590_allnode_f() {
  Platform p;
  p.name = "LACE/590 ALLNODE-F";
  p.cpu = CpuModel::rs6000_590();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.sw_speed_factor = 0.64;  // PVM runs on the faster 590
  p.net = NetKind::AllnodeF;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 6e6;
  p.io_latency_s = 0.1;
  return p;
}

Platform Platform::lace590_atm() {
  Platform p;
  p.name = "LACE/590 ATM";
  p.cpu = CpuModel::rs6000_590();
  p.msglayer = MsgLayerModel::pvm_lace();
  p.sw_speed_factor = 0.64;
  p.net = NetKind::Atm;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 8e6;
  p.io_latency_s = 0.1;
  return p;
}

Platform Platform::ibm_sp_mpl() {
  Platform p;
  p.name = "IBM SP (MPL)";
  p.cpu = CpuModel::rs6k_370();
  p.msglayer = MsgLayerModel::mpl_sp();
  p.net = NetKind::SpSwitch;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 10e6;  // per-node SCSI behind the PIOFS layer
  p.io_latency_s = 0.02;
  return p;
}

Platform Platform::ibm_sp_pvme() {
  Platform p;
  p.name = "IBM SP (PVMe)";
  p.cpu = CpuModel::rs6k_370();
  p.msglayer = MsgLayerModel::pvme_sp();
  p.net = NetKind::SpSwitch;
  p.max_procs = 16;
  p.io_bandwidth_Bps = 10e6;
  p.io_latency_s = 0.02;
  return p;
}

Platform Platform::cray_t3d() {
  Platform p;
  p.name = "Cray T3D";
  p.cpu = CpuModel::alpha_t3d();
  p.msglayer = MsgLayerModel::pvm_t3d();
  p.net = NetKind::Torus3D;
  p.max_procs = 16;  // 16 of 64 nodes were available in single-user mode
  p.io_bandwidth_Bps = 30e6;  // checkpoints funnel through the host Y-MP
  p.io_latency_s = 0.01;
  return p;
}

Platform Platform::cray_t3d_shmem() {
  Platform p = cray_t3d();
  p.name = "Cray T3D (SHMEM)";
  p.msglayer = MsgLayerModel::shmem_t3d();
  return p;
}

Platform Platform::cray_ymp() {
  Platform p;
  p.name = "Cray Y-MP";
  p.cpu = CpuModel::ymp_vector();
  p.msglayer = MsgLayerModel::shared_memory();
  p.net = NetKind::Perfect;
  p.max_procs = 8;
  p.shared_memory = true;
  // Partitioning orthogonal to the sweep keeps full 250-point vectors.
  p.doall_vector_length = 250;
  p.io_bandwidth_Bps = 200e6;  // the Y-MP I/O subsystem (IOS + SSD)
  p.io_latency_s = 0.002;
  return p;
}

Platform Platform::dash() {
  Platform p;
  p.name = "DASH (cc-NUMA)";
  // A 1992 DASH node: 33 MHz MIPS R3000 with a 64 KB + 256 KB cache
  // hierarchy; modelled here as one effective first-level geometry.
  CpuModel cpu;
  cpu.name = "MIPS R3000 (DASH node)";
  cpu.clock_hz = 33e6;
  cpu.flops_per_cycle = 1.0;
  cpu.dcache = {64 * 1024, 64, 1};
  cpu.memory_latency_cycles = 10;  // local cluster memory
  cpu.bus_bytes_per_cycle = 4;
  cpu.divide_cycles = 19;
  cpu.pow_cycles = 130;
  p.cpu = cpu;
  p.msglayer = MsgLayerModel::shared_memory();
  p.net = NetKind::Perfect;
  p.max_procs = 16;
  p.shared_memory = true;
  p.doall_parallel_fraction = 0.995;
  p.doall_sync_s = 15e-6;  // hardware-supported synchronization
  // ~3 us remote miss (100+ cycles through the directory + mesh) and
  // roughly one line per halo point per live array.
  p.numa_remote_miss_s = 3e-6;
  p.numa_halo_lines_per_point = 20;
  p.io_bandwidth_Bps = 4e6;  // local SCSI on the cluster node
  p.io_latency_s = 0.03;
  return p;
}

Platform Platform::ib_fattree() {
  Platform p;
  p.name = "Xeon cluster (EDR fat-tree)";
  p.cpu = CpuModel::xeon_core();
  p.msglayer = MsgLayerModel::mpi_modern();
  p.net = NetKind::FatTree;
  // 2:1 tapered EDR tree, 36-port leaves (24 down): the SDumont-class
  // cluster of the Junqueira-Junior supersonic-jet scaling study.
  p.netp.link_Bps = 12.5e9;
  p.netp.latency_s = 120e-9;
  p.netp.radix = 24;
  p.netp.oversubscription = 2.0;
  p.max_procs = 1024;
  p.sw_speed_factor = 1.0;
  p.io_bandwidth_Bps = 5e9;  // parallel file system share
  p.io_latency_s = 2e-3;
  return p;
}

Platform Platform::xc_dragonfly() {
  Platform p;
  p.name = "Cray XC (Aries dragonfly)";
  p.cpu = CpuModel::xeon_core();
  p.msglayer = MsgLayerModel::mpi_modern();
  p.net = NetKind::Dragonfly;
  // Aries: 4 nodes per router, 16-router... the XC groups are 96
  // routers of 4 nodes; 16 routers per modelled group keeps the global
  // pipe per ~64 ranks, matching the per-group taper of the Beskow runs
  // in the Nek5000 petascale study.
  p.netp.link_Bps = 10e9;
  p.netp.latency_s = 100e-9;
  p.netp.router_nodes = 4;
  p.netp.group_routers = 16;
  p.netp.global_links = 2;
  p.max_procs = 1024;
  p.io_bandwidth_Bps = 8e9;
  p.io_latency_s = 1e-3;
  return p;
}

Platform Platform::knl_fattree() {
  Platform p;
  p.name = "KNL many-core (OPA fat-tree)";
  p.cpu = CpuModel::knl_core();
  p.msglayer = MsgLayerModel::mpi_manycore();
  p.net = NetKind::FatTree;
  // One NIC feeds 68 ranks of a node: the per-rank share of the 100
  // Gb/s Omni-Path link is what the halo exchange actually sees.
  p.netp.link_Bps = 12.5e9 / 68.0;
  p.netp.latency_s = 150e-9;
  p.netp.radix = 32;
  p.netp.oversubscription = 2.0;
  p.max_procs = 2048;
  p.io_bandwidth_Bps = 2e9;
  p.io_latency_s = 2e-3;
  return p;
}

Platform Platform::gpu_fattree() {
  Platform p;
  p.name = "GPU cluster (NDR fat-tree)";
  p.cpu = CpuModel::gpu_device();
  p.msglayer = MsgLayerModel::mpi_gpu();
  p.net = NetKind::FatTree;
  // One rank = one device with its own 200 Gb/s-class port.
  p.netp.link_Bps = 25e9;
  p.netp.latency_s = 130e-9;
  p.netp.radix = 16;
  p.netp.oversubscription = 1.0;
  p.max_procs = 512;
  p.io_bandwidth_Bps = 10e9;
  p.io_latency_s = 1e-3;
  return p;
}

Platform Platform::bgq_torus() {
  Platform p;
  p.name = "BlueGene/Q (torus)";
  p.cpu = CpuModel::bgq_core();
  p.msglayer = MsgLayerModel::mpi_modern();
  p.net = NetKind::Torus3D;
  // The 5-D torus collapsed to its 3-D bisection equivalent: 2 GB/s
  // links, sub-microsecond hops — the Mira partitions of the Nek5000
  // petascale study.
  p.netp.link_Bps = 2e9;
  p.netp.latency_s = 80e-9;
  p.max_procs = 4096;
  p.io_bandwidth_Bps = 10e9;  // GPFS through dedicated I/O nodes
  p.io_latency_s = 1e-3;
  return p;
}

std::vector<Platform> Platform::all() {
  return {lace560_ethernet(), lace560_allnode_s(), lace560_fddi(),
          lace590_allnode_f(), lace590_atm(),      ibm_sp_mpl(),
          ibm_sp_pvme(),       cray_t3d(),         cray_ymp()};
}

std::vector<Platform> Platform::modern() {
  return {ib_fattree(), xc_dragonfly(), knl_fattree(), gpu_fattree(),
          bgq_torus()};
}

}  // namespace nsp::arch
