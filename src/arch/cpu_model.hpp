// Analytic CPU + cache timing model for the 1995 processors in the paper.
//
// The paper's central single-processor claim is that this application is
// memory-hierarchy-bound: "the bottleneck seems to be the performance of
// the cache and the memory hierarchy. A proper cache design is critical."
// The model therefore converts a KernelProfile into cycles as
//
//   cycles = flop_issue + divides + pow + memory_stalls
//
// with memory stalls computed from an analytic miss model that responds
// to the three cache properties the paper calls out: capacity (8 KB T3D
// vs 64/256 KB LACE), associativity (direct-mapped T3D vs 4-way LACE),
// and memory-bus width (the 590's bus is "4 times wider" than the 560's).
#pragma once

#include <string>

#include "arch/kernel_profile.hpp"

namespace nsp::arch {

/// First-level data-cache geometry.
struct CacheGeometry {
  std::size_t size_bytes = 64 * 1024;
  std::size_t line_bytes = 128;
  int associativity = 4;
};

/// Breakdown of where the cycles of a kernel invocation went.
struct CycleBreakdown {
  double flop_cycles = 0;
  double divide_cycles = 0;
  double pow_cycles = 0;
  double stall_cycles = 0;
  double total() const {
    return flop_cycles + divide_cycles + pow_cycles + stall_cycles;
  }
};

/// A scalar (or vector) CPU timing model.
struct CpuModel {
  std::string name;
  double clock_hz = 50e6;
  double flops_per_cycle = 2.0;  ///< peak FP issue width
  CacheGeometry dcache;
  double memory_latency_cycles = 12;   ///< miss latency before refill
  double bus_bytes_per_cycle = 8;      ///< refill bandwidth (bus width)
  double writeback_fraction = 0.3;     ///< dirty-line writeback share
  double divide_cycles = 19;
  double pow_cycles = 110;             ///< software exponentiation

  /// Integer/address/branch issue overhead per FP op. The 1995 scalar
  /// cores pay ~0.40; wide-SIMD cores amortize the loop scaffolding over
  /// a full vector of lanes and pay far less.
  double overhead_per_flop = 0.40;

  // High-bandwidth-memory tier (many-core / accelerator nodes, e.g.
  // MCDRAM or on-package HBM stacks): while the sweep working set fits
  // hbm_capacity_bytes, cache refills stream from this tier instead of
  // the DDR bus. All three fields zero = no HBM tier (every 1995 preset).
  double hbm_bytes_per_cycle = 0;      ///< refill bandwidth from HBM
  double hbm_latency_cycles = 0;       ///< miss latency from HBM
  double hbm_capacity_bytes = 0;       ///< tier capacity per rank

  /// Occupancy half-point for throughput-oriented cores (0 = off): a
  /// wide-vector or accelerator rank needs ~n_half_points grid points in
  /// flight to reach its issue rate; below that the issue terms derate
  /// by points / (points + n_half_points) — the n-half law applied to
  /// strong scaling, which is what bends modern speedup curves over.
  double n_half_points = 0;

  // Vector machines (the Cray Y-MP) bypass the cache model entirely:
  // the application vectorizes, so the effective rate is the asymptotic
  // vector rate derated by the n-half startup law for finite vector
  // lengths: rate(len) = vector_mflops * len / (len + vector_n_half).
  bool vector = false;
  double vector_mflops = 0;   ///< asymptotic (long-vector) rate
  double vector_n_half = 0;   ///< vector length at half the asymptotic rate

  /// Finite-vector-length efficiency factor in (0, 1].
  double vector_efficiency(double length) const {
    if (!vector || vector_n_half <= 0 || length <= 0) return 1.0;
    return length / (length + vector_n_half);
  }

  /// Cycles to refill one line after a miss (DDR path).
  double miss_penalty_cycles() const {
    return memory_latency_cycles +
           static_cast<double>(dcache.line_bytes) / bus_bytes_per_cycle;
  }

  /// Refill cost for a sweep whose working set is `working_set_bytes`:
  /// the HBM tier serves it while it fits, the DDR bus past capacity.
  double miss_penalty_cycles_for(double working_set_bytes) const {
    if (hbm_bytes_per_cycle > 0 && working_set_bytes <= hbm_capacity_bytes) {
      return hbm_latency_cycles +
             static_cast<double>(dcache.line_bytes) / hbm_bytes_per_cycle;
    }
    return miss_penalty_cycles();
  }

  /// Effective cache capacity once conflict misses are accounted for:
  /// direct-mapped caches lose roughly half their capacity to conflicts
  /// on multi-array stencil codes; 4-way behaves nearly fully.
  double effective_capacity_bytes() const;

  /// Cycle breakdown for `points` grid points of the given profile.
  CycleBreakdown cycles(const KernelProfile& p, double points = 1.0) const;

  /// Seconds for `points` grid points of the profile.
  double seconds(const KernelProfile& p, double points = 1.0) const;

  /// Effective MFLOPS achieved on the profile (flops / time; the paper
  /// quotes 9.3 MFLOPS for V1 and 16.0 MFLOPS for V5 on the RS6000/560).
  double effective_mflops(const KernelProfile& p) const;

  // ---- Presets for every CPU in the paper -------------------------------
  static CpuModel rs6000_560();  ///< LACE lower half: 50 MHz, 64 KB 4-way
  static CpuModel rs6000_590();  ///< LACE upper half: 66.5 MHz, 256 KB, wide bus
  static CpuModel rs6k_370();    ///< IBM SP node: 62.5 MHz, 32 KB
  static CpuModel alpha_t3d();   ///< Cray T3D node: 150 MHz, 8 KB direct-mapped
  static CpuModel ymp_vector();  ///< Cray Y-MP processor (vector)

  // ---- Modern presets (one rank each; see docs/PLATFORMS.md §6) ---------
  static CpuModel xeon_core();   ///< AVX-512 Xeon core of a cluster node
  static CpuModel knl_core();    ///< many-core Xeon Phi core + MCDRAM tier
  static CpuModel bgq_core();    ///< BlueGene/Q A2 core (QPX)
  static CpuModel gpu_device();  ///< whole GPU accelerator as one rank
};

}  // namespace nsp::arch
