// Analytic CPU + cache timing model for the 1995 processors in the paper.
//
// The paper's central single-processor claim is that this application is
// memory-hierarchy-bound: "the bottleneck seems to be the performance of
// the cache and the memory hierarchy. A proper cache design is critical."
// The model therefore converts a KernelProfile into cycles as
//
//   cycles = flop_issue + divides + pow + memory_stalls
//
// with memory stalls computed from an analytic miss model that responds
// to the three cache properties the paper calls out: capacity (8 KB T3D
// vs 64/256 KB LACE), associativity (direct-mapped T3D vs 4-way LACE),
// and memory-bus width (the 590's bus is "4 times wider" than the 560's).
#pragma once

#include <string>

#include "arch/kernel_profile.hpp"

namespace nsp::arch {

/// First-level data-cache geometry.
struct CacheGeometry {
  std::size_t size_bytes = 64 * 1024;
  std::size_t line_bytes = 128;
  int associativity = 4;
};

/// Breakdown of where the cycles of a kernel invocation went.
struct CycleBreakdown {
  double flop_cycles = 0;
  double divide_cycles = 0;
  double pow_cycles = 0;
  double stall_cycles = 0;
  double total() const {
    return flop_cycles + divide_cycles + pow_cycles + stall_cycles;
  }
};

/// A scalar (or vector) CPU timing model.
struct CpuModel {
  std::string name;
  double clock_hz = 50e6;
  double flops_per_cycle = 2.0;  ///< peak FP issue width
  CacheGeometry dcache;
  double memory_latency_cycles = 12;   ///< miss latency before refill
  double bus_bytes_per_cycle = 8;      ///< refill bandwidth (bus width)
  double writeback_fraction = 0.3;     ///< dirty-line writeback share
  double divide_cycles = 19;
  double pow_cycles = 110;             ///< software exponentiation

  // Vector machines (the Cray Y-MP) bypass the cache model entirely:
  // the application vectorizes, so the effective rate is the asymptotic
  // vector rate derated by the n-half startup law for finite vector
  // lengths: rate(len) = vector_mflops * len / (len + vector_n_half).
  bool vector = false;
  double vector_mflops = 0;   ///< asymptotic (long-vector) rate
  double vector_n_half = 0;   ///< vector length at half the asymptotic rate

  /// Finite-vector-length efficiency factor in (0, 1].
  double vector_efficiency(double length) const {
    if (!vector || vector_n_half <= 0 || length <= 0) return 1.0;
    return length / (length + vector_n_half);
  }

  /// Cycles to refill one line after a miss.
  double miss_penalty_cycles() const {
    return memory_latency_cycles +
           static_cast<double>(dcache.line_bytes) / bus_bytes_per_cycle;
  }

  /// Effective cache capacity once conflict misses are accounted for:
  /// direct-mapped caches lose roughly half their capacity to conflicts
  /// on multi-array stencil codes; 4-way behaves nearly fully.
  double effective_capacity_bytes() const;

  /// Cycle breakdown for `points` grid points of the given profile.
  CycleBreakdown cycles(const KernelProfile& p, double points = 1.0) const;

  /// Seconds for `points` grid points of the profile.
  double seconds(const KernelProfile& p, double points = 1.0) const;

  /// Effective MFLOPS achieved on the profile (flops / time; the paper
  /// quotes 9.3 MFLOPS for V1 and 16.0 MFLOPS for V5 on the RS6000/560).
  double effective_mflops(const KernelProfile& p) const;

  // ---- Presets for every CPU in the paper -------------------------------
  static CpuModel rs6000_560();  ///< LACE lower half: 50 MHz, 64 KB 4-way
  static CpuModel rs6000_590();  ///< LACE upper half: 66.5 MHz, 256 KB, wide bus
  static CpuModel rs6k_370();    ///< IBM SP node: 62.5 MHz, 32 KB
  static CpuModel alpha_t3d();   ///< Cray T3D node: 150 MHz, 8 KB direct-mapped
  static CpuModel ymp_vector();  ///< Cray Y-MP processor (vector)
};

}  // namespace nsp::arch
