#include "arch/kernel_profile.hpp"

#include <stdexcept>

namespace nsp::arch {

std::string to_string(CodeVersion v) {
  switch (v) {
    case CodeVersion::V1_Original:
      return "Version 1 (original)";
    case CodeVersion::V2_StrengthReduction:
      return "Version 2 (strength reduction)";
    case CodeVersion::V3_LoopInterchange:
      return "Version 3 (loop interchange, stride-1)";
    case CodeVersion::V4_DivisionToMultiply:
      return "Version 4 (division -> multiplication)";
    case CodeVersion::V5_CommonCollapse:
      return "Version 5 (COMMON collapse)";
    case CodeVersion::V6_OverlapComm:
      return "Version 6 (overlapped communication)";
    case CodeVersion::V7_UnbundledSends:
      return "Version 7 (unbundled sends)";
  }
  return "Version ?";
}

std::string to_string(Equations e) {
  return e == Equations::NavierStokes ? "Navier-Stokes" : "Euler";
}

KernelProfile KernelProfile::make(Equations eq, CodeVersion v, int nj) {
  const bool ns = eq == Equations::NavierStokes;

  // Anchors from the paper (per point per step, 250x100 grid, 5000 steps):
  //   Navier-Stokes: 145,000e6 / (25000 * 5000) = 1160 FP ops
  //   Euler:          77,000e6 / (25000 * 5000) =  616 FP ops
  //   divisions:     5.5e9 total before V4 -> 44/pt/step; 2.0e9 after -> 16
  const double base_flops = ns ? 1160.0 : 616.0;
  const double div_before = ns ? 44.0 : 24.0;
  const double div_after = ns ? 16.0 : 9.0;
  // Exponentiations eliminated by V2's strength reduction.
  const double pows_v1 = ns ? 6.0 : 3.0;

  KernelProfile p;
  p.name = to_string(eq) + " / " + to_string(v);

  // Memory traffic: a 2-4 MacCormack sweep reads/writes ~0.55 operands
  // per flop; roughly 22 (NS) / 14 (Euler) double arrays are streamed
  // through per step across the four directional sweeps.
  p.mem_accesses = base_flops * 0.55;
  p.unique_bytes = (ns ? 22.0 : 14.0) * 8.0 * 4.0;
  // One sweep line keeps ~(arrays live in the stencil) * nj doubles hot:
  // conserved + predictor state, fluxes, primitives, stresses and heat
  // fluxes for NS; a leaner set for Euler.
  p.sweep_working_set_bytes = (ns ? 40.0 : 32.0) * 8.0 * nj;
  p.temporal_reuse_fraction = 0.50;

  const int stage = static_cast<int>(v);
  // Versions at or past a stage include that optimization (the paper
  // applied them cumulatively; V6/V7 share V5's single-CPU profile).
  const bool has_strength_red = stage >= 2;
  const bool has_interchange = stage >= 3;
  const bool has_div_to_mul = stage >= 4;
  const bool has_common_collapse = stage >= 5;

  p.flops = base_flops;
  p.pow_calls = has_strength_red ? 0.0 : pows_v1;
  if (has_strength_red) p.flops += 2.0 * pows_v1;  // pow -> a few multiplies
  p.divides = has_div_to_mul ? div_after : div_before;
  if (has_div_to_mul) p.flops += (div_before - div_after);  // mult instead

  // Original code sweeps the radial direction with stride = ni (column
  // accesses through row-major-equivalent COMMON layout): only the axial
  // half of the work is stride-1.
  p.unit_stride_fraction = has_interchange ? 0.95 : 0.55;

  // Scattered COMMON blocks cost extra address arithmetic and spill
  // loads; collapsing them removes ~11% of the accesses.
  if (!has_common_collapse) p.mem_accesses *= 1.12;

  if (nj <= 0) throw std::invalid_argument("KernelProfile: nj must be > 0");
  return p;
}

}  // namespace nsp::arch
