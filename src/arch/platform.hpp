// Complete platform presets: one per machine/network/library combination
// the paper measures. A Platform bundles the node CPU model, the message
// layer model, and a network factory, plus the execution style (message
// passing vs the Y-MP's shared-memory DOALL parallelization).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/cpu_model.hpp"
#include "arch/msglayer.hpp"
#include "arch/network.hpp"
#include "sim/simulator.hpp"

namespace nsp::arch {

/// Which interconnect a platform instantiates.
enum class NetKind {
  Perfect,
  Ethernet,
  Fddi,
  Atm,
  AllnodeF,
  AllnodeS,
  SpSwitch,
  Torus3D,
  Torus2D,    ///< wormhole 2-D torus/mesh (many-core on-chip)
  FatTree,    ///< multi-level oversubscription-aware fat tree
  Dragonfly,  ///< Aries-class groups + pooled global links
};

std::string to_string(NetKind k);

/// Geometry/rate knobs for the modern interconnects (NetKind::FatTree,
/// Dragonfly, Torus2D, and the sized Torus3D). Zeros mean "the kind's
/// default", so the 1995 presets carry an all-default NetParams and
/// price exactly as they always did.
struct NetParams {
  double link_Bps = 0;        ///< per-link bandwidth (0 = kind default)
  double latency_s = 0;       ///< per-stage/hop latency (0 = kind default)
  double oversubscription = 0;///< fat-tree taper, >= 1 (0 = 1:1)
  int radix = 0;              ///< fat-tree down-ports per leaf (0 = 24)
  int router_nodes = 0;       ///< dragonfly nodes per router (0 = 4)
  int group_routers = 0;      ///< dragonfly routers per group (0 = 16)
  int global_links = 0;       ///< dragonfly global links per router (0 = 2)
};

/// A machine configuration the replay engine can execute on.
struct Platform {
  std::string name;
  CpuModel cpu;
  MsgLayerModel msglayer;
  NetKind net = NetKind::Perfect;
  int max_procs = 16;

  // Shared-memory (Cray Y-MP) execution: DOALL loops instead of message
  // passing. `doall_parallel_fraction` is the Amdahl fraction of the
  // per-step work inside parallel loops; `doall_sync_s` the cost of one
  // fork/join region; `doall_regions_per_step` how many parallel regions
  // one time step executes.
  bool shared_memory = false;
  double doall_parallel_fraction = 0.995;
  double doall_sync_s = 40e-6;
  int doall_regions_per_step = 8;
  /// Vector length the DOALL partitioning preserves (0 = not a vector
  /// machine / ignore). The paper "partitioned the domain along the
  /// orthogonal direction of the sweep to keep the vector lengths
  /// large"; set doall_partition_along_sweep to model the bad choice,
  /// where each processor's vectors shrink to length/P.
  double doall_vector_length = 0;
  bool doall_partition_along_sweep = false;

  /// Cache-coherent NUMA (DASH-style) shared memory: communication
  /// happens implicitly through remote cache misses on the subdomain
  /// boundary lines instead of messages. Per step each processor takes
  /// ~2 boundary columns x nj x halo-lines remote misses.
  double numa_remote_miss_s = 0;          ///< latency of one remote miss
  double numa_halo_lines_per_point = 0;   ///< cache lines per halo point

  /// Stanford-DASH-style cache-coherent NUMA multiprocessor: the
  /// architecture the paper explicitly left out of its study.
  static Platform dash();

  /// Message-layer software costs are CPU work; they scale with the node
  /// CPU's scalar speed. 1.0 means "as measured on the RS6000/560"; the
  /// 590 executes the same library code ~1.55x faster.
  double sw_speed_factor = 1.0;

  /// When > 0, overrides the per-link bit rate of switch-type networks
  /// (ALLNODE-F/S, SP switch) — used by what-if sweeps such as the NOW
  /// feasibility ablation.
  double link_bandwidth_override_bps = 0;

  /// Modern-interconnect geometry (ignored by the 1995 network kinds).
  NetParams netp;

  /// Stable-storage path of the machine: the bandwidth a coordinated
  /// checkpoint write (gathered state -> disk/file server) sustains,
  /// and the fixed per-write latency (open/sync/protocol). The fault
  /// layer derives checkpoint cost from these and the grid size instead
  /// of a flat per-spec constant, so the same crash spec prices
  /// differently on NFS-over-Ethernet workstations than on the Y-MP's
  /// I/O subsystem — one cost model for compute, communication, and
  /// recovery overheads alike.
  double io_bandwidth_Bps = 4e6;
  double io_latency_s = 0.05;

  /// Instantiates this platform's interconnect for `nodes` ranks.
  std::unique_ptr<NetworkModel> make_network(sim::Simulator& s, int nodes) const;

  // ---- Presets (Section 4 of the paper) ---------------------------------
  static Platform lace560_ethernet();   ///< upper-half 560s on 10 Mb/s Ethernet
  static Platform lace560_allnode_s();  ///< 560s on the ALLNODE prototype
  static Platform lace560_fddi();       ///< nodes 9-24 on FDDI
  static Platform lace590_allnode_f();  ///< 590s on the fast ALLNODE switch
  static Platform lace590_atm();        ///< 590s on 155 Mb/s ATM
  static Platform ibm_sp_mpl();         ///< SP with IBM's native MPL
  static Platform ibm_sp_pvme();        ///< SP with PVMe
  static Platform cray_t3d();           ///< T3D, Cray PVM, 3-D torus
  static Platform cray_t3d_shmem();     ///< T3D with one-sided SHMEM puts
  static Platform cray_ymp();           ///< Y-MP/8 shared-memory DOALL

  // ---- Modern presets (docs/PLATFORMS.md §6) ----------------------------
  static Platform ib_fattree();    ///< Xeon cluster on an EDR fat tree
  static Platform xc_dragonfly();  ///< Cray XC-style Aries dragonfly
  static Platform knl_fattree();   ///< many-core KNL nodes, OPA fat tree
  static Platform gpu_fattree();   ///< GPU-per-rank nodes on a fat tree
  static Platform bgq_torus();     ///< BlueGene/Q-style big torus

  /// The four platforms of the comparative study (Figs 9-10) plus the
  /// LACE network variants (Figs 3-8).
  static std::vector<Platform> all();

  /// The modern platform zoo used by the 10^3-10^5-rank scaling sweeps.
  static std::vector<Platform> modern();
};

}  // namespace nsp::arch
