#include "arch/cpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace nsp::arch {

double CpuModel::effective_capacity_bytes() const {
  // Multi-array stencil codes lose capacity to conflict misses; a
  // direct-mapped cache keeps roughly half its nominal capacity useful,
  // a 4-way cache nearly all of it.
  const double assoc_eff = std::min(1.0, 0.5 + 0.125 * (dcache.associativity - 1));
  return assoc_eff * static_cast<double>(dcache.size_bytes);
}

CycleBreakdown CpuModel::cycles(const KernelProfile& p, double points) const {
  CycleBreakdown b;
  if (vector) {
    // Vector CPUs: long-vector sweeps run at the sustained vector rate;
    // divides pipeline through the reciprocal-approximation unit.
    const double total_flops = (p.flops + 3.0 * p.divides + 8.0 * p.pow_calls) * points;
    b.flop_cycles = total_flops / (vector_mflops * 1e6) * clock_hz;
    return b;
  }

  // Issue cost: FP issue + one cycle per load/store + fixed-point,
  // address and branch overhead proportional to the FP work. Wide-SIMD
  // cores amortize the scaffolding (overhead_per_flop) and issue several
  // loads per cycle alongside the FP pipes, so their load/store issue
  // rides the same width as the FP issue.
  const double ls_width = flops_per_cycle > 2.0 ? flops_per_cycle / 2.0 : 1.0;
  b.flop_cycles = (p.flops / flops_per_cycle + p.mem_accesses / ls_width +
                   overhead_per_flop * p.flops) *
                  points;
  b.divide_cycles = p.divides * divide_cycles * points;
  b.pow_cycles = p.pow_calls * pow_cycles * points;
  // Throughput cores under-fill below ~n_half_points in-flight points
  // (vector tails, unfilled warps): the issue terms derate by the
  // occupancy factor points / (points + n_half).
  if (n_half_points > 0 && points > 0) {
    const double occupancy = points / (points + n_half_points);
    b.flop_cycles /= occupancy;
    b.divide_cycles /= occupancy;
    b.pow_cycles /= occupancy;
  }

  // Miss model. Unit-stride accesses miss once per cache line of
  // doubles; non-unit-stride accesses open a new line with probability
  // kNonUnitMissProb (adjacent outer iterations recover some of the
  // fetched line before it is evicted).
  constexpr double kNonUnitMissProb = 0.35;
  const double line = static_cast<double>(dcache.line_bytes);
  const double acc_unit = p.mem_accesses * p.unit_stride_fraction;
  const double acc_nonunit = p.mem_accesses - acc_unit;
  const double raw_misses = acc_unit * (8.0 / line) + acc_nonunit * kNonUnitMissProb;

  // Temporal reuse rescues the profile's reuse fraction of those misses
  // when the sweep working set stays cache-resident; past capacity the
  // benefit collapses super-linearly (thrashing).
  const double cap = effective_capacity_bytes();
  double fit = 1.0;
  if (p.sweep_working_set_bytes > cap && p.sweep_working_set_bytes > 0) {
    fit = std::pow(cap / p.sweep_working_set_bytes, 3.0);
  }
  const double misses = raw_misses * (1.0 - p.temporal_reuse_fraction * fit);

  b.stall_cycles = misses * miss_penalty_cycles_for(p.sweep_working_set_bytes) *
                   (1.0 + writeback_fraction) * points;
  return b;
}

double CpuModel::seconds(const KernelProfile& p, double points) const {
  return cycles(p, points).total() / clock_hz;
}

double CpuModel::effective_mflops(const KernelProfile& p) const {
  const double s = seconds(p, 1.0);
  return s > 0 ? p.flops / s / 1e6 : 0.0;
}

CpuModel CpuModel::rs6000_560() {
  CpuModel m;
  m.name = "RS6000/560";
  m.clock_hz = 50e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {64 * 1024, 128, 4};
  m.memory_latency_cycles = 12;
  m.bus_bytes_per_cycle = 8;
  m.divide_cycles = 19;
  m.pow_cycles = 110;
  return m;
}

CpuModel CpuModel::rs6000_590() {
  CpuModel m;
  m.name = "RS6000/590";
  m.clock_hz = 66.5e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {256 * 1024, 256, 4};
  m.memory_latency_cycles = 12;
  m.bus_bytes_per_cycle = 32;  // "memory bus 4 times wider" than the 560
  m.divide_cycles = 17;
  m.pow_cycles = 100;
  return m;
}

CpuModel CpuModel::rs6k_370() {
  CpuModel m;
  m.name = "RS6K/370 (SP node)";
  m.clock_hz = 62.5e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {32 * 1024, 64, 2};
  m.memory_latency_cycles = 24;
  m.bus_bytes_per_cycle = 2;  // thin-node memory subsystem
  m.divide_cycles = 19;
  m.pow_cycles = 110;
  return m;
}

CpuModel CpuModel::alpha_t3d() {
  CpuModel m;
  m.name = "Alpha 21064 (T3D node)";
  m.clock_hz = 150e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {8 * 1024, 32, 1};  // small and direct-mapped: the paper's culprit
  m.memory_latency_cycles = 40;  // in-order EV4: misses serialize fully
  m.bus_bytes_per_cycle = 4;
  m.divide_cycles = 61;  // EV4 FDIV
  m.pow_cycles = 160;
  return m;
}

CpuModel CpuModel::xeon_core() {
  CpuModel m;
  m.name = "Xeon core (AVX-512)";
  m.clock_hz = 2.1e9;
  // Two 8-wide FMA pipes at full width; sustained issue on stencil
  // sweeps is roughly half of the 32-flop peak.
  m.flops_per_cycle = 16.0;
  m.overhead_per_flop = 0.05;
  m.dcache = {1024 * 1024, 64, 16};  // per-core L2 + LLC slice, effective
  m.memory_latency_cycles = 190;
  // ~128 GB/s per socket shared by ~24 cores at 2.1 GHz.
  m.bus_bytes_per_cycle = 2.5;
  m.divide_cycles = 1.0;  // pipelined vdivpd, 8 lanes
  m.pow_cycles = 20;
  m.n_half_points = 400;  // vector tails + OoO window fill
  return m;
}

CpuModel CpuModel::knl_core() {
  CpuModel m;
  m.name = "Xeon Phi core (KNL)";
  m.clock_hz = 1.4e9;
  m.flops_per_cycle = 16.0;  // two AVX-512 VPUs, in-order-ish tile
  m.overhead_per_flop = 0.10;
  m.dcache = {512 * 1024, 64, 8};  // half a shared 1 MB tile L2
  // MCDRAM tier: ~450 GB/s shared by 68 cores; 16 GB per node.
  m.hbm_bytes_per_cycle = 4.7;
  m.hbm_latency_cycles = 170;
  m.hbm_capacity_bytes = 16.0e9 / 68.0;
  // DDR path past the MCDRAM capacity: ~90 GB/s across the node.
  m.memory_latency_cycles = 230;
  m.bus_bytes_per_cycle = 0.95;
  m.divide_cycles = 2.0;
  m.pow_cycles = 32;
  m.n_half_points = 900;  // weaker core needs longer vectors to fill
  return m;
}

CpuModel CpuModel::bgq_core() {
  CpuModel m;
  m.name = "BlueGene/Q A2 core";
  m.clock_hz = 1.6e9;
  m.flops_per_cycle = 8.0;  // 4-wide QPX FMA
  m.overhead_per_flop = 0.15;
  m.dcache = {2 * 1024 * 1024, 128, 16};  // 32 MB L2 shared by 16 cores
  m.memory_latency_cycles = 350;
  m.bus_bytes_per_cycle = 1.66;  // 42.6 GB/s per node, 16 cores, 1.6 GHz
  m.divide_cycles = 8.0;
  m.pow_cycles = 60;
  m.n_half_points = 250;
  return m;
}

CpuModel CpuModel::gpu_device() {
  CpuModel m;
  m.name = "GPU accelerator (HBM)";
  m.clock_hz = 1.4e9;
  // One rank is the whole device: ~5.6 TF/s sustained FP64 across all
  // SMs, with per-lane scaffolding amortized by the SIMT front end.
  m.flops_per_cycle = 4000.0;
  m.overhead_per_flop = 0.02;
  m.dcache = {6 * 1024 * 1024, 128, 16};  // device L2
  // HBM2: ~900 GB/s, 16 GB on package.
  m.hbm_bytes_per_cycle = 640.0;
  m.hbm_latency_cycles = 400;
  m.hbm_capacity_bytes = 16.0e9;
  // Past device memory the working set pages over the host link.
  m.memory_latency_cycles = 1400;
  m.bus_bytes_per_cycle = 11.0;  // ~16 GB/s PCIe
  m.divide_cycles = 0.02;  // throughput cost across thousands of lanes
  m.pow_cycles = 0.10;
  // A device needs hundreds of thousands of points in flight before the
  // SMs fill — the dominant term in strong-scaling saturation.
  m.n_half_points = 2.0e5;
  return m;
}

CpuModel CpuModel::ymp_vector() {
  CpuModel m;
  m.name = "Cray Y-MP processor";
  m.clock_hz = 166e6;
  m.vector = true;
  // Asymptotic vector rate on the 2-4 MacCormack sweeps (peak 333);
  // with n_half = 45 the sustained rate at the paper's 250-point
  // vectors is ~220 MFLOPS.
  m.vector_mflops = 260.0;
  m.vector_n_half = 45.0;
  return m;
}

}  // namespace nsp::arch
