#include "arch/cpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace nsp::arch {

double CpuModel::effective_capacity_bytes() const {
  // Multi-array stencil codes lose capacity to conflict misses; a
  // direct-mapped cache keeps roughly half its nominal capacity useful,
  // a 4-way cache nearly all of it.
  const double assoc_eff = std::min(1.0, 0.5 + 0.125 * (dcache.associativity - 1));
  return assoc_eff * static_cast<double>(dcache.size_bytes);
}

CycleBreakdown CpuModel::cycles(const KernelProfile& p, double points) const {
  CycleBreakdown b;
  if (vector) {
    // Vector CPUs: long-vector sweeps run at the sustained vector rate;
    // divides pipeline through the reciprocal-approximation unit.
    const double total_flops = (p.flops + 3.0 * p.divides + 8.0 * p.pow_calls) * points;
    b.flop_cycles = total_flops / (vector_mflops * 1e6) * clock_hz;
    return b;
  }

  // Issue cost: FP issue + one cycle per load/store + fixed-point,
  // address and branch overhead proportional to the FP work.
  constexpr double kOverheadPerFlop = 0.40;
  b.flop_cycles =
      (p.flops / flops_per_cycle + p.mem_accesses + kOverheadPerFlop * p.flops) * points;
  b.divide_cycles = p.divides * divide_cycles * points;
  b.pow_cycles = p.pow_calls * pow_cycles * points;

  // Miss model. Unit-stride accesses miss once per cache line of
  // doubles; non-unit-stride accesses open a new line with probability
  // kNonUnitMissProb (adjacent outer iterations recover some of the
  // fetched line before it is evicted).
  constexpr double kNonUnitMissProb = 0.35;
  const double line = static_cast<double>(dcache.line_bytes);
  const double acc_unit = p.mem_accesses * p.unit_stride_fraction;
  const double acc_nonunit = p.mem_accesses - acc_unit;
  const double raw_misses = acc_unit * (8.0 / line) + acc_nonunit * kNonUnitMissProb;

  // Temporal reuse rescues the profile's reuse fraction of those misses
  // when the sweep working set stays cache-resident; past capacity the
  // benefit collapses super-linearly (thrashing).
  const double cap = effective_capacity_bytes();
  double fit = 1.0;
  if (p.sweep_working_set_bytes > cap && p.sweep_working_set_bytes > 0) {
    fit = std::pow(cap / p.sweep_working_set_bytes, 3.0);
  }
  const double misses = raw_misses * (1.0 - p.temporal_reuse_fraction * fit);

  b.stall_cycles = misses * miss_penalty_cycles() * (1.0 + writeback_fraction) * points;
  return b;
}

double CpuModel::seconds(const KernelProfile& p, double points) const {
  return cycles(p, points).total() / clock_hz;
}

double CpuModel::effective_mflops(const KernelProfile& p) const {
  const double s = seconds(p, 1.0);
  return s > 0 ? p.flops / s / 1e6 : 0.0;
}

CpuModel CpuModel::rs6000_560() {
  CpuModel m;
  m.name = "RS6000/560";
  m.clock_hz = 50e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {64 * 1024, 128, 4};
  m.memory_latency_cycles = 12;
  m.bus_bytes_per_cycle = 8;
  m.divide_cycles = 19;
  m.pow_cycles = 110;
  return m;
}

CpuModel CpuModel::rs6000_590() {
  CpuModel m;
  m.name = "RS6000/590";
  m.clock_hz = 66.5e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {256 * 1024, 256, 4};
  m.memory_latency_cycles = 12;
  m.bus_bytes_per_cycle = 32;  // "memory bus 4 times wider" than the 560
  m.divide_cycles = 17;
  m.pow_cycles = 100;
  return m;
}

CpuModel CpuModel::rs6k_370() {
  CpuModel m;
  m.name = "RS6K/370 (SP node)";
  m.clock_hz = 62.5e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {32 * 1024, 64, 2};
  m.memory_latency_cycles = 24;
  m.bus_bytes_per_cycle = 2;  // thin-node memory subsystem
  m.divide_cycles = 19;
  m.pow_cycles = 110;
  return m;
}

CpuModel CpuModel::alpha_t3d() {
  CpuModel m;
  m.name = "Alpha 21064 (T3D node)";
  m.clock_hz = 150e6;
  m.flops_per_cycle = 1.0;
  m.dcache = {8 * 1024, 32, 1};  // small and direct-mapped: the paper's culprit
  m.memory_latency_cycles = 40;  // in-order EV4: misses serialize fully
  m.bus_bytes_per_cycle = 4;
  m.divide_cycles = 61;  // EV4 FDIV
  m.pow_cycles = 160;
  return m;
}

CpuModel CpuModel::ymp_vector() {
  CpuModel m;
  m.name = "Cray Y-MP processor";
  m.clock_hz = 166e6;
  m.vector = true;
  // Asymptotic vector rate on the 2-4 MacCormack sweeps (peak 333);
  // with n_half = 45 the sustained rate at the paper's 250-point
  // vectors is ~220 MFLOPS.
  m.vector_mflops = 260.0;
  m.vector_n_half = 45.0;
  return m;
}

}  // namespace nsp::arch
