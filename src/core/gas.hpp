// Perfect-gas relations and the nondimensionalization used throughout.
//
// Reference scales: jet radius r_j (length), centerline sound speed c_c
// (velocity), centerline density rho_c and temperature T_c. Then the
// centerline velocity is U_c = M_c = 1.5, the centerline pressure is
// p_c = rho_c c_c^2 / gamma = 1/gamma, and the gas constant R = 1/gamma
// so that p = rho R T holds with rho = T = 1 on the centerline.
#pragma once

#include <cmath>

namespace nsp::core {

/// Perfect-gas model plus transport coefficients (nondimensional).
struct Gas {
  double gamma = 1.4;  ///< ratio of specific heats
  double mu = 0.0;     ///< dynamic viscosity at T = 1 (0 => Euler)
  double prandtl = 0.72;

  /// Sutherland's law: mu(T) = mu * T^(3/2) (1 + S) / (T + S) with S
  /// the Sutherland constant over the reference (centerline)
  /// temperature. Disabled (constant viscosity) by default, matching
  /// the era's common simplification; S = 110.4 K / ~600 K jet core.
  bool sutherland = false;
  double sutherland_s = 0.18;

  double gas_constant() const { return 1.0 / gamma; }
  double cp() const { return gamma * gas_constant() / (gamma - 1.0); }

  /// Dynamic viscosity at temperature T (nondimensional, T_c = 1).
  double viscosity_at(double t) const {
    if (!sutherland) return mu;
    const double tt = t > 1e-12 ? t : 1e-12;
    return mu * tt * std::sqrt(tt) * (1.0 + sutherland_s) /
           (tt + sutherland_s);
  }

  /// Thermal conductivity k = mu * cp / Pr (at T = 1).
  double conductivity() const { return mu * cp() / prandtl; }

  /// Thermal conductivity at temperature T.
  double conductivity_at(double t) const {
    return viscosity_at(t) * cp() / prandtl;
  }

  /// Pressure from conserved state: p = (gamma-1)(E - 0.5 rho (u^2+v^2)).
  double pressure(double rho, double mx, double mr, double e) const {
    return (gamma - 1.0) * (e - 0.5 * (mx * mx + mr * mr) / rho);
  }

  /// Temperature from p and rho: T = p / (rho R).
  double temperature(double p, double rho) const {
    return p / (rho * gas_constant());
  }

  /// Speed of sound: c = sqrt(gamma p / rho).
  double sound_speed(double p, double rho) const {
    return std::sqrt(gamma * p / rho);
  }

  /// Total energy per volume from primitives.
  double total_energy(double rho, double u, double v, double p) const {
    return p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v);
  }
};

/// Primitive variables at a point.
struct Primitive {
  double rho, u, v, p;
};

/// Converts conserved -> primitive.
inline Primitive to_primitive(const Gas& gas, double rho, double mx, double mr,
                              double e) {
  Primitive w;
  w.rho = rho;
  w.u = mx / rho;
  w.v = mr / rho;
  w.p = gas.pressure(rho, mx, mr, e);
  return w;
}

}  // namespace nsp::core
