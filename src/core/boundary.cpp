#include "core/boundary.hpp"

#include <cmath>

namespace nsp::core {

InflowBC::InflowBC(const Grid& grid, const JetConfig& jet)
    : InflowBC(grid, jet, jet.excitation_mode()) {}

InflowBC::InflowBC(const Grid& grid, const JetConfig& jet, EigenMode mode)
    : grid_(grid), jet_(jet), mode_(std::move(mode)) {
  mean_.resize(grid.nj + 2 * kGhost);
  for (int j = -kGhost; j < grid.nj + kGhost; ++j) {
    const double r = std::fabs(grid.r(j));
    Primitive w;
    w.rho = jet.mean_rho(r);
    w.u = jet.mean_u(r);
    w.v = 0.0;
    w.p = jet.mean_p();
    mean_[static_cast<std::size_t>(j + kGhost)] = w;
  }
}

Primitive InflowBC::state(int j, double t) const {
  Primitive w = mean_[static_cast<std::size_t>(j + kGhost)];
  const double phi = jet_.omega() * t;
  const Primitive d = mode_.perturbation(std::fabs(grid_.r(j)), phi);
  w.rho += d.rho;
  w.u += d.u;
  w.v += d.v;
  w.p += d.p;
  return w;
}

void InflowBC::apply(StateField& q, int icol, double t) const {
  const Gas& gas = jet_.gas;
  for (int j = 0; j < grid_.nj; ++j) {
    const Primitive w = state(j, t);
    q.rho(icol, j) = w.rho;
    q.mx(icol, j) = w.rho * w.u;
    q.mr(icol, j) = w.rho * w.v;
    q.e(icol, j) = gas.total_energy(w.rho, w.u, w.v, w.p);
  }
}

void InflowBC::farfield_conserved(double out[4]) const {
  const Gas& gas = jet_.gas;
  const double r_far = grid_.r(grid_.nj + kGhost);
  const double rho = jet_.mean_rho(r_far);
  const double u = jet_.mean_u(r_far);
  out[0] = rho;
  out[1] = rho * u;
  out[2] = 0.0;
  out[3] = gas.total_energy(rho, u, 0.0, jet_.mean_p());
}

void OutflowBC::apply(StateField& q_new, const StateField& q_old, int icol,
                      double dt) const {
  const int nj = q_new.rho.nj();
  const double gm1 = gas_.gamma - 1.0;
  for (int j = 0; j < nj; ++j) {
    const double rho = q_old.rho(icol, j);
    const double u = q_old.mx(icol, j) / rho;
    const double v = q_old.mr(icol, j) / rho;
    const double p = gas_.pressure(rho, q_old.mx(icol, j), q_old.mr(icol, j),
                                   q_old.e(icol, j));
    const double c = gas_.sound_speed(p, rho);
    if (u >= c) continue;  // supersonic outflow: scheme values stand

    // Scheme-provided conservative time derivatives.
    const double rho_t = (q_new.rho(icol, j) - q_old.rho(icol, j)) / dt;
    const double mx_t = (q_new.mx(icol, j) - q_old.mx(icol, j)) / dt;
    const double mr_t = (q_new.mr(icol, j) - q_old.mr(icol, j)) / dt;
    const double e_t = (q_new.e(icol, j) - q_old.e(icol, j)) / dt;
    const double u_t = (mx_t - u * rho_t) / rho;
    const double v_t = (mr_t - v * rho_t) / rho;
    const double p_t = gm1 * (e_t - 0.5 * (u * u + v * v) * rho_t -
                              rho * (u * u_t + v * v_t));

    // Characteristic combination: zero the incoming invariant, keep the
    // outgoing ones at their Navier-Stokes values.
    const double r2 = p_t + rho * c * u_t;
    const double r3 = p_t - c * c * rho_t;
    const double r4 = v_t;
    const double p_t_c = 0.5 * r2;
    const double u_t_c = 0.5 * r2 / (rho * c);
    const double rho_t_c = (p_t_c - r3) / (c * c);
    const double v_t_c = r4;

    const double rho_n = rho + dt * rho_t_c;
    const double u_n = u + dt * u_t_c;
    const double v_n = v + dt * v_t_c;
    const double p_n = p + dt * p_t_c;
    q_new.rho(icol, j) = rho_n;
    q_new.mx(icol, j) = rho_n * u_n;
    q_new.mr(icol, j) = rho_n * v_n;
    q_new.e(icol, j) = gas_.total_energy(rho_n, u_n, v_n, p_n);
  }
}

}  // namespace nsp::core
