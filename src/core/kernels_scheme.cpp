#include "core/kernels_scheme.hpp"

#include "check/check.hpp"

// Same outlined-restrict-row discipline as kernels_tiled.cpp: GCC only
// tracks restrict through function parameters, so each scheme's row
// body is a (templated) helper taking restrict pointer parameters.
#if defined(__GNUC__) || defined(__clang__)
#define NSP_RESTRICT __restrict__
#else
#define NSP_RESTRICT
#endif

namespace nsp::core::tiled {

namespace {

/// Hoisted span precondition (mirrors kernels_tiled.cpp).
inline void check_tile(const Field2D& f, int ilo, int ihi, int jlo, int jhi) {
  NSP_CHECK(f.cols_valid(ilo, ihi) && f.rows_valid(jlo, jhi),
            "core.kernels_scheme.tile_range");
  (void)f;
  (void)ilo;
  (void)ihi;
  (void)jlo;
  (void)jhi;
}

/// The one-sided difference policy. `fwd`/`bwd` walk one row in i (the
/// axial sweeps); `fwd3`/`bwd3` combine three row pointers at the same i
/// (the radial sweeps, where ga/gb are the rows one/two steps away in
/// the difference direction). The Mac24 expression trees are written
/// exactly as the handwritten kernels in kernels_tiled.cpp write them,
/// which is what makes that instantiation bit-identical.
template <Scheme S>
struct Diff;

template <>
struct Diff<Scheme::Mac24> {
  static constexpr double kFlops = 4.0;
  static inline double fwd(const double* NSP_RESTRICT f, int i) {
    return 8.0 * f[i + 1] - 7.0 * f[i] - f[i + 2];
  }
  static inline double bwd(const double* NSP_RESTRICT f, int i) {
    return 7.0 * f[i] - 8.0 * f[i - 1] + f[i - 2];
  }
  static inline double fwd3(const double* NSP_RESTRICT g0,
                            const double* NSP_RESTRICT ga,
                            const double* NSP_RESTRICT gb, int i) {
    return 8.0 * ga[i] - 7.0 * g0[i] - gb[i];
  }
  static inline double bwd3(const double* NSP_RESTRICT g0,
                            const double* NSP_RESTRICT ga,
                            const double* NSP_RESTRICT gb, int i) {
    return 7.0 * g0[i] - 8.0 * ga[i] + gb[i];
  }
};

// The 2-2 difference is pre-scaled by 6 so the caller's lambda =
// dt/(6 dx) (and radial 1/(6 dr)) convention is scheme-independent:
// 6 (f_{i+1} - f_i) * dt/(6 dx) == dt/dx (f_{i+1} - f_i). The second
// row away (gb) is accepted but unread — the stencil reach shrinks to 1.
template <>
struct Diff<Scheme::Mac22> {
  static constexpr double kFlops = 2.0;
  static inline double fwd(const double* NSP_RESTRICT f, int i) {
    return 6.0 * (f[i + 1] - f[i]);
  }
  static inline double bwd(const double* NSP_RESTRICT f, int i) {
    return 6.0 * (f[i] - f[i - 1]);
  }
  static inline double fwd3(const double* NSP_RESTRICT g0,
                            const double* NSP_RESTRICT ga,
                            const double* NSP_RESTRICT gb, int i) {
    (void)gb;
    return 6.0 * (ga[i] - g0[i]);
  }
  static inline double bwd3(const double* NSP_RESTRICT g0,
                            const double* NSP_RESTRICT ga,
                            const double* NSP_RESTRICT gb, int i) {
    (void)gb;
    return 6.0 * (g0[i] - ga[i]);
  }
};

template <Scheme S>
void pred_x_row_fwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT fa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = qa[i] - lambda * Diff<S>::fwd(fa, i);
  }
}

template <Scheme S>
void pred_x_row_bwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT fa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = qa[i] - lambda * Diff<S>::bwd(fa, i);
  }
}

template <Scheme S>
void corr_x_row_fwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT qpa,
                    const double* NSP_RESTRICT fpa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = 0.5 * (qa[i] + qpa[i] - lambda * Diff<S>::fwd(fpa, i));
  }
}

template <Scheme S>
void corr_x_row_bwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT qpa,
                    const double* NSP_RESTRICT fpa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = 0.5 * (qa[i] + qpa[i] - lambda * Diff<S>::bwd(fpa, i));
  }
}

/// One radial-update row for one component (see kernels_tiled.cpp's
/// radial_row; identical template parameters plus the scheme).
template <Scheme S, bool kCorrector, bool kForward, bool kViscous,
          bool kSource>
void radial_row(const double* NSP_RESTRICT q0, const double* NSP_RESTRICT qp0,
                const double* NSP_RESTRICT g0, const double* NSP_RESTRICT ga,
                const double* NSP_RESTRICT gb, const double* NSP_RESTRICT ps,
                const double* NSP_RESTRICT ts, double* NSP_RESTRICT o,
                int ibegin, int iend, double dt_r, double inv6dr) {
  for (int i = ibegin; i < iend; ++i) {
    const double diff = kForward ? Diff<S>::fwd3(g0, ga, gb, i)
                                 : Diff<S>::bwd3(g0, ga, gb, i);
    const double src = kSource ? ps[i] - (kViscous ? ts[i] : 0.0) : 0.0;
    if (kCorrector) {
      o[i] = 0.5 * (q0[i] + qp0[i] + dt_r * (src - diff * inv6dr));
    } else {
      o[i] = q0[i] + dt_r * (src - diff * inv6dr);
    }
  }
}

template <Scheme S, bool kCorrector, bool kForward, bool kViscous>
void radial_update_rows(const Grid& grid, const StateField& q,
                        const StateField& qp, const StateField& gt,
                        const Field2D& p, const Field2D& ttt, StateField& out,
                        double dt, Range irange, int jlo, int jhi) {
  const double inv6dr = 1.0 / (6.0 * grid.dr());
  const auto qc = q.components();
  const auto qpc = qp.components();
  const auto gc = gt.components();
  const auto oc = out.components();
  for (int j = jlo; j < jhi; ++j) {
    const double dt_r = dt / grid.r(j);
    const double* ps = p.row_span(j);
    const double* ts = ttt.row_span(j);
    const int ja = kForward ? j + 1 : j - 1;
    const int jb = kForward ? j + 2 : j - 2;
    for (int c = 0; c < StateField::kComponents; ++c) {
      auto* row =
          (c == 2) ? &radial_row<S, kCorrector, kForward, kViscous, true>
                   : &radial_row<S, kCorrector, kForward, kViscous, false>;
      row(qc[c]->row_span(j), qpc[c]->row_span(j), gc[c]->row_span(j),
          gc[c]->row_span(ja), gc[c]->row_span(jb), ps, ts,
          oc[c]->row_span(j), irange.begin, irange.end, dt_r, inv6dr);
    }
  }
}

template <Scheme S, bool kCorrector>
void radial_update(const Grid& grid, const StateField& q, const StateField& qp,
                   const StateField& gt, const Field2D& p, const Field2D& ttt,
                   bool viscous, StateField& out, double dt, bool forward,
                   Range irange, int jlo, int jhi) {
  if (forward) {
    if (viscous) {
      radial_update_rows<S, kCorrector, true, true>(grid, q, qp, gt, p, ttt,
                                                    out, dt, irange, jlo, jhi);
    } else {
      radial_update_rows<S, kCorrector, true, false>(grid, q, qp, gt, p, ttt,
                                                     out, dt, irange, jlo,
                                                     jhi);
    }
  } else {
    if (viscous) {
      radial_update_rows<S, kCorrector, false, true>(grid, q, qp, gt, p, ttt,
                                                     out, dt, irange, jlo,
                                                     jhi);
    } else {
      radial_update_rows<S, kCorrector, false, false>(grid, q, qp, gt, p, ttt,
                                                      out, dt, irange, jlo,
                                                      jhi);
    }
  }
}

}  // namespace

template <Scheme S>
void predictor_x_s(const StateField& q, const StateField& f, StateField& qp,
                   double lambda, SweepVariant v, Range irange,
                   FlopCounter* fc) {
  const int nj = q.rho.nj();
  check_tile(q.rho, irange.begin, irange.end, 0, nj);
  check_tile(f.rho, irange.begin - kGhost, irange.end + kGhost, 0, nj);
  const auto qc = q.components();
  const auto fcmp = f.components();
  const auto qpc = qp.components();
  auto* row = (v == SweepVariant::L1) ? &pred_x_row_fwd<S> : &pred_x_row_bwd<S>;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      row(qc[c]->row_span(j), fcmp[c]->row_span(j), qpc[c]->row_span(j),
          irange.begin, irange.end, lambda);
    }
  }
  if (fc) {
    fc->add((Diff<S>::kFlops + 2.0) * StateField::kComponents *
            static_cast<long>(irange.end - irange.begin) * nj);
  }
}

template <Scheme S>
void corrector_x_s(const StateField& q, const StateField& qp,
                   const StateField& fp, StateField& qn1, double lambda,
                   SweepVariant v, Range irange, FlopCounter* fc) {
  const int nj = q.rho.nj();
  check_tile(q.rho, irange.begin, irange.end, 0, nj);
  check_tile(fp.rho, irange.begin - kGhost, irange.end + kGhost, 0, nj);
  const auto qc = q.components();
  const auto qpc = qp.components();
  const auto fpc = fp.components();
  const auto outc = qn1.components();
  // The corrector's one-sided difference runs opposite the predictor's.
  auto* row = (v == SweepVariant::L1) ? &corr_x_row_bwd<S> : &corr_x_row_fwd<S>;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      row(qc[c]->row_span(j), qpc[c]->row_span(j), fpc[c]->row_span(j),
          outc[c]->row_span(j), irange.begin, irange.end, lambda);
    }
  }
  if (fc) {
    fc->add((Diff<S>::kFlops + 4.0) * StateField::kComponents *
            static_cast<long>(irange.end - irange.begin) * nj);
  }
}

template <Scheme S>
void predictor_r_rows_s(const Grid& grid, const StateField& q,
                        const StateField& gt, const Field2D& p,
                        const Field2D& ttt, bool viscous, StateField& qp,
                        double dt, SweepVariant v, Range irange, int jlo,
                        int jhi, FlopCounter* fc) {
  check_tile(q.rho, irange.begin, irange.end, jlo, jhi);
  check_tile(gt.rho, irange.begin, irange.end, jlo - kGhost, jhi + kGhost);
  radial_update<S, false>(grid, q, q, gt, p, ttt, viscous, qp, dt,
                          v == SweepVariant::L1, irange, jlo, jhi);
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add(((Diff<S>::kFlops + 3.0) * 4.0 + 2.0) * pts, 1.0 * pts);
  }
}

template <Scheme S>
void corrector_r_rows_s(const Grid& grid, const StateField& q,
                        const StateField& qp, const StateField& gtp,
                        const Field2D& pp, const Field2D& tttp, bool viscous,
                        StateField& qn1, double dt, SweepVariant v,
                        Range irange, int jlo, int jhi, FlopCounter* fc) {
  check_tile(q.rho, irange.begin, irange.end, jlo, jhi);
  check_tile(gtp.rho, irange.begin, irange.end, jlo - kGhost, jhi + kGhost);
  radial_update<S, true>(grid, q, qp, gtp, pp, tttp, viscous, qn1, dt,
                         v != SweepVariant::L1, irange, jlo, jhi);
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add(((Diff<S>::kFlops + 4.0) * 4.0 + 2.0) * pts, 1.0 * pts);
  }
}

template <Scheme S>
void predictor_r_s(const Grid& grid, const StateField& q, const StateField& gt,
                   const Field2D& p, const Field2D& ttt, bool viscous,
                   StateField& qp, double dt, SweepVariant v, Range irange,
                   FlopCounter* fc) {
  predictor_r_rows_s<S>(grid, q, gt, p, ttt, viscous, qp, dt, v, irange, 0,
                        q.rho.nj(), fc);
}

template <Scheme S>
void corrector_r_s(const Grid& grid, const StateField& q, const StateField& qp,
                   const StateField& gtp, const Field2D& pp,
                   const Field2D& tttp, bool viscous, StateField& qn1,
                   double dt, SweepVariant v, Range irange, FlopCounter* fc) {
  corrector_r_rows_s<S>(grid, q, qp, gtp, pp, tttp, viscous, qn1, dt, v,
                        irange, 0, q.rho.nj(), fc);
}

template void predictor_x_s<Scheme::Mac24>(const StateField&,
                                           const StateField&, StateField&,
                                           double, SweepVariant, Range,
                                           FlopCounter*);
template void predictor_x_s<Scheme::Mac22>(const StateField&,
                                           const StateField&, StateField&,
                                           double, SweepVariant, Range,
                                           FlopCounter*);
template void corrector_x_s<Scheme::Mac24>(const StateField&,
                                           const StateField&,
                                           const StateField&, StateField&,
                                           double, SweepVariant, Range,
                                           FlopCounter*);
template void corrector_x_s<Scheme::Mac22>(const StateField&,
                                           const StateField&,
                                           const StateField&, StateField&,
                                           double, SweepVariant, Range,
                                           FlopCounter*);
template void predictor_r_rows_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const Field2D&,
    const Field2D&, bool, StateField&, double, SweepVariant, Range, int, int,
    FlopCounter*);
template void predictor_r_rows_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const Field2D&,
    const Field2D&, bool, StateField&, double, SweepVariant, Range, int, int,
    FlopCounter*);
template void corrector_r_rows_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, int, int, FlopCounter*);
template void corrector_r_rows_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, int, int, FlopCounter*);
template void predictor_r_s<Scheme::Mac24>(const Grid&, const StateField&,
                                           const StateField&, const Field2D&,
                                           const Field2D&, bool, StateField&,
                                           double, SweepVariant, Range,
                                           FlopCounter*);
template void predictor_r_s<Scheme::Mac22>(const Grid&, const StateField&,
                                           const StateField&, const Field2D&,
                                           const Field2D&, bool, StateField&,
                                           double, SweepVariant, Range,
                                           FlopCounter*);
template void corrector_r_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, FlopCounter*);
template void corrector_r_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, FlopCounter*);

}  // namespace nsp::core::tiled
