// 2-D scalar and state fields with ghost cells.
//
// Layout: the axial index i is fastest (contiguous), matching the
// original Fortran code's A(i,j) column-major layout; the radial index j
// strides by the padded axial extent. Two ghost layers on every side
// accommodate the 2-4 MacCormack stencil (reach +-2).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "check/check.hpp"

namespace nsp::core {

/// Number of ghost layers every field carries on each side.
inline constexpr int kGhost = 2;

/// A dense 2-D double field over an ni x nj grid plus ghost layers.
/// Valid index ranges: i in [-kGhost, ni+kGhost), j in [-kGhost, nj+kGhost).
class Field2D {
 public:
  Field2D() = default;
  Field2D(int ni, int nj, double init = 0.0)
      : ni_(ni), nj_(nj), row_(ni + 2 * kGhost),
        data_(static_cast<std::size_t>(ni + 2 * kGhost) * (nj + 2 * kGhost), init) {
    NSP_CHECK_FATAL(ni > 0 && nj > 0, "core.field.positive_extents");
  }

  int ni() const { return ni_; }
  int nj() const { return nj_; }

  // Index checking is level-2 only: this accessor is the innermost
  // operation of the reference kernel loops (the tuned kernels iterate
  // row_span() pointers instead and hoist the check to one per row).
  double& operator()(int i, int j) {
    NSP_CHECK_SLOW_FATAL(in_range(i, j), "core.field.index_range");
    return data_[index(i, j)];
  }
  double operator()(int i, int j) const {
    NSP_CHECK_SLOW_FATAL(in_range(i, j), "core.field.index_range");
    return data_[index(i, j)];
  }

  /// Raw row pointer for the given j (points at i = -kGhost).
  double* row(int j) { return data_.data() + index(-kGhost, j); }
  const double* row(int j) const { return data_.data() + index(-kGhost, j); }

  /// Raw interior row pointer for span-based kernels: points at i = 0 of
  /// row j, valid for i in [-kGhost, ni + kGhost). The index check is
  /// hoisted to one level-1 row-range check per call — the replacement
  /// for operator()'s level-2 per-point scan on the hot path.
  double* row_span(int j) {
    NSP_CHECK(row_valid(j), "core.field.row_span_range");
    return data_.data() + index(0, j);
  }
  const double* row_span(int j) const {
    NSP_CHECK(row_valid(j), "core.field.row_span_range");
    return data_.data() + index(0, j);
  }

  /// True when every row index in [jlo, jhi) is addressable (ghosts
  /// included). Kernels assert this once per tile as the hoisted
  /// precondition for a run of row_span() accesses.
  bool rows_valid(int jlo, int jhi) const {
    return jlo >= -kGhost && jhi <= nj_ + kGhost;
  }
  /// True when every column index in [ilo, ihi) is addressable.
  bool cols_valid(int ilo, int ihi) const {
    return ilo >= -kGhost && ihi <= ni_ + kGhost;
  }

  /// Distance in doubles between (i, j) and (i, j+1).
  std::size_t jstride() const { return row_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sum over the interior (ghosts excluded).
  double interior_sum() const {
    double s = 0;
    for (int j = 0; j < nj_; ++j)
      for (int i = 0; i < ni_; ++i) s += (*this)(i, j);
    return s;
  }

 private:
  bool row_valid(int j) const { return j >= -kGhost && j < nj_ + kGhost; }
  bool in_range(int i, int j) const {
    return i >= -kGhost && i < ni_ + kGhost && row_valid(j);
  }
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(j + kGhost) * row_ +
           static_cast<std::size_t>(i + kGhost);
  }

  int ni_ = 0;
  int nj_ = 0;
  std::size_t row_ = 0;
  std::vector<double> data_;
};

/// A borrowed rectangular view of a Field2D: columns [ilo, ihi) of rows
/// [jlo, jhi), ghosts allowed. The bounds are validated once at
/// construction (level 1), after which row(j) hands out raw pointers
/// with no further checking — the tile-granular alternative to per-point
/// operator() for diagnostics and tile-structured code.
class TileView {
 public:
  TileView(Field2D& f, int ilo, int ihi, int jlo, int jhi)
      : base_(&f(0, 0)), jstride_(f.jstride()), ilo_(ilo), ihi_(ihi),
        jlo_(jlo), jhi_(jhi) {
    NSP_CHECK_FATAL(f.cols_valid(ilo, ihi) && f.rows_valid(jlo, jhi) &&
                        ilo <= ihi && jlo <= jhi,
                    "core.field.tile_bounds");
  }

  int ilo() const { return ilo_; }
  int ihi() const { return ihi_; }
  int jlo() const { return jlo_; }
  int jhi() const { return jhi_; }

  /// Pointer at (i = 0, j); valid for i in [ilo(), ihi()).
  double* row(int j) const { return base_ + static_cast<std::ptrdiff_t>(j) *
                                     static_cast<std::ptrdiff_t>(jstride_); }
  double& at(int i, int j) const { return row(j)[i]; }

 private:
  double* base_;  ///< &field(0, 0)
  std::size_t jstride_;
  int ilo_, ihi_, jlo_, jhi_;
};

/// The four conserved variables of the axisymmetric compressible
/// equations: q = [rho, rho*u, rho*v, E] (E = total energy per volume).
/// The paper's Q = r*q; the geometric factor r is applied inside the
/// radial operator, so state fields store plain q.
struct StateField {
  Field2D rho, mx, mr, e;

  StateField() = default;
  StateField(int ni, int nj)
      : rho(ni, nj), mx(ni, nj), mr(ni, nj), e(ni, nj) {}

  int ni() const { return rho.ni(); }
  int nj() const { return rho.nj(); }

  /// Component-pointer array for hot loops: one switch-free load per
  /// component instead of operator[]'s branchy switch per access.
  /// Deprecated in kernel inner loops: use this (or row_span pointers
  /// derived from it); operator[] remains for tests and diagnostics.
  std::array<Field2D*, 4> components() { return {&rho, &mx, &mr, &e}; }
  std::array<const Field2D*, 4> components() const {
    return {&rho, &mx, &mr, &e};
  }

  Field2D& operator[](int c) {
    switch (c) {
      case 0: return rho;
      case 1: return mx;
      case 2: return mr;
      default: return e;
    }
  }
  const Field2D& operator[](int c) const {
    switch (c) {
      case 0: return rho;
      case 1: return mx;
      case 2: return mr;
      default: return e;
    }
  }

  static constexpr int kComponents = 4;
};

}  // namespace nsp::core
