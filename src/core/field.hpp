// 2-D scalar and state fields with ghost cells.
//
// Layout: the axial index i is fastest (contiguous), matching the
// original Fortran code's A(i,j) column-major layout; the radial index j
// strides by the padded axial extent. Two ghost layers on every side
// accommodate the 2-4 MacCormack stencil (reach +-2).
#pragma once

#include <cstddef>
#include <vector>

#include "check/check.hpp"

namespace nsp::core {

/// Number of ghost layers every field carries on each side.
inline constexpr int kGhost = 2;

/// A dense 2-D double field over an ni x nj grid plus ghost layers.
/// Valid index ranges: i in [-kGhost, ni+kGhost), j in [-kGhost, nj+kGhost).
class Field2D {
 public:
  Field2D() = default;
  Field2D(int ni, int nj, double init = 0.0)
      : ni_(ni), nj_(nj), row_(ni + 2 * kGhost),
        data_(static_cast<std::size_t>(ni + 2 * kGhost) * (nj + 2 * kGhost), init) {
    NSP_CHECK_FATAL(ni > 0 && nj > 0, "core.field.positive_extents");
  }

  int ni() const { return ni_; }
  int nj() const { return nj_; }

  // Index checking is level-2 only: this accessor is the innermost
  // operation of every kernel loop.
  double& operator()(int i, int j) {
    NSP_CHECK_SLOW_FATAL(in_range(i, j), "core.field.index_range");
    return data_[index(i, j)];
  }
  double operator()(int i, int j) const {
    NSP_CHECK_SLOW_FATAL(in_range(i, j), "core.field.index_range");
    return data_[index(i, j)];
  }

  /// Raw row pointer for the given j (points at i = -kGhost).
  double* row(int j) { return data_.data() + index(-kGhost, j); }
  const double* row(int j) const { return data_.data() + index(-kGhost, j); }

  /// Distance in doubles between (i, j) and (i, j+1).
  std::size_t jstride() const { return row_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sum over the interior (ghosts excluded).
  double interior_sum() const {
    double s = 0;
    for (int j = 0; j < nj_; ++j)
      for (int i = 0; i < ni_; ++i) s += (*this)(i, j);
    return s;
  }

 private:
  bool in_range(int i, int j) const {
    return i >= -kGhost && i < ni_ + kGhost && j >= -kGhost && j < nj_ + kGhost;
  }
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(j + kGhost) * row_ +
           static_cast<std::size_t>(i + kGhost);
  }

  int ni_ = 0;
  int nj_ = 0;
  std::size_t row_ = 0;
  std::vector<double> data_;
};

/// The four conserved variables of the axisymmetric compressible
/// equations: q = [rho, rho*u, rho*v, E] (E = total energy per volume).
/// The paper's Q = r*q; the geometric factor r is applied inside the
/// radial operator, so state fields store plain q.
struct StateField {
  Field2D rho, mx, mr, e;

  StateField() = default;
  StateField(int ni, int nj)
      : rho(ni, nj), mx(ni, nj), mr(ni, nj), e(ni, nj) {}

  int ni() const { return rho.ni(); }
  int nj() const { return rho.nj(); }

  Field2D& operator[](int c) {
    switch (c) {
      case 0: return rho;
      case 1: return mx;
      case 2: return mr;
      default: return e;
    }
  }
  const Field2D& operator[](int c) const {
    switch (c) {
      case 0: return rho;
      case 1: return mx;
      case 2: return mr;
      default: return e;
    }
  }

  static constexpr int kComponents = 4;
};

}  // namespace nsp::core
