// Serial solver driver: the full excited-jet computation on one domain.
//
// One time step applies a radial and an axial 2-4 MacCormack operator;
// successive steps alternate the symmetric variants exactly as the
// paper arranges them:
//   Q^{n+1} = L1x L1r Q^n        (r first, then x, both L1)
//   Q^{n+2} = L2r L2x Q^{n+1}    (x first, then r, both L2)
// which makes the scheme fourth-order accurate in space.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/boundary.hpp"
#include "core/counters.hpp"
#include "core/field.hpp"
#include "core/grid.hpp"
#include "core/jet.hpp"
#include "core/kernels.hpp"

namespace nsp::core {

/// What the solver does at each axial end of its domain.
enum class XBoundary {
  Inflow,                  ///< excited-jet Dirichlet inflow
  CharacteristicOutflow,   ///< characteristic non-reflecting outflow
  Halo,                    ///< ghost data supplied externally (parallel)
};

/// Treatment of the radial far-field boundary.
enum class RBoundary {
  FreeStream,    ///< fixed jet free-stream ghosts (the paper's problem)
  ZeroGradient,  ///< copy the outermost row (generic problems)
};

struct SolverConfig {
  Grid grid;
  JetConfig jet;
  bool viscous = true;               ///< Navier-Stokes (true) or Euler
  KernelVariant variant = KernelVariant::V5;
  /// MacCormack difference family for the predictor/corrector updates
  /// (core/kernels.hpp). Mac24 is the paper's scheme and the default
  /// every golden hash pins; Mac22 swaps in the 2-2 span kernels from
  /// core/kernels_scheme.hpp. All other pipeline stages, boundaries and
  /// the dt heuristic are scheme-agnostic.
  Scheme scheme = Scheme::Mac24;
  double cfl = 0.5;
  bool count_flops = false;
  XBoundary left = XBoundary::Inflow;
  XBoundary right = XBoundary::CharacteristicOutflow;
  RBoundary far_field = RBoundary::FreeStream;
  /// Optional fourth-difference smoothing coefficient (0 disables). The
  /// 2-4 scheme is dissipative by construction; this is a safety net for
  /// very coarse test grids.
  double smoothing = 0.0;
  /// Shared-memory DOALL parallelization (the paper's Cray Y-MP route:
  /// "convert some loops to parallel loops, used the DOALL directive").
  /// Each kernel call is chunked over the axial index and run under
  /// OpenMP when > 1. Flop counting is disabled in DOALL mode.
  int num_threads = 1;
  /// Use the span-based kernels (core/kernels_tiled.hpp) and, when
  /// single-threaded, the fused cache-blocked sweep schedule. Any
  /// combination of tiled/threads/tile_i is bit-identical to the
  /// reference path: every grid point's value is a pure function of its
  /// stencil inputs (docs/NUMERICS.md, "Tiling and bit-exactness"), and
  /// reported flop totals are credited identically.
  bool tiled = true;
  /// Axial tile width for the fused sweeps; 0 picks one from the cache
  /// model (core/tiles.hpp). Ignored unless tiled && num_threads <= 1.
  int tile_i = 0;
  /// Excite the inflow with a converged compressible-Rayleigh
  /// eigenmode (core/stability.hpp) instead of the analytic shape —
  /// the paper's actual "eigenfunctions of the linearized equations".
  /// Falls back to the analytic mode if the eigensolve fails.
  bool rayleigh_inflow = false;
  /// Live Version 6 (parallel solver only): overlap communication and
  /// computation by computing interior columns while halo messages are
  /// in flight, exactly as Section 6 describes. Numerically identical
  /// to the non-overlapped schedule.
  bool overlap_comm = false;
};

class Solver {
 public:
  explicit Solver(SolverConfig cfg);

  /// Fills the domain with the parallel mean jet flow and computes dt.
  void initialize();

  /// Restores a previously saved state (checkpoint restart): the step
  /// counter and clock continue from the saved values, so
  /// run(a); restore-at-a; run(b) is bit-identical to run(a + b).
  /// Throws std::invalid_argument on dimension mismatch.
  void restore(const StateField& q, double time, int steps);

  /// Advances one full time step (both directional sweeps).
  void step();

  /// Runs n steps.
  void run(int n);

  const StateField& state() const { return q_; }
  StateField& mutable_state() { return q_; }
  const SolverConfig& config() const { return cfg_; }
  double dt() const { return dt_; }
  double time() const { return t_; }
  int steps_taken() const { return steps_; }
  const FlopCounter& flops() const { return flops_; }

  /// True if every interior value is finite.
  bool finite() const;

  /// Maximum interior Mach number (diagnostic).
  double max_mach() const;

  /// The Figure 1 quantity: interior axial momentum rho*u, row-major
  /// with j fastest (for io::contour_map: index = i * nj + j).
  std::vector<double> axial_momentum() const;

  /// Interior integral of a conserved component weighted by r (the
  /// conserved quantity of the axisymmetric equations), for
  /// conservation tests.
  double conserved_integral(int component) const;

 private:
  void sweep_x(SweepVariant v);
  void sweep_r(SweepVariant v);
  /// Fused cache-blocked sweeps: the whole stage pipeline (primitives ->
  /// stresses -> flux -> update) runs tile by tile over padded axial
  /// tiles, so one tile's rows of every streamed array stay cache-hot
  /// across stages. Single-thread only; bit-identical to sweep_x/sweep_r
  /// because tile pads recompute the same pure per-point expressions.
  void sweep_x_fused(SweepVariant v);
  void sweep_r_fused(SweepVariant v);
  /// True when step() should take the fused tiled schedule.
  bool use_fused() const;
  /// Axial tile width for the fused sweeps (cfg_.tile_i or cache model).
  int tile_width() const;
  /// Reference-identical flop credit for one fused sweep stage: the
  /// fused tiles recompute pad columns, so per-kernel counting would
  /// over-credit; instead each stage credits exactly what the reference
  /// schedule's kernels would have (metric determinism for the memo
  /// cache and audit layer).
  void credit_sweep_x_stage(int stage);
  void credit_sweep_r_stage(int stage);
  void apply_x_boundaries(StateField& q_stage, double stage_dt);
  void apply_smoothing();
  /// Runs body(Range) over the axial extent: one call when
  /// num_threads <= 1, otherwise chunked under an OpenMP parallel-for.
  /// Templated on the callable so the DOALL path never heap-allocates a
  /// std::function per kernel call.
  template <typename Body>
  void doall(Body&& body) const {
    const int n = cfg_.grid.ni;
    const int threads = cfg_.num_threads;
    if (threads <= 1) {
      body(Range{0, n});
      return;
    }
    const int chunks = std::min(threads, n);
#ifdef _OPENMP
#pragma omp parallel for num_threads(threads) schedule(static)
#endif
    for (int c = 0; c < chunks; ++c) {
      const int lo = n * c / chunks;
      const int hi = n * (c + 1) / chunks;
      body(Range{lo, hi});
    }
  }
  /// Fills radial ghost rows of a state per cfg_.far_field.
  void fill_radial_ghosts(StateField& q_stage) const;
  void fill_radial_ghosts(StateField& q_stage, Range irange) const;
  void fill_radial_prim_ghosts(PrimitiveField& w) const;
  void fill_radial_prim_ghosts(PrimitiveField& w, Range irange) const;

  SolverConfig cfg_;
  InflowBC inflow_;
  OutflowBC outflow_;
  double far_q_[4] = {0, 0, 0, 0};
  Primitive far_w_{};

  StateField q_, qp_, qn_;
  PrimitiveField w_;
  StressField s_;
  StateField flux_;
  double dt_ = 0;
  double t_ = 0;
  int steps_ = 0;
  FlopCounter flops_;
};

}  // namespace nsp::core
