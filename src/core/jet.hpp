// The excited axisymmetric supersonic jet problem (Section 3).
//
// Mean inflow: a Michalke-style tanh shear layer of momentum thickness
// theta around r = 1 (the jet radius), with the Crocco-Busemann
// temperature profile the paper writes as
//   T = T_inf + (T_c - T_inf) g + (gamma-1)/2 M_c^2 (1 - g) g,
// zero radial velocity and constant static pressure.
//
// Excitation: the inflow is perturbed at Strouhal number St with a
// radially-structured eigenfunction at excitation level eps. The default
// eigenfunction is an analytic shear-layer mode shape (a Gaussian hump
// centred on the shear layer with the axial/radial components in
// quadrature); the stability module can refine it with a shooting
// solution of the compressible Rayleigh equation.
//
// Paper parameters: M_c = 1.5, T_inf/T_c = 1/2, Re_D = 1.2e6,
// theta = 0.05 r_j, St = 1/8, eps = 1e-4 (the last three are our best
// reading of the scan; all are configurable).
#pragma once

#include <functional>

#include "core/gas.hpp"

namespace nsp::core {

/// One radial profile of the complex inflow eigenfunction, evaluated as
/// amplitude and phase for each primitive variable.
struct EigenMode {
  /// Returns the perturbation of (rho, u, v, p) at radius r and phase
  /// angle phi = omega * t, already scaled by the excitation level.
  std::function<Primitive(double r, double phi)> perturbation;
};

/// Which excitation drives the inflow perturbation. Mode1 is the
/// paper's single eigenmode at Strouhal `strouhal`; MultiMode adds the
/// subharmonic at St/2 (the vortex-pairing forcing of excited-jet
/// experiments); Quiet leaves the mean inflow unperturbed.
enum class Excitation { Mode1, MultiMode, Quiet };

struct JetConfig {
  double mach_c = 1.5;     ///< jet centerline Mach number
  double t_ratio = 0.5;    ///< T_inf / T_c
  double theta = 0.05;     ///< shear-layer momentum thickness / r_j
  double strouhal = 0.125; ///< excitation Strouhal number (f D / U_c)
  double eps = 1e-4;       ///< excitation level
  double u_coflow = 0.0;   ///< free-stream axial velocity
  double reynolds_d = 1.2e6;  ///< Reynolds number based on jet diameter
  Excitation excitation = Excitation::Mode1;  ///< inflow forcing family
  Gas gas;                 ///< gamma / Pr; mu derived from reynolds_d

  /// Nondimensional viscosity mu = rho_c U_c D / Re_D with D = 2 r_j.
  double viscosity() const { return mach_c * 2.0 / reynolds_d; }

  /// Shear-layer shape function g(r) = 1 on the axis, 1/2 at r = 1, 0 in
  /// the free stream.
  double shape(double r) const;

  /// Mean axial velocity U(r).
  double mean_u(double r) const;

  /// Mean temperature T(r) (Crocco-Busemann).
  double mean_t(double r) const;

  /// Mean density from constant static pressure: rho = p / (R T).
  double mean_rho(double r) const;

  /// Constant static pressure p = 1/gamma.
  double mean_p() const { return 1.0 / gas.gamma; }

  /// Angular frequency of the excitation: omega = 2 pi St U_c / D.
  double omega() const;

  /// The analytic shear-layer eigenmode used by default.
  EigenMode analytic_mode() const;

  /// Fundamental plus subharmonic: the analytic mode at St (level eps)
  /// superposed with the same mode shape at St/2 (level eps/2). The
  /// caller's phase is the fundamental's phi = omega() * t, so the
  /// subharmonic is evaluated at phi/2.
  EigenMode multi_mode() const;

  /// The zero perturbation (unexcited inflow).
  static EigenMode quiet_mode();

  /// The mode `excitation` selects: Mode1 -> analytic_mode() (bitwise
  /// the default inflow), MultiMode -> multi_mode(), Quiet ->
  /// quiet_mode().
  EigenMode excitation_mode() const;
};

}  // namespace nsp::core
