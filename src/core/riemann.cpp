#include "core/riemann.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nsp::core {

double RiemannSolution::sound_speed(const RiemannState& s) const {
  return std::sqrt(gas_.gamma * s.p / s.rho);
}

// Toro's f_K(p): velocity change across the left/right wave as a
// function of the star pressure.
double RiemannSolution::f_side(double p, const RiemannState& s) const {
  const double g = gas_.gamma;
  const double c = sound_speed(s);
  if (p > s.p) {
    // Shock: Rankine-Hugoniot.
    const double a = 2.0 / ((g + 1.0) * s.rho);
    const double b = (g - 1.0) / (g + 1.0) * s.p;
    return (p - s.p) * std::sqrt(a / (p + b));
  }
  // Rarefaction: isentropic relation.
  return 2.0 * c / (g - 1.0) *
         (std::pow(p / s.p, (g - 1.0) / (2.0 * g)) - 1.0);
}

double RiemannSolution::df_side(double p, const RiemannState& s) const {
  const double g = gas_.gamma;
  const double c = sound_speed(s);
  if (p > s.p) {
    const double a = 2.0 / ((g + 1.0) * s.rho);
    const double b = (g - 1.0) / (g + 1.0) * s.p;
    const double root = std::sqrt(a / (p + b));
    return root * (1.0 - 0.5 * (p - s.p) / (p + b));
  }
  return std::pow(p / s.p, -(g + 1.0) / (2.0 * g)) / (s.rho * c);
}

RiemannSolution::RiemannSolution(const Gas& gas, RiemannState left,
                                 RiemannState right)
    : gas_(gas), left_(left), right_(right) {
  if (left.rho <= 0 || right.rho <= 0 || left.p <= 0 || right.p <= 0) {
    throw std::invalid_argument("RiemannSolution: nonpositive state");
  }
  const double du = right.u - left.u;
  // Two-rarefaction initial guess (robust for moderate ratios).
  const double g = gas.gamma;
  const double cl = sound_speed(left), cr = sound_speed(right);
  const double z = (g - 1.0) / (2.0 * g);
  double p = std::pow(
      (cl + cr - 0.5 * (g - 1.0) * du) /
          (cl / std::pow(left.p, z) + cr / std::pow(right.p, z)),
      1.0 / z);
  p = std::max(p, 1e-10);
  for (int it = 0; it < 60; ++it) {
    iterations_ = it + 1;
    const double f = f_side(p, left_) + f_side(p, right_) + du;
    const double df = df_side(p, left_) + df_side(p, right_);
    const double dp = f / df;
    const double p_new = std::max(1e-12, p - dp);
    const double change = 2.0 * std::fabs(p_new - p) / (p_new + p);
    p = p_new;
    if (change < 1e-12) {
      converged_ = true;
      break;
    }
  }
  p_star_ = p;
  u_star_ = 0.5 * (left.u + right.u) +
            0.5 * (f_side(p, right_) - f_side(p, left_));
}

double RiemannSolution::right_shock_speed() const {
  const double g = gas_.gamma;
  const double cr = sound_speed(right_);
  return right_.u +
         cr * std::sqrt((g + 1.0) / (2.0 * g) * p_star_ / right_.p +
                        (g - 1.0) / (2.0 * g));
}

double RiemannSolution::left_shock_speed() const {
  const double g = gas_.gamma;
  const double cl = sound_speed(left_);
  return left_.u -
         cl * std::sqrt((g + 1.0) / (2.0 * g) * p_star_ / left_.p +
                        (g - 1.0) / (2.0 * g));
}

RiemannState RiemannSolution::sample(double xi) const {
  const double g = gas_.gamma;
  if (xi <= u_star_) {
    // Left of the contact.
    const RiemannState& s = left_;
    const double c = sound_speed(s);
    if (left_is_shock()) {
      const double sp = left_shock_speed();
      if (xi <= sp) return s;
      const double pr = p_star_ / s.p;
      const double gr = (g - 1.0) / (g + 1.0);
      return RiemannState{s.rho * (pr + gr) / (gr * pr + 1.0), u_star_, p_star_};
    }
    const double c_star = c * std::pow(p_star_ / s.p, (g - 1.0) / (2.0 * g));
    const double head = s.u - c;
    const double tail = u_star_ - c_star;
    if (xi <= head) return s;
    if (xi >= tail) {
      return RiemannState{s.rho * std::pow(p_star_ / s.p, 1.0 / g), u_star_,
                          p_star_};
    }
    // Inside the left fan.
    const double u = 2.0 / (g + 1.0) * (c + 0.5 * (g - 1.0) * s.u + xi);
    const double cf = 2.0 / (g + 1.0) * (c + 0.5 * (g - 1.0) * (s.u - xi));
    const double rho = s.rho * std::pow(cf / c, 2.0 / (g - 1.0));
    const double p = s.p * std::pow(cf / c, 2.0 * g / (g - 1.0));
    return RiemannState{rho, u, p};
  }
  // Right of the contact.
  const RiemannState& s = right_;
  const double c = sound_speed(s);
  if (right_is_shock()) {
    const double sp = right_shock_speed();
    if (xi >= sp) return s;
    const double pr = p_star_ / s.p;
    const double gr = (g - 1.0) / (g + 1.0);
    return RiemannState{s.rho * (pr + gr) / (gr * pr + 1.0), u_star_, p_star_};
  }
  const double c_star = c * std::pow(p_star_ / s.p, (g - 1.0) / (2.0 * g));
  const double head = s.u + c;
  const double tail = u_star_ + c_star;
  if (xi >= head) return s;
  if (xi <= tail) {
    return RiemannState{s.rho * std::pow(p_star_ / s.p, 1.0 / g), u_star_,
                        p_star_};
  }
  const double u = 2.0 / (g + 1.0) * (-c + 0.5 * (g - 1.0) * s.u + xi);
  const double cf = 2.0 / (g + 1.0) * (c - 0.5 * (g - 1.0) * (s.u - xi));
  const double rho = s.rho * std::pow(cf / c, 2.0 / (g - 1.0));
  const double p = s.p * std::pow(cf / c, 2.0 * g / (g - 1.0));
  return RiemannState{rho, u, p};
}

}  // namespace nsp::core
