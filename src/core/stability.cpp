#include "core/stability.hpp"

#include <algorithm>
#include <cmath>

#include "check/check.hpp"

namespace nsp::core::stability {

namespace {

/// Mean-profile bundle with numerical radial derivatives.
struct MeanFlow {
  const JetConfig* jet;
  double u(double r) const { return jet->mean_u(r); }
  double t(double r) const { return jet->mean_t(r); }
  double rho(double r) const { return jet->mean_rho(r); }
  double du(double r) const {
    const double h = 1e-6;
    return (jet->mean_u(r + h) - jet->mean_u(std::max(0.0, r - h))) /
           (r < h ? r + h : 2 * h);
  }
  double drho(double r) const {
    const double h = 1e-6;
    return (jet->mean_rho(r + h) - jet->mean_rho(std::max(0.0, r - h))) /
           (r < h ? r + h : 2 * h);
  }
};

struct State {
  Complex p, q;  // pressure amplitude and its radial derivative
};

/// Right-hand side of the Pridmore-Brown system at radius r (azimuthal
/// mode number n adds the -n^2/r^2 centrifugal term).
State rhs(const MeanFlow& m, double omega, Complex alpha, int n, double r,
          const State& y) {
  const double u = m.u(r);
  const double t = m.t(r);
  const double rho = m.rho(r);
  const Complex w = omega - alpha * u;
  const Complex a_coef =
      1.0 / r - m.drho(r) / rho + 2.0 * alpha * m.du(r) / w;
  const Complex b_coef =
      w * w / t - alpha * alpha - static_cast<double>(n) * n / (r * r);
  return State{y.q, -a_coef * y.q - b_coef * y.p};
}

/// Far-field decay rate with Re(lambda) > 0.
Complex decay_rate(const JetConfig& jet, double omega, Complex alpha) {
  const double u_inf = jet.u_coflow;
  const double t_inf = jet.mean_t(1e9);
  const Complex w = omega - alpha * u_inf;
  Complex lam = std::sqrt(alpha * alpha - w * w / t_inf);
  if (lam.real() < 0) lam = -lam;
  return lam;
}

/// RK4 integration of the Pridmore-Brown system from r_from to r_to
/// (either direction) with periodic renormalization (the logarithmic
/// derivative q/p is scale-free). Optionally records the trajectory.
State integrate_between(const MeanFlow& m, double omega, Complex alpha,
                        int az, double r_from, double r_to, int steps,
                        State y, std::vector<double>* r_out = nullptr,
                        std::vector<State>* y_out = nullptr) {
  const double h = (r_to - r_from) / steps;
  double r = r_from;
  if (r_out) {
    r_out->push_back(r);
    y_out->push_back(y);
  }
  for (int k = 0; k < steps; ++k) {
    const State k1 = rhs(m, omega, alpha, az, r, y);
    const State k2 = rhs(m, omega, alpha, az, r + 0.5 * h,
                         State{y.p + 0.5 * h * k1.p, y.q + 0.5 * h * k1.q});
    const State k3 = rhs(m, omega, alpha, az, r + 0.5 * h,
                         State{y.p + 0.5 * h * k2.p, y.q + 0.5 * h * k2.q});
    const State k4 = rhs(m, omega, alpha, az, r + h,
                         State{y.p + h * k3.p, y.q + h * k3.q});
    y.p += h / 6.0 * (k1.p + 2.0 * k2.p + 2.0 * k3.p + k4.p);
    y.q += h / 6.0 * (k1.q + 2.0 * k2.q + 2.0 * k3.q + k4.q);
    r += h;
    const double mag = std::abs(y.p) + std::abs(y.q);
    if (mag > 1e30) {
      const double inv = 1.0 / mag;
      y.p *= inv;
      y.q *= inv;
      if (y_out) {
        for (auto& s : *y_out) {
          s.p *= inv;
          s.q *= inv;
        }
      }
    }
    if (r_out) {
      r_out->push_back(r);
      y_out->push_back(y);
    }
  }
  return y;
}

/// Regular-branch starting state just off the axis.
State axis_start(const MeanFlow& m, double omega, Complex alpha, int az,
                 double r_eps) {
  if (az > 0) {
    // p ~ r^n, p' ~ n r^(n-1).
    const double pn = std::pow(r_eps, az);
    return State{Complex{pn, 0}, Complex{az * pn / r_eps, 0}};
  }
  // n = 0 series: p = 1 - B r^2 / 4.
  const Complex w0 = omega - alpha * m.u(r_eps);
  const Complex b0 = w0 * w0 / m.t(r_eps) - alpha * alpha;
  return State{1.0, -0.5 * b0 * r_eps};
}

/// The shear-layer matching radius for the double shooting, and the
/// near-axis starting radius of the regular branch.
constexpr double kMatchRadius = 1.0;
constexpr double kAxisEps = 0.01;

}  // namespace

Complex farfield_mismatch(const JetConfig& jet, double omega, Complex alpha,
                          const Options& opts) {
  // Double shooting: single-direction integration is swamped by the
  // dominant branch (exp(+lambda r) outward; r^-n toward the axis for
  // helical modes), so integrate the regular branch outward from the
  // axis and the decaying branch inward from the far field, and match
  // the scale-free logarithmic derivatives q/p in the shear layer.
  const MeanFlow m{&jet};
  const int n = std::max(50, opts.nr);
  const int az = opts.azimuthal_n;

  const State out =
      integrate_between(m, omega, alpha, az, kAxisEps, kMatchRadius, n / 2,
                        axis_start(m, omega, alpha, az, kAxisEps));
  const State in =
      integrate_between(m, omega, alpha, az, opts.r_max, kMatchRadius, n,
                        State{1.0, -decay_rate(jet, omega, alpha)});
  const bool usable = std::abs(out.p) >= 1e-300 && std::abs(in.p) >= 1e-300 &&
                      std::isfinite(std::abs(out.p)) &&
                      std::isfinite(std::abs(in.p));
  // Blow-ups are expected for bad alpha guesses; count them so a run
  // dominated by degenerate shoots is visible in the check report.
  NSP_CHECK_WARN(usable, "core.stability.shooting_usable");
  if (!usable) return Complex{1e30, 0};
  return out.q / out.p - in.q / in.p;
}

namespace {

/// One secant run from a given starting alpha.
struct SecantResult {
  Complex alpha;
  double residual;
  int iterations;
};

SecantResult secant_from(const JetConfig& jet, double omega, Complex a0,
                         const Options& opts) {
  Complex a1 = a0 * Complex{1.02, 0.0};
  Complex f0 = farfield_mismatch(jet, omega, a0, opts);
  Complex f1 = farfield_mismatch(jet, omega, a1, opts);
  int iters = 0;
  for (int it = 0; it < opts.max_iterations; ++it) {
    iters = it + 1;
    if (std::abs(f1) < opts.tolerance) break;
    const Complex denom = f1 - f0;
    if (std::abs(denom) < 1e-300) break;
    Complex a2 = a1 - f1 * (a1 - a0) / denom;
    // Damp wild secant steps.
    const double max_step = 0.5 * std::abs(a1);
    if (std::abs(a2 - a1) > max_step && std::abs(a2 - a1) > 0) {
      a2 = a1 + (a2 - a1) * (max_step / std::abs(a2 - a1));
    }
    a0 = a1;
    f0 = f1;
    a1 = a2;
    f1 = farfield_mismatch(jet, omega, a1, opts);
  }
  return SecantResult{a1, std::abs(f1), iters};
}

}  // namespace

Mode solve(const JetConfig& jet, double omega, const Options& opts) {
  Mode mode;
  mode.omega = omega;

  // Starting guesses: the caller's, then a grid of convected waves at
  // 40-90% of the centerline speed with a range of growth guesses (the
  // classic jet shear-layer mode lives in this box).
  std::vector<Complex> guesses;
  if (opts.alpha_guess != Complex{0, 0}) guesses.push_back(opts.alpha_guess);
  const double uc = std::max(jet.mach_c, 0.3);
  for (double cr_frac : {0.60, 0.45, 0.75, 0.90}) {
    for (double gi : {-0.12, -0.30, -0.05}) {
      const double ar = omega / (cr_frac * uc);
      guesses.push_back(Complex{ar, gi * ar});
    }
  }

  // Spatial roots come in downstream-growing (Im < 0) and decaying
  // branches; prefer the physically interesting growing root.
  SecantResult best{Complex{0, 0}, 1e300, 0};
  bool best_growing = false;
  for (const Complex& g : guesses) {
    const SecantResult r = secant_from(jet, omega, g, opts);
    if (!std::isfinite(r.residual)) continue;
    // Reject spurious roots far outside the physical band (phase speed
    // in (0.05 c, 3 Uc), downstream-travelling).
    const double cr = r.alpha.real() != 0 ? omega / r.alpha.real() : 0;
    if (cr < 0.05 || cr > 3.0 * uc) continue;
    const bool growing = r.alpha.imag() < 0;
    const bool converged_r = r.residual < 100.0 * opts.tolerance;
    if ((growing && converged_r && !best_growing) ||
        (growing == best_growing && r.residual < best.residual) ||
        (growing && converged_r && best.residual >= 100.0 * opts.tolerance)) {
      best = r;
      best_growing = growing && converged_r;
    }
    if (best_growing && best.residual < opts.tolerance) break;
  }
  mode.alpha = best.alpha;
  mode.residual = best.residual;
  mode.iterations = best.iterations;
  mode.converged =
      mode.residual < 100.0 * opts.tolerance && std::isfinite(mode.residual);
  if (!mode.converged) return mode;

  // Rebuild the eigenfunctions: outward leg (axis -> match) and inward
  // leg (far field -> match), stitched continuously at the match point.
  const MeanFlow m{&jet};
  const int nsteps = std::max(50, opts.nr);
  const int az = opts.azimuthal_n;
  std::vector<double> r_out_leg, r_in_leg;
  std::vector<State> y_out_leg, y_in_leg;
  const State out_end = integrate_between(
      m, omega, mode.alpha, az, kAxisEps, kMatchRadius, nsteps / 2,
      axis_start(m, omega, mode.alpha, az, kAxisEps), &r_out_leg, &y_out_leg);
  const State in_end = integrate_between(
      m, omega, mode.alpha, az, opts.r_max, kMatchRadius, nsteps,
      State{1.0, -decay_rate(jet, omega, mode.alpha)}, &r_in_leg, &y_in_leg);
  // Scale the outer leg so p is continuous at the match point.
  if (std::abs(out_end.p) > 1e-300) {
    const Complex scale_leg = in_end.p / out_end.p;
    for (auto& s : y_out_leg) {
      s.p *= scale_leg;
      s.q *= scale_leg;
    }
  }
  // Assemble the ascending-r trajectory: outward leg + reversed inward.
  std::vector<double> r;
  std::vector<State> y;
  for (std::size_t k = 0; k < r_out_leg.size(); ++k) {
    r.push_back(r_out_leg[k]);
    y.push_back(y_out_leg[k]);
  }
  for (std::size_t k = r_in_leg.size(); k-- > 0;) {
    if (r_in_leg[k] <= kMatchRadius + 1e-12) continue;  // avoid duplicates
    r.push_back(r_in_leg[k]);
    y.push_back(y_in_leg[k]);
  }

  const Complex i_unit{0.0, 1.0};
  mode.r = r;
  mode.p.resize(r.size());
  mode.u.resize(r.size());
  mode.v.resize(r.size());
  mode.rho.resize(r.size());
  double u_max = 0;
  for (std::size_t k = 0; k < r.size(); ++k) {
    const double rr = r[k];
    const double rho_bar = m.rho(rr);
    const double t_bar = m.t(rr);
    const Complex w = omega - mode.alpha * m.u(rr);
    const Complex p = y[k].p;
    const Complex q = y[k].q;
    // v^ from the linearized r-momentum: i rho (alpha U - omega) v^ = -q.
    const Complex v = -i_unit * q / (rho_bar * w);
    // u^ from the linearized x-momentum equation.
    const Complex u = (-i_unit * mode.alpha * p - rho_bar * m.du(rr) * v) /
                      (i_unit * rho_bar * (mode.alpha * m.u(rr) - omega));
    // rho^: isentropic part + advected mean-density gradient.
    const Complex rho_hat = p / t_bar + v * m.drho(rr) / (i_unit * w);
    mode.p[k] = p;
    mode.u[k] = u;
    mode.v[k] = v;
    mode.rho[k] = rho_hat;
    u_max = std::max(u_max, std::abs(u));
  }
  if (u_max > 0) {
    const Complex scale{1.0 / u_max, 0.0};
    for (std::size_t k = 0; k < r.size(); ++k) {
      mode.p[k] *= scale;
      mode.u[k] *= scale;
      mode.v[k] *= scale;
      mode.rho[k] *= scale;
    }
  }
  return mode;
}

EigenMode to_eigenmode(const Mode& mode, const JetConfig& jet) {
  if (!mode.converged || mode.r.size() < 2) return jet.analytic_mode();

  // Copy the amplitude tables into the closure.
  const std::vector<double> r = mode.r;
  const std::vector<Complex> pu = mode.u, pv = mode.v, pp = mode.p,
                             prho = mode.rho;
  const double eps = jet.eps;
  const auto sample = [r](const std::vector<Complex>& a, double rr) -> Complex {
    if (rr <= r.front()) return a.front();
    if (rr >= r.back()) return Complex{0, 0};  // decayed
    const auto it = std::lower_bound(r.begin(), r.end(), rr);
    const std::size_t hi = static_cast<std::size_t>(it - r.begin());
    const std::size_t lo = hi - 1;
    const double f = (rr - r[lo]) / (r[hi] - r[lo]);
    return a[lo] * (1.0 - f) + a[hi] * f;
  };
  return EigenMode{[=](double rr, double phi) -> Primitive {
    const Complex rot{std::cos(phi), -std::sin(phi)};  // e^{-i omega t}
    Primitive d;
    d.u = eps * (sample(pu, rr) * rot).real();
    d.v = eps * (sample(pv, rr) * rot).real();
    d.p = eps * (sample(pp, rr) * rot).real();
    d.rho = eps * (sample(prho, rr) * rot).real();
    return d;
  }};
}

}  // namespace nsp::core::stability
