#include "core/kernels.hpp"

#include <cmath>

namespace nsp::core {

namespace {

/// Forward-biased 2-4 difference: (8 f_{i+1} - 7 f_i - f_{i+2}) / (6h) ~ f'.
/// The caller divides by 6h (folded into lambda).
inline double fwd(const Field2D& f, int i, int j) {
  return 8.0 * f(i + 1, j) - 7.0 * f(i, j) - f(i + 2, j);
}
inline double bwd(const Field2D& f, int i, int j) {
  return 7.0 * f(i, j) - 8.0 * f(i - 1, j) + f(i - 2, j);
}
inline double fwd_r(const Field2D& f, int i, int j) {
  return 8.0 * f(i, j + 1) - 7.0 * f(i, j) - f(i, j + 2);
}
inline double bwd_r(const Field2D& f, int i, int j) {
  return 7.0 * f(i, j) - 8.0 * f(i, j - 1) + f(i, j - 2);
}

}  // namespace

void compute_primitives(const Gas& gas, const StateField& q,
                        PrimitiveField& w, Range irange, int jlo, int jhi,
                        KernelVariant variant, FlopCounter* fc) {
  const double gm1 = gas.gamma - 1.0;
  const double rgas_inv = 1.0 / gas.gas_constant();
  const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);

  switch (variant) {
    case KernelVariant::V1:
      // Original: radial-hopping loop order (j inner), library pow for
      // squares, and a fresh division for every primitive.
      for (int i = irange.begin; i < irange.end; ++i) {
        for (int j = jlo; j < jhi; ++j) {
          const double rho = q.rho(i, j);
          w.u(i, j) = q.mx(i, j) / rho;
          w.v(i, j) = q.mr(i, j) / rho;
          const double ke =
              0.5 * (std::pow(q.mx(i, j), 2.0) + std::pow(q.mr(i, j), 2.0)) / rho;
          w.p(i, j) = gm1 * (q.e(i, j) - ke);
          w.t(i, j) = w.p(i, j) / rho * rgas_inv;
        }
      }
      if (fc) fc->add(6.0 * pts, 4.0 * pts, 0, 2.0 * pts);
      return;
    case KernelVariant::V2:
      // Strength reduction: pow -> multiply; loop order still bad.
      for (int i = irange.begin; i < irange.end; ++i) {
        for (int j = jlo; j < jhi; ++j) {
          const double rho = q.rho(i, j);
          w.u(i, j) = q.mx(i, j) / rho;
          w.v(i, j) = q.mr(i, j) / rho;
          const double ke =
              0.5 * (q.mx(i, j) * q.mx(i, j) + q.mr(i, j) * q.mr(i, j)) / rho;
          w.p(i, j) = gm1 * (q.e(i, j) - ke);
          w.t(i, j) = w.p(i, j) / rho * rgas_inv;
        }
      }
      if (fc) fc->add(8.0 * pts, 4.0 * pts);
      return;
    case KernelVariant::V3:
      // Loop interchange: stride-1 inner loop; divisions remain.
      for (int j = jlo; j < jhi; ++j) {
        for (int i = irange.begin; i < irange.end; ++i) {
          const double rho = q.rho(i, j);
          w.u(i, j) = q.mx(i, j) / rho;
          w.v(i, j) = q.mr(i, j) / rho;
          const double ke =
              0.5 * (q.mx(i, j) * q.mx(i, j) + q.mr(i, j) * q.mr(i, j)) / rho;
          w.p(i, j) = gm1 * (q.e(i, j) - ke);
          w.t(i, j) = w.p(i, j) / rho * rgas_inv;
        }
      }
      if (fc) fc->add(8.0 * pts, 4.0 * pts);
      return;
    case KernelVariant::V4:
    case KernelVariant::V5:
      // Division -> reciprocal multiply (V4) and fused single pass with
      // collapsed locals (V5; the two share a loop body here — the
      // COMMON-collapse part of V5 has no C++ analogue beyond what the
      // fused loop already delivers).
      for (int j = jlo; j < jhi; ++j) {
        for (int i = irange.begin; i < irange.end; ++i) {
          const double rinv = 1.0 / q.rho(i, j);
          const double u = q.mx(i, j) * rinv;
          const double v = q.mr(i, j) * rinv;
          const double p = gm1 * (q.e(i, j) - 0.5 * (q.mx(i, j) * u + q.mr(i, j) * v));
          w.u(i, j) = u;
          w.v(i, j) = v;
          w.p(i, j) = p;
          w.t(i, j) = p * rinv * rgas_inv;
        }
      }
      if (fc) fc->add(10.0 * pts, 1.0 * pts);
      return;
  }
}

void compute_stresses(const Gas& gas, const Grid& grid,
                      const PrimitiveField& w, StressField& s, Range irange,
                      int ilo_avail, int ihi_avail, FlopCounter* fc) {
  const double mu_const = gas.mu;
  const double k_const = gas.conductivity();
  const double k_over_mu = gas.cp() / gas.prandtl;
  const bool sutherland = gas.sutherland;
  const double ddx = 1.0 / (2.0 * grid.dx());
  const double ddr = 1.0 / (2.0 * grid.dr());
  const int nj = w.u.nj();

  // x-derivative: central where both neighbours are available, else
  // second-order one-sided (only at physical inflow/outflow columns).
  const auto dx_of = [&](const Field2D& f, int i, int j) {
    if (i - 1 >= ilo_avail && i + 1 < ihi_avail) {
      return (f(i + 1, j) - f(i - 1, j)) * ddx;
    }
    if (i - 1 < ilo_avail) {
      return (-3.0 * f(i, j) + 4.0 * f(i + 1, j) - f(i + 2, j)) * ddx;
    }
    return (3.0 * f(i, j) - 4.0 * f(i - 1, j) + f(i - 2, j)) * ddx;
  };
  // r-derivative: ghost rows are always filled, so always central.
  const auto dr_of = [&](const Field2D& f, int i, int j) {
    return (f(i, j + 1) - f(i, j - 1)) * ddr;
  };

  for (int j = 0; j < nj; ++j) {
    const double rinv = 1.0 / grid.r(j);
    for (int i = irange.begin; i < irange.end; ++i) {
      const double ux = dx_of(w.u, i, j);
      const double vx = dx_of(w.v, i, j);
      const double tx = dx_of(w.t, i, j);
      const double ur = dr_of(w.u, i, j);
      const double vr = dr_of(w.v, i, j);
      const double tr = dr_of(w.t, i, j);
      const double vor = w.v(i, j) * rinv;  // v / r
      const double dil = ux + vr + vor;     // divergence
      const double mu = sutherland ? gas.viscosity_at(w.t(i, j)) : mu_const;
      const double k = sutherland ? mu * k_over_mu : k_const;
      s.txx(i, j) = mu * (2.0 * ux - (2.0 / 3.0) * dil);
      s.trr(i, j) = mu * (2.0 * vr - (2.0 / 3.0) * dil);
      s.ttt(i, j) = mu * (2.0 * vor - (2.0 / 3.0) * dil);
      s.txr(i, j) = mu * (ur + vx);
      s.qx(i, j) = -k * tx;
      s.qr(i, j) = -k * tr;
    }
  }
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * nj;
    fc->add(36.0 * pts, 1.0 * pts);
  }
}

void fill_stress_ghost_rows_axis(StressField& s, int ni_lo, int ni_hi) {
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = ni_lo; i < ni_hi; ++i) {
      // Axis reflection: txx, trr, ttt symmetric; txr, qr antisymmetric;
      // qx symmetric.
      s.txx(i, -g) = s.txx(i, g - 1);
      s.trr(i, -g) = s.trr(i, g - 1);
      s.ttt(i, -g) = s.ttt(i, g - 1);
      s.txr(i, -g) = -s.txr(i, g - 1);
      s.qx(i, -g) = s.qx(i, g - 1);
      s.qr(i, -g) = -s.qr(i, g - 1);
    }
  }
}

void fill_stress_ghost_rows_far(StressField& s, int ni_lo, int ni_hi) {
  const int nj = s.txx.nj();
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = ni_lo; i < ni_hi; ++i) {
      // Far field: copy the outermost interior row (stresses are ~0 there).
      s.txx(i, nj - 1 + g) = s.txx(i, nj - 1);
      s.trr(i, nj - 1 + g) = s.trr(i, nj - 1);
      s.ttt(i, nj - 1 + g) = s.ttt(i, nj - 1);
      s.txr(i, nj - 1 + g) = s.txr(i, nj - 1);
      s.qx(i, nj - 1 + g) = s.qx(i, nj - 1);
      s.qr(i, nj - 1 + g) = s.qr(i, nj - 1);
    }
  }
}

void fill_stress_ghost_rows(StressField& s, int ni_lo, int ni_hi) {
  fill_stress_ghost_rows_axis(s, ni_lo, ni_hi);
  fill_stress_ghost_rows_far(s, ni_lo, ni_hi);
}

void compute_flux_x(const Gas& gas, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& f, Range irange,
                    KernelVariant variant, FlopCounter* fc) {
  (void)gas;  // pressure arrives precomputed in w
  const int nj = q.rho.nj();
  const bool bad_stride = variant == KernelVariant::V1 || variant == KernelVariant::V2;
  const bool use_pow = variant == KernelVariant::V1;

  const auto body = [&](int i, int j) {
    const double u = w.u(i, j);
    const double v = w.v(i, j);
    const double p = w.p(i, j);
    const double rho = q.rho(i, j);
    const double rhou = q.mx(i, j);
    const double uu = use_pow ? std::pow(u, 2.0) : u * u;
    f.rho(i, j) = rhou;
    f.mx(i, j) = rho * uu + p;
    f.mr(i, j) = rhou * v;
    f.e(i, j) = (q.e(i, j) + p) * u;
    if (viscous) {
      f.mx(i, j) -= s.txx(i, j);
      f.mr(i, j) -= s.txr(i, j);
      f.e(i, j) += -u * s.txx(i, j) - v * s.txr(i, j) + s.qx(i, j);
    }
  };

  if (bad_stride) {
    for (int i = irange.begin; i < irange.end; ++i)
      for (int j = 0; j < nj; ++j) body(i, j);
  } else {
    for (int j = 0; j < nj; ++j)
      for (int i = irange.begin; i < irange.end; ++i) body(i, j);
  }
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * nj;
    fc->add((viscous ? 14.0 : 7.0) * pts, 0, 0, use_pow ? pts : 0);
  }
}

void compute_flux_r(const Gas& gas, const Grid& grid, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& gt, Range irange, int jlo,
                    int jhi, KernelVariant variant, FlopCounter* fc) {
  (void)gas;
  const bool bad_stride = variant == KernelVariant::V1 || variant == KernelVariant::V2;
  const bool use_pow = variant == KernelVariant::V1;

  const auto body = [&](int i, int j) {
    const double r = grid.r(j);
    const double u = w.u(i, j);
    const double v = w.v(i, j);
    const double p = w.p(i, j);
    const double rhov = q.mr(i, j);
    const double vv = use_pow ? std::pow(v, 2.0) : v * v;
    double g0 = rhov;
    double g1 = rhov * u;
    double g2 = q.rho(i, j) * vv + p;
    double g3 = (q.e(i, j) + p) * v;
    if (viscous) {
      g1 -= s.txr(i, j);
      g2 -= s.trr(i, j);
      g3 += -u * s.txr(i, j) - v * s.trr(i, j) + s.qr(i, j);
    }
    gt.rho(i, j) = r * g0;
    gt.mx(i, j) = r * g1;
    gt.mr(i, j) = r * g2;
    gt.e(i, j) = r * g3;
  };

  if (bad_stride) {
    for (int i = irange.begin; i < irange.end; ++i)
      for (int j = jlo; j < jhi; ++j) body(i, j);
  } else {
    for (int j = jlo; j < jhi; ++j)
      for (int i = irange.begin; i < irange.end; ++i) body(i, j);
  }
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add((viscous ? 18.0 : 11.0) * pts, 0, 0, use_pow ? pts : 0);
  }
}

void reflect_flux_r_axis(StateField& gt, Range irange) {
  // Gt = r G: under r -> -r the components transform as [+, +, -, +].
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      gt.rho(i, -g) = gt.rho(i, g - 1);
      gt.mx(i, -g) = gt.mx(i, g - 1);
      gt.mr(i, -g) = -gt.mr(i, g - 1);
      gt.e(i, -g) = gt.e(i, g - 1);
    }
  }
}

void extrapolate_flux_ghost_x(StateField& f, int ni, int side, FlopCounter* fc) {
  const int nj = f.rho.nj();
  for (int c = 0; c < StateField::kComponents; ++c) {
    Field2D& a = f[c];
    if (side < 0) {
      for (int j = 0; j < nj; ++j) {
        a(-1, j) = 4.0 * a(0, j) - 6.0 * a(1, j) + 4.0 * a(2, j) - a(3, j);
        a(-2, j) = 4.0 * a(-1, j) - 6.0 * a(0, j) + 4.0 * a(1, j) - a(2, j);
      }
    } else {
      for (int j = 0; j < nj; ++j) {
        a(ni, j) = 4.0 * a(ni - 1, j) - 6.0 * a(ni - 2, j) + 4.0 * a(ni - 3, j) -
                   a(ni - 4, j);
        a(ni + 1, j) = 4.0 * a(ni, j) - 6.0 * a(ni - 1, j) + 4.0 * a(ni - 2, j) -
                       a(ni - 3, j);
      }
    }
  }
  if (fc) fc->add(14.0 * nj * StateField::kComponents);
}

void predictor_x(const StateField& q, const StateField& f, StateField& qp,
                 double lambda, SweepVariant v, Range irange, FlopCounter* fc) {
  const int nj = q.rho.nj();
  for (int c = 0; c < StateField::kComponents; ++c) {
    const Field2D& qa = q[c];
    const Field2D& fa = f[c];
    Field2D& qpa = qp[c];
    for (int j = 0; j < nj; ++j) {
      if (v == SweepVariant::L1) {
        for (int i = irange.begin; i < irange.end; ++i) {
          qpa(i, j) = qa(i, j) - lambda * fwd(fa, i, j);
        }
      } else {
        for (int i = irange.begin; i < irange.end; ++i) {
          qpa(i, j) = qa(i, j) - lambda * bwd(fa, i, j);
        }
      }
    }
  }
  if (fc) {
    fc->add(6.0 * StateField::kComponents *
            static_cast<long>(irange.end - irange.begin) * nj);
  }
}

void corrector_x(const StateField& q, const StateField& qp,
                 const StateField& fp, StateField& qn1, double lambda,
                 SweepVariant v, Range irange, FlopCounter* fc) {
  const int nj = q.rho.nj();
  for (int c = 0; c < StateField::kComponents; ++c) {
    const Field2D& qa = q[c];
    const Field2D& qpa = qp[c];
    const Field2D& fpa = fp[c];
    Field2D& out = qn1[c];
    for (int j = 0; j < nj; ++j) {
      if (v == SweepVariant::L1) {
        for (int i = irange.begin; i < irange.end; ++i) {
          out(i, j) = 0.5 * (qa(i, j) + qpa(i, j) - lambda * bwd(fpa, i, j));
        }
      } else {
        for (int i = irange.begin; i < irange.end; ++i) {
          out(i, j) = 0.5 * (qa(i, j) + qpa(i, j) - lambda * fwd(fpa, i, j));
        }
      }
    }
  }
  if (fc) {
    fc->add(8.0 * StateField::kComponents *
            static_cast<long>(irange.end - irange.begin) * nj);
  }
}

void predictor_r(const Grid& grid, const StateField& q, const StateField& gt,
                 const Field2D& p, const Field2D& ttt, bool viscous,
                 StateField& qp, double dt, SweepVariant v, Range irange,
                 FlopCounter* fc) {
  const int nj = q.rho.nj();
  const double inv6dr = 1.0 / (6.0 * grid.dr());
  for (int j = 0; j < nj; ++j) {
    const double dt_r = dt / grid.r(j);
    for (int i = irange.begin; i < irange.end; ++i) {
      const double src = p(i, j) - (viscous ? ttt(i, j) : 0.0);
      for (int c = 0; c < StateField::kComponents; ++c) {
        const double diff = (v == SweepVariant::L1) ? fwd_r(gt[c], i, j)
                                                    : bwd_r(gt[c], i, j);
        const double s = (c == 2) ? src : 0.0;
        qp[c](i, j) = q[c](i, j) + dt_r * (s - diff * inv6dr);
      }
    }
  }
  if (fc) {
    fc->add(30.0 * static_cast<long>(irange.end - irange.begin) * nj,
            1.0 * static_cast<long>(irange.end - irange.begin) * nj);
  }
}

void corrector_r(const Grid& grid, const StateField& q, const StateField& qp,
                 const StateField& gtp, const Field2D& pp, const Field2D& tttp,
                 bool viscous, StateField& qn1, double dt, SweepVariant v,
                 Range irange, FlopCounter* fc) {
  const int nj = q.rho.nj();
  const double inv6dr = 1.0 / (6.0 * grid.dr());
  for (int j = 0; j < nj; ++j) {
    const double dt_r = dt / grid.r(j);
    for (int i = irange.begin; i < irange.end; ++i) {
      const double src = pp(i, j) - (viscous ? tttp(i, j) : 0.0);
      for (int c = 0; c < StateField::kComponents; ++c) {
        const double diff = (v == SweepVariant::L1) ? bwd_r(gtp[c], i, j)
                                                    : fwd_r(gtp[c], i, j);
        const double s = (c == 2) ? src : 0.0;
        qn1[c](i, j) =
            0.5 * (q[c](i, j) + qp[c](i, j) + dt_r * (s - diff * inv6dr));
      }
    }
  }
  if (fc) {
    fc->add(34.0 * static_cast<long>(irange.end - irange.begin) * nj,
            1.0 * static_cast<long>(irange.end - irange.begin) * nj);
  }
}

void fill_q_ghost_rows_axis(StateField& q, Range irange) {
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      q.rho(i, -g) = q.rho(i, g - 1);
      q.mx(i, -g) = q.mx(i, g - 1);
      q.mr(i, -g) = -q.mr(i, g - 1);
      q.e(i, -g) = q.e(i, g - 1);
    }
  }
}

void fill_q_ghost_rows_far(StateField& q, Range irange,
                           const double farfield[4]) {
  const int nj = q.rho.nj();
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      q.rho(i, nj - 1 + g) = farfield[0];
      q.mx(i, nj - 1 + g) = farfield[1];
      q.mr(i, nj - 1 + g) = farfield[2];
      q.e(i, nj - 1 + g) = farfield[3];
    }
  }
}

void fill_q_ghost_rows(StateField& q, Range irange, const double farfield[4]) {
  fill_q_ghost_rows_axis(q, irange);
  fill_q_ghost_rows_far(q, irange, farfield);
}

void fill_q_ghost_rows_far_zero_gradient(StateField& q, Range irange) {
  const int nj = q.rho.nj();
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      for (int c = 0; c < StateField::kComponents; ++c) {
        q[c](i, nj - 1 + g) = q[c](i, nj - 1);
      }
    }
  }
}

void fill_primitive_ghost_rows_far_zero_gradient(PrimitiveField& w,
                                                 Range irange) {
  const int nj = w.u.nj();
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      w.u(i, nj - 1 + g) = w.u(i, nj - 1);
      w.v(i, nj - 1 + g) = w.v(i, nj - 1);
      w.t(i, nj - 1 + g) = w.t(i, nj - 1);
      w.p(i, nj - 1 + g) = w.p(i, nj - 1);
    }
  }
}

void fill_primitive_ghost_rows_axis(PrimitiveField& w, Range irange) {
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      w.u(i, -g) = w.u(i, g - 1);
      w.v(i, -g) = -w.v(i, g - 1);
      w.t(i, -g) = w.t(i, g - 1);
      w.p(i, -g) = w.p(i, g - 1);
    }
  }
}

void fill_primitive_ghost_rows_far(const Gas& gas, PrimitiveField& w,
                                   Range irange, const Primitive& farfield) {
  const int nj = w.u.nj();
  const double t_far = gas.temperature(farfield.p, farfield.rho);
  for (int g = 1; g <= kGhost; ++g) {
    for (int i = irange.begin; i < irange.end; ++i) {
      w.u(i, nj - 1 + g) = farfield.u;
      w.v(i, nj - 1 + g) = farfield.v;
      w.t(i, nj - 1 + g) = t_far;
      w.p(i, nj - 1 + g) = farfield.p;
    }
  }
}

void fill_primitive_ghost_rows(const Gas& gas, PrimitiveField& w, Range irange,
                               const Primitive& farfield) {
  fill_primitive_ghost_rows_axis(w, irange);
  fill_primitive_ghost_rows_far(gas, w, irange, farfield);
}

}  // namespace nsp::core
