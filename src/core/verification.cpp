#include "core/verification.hpp"

#include <cmath>

namespace nsp::core {

double observed_order(double e1, double h1, double e2, double h2) {
  if (e1 <= 0 || e2 <= 0 || h1 <= h2 || h2 <= 0) return 0;
  return std::log(e1 / e2) / std::log(h1 / h2);
}

ConvergenceReport analyze_convergence(const GridLevel& coarse,
                                      const GridLevel& medium,
                                      const GridLevel& fine, double safety) {
  ConvergenceReport rep;
  if (!(coarse.h > medium.h && medium.h > fine.h) || fine.h <= 0) return rep;

  const double r12 = medium.h / fine.h;    // refinement fine <- medium
  const double r23 = coarse.h / medium.h;  // refinement medium <- coarse
  const double e12 = medium.value - fine.value;
  const double e23 = coarse.value - medium.value;
  if (e12 == 0 || e23 == 0) return rep;
  // Oscillatory convergence (sign change) leaves the order undefined.
  if ((e12 > 0) != (e23 > 0)) return rep;

  double p;
  if (std::fabs(r12 - r23) < 1e-12) {
    p = std::log(std::fabs(e23 / e12)) / std::log(r12);
  } else {
    // Fixed-point iteration for unequal refinement ratios (Roache).
    p = std::log(std::fabs(e23 / e12)) / std::log(r12);
    for (int it = 0; it < 50; ++it) {
      const double q = std::log((std::pow(r12, p) - 1.0) /
                                (std::pow(r23, p) - 1.0));
      const double p_new =
          std::fabs(std::log(std::fabs(e23 / e12)) + q) / std::log(r12);
      if (std::fabs(p_new - p) < 1e-12) {
        p = p_new;
        break;
      }
      p = p_new;
    }
  }
  if (!std::isfinite(p) || p <= 0) return rep;

  rep.observed_order = p;
  rep.extrapolated =
      fine.value + (fine.value - medium.value) / (std::pow(r12, p) - 1.0);
  const double denom12 = std::pow(r12, p) - 1.0;
  const double denom23 = std::pow(r23, p) - 1.0;
  const double rel = std::fabs(fine.value) > 1e-300 ? std::fabs(fine.value) : 1.0;
  rep.gci_fine = safety * std::fabs(e12 / rel) / denom12;
  rep.gci_coarse = safety * std::fabs(e23 / rel) / denom23;
  // In the asymptotic range GCI_coarse ~ r^p GCI_fine.
  rep.asymptotic_ratio =
      rep.gci_fine > 0 ? rep.gci_coarse / (std::pow(r12, p) * rep.gci_fine)
                       : 0;
  rep.valid = true;
  return rep;
}

double fit_order(const std::vector<GridLevel>& errors) {
  // Least squares on log e = log C + p log h.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (const GridLevel& g : errors) {
    if (g.h <= 0 || g.value <= 0) continue;
    const double x = std::log(g.h);
    const double y = std::log(g.value);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0;
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-300) return 0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace nsp::core
