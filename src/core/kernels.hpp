// Numerical kernels of the 2-4 MacCormack (Gottlieb-Turkel) solver.
//
// Everything here is a free function over fields with explicit index
// ranges, so the serial Solver (full domain, extrapolated boundary
// fluxes) and the parallel subdomain solver (halo-filled ghost columns)
// orchestrate the same arithmetic. The parallel decomposition then
// reproduces the serial solution exactly, which is the key correctness
// property the tests assert.
//
// Sweep formulas (L1 = forward predictor / backward corrector; L2 the
// symmetric variant), for q_t + F_x = 0 with lambda = dt/(6 dx):
//   L1 predictor:  q*_i = q_i - lambda [7(F_{i+1} - F_i) - (F_{i+2} - F_{i+1})]
//   L1 corrector:  q^{n+1}_i = 1/2 [q_i + q*_i
//                              - lambda (7(F*_i - F*_{i-1}) - (F*_{i-1} - F*_{i-2}))]
// Alternating L1/L2 over successive steps gives fourth-order spatial
// accuracy (Gottlieb & Turkel 1976).
#pragma once

#include "core/counters.hpp"
#include "core/field.hpp"
#include "core/gas.hpp"
#include "core/grid.hpp"

namespace nsp::core {

/// Which symmetric variant of the 2-4 scheme a sweep uses.
enum class SweepVariant { L1, L2 };

/// The MacCormack difference family of the predictor/corrector updates:
/// Mac24 is the paper's 2-4 (Gottlieb-Turkel) one-sided difference,
/// fourth-order in space when the L1/L2 variants alternate; Mac22 is the
/// classical 2-2 form (first-order one-sided differences, second-order
/// after the predictor/corrector average). Every other stage of the
/// pipeline (primitives, stresses, fluxes, boundaries) is
/// scheme-agnostic; kernels_scheme.hpp holds the templated update
/// kernels and select_kernels(bool, Scheme) picks a set.
enum class Scheme { Mac24, Mac22 };

/// FP ops in one one-sided difference of scheme `s` (the 2-4 stencil
/// costs 4, the 2-2 stencil 2): the scheme-dependent term of the sweep
/// flop credits. kernels_scheme.cpp and Solver::credit_sweep_*_stage
/// must agree on these so fused and unfused schedules report identical
/// totals for either scheme.
constexpr double scheme_diff_flops(Scheme s) {
  return s == Scheme::Mac24 ? 4.0 : 2.0;
}

/// The paper's single-processor optimization stages, as real alternative
/// implementations of the hot kernels (identical mathematics, different
/// loop order and strength): see arch/kernel_profile.hpp for the story.
enum class KernelVariant : int { V1 = 1, V2 = 2, V3 = 3, V4 = 4, V5 = 5 };

/// Primitive-variable fields derived from the conserved state.
struct PrimitiveField {
  Field2D u, v, t, p;
  PrimitiveField() = default;
  PrimitiveField(int ni, int nj) : u(ni, nj), v(ni, nj), t(ni, nj), p(ni, nj) {}
};

/// Viscous stress and heat-flux fields (axisymmetric).
struct StressField {
  Field2D txx, trr, ttt, txr, qx, qr;
  StressField() = default;
  StressField(int ni, int nj)
      : txx(ni, nj), trr(ni, nj), ttt(ni, nj), txr(ni, nj), qx(ni, nj),
        qr(ni, nj) {}
};

/// Inclusive-exclusive index range [begin, end).
struct Range {
  int begin = 0;
  int end = 0;
};

/// Computes u, v, T, p from q for i in `irange`, all j in
/// [jlo, jhi) (ghost rows allowed). `variant` selects the paper's
/// optimization stage (loop order / pow / division strategy); all
/// variants agree to rounding. Flop costs are credited to `fc` if given.
void compute_primitives(const Gas& gas, const StateField& q,
                        PrimitiveField& w, Range irange, int jlo, int jhi,
                        KernelVariant variant = KernelVariant::V5,
                        FlopCounter* fc = nullptr);

/// Computes the axisymmetric stresses and heat fluxes from u, v, T over
/// i in `irange`, j in [0, nj). Derivatives are central where both
/// neighbours exist inside [ilo_avail, ihi_avail) x [axis ghosts, far
/// ghosts], one-sided at the extremes. Radial ghosts of u, v, T must be
/// filled (axis reflection / far field) before the call.
void compute_stresses(const Gas& gas, const Grid& grid,
                      const PrimitiveField& w, StressField& s, Range irange,
                      int ilo_avail, int ihi_avail, FlopCounter* fc = nullptr);

/// Reflects the stress fields across the axis into ghost rows j = -1,-2
/// and fills far-field ghost rows with a copy of the last interior row.
void fill_stress_ghost_rows(StressField& s, int ni_lo, int ni_hi);

/// Computes the axial flux F(q) (viscous terms included when
/// `viscous`) for i in `irange`, j in [0, nj).
void compute_flux_x(const Gas& gas, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& f, Range irange,
                    KernelVariant variant = KernelVariant::V5,
                    FlopCounter* fc = nullptr);

/// Computes the radial flux scaled by radius, Gt = r * G(q), for i in
/// `irange`, j in [jlo, jhi) (ghost rows allowed; grid.r() supplies the
/// signed radius for axis ghosts).
void compute_flux_r(const Gas& gas, const Grid& grid, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& gt, Range irange, int jlo,
                    int jhi, KernelVariant variant = KernelVariant::V5,
                    FlopCounter* fc = nullptr);

/// Reflects Gt = r*G across the axis into ghost rows j = -1, -2.
/// Component symmetry under r -> -r is [+, +, -, +].
void reflect_flux_r_axis(StateField& gt, Range irange);

/// Cubically extrapolates flux columns into the two ghost columns on
/// the given side (side < 0: i = -1, -2; side > 0: i = ni, ni+1), as the
/// paper does at physical x boundaries:
///   F(-1) = 4 F(0) - 6 F(1) + 4 F(2) - F(3), applied recursively.
void extrapolate_flux_ghost_x(StateField& f, int ni, int side,
                              FlopCounter* fc = nullptr);

/// x-direction predictor: qp = q - lambda * D(F), D one-sided per the
/// variant, for i in `irange`, j in [0, nj). lambda = dt / (6 dx).
void predictor_x(const StateField& q, const StateField& f, StateField& qp,
                 double lambda, SweepVariant v, Range irange,
                 FlopCounter* fc = nullptr);

/// x-direction corrector: qn1 = 1/2 (q + qp - lambda * D'(Fp)).
void corrector_x(const StateField& q, const StateField& qp,
                 const StateField& fp, StateField& qn1, double lambda,
                 SweepVariant v, Range irange, FlopCounter* fc = nullptr);

/// r-direction predictor with the geometric source:
///   qp = q + dt/r * (S - D(Gt)/(6 dr)),  S = [0, 0, p - t_theta, 0].
void predictor_r(const Grid& grid, const StateField& q, const StateField& gt,
                 const Field2D& p, const Field2D& ttt, bool viscous,
                 StateField& qp, double dt, SweepVariant v, Range irange,
                 FlopCounter* fc = nullptr);

/// r-direction corrector.
void corrector_r(const Grid& grid, const StateField& q, const StateField& qp,
                 const StateField& gtp, const Field2D& pp, const Field2D& tttp,
                 bool viscous, StateField& qn1, double dt, SweepVariant v,
                 Range irange, FlopCounter* fc = nullptr);

/// Fills radial ghost rows of q: axis side by reflection (rho, rho*u, E
/// symmetric; rho*v antisymmetric), far side with the supplied
/// free-stream conserved state. The _axis/_far variants fill one side
/// only (radial subdomains own at most one physical radial boundary).
void fill_q_ghost_rows(StateField& q, Range irange, const double farfield[4]);
void fill_q_ghost_rows_axis(StateField& q, Range irange);
void fill_q_ghost_rows_far(StateField& q, Range irange, const double farfield[4]);

/// Fills radial ghost rows of the primitive fields consistently
/// (u, T, p symmetric; v antisymmetric; far side free stream).
void fill_primitive_ghost_rows(const Gas& gas, PrimitiveField& w, Range irange,
                               const Primitive& farfield);
void fill_primitive_ghost_rows_axis(PrimitiveField& w, Range irange);
void fill_primitive_ghost_rows_far(const Gas& gas, PrimitiveField& w,
                                   Range irange, const Primitive& farfield);

/// One-sided variants of fill_stress_ghost_rows.
void fill_stress_ghost_rows_axis(StressField& s, int ni_lo, int ni_hi);
void fill_stress_ghost_rows_far(StressField& s, int ni_lo, int ni_hi);

/// Zero-gradient far-side ghost rows (copy of the outermost interior
/// row) — for non-jet problems such as the shock-tube validation where
/// a fixed free stream would drive spurious radial waves.
void fill_q_ghost_rows_far_zero_gradient(StateField& q, Range irange);
void fill_primitive_ghost_rows_far_zero_gradient(PrimitiveField& w, Range irange);

}  // namespace nsp::core
