#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/check.hpp"
#include "core/kernels_tiled.hpp"
#include "core/stability.hpp"
#include "core/tiles.hpp"

namespace nsp::core {

Solver::Solver(SolverConfig cfg)
    : cfg_(std::move(cfg)),
      inflow_(cfg_.grid, cfg_.jet),
      outflow_(cfg_.jet.gas),
      q_(cfg_.grid.ni, cfg_.grid.nj),
      qp_(cfg_.grid.ni, cfg_.grid.nj),
      qn_(cfg_.grid.ni, cfg_.grid.nj),
      w_(cfg_.grid.ni, cfg_.grid.nj),
      s_(cfg_.grid.ni, cfg_.grid.nj),
      flux_(cfg_.grid.ni, cfg_.grid.nj) {
  // Transport properties follow the jet Reynolds number.
  cfg_.jet.gas.mu = cfg_.viscous ? cfg_.jet.viscosity() : 0.0;
  // The Rayleigh eigensolve refines the single analytic mode only; the
  // multi-mode and quiet excitations keep their configured shapes.
  if (cfg_.rayleigh_inflow && cfg_.jet.excitation == Excitation::Mode1) {
    const auto mode = stability::solve(cfg_.jet, cfg_.jet.omega());
    // to_eigenmode falls back to the analytic mode when the eigensolve
    // failed; count the silent fallback so it shows up in reports.
    NSP_CHECK_WARN(mode.converged, "core.solver.rayleigh_converged");
    inflow_ =
        InflowBC(cfg_.grid, cfg_.jet, stability::to_eigenmode(mode, cfg_.jet));
  } else {
    inflow_ = InflowBC(cfg_.grid, cfg_.jet);
  }
  outflow_ = OutflowBC(cfg_.jet.gas);
  inflow_.farfield_conserved(far_q_);
  far_w_ = to_primitive(cfg_.jet.gas, far_q_[0], far_q_[1], far_q_[2], far_q_[3]);
}

void Solver::initialize() {
  const Grid& g = cfg_.grid;
  const Gas& gas = cfg_.jet.gas;
  double max_x_speed = 0, max_r_speed = 0;
  for (int j = -kGhost; j < g.nj + kGhost; ++j) {
    const double r = std::fabs(g.r(j));
    const double rho = cfg_.jet.mean_rho(r);
    const double u = cfg_.jet.mean_u(r);
    const double p = cfg_.jet.mean_p();
    const double e = gas.total_energy(rho, u, 0.0, p);
    const double c = gas.sound_speed(p, rho);
    max_x_speed = std::max(max_x_speed, std::fabs(u) + c);
    max_r_speed = std::max(max_r_speed, c);
    for (int i = -kGhost; i < g.ni + kGhost; ++i) {
      q_.rho(i, j) = rho;
      q_.mx(i, j) = rho * u;
      q_.mr(i, j) = 0.0;
      q_.e(i, j) = e;
    }
  }
  // Headroom for the excitation-driven velocity growth downstream.
  dt_ = cfg_.cfl * std::min(g.dx() / (1.3 * max_x_speed),
                            g.dr() / (1.3 * max_r_speed));
  NSP_CHECK_FINITE(dt_, "core.solver.dt_finite");
  NSP_CHECK(dt_ > 0, "core.solver.dt_positive");
  // The CFL bound the time step was derived from must actually hold for
  // the initial field's wave speeds (small slack for roundoff).
  NSP_CHECK(dt_ * max_x_speed <= cfg_.cfl * g.dx() * (1 + 1e-12) &&
                dt_ * max_r_speed <= cfg_.cfl * g.dr() * (1 + 1e-12),
            "core.solver.cfl_bound");
  t_ = 0;
  steps_ = 0;
  flops_.reset();
}

void Solver::fill_radial_ghosts(StateField& q_stage) const {
  fill_radial_ghosts(q_stage, Range{0, cfg_.grid.ni});
}

// The ghost-row fills are column-local (each column's ghosts depend only
// on that column), so the fused tile schedule can fill just the padded
// tile's columns and still produce bit-identical ghost values.
void Solver::fill_radial_ghosts(StateField& q_stage, Range irange) const {
  fill_q_ghost_rows_axis(q_stage, irange);
  if (cfg_.far_field == RBoundary::FreeStream) {
    fill_q_ghost_rows_far(q_stage, irange, far_q_);
  } else {
    fill_q_ghost_rows_far_zero_gradient(q_stage, irange);
  }
}

void Solver::fill_radial_prim_ghosts(PrimitiveField& w) const {
  fill_radial_prim_ghosts(w, Range{0, cfg_.grid.ni});
}

void Solver::fill_radial_prim_ghosts(PrimitiveField& w, Range irange) const {
  fill_primitive_ghost_rows_axis(w, irange);
  if (cfg_.far_field == RBoundary::FreeStream) {
    fill_primitive_ghost_rows_far(cfg_.jet.gas, w, irange, far_w_);
  } else {
    fill_primitive_ghost_rows_far_zero_gradient(w, irange);
  }
}

void Solver::restore(const StateField& q, double time, int steps) {
  if (q.ni() != cfg_.grid.ni || q.nj() != cfg_.grid.nj) {
    throw std::invalid_argument("Solver::restore: dimension mismatch");
  }
  if (dt_ <= 0) initialize();  // recompute dt and allocate work arrays
  q_ = q;
  t_ = time;
  steps_ = steps;
}

void Solver::apply_x_boundaries(StateField& q_stage, double stage_dt) {
  if (cfg_.left == XBoundary::Inflow) {
    inflow_.apply(q_stage, 0, t_ + dt_);
  }
  if (cfg_.right == XBoundary::CharacteristicOutflow) {
    outflow_.apply(q_stage, q_, cfg_.grid.ni - 1, stage_dt);
  }
}

bool Solver::use_fused() const {
  // The fused schedule needs the span kernels' V3+ bodies (V1/V2 are
  // museum exhibits of the paper's ladder and keep their pessimized
  // whole-grid schedule) and a single thread: tiles of one stage share
  // the scratch pad columns, which partitioned DOALL chunks must not.
  return cfg_.tiled && cfg_.num_threads <= 1 &&
         cfg_.variant != KernelVariant::V1 && cfg_.variant != KernelVariant::V2;
}

int Solver::tile_width() const {
  if (cfg_.tile_i > 0) {
    // Floor of 2*kGhost: the first tile must cover the flux columns the
    // left ghost extrapolation reads.
    return std::min(std::max(cfg_.tile_i, 2 * kGhost), cfg_.grid.ni);
  }
  return choose_tile_width(cfg_.grid.ni, cfg_.grid.nj, kSweepArrays,
                           host_cache_bytes());
}

void Solver::sweep_x(SweepVariant v) {
  if (use_fused()) {
    sweep_x_fused(v);
    return;
  }
  const Grid& g = cfg_.grid;
  const Gas& gas = cfg_.jet.gas;
  const KernelSet ks = select_kernels(cfg_.tiled, cfg_.scheme);
  FlopCounter* fc =
      (cfg_.count_flops && cfg_.num_threads <= 1) ? &flops_ : nullptr;
  const double lambda = dt_ / (6.0 * g.dx());

  for (int stage = 0; stage < 2; ++stage) {
    const StateField& qs = stage == 0 ? q_ : qp_;
    doall([&](Range r) {
      ks.primitives(gas, qs, w_, r, 0, g.nj, cfg_.variant, fc);
    });
    if (cfg_.viscous) {
      fill_radial_prim_ghosts(w_);
      doall([&](Range r) {
        ks.stresses(gas, g, w_, s_, r, 0, g.ni, fc);
      });
    }
    doall([&](Range r) {
      ks.flux_x(gas, qs, w_, s_, cfg_.viscous, flux_, r, cfg_.variant, fc);
    });
    extrapolate_flux_ghost_x(flux_, g.ni, -1, fc);
    extrapolate_flux_ghost_x(flux_, g.ni, +1, fc);
    if (stage == 0) {
      doall([&](Range r) { ks.pred_x(q_, flux_, qp_, lambda, v, r, fc); });
      apply_x_boundaries(qp_, dt_);
    } else {
      doall([&](Range r) { ks.corr_x(q_, qp_, flux_, qn_, lambda, v, r, fc); });
      apply_x_boundaries(qn_, dt_);
    }
  }
  std::swap(q_, qn_);
}

void Solver::sweep_r(SweepVariant v) {
  if (use_fused()) {
    sweep_r_fused(v);
    return;
  }
  const Grid& g = cfg_.grid;
  const Gas& gas = cfg_.jet.gas;
  const KernelSet ks = select_kernels(cfg_.tiled, cfg_.scheme);
  FlopCounter* fc =
      (cfg_.count_flops && cfg_.num_threads <= 1) ? &flops_ : nullptr;
  const Range full{0, g.ni};

  for (int stage = 0; stage < 2; ++stage) {
    StateField& qs = stage == 0 ? q_ : qp_;
    fill_radial_ghosts(qs);
    doall([&](Range r) {
      ks.primitives(gas, qs, w_, r, -kGhost, g.nj + kGhost, cfg_.variant, fc);
    });
    if (cfg_.viscous) {
      doall([&](Range r) {
        ks.stresses(gas, g, w_, s_, r, 0, g.ni, fc);
      });
      fill_stress_ghost_rows(s_, full.begin, full.end);
    }
    doall([&](Range r) {
      ks.flux_r(gas, g, qs, w_, s_, cfg_.viscous, flux_, r, 0,
                g.nj + kGhost, cfg_.variant, fc);
    });
    reflect_flux_r_axis(flux_, full);
    if (stage == 0) {
      doall([&](Range r) {
        ks.pred_r(g, q_, flux_, w_.p, s_.ttt, cfg_.viscous, qp_, dt_, v, r, fc);
      });
      apply_x_boundaries(qp_, dt_);
    } else {
      doall([&](Range r) {
        ks.corr_r(g, q_, qp_, flux_, w_.p, s_.ttt, cfg_.viscous, qn_, dt_, v,
                  r, fc);
      });
      apply_x_boundaries(qn_, dt_);
    }
  }
  std::swap(q_, qn_);
}

void Solver::credit_sweep_x_stage(int stage) {
  if (!cfg_.count_flops) return;
  const long ni = cfg_.grid.ni, nj = cfg_.grid.nj;
  const double pts = static_cast<double>(ni) * nj;
  if (cfg_.variant == KernelVariant::V3) {
    flops_.add(8.0 * pts, 4.0 * pts);
  } else {
    flops_.add(10.0 * pts, 1.0 * pts);
  }
  if (cfg_.viscous) flops_.add(36.0 * pts, 1.0 * pts);
  flops_.add((cfg_.viscous ? 14.0 : 7.0) * pts);
  flops_.add(2.0 * 14.0 * nj * StateField::kComponents);  // ghost extrapolation
  // Update credit: (diff + 2) predictor, (diff + 4) corrector flops per
  // point per component; diff is the scheme's one-sided stencil cost
  // (Mac24: 6/8, exactly the handwritten kernels' constants).
  const double df = scheme_diff_flops(cfg_.scheme);
  flops_.add((stage == 0 ? df + 2.0 : df + 4.0) * StateField::kComponents *
             pts);
}

void Solver::credit_sweep_r_stage(int stage) {
  if (!cfg_.count_flops) return;
  const long ni = cfg_.grid.ni, nj = cfg_.grid.nj;
  const double pts = static_cast<double>(ni) * nj;
  const double pts_prim = static_cast<double>(ni) * (nj + 2 * kGhost);
  const double pts_flux = static_cast<double>(ni) * (nj + kGhost);
  if (cfg_.variant == KernelVariant::V3) {
    flops_.add(8.0 * pts_prim, 4.0 * pts_prim);
  } else {
    flops_.add(10.0 * pts_prim, 1.0 * pts_prim);
  }
  if (cfg_.viscous) flops_.add(36.0 * pts, 1.0 * pts);
  flops_.add((cfg_.viscous ? 18.0 : 11.0) * pts_flux);
  // Radial update: ((diff + 3) * 4 + 2) predictor / ((diff + 4) * 4 + 2)
  // corrector flops plus one divide per point (Mac24: 30/34).
  const double df = scheme_diff_flops(cfg_.scheme);
  flops_.add((stage == 0 ? (df + 3.0) * 4.0 + 2.0 : (df + 4.0) * 4.0 + 2.0) *
                 pts,
             1.0 * pts);
}

void Solver::sweep_x_fused(SweepVariant v) {
  const Grid& g = cfg_.grid;
  const Gas& gas = cfg_.jet.gas;
  const KernelSet ks = select_kernels(true, cfg_.scheme);
  const double lambda = dt_ / (6.0 * g.dx());
  const int w = tile_width();

  for (int stage = 0; stage < 2; ++stage) {
    const StateField& qs = stage == 0 ? q_ : qp_;
    for (int lo = 0, hi = 0; lo < g.ni; lo = hi) {
      // The forward difference at column ni-2 reads the ghost flux the
      // right-edge extrapolation provides, so that column must belong
      // to the tile that runs the extrapolation (hi == ni): a 1-column
      // final tile is absorbed into its neighbour.
      hi = std::min(lo + w, g.ni);
      if (g.ni - hi == 1) hi = g.ni;
      // The update reads flux at i +- kGhost; interior flux columns come
      // from this tile's padded range, ghost columns (outside the grid)
      // from the edge extrapolation below. Stresses read primitives two
      // further columns out.
      const Range fr{std::max(0, lo - kGhost), std::min(g.ni, hi + kGhost)};
      const Range pr{std::max(0, fr.begin - 2), std::min(g.ni, fr.end + 2)};
      ks.primitives(gas, qs, w_, pr, 0, g.nj, cfg_.variant, nullptr);
      if (cfg_.viscous) {
        fill_radial_prim_ghosts(w_, pr);
        // The axial flux reads only {txx, txr, qx}; skip the rest.
        tiled::compute_stresses_for(tiled::StressOutputs::FluxX, gas, g, w_,
                                    s_, fr, 0, g.ni, nullptr);
      }
      ks.flux_x(gas, qs, w_, s_, cfg_.viscous, flux_, fr, cfg_.variant,
                nullptr);
      // Tiles run left to right, so by the time hi == ni every interior
      // flux column is current and the right extrapolation is valid.
      if (lo == 0) extrapolate_flux_ghost_x(flux_, g.ni, -1, nullptr);
      if (hi == g.ni) extrapolate_flux_ghost_x(flux_, g.ni, +1, nullptr);
      const Range ur{lo, hi};
      if (stage == 0) {
        ks.pred_x(q_, flux_, qp_, lambda, v, ur, nullptr);
      } else {
        ks.corr_x(q_, qp_, flux_, qn_, lambda, v, ur, nullptr);
      }
    }
    apply_x_boundaries(stage == 0 ? qp_ : qn_, dt_);
    credit_sweep_x_stage(stage);
  }
  std::swap(q_, qn_);
}

void Solver::sweep_r_fused(SweepVariant v) {
  const Grid& g = cfg_.grid;
  const Gas& gas = cfg_.jet.gas;
  const KernelSet ks = select_kernels(true, cfg_.scheme);
  const int w = tile_width();

  for (int stage = 0; stage < 2; ++stage) {
    StateField& qs = stage == 0 ? q_ : qp_;
    for (int lo = 0; lo < g.ni; lo += w) {
      const int hi = std::min(lo + w, g.ni);
      // Radial differences never cross columns: the update needs flux
      // only on its own columns; only the stresses' x-derivatives reach
      // two columns beyond the tile.
      const Range ur{lo, hi};
      const Range pr{std::max(0, lo - 2), std::min(g.ni, hi + 2)};
      fill_radial_ghosts(qs, pr);
      ks.primitives(gas, qs, w_, pr, -kGhost, g.nj + kGhost, cfg_.variant,
                    nullptr);
      if (cfg_.viscous) {
        // The radial flux and source read only {trr, ttt, txr, qr}.
        tiled::compute_stresses_for(tiled::StressOutputs::FluxR, gas, g, w_,
                                    s_, ur, 0, g.ni, nullptr);
        fill_stress_ghost_rows(s_, ur.begin, ur.end);
      }
      ks.flux_r(gas, g, qs, w_, s_, cfg_.viscous, flux_, ur, 0,
                g.nj + kGhost, cfg_.variant, nullptr);
      reflect_flux_r_axis(flux_, ur);
      if (stage == 0) {
        ks.pred_r(g, q_, flux_, w_.p, s_.ttt, cfg_.viscous, qp_, dt_, v, ur,
                  nullptr);
      } else {
        ks.corr_r(g, q_, qp_, flux_, w_.p, s_.ttt, cfg_.viscous, qn_, dt_, v,
                  ur, nullptr);
      }
    }
    apply_x_boundaries(stage == 0 ? qp_ : qn_, dt_);
    credit_sweep_r_stage(stage);
  }
  std::swap(q_, qn_);
}

void Solver::apply_smoothing() {
  const double sigma = cfg_.smoothing;
  if (sigma <= 0) return;
  const Grid& g = cfg_.grid;
  fill_radial_ghosts(q_);
  for (int c = 0; c < StateField::kComponents; ++c) {
    Field2D& a = q_[c];
    Field2D& out = qn_[c];
    for (int j = 0; j < g.nj; ++j) {
      for (int i = 0; i < g.ni; ++i) {
        const int il = std::max(i - 1, 0), ill = std::max(i - 2, 0);
        const int ir = std::min(i + 1, g.ni - 1), irr = std::min(i + 2, g.ni - 1);
        const double d4x = a(ill, j) - 4.0 * a(il, j) + 6.0 * a(i, j) -
                           4.0 * a(ir, j) + a(irr, j);
        const double d4r = a(i, j - 2) - 4.0 * a(i, j - 1) + 6.0 * a(i, j) -
                           4.0 * a(i, std::min(j + 1, g.nj - 1)) +
                           a(i, std::min(j + 2, g.nj - 1));
        out(i, j) = a(i, j) - sigma * (d4x + d4r);
      }
    }
  }
  std::swap(q_, qn_);
}

namespace {

#if NSP_CHECK_LEVEL >= 2
/// Exhaustive per-point scan: every interior value finite, density and
/// pressure positive. Level-2 only — it touches the whole field.
bool state_physical(const Gas& gas, const Grid& g, const StateField& q) {
  for (int j = 0; j < g.nj; ++j) {
    for (int i = 0; i < g.ni; ++i) {
      const double rho = q.rho(i, j);
      if (!std::isfinite(rho) || rho <= 0) return false;
      if (!std::isfinite(q.mx(i, j)) || !std::isfinite(q.mr(i, j)) ||
          !std::isfinite(q.e(i, j))) {
        return false;
      }
      const Primitive w =
          to_primitive(gas, rho, q.mx(i, j), q.mr(i, j), q.e(i, j));
      if (!std::isfinite(w.p) || w.p <= 0) return false;
    }
  }
  return true;
}
#endif

}  // namespace

void Solver::step() {
  if (dt_ <= 0) initialize();
  if (steps_ % 2 == 0) {
    sweep_r(SweepVariant::L1);
    sweep_x(SweepVariant::L1);
  } else {
    sweep_x(SweepVariant::L2);
    sweep_r(SweepVariant::L2);
  }
  apply_smoothing();
  ++steps_;
  t_ += dt_;
  NSP_CHECK_SLOW(state_physical(cfg_.jet.gas, cfg_.grid, q_),
                 "core.solver.state_physical");
}

void Solver::run(int n) {
  for (int k = 0; k < n; ++k) step();
}

bool Solver::finite() const {
  for (int c = 0; c < StateField::kComponents; ++c) {
    const Field2D& a = q_[c];
    for (int j = 0; j < cfg_.grid.nj; ++j) {
      for (int i = 0; i < cfg_.grid.ni; ++i) {
        if (!std::isfinite(a(i, j))) return false;
      }
    }
  }
  return true;
}

double Solver::max_mach() const {
  const Gas& gas = cfg_.jet.gas;
  double m = 0;
  for (int j = 0; j < cfg_.grid.nj; ++j) {
    for (int i = 0; i < cfg_.grid.ni; ++i) {
      const Primitive w =
          to_primitive(gas, q_.rho(i, j), q_.mx(i, j), q_.mr(i, j), q_.e(i, j));
      if (w.p <= 0 || w.rho <= 0) return std::nan("");
      const double c = gas.sound_speed(w.p, w.rho);
      m = std::max(m, std::sqrt(w.u * w.u + w.v * w.v) / c);
    }
  }
  return m;
}

std::vector<double> Solver::axial_momentum() const {
  std::vector<double> out(static_cast<std::size_t>(cfg_.grid.ni) * cfg_.grid.nj);
  for (int i = 0; i < cfg_.grid.ni; ++i) {
    for (int j = 0; j < cfg_.grid.nj; ++j) {
      out[static_cast<std::size_t>(i) * cfg_.grid.nj + j] = q_.mx(i, j);
    }
  }
  return out;
}

double Solver::conserved_integral(int component) const {
  const Grid& g = cfg_.grid;
  double s = 0;
  const Field2D& a = q_[component];
  for (int j = 0; j < g.nj; ++j) {
    const double r = g.r(j);
    for (int i = 0; i < g.ni; ++i) s += r * a(i, j);
  }
  return s * g.dx() * g.dr();
}

}  // namespace nsp::core
