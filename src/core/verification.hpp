// Solution-verification utilities: observed order of accuracy,
// Richardson extrapolation, and the Grid Convergence Index (GCI) of
// Roache — the standard machinery for demonstrating that a CFD code
// converges at its design order.
#pragma once

#include <vector>

namespace nsp::core {

/// One grid level of a convergence study.
struct GridLevel {
  double h = 0;      ///< representative spacing
  double value = 0;  ///< a scalar functional (error norm, probe value...)
};

/// Result of a three-grid convergence analysis (h must decrease).
struct ConvergenceReport {
  bool valid = false;
  double observed_order = 0;    ///< p from the three-grid formula
  double extrapolated = 0;      ///< Richardson-extrapolated value
  double gci_fine = 0;          ///< GCI of the finest pair (fractional)
  double gci_coarse = 0;        ///< GCI of the coarser pair (fractional)
  double asymptotic_ratio = 0;  ///< ~1 when in the asymptotic range
};

/// Observed order from two error norms on grids h1 > h2 (errors against
/// an exact solution): p = log(e1/e2) / log(h1/h2).
double observed_order(double e1, double h1, double e2, double h2);

/// Three-grid analysis of a functional f(h) on h1 > h2 > h3. Uses the
/// constant-ratio formula when r12 == r23 and a fixed-point iteration
/// otherwise; `safety` is the GCI factor of safety (1.25 for 3+ grids).
ConvergenceReport analyze_convergence(const GridLevel& coarse,
                                      const GridLevel& medium,
                                      const GridLevel& fine,
                                      double safety = 1.25);

/// Least-squares observed order over many (h, error) pairs:
/// log e = log C + p log h.
double fit_order(const std::vector<GridLevel>& errors);

}  // namespace nsp::core
