#include "core/tiles.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace nsp::core {

namespace {

/// First line of `path`, stripped of trailing whitespace; "" on error.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.pop_back();
  }
  return line;
}

/// Parses a sysfs cache size ("32K", "1024K", "8M", "1G", plain bytes);
/// 0 when unparseable. Strict: anything after the optional suffix
/// ("8MB", "32K???") rejects the whole string — a best-effort probe
/// that half-reads a malformed size would block for a fictitious cache.
std::size_t parse_cache_size(const std::string& text) {
  std::size_t value = 0;
  std::size_t pos = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + static_cast<std::size_t>(text[pos] - '0');
    ++pos;
  }
  if (pos == 0) return 0;
  std::size_t scale = 1;
  if (pos < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K':
        scale = 1024;
        break;
      case 'M':
        scale = 1024 * 1024;
        break;
      case 'G':
        scale = 1024ull * 1024 * 1024;
        break;
      default:
        return 0;
    }
    ++pos;
  }
  if (pos != text.size()) return 0;
  return value * scale;
}

}  // namespace

std::size_t detect_cache_bytes(const std::string& cache_dir) {
  // sysfs exposes one index<N> directory per cache level the core sees;
  // a handful is plenty (Linux tops out around 4-5 levels).
  constexpr int kMaxIndex = 16;
  std::size_t best = 0;
  for (int idx = 0; idx < kMaxIndex; ++idx) {
    std::ostringstream dir;
    dir << cache_dir << "/index" << idx;
    const std::string type = read_line(dir.str() + "/type");
    if (type.empty()) continue;  // missing index: keep scanning the range
    if (type == "Instruction") continue;
    // An index without a shared_cpu_list map is not attributable to this
    // core (seen on masked/virtualised sysfs trees); skip it rather than
    // size the tile budget off a cache the core may not see.
    if (!std::ifstream(dir.str() + "/shared_cpu_list")) continue;
    const std::size_t bytes = parse_cache_size(read_line(dir.str() + "/size"));
    best = std::max(best, bytes);
  }
  return best;
}

std::size_t host_cache_bytes() {
  // Probed once: the hierarchy cannot change under a running process.
  static const std::size_t probed =
      detect_cache_bytes("/sys/devices/system/cpu/cpu0/cache");
  return probed != 0 ? probed : kDefaultCacheBytes;
}

}  // namespace nsp::core
