// Physical boundary conditions of the jet computation.
//
//  * Inflow (x = 0): Dirichlet mean jet profile plus the Strouhal-
//    excited eigenmode (Section 3 of the paper).
//  * Outflow (x = L): characteristic boundary condition (Hayder &
//    Turkel). The scheme first advances the boundary column with
//    extrapolated fluxes; the characteristic correction then rebuilds
//    the time derivatives from
//        p_t - rho c u_t = 0            (incoming, subsonic outflow)
//        p_t + rho c u_t = R2           (outgoing acoustic, from NS)
//        p_t - c^2 rho_t = R3           (entropy, from NS)
//        v_t            = R4            (vorticity, from NS)
//    where the R_i are the scheme's own (Navier-Stokes) values. For
//    supersonic points every characteristic leaves the domain and the
//    scheme values stand (computed "from the Navier-Stokes equations or
//    by extrapolation", as the paper allows).
//  * Axis (r = 0) and far field (r = 5): handled by the ghost-row fills
//    in kernels.hpp (reflection / free stream).
#pragma once

#include <vector>

#include "core/field.hpp"
#include "core/gas.hpp"
#include "core/grid.hpp"
#include "core/jet.hpp"

namespace nsp::core {

/// Excited-jet inflow condition for the column i = icol (normally 0).
class InflowBC {
 public:
  /// Uses the mode jet.excitation selects (the analytic eigenmode for
  /// the default Excitation::Mode1).
  InflowBC(const Grid& grid, const JetConfig& jet);

  /// Uses a caller-supplied eigenmode (e.g. a converged Rayleigh mode
  /// from core/stability.hpp).
  InflowBC(const Grid& grid, const JetConfig& jet, EigenMode mode);

  /// Overwrites column `icol` of q with the mean profile plus the
  /// excitation evaluated at time t.
  void apply(StateField& q, int icol, double t) const;

  /// The prescribed primitive state at radial index j and time t.
  Primitive state(int j, double t) const;

  /// Conserved free-stream state (also the radial far-field values).
  void farfield_conserved(double out[4]) const;

  const JetConfig& jet() const { return jet_; }

 private:
  Grid grid_;
  JetConfig jet_;
  EigenMode mode_;
  std::vector<Primitive> mean_;  // per j
};

/// Characteristic outflow correction for the column i = icol.
class OutflowBC {
 public:
  explicit OutflowBC(const Gas& gas) : gas_(gas) {}

  /// Rebuilds q_new's column `icol` from the characteristic relations,
  /// using (q_new - q_old) / dt as the scheme-provided time derivatives.
  void apply(StateField& q_new, const StateField& q_old, int icol,
             double dt) const;

 private:
  Gas gas_;
};

}  // namespace nsp::core
