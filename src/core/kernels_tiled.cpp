#include "core/kernels_tiled.hpp"

#include "check/check.hpp"
#include "core/kernels_scheme.hpp"

// Contiguous row spans from distinct Field2D objects never alias.
// GCC only tracks restrict through function PARAMETERS (on local
// pointer variables the qualifier is accepted but ignored, and the
// 8-15 stream loops fail alias analysis), so every kernel below
// outlines its row body into a helper taking restrict pointer
// parameters — that is what makes the inner loops vectorize.
#if defined(__GNUC__) || defined(__clang__)
#define NSP_RESTRICT __restrict__
#else
#define NSP_RESTRICT
#endif

namespace nsp::core::tiled {

namespace {

/// Hoisted span precondition: the reference kernels re-check every
/// (i, j) at level 2; the span kernels validate the whole rectangle
/// once per call at level >= 1 and then run unchecked over raw rows.
inline void check_tile(const Field2D& f, int ilo, int ihi, int jlo, int jhi) {
  NSP_CHECK(f.cols_valid(ilo, ihi) && f.rows_valid(jlo, jhi),
            "core.kernels_tiled.tile_range");
  (void)f;
  (void)ilo;
  (void)ihi;
  (void)jlo;
  (void)jhi;
}

// V3 arithmetic: stride-1 loop, fresh division per primitive.
void prim_row_v3(const double* NSP_RESTRICT rho, const double* NSP_RESTRICT mx,
                 const double* NSP_RESTRICT mr, const double* NSP_RESTRICT e,
                 double* NSP_RESTRICT wu, double* NSP_RESTRICT wv,
                 double* NSP_RESTRICT wt, double* NSP_RESTRICT wp, int ibegin,
                 int iend, double gm1, double rgas_inv) {
  for (int i = ibegin; i < iend; ++i) {
    wu[i] = mx[i] / rho[i];
    wv[i] = mr[i] / rho[i];
    const double ke = 0.5 * (mx[i] * mx[i] + mr[i] * mr[i]) / rho[i];
    wp[i] = gm1 * (e[i] - ke);
    wt[i] = wp[i] / rho[i] * rgas_inv;
  }
}

// V4/V5: reciprocal multiply, fused single pass.
void prim_row_v45(const double* NSP_RESTRICT rho, const double* NSP_RESTRICT mx,
                  const double* NSP_RESTRICT mr, const double* NSP_RESTRICT e,
                  double* NSP_RESTRICT wu, double* NSP_RESTRICT wv,
                  double* NSP_RESTRICT wt, double* NSP_RESTRICT wp, int ibegin,
                  int iend, double gm1, double rgas_inv) {
  for (int i = ibegin; i < iend; ++i) {
    const double rinv = 1.0 / rho[i];
    const double u = mx[i] * rinv;
    const double v = mr[i] * rinv;
    const double p = gm1 * (e[i] - 0.5 * (mx[i] * u + mr[i] * v));
    wu[i] = u;
    wv[i] = v;
    wp[i] = p;
    wt[i] = p * rinv * rgas_inv;
  }
}

}  // namespace

void compute_primitives(const Gas& gas, const StateField& q,
                        PrimitiveField& w, Range irange, int jlo, int jhi,
                        KernelVariant variant, FlopCounter* fc) {
  if (variant == KernelVariant::V1 || variant == KernelVariant::V2) {
    core::compute_primitives(gas, q, w, irange, jlo, jhi, variant, fc);
    return;
  }
  const double gm1 = gas.gamma - 1.0;
  const double rgas_inv = 1.0 / gas.gas_constant();
  const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
  check_tile(q.rho, irange.begin, irange.end, jlo, jhi);
  check_tile(w.u, irange.begin, irange.end, jlo, jhi);

  auto* row = (variant == KernelVariant::V3) ? &prim_row_v3 : &prim_row_v45;
  for (int j = jlo; j < jhi; ++j) {
    row(q.rho.row_span(j), q.mx.row_span(j), q.mr.row_span(j), q.e.row_span(j),
        w.u.row_span(j), w.v.row_span(j), w.t.row_span(j), w.p.row_span(j),
        irange.begin, irange.end, gm1, rgas_inv);
  }
  if (fc) {
    if (variant == KernelVariant::V3) {
      fc->add(8.0 * pts, 4.0 * pts);
    } else {
      fc->add(10.0 * pts, 1.0 * pts);
    }
  }
}

namespace {

/// One stress row over [ibegin, iend) with central x-derivatives: the
/// vectorizable core of compute_stresses. `kSutherland` hoists the
/// temperature-dependent-viscosity branch; `kForX` / `kForR` select
/// which components to compute (each output has an independent
/// expression tree, so skipping some cannot change the others).
template <bool kSutherland, bool kForX, bool kForR>
void stress_row_central(
    const double* NSP_RESTRICT u0, const double* NSP_RESTRICT um,
    const double* NSP_RESTRICT up, const double* NSP_RESTRICT v0,
    const double* NSP_RESTRICT vm, const double* NSP_RESTRICT vp,
    const double* NSP_RESTRICT t0, const double* NSP_RESTRICT tm,
    const double* NSP_RESTRICT tp, double* NSP_RESTRICT txx,
    double* NSP_RESTRICT trr, double* NSP_RESTRICT ttt,
    double* NSP_RESTRICT txr, double* NSP_RESTRICT qx,
    double* NSP_RESTRICT qr, int ibegin, int iend, const Gas& gas,
    double mu_const, double k_const, double k_over_mu, double ddx, double ddr,
    double rinv) {
  for (int i = ibegin; i < iend; ++i) {
    const double ux = (u0[i + 1] - u0[i - 1]) * ddx;
    const double vx = (v0[i + 1] - v0[i - 1]) * ddx;
    const double ur = (up[i] - um[i]) * ddr;
    const double vr = (vp[i] - vm[i]) * ddr;
    const double vor = v0[i] * rinv;
    const double dil = ux + vr + vor;
    const double mu = kSutherland ? gas.viscosity_at(t0[i]) : mu_const;
    const double k = kSutherland ? mu * k_over_mu : k_const;
    if (kForX) {
      const double tx = (t0[i + 1] - t0[i - 1]) * ddx;
      txx[i] = mu * (2.0 * ux - (2.0 / 3.0) * dil);
      qx[i] = -k * tx;
    }
    if (kForR) {
      const double tr = (tp[i] - tm[i]) * ddr;
      trr[i] = mu * (2.0 * vr - (2.0 / 3.0) * dil);
      ttt[i] = mu * (2.0 * vor - (2.0 / 3.0) * dil);
      qr[i] = -k * tr;
    }
    txr[i] = mu * (ur + vx);
  }
}

template <bool kSutherland, bool kForX, bool kForR>
void compute_stresses_impl(const Gas& gas, const Grid& grid,
                           const PrimitiveField& w, StressField& s,
                           Range irange, int jlo, int jhi, int ilo_avail,
                           int ihi_avail) {
  const double mu_const = gas.mu;
  const double k_const = gas.conductivity();
  const double k_over_mu = gas.cp() / gas.prandtl;
  const double ddx = 1.0 / (2.0 * grid.dx());
  const double ddr = 1.0 / (2.0 * grid.dr());

  // Columns whose x-derivative is one-sided (only at physical inflow/
  // outflow edges): peel them off the central loop. The reference gives
  // the low one-sided form precedence, mirrored here by the clamps.
  const int c_lo = std::max(irange.begin, ilo_avail + 1);
  const int c_hi = std::max(c_lo, std::min(irange.end, ihi_avail - 1));
  const auto edge_point = [&](int i, int j, double rinv) {
    const auto dx_of = [&](const Field2D& f) {
      if (i - 1 >= ilo_avail && i + 1 < ihi_avail) {
        return (f(i + 1, j) - f(i - 1, j)) * ddx;
      }
      if (i - 1 < ilo_avail) {
        return (-3.0 * f(i, j) + 4.0 * f(i + 1, j) - f(i + 2, j)) * ddx;
      }
      return (3.0 * f(i, j) - 4.0 * f(i - 1, j) + f(i - 2, j)) * ddx;
    };
    const double ux = dx_of(w.u);
    const double vx = dx_of(w.v);
    const double ur = (w.u(i, j + 1) - w.u(i, j - 1)) * ddr;
    const double vr = (w.v(i, j + 1) - w.v(i, j - 1)) * ddr;
    const double vor = w.v(i, j) * rinv;
    const double dil = ux + vr + vor;
    const double mu = kSutherland ? gas.viscosity_at(w.t(i, j)) : mu_const;
    const double k = kSutherland ? mu * k_over_mu : k_const;
    if (kForX) {
      const double tx = dx_of(w.t);
      s.txx(i, j) = mu * (2.0 * ux - (2.0 / 3.0) * dil);
      s.qx(i, j) = -k * tx;
    }
    if (kForR) {
      const double tr = (w.t(i, j + 1) - w.t(i, j - 1)) * ddr;
      s.trr(i, j) = mu * (2.0 * vr - (2.0 / 3.0) * dil);
      s.ttt(i, j) = mu * (2.0 * vor - (2.0 / 3.0) * dil);
      s.qr(i, j) = -k * tr;
    }
    s.txr(i, j) = mu * (ur + vx);
  };

  for (int j = jlo; j < jhi; ++j) {
    const double rinv = 1.0 / grid.r(j);
    for (int i = irange.begin; i < c_lo; ++i) edge_point(i, j, rinv);
    stress_row_central<kSutherland, kForX, kForR>(
        w.u.row_span(j), w.u.row_span(j - 1), w.u.row_span(j + 1),
        w.v.row_span(j), w.v.row_span(j - 1), w.v.row_span(j + 1),
        w.t.row_span(j), w.t.row_span(j - 1), w.t.row_span(j + 1),
        s.txx.row_span(j), s.trr.row_span(j), s.ttt.row_span(j),
        s.txr.row_span(j), s.qx.row_span(j), s.qr.row_span(j), c_lo, c_hi,
        gas, mu_const, k_const, k_over_mu, ddx, ddr, rinv);
    for (int i = c_hi; i < irange.end; ++i) edge_point(i, j, rinv);
  }
}

}  // namespace

void compute_stresses_rows(StressOutputs which, const Gas& gas,
                           const Grid& grid, const PrimitiveField& w,
                           StressField& s, Range irange, int jlo, int jhi,
                           int ilo_avail, int ihi_avail, FlopCounter* fc) {
  check_tile(w.u, irange.begin - 1, irange.end + 1, jlo - 1, jhi + 1);
  check_tile(s.txx, irange.begin, irange.end, jlo, jhi);
  const auto run = [&](auto sutherland) {
    constexpr bool kS = decltype(sutherland)::value;
    switch (which) {
      case StressOutputs::All:
        compute_stresses_impl<kS, true, true>(gas, grid, w, s, irange, jlo,
                                              jhi, ilo_avail, ihi_avail);
        break;
      case StressOutputs::FluxX:
        compute_stresses_impl<kS, true, false>(gas, grid, w, s, irange, jlo,
                                               jhi, ilo_avail, ihi_avail);
        break;
      case StressOutputs::FluxR:
        compute_stresses_impl<kS, false, true>(gas, grid, w, s, irange, jlo,
                                               jhi, ilo_avail, ihi_avail);
        break;
    }
  };
  if (gas.sutherland) {
    run(std::true_type{});
  } else {
    run(std::false_type{});
  }
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add(36.0 * pts, 1.0 * pts);
  }
}

void compute_stresses_for(StressOutputs which, const Gas& gas,
                          const Grid& grid, const PrimitiveField& w,
                          StressField& s, Range irange, int ilo_avail,
                          int ihi_avail, FlopCounter* fc) {
  compute_stresses_rows(which, gas, grid, w, s, irange, 0, w.u.nj(),
                        ilo_avail, ihi_avail, fc);
}

void compute_stresses(const Gas& gas, const Grid& grid,
                      const PrimitiveField& w, StressField& s, Range irange,
                      int ilo_avail, int ihi_avail, FlopCounter* fc) {
  compute_stresses_for(StressOutputs::All, gas, grid, w, s, irange, ilo_avail,
                       ihi_avail, fc);
}

namespace {

template <bool kViscous>
void flux_x_row(const double* NSP_RESTRICT u, const double* NSP_RESTRICT v,
                const double* NSP_RESTRICT p, const double* NSP_RESTRICT rho,
                const double* NSP_RESTRICT mx, const double* NSP_RESTRICT e,
                const double* NSP_RESTRICT txx, const double* NSP_RESTRICT txr,
                const double* NSP_RESTRICT qx, double* NSP_RESTRICT f0,
                double* NSP_RESTRICT f1, double* NSP_RESTRICT f2,
                double* NSP_RESTRICT f3, int ibegin, int iend) {
  for (int i = ibegin; i < iend; ++i) {
    const double rhou = mx[i];
    const double uu = u[i] * u[i];
    f0[i] = rhou;
    double fmx = rho[i] * uu + p[i];
    double fmr = rhou * v[i];
    double fe = (e[i] + p[i]) * u[i];
    if (kViscous) {
      fmx -= txx[i];
      fmr -= txr[i];
      fe += -u[i] * txx[i] - v[i] * txr[i] + qx[i];
    }
    f1[i] = fmx;
    f2[i] = fmr;
    f3[i] = fe;
  }
}

template <bool kViscous>
void flux_r_row(const double* NSP_RESTRICT u, const double* NSP_RESTRICT v,
                const double* NSP_RESTRICT p, const double* NSP_RESTRICT rho,
                const double* NSP_RESTRICT mr, const double* NSP_RESTRICT e,
                const double* NSP_RESTRICT trr, const double* NSP_RESTRICT txr,
                const double* NSP_RESTRICT qr, double* NSP_RESTRICT g0,
                double* NSP_RESTRICT g1, double* NSP_RESTRICT g2,
                double* NSP_RESTRICT g3, int ibegin, int iend, double r) {
  for (int i = ibegin; i < iend; ++i) {
    const double rhov = mr[i];
    const double vv = v[i] * v[i];
    double a0 = rhov;
    double a1 = rhov * u[i];
    double a2 = rho[i] * vv + p[i];
    double a3 = (e[i] + p[i]) * v[i];
    if (kViscous) {
      a1 -= txr[i];
      a2 -= trr[i];
      a3 += -u[i] * txr[i] - v[i] * trr[i] + qr[i];
    }
    g0[i] = r * a0;
    g1[i] = r * a1;
    g2[i] = r * a2;
    g3[i] = r * a3;
  }
}

}  // namespace

void compute_flux_x(const Gas& gas, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& f, Range irange,
                    KernelVariant variant, FlopCounter* fc) {
  if (variant == KernelVariant::V1 || variant == KernelVariant::V2) {
    core::compute_flux_x(gas, q, w, s, viscous, f, irange, variant, fc);
    return;
  }
  (void)gas;  // pressure arrives precomputed in w
  const int nj = q.rho.nj();
  check_tile(q.rho, irange.begin, irange.end, 0, nj);
  check_tile(f.rho, irange.begin, irange.end, 0, nj);
  auto* row = viscous ? &flux_x_row<true> : &flux_x_row<false>;
  for (int j = 0; j < nj; ++j) {
    row(w.u.row_span(j), w.v.row_span(j), w.p.row_span(j), q.rho.row_span(j),
        q.mx.row_span(j), q.e.row_span(j), s.txx.row_span(j),
        s.txr.row_span(j), s.qx.row_span(j), f.rho.row_span(j),
        f.mx.row_span(j), f.mr.row_span(j), f.e.row_span(j), irange.begin,
        irange.end);
  }
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * nj;
    fc->add((viscous ? 14.0 : 7.0) * pts, 0, 0, 0);
  }
}

void compute_flux_r(const Gas& gas, const Grid& grid, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& gt, Range irange, int jlo,
                    int jhi, KernelVariant variant, FlopCounter* fc) {
  if (variant == KernelVariant::V1 || variant == KernelVariant::V2) {
    core::compute_flux_r(gas, grid, q, w, s, viscous, gt, irange, jlo, jhi,
                         variant, fc);
    return;
  }
  (void)gas;
  check_tile(q.rho, irange.begin, irange.end, jlo, jhi);
  check_tile(gt.rho, irange.begin, irange.end, jlo, jhi);
  auto* row = viscous ? &flux_r_row<true> : &flux_r_row<false>;
  for (int j = jlo; j < jhi; ++j) {
    row(w.u.row_span(j), w.v.row_span(j), w.p.row_span(j), q.rho.row_span(j),
        q.mr.row_span(j), q.e.row_span(j), s.trr.row_span(j),
        s.txr.row_span(j), s.qr.row_span(j), gt.rho.row_span(j),
        gt.mx.row_span(j), gt.mr.row_span(j), gt.e.row_span(j), irange.begin,
        irange.end, grid.r(j));
  }
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add((viscous ? 18.0 : 11.0) * pts, 0, 0, 0);
  }
}

namespace {

void pred_x_row_fwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT fa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = qa[i] - lambda * (8.0 * fa[i + 1] - 7.0 * fa[i] - fa[i + 2]);
  }
}

void pred_x_row_bwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT fa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = qa[i] - lambda * (7.0 * fa[i] - 8.0 * fa[i - 1] + fa[i - 2]);
  }
}

void corr_x_row_fwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT qpa,
                    const double* NSP_RESTRICT fpa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = 0.5 * (qa[i] + qpa[i] -
                    lambda * (8.0 * fpa[i + 1] - 7.0 * fpa[i] - fpa[i + 2]));
  }
}

void corr_x_row_bwd(const double* NSP_RESTRICT qa,
                    const double* NSP_RESTRICT qpa,
                    const double* NSP_RESTRICT fpa, double* NSP_RESTRICT out,
                    int ibegin, int iend, double lambda) {
  for (int i = ibegin; i < iend; ++i) {
    out[i] = 0.5 * (qa[i] + qpa[i] -
                    lambda * (7.0 * fpa[i] - 8.0 * fpa[i - 1] + fpa[i - 2]));
  }
}

}  // namespace

void predictor_x(const StateField& q, const StateField& f, StateField& qp,
                 double lambda, SweepVariant v, Range irange, FlopCounter* fc) {
  const int nj = q.rho.nj();
  check_tile(q.rho, irange.begin, irange.end, 0, nj);
  check_tile(f.rho, irange.begin - kGhost, irange.end + kGhost, 0, nj);
  const auto qc = q.components();
  const auto fcmp = f.components();
  const auto qpc = qp.components();
  auto* row = (v == SweepVariant::L1) ? &pred_x_row_fwd : &pred_x_row_bwd;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      row(qc[c]->row_span(j), fcmp[c]->row_span(j), qpc[c]->row_span(j),
          irange.begin, irange.end, lambda);
    }
  }
  if (fc) {
    fc->add(6.0 * StateField::kComponents *
            static_cast<long>(irange.end - irange.begin) * nj);
  }
}

void corrector_x(const StateField& q, const StateField& qp,
                 const StateField& fp, StateField& qn1, double lambda,
                 SweepVariant v, Range irange, FlopCounter* fc) {
  const int nj = q.rho.nj();
  check_tile(q.rho, irange.begin, irange.end, 0, nj);
  check_tile(fp.rho, irange.begin - kGhost, irange.end + kGhost, 0, nj);
  const auto qc = q.components();
  const auto qpc = qp.components();
  const auto fpc = fp.components();
  const auto outc = qn1.components();
  // The corrector's one-sided difference runs opposite the predictor's.
  auto* row = (v == SweepVariant::L1) ? &corr_x_row_bwd : &corr_x_row_fwd;
  for (int c = 0; c < StateField::kComponents; ++c) {
    for (int j = 0; j < nj; ++j) {
      row(qc[c]->row_span(j), qpc[c]->row_span(j), fpc[c]->row_span(j),
          outc[c]->row_span(j), irange.begin, irange.end, lambda);
    }
  }
  if (fc) {
    fc->add(8.0 * StateField::kComponents *
            static_cast<long>(irange.end - irange.begin) * nj);
  }
}

namespace {

/// One radial-update row for one component. `kCorrector` selects the
/// averaging form, `kForward` the one-sided difference direction,
/// `kSource` whether this is the radial-momentum component (the only
/// one with a geometric source term), `kViscous` the source's stress
/// term. `ps` / `ts` are only read when kSource.
template <bool kCorrector, bool kForward, bool kViscous, bool kSource>
void radial_row(const double* NSP_RESTRICT q0, const double* NSP_RESTRICT qp0,
                const double* NSP_RESTRICT g0, const double* NSP_RESTRICT ga,
                const double* NSP_RESTRICT gb, const double* NSP_RESTRICT ps,
                const double* NSP_RESTRICT ts, double* NSP_RESTRICT o,
                int ibegin, int iend, double dt_r, double inv6dr) {
  for (int i = ibegin; i < iend; ++i) {
    const double diff = kForward ? 8.0 * ga[i] - 7.0 * g0[i] - gb[i]
                                 : 7.0 * g0[i] - 8.0 * ga[i] + gb[i];
    const double src =
        kSource ? ps[i] - (kViscous ? ts[i] : 0.0) : 0.0;
    if (kCorrector) {
      o[i] = 0.5 * (q0[i] + qp0[i] + dt_r * (src - diff * inv6dr));
    } else {
      o[i] = q0[i] + dt_r * (src - diff * inv6dr);
    }
  }
}

/// Shared body of the radial predictor/corrector: the reference loops
/// j -> i -> c through operator[]'s branchy switch; here the component
/// loop is unrolled over the component-pointer array with one
/// vectorized row helper per component (component 2 carries the
/// geometric source).
template <bool kCorrector, bool kForward, bool kViscous>
void radial_update_rows(const Grid& grid, const StateField& q,
                        const StateField& qp, const StateField& gt,
                        const Field2D& p, const Field2D& ttt, StateField& out,
                        double dt, Range irange, int jlo, int jhi) {
  const double inv6dr = 1.0 / (6.0 * grid.dr());
  const auto qc = q.components();
  const auto qpc = qp.components();
  const auto gc = gt.components();
  const auto oc = out.components();
  for (int j = jlo; j < jhi; ++j) {
    const double dt_r = dt / grid.r(j);
    const double* ps = p.row_span(j);
    const double* ts = ttt.row_span(j);
    // Difference rows: fwd needs j+1, j+2; bwd needs j-1, j-2.
    const int ja = kForward ? j + 1 : j - 1;
    const int jb = kForward ? j + 2 : j - 2;
    for (int c = 0; c < StateField::kComponents; ++c) {
      auto* row = (c == 2) ? &radial_row<kCorrector, kForward, kViscous, true>
                           : &radial_row<kCorrector, kForward, kViscous, false>;
      row(qc[c]->row_span(j), qpc[c]->row_span(j), gc[c]->row_span(j),
          gc[c]->row_span(ja), gc[c]->row_span(jb), ps, ts,
          oc[c]->row_span(j), irange.begin, irange.end, dt_r, inv6dr);
    }
  }
}

template <bool kCorrector>
void radial_update(const Grid& grid, const StateField& q, const StateField& qp,
                   const StateField& gt, const Field2D& p, const Field2D& ttt,
                   bool viscous, StateField& out, double dt, bool forward,
                   Range irange, int jlo, int jhi) {
  if (forward) {
    if (viscous) {
      radial_update_rows<kCorrector, true, true>(grid, q, qp, gt, p, ttt, out,
                                                 dt, irange, jlo, jhi);
    } else {
      radial_update_rows<kCorrector, true, false>(grid, q, qp, gt, p, ttt, out,
                                                  dt, irange, jlo, jhi);
    }
  } else {
    if (viscous) {
      radial_update_rows<kCorrector, false, true>(grid, q, qp, gt, p, ttt, out,
                                                  dt, irange, jlo, jhi);
    } else {
      radial_update_rows<kCorrector, false, false>(grid, q, qp, gt, p, ttt,
                                                   out, dt, irange, jlo, jhi);
    }
  }
}

}  // namespace

void predictor_r_rows(const Grid& grid, const StateField& q,
                      const StateField& gt, const Field2D& p,
                      const Field2D& ttt, bool viscous, StateField& qp,
                      double dt, SweepVariant v, Range irange, int jlo,
                      int jhi, FlopCounter* fc) {
  check_tile(q.rho, irange.begin, irange.end, jlo, jhi);
  // The one-sided difference at row j reaches rows j +- 2.
  check_tile(gt.rho, irange.begin, irange.end, jlo - kGhost, jhi + kGhost);
  // The predictor ignores its qp-average slot; pass q twice.
  radial_update<false>(grid, q, q, gt, p, ttt, viscous, qp, dt,
                       v == SweepVariant::L1, irange, jlo, jhi);
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add(30.0 * pts, 1.0 * pts);
  }
}

void corrector_r_rows(const Grid& grid, const StateField& q,
                      const StateField& qp, const StateField& gtp,
                      const Field2D& pp, const Field2D& tttp, bool viscous,
                      StateField& qn1, double dt, SweepVariant v, Range irange,
                      int jlo, int jhi, FlopCounter* fc) {
  check_tile(q.rho, irange.begin, irange.end, jlo, jhi);
  check_tile(gtp.rho, irange.begin, irange.end, jlo - kGhost, jhi + kGhost);
  radial_update<true>(grid, q, qp, gtp, pp, tttp, viscous, qn1, dt,
                      v != SweepVariant::L1, irange, jlo, jhi);
  if (fc) {
    const long pts = static_cast<long>(irange.end - irange.begin) * (jhi - jlo);
    fc->add(34.0 * pts, 1.0 * pts);
  }
}

void predictor_r(const Grid& grid, const StateField& q, const StateField& gt,
                 const Field2D& p, const Field2D& ttt, bool viscous,
                 StateField& qp, double dt, SweepVariant v, Range irange,
                 FlopCounter* fc) {
  predictor_r_rows(grid, q, gt, p, ttt, viscous, qp, dt, v, irange, 0,
                   q.rho.nj(), fc);
}

void corrector_r(const Grid& grid, const StateField& q, const StateField& qp,
                 const StateField& gtp, const Field2D& pp, const Field2D& tttp,
                 bool viscous, StateField& qn1, double dt, SweepVariant v,
                 Range irange, FlopCounter* fc) {
  corrector_r_rows(grid, q, qp, gtp, pp, tttp, viscous, qn1, dt, v, irange, 0,
                   q.rho.nj(), fc);
}

}  // namespace nsp::core::tiled

namespace nsp::core {

KernelSet select_kernels(bool use_tiled) {
  if (use_tiled) {
    return {&tiled::compute_primitives, &tiled::compute_stresses,
            &tiled::compute_flux_x,     &tiled::compute_flux_r,
            &tiled::predictor_x,        &tiled::corrector_x,
            &tiled::predictor_r,        &tiled::corrector_r,
            &tiled::predictor_r_rows,   &tiled::corrector_r_rows};
  }
  return {&compute_primitives,      &compute_stresses, &compute_flux_x,
          &compute_flux_r,          &predictor_x,      &corrector_x,
          &predictor_r,             &corrector_r,
          &tiled::predictor_r_rows, &tiled::corrector_r_rows};
}

KernelSet select_kernels(bool use_tiled, Scheme scheme) {
  KernelSet ks = select_kernels(use_tiled);
  if (scheme == Scheme::Mac22) {
    ks.pred_x = &tiled::predictor_x_s<Scheme::Mac22>;
    ks.corr_x = &tiled::corrector_x_s<Scheme::Mac22>;
    ks.pred_r = &tiled::predictor_r_s<Scheme::Mac22>;
    ks.corr_r = &tiled::corrector_r_s<Scheme::Mac22>;
    ks.pred_r_rows = &tiled::predictor_r_rows_s<Scheme::Mac22>;
    ks.corr_r_rows = &tiled::corrector_r_rows_s<Scheme::Mac22>;
  }
  return ks;
}

}  // namespace nsp::core
