#include "core/jet.hpp"

#include <cmath>

namespace nsp::core {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double JetConfig::shape(double r) const {
  // Michalke profile: g = 1/2 [1 + tanh((1/r - r) / (4 theta))].
  // As r -> 0 the argument diverges to +inf, so g -> 1 smoothly.
  if (r <= 1e-12) return 1.0;
  return 0.5 * (1.0 + std::tanh((1.0 / r - r) / (4.0 * theta)));
}

double JetConfig::mean_u(double r) const {
  return u_coflow + (mach_c - u_coflow) * shape(r);
}

double JetConfig::mean_t(double r) const {
  const double g = shape(r);
  const double t_inf = t_ratio;  // T_c = 1
  // Crocco-Busemann friction heating scales with the velocity difference
  // across the shear layer (the paper's M_c^2 form assumes a quiescent
  // free stream); velocities are already in centerline sound-speed units.
  const double du = mach_c - u_coflow;
  return t_inf + (1.0 - t_inf) * g +
         0.5 * (gas.gamma - 1.0) * du * du * (1.0 - g) * g;
}

double JetConfig::mean_rho(double r) const {
  return mean_p() / (gas.gas_constant() * mean_t(r));
}

double JetConfig::omega() const {
  // f = St * U_c / D with D = 2 (two jet radii).
  return 2.0 * kPi * strouhal * mach_c / 2.0;
}

EigenMode JetConfig::analytic_mode() const {
  // Shear-layer mode: perturbations peak where dU/dr is largest (r = 1)
  // with a radial width set by the momentum thickness. The axial
  // velocity and pressure are in phase; the radial velocity lags by 90
  // degrees (continuity), a structure shared by the true Rayleigh-mode
  // solutions this stands in for.
  const double width = 4.0 * theta;
  const double e = eps;
  const double rho0 = mean_rho(1.0);
  const double u0 = mach_c;
  const Gas g = gas;
  const double t1 = mean_t(1.0);
  return EigenMode{[=](double r, double phi) -> Primitive {
    const double a = std::exp(-((r - 1.0) * (r - 1.0)) / (2.0 * width * width));
    Primitive w;
    w.u = e * a * std::cos(phi);
    w.v = 0.5 * e * a * std::sin(phi);
    w.p = e * a * rho0 * u0 * std::cos(phi);
    const double c2 = g.gamma * g.gas_constant() * t1;  // c^2 = gamma R T
    w.rho = w.p / c2;
    return w;
  }};
}

EigenMode JetConfig::multi_mode() const {
  // Subharmonic forcing: the same shear-layer mode shape driven at half
  // the Strouhal number and half the level — the classical seeding of
  // vortex pairing. The subharmonic's own phase advances at omega/2, so
  // with the caller handing the fundamental's phi it reads phi/2.
  JetConfig sub = *this;
  sub.strouhal = 0.5 * strouhal;
  sub.eps = 0.5 * eps;
  const EigenMode fund = analytic_mode();
  const EigenMode half = sub.analytic_mode();
  return EigenMode{[fund, half](double r, double phi) -> Primitive {
    const Primitive a = fund.perturbation(r, phi);
    const Primitive b = half.perturbation(r, 0.5 * phi);
    return Primitive{a.rho + b.rho, a.u + b.u, a.v + b.v, a.p + b.p};
  }};
}

EigenMode JetConfig::quiet_mode() {
  return EigenMode{[](double, double) -> Primitive {
    return Primitive{0.0, 0.0, 0.0, 0.0};
  }};
}

EigenMode JetConfig::excitation_mode() const {
  switch (excitation) {
    case Excitation::MultiMode:
      return multi_mode();
    case Excitation::Quiet:
      return quiet_mode();
    case Excitation::Mode1:
      break;
  }
  return analytic_mode();
}

}  // namespace nsp::core
