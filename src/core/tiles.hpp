// Cache-blocked tile sizing for the MacCormack sweeps.
//
// A sweep stage streams a fixed set of double arrays (conserved state,
// primitives, stresses, fluxes, stage output) through the cache. The
// fused tiled sweeps in core::Solver process the axial extent in tiles
// narrow enough that one tile's rows of every streamed array fit a
// target cache level, so the stage pipeline (primitives -> stresses ->
// flux -> update) reuses them before eviction instead of re-streaming
// the whole grid per kernel.
//
// The chooser takes plain cache parameters so nsp::core stays below
// nsp::arch in the layering; callers with an arch::CacheGeometry (the
// platform zoo, the benches) pass geom.size_bytes / geom.line_bytes.
// Tile choice NEVER affects results — each grid point's value is a pure
// function of its stencil inputs, so any partition of the index space
// computes identical bits (docs/NUMERICS.md, "Tiling and bit-exactness").
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace nsp::core {

/// Stencil reach of the 2-4 MacCormack stage pipeline: a fused tile
/// computing columns [lo, hi) reads at most [lo - kTilePad, hi + kTilePad)
/// of its inputs (predictor/corrector difference reach 2, plus 1 for the
/// central stress derivatives).
inline constexpr int kTilePad = 3;

/// Default working-set parameters of one fused sweep stage at the
/// paper's grid sizes: ~22 double arrays are live per stage (4 q, 4 w,
/// 6 stresses, 4 flux, 4 stage output).
inline constexpr int kSweepArrays = 22;

/// Default cache budget blocking aims at: the LAST-level cache, not L2.
/// Blocking a working set that already fits in some cache level buys no
/// locality but still pays the padded-overlap recompute at every tile
/// seam — measured on the 502 x 102 paper grid (9 MB working set, large
/// L3) narrow tiles are strictly slower, monotonically approaching the
/// un-blocked time as the width grows (docs/PERF.md records the sweep).
inline constexpr std::size_t kDefaultCacheBytes = 32ull * 1024 * 1024;

/// Picks an axial tile width for an ni x nj sweep so that one tile's
/// share of `arrays` double arrays (nj rows each, padded by the stencil
/// reach) fits in `cache_bytes`. If the WHOLE extent fits the budget,
/// returns ni (no blocking — see kDefaultCacheBytes). Otherwise returns
/// a width in [2 * kTilePad + 2, ni]: tiles narrower than the stencil
/// reach would spend more work on the padded overlap than on the tile
/// itself. `cache_bytes` = 0 also disables blocking.
inline int choose_tile_width(int ni, int nj, int arrays = kSweepArrays,
                             std::size_t cache_bytes = kDefaultCacheBytes) {
  if (ni <= 0) return 1;
  if (cache_bytes == 0) return ni;
  const std::size_t rows = static_cast<std::size_t>(std::max(1, nj));
  const std::size_t per_col = rows * static_cast<std::size_t>(std::max(1, arrays)) *
                              sizeof(double);
  if (per_col * static_cast<std::size_t>(ni) <= cache_bytes) return ni;
  std::size_t w = cache_bytes / per_col;
  // Leave headroom for the padded overlap columns each neighbour tile
  // re-reads, then clamp to the useful range.
  w = (w > 2 * kTilePad) ? w - 2 * kTilePad : 0;
  const std::size_t min_w = static_cast<std::size_t>(2 * kTilePad + 2);
  w = std::max(w, min_w);
  return static_cast<int>(std::min<std::size_t>(w, static_cast<std::size_t>(ni)));
}

/// Best-effort probe of the largest data/unified cache one core sees,
/// reading `cache_dir` laid out like Linux's
/// /sys/devices/system/cpu/cpu0/cache (index*/{level,type,size}, sizes
/// like "512K" / "32M"). Instruction-only caches, entries without a
/// shared_cpu_list map, and malformed sizes ("8MB") are skipped.
/// Returns 0 when the directory is missing or nothing parses — the
/// caller decides the fallback. Pure function of the directory
/// contents (tiles.cpp).
std::size_t detect_cache_bytes(const std::string& cache_dir);

/// The LLC budget Solver::tile_width blocks for: detect_cache_bytes of
/// the real sysfs tree, or kDefaultCacheBytes when the probe finds
/// nothing (non-Linux, masked sysfs). Probed once per process and
/// cached; like every tile-width input it can never affect computed
/// results, only locality.
std::size_t host_cache_bytes();

}  // namespace nsp::core
