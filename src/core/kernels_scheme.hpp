// Scheme-templated MacCormack update kernels.
//
// The handwritten 2-4 kernels in kernels_tiled.cpp stay the production
// default: they are the measured, golden-hashed hot path and this file
// never replaces them. What lives here is the same four update kernels
// (axial/radial predictor/corrector, span-loop bodies, identical
// signatures) as templates over a one-sided difference policy,
// explicitly instantiated for both schemes:
//
//   * Scheme::Mac24 — the paper's 2-4 (Gottlieb-Turkel) difference.
//     This instantiation exists to pin the template layer: the model
//     tests assert it is bit-identical to the handwritten kernels, so
//     a future scheme can trust the shared body.
//   * Scheme::Mac22 — the classical 2-2 MacCormack difference. This is
//     the production path for the 2-2 scheme, selected through
//     select_kernels(use_tiled, Scheme::Mac22); it exists only in span
//     form (there is no pessimized reference twin — the V1/V2 museum
//     ladder is a 2-4 story).
//
// Both schemes share the caller's lambda = dt/(6 dx) and radial
// 1/(6 dr) conventions: the 2-2 difference is pre-scaled by 6, so
// 6 (F_{i+1} - F_i) * dt/(6 dx) == dt/dx (F_{i+1} - F_i) and no call
// site changes per scheme.
#pragma once

#include "core/kernels_tiled.hpp"

namespace nsp::core::tiled {

/// See core::predictor_x; the one-sided difference follows S.
template <Scheme S>
void predictor_x_s(const StateField& q, const StateField& f, StateField& qp,
                   double lambda, SweepVariant v, Range irange,
                   FlopCounter* fc = nullptr);

/// See core::corrector_x; the one-sided difference follows S.
template <Scheme S>
void corrector_x_s(const StateField& q, const StateField& qp,
                   const StateField& fp, StateField& qn1, double lambda,
                   SweepVariant v, Range irange, FlopCounter* fc = nullptr);

/// See tiled::predictor_r_rows / corrector_r_rows.
template <Scheme S>
void predictor_r_rows_s(const Grid& grid, const StateField& q,
                        const StateField& gt, const Field2D& p,
                        const Field2D& ttt, bool viscous, StateField& qp,
                        double dt, SweepVariant v, Range irange, int jlo,
                        int jhi, FlopCounter* fc = nullptr);
template <Scheme S>
void corrector_r_rows_s(const Grid& grid, const StateField& q,
                        const StateField& qp, const StateField& gtp,
                        const Field2D& pp, const Field2D& tttp, bool viscous,
                        StateField& qn1, double dt, SweepVariant v,
                        Range irange, int jlo, int jhi,
                        FlopCounter* fc = nullptr);

/// See core::predictor_r / corrector_r.
template <Scheme S>
void predictor_r_s(const Grid& grid, const StateField& q, const StateField& gt,
                   const Field2D& p, const Field2D& ttt, bool viscous,
                   StateField& qp, double dt, SweepVariant v, Range irange,
                   FlopCounter* fc = nullptr);
template <Scheme S>
void corrector_r_s(const Grid& grid, const StateField& q, const StateField& qp,
                   const StateField& gtp, const Field2D& pp,
                   const Field2D& tttp, bool viscous, StateField& qn1,
                   double dt, SweepVariant v, Range irange,
                   FlopCounter* fc = nullptr);

// Both instantiations are compiled once in kernels_scheme.cpp.
extern template void predictor_x_s<Scheme::Mac24>(const StateField&,
                                                  const StateField&,
                                                  StateField&, double,
                                                  SweepVariant, Range,
                                                  FlopCounter*);
extern template void predictor_x_s<Scheme::Mac22>(const StateField&,
                                                  const StateField&,
                                                  StateField&, double,
                                                  SweepVariant, Range,
                                                  FlopCounter*);
extern template void corrector_x_s<Scheme::Mac24>(const StateField&,
                                                  const StateField&,
                                                  const StateField&,
                                                  StateField&, double,
                                                  SweepVariant, Range,
                                                  FlopCounter*);
extern template void corrector_x_s<Scheme::Mac22>(const StateField&,
                                                  const StateField&,
                                                  const StateField&,
                                                  StateField&, double,
                                                  SweepVariant, Range,
                                                  FlopCounter*);
extern template void predictor_r_rows_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const Field2D&,
    const Field2D&, bool, StateField&, double, SweepVariant, Range, int, int,
    FlopCounter*);
extern template void predictor_r_rows_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const Field2D&,
    const Field2D&, bool, StateField&, double, SweepVariant, Range, int, int,
    FlopCounter*);
extern template void corrector_r_rows_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, int, int, FlopCounter*);
extern template void corrector_r_rows_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, int, int, FlopCounter*);
extern template void predictor_r_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const Field2D&,
    const Field2D&, bool, StateField&, double, SweepVariant, Range,
    FlopCounter*);
extern template void predictor_r_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const Field2D&,
    const Field2D&, bool, StateField&, double, SweepVariant, Range,
    FlopCounter*);
extern template void corrector_r_s<Scheme::Mac24>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, FlopCounter*);
extern template void corrector_r_s<Scheme::Mac22>(
    const Grid&, const StateField&, const StateField&, const StateField&,
    const Field2D&, const Field2D&, bool, StateField&, double, SweepVariant,
    Range, FlopCounter*);

}  // namespace nsp::core::tiled
