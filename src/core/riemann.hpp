// Exact Riemann solver for the 1-D ideal-gas Euler equations (Toro's
// classic construction): the analytic reference the shock-tube
// validation tests compare the 2-4 MacCormack solver against, and a
// useful standalone utility.
#pragma once

#include "core/gas.hpp"

namespace nsp::core {

/// One side of a Riemann problem (primitive variables).
struct RiemannState {
  double rho = 1.0;
  double u = 0.0;
  double p = 1.0;
};

/// The self-similar solution of a Riemann problem. Query with
/// sample(x/t).
class RiemannSolution {
 public:
  RiemannSolution(const Gas& gas, RiemannState left, RiemannState right);

  /// Star-region pressure and velocity.
  double p_star() const { return p_star_; }
  double u_star() const { return u_star_; }
  bool converged() const { return converged_; }
  int iterations() const { return iterations_; }

  /// True if the left (right) nonlinear wave is a shock.
  bool left_is_shock() const { return p_star_ > left_.p; }
  bool right_is_shock() const { return p_star_ > right_.p; }

  /// Speed of the right shock (only meaningful if right_is_shock()).
  double right_shock_speed() const;
  /// Speed of the left shock (only meaningful if left_is_shock()).
  double left_shock_speed() const;

  /// Solution state along the ray x/t = xi.
  RiemannState sample(double xi) const;

 private:
  double f_side(double p, const RiemannState& s) const;
  double df_side(double p, const RiemannState& s) const;
  double sound_speed(const RiemannState& s) const;

  Gas gas_;
  RiemannState left_, right_;
  double p_star_ = 0;
  double u_star_ = 0;
  bool converged_ = false;
  int iterations_ = 0;
};

}  // namespace nsp::core
