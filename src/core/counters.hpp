// Operation accounting for the solver.
//
// The paper's Tables 1 and 2 are built from floating-point-operation
// totals and message start-up/volume counts. Kernels credit this
// counter in bulk (points * ops-per-point, with the per-point constants
// written next to each loop), so accounting costs nothing per point and
// stays auditable.
#pragma once

#include <cstdint>

namespace nsp::core {

struct FlopCounter {
  double adds_muls = 0;   ///< additions, subtractions, multiplications
  double divides = 0;     ///< divisions and reciprocals
  double sqrts = 0;       ///< square roots
  double pows = 0;        ///< library exponentiations (Version 1 only)

  double total() const { return adds_muls + divides + sqrts + pows; }

  void add(double flops, double div = 0, double sqrt = 0, double pw = 0) {
    adds_muls += flops;
    divides += div;
    sqrts += sqrt;
    pows += pw;
  }

  FlopCounter& operator+=(const FlopCounter& o) {
    adds_muls += o.adds_muls;
    divides += o.divides;
    sqrts += o.sqrts;
    pows += o.pows;
    return *this;
  }

  void reset() { *this = FlopCounter{}; }
};

/// Message accounting for the parallel solver (per rank).
struct CommCounter {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  double bytes_sent = 0;
  double bytes_received = 0;
  /// Wall-clock seconds this rank spent blocked in receives and
  /// barriers — the live counterpart of the replay's per-rank wait
  /// time, and the quantity comm/compute overlap exists to hide.
  double wait_s = 0;

  /// "Start-ups" in the paper's Table 1 sense: sends + receives.
  std::uint64_t startups() const { return sends + recvs; }

  CommCounter& operator+=(const CommCounter& o) {
    sends += o.sends;
    recvs += o.recvs;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    wait_s += o.wait_s;
    return *this;
  }

  void reset() { *this = CommCounter{}; }
};

}  // namespace nsp::core
