// Tuned span-based implementations of the hot MacCormack kernels.
//
// Every function here is a drop-in replacement for its reference
// counterpart in core/kernels.hpp — same signature, same per-point
// arithmetic (bit-for-bit: each output value is computed by the same
// expression tree as the reference, so the golden state-hash tests in
// tests/test_tiling.cpp hold exactly) — but the inner loops iterate raw
// contiguous `double*` row spans (Field2D::row_span) instead of
// per-point operator():
//
//   * index arithmetic is hoisted to one pointer per row, and the
//     level-2 per-point NSP_CHECK_SLOW index scans become one level-1
//     range precondition per kernel call plus one per row_span;
//   * StateField components are walked through the component-pointer
//     array (StateField::components), not operator[]'s branchy switch;
//   * data-independent branches (viscous terms, Sutherland viscosity,
//     one-sided stencils at domain edges) are hoisted out of the inner
//     loop, which lets the compiler vectorize the contiguous runs.
//
// The deliberately pessimized historical variants V1/V2 (radial-hopping
// loop order, library pow) are museum exhibits of the paper's
// optimization ladder: for them these functions forward to the
// reference implementation so the measured V1..V5 ladder keeps its
// meaning. V3 keeps its division-heavy arithmetic but gains the span
// loop; V4/V5 share the reciprocal-multiply body.
#pragma once

#include "core/kernels.hpp"

namespace nsp::core::tiled {

/// See core::compute_primitives. V1/V2 forward to the reference.
void compute_primitives(const Gas& gas, const StateField& q,
                        PrimitiveField& w, Range irange, int jlo, int jhi,
                        KernelVariant variant = KernelVariant::V5,
                        FlopCounter* fc = nullptr);

/// See core::compute_stresses. Edge columns (one-sided x-derivatives)
/// are peeled off the vectorized central loop.
void compute_stresses(const Gas& gas, const Grid& grid,
                      const PrimitiveField& w, StressField& s, Range irange,
                      int ilo_avail, int ihi_avail, FlopCounter* fc = nullptr);

/// Which consumer the stress tensor is being computed for. The axial
/// flux reads only {txx, txr, qx}; the radial flux and source read only
/// {trr, ttt, txr, qr}. Skipping the unread components cannot change any
/// used value (each output has its own independent expression tree), so
/// the fused sweeps ask for just their subset. The unread components
/// keep whatever values the previous stage left behind.
enum class StressOutputs { All, FluxX, FluxR };

/// compute_stresses restricted to the components `which` needs.
void compute_stresses_for(StressOutputs which, const Gas& gas,
                          const Grid& grid, const PrimitiveField& w,
                          StressField& s, Range irange, int ilo_avail,
                          int ihi_avail, FlopCounter* fc = nullptr);

/// Row-range generalization of compute_stresses_for: computes only
/// interior rows [jlo, jhi) of the column range. The 2-D subdomain
/// solver's overlapped schedule (Version 6) computes the rows that need
/// no halo primitives while the halo messages are in flight, then calls
/// again for the boundary rows.
void compute_stresses_rows(StressOutputs which, const Gas& gas,
                           const Grid& grid, const PrimitiveField& w,
                           StressField& s, Range irange, int jlo, int jhi,
                           int ilo_avail, int ihi_avail,
                           FlopCounter* fc = nullptr);

/// See core::compute_flux_x. V1/V2 forward to the reference.
void compute_flux_x(const Gas& gas, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& f, Range irange,
                    KernelVariant variant = KernelVariant::V5,
                    FlopCounter* fc = nullptr);

/// See core::compute_flux_r. V1/V2 forward to the reference.
void compute_flux_r(const Gas& gas, const Grid& grid, const StateField& q,
                    const PrimitiveField& w, const StressField& s,
                    bool viscous, StateField& gt, Range irange, int jlo,
                    int jhi, KernelVariant variant = KernelVariant::V5,
                    FlopCounter* fc = nullptr);

/// See core::predictor_x / corrector_x (variant-independent).
void predictor_x(const StateField& q, const StateField& f, StateField& qp,
                 double lambda, SweepVariant v, Range irange,
                 FlopCounter* fc = nullptr);
void corrector_x(const StateField& q, const StateField& qp,
                 const StateField& fp, StateField& qn1, double lambda,
                 SweepVariant v, Range irange, FlopCounter* fc = nullptr);

/// See core::predictor_r / corrector_r. The component loop is unrolled
/// over the component-pointer array.
void predictor_r(const Grid& grid, const StateField& q, const StateField& gt,
                 const Field2D& p, const Field2D& ttt, bool viscous,
                 StateField& qp, double dt, SweepVariant v, Range irange,
                 FlopCounter* fc = nullptr);
void corrector_r(const Grid& grid, const StateField& q, const StateField& qp,
                 const StateField& gtp, const Field2D& pp, const Field2D& tttp,
                 bool viscous, StateField& qn1, double dt, SweepVariant v,
                 Range irange, FlopCounter* fc = nullptr);

/// Row-range generalizations of predictor_r / corrector_r: update only
/// rows [jlo, jhi). The radial difference at row j reaches rows j +- 2,
/// so the 2-D subdomain solver's overlapped schedule updates the rows
/// whose flux stencil stays local while the halo flux rows are in
/// flight, then finishes the boundary rows.
void predictor_r_rows(const Grid& grid, const StateField& q,
                      const StateField& gt, const Field2D& p,
                      const Field2D& ttt, bool viscous, StateField& qp,
                      double dt, SweepVariant v, Range irange, int jlo,
                      int jhi, FlopCounter* fc = nullptr);
void corrector_r_rows(const Grid& grid, const StateField& q,
                      const StateField& qp, const StateField& gtp,
                      const Field2D& pp, const Field2D& tttp, bool viscous,
                      StateField& qn1, double dt, SweepVariant v, Range irange,
                      int jlo, int jhi, FlopCounter* fc = nullptr);

}  // namespace nsp::core::tiled

namespace nsp::core {

/// The hot-path kernels behind one level of indirection: the reference
/// and tiled implementations share signatures exactly, so the serial
/// and subdomain solvers dispatch through plain function pointers
/// instead of branching per call site.
struct KernelSet {
  decltype(&compute_primitives) primitives;
  decltype(&compute_stresses) stresses;
  decltype(&compute_flux_x) flux_x;
  decltype(&compute_flux_r) flux_r;
  decltype(&predictor_x) pred_x;
  decltype(&corrector_x) corr_x;
  decltype(&predictor_r) pred_r;
  decltype(&corrector_r) corr_r;
  /// Row-range radial updates for the overlapped 2-D schedule. Always
  /// the span implementations (they are bit-identical to the reference
  /// and the reference set has no row-range twin).
  decltype(&tiled::predictor_r_rows) pred_r_rows;
  decltype(&tiled::corrector_r_rows) corr_r_rows;
};

/// The tiled set when `use_tiled` (SolverConfig::tiled), else the
/// reference set. Both compute identical bits for every grid point.
KernelSet select_kernels(bool use_tiled);

/// Scheme-aware selection: Scheme::Mac24 returns select_kernels(
/// use_tiled) unchanged (the handwritten golden-hashed kernels); for
/// Scheme::Mac22 the four update kernels are replaced by the 2-2
/// instantiations from core/kernels_scheme.hpp (span-only — the other
/// stages are scheme-agnostic and keep the use_tiled choice).
KernelSet select_kernels(bool use_tiled, Scheme scheme);

}  // namespace nsp::core
