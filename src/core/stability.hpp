// Linear stability of the compressible jet: the inflow eigenfunctions.
//
// The paper excites the inflow with "the eigenfunctions of the
// linearized equations with the same mean flow profile" (Section 3,
// following Scott et al.). For axisymmetric (n = 0) disturbances
// q'(x, r, t) = Re{ q^(r) exp(i(alpha x - omega t)) } of a parallel
// compressible mean flow U(r), rho(r), T(r), the pressure amplitude
// obeys the Pridmore-Brown (compressible Rayleigh) equation
//
//   p^'' + [ 1/r - rho'/rho + 2 alpha U' / (omega - alpha U) ] p^'
//        + [ (omega - alpha U)^2 / T - alpha^2 ] p^ = 0
//
// (nondimensionalized as in core/gas.hpp, where c^2 = T), with
// regularity p^'(0) = 0 on the axis and exponential decay
// p^ ~ exp(-lambda r), lambda^2 = alpha^2 - (omega - alpha U_inf)^2/T_inf
// in the free stream. For the spatial problem the frequency omega is
// real (set by the Strouhal number) and the axial wavenumber alpha is
// the complex eigenvalue; Im(alpha) < 0 is an instability growing in x.
//
// The solver integrates the ODE with complex RK4 from the axis outward,
// and drives the far-field mismatch  p^'/p^ + lambda  to zero with a
// secant iteration in alpha. Velocity and density amplitudes follow
// from the linearized momentum and energy equations:
//
//   u^ = [ alpha p^ - i rho U' v^ ] / ( rho (omega - alpha U) )
//   v^ = -i p^' / ( rho (omega - alpha U) )
//   rho^ = p^ / T + rho' v^ / ( i (omega - alpha U) )      (entropy layer)
#pragma once

#include <complex>
#include <vector>

#include "core/jet.hpp"

namespace nsp::core::stability {

using Complex = std::complex<double>;

/// One converged eigensolution of the spatial stability problem.
struct Mode {
  bool converged = false;
  double omega = 0;          ///< real excitation frequency
  Complex alpha;             ///< complex axial wavenumber (eigenvalue)
  std::vector<double> r;     ///< radial grid of the amplitude functions
  std::vector<Complex> p;    ///< pressure amplitude (normalized)
  std::vector<Complex> u;    ///< axial velocity amplitude
  std::vector<Complex> v;    ///< radial velocity amplitude
  std::vector<Complex> rho;  ///< density amplitude
  int iterations = 0;
  double residual = 0;       ///< |far-field mismatch| at convergence

  /// Spatial growth rate -Im(alpha); positive means unstable.
  double growth_rate() const { return -alpha.imag(); }

  /// Phase speed omega / Re(alpha) in centerline sound-speed units.
  double phase_speed() const {
    return alpha.real() != 0 ? omega / alpha.real() : 0;
  }
};

/// Solver options.
struct Options {
  int nr = 400;            ///< radial integration points
  double r_max = 8.0;      ///< outer integration radius (jet radii)
  int max_iterations = 60; ///< secant iterations on alpha
  double tolerance = 1e-8; ///< far-field mismatch tolerance
  Complex alpha_guess{0, 0};  ///< 0 -> use a convected-wave estimate
  /// Azimuthal mode number: 0 = axisymmetric (what the axisymmetric
  /// solver can be excited with), 1 = the helical mode that often
  /// dominates round jets. The n^2/r^2 centrifugal term enters the
  /// Pridmore-Brown equation and the axis condition becomes p ~ r^n.
  int azimuthal_n = 0;
};

/// Solves the spatial eigenvalue problem for the jet's mean profile at
/// the given angular frequency (defaults to the excitation frequency).
Mode solve(const JetConfig& jet, double omega, const Options& opts = {});

/// Evaluates the Pridmore-Brown residual of a candidate (alpha, p)
/// solution at the shooting end: p'/p + lambda (0 when matched).
Complex farfield_mismatch(const JetConfig& jet, double omega, Complex alpha,
                          const Options& opts);

/// Wraps a converged mode as an inflow EigenMode for the solver: the
/// perturbation of (rho, u, v, p) at radius r and phase phi, scaled by
/// the jet's excitation level. Falls back to JetConfig::analytic_mode()
/// when the mode is not converged.
EigenMode to_eigenmode(const Mode& mode, const JetConfig& jet);

}  // namespace nsp::core::stability
