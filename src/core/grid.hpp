// Axisymmetric structured grid.
//
// The paper's domain is 50 jet radii in the axial (x) direction and 5 in
// the radial (r) direction, on a 250 x 100 uniform grid. The first
// radial point is offset half a cell from the axis (r_0 = dr/2), so the
// geometric factor r never vanishes and axis conditions are imposed by
// symmetry ghosts across r = 0.
#pragma once

namespace nsp::core {

struct Grid {
  int ni = 250;      ///< axial points (local extent)
  int nj = 100;      ///< radial points (local extent)
  double x0 = 0.0;   ///< axial origin of the global domain
  double lx = 50.0;  ///< axial extent in jet radii
  double lr = 5.0;   ///< radial extent in jet radii

  // Subdomain support. Coordinates are always computed from GLOBAL
  // indices (local index + offset) and the GLOBAL spacing, so a
  // subdomain grid produces bit-identical x(i)/r(j) to the full grid —
  // which is what makes the domain-decomposed solver exactly match the
  // serial one.
  int i_offset = 0;        ///< global index of local i = 0
  int j_offset = 0;        ///< global index of local j = 0
  double spacing_dx = 0;   ///< explicit spacing (0: derive from lx/ni)
  double spacing_dr = 0;   ///< explicit spacing (0: derive from lr/nj)

  double dx() const { return spacing_dx > 0 ? spacing_dx : lx / ni; }
  double dr() const { return spacing_dr > 0 ? spacing_dr : lr / nj; }

  /// Axial coordinate of (local) point i (cell-centered).
  double x(int i) const { return x0 + (i + i_offset + 0.5) * dx(); }

  /// Radial coordinate of (local) point j; with j_offset = 0, ghost
  /// indices give negative radii mirrored across the axis, which is
  /// exactly what the reflected radial fluxes need.
  double r(int j) const { return (j + j_offset + 0.5) * dr(); }

  /// A subdomain covering local extents [i0, i0+ni_local) x
  /// [j0, j0+nj_local) of this grid, with bit-identical coordinates.
  Grid subgrid(int i0, int ni_local, int j0, int nj_local) const {
    Grid g = *this;
    g.ni = ni_local;
    g.nj = nj_local;
    g.i_offset = i_offset + i0;
    g.j_offset = j_offset + j0;
    g.spacing_dx = dx();
    g.spacing_dr = dr();
    g.lx = dx() * ni_local;
    g.lr = dr() * nj_local;
    return g;
  }

  /// The paper's production grid (250 x 100 over 50 x 5 radii).
  static Grid paper() { return Grid{}; }

  /// A small grid for tests.
  static Grid coarse(int ni = 50, int nj = 20) {
    Grid g;
    g.ni = ni;
    g.nj = nj;
    return g;
  }
};

}  // namespace nsp::core
