#include "fault/detect.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "check/check.hpp"
#include "check/trace.hpp"
#include "arch/network.hpp"
#include "mp/comm.hpp"
#include "sim/simulator.hpp"

namespace nsp::fault {

// --------------------------------------------------------- CrashDetector

CrashDetector::CrashDetector(int nodes, double period_s, int misses)
    : period_s_(period_s), misses_(misses), last_beat_(nodes, 0.0) {
  NSP_CHECK(nodes >= 1 && period_s > 0 && misses >= 1,
            "fault.detect.config");
}

void CrashDetector::beat(int node, double t) {
  auto& last = last_beat_.at(static_cast<std::size_t>(node));
  last = std::max(last, t);
}

bool CrashDetector::suspected(int node, double t) const {
  return t - last_beat_.at(static_cast<std::size_t>(node)) >
         period_s_ * misses_;
}

std::vector<int> CrashDetector::suspects(double t) const {
  std::vector<int> out;
  for (int n = 0; n < static_cast<int>(last_beat_.size()); ++n) {
    if (suspected(n, t)) out.push_back(n);
  }
  return out;
}

// --------------------------------------------------------- HeartbeatRing

HeartbeatRing::HeartbeatRing(sim::Simulator& sim, arch::NetworkModel& net,
                             int nodes, double period_s, int misses,
                             int bytes)
    : sim_(sim),
      net_(net),
      nodes_(nodes),
      period_s_(period_s),
      misses_(misses),
      bytes_(static_cast<std::size_t>(bytes)),
      detector_(nodes, period_s, misses),
      alive_(static_cast<std::size_t>(nodes), true),
      fired_(static_cast<std::size_t>(nodes), false) {
  NSP_CHECK(nodes >= 2 && bytes > 0, "fault.hbring.config");
}

void HeartbeatRing::start() {
  running_ = true;
  const double t0 = sim_.now();
  // The suspicion threshold is a strict >; nudge the check past it.
  const double check_after = period_s_ * misses_ + period_s_ * 1e-6;
  for (int n = 0; n < nodes_; ++n) {
    detector_.beat(n, t0);
    // Initial check covers a node that crashes before its first beat
    // ever arrives (no arrival means no arrival-scheduled check).
    sim_.after(check_after, [this, n] { check(n); });
    sim_.after(period_s_ * n / nodes_, [this, n] { send_beat(n); });
  }
}

void HeartbeatRing::crash(int node) {
  alive_.at(static_cast<std::size_t>(node)) = false;
}

void HeartbeatRing::stop() { running_ = false; }

void HeartbeatRing::send_beat(int node) {
  if (!running_ || !alive_[static_cast<std::size_t>(node)]) return;
  ++beats_;
  net_.transmit(node, (node + 1) % nodes_, bytes_,
                [this, node] { arrived(node); });
  sim_.after(period_s_, [this, node] { send_beat(node); });
}

void HeartbeatRing::arrived(int node) {
  if (!running_) return;
  detector_.beat(node, sim_.now());
  sim_.after(period_s_ * misses_ + period_s_ * 1e-6,
             [this, node] { check(node); });
}

void HeartbeatRing::check(int node) {
  if (!running_ || fired_[static_cast<std::size_t>(node)]) return;
  if (!detector_.suspected(node, sim_.now())) return;
  fired_[static_cast<std::size_t>(node)] = true;
  if (on_suspect_) on_suspect_(node, sim_.now());
}

// -------------------------------------------------------------- DropPlan

void DropPlan::drop_first(int src, int dst, int tag, int n) {
  check::MutexLock lk(mu_);
  rules_[{src, dst, tag}].drop_until = n;
}

void DropPlan::corrupt_first(int src, int dst, int tag, int n) {
  check::MutexLock lk(mu_);
  rules_[{src, dst, tag}].corrupt_until = n;
}

mp::DeliveryFilter DropPlan::filter() {
  return [this](const mp::Message& m, int dst) {
    check::MutexLock lk(mu_);
    const auto key = std::make_tuple(m.src, dst, m.tag);
    const int attempt = attempts_[key]++;
    const auto it = rules_.find(key);
    if (it == rules_.end()) return mp::Delivery::Deliver;
    if (attempt < it->second.drop_until) return mp::Delivery::Drop;
    if (attempt < it->second.corrupt_until) return mp::Delivery::Corrupt;
    return mp::Delivery::Deliver;
  };
}

// ---------------------------------------------------------- ReliableLink

namespace {
// Tag bases keep protocol traffic clear of application tags and of the
// negative tags mp::Comm's collectives use internally.
constexpr int kDataBase = 200000;
constexpr int kAckBase = 300000;
}  // namespace

double payload_checksum(std::span<const double> data) {
  std::uint64_t h = check::kFnvOffsetBasis;
  for (double v : data) h = check::fnv1a(v, h);
  // Fold to 48 bits so the value is an exactly-representable integer
  // double: the checksum survives the vector<double> wire format.
  return static_cast<double>(h & ((std::uint64_t{1} << 48) - 1));
}

ReliableLink::ReliableLink(mp::Comm& comm, double rto_s, int max_retries)
    : comm_(&comm), rto_s_(rto_s), max_retries_(max_retries) {
  NSP_CHECK(rto_s > 0 && max_retries >= 0, "fault.link.config");
}

bool ReliableLink::send(int dst, int tag, std::span<const double> data) {
  const std::uint64_t seq = next_send_seq_[{dst, tag}]++;
  ++stats_.sent;
  std::vector<double> frame;
  frame.reserve(data.size() + 2);
  frame.push_back(static_cast<double>(seq));
  frame.push_back(payload_checksum(data));
  frame.insert(frame.end(), data.begin(), data.end());
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (attempt > 0) ++stats_.retransmits;
    comm_->send(dst, kDataBase + tag, frame);
    // One absolute deadline per attempt: every ack we inspect spends
    // the *remaining* budget, so a peer flooding stale or malformed
    // acks cannot stretch the RTO window — attempt k waits exactly
    // rto_s * 2^k regardless of mailbox noise.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(rto_s_ * std::ldexp(1.0, attempt)));
    while (true) {
      auto ack = comm_->recv_until(deadline, dst, kAckBase + tag);
      if (!ack) break;  // deadline passed: retransmit with backoff
      if (ack->data.empty()) {
        ++stats_.rejected;  // malformed (empty) ack frame: discard
        continue;
      }
      if (static_cast<std::uint64_t>(ack->data[0]) == seq) {
        ++stats_.acked;
        // Drain straggler acks of this seq (a duplicate data message
        // the receiver re-acked) so nothing is left in the mailbox.
        while (auto extra = comm_->try_recv(dst, kAckBase + tag)) {
          if (extra->data.empty()) {
            ++stats_.rejected;  // malformed: consume, keep draining
            continue;
          }
          if (static_cast<std::uint64_t>(extra->data[0]) > seq) {
            // An ack from a future flow cannot exist (send is
            // blocking per (dst, tag)); treat defensively as consumed.
            break;
          }
        }
        return true;
      }
      // A stale ack for an earlier seq: ignore it; the attempt's
      // deadline keeps ticking.
    }
  }
  ++stats_.failures;
  return false;
}

std::optional<std::vector<double>> ReliableLink::recv(int src, int tag,
                                                      double timeout_s) {
  const auto key = std::make_pair(src, tag);
  while (true) {
    auto m = comm_->recv_for(timeout_s, src, kDataBase + tag);
    if (!m) return std::nullopt;
    if (m->data.size() < 2) {
      ++stats_.rejected;
      continue;
    }
    const std::uint64_t seq = static_cast<std::uint64_t>(m->data[0]);
    const double sum = m->data[1];
    const std::span<const double> payload(m->data.data() + 2,
                                          m->data.size() - 2);
    if (payload_checksum(payload) != sum) {
      // Bad checksum: discard without acking; the sender's timeout
      // drives the retransmission.
      ++stats_.rejected;
      continue;
    }
    const double ack = static_cast<double>(seq);
    comm_->send(src, kAckBase + tag, std::span(&ack, 1));
    std::uint64_t& expected = next_recv_seq_[key];
    if (seq < expected) {
      ++stats_.duplicates;  // already delivered; re-acked above
      continue;
    }
    expected = seq + 1;
    ++stats_.delivered;
    return std::vector<double>(payload.begin(), payload.end());
  }
}

}  // namespace nsp::fault
