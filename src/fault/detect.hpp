// Failure detection for the message-passing layer.
//
//   CrashDetector  heartbeat-based fail-stop detector as a pure
//                  logical-time state machine: feed it beats, ask it
//                  for suspects. Works identically for the DES models
//                  (simulated seconds) and the live mp runtime
//                  (solver steps as the clock), so detector semantics
//                  are testable without wall-clock sleeps.
//   DropPlan       deterministic mp::DeliveryFilter: drops/corrupts
//                  the Nth transmission on a (src, dst, tag) flow —
//                  program-order deterministic, thread-safe.
//   ReliableLink   ack + bounded retransmission + exponential backoff
//                  over an unreliable mp::Comm: every payload carries a
//                  sequence number and an FNV checksum; the receiver
//                  acks what verifies and discards what does not.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "arch/network.hpp"
#include "check/thread_safety.hpp"
#include "fault/fault.hpp"
#include "mp/comm.hpp"
#include "sim/simulator.hpp"

namespace nsp::fault {

/// Heartbeat crash detector in logical time. A node is suspected once
/// `misses` heartbeat periods pass without a beat from it.
///
/// Thread-compatible, not thread-safe: both users clock it from a
/// single thread (the DES event loop via HeartbeatRing, or one rank's
/// solver loop in the live runtime), so it carries no lock. Feeding one
/// detector from several threads needs external serialization.
class CrashDetector {
 public:
  CrashDetector(int nodes, double period_s, int misses);

  /// Records a heartbeat from `node` at logical time `t`.
  void beat(int node, double t);

  /// True if `node` has missed `misses` periods as of time `t`.
  bool suspected(int node, double t) const;

  /// All suspected nodes at time `t`, ascending.
  std::vector<int> suspects(double t) const;

  /// Worst-case detection latency of this configuration.
  double detect_latency_s() const { return period_s_ * misses_; }

 private:
  double period_s_;
  int misses_;
  std::vector<double> last_beat_;
};

/// Wire-priced heartbeat traffic inside the DES. Every live node
/// periodically transmits a small heartbeat frame to its ring successor
/// through the platform NetworkModel; *arrivals* (not sends) feed a
/// CrashDetector, so detection latency includes whatever the fabric
/// charges for the beat — a shared Ethernet detects the same crash
/// later than the T3D torus. Beats are staggered (node n's first beat
/// at n*period/nodes) so a shared medium is not hit by synchronized
/// bursts; everything is scheduled through the one Simulator, so the
/// timeline stays bit-reproducible.
class HeartbeatRing {
 public:
  /// Called at most once per node, at the simulated detection time.
  using SuspectFn = std::function<void(int node, double t)>;

  HeartbeatRing(sim::Simulator& sim, arch::NetworkModel& net, int nodes,
                double period_s, int misses, int bytes);

  /// Registers the suspicion callback. Call before start().
  void on_suspect(SuspectFn fn) { on_suspect_ = std::move(fn); }

  /// Begins beating at the current simulated time. Launch counts as a
  /// beat for every node, so nobody is suspected before its first
  /// frame has had a chance to cross the wire.
  void start();

  /// Fail-stop at the current simulated time: `node` never beats
  /// again. Frames already in flight still arrive.
  void crash(int node);

  /// Ends the protocol: pending beat/check events become no-ops, so
  /// Simulator::run() drains and terminates.
  void stop();

  const CrashDetector& detector() const { return detector_; }
  std::uint64_t beats_sent() const { return beats_; }

 private:
  void send_beat(int node);
  void arrived(int node);
  void check(int node);

  sim::Simulator& sim_;
  arch::NetworkModel& net_;
  int nodes_;
  double period_s_;
  int misses_;
  std::size_t bytes_;
  CrashDetector detector_;
  SuspectFn on_suspect_;
  std::vector<bool> alive_;
  std::vector<bool> fired_;
  bool running_ = false;
  std::uint64_t beats_ = 0;
};

/// Deterministic delivery-fault plan for mp::Cluster: drops (or
/// corrupts) chosen attempt indices of a (src, dst, tag) flow. Attempt
/// indices are per-flow program order, so the plan's effect does not
/// depend on thread interleaving across flows.
class DropPlan {
 public:
  /// Lose attempts [0, n) of flow (src, dst, tag).
  void drop_first(int src, int dst, int tag, int n);
  /// Corrupt attempts [0, n) of flow (src, dst, tag).
  void corrupt_first(int src, int dst, int tag, int n);

  /// The mp::Cluster hook. The returned filter references this plan;
  /// keep the plan alive for the duration of the run. The filter runs
  /// on every sending rank's thread, so all plan state sits behind mu_.
  mp::DeliveryFilter filter();

 private:
  struct Rule {
    int drop_until = 0;
    int corrupt_until = 0;
  };
  check::Mutex mu_;
  std::map<std::tuple<int, int, int>, Rule> rules_ NSP_GUARDED_BY(mu_);
  std::map<std::tuple<int, int, int>, int> attempts_ NSP_GUARDED_BY(mu_);
};

/// Outcome counters of one ReliableLink endpoint.
struct LinkStats {
  std::uint64_t sent = 0;        ///< distinct payloads offered
  std::uint64_t retransmits = 0; ///< extra attempts beyond the first
  std::uint64_t acked = 0;       ///< payloads confirmed delivered
  std::uint64_t failures = 0;    ///< retry budget exhausted
  std::uint64_t delivered = 0;   ///< payloads handed to the application
  std::uint64_t duplicates = 0;  ///< retransmitted copies discarded
  std::uint64_t rejected = 0;    ///< checksum failures discarded
};

/// Reliable channel over an unreliable Comm. Wire format of a data
/// message on tag kData+user_tag: [seq, checksum, payload...]; the ack
/// on kAck+user_tag carries [seq]. One ReliableLink per rank; use the
/// same user tag on both ends of a flow.
///
/// Thread-compatible like its Comm: a link belongs to exactly one rank
/// thread (mp::Comm itself is per-rank), so sequence state and stats
/// are unguarded by design.
class ReliableLink {
 public:
  /// `rto_s` is the first retransmission timeout; attempt k waits
  /// rto_s * 2^k (exponential backoff) up to `max_retries` extra
  /// attempts.
  ReliableLink(mp::Comm& comm, double rto_s, int max_retries);

  /// Sends `data` to `dst` and blocks until the ack arrives or the
  /// retry budget is exhausted. Returns true on ack.
  bool send(int dst, int tag, std::span<const double> data);

  /// Receives the next in-order payload from `src`, verifying the
  /// checksum, acking, and discarding duplicates, for up to
  /// `timeout_s` seconds.
  std::optional<std::vector<double>> recv(int src, int tag,
                                          double timeout_s);

  const LinkStats& stats() const { return stats_; }

 private:
  mp::Comm* comm_;
  double rto_s_;
  int max_retries_;
  LinkStats stats_;
  std::map<std::pair<int, int>, std::uint64_t> next_send_seq_;
  std::map<std::pair<int, int>, std::uint64_t> next_recv_seq_;
};

/// FNV-1a checksum of a payload, folded to a double that survives the
/// Message wire format exactly (48-bit mantissa slice).
double payload_checksum(std::span<const double> data);

}  // namespace nsp::fault
