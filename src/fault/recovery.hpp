// Checkpoint/restart recovery.
//
// Two halves, one semantics:
//
//   simulate_timeline()  the *model*: walks a run's lifetime in
//     simulated time — coordinated checkpoints every k steps, Poisson
//     node crashes from the dedicated "fault.crash" RNG stream,
//     heartbeat detection latency, restart cost, re-decomposition onto
//     the surviving nodes (the per-step time is a caller-supplied
//     function of the live processor count, so the model composes with
//     the DES replay's communication curves). Produces time-to-solution
//     under faults plus wasted-work accounting.
//
//   run_with_recovery()  the *mechanism*, live: runs the SPMD
//     subdomain solver, writes io::snapshot checkpoints every k steps,
//     injects a fail-stop crash at a chosen step, reloads the last
//     checkpoint from disk, re-decomposes onto one fewer rank, and
//     continues. The final interior state is bit-identical to an
//     uninterrupted run — state_hash() proves it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/field.hpp"
#include "core/solver.hpp"
#include "fault/fault.hpp"

namespace nsp::fault {

/// What simulate_timeline needs to know about the application.
struct TimelineInputs {
  int steps = 0;   ///< application time steps to complete
  int nprocs = 0;  ///< processors at launch
  /// Seconds one application step takes on `procs` live processors
  /// (typically perf::replay through the fault injector, so link-level
  /// fault cost is already inside).
  std::function<double(int procs)> step_time_s;
  /// Smallest processor count the decomposition supports (grid width /
  /// minimum subdomain width); the run is abandoned below
  /// max(spec.min_procs, this).
  int decomposition_min_procs = 1;
};

/// Outcome of the timeline walk.
struct TimelineResult {
  bool completed = false;
  double time_to_solution_s = 0; ///< total, faults and recovery included
  double fault_free_s = 0;       ///< steps * step_time_s(nprocs), no faults
  int final_procs = 0;           ///< survivors at the end
  FaultStats stats;
};

/// Walks the run. Crash inter-arrivals are exponential with the
/// aggregate rate procs * crash_rate_per_hour, drawn from the
/// "fault.crash" sub-stream of `seed` — deterministic for a given
/// (spec, inputs, seed) regardless of who calls it from where.
TimelineResult simulate_timeline(const FaultSpec& spec,
                                 const TimelineInputs& inputs,
                                 std::uint64_t seed);

/// Options of the live checkpoint/restart driver.
struct RecoveryOptions {
  int checkpoint_interval = 50; ///< steps between coordinated checkpoints
  std::string dir = "/tmp";     ///< where snapshot files are written
  /// Fail-stop crash injected after this many global steps (-1 = none).
  int crash_step = -1;
  bool keep_files = false; ///< leave the snapshot files behind
};

/// Outcome of a live recovered run.
struct RecoveryOutcome {
  core::StateField final_state; ///< gathered global interior state
  int checkpoints = 0;          ///< snapshots written
  int restarts = 0;             ///< recoveries performed
  int wasted_steps = 0;         ///< steps recomputed after the crash
  int final_procs = 0;          ///< ranks after re-decomposition
  std::uint64_t state_hash = 0; ///< state_hash(final_state)
};

/// Runs `nsteps` of the global problem on `nprocs` ranks with
/// checkpoint/restart. On the injected crash the driver discards the
/// in-flight segment (that work is *recomputed* — counted in
/// wasted_steps), reloads the last io::snapshot from disk, re-decomposes
/// onto nprocs-1 ranks, and continues to completion. Throws
/// std::runtime_error if a checkpoint cannot be written or read back.
RecoveryOutcome run_with_recovery(const core::SolverConfig& cfg, int nprocs,
                                  int nsteps, const RecoveryOptions& opts);

/// Order-independent FNV digest of a state's interior bit patterns
/// (check::TraceHash over (component, i, j, bits) records).
std::uint64_t state_hash(const core::StateField& q);

}  // namespace nsp::fault
