// Checkpoint/restart recovery.
//
// Three entry points, one semantics:
//
//   simulate_timeline_des()  the *unified model*: walks a run's
//     lifetime as discrete events on the platform's own interconnect —
//     heartbeats are real frames through arch::NetworkModel (so
//     detection latency includes what the wire charges: a shared
//     Ethernet detects the same crash later than the T3D torus),
//     crashes interrupt the in-flight step, and detection, restart and
//     recompute are simulated events. Checkpoint cost comes from the
//     platform's I/O path unless the spec overrides it.
//
//   simulate_timeline()  the *analytic cross-check*: the closed-form
//     walk — coordinated checkpoints every k steps, Poisson node
//     crashes from the dedicated "fault.crash" RNG stream, worst-case
//     heartbeat detection latency, restart cost, re-decomposition onto
//     the surviving nodes. Both walks consume the crash stream in the
//     same draw order, so they see the same crash timeline and agree
//     within a documented tolerance (see docs/FAULTS.md).
//
//   run_with_recovery()  the *mechanism*, live: runs the SPMD
//     subdomain solver, writes io::snapshot checkpoints every k steps,
//     detects an injected fail-stop crash through ReliableLink
//     heartbeats feeding the real CrashDetector, reloads the last
//     checkpoint from disk, re-decomposes onto one fewer rank, and
//     continues. The final interior state is bit-identical to an
//     uninterrupted run — state_hash() proves it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "arch/platform.hpp"
#include "core/field.hpp"
#include "core/solver.hpp"
#include "fault/fault.hpp"

namespace nsp::fault {

/// What simulate_timeline needs to know about the application.
struct TimelineInputs {
  int steps = 0;   ///< application time steps to complete
  int nprocs = 0;  ///< processors at launch
  /// Seconds one application step takes on `procs` live processors
  /// (typically perf::replay through the fault injector, so link-level
  /// fault cost is already inside).
  std::function<double(int procs)> step_time_s;
  /// Smallest processor count the decomposition supports (grid width /
  /// minimum subdomain width); the run is abandoned below
  /// max(spec.min_procs, this).
  int decomposition_min_procs = 1;
  /// Coordinated checkpoint cost used when spec.checkpoint_cost_s is 0
  /// (the "derive it" default). Callers with a platform resolve this
  /// via platform_checkpoint_cost_s(); direct model studies can set it.
  double checkpoint_cost_s = 1.0;
};

/// Outcome of the timeline walk.
struct TimelineResult {
  bool completed = false;
  double time_to_solution_s = 0; ///< total, faults and recovery included
  double fault_free_s = 0;       ///< steps * step_time_s(nprocs), no faults
  int final_procs = 0;           ///< survivors at the end
  FaultStats stats;
};

/// Walks the run. Crash inter-arrivals are exponential with the
/// aggregate rate procs * crash_rate_per_hour, drawn from the
/// "fault.crash" sub-stream of `seed` — deterministic for a given
/// (spec, inputs, seed) regardless of who calls it from where.
TimelineResult simulate_timeline(const FaultSpec& spec,
                                 const TimelineInputs& inputs,
                                 std::uint64_t seed);

/// The unified DES walk: same crash stream and draw order as
/// simulate_timeline, but detection happens when a HeartbeatRing over
/// `plat`'s interconnect actually observes the heartbeat gap — so
/// stats.detect_latency_s is the *observed* latency (wire cost
/// included) rather than the worst-case period x misses, and
/// time-to-solution moves with it. With a one-node launch there is
/// nobody to observe heartbeats; the analytic walk is exact there and
/// is returned instead. stats.heartbeats counts the beats priced on
/// the wire.
TimelineResult simulate_timeline_des(const FaultSpec& spec,
                                     const TimelineInputs& inputs,
                                     const arch::Platform& plat,
                                     std::uint64_t seed);

/// Coordinated checkpoint cost on `plat`'s stable-storage path: the
/// gathered state (ni x nj x components doubles) over io_bandwidth_Bps
/// plus the fixed io_latency_s.
double platform_checkpoint_cost_s(const arch::Platform& plat, int ni,
                                  int nj);

/// Options of the live checkpoint/restart driver.
struct RecoveryOptions {
  int checkpoint_interval = 50; ///< steps between coordinated checkpoints
  std::string dir = "/tmp";     ///< where snapshot files are written
  /// Fail-stop crash injected after this many global steps (-1 = none).
  /// This only scripts the *failure*; the survivors find out about it
  /// through the heartbeat protocol, never from this option.
  int crash_step = -1;
  bool keep_files = false; ///< leave the snapshot files behind

  // Heartbeat protocol (ReliableLink beats to rank 0, round-indexed
  // logical time into the real CrashDetector).
  int heartbeat_misses = 2;        ///< missed rounds before suspicion
  double heartbeat_timeout_s = 0.05; ///< per-round wait for one beat
  double heartbeat_rto_s = 0.02;   ///< ReliableLink retransmit timeout
  int heartbeat_retries = 3;       ///< ReliableLink retry budget
};

/// Outcome of a live recovered run.
struct RecoveryOutcome {
  core::StateField final_state; ///< gathered global interior state
  int checkpoints = 0;          ///< snapshots written
  int restarts = 0;             ///< recoveries performed
  int detections = 0;           ///< crashes the detector flagged
  int wasted_steps = 0;         ///< steps recomputed after the crash
  int final_procs = 0;          ///< ranks after re-decomposition
  std::uint64_t state_hash = 0; ///< state_hash(final_state)
};

/// Runs `nsteps` of the global problem on `nprocs` ranks with
/// checkpoint/restart. Every round, each rank beats to rank 0 over a
/// ReliableLink and steps only on rank 0's "go" verdict; a crashed
/// rank's missing beats are what the CrashDetector sees, and its
/// suspicion — not the crash script — triggers recovery. The driver
/// then discards the in-flight segment (that work is *recomputed* —
/// counted in wasted_steps), reloads the last io::snapshot from disk,
/// re-decomposes onto nprocs-1 ranks, and continues to completion.
/// Throws std::runtime_error if a checkpoint cannot be written or read
/// back.
RecoveryOutcome run_with_recovery(const core::SolverConfig& cfg, int nprocs,
                                  int nsteps, const RecoveryOptions& opts);

/// Order-independent FNV digest of a state's interior bit patterns
/// (check::TraceHash over (component, i, j, bits) records).
std::uint64_t state_hash(const core::StateField& q);

}  // namespace nsp::fault
