// DES-side fault injection: decorates an arch::NetworkModel so that
// transmissions can be dropped, corrupted, or slowed, with the sender's
// bounded retransmission (exponential backoff, modelled entirely in
// simulated time) — so retry cost shows up in the paper's communication
// curves exactly like any other network time. Also dilates per-rank
// compute segments for straggler windows (consumed by perf::replay).
//
// Determinism: per-message draws come from the "fault.msg" sub-stream
// and the DES delivers events in a stable order, so a given (spec,
// seed, platform, nprocs) always produces the same fault timeline; the
// timeline digest in FaultStats proves it across engine thread counts.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/network.hpp"
#include "fault/fault.hpp"
#include "sim/rng.hpp"

namespace nsp::fault {

/// Per-replay fault state: owns the schedule, the message RNG stream,
/// and the stats. One Injector serves one simulator/replay; it must
/// outlive the network model returned by wrap().
class Injector {
 public:
  /// `horizon_s` bounds the window schedule (pass an estimate of the
  /// simulated duration; windows beyond it never trigger).
  Injector(const FaultSpec& spec, int nprocs, double horizon_s,
           std::uint64_t seed);

  /// Test entry point: injects an explicit, hand-built window schedule
  /// instead of drawing one (deterministic degrade/straggler windows
  /// for regression tests).
  Injector(const FaultSpec& spec, FaultSchedule schedule,
           std::uint64_t seed);

  /// Accounts one wire-priced heartbeat frame (perf::replay and the
  /// recovery DES both report through the injector's stats).
  void note_heartbeat() { ++stats_.heartbeats; }

  /// Wraps `inner` in the fault decorator. `sim` must be the simulator
  /// `inner` was built on.
  std::unique_ptr<arch::NetworkModel> wrap(
      sim::Simulator& sim, std::unique_ptr<arch::NetworkModel> inner);

  /// Multiplicative compute slowdown of `rank` at simulated time t
  /// (straggler windows; 1 = full speed).
  double compute_factor(int rank, double t) const {
    return schedule_.compute_factor(rank, t);
  }

  const FaultSpec& spec() const { return spec_; }
  const FaultSchedule& schedule() const { return schedule_; }
  const FaultStats& stats() const { return stats_; }

 private:
  friend class FaultyNetwork;
  FaultSpec spec_;
  FaultSchedule schedule_;
  sim::Rng msg_rng_;
  FaultStats stats_;
};

/// NetworkModel decorator applying the injector's message faults.
///
/// Per transmission attempt, in order:
///   * drop: the payload never reaches the wire; the sender's timeout
///     fires after rto * 2^attempt and it retransmits (bounded by
///     max_retries; after that the attempt is recorded as a give-up and
///     the message is forced through so the replay cannot wedge — a
///     real run would have escalated to the crash detector by then).
///   * corrupt: the payload pays its full transmission time, the
///     receiver's checksum rejects it, and the sender retransmits one
///     round-trip-timeout later.
///   * degrade: an attempt injected during a fabric degrade window is
///     held for the extra serialization time implied by the window's
///     factor. The window is consulted per wire touch, so a
///     retransmission that backs off into (or out of) a window pays
///     what the fabric charges at *its* injection time; a dropped
///     attempt never reaches the wire and pays nothing.
class FaultyNetwork final : public arch::NetworkModel {
 public:
  FaultyNetwork(sim::Simulator& s, Injector& inj,
                std::unique_ptr<arch::NetworkModel> inner);

  void transmit(int src, int dst, std::size_t bytes,
                std::function<void()> delivered) override;
  std::string name() const override { return inner_->name() + "+faults"; }
  double link_bandwidth_Bps() const override {
    return inner_->link_bandwidth_Bps();
  }

 private:
  void attempt(int src, int dst, std::size_t bytes, int tries,
               std::function<void()> delivered);
  /// Puts one attempt on the wire, pricing any degrade window active at
  /// the current simulated time.
  void launch(int src, int dst, std::size_t bytes,
              std::function<void()> delivered);

  Injector& inj_;
  std::unique_ptr<arch::NetworkModel> inner_;
};

}  // namespace nsp::fault
