#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/check.hpp"
#include "sim/rng.hpp"

namespace nsp::fault {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::NodeCrash: return "crash";
    case FaultKind::LinkDrop: return "drop";
    case FaultKind::MsgCorrupt: return "corrupt";
    case FaultKind::LinkDegrade: return "degrade";
    case FaultKind::Straggler: return "straggler";
  }
  return "?";
}

namespace {

/// Shortest decimal form that round-trips a double (io::format_exact
/// lives above this library in the dependency order, so the spec
/// string formats its own numbers).
std::string num(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    // Integer-valued: plain decimal reads better than 2.5e+02.
    return std::to_string(static_cast<long long>(v));
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::ostringstream os;
    os.precision(prec);
    os << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void put(std::ostringstream& os, const char* key, double v, double def) {
  if (v != def) os << (os.tellp() > 0 ? "," : "") << key << '=' << num(v);
}

}  // namespace

std::string FaultSpec::str() const {
  if (!enabled) return "";
  std::ostringstream os;
  put(os, "crash", crash_rate_per_hour, 0);
  put(os, "drop", drop_prob, 0);
  put(os, "corrupt", corrupt_prob, 0);
  put(os, "degrade", degrade_rate_per_hour, 0);
  put(os, "degrade_s", degrade_duration_s, 30);
  put(os, "degrade_x", degrade_factor, 4);
  put(os, "straggle", straggler_rate_per_hour, 0);
  put(os, "straggle_s", straggler_duration_s, 30);
  put(os, "straggle_x", straggler_factor, 3);
  put(os, "hb", heartbeat_period_s, 1.0);
  put(os, "hb_miss", heartbeat_misses, 3);
  put(os, "hb_bytes", heartbeat_bytes, 64);
  put(os, "rto", rto_s, 50e-3);
  put(os, "retries", max_retries, 10);
  put(os, "ckpt", checkpoint_interval_steps, 0);
  put(os, "ckpt_s", checkpoint_cost_s, 0);
  put(os, "restart_s", restart_cost_s, 5.0);
  put(os, "min_procs", min_procs, 1);
  if (os.tellp() == 0) return "on";  // enabled but all defaults
  return os.str();
}

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec out;
  if (spec.empty()) return out;
  out.enabled = true;
  if (spec == "on") return out;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultSpec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    double v = 0;
    try {
      v = std::stod(item.substr(eq + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("FaultSpec: bad number in '" + item + "'");
    }
    if (key == "crash") out.crash_rate_per_hour = v;
    else if (key == "drop") out.drop_prob = v;
    else if (key == "corrupt") out.corrupt_prob = v;
    else if (key == "degrade") out.degrade_rate_per_hour = v;
    else if (key == "degrade_s") out.degrade_duration_s = v;
    else if (key == "degrade_x") out.degrade_factor = v;
    else if (key == "straggle") out.straggler_rate_per_hour = v;
    else if (key == "straggle_s") out.straggler_duration_s = v;
    else if (key == "straggle_x") out.straggler_factor = v;
    else if (key == "hb") out.heartbeat_period_s = v;
    else if (key == "hb_miss") out.heartbeat_misses = static_cast<int>(v);
    else if (key == "hb_bytes") out.heartbeat_bytes = static_cast<int>(v);
    else if (key == "rto") out.rto_s = v;
    else if (key == "retries") out.max_retries = static_cast<int>(v);
    else if (key == "ckpt") out.checkpoint_interval_steps = static_cast<int>(v);
    else if (key == "ckpt_s") out.checkpoint_cost_s = v;
    else if (key == "restart_s") out.restart_cost_s = v;
    else if (key == "min_procs") out.min_procs = static_cast<int>(v);
    else {
      throw std::invalid_argument("FaultSpec: unknown key '" + key + "'");
    }
  }
  return out;
}

bool operator==(const FaultSpec& a, const FaultSpec& b) {
  return a.enabled == b.enabled && a.str() == b.str();
}

std::vector<FaultEvent> FaultSchedule::windows(FaultKind kind,
                                               int node) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events) {
    if (e.kind == kind && (e.node < 0 || e.node == node)) out.push_back(e);
  }
  return out;
}

namespace {
double window_factor(const std::vector<FaultEvent>& events, FaultKind kind,
                     int node, double t) {
  double f = 1.0;
  for (const FaultEvent& e : events) {
    if (e.kind != kind) continue;
    if (e.node >= 0 && e.node != node) continue;
    if (t >= e.time && t < e.time + e.duration) f = std::max(f, e.factor);
  }
  return f;
}
}  // namespace

double FaultSchedule::compute_factor(int node, double t) const {
  return window_factor(events, FaultKind::Straggler, node, t);
}

double FaultSchedule::degrade_factor(double t) const {
  return window_factor(events, FaultKind::LinkDegrade, -1, t);
}

FaultSchedule FaultSchedule::generate(const FaultSpec& spec, int nprocs,
                                      double horizon_s, std::uint64_t seed) {
  NSP_CHECK(nprocs >= 1, "fault.schedule.procs");
  FaultSchedule sched;
  if (!spec.enabled || horizon_s <= 0) return sched;
  sim::Rng rng = sim::Rng::stream(seed, "fault.windows");
  // Deterministic safety valve: a pathological (rate, horizon) pair
  // could ask for millions of windows; cap each stream's draws so the
  // schedule stays a cheap in-memory structure. The cap depends only
  // on the arguments, so determinism is preserved.
  constexpr std::size_t kMaxWindowsPerStream = 100000;
  // Degrade windows affect the whole fabric (node -1).
  if (spec.degrade_rate_per_hour > 0) {
    const double mean = 3600.0 / spec.degrade_rate_per_hour;
    std::size_t drawn = 0;
    for (double t = rng.exponential(mean);
         t < horizon_s && drawn < kMaxWindowsPerStream;
         t += rng.exponential(mean), ++drawn) {
      sched.events.push_back({FaultKind::LinkDegrade, t, -1,
                              spec.degrade_duration_s, spec.degrade_factor});
    }
    NSP_CHECK(drawn < kMaxWindowsPerStream, "fault.schedule.degrade_cap");
  }
  // Straggler windows per node. Draws are consumed in node order, so
  // the schedule is a pure function of (spec, nprocs, horizon, seed).
  if (spec.straggler_rate_per_hour > 0) {
    const double mean = 3600.0 / spec.straggler_rate_per_hour;
    for (int n = 0; n < nprocs; ++n) {
      std::size_t drawn = 0;
      for (double t = rng.exponential(mean);
           t < horizon_s && drawn < kMaxWindowsPerStream;
           t += rng.exponential(mean), ++drawn) {
        sched.events.push_back({FaultKind::Straggler, t, n,
                                spec.straggler_duration_s,
                                spec.straggler_factor});
      }
      NSP_CHECK(drawn < kMaxWindowsPerStream, "fault.schedule.straggler_cap");
    }
  }
  std::sort(sched.events.begin(), sched.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.node != b.node) return a.node < b.node;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return sched;
}

void FaultStats::record(FaultKind kind, double time, int node) {
  std::uint64_t h = check::fnv1a(to_string(kind));
  h = check::fnv1a(time, h);  // exact bit pattern
  h = check::fnv1a(static_cast<std::uint64_t>(static_cast<std::int64_t>(node)),
                   h);
  timeline_.mix(h);
}

void FaultStats::merge(const FaultStats& other) {
  crashes += other.crashes;
  drops += other.drops;
  corruptions += other.corruptions;
  retransmits += other.retransmits;
  give_ups += other.give_ups;
  degrade_windows += other.degrade_windows;
  straggler_windows += other.straggler_windows;
  heartbeats += other.heartbeats;
  detections += other.detections;
  checkpoints += other.checkpoints;
  restarts += other.restarts;
  detect_latency_s += other.detect_latency_s;
  wasted_work_s += other.wasted_work_s;
  checkpoint_overhead_s += other.checkpoint_overhead_s;
  timeline_.merge(other.timeline_);
}

}  // namespace nsp::fault
