#include "fault/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <unistd.h>

#include <map>
#include <stdexcept>

#include "check/check.hpp"
#include "check/trace.hpp"
#include "arch/platform.hpp"
#include "core/field.hpp"
#include "fault/detect.hpp"
#include "io/snapshot.hpp"
#include "mp/comm.hpp"
#include "par/decomposition.hpp"
#include "par/subdomain_solver.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace nsp::fault {

// ------------------------------------------------------ timeline model

TimelineResult simulate_timeline(const FaultSpec& spec,
                                 const TimelineInputs& inputs,
                                 std::uint64_t seed) {
  if (inputs.steps <= 0 || inputs.nprocs <= 0 || !inputs.step_time_s) {
    throw std::invalid_argument("simulate_timeline: bad inputs");
  }
  TimelineResult out;
  // step_time_s typically runs a full DES replay per processor count;
  // memoize so repeated rollbacks at the same width are free.
  std::map<int, double> step_cache;
  const auto step_time = [&](int procs) {
    auto it = step_cache.find(procs);
    if (it == step_cache.end()) {
      it = step_cache.emplace(procs, inputs.step_time_s(procs)).first;
    }
    return it->second;
  };

  out.fault_free_s =
      static_cast<double>(inputs.steps) * step_time(inputs.nprocs);

  const int floor_procs = std::max(spec.min_procs,
                                   inputs.decomposition_min_procs);
  const int k = spec.checkpoint_interval_steps;
  const double rate = spec.enabled ? spec.crash_rate_per_hour : 0.0;
  const double ckpt_cost = spec.checkpoint_cost_s > 0
                               ? spec.checkpoint_cost_s
                               : inputs.checkpoint_cost_s;

  sim::Rng rng = sim::Rng::stream(seed, "fault.crash");
  int procs = inputs.nprocs;
  double t = 0;             // simulated seconds elapsed
  int step = 0;             // next application step to run
  double t_durable = 0;     // when the last durable state was written
  int step_durable = 0;     // the step that durable state is at
  double next_crash = rate > 0
      ? rng.exponential(3600.0 / (rate * procs))
      : std::numeric_limits<double>::infinity();

  while (step < inputs.steps) {
    const double per_step = step_time(procs);
    double seg_end = t + per_step;
    const bool ckpt_due = k > 0 && (step + 1) % k == 0 &&
                          step + 1 < inputs.steps;
    if (ckpt_due) seg_end += ckpt_cost;

    if (next_crash < seg_end) {
      // A node dies mid-step (or mid-checkpoint). Everything since the
      // last durable state is lost; detection and restart stall the
      // machine before the survivors recompute from the checkpoint.
      const int victim = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(procs)));
      out.stats.crashes += 1;
      out.stats.record(FaultKind::NodeCrash, next_crash, victim);
      out.stats.detections += 1;
      out.stats.detect_latency_s += spec.detect_latency_s();
      procs -= 1;
      if (procs < floor_procs) {
        // Not enough survivors to re-decompose: the run is abandoned
        // at the moment the failure is detected.
        t = next_crash + spec.detect_latency_s();
        out.completed = false;
        out.time_to_solution_s = t;
        out.final_procs = procs;
        return out;
      }
      out.stats.restarts += 1;
      const double resume =
          next_crash + spec.detect_latency_s() + spec.restart_cost_s;
      out.stats.wasted_work_s += resume - t_durable;
      t = resume;
      // The durable state is re-materialized at resume time: a second
      // crash before the next checkpoint wastes only the work since
      // *this* restart, not the previous crash's stall again.
      t_durable = resume;
      step = step_durable;
      next_crash = t + rng.exponential(3600.0 / (rate * procs));
      continue;
    }

    t = seg_end;
    step += 1;
    if (ckpt_due) {
      out.stats.checkpoints += 1;
      out.stats.checkpoint_overhead_s += ckpt_cost;
      t_durable = t;
      step_durable = step;
    }
  }

  out.completed = true;
  out.time_to_solution_s = t;
  out.final_procs = procs;
  return out;
}

double platform_checkpoint_cost_s(const arch::Platform& plat, int ni,
                                  int nj) {
  NSP_CHECK(plat.io_bandwidth_Bps > 0, "fault.recovery.io_bandwidth");
  const double bytes = static_cast<double>(ni) * nj *
                       core::StateField::kComponents * sizeof(double);
  return plat.io_latency_s + bytes / plat.io_bandwidth_Bps;
}

TimelineResult simulate_timeline_des(const FaultSpec& spec,
                                     const TimelineInputs& inputs,
                                     const arch::Platform& plat,
                                     std::uint64_t seed) {
  if (inputs.steps <= 0 || inputs.nprocs <= 0 || !inputs.step_time_s) {
    throw std::invalid_argument("simulate_timeline_des: bad inputs");
  }
  if (inputs.nprocs < 2) {
    // One node has no peer to observe its heartbeats; the analytic
    // walk is exact for that degenerate cluster.
    return simulate_timeline(spec, inputs, seed);
  }

  TimelineResult out;
  std::map<int, double> step_cache;
  const auto step_time = [&](int procs) {
    auto it = step_cache.find(procs);
    if (it == step_cache.end()) {
      it = step_cache.emplace(procs, inputs.step_time_s(procs)).first;
    }
    return it->second;
  };
  out.fault_free_s =
      static_cast<double>(inputs.steps) * step_time(inputs.nprocs);

  const int floor_procs = std::max(spec.min_procs,
                                   inputs.decomposition_min_procs);
  const int k = spec.checkpoint_interval_steps;
  const double rate = spec.enabled ? spec.crash_rate_per_hour : 0.0;
  const double ckpt_cost = spec.checkpoint_cost_s > 0
                               ? spec.checkpoint_cost_s
                               : inputs.checkpoint_cost_s;

  sim::Simulator des;
  const auto net = plat.make_network(des, inputs.nprocs);
  HeartbeatRing ring(des, *net, inputs.nprocs, spec.heartbeat_period_s,
                     spec.heartbeat_misses, spec.heartbeat_bytes);
  sim::Rng rng = sim::Rng::stream(seed, "fault.crash");

  struct Walk {
    int procs = 0;
    int step = 0;
    double t_durable = 0;
    int step_durable = 0;
    double crash_time = 0;
    bool crash_outstanding = false;
    bool done = false;
    double end_time = 0;
    std::vector<int> live;        ///< live node ids, ascending
    sim::EventId step_event = 0;
    bool step_in_flight = false;
  } w;
  w.procs = inputs.nprocs;
  w.live.resize(static_cast<std::size_t>(inputs.nprocs));
  for (int n = 0; n < inputs.nprocs; ++n) {
    w.live[static_cast<std::size_t>(n)] = n;
  }

  std::function<void()> run_step;
  std::function<void()> on_crash;

  // Same draw order as the analytic walk: one exponential gap before
  // each crash (aggregate rate procs x per-node rate), one victim
  // draw at the crash. The two walks therefore see the same crash
  // timeline and can be compared within a tolerance.
  const auto schedule_crash = [&]() {
    if (rate <= 0) return;
    const double gap = rng.exponential(3600.0 / (rate * w.procs));
    des.after(gap, [&] { on_crash(); });
  };

  on_crash = [&]() {
    if (w.done || w.crash_outstanding) return;
    const std::size_t idx = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(w.procs)));
    const int victim = w.live.at(idx);
    w.live.erase(w.live.begin() + static_cast<std::ptrdiff_t>(idx));
    out.stats.crashes += 1;
    out.stats.record(FaultKind::NodeCrash, des.now(), victim);
    ring.crash(victim);
    w.crash_time = des.now();
    w.crash_outstanding = true;
    w.procs -= 1;
    // The in-flight step (and any checkpoint riding on it) is lost;
    // the survivors stall until the detector notices the gap.
    if (w.step_in_flight) {
      des.cancel(w.step_event);
      w.step_in_flight = false;
    }
  };

  ring.on_suspect([&](int /*node*/, double td) {
    if (w.done || !w.crash_outstanding) return;
    w.crash_outstanding = false;
    out.stats.detections += 1;
    out.stats.detect_latency_s += td - w.crash_time;
    if (w.procs < floor_procs) {
      // Not enough survivors to re-decompose: abandoned at detection.
      w.done = true;
      w.end_time = td;
      out.completed = false;
      ring.stop();
      return;
    }
    out.stats.restarts += 1;
    const double resume = td + spec.restart_cost_s;
    out.stats.wasted_work_s += resume - w.t_durable;
    w.step = w.step_durable;
    w.t_durable = resume;
    des.at(resume, [&] {
      if (w.done) return;
      schedule_crash();
      run_step();
    });
  });

  run_step = [&]() {
    if (w.done) return;
    if (w.step >= inputs.steps) {
      w.done = true;
      w.end_time = des.now();
      out.completed = true;
      ring.stop();
      return;
    }
    const bool ckpt_due = k > 0 && (w.step + 1) % k == 0 &&
                          w.step + 1 < inputs.steps;
    const double dur = step_time(w.procs) + (ckpt_due ? ckpt_cost : 0.0);
    w.step_event = des.after(dur, [&, ckpt_due] {
      w.step_in_flight = false;
      w.step += 1;
      if (ckpt_due) {
        out.stats.checkpoints += 1;
        out.stats.checkpoint_overhead_s += ckpt_cost;
        w.t_durable = des.now();
        w.step_durable = w.step;
      }
      run_step();
    });
    w.step_in_flight = true;
  };

  ring.start();
  schedule_crash();
  run_step();
  des.run();

  NSP_CHECK(w.done, "fault.recovery.des_terminated");
  out.stats.heartbeats = ring.beats_sent();
  out.time_to_solution_s = w.end_time;
  out.final_procs = w.procs;
  return out;
}

// ------------------------------------------------------- live recovery

std::uint64_t state_hash(const core::StateField& q) {
  check::TraceHash h;
  for (int c = 0; c < core::StateField::kComponents; ++c) {
    for (int i = 0; i < q.ni(); ++i) {
      for (int j = 0; j < q.nj(); ++j) {
        std::uint64_t rec = check::fnv1a(static_cast<std::uint64_t>(c));
        rec = check::fnv1a(static_cast<std::uint64_t>(i), rec);
        rec = check::fnv1a(static_cast<std::uint64_t>(j), rec);
        rec = check::fnv1a(q[c](i, j), rec);
        h.mix(rec);
      }
    }
  }
  return h.digest();
}

namespace {

// Heartbeat-protocol tags (ReliableLink data/ack bases keep them clear
// of application traffic; the verdict rides a plain comm tag).
constexpr int kBeatTag = 901;
constexpr int kVerdictTag = 902;
constexpr double kVerdictGo = 0;
constexpr double kVerdictRecover = 2;

/// One SPMD segment under the heartbeat protocol: restore (or
/// initialize), then per round every rank beats to rank 0 over a
/// ReliableLink and advances one step only on rank 0's "go" verdict.
/// A scripted victim (rank procs-1) simply stops participating after
/// `crash_after` local steps; rank 0 discovers that through the
/// CrashDetector over the missing beats — never from the script — and
/// broadcasts "recover", upon which the survivors abandon the segment
/// (crashed = true, nothing gathered). A clean segment gathers as
/// before.
struct SegmentResult {
  core::StateField state;
  double time = 0;
  int steps = 0;
  bool crashed = false;
};

SegmentResult run_segment(const core::SolverConfig& cfg, int procs,
                          const core::StateField* from, double from_time,
                          int from_steps, int nsteps, int crash_after,
                          const RecoveryOptions& opts) {
  mp::Cluster cluster(procs);
  SegmentResult out;
  check::Mutex m;
  cluster.run([&](mp::Comm& comm) {
    par::SubdomainSolver s(cfg, comm);
    if (from) {
      s.restore(*from, from_time, from_steps);
    } else {
      s.initialize();
    }
    const int rank = comm.rank();
    const bool victim = crash_after >= 0 && rank == procs - 1;
    ReliableLink link(comm, opts.heartbeat_rto_s, opts.heartbeat_retries);
    int done = 0;

    if (rank == 0) {
      // Rank 0 is the observer: it feeds the detector with round
      // numbers as logical time (one round = one heartbeat period).
      CrashDetector det(procs, 1.0, opts.heartbeat_misses);
      int round = 0;
      while (done < nsteps) {
        const double t = static_cast<double>(round);
        det.beat(0, t);
        std::vector<int> beaters;
        for (int r = 1; r < procs; ++r) {
          if (det.suspected(r, t)) continue;  // stop waiting on the dead
          if (link.recv(r, kBeatTag, opts.heartbeat_timeout_s)) {
            det.beat(r, t);
            beaters.push_back(r);
          }
        }
        const bool suspect = !det.suspects(t).empty();
        const bool all_beat =
            static_cast<int>(beaters.size()) == procs - 1;
        // go: everyone beat, step. recover: the detector fired,
        // abandon. Otherwise hold this round (a beat is missing but
        // not yet damning) — the survivors idle, exactly like being
        // blocked in a halo exchange.
        const double verdict = suspect      ? kVerdictRecover
                               : all_beat   ? kVerdictGo
                                            : 1 /*hold*/;
        for (int r : beaters) {
          comm.send(r, kVerdictTag, std::span(&verdict, 1));
        }
        ++round;
        if (verdict == kVerdictRecover) {
          check::MutexLock lk(m);
          out.crashed = true;
          return;
        }
        if (verdict == kVerdictGo) {
          s.step();
          ++done;
        }
      }
    } else {
      while (done < nsteps) {
        if (victim && done == crash_after) return;  // fail-stop
        const double beat = static_cast<double>(rank);
        if (!link.send(0, kBeatTag, std::span(&beat, 1))) return;
        const double verdict = comm.recv(0, kVerdictTag).data.at(0);
        if (verdict == kVerdictRecover) return;
        if (verdict == kVerdictGo) {
          s.step();
          ++done;
        }
      }
    }

    auto gathered = s.gather();
    if (gathered) {
      check::MutexLock lk(m);
      out.state = std::move(*gathered);
      out.time = s.time();
      out.steps = s.steps_taken();
    }
  });
  return out;
}

std::string checkpoint_path(const std::string& dir) {
  // Unique per (process, call): the restart path reads this file back,
  // so concurrent drivers — e.g. parallel test runners sharing /tmp —
  // must never clobber each other's durable state.
  static std::atomic<unsigned> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/nsp_ckpt_%ld_%u.bin",
                static_cast<long>(::getpid()), counter.fetch_add(1));
  return dir + buf;
}

}  // namespace

RecoveryOutcome run_with_recovery(const core::SolverConfig& cfg, int nprocs,
                                  int nsteps, const RecoveryOptions& opts) {
  if (nprocs < 2) {
    throw std::invalid_argument(
        "run_with_recovery: need at least 2 ranks to lose one");
  }
  if (opts.checkpoint_interval <= 0) {
    throw std::invalid_argument("run_with_recovery: interval must be > 0");
  }
  if (opts.crash_step >= 0 && opts.crash_step >= nsteps) {
    throw std::invalid_argument("run_with_recovery: crash_step out of range");
  }

  RecoveryOutcome out;
  const std::string path = checkpoint_path(opts.dir);

  // The last durable state. Null = "restart from initial conditions"
  // (step 0 needs no file: initialize() regenerates it exactly).
  core::StateField ckpt_state;
  io::SnapshotInfo ckpt_info;
  bool have_ckpt = false;

  int procs = nprocs;
  int step = 0;           // global steps durably completed
  bool crash_pending = opts.crash_step >= 0;

  while (step < nsteps) {
    const int next_stop = std::min(
        nsteps, (step / opts.checkpoint_interval + 1) *
                    opts.checkpoint_interval);
    const core::StateField* from = have_ckpt ? &ckpt_state : nullptr;
    // The crash script only tells the victim when to die; everyone
    // else finds out through the heartbeat protocol inside the
    // segment.
    const int crash_after = crash_pending && opts.crash_step < next_stop
                                ? opts.crash_step - step
                                : -1;

    SegmentResult seg =
        run_segment(cfg, procs, from, ckpt_info.time, ckpt_info.steps,
                    next_stop - step, crash_after, opts);
    if (seg.crashed) {
      // The detector flagged the victim: the survivors' partial work
      // (everything since the last durable state) is discarded and
      // recomputed after re-decomposition.
      out.wasted_steps += crash_after;
      out.restarts += 1;
      out.detections += 1;
      crash_pending = false;
      procs -= 1;
      if (procs < 1) {
        throw std::runtime_error("run_with_recovery: no survivors");
      }
      // Reload the checkpoint from disk — the io path is load-bearing.
      if (have_ckpt) {
        core::StateField reread;
        io::SnapshotInfo info;
        if (!io::read_snapshot(path, reread, info)) {
          throw std::runtime_error(
              "run_with_recovery: cannot read checkpoint " + path);
        }
        NSP_CHECK(info.steps == ckpt_info.steps, "fault.recovery.ckpt_steps");
        ckpt_state = std::move(reread);
        ckpt_info = info;
      }
      continue;  // re-decomposed onto the survivors; redo the segment
    }
    step = next_stop;
    if (step < nsteps) {
      io::SnapshotInfo info;
      info.ni = cfg.grid.ni;
      info.nj = cfg.grid.nj;
      info.steps = seg.steps;
      info.time = seg.time;
      info.viscous = cfg.viscous;
      if (!io::write_snapshot(path, seg.state, info)) {
        throw std::runtime_error(
            "run_with_recovery: cannot write checkpoint " + path);
      }
      out.checkpoints += 1;
      ckpt_state = std::move(seg.state);
      ckpt_info = info;
      have_ckpt = true;
    } else {
      out.final_state = std::move(seg.state);
    }
  }

  if (!opts.keep_files) std::remove(path.c_str());
  out.final_procs = procs;
  out.state_hash = state_hash(out.final_state);
  return out;
}

}  // namespace nsp::fault
