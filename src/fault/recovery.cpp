#include "fault/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

#include "check/check.hpp"
#include "check/trace.hpp"
#include "io/snapshot.hpp"
#include "mp/comm.hpp"
#include "par/decomposition.hpp"
#include "par/subdomain_solver.hpp"
#include "sim/rng.hpp"

namespace nsp::fault {

// ------------------------------------------------------ timeline model

TimelineResult simulate_timeline(const FaultSpec& spec,
                                 const TimelineInputs& inputs,
                                 std::uint64_t seed) {
  if (inputs.steps <= 0 || inputs.nprocs <= 0 || !inputs.step_time_s) {
    throw std::invalid_argument("simulate_timeline: bad inputs");
  }
  TimelineResult out;
  // step_time_s typically runs a full DES replay per processor count;
  // memoize so repeated rollbacks at the same width are free.
  std::map<int, double> step_cache;
  const auto step_time = [&](int procs) {
    auto it = step_cache.find(procs);
    if (it == step_cache.end()) {
      it = step_cache.emplace(procs, inputs.step_time_s(procs)).first;
    }
    return it->second;
  };

  out.fault_free_s =
      static_cast<double>(inputs.steps) * step_time(inputs.nprocs);

  const int floor_procs = std::max(spec.min_procs,
                                   inputs.decomposition_min_procs);
  const int k = spec.checkpoint_interval_steps;
  const double rate = spec.enabled ? spec.crash_rate_per_hour : 0.0;

  sim::Rng rng = sim::Rng::stream(seed, "fault.crash");
  int procs = inputs.nprocs;
  double t = 0;             // simulated seconds elapsed
  int step = 0;             // next application step to run
  double t_durable = 0;     // when the last durable state was written
  int step_durable = 0;     // the step that durable state is at
  double next_crash = rate > 0
      ? rng.exponential(3600.0 / (rate * procs))
      : std::numeric_limits<double>::infinity();

  while (step < inputs.steps) {
    const double per_step = step_time(procs);
    double seg_end = t + per_step;
    const bool ckpt_due = k > 0 && (step + 1) % k == 0 &&
                          step + 1 < inputs.steps;
    if (ckpt_due) seg_end += spec.checkpoint_cost_s;

    if (next_crash < seg_end) {
      // A node dies mid-step (or mid-checkpoint). Everything since the
      // last durable state is lost; detection and restart stall the
      // machine before the survivors recompute from the checkpoint.
      const int victim = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(procs)));
      out.stats.crashes += 1;
      out.stats.record(FaultKind::NodeCrash, next_crash, victim);
      out.stats.detections += 1;
      out.stats.detect_latency_s += spec.detect_latency_s();
      procs -= 1;
      if (procs < floor_procs) {
        // Not enough survivors to re-decompose: the run is abandoned
        // at the moment the failure is detected.
        t = next_crash + spec.detect_latency_s();
        out.completed = false;
        out.time_to_solution_s = t;
        out.final_procs = procs;
        return out;
      }
      out.stats.restarts += 1;
      const double resume =
          next_crash + spec.detect_latency_s() + spec.restart_cost_s;
      out.stats.wasted_work_s += resume - t_durable;
      t = resume;
      step = step_durable;
      next_crash = t + rng.exponential(3600.0 / (rate * procs));
      continue;
    }

    t = seg_end;
    step += 1;
    if (ckpt_due) {
      out.stats.checkpoints += 1;
      out.stats.checkpoint_overhead_s += spec.checkpoint_cost_s;
      t_durable = t;
      step_durable = step;
    }
  }

  out.completed = true;
  out.time_to_solution_s = t;
  out.final_procs = procs;
  return out;
}

// ------------------------------------------------------- live recovery

std::uint64_t state_hash(const core::StateField& q) {
  check::TraceHash h;
  for (int c = 0; c < core::StateField::kComponents; ++c) {
    for (int i = 0; i < q.ni(); ++i) {
      for (int j = 0; j < q.nj(); ++j) {
        std::uint64_t rec = check::fnv1a(static_cast<std::uint64_t>(c));
        rec = check::fnv1a(static_cast<std::uint64_t>(i), rec);
        rec = check::fnv1a(static_cast<std::uint64_t>(j), rec);
        rec = check::fnv1a(q[c](i, j), rec);
        h.mix(rec);
      }
    }
  }
  return h.digest();
}

namespace {

/// One full-segment SPMD run: restore (or initialize), advance, gather.
struct SegmentResult {
  core::StateField state;
  double time = 0;
  int steps = 0;
};

SegmentResult run_segment(const core::SolverConfig& cfg, int procs,
                          const core::StateField* from, double from_time,
                          int from_steps, int nsteps) {
  mp::Cluster cluster(procs);
  SegmentResult out;
  std::mutex m;
  cluster.run([&](mp::Comm& comm) {
    par::SubdomainSolver s(cfg, comm);
    if (from) {
      s.restore(*from, from_time, from_steps);
    } else {
      s.initialize();
    }
    s.run(nsteps);
    auto gathered = s.gather();
    if (gathered) {
      std::lock_guard<std::mutex> lk(m);
      out.state = std::move(*gathered);
      out.time = s.time();
      out.steps = s.steps_taken();
    }
  });
  return out;
}

std::string checkpoint_path(const std::string& dir) {
  static std::atomic<unsigned> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/nsp_ckpt_%u.bin",
                counter.fetch_add(1));
  return dir + buf;
}

}  // namespace

RecoveryOutcome run_with_recovery(const core::SolverConfig& cfg, int nprocs,
                                  int nsteps, const RecoveryOptions& opts) {
  if (nprocs < 2) {
    throw std::invalid_argument(
        "run_with_recovery: need at least 2 ranks to lose one");
  }
  if (opts.checkpoint_interval <= 0) {
    throw std::invalid_argument("run_with_recovery: interval must be > 0");
  }
  if (opts.crash_step >= 0 && opts.crash_step >= nsteps) {
    throw std::invalid_argument("run_with_recovery: crash_step out of range");
  }

  RecoveryOutcome out;
  const std::string path = checkpoint_path(opts.dir);

  // The last durable state. Null = "restart from initial conditions"
  // (step 0 needs no file: initialize() regenerates it exactly).
  core::StateField ckpt_state;
  io::SnapshotInfo ckpt_info;
  bool have_ckpt = false;

  int procs = nprocs;
  int step = 0;           // global steps durably completed
  bool crash_pending = opts.crash_step >= 0;

  while (step < nsteps) {
    const int next_stop = std::min(
        nsteps, (step / opts.checkpoint_interval + 1) *
                    opts.checkpoint_interval);
    const core::StateField* from = have_ckpt ? &ckpt_state : nullptr;

    if (crash_pending && opts.crash_step < next_stop) {
      // The fail-stop hits mid-segment: run honestly up to the crash
      // point, then throw that work away — it is exactly the work the
      // survivors must redo from the last checkpoint.
      const int lost = opts.crash_step - step;
      if (lost > 0) {
        run_segment(cfg, procs, from, ckpt_info.time, ckpt_info.steps, lost);
      }
      out.wasted_steps += lost;
      out.restarts += 1;
      crash_pending = false;
      procs -= 1;
      if (procs < 1) {
        throw std::runtime_error("run_with_recovery: no survivors");
      }
      // Reload the checkpoint from disk — the io path is load-bearing.
      if (have_ckpt) {
        core::StateField reread;
        io::SnapshotInfo info;
        if (!io::read_snapshot(path, reread, info)) {
          throw std::runtime_error(
              "run_with_recovery: cannot read checkpoint " + path);
        }
        NSP_CHECK(info.steps == ckpt_info.steps, "fault.recovery.ckpt_steps");
        ckpt_state = std::move(reread);
        ckpt_info = info;
      }
      continue;  // re-decomposed onto the survivors; redo the segment
    }

    SegmentResult seg = run_segment(cfg, procs, from, ckpt_info.time,
                                    ckpt_info.steps, next_stop - step);
    step = next_stop;
    if (step < nsteps) {
      io::SnapshotInfo info;
      info.ni = cfg.grid.ni;
      info.nj = cfg.grid.nj;
      info.steps = seg.steps;
      info.time = seg.time;
      info.viscous = cfg.viscous;
      if (!io::write_snapshot(path, seg.state, info)) {
        throw std::runtime_error(
            "run_with_recovery: cannot write checkpoint " + path);
      }
      out.checkpoints += 1;
      ckpt_state = std::move(seg.state);
      ckpt_info = info;
      have_ckpt = true;
    } else {
      out.final_state = std::move(seg.state);
    }
  }

  if (!opts.keep_files) std::remove(path.c_str());
  out.final_procs = procs;
  out.state_hash = state_hash(out.final_state);
  return out;
}

}  // namespace nsp::fault
