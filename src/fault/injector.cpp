#include "fault/injector.hpp"

#include <algorithm>
#include "arch/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"


namespace nsp::fault {

Injector::Injector(const FaultSpec& spec, int nprocs, double horizon_s,
                   std::uint64_t seed)
    : spec_(spec),
      schedule_(FaultSchedule::generate(spec, nprocs, horizon_s, seed)),
      msg_rng_(sim::Rng::stream(seed, "fault.msg")) {
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::LinkDegrade) ++stats_.degrade_windows;
    if (e.kind == FaultKind::Straggler) ++stats_.straggler_windows;
    stats_.record(e.kind, e.time, e.node);
  }
}

Injector::Injector(const FaultSpec& spec, FaultSchedule schedule,
                   std::uint64_t seed)
    : spec_(spec),
      schedule_(std::move(schedule)),
      msg_rng_(sim::Rng::stream(seed, "fault.msg")) {
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::LinkDegrade) ++stats_.degrade_windows;
    if (e.kind == FaultKind::Straggler) ++stats_.straggler_windows;
    stats_.record(e.kind, e.time, e.node);
  }
}

std::unique_ptr<arch::NetworkModel> Injector::wrap(
    sim::Simulator& sim, std::unique_ptr<arch::NetworkModel> inner) {
  return std::make_unique<FaultyNetwork>(sim, *this, std::move(inner));
}

FaultyNetwork::FaultyNetwork(sim::Simulator& s, Injector& inj,
                             std::unique_ptr<arch::NetworkModel> inner)
    : arch::NetworkModel(s), inj_(inj), inner_(std::move(inner)) {}

void FaultyNetwork::transmit(int src, int dst, std::size_t bytes,
                             std::function<void()> delivered) {
  count(bytes);
  attempt(src, dst, bytes, 0, std::move(delivered));
}

void FaultyNetwork::launch(int src, int dst, std::size_t bytes,
                           std::function<void()> delivered) {
  // Degrade windows are priced per wire touch: this attempt consults
  // the schedule at its own injection time, so a retransmission that
  // backs off into (or out of) a window pays what the fabric charges
  // *then*, not what it charged when the first attempt was injected.
  const double degrade = inj_.schedule_.degrade_factor(sim_.now());
  if (degrade > 1.0) {
    const double bw = inner_->link_bandwidth_Bps();
    const double hold =
        bw > 0 ? (degrade - 1.0) * static_cast<double>(bytes) / bw : 0.0;
    sim_.after(hold, [this, src, dst, bytes,
                      delivered = std::move(delivered)]() mutable {
      inner_->transmit(src, dst, bytes, std::move(delivered));
    });
    return;
  }
  inner_->transmit(src, dst, bytes, std::move(delivered));
}

void FaultyNetwork::attempt(int src, int dst, std::size_t bytes, int tries,
                            std::function<void()> delivered) {
  const FaultSpec& spec = inj_.spec_;
  FaultStats& stats = inj_.stats_;
  const double now = sim_.now();
  const bool budget_left = tries < spec.max_retries;
  // One uniform draw per attempt partitioned into [drop | corrupt | ok]
  // keeps the stream consumption independent of which fault fires.
  const double u = inj_.msg_rng_.uniform();
  if (budget_left && u < spec.drop_prob) {
    // Lost on the wire: the sender's timeout fires after the backed-off
    // RTO and it retransmits. Nothing crossed the network.
    ++stats.drops;
    ++stats.retransmits;
    stats.record(FaultKind::LinkDrop, now, src);
    const double rto = spec.rto_s * static_cast<double>(1u << std::min(tries, 20));
    sim_.after(rto, [this, src, dst, bytes, tries,
                     delivered = std::move(delivered)]() mutable {
      attempt(src, dst, bytes, tries + 1, std::move(delivered));
    });
    return;
  }
  if (budget_left && u < spec.drop_prob + spec.corrupt_prob) {
    // Bad checksum: the payload pays its full transmission time, the
    // receiver rejects it, and the sender retransmits an RTO later.
    ++stats.corruptions;
    ++stats.retransmits;
    stats.record(FaultKind::MsgCorrupt, now, src);
    const double rto = spec.rto_s * static_cast<double>(1u << std::min(tries, 20));
    launch(src, dst, bytes,
           [this, src, dst, bytes, tries, rto,
            delivered = std::move(delivered)]() mutable {
             sim_.after(rto, [this, src, dst, bytes, tries,
                              delivered = std::move(delivered)]() mutable {
               attempt(src, dst, bytes, tries + 1, std::move(delivered));
             });
           });
    return;
  }
  if (!budget_left && u < spec.drop_prob + spec.corrupt_prob) {
    // Retransmission budget exhausted: record the give-up and force the
    // message through so the replay cannot wedge. (A real system would
    // have escalated to the crash detector; the recovery timeline model
    // accounts for that path.)
    ++stats.give_ups;
  }
  launch(src, dst, bytes, std::move(delivered));
}

}  // namespace nsp::fault
