// nsp::fault — deterministic fault injection for the platform laboratory.
//
// The paper's headline platform (the LACE cluster on shared Ethernet,
// FDDI, and ATM) was exactly the kind of environment where nodes drop,
// links stall, and stragglers dominate time-to-solution. This subsystem
// lets the reproduction inject that misbehaviour *deterministically*:
// every fault is drawn from a dedicated sim::Rng sub-stream (see
// sim::stream_seed), so a fault-free run is byte-identical to a build
// without the subsystem, and the same (spec, seed) always produces the
// same fault timeline regardless of engine thread count.
//
// Layers:
//   fault.hpp     FaultSpec (what can go wrong, at which rates),
//                 FaultSchedule (the drawn timeline), FaultStats
//                 (counters + an order-independent timeline digest)
//   injector.hpp  DES-side injection: a NetworkModel decorator that
//                 drops/corrupts/delays messages with bounded
//                 retransmission, plus straggler compute dilation
//   detect.hpp    failure detection: the heartbeat crash detector, a
//                 wire-priced heartbeat ring over arch::NetworkModel,
//                 and a reliable (ack + retry + backoff) channel over
//                 mp::Comm
//   recovery.hpp  checkpoint/restart: the DES crash/recovery lifetime
//                 walk (simulate_timeline_des), the analytic timeline
//                 cross-check, platform-derived checkpoint cost, and
//                 the detector-driven live re-decomposition driver
//                 over par::SubdomainSolver + io::snapshot
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/trace.hpp"

namespace nsp::fault {

/// Everything the injector can do to a run.
enum class FaultKind {
  NodeCrash,    ///< a node dies permanently (fail-stop)
  LinkDrop,     ///< a message is lost in the network
  MsgCorrupt,   ///< a message arrives with a bad checksum
  LinkDegrade,  ///< the fabric slows by a factor for a window
  Straggler,    ///< one node computes slower for a window
};

std::string to_string(FaultKind k);

/// One scheduled or observed fault occurrence.
struct FaultEvent {
  FaultKind kind = FaultKind::LinkDrop;
  double time = 0;     ///< simulated seconds
  int node = -1;       ///< affected rank (-1 = whole fabric)
  double duration = 0; ///< window length (degrade/straggler)
  double factor = 1;   ///< slowdown factor (degrade/straggler)
};

/// Fault model configuration. Rates are per simulated hour; message
/// probabilities are per transmission attempt. Default-constructed
/// specs are disabled and cost nothing.
struct FaultSpec {
  bool enabled = false;

  // ---- injection -------------------------------------------------------
  double crash_rate_per_hour = 0;   ///< per-node fail-stop rate
  double drop_prob = 0;             ///< P(message lost) per attempt
  double corrupt_prob = 0;          ///< P(bad checksum) per attempt
  double degrade_rate_per_hour = 0; ///< fabric-wide slowdown windows
  double degrade_duration_s = 30;
  double degrade_factor = 4;
  double straggler_rate_per_hour = 0; ///< per-node slowdown windows
  double straggler_duration_s = 30;
  double straggler_factor = 3;

  // ---- detection -------------------------------------------------------
  double heartbeat_period_s = 1.0; ///< beat interval of the crash detector
  int heartbeat_misses = 3;        ///< missed beats before suspicion
  int heartbeat_bytes = 64;        ///< wire size of one heartbeat frame
  double rto_s = 50e-3;            ///< initial retransmit timeout
  int max_retries = 10;            ///< bounded retransmission

  // ---- recovery --------------------------------------------------------
  int checkpoint_interval_steps = 0; ///< 0 = no checkpointing
  /// Coordinated checkpoint cost per write. 0 (the default) means
  /// "derive from the platform": gathered state bytes over the
  /// platform's io_bandwidth_Bps plus io_latency_s (see
  /// fault::platform_checkpoint_cost_s). A positive value is a flat
  /// override for model studies that want the knob.
  double checkpoint_cost_s = 0;
  double restart_cost_s = 5.0;       ///< reload + re-decompose + respawn
  int min_procs = 1;                 ///< below this the run is abandoned

  /// Worst-case crash-detection latency of the heartbeat detector in
  /// logical time (period x misses). The DES observes the *actual*
  /// latency, which adds the wire cost of the surviving beats.
  double detect_latency_s() const {
    return heartbeat_period_s * heartbeat_misses;
  }

  /// Canonical short form, e.g. "crash=0.5,drop=0.01,ckpt=100". Stable
  /// across runs — it is what Scenario folds into its cache key. A
  /// disabled spec stringifies to "".
  std::string str() const;

  /// Parses the str() form (the CLI's --faults argument). Unknown keys
  /// throw std::invalid_argument. An empty spec parses to a disabled
  /// FaultSpec. Keys: crash, drop, corrupt, degrade, degrade_s,
  /// degrade_x, straggle, straggle_s, straggle_x, hb, hb_miss,
  /// hb_bytes, rto, retries, ckpt, ckpt_s, restart_s, min_procs.
  static FaultSpec parse(const std::string& spec);
};

bool operator==(const FaultSpec& a, const FaultSpec& b);
inline bool operator!=(const FaultSpec& a, const FaultSpec& b) {
  return !(a == b);
}

/// The drawn fault timeline: window events (degrade/straggler) over a
/// fixed horizon, sorted by (time, node, kind). Crash times are drawn
/// lazily by the recovery timeline model (the horizon of a run with
/// restarts is not known up front); per-message drop/corrupt draws
/// happen at transmission time in the injector. All three consume
/// distinct named sub-streams of the same base seed.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// Events of `kind` affecting `node` (or the whole fabric), sorted.
  std::vector<FaultEvent> windows(FaultKind kind, int node) const;

  /// Multiplicative slowdown of `node`'s compute at time t (1 = none).
  double compute_factor(int node, double t) const;

  /// Multiplicative slowdown of the fabric at time t (1 = none).
  double degrade_factor(double t) const;

  /// Draws the window events for `nprocs` ranks over [0, horizon_s)
  /// from the "fault.windows" sub-stream of `seed`.
  static FaultSchedule generate(const FaultSpec& spec, int nprocs,
                                double horizon_s, std::uint64_t seed);
};

/// Counters plus an order-independent digest of the fault timeline.
/// The digest is what exec::audit compares between a 1-thread and an
/// N-thread engine run: equal digests mean the two runs injected,
/// detected, and recovered from the exact same faults at the exact
/// same simulated times.
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t give_ups = 0; ///< retransmission budget exhausted
  std::uint64_t degrade_windows = 0;
  std::uint64_t straggler_windows = 0;
  std::uint64_t heartbeats = 0; ///< beats priced on the wire
  std::uint64_t detections = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restarts = 0;
  double detect_latency_s = 0;      ///< summed over detections
  double wasted_work_s = 0;         ///< recomputed + stalled time
  double checkpoint_overhead_s = 0; ///< time spent writing checkpoints

  /// Folds one injected/detected/recovered occurrence into the
  /// timeline digest (kind, exact time bits, node).
  void record(FaultKind kind, double time, int node);

  /// The timeline digest (order-independent; see check::TraceHash).
  std::uint64_t timeline_digest() const { return timeline_.digest(); }
  std::uint64_t timeline_events() const { return timeline_.count(); }

  void merge(const FaultStats& other);

 private:
  check::TraceHash timeline_;
};

}  // namespace nsp::fault
