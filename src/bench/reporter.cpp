#include "bench/reporter.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "check/check.hpp"

namespace nsp::bench {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void number(std::ostringstream& os, double v) {
  // Fixed notation with enough digits for perf comparisons; JSON has no
  // notion of NaN/Inf, so a failed measurement is clamped to 0.
  if (!(v == v) || v > 1e300 || v < -1e300) v = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

Reporter::Reporter(std::string benchmark_name)
    : name_(std::move(benchmark_name)) {}

void Reporter::add(BenchEntry e) {
  NSP_CHECK(!e.name.empty(), "bench.reporter.entry_name");
  entries_.push_back(std::move(e));
}

void Reporter::add_with_speedup(BenchEntry e, const std::string& baseline_name,
                                double baseline_ms) {
  e.baseline = baseline_name;
  e.speedup = e.ms_per_step > 0 ? baseline_ms / e.ms_per_step : 0;
  add(std::move(e));
}

std::string Reporter::json() const {
  std::ostringstream os;
  os << "{\n  \"benchmark\": \"" << escape(name_) << "\",\n"
     << "  \"schema_version\": 1,\n  \"entries\": [";
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const BenchEntry& e = entries_[k];
    os << (k ? ",\n" : "\n") << "    {\"name\": \"" << escape(e.name)
       << "\", \"variant\": \"" << escape(e.variant) << "\",\n"
       << "     \"grid\": {\"ni\": " << e.ni << ", \"nj\": " << e.nj
       << "},\n     \"ms_per_step\": ";
    number(os, e.ms_per_step);
    os << ", \"gflops\": ";
    number(os, e.gflops);
    os << ", \"bytes_per_flop\": ";
    number(os, e.bytes_per_flop);
    os << ",\n     \"speedup\": ";
    number(os, e.speedup);
    os << ", \"baseline\": \"" << escape(e.baseline) << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool Reporter::write_json(const std::string& path) const {
  if (entries_.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace nsp::bench
