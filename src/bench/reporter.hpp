// Machine-readable benchmark reporting.
//
// Every perf harness that backs a number quoted in docs/PERF.md records
// its measurements through a Reporter, which writes one BENCH_*.json
// artifact per harness. The schema is deliberately small and stable —
// CI's perf-smoke job validates it and the committed files in results/
// form the repo's recorded perf trajectory, so a regression shows up as
// a diff, not an anecdote.
//
// Schema (schema_version 1):
//   {
//     "benchmark": "<harness name>",
//     "schema_version": 1,
//     "entries": [
//       { "name": "...", "variant": "...",
//         "grid": {"ni": N, "nj": N},
//         "ms_per_step": t, "gflops": g, "bytes_per_flop": b,
//         "speedup": s, "baseline": "<name of the 1.0x entry>" }, ...
//     ]
//   }
//
// Fields that do not apply to an entry are written as 0 (numbers) or ""
// (strings) — present but empty, so consumers never need existence
// checks.
#pragma once

#include <string>
#include <vector>

namespace nsp::bench {

/// One measured (or modelled) configuration.
struct BenchEntry {
  std::string name;     ///< unique within the harness, e.g. "step/V5/tiled"
  std::string variant;  ///< axis value, e.g. "tiled" / "reference"
  int ni = 0;           ///< grid extent (0 when not grid-shaped)
  int nj = 0;
  double ms_per_step = 0;    ///< wall time per step/iteration
  double gflops = 0;         ///< achieved GF/s (0 = not measured)
  double bytes_per_flop = 0; ///< arithmetic-intensity denominator
  double speedup = 0;        ///< vs `baseline` (0 = no baseline)
  std::string baseline;      ///< name of the entry this speedup is against
};

/// Collects BenchEntry records and writes the BENCH_*.json artifact.
class Reporter {
 public:
  explicit Reporter(std::string benchmark_name);

  void add(BenchEntry e);

  /// Convenience: derived entry with speedup = baseline_ms / ms.
  void add_with_speedup(BenchEntry e, const std::string& baseline_name,
                        double baseline_ms);

  std::size_t size() const { return entries_.size(); }
  const std::vector<BenchEntry>& entries() const { return entries_; }

  /// The artifact body (pretty-printed, trailing newline).
  std::string json() const;

  /// Writes json() to `path` (as given — callers route through
  /// io::artifact_path). Returns false on I/O failure. Refuses to write
  /// an empty report: an artifact with no entries means the harness
  /// measured nothing, and CI treats that as a failure.
  bool write_json(const std::string& path) const;

 private:
  std::string name_;
  std::vector<BenchEntry> entries_;
};

}  // namespace nsp::bench
