// Order-independent execution tracing for determinism audits.
//
// A TraceHash accumulates FNV-1a record hashes with modular addition,
// so the digest of a set of records does not depend on the order in
// which threads contribute them — exactly what a work-stealing pool
// needs to prove that a parallel sweep computed the same cells, bit for
// bit, as the serial reference run. Each record is hashed on its own
// (strings by bytes, doubles by bit pattern, so -0.0 != +0.0 and every
// NaN payload is distinguished) and then folded into the accumulator.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace nsp::check {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over raw bytes, continuing from hash state `h`.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t k = 0; k < n; ++k) {
    h ^= p[k];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t h = kFnvOffsetBasis) {
  return fnv1a(s.data(), s.size(), h);
}

inline std::uint64_t fnv1a(std::uint64_t v,
                           std::uint64_t h = kFnvOffsetBasis) {
  return fnv1a(&v, sizeof(v), h);
}

/// Hashes the exact bit pattern of a double.
inline std::uint64_t fnv1a(double v, std::uint64_t h = kFnvOffsetBasis) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a(bits, h);
}

/// Commutative accumulator of record hashes.
class TraceHash {
 public:
  /// Folds in an already-computed record hash.
  void mix(std::uint64_t record_hash) {
    acc_ += record_hash;
    ++count_;
  }

  /// Hashes one (key, value) record and folds it in.
  void record(std::string_view key, double value) {
    mix(fnv1a(value, fnv1a(key)));
  }
  void record(std::string_view key, std::uint64_t value) {
    mix(fnv1a(value, fnv1a(key)));
  }

  /// Combines another accumulator (associative and commutative).
  void merge(const TraceHash& other) {
    acc_ += other.acc_;
    count_ += other.count_;
  }

  std::uint64_t count() const { return count_; }

  /// Final digest: the accumulated sum re-mixed with the record count,
  /// so an empty trace and a trace of one zero-hash record differ.
  std::uint64_t digest() const { return fnv1a(count_, fnv1a(acc_)); }

 private:
  std::uint64_t acc_ = 0;    ///< modular sum of record hashes
  std::uint64_t count_ = 0;  ///< records contributed
};

}  // namespace nsp::check
