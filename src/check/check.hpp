// nsp::check — the runtime invariant layer.
//
// Every library in the stack states its invariants through the
// NSP_CHECK* macros below. A violated check is counted in a global
// registry (and, for fatal checks, throws), so a run can end with a
// uniform report of everything that went wrong instead of a scatter of
// debug-only asserts. The whole layer compiles away at
// NSP_CHECK_LEVEL=0: each macro expands to ((void)0) and the condition
// is never evaluated, so release builds pay nothing.
//
// Levels (set the NSP_CHECK_LEVEL CMake cache variable, default 1):
//   0  off — zero cost, conditions not evaluated
//   1  cheap invariants on the control path (O(1) per event/step)
//   2  exhaustive — adds per-point scans (finite fields, index range
//      checks in Field2D) that slow the solver by integer factors
//
// Macro severity:
//   NSP_CHECK(cond, id)        error: counted; throws only in
//                              throw-on-error mode (tests)
//   NSP_CHECK_WARN(cond, id)   warning: counted, never throws
//   NSP_CHECK_FATAL(cond, id)  fatal: counted, always throws Violation
//   NSP_CHECK_FINITE(val, id)  error-severity std::isfinite check
//   NSP_CHECK_SLOW(...)        level-2 variants of CHECK / FATAL
//   NSP_CHECK_SLOW_FATAL(...)
//
// The `id` is a stable dotted name ("sim.resource.release_matched")
// used for counter lookup and reporting; keep it unique per site.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "check/thread_safety.hpp"

#ifndef NSP_CHECK_LEVEL
#define NSP_CHECK_LEVEL 1
#endif

namespace nsp::check {

enum class Severity { Warning, Error, Fatal };

std::string_view to_string(Severity s);

/// One static check site: identity plus a violation counter. Sites are
/// defined by the macros as function-local statics, so a site costs one
/// branch when the condition holds and registers itself with the
/// Registry on its first violation.
struct Site {
  const char* id;    ///< stable dotted name, unique per site
  const char* expr;  ///< stringified condition
  const char* file;
  int line;
  Severity severity;
  std::atomic<std::uint64_t> count{0};
  std::atomic<bool> listed{false};  ///< registered with the Registry
};

/// Thrown by fatal checks (and by error checks in throw-on-error mode).
class Violation : public std::runtime_error {
 public:
  explicit Violation(const Site& site);
  const char* id() const { return id_; }

 private:
  const char* id_;
};

/// The process-wide table of violated check sites. Thread-safe.
class Registry {
 public:
  static Registry& instance();

  /// Records one violation of `site`. Throws Violation for Fatal sites,
  /// and for Error sites when throw-on-error mode is enabled.
  void violate(Site& site) NSP_EXCLUDES(mu_);

  /// Total violations across all sites (warnings included).
  std::uint64_t total() const;

  /// Violations of the site(s) with the given id (0 if never violated).
  std::uint64_t count(std::string_view id) const;

  /// Zeroes every counter (sites stay known). For tests.
  void reset();

  /// When enabled, Error-severity violations throw like Fatal ones.
  /// Returns the previous value. Warnings still only count.
  bool set_throw_on_error(bool enabled);
  bool throw_on_error() const;

  /// Every site that has ever been violated (count may be 0 again after
  /// reset()). Pointers are to function-local statics: always valid.
  std::vector<const Site*> sites() const;

 private:
  Registry() = default;
  mutable Mutex mu_;
  std::vector<Site*> sites_ NSP_GUARDED_BY(mu_);
  std::atomic<bool> throw_on_error_{false};
};

/// Slow path taken when a check's condition is false.
void fail(Site& site);

/// Builds a Site prvalue (guaranteed elision: the non-movable aggregate
/// is constructed in place). Exists so the macros below contain no
/// top-level commas outside parentheses — a brace-initializer in the
/// expansion would split the argument lists of enclosing macros like
/// EXPECT_NO_THROW(NSP_CHECK(...)).
inline Site make_site(const char* id, const char* expr, const char* file,
                      int line, Severity sev) {
  return Site{id, expr, file, line, sev, {}, {}};
}

}  // namespace nsp::check

// ---- Macros ------------------------------------------------------------
//
// Evaluation contract (regression-tested in tests/test_check.cpp and
// tests/test_check_level0.cpp; tools/nsp-analyze rule
// nsp-check-discipline flags side-effecting arguments at call sites):
//   * at an enabled level, `cond` is evaluated EXACTLY once;
//   * at a disabled level, `cond` is evaluated ZERO times, but is still
//     parsed and type-checked inside an unevaluated sizeof — a check
//     whose condition stops compiling breaks every build, not just
//     checked ones. (NSP_CHECK_SLOW* are the exception: their
//     conditions may call level-2-only helpers, so below level 2 they
//     are swallowed whole.)

#define NSP_CHECK_SITE_(cond, id_str, sev)                                 \
  do {                                                                     \
    if (!(cond)) { /* cond evaluated exactly once, only here */            \
      static ::nsp::check::Site nsp_check_site_ =                          \
          ::nsp::check::make_site(id_str, #cond, __FILE__, __LINE__, sev); \
      ::nsp::check::fail(nsp_check_site_);                                 \
    }                                                                      \
  } while (0)

// Unevaluated-context expansion for disabled levels: zero runtime cost,
// zero evaluations, but `cond` must still compile.
#define NSP_CHECK_UNEVALUATED_(cond) ((void)sizeof(!(cond)))

#if NSP_CHECK_LEVEL >= 1
#define NSP_CHECK(cond, id) \
  NSP_CHECK_SITE_(cond, id, ::nsp::check::Severity::Error)
#define NSP_CHECK_WARN(cond, id) \
  NSP_CHECK_SITE_(cond, id, ::nsp::check::Severity::Warning)
#define NSP_CHECK_FATAL(cond, id) \
  NSP_CHECK_SITE_(cond, id, ::nsp::check::Severity::Fatal)
#define NSP_CHECK_FINITE(val, id) \
  NSP_CHECK_SITE_(std::isfinite(val), id, ::nsp::check::Severity::Error)
#else
#define NSP_CHECK(cond, id) NSP_CHECK_UNEVALUATED_(cond)
#define NSP_CHECK_WARN(cond, id) NSP_CHECK_UNEVALUATED_(cond)
#define NSP_CHECK_FATAL(cond, id) NSP_CHECK_UNEVALUATED_(cond)
#define NSP_CHECK_FINITE(val, id) NSP_CHECK_UNEVALUATED_(std::isfinite(val))
#endif

#if NSP_CHECK_LEVEL >= 2
#define NSP_CHECK_SLOW(cond, id) NSP_CHECK(cond, id)
#define NSP_CHECK_SLOW_FATAL(cond, id) NSP_CHECK_FATAL(cond, id)
#else
// Fully swallowed (not even parsed): slow-check conditions may name
// helpers that only exist under #if NSP_CHECK_LEVEL >= 2.
#define NSP_CHECK_SLOW(...) ((void)0)
#define NSP_CHECK_SLOW_FATAL(...) ((void)0)
#endif
