// nsp::check — Clang thread-safety annotations and annotated lock types.
//
// The concurrent core (exec::Engine and its work-stealing pool, the mp
// mailboxes, the fault detector plans, the check Registry) states its
// lock discipline through the NSP_* macros below, which expand to
// Clang's thread-safety-analysis attributes under Clang and to nothing
// elsewhere. A Clang build with -Wthread-safety (CI promotes it to
// -Werror=thread-safety) then proves at compile time that every guarded
// member is only touched with its mutex held — the static complement of
// the TSan jobs, which can only see the interleavings a run happens to
// produce.
//
// libstdc++'s std::mutex is not an annotated capability, so the
// analysis cannot see through std::lock_guard<std::mutex>. The wrappers
// here — check::Mutex, check::MutexLock, check::CondVar — carry the
// attributes themselves and delegate to the std primitives (zero
// overhead for Mutex/MutexLock; CondVar is a condition_variable_any so
// it can wait on the annotated Mutex directly). Use them for any state
// shared between threads:
//
//   class Account {
//     check::Mutex mu_;
//     double balance_ NSP_GUARDED_BY(mu_) = 0;
//    public:
//     void deposit(double v) NSP_EXCLUDES(mu_) {
//       check::MutexLock lock(mu_);
//       balance_ += v;   // OK: mu_ held
//     }
//   };
//
// Annotation glossary (see docs/CHECKING.md for the full catalog):
//   NSP_GUARDED_BY(mu)   member may only be read/written with mu held
//   NSP_REQUIRES(mu)     caller must hold mu to call this function
//   NSP_ACQUIRE(mu)      function acquires mu and does not release it
//   NSP_RELEASE(mu)      function releases mu
//   NSP_EXCLUDES(mu)     caller must NOT hold mu (the function locks it)
//   NSP_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify why!)
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define NSP_TS_ATTR_(x) __attribute__((x))
#else
#define NSP_TS_ATTR_(x)  // no-op off-Clang (gcc, MSVC)
#endif

// Type annotations.
#define NSP_CAPABILITY(name) NSP_TS_ATTR_(capability(name))
#define NSP_SCOPED_CAPABILITY NSP_TS_ATTR_(scoped_lockable)

// Data-member annotations.
#define NSP_GUARDED_BY(x) NSP_TS_ATTR_(guarded_by(x))
#define NSP_PT_GUARDED_BY(x) NSP_TS_ATTR_(pt_guarded_by(x))

// Function annotations.
#define NSP_REQUIRES(...) NSP_TS_ATTR_(requires_capability(__VA_ARGS__))
#define NSP_ACQUIRE(...) NSP_TS_ATTR_(acquire_capability(__VA_ARGS__))
#define NSP_RELEASE(...) NSP_TS_ATTR_(release_capability(__VA_ARGS__))
#define NSP_TRY_ACQUIRE(...) NSP_TS_ATTR_(try_acquire_capability(__VA_ARGS__))
#define NSP_EXCLUDES(...) NSP_TS_ATTR_(locks_excluded(__VA_ARGS__))
#define NSP_ASSERT_CAPABILITY(x) NSP_TS_ATTR_(assert_capability(x))
#define NSP_RETURN_CAPABILITY(x) NSP_TS_ATTR_(lock_returned(x))
#define NSP_NO_THREAD_SAFETY_ANALYSIS NSP_TS_ATTR_(no_thread_safety_analysis)

namespace nsp::check {

/// std::mutex as an annotated capability the analysis can track.
class NSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NSP_ACQUIRE() { mu_.lock(); }
  void unlock() NSP_RELEASE() { mu_.unlock(); }
  bool try_lock() NSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over check::Mutex (the annotated std::lock_guard).
/// Supports explicit unlock()/lock() so a holder can drop the lock
/// around a long computation — the work-stealing pool's worker loop —
/// with the analysis tracking the held/released state across the gap.
class NSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NSP_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() NSP_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() NSP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() NSP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable that waits on the annotated Mutex directly. The
/// wait functions carry NSP_REQUIRES(mu): waiting without the lock held
/// is a compile error under the analysis, exactly mirroring the runtime
/// precondition. Prefer an explicit `while (!predicate) cv.wait(mu);`
/// loop over the predicate overloads of std::condition_variable — the
/// loop body is then analyzed in the scope that visibly holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, waits, reacquires. Spurious wakeups
  /// happen: always re-test the predicate.
  void wait(Mutex& mu) NSP_REQUIRES(mu) { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      NSP_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      NSP_REQUIRES(mu) {
    return cv_.wait_for(mu, dur);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nsp::check
