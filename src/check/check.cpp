#include "check/check.hpp"

#include <algorithm>

namespace nsp::check {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal";
  }
  return "?";
}

namespace {
std::string describe(const Site& site) {
  std::string msg = "NSP_CHECK violated [";
  msg += site.id;
  msg += "] ";
  msg += site.expr;
  msg += " at ";
  msg += site.file;
  msg += ":";
  msg += std::to_string(site.line);
  return msg;
}
}  // namespace

Violation::Violation(const Site& site)
    : std::runtime_error(describe(site)), id_(site.id) {}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::violate(Site& site) {
  site.count.fetch_add(1, std::memory_order_relaxed);
  if (!site.listed.exchange(true, std::memory_order_acq_rel)) {
    MutexLock lock(mu_);
    sites_.push_back(&site);
  }
  if (site.severity == Severity::Fatal ||
      (site.severity == Severity::Error &&
       throw_on_error_.load(std::memory_order_relaxed))) {
    throw Violation(site);
  }
}

std::uint64_t Registry::total() const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const Site* s : sites_) n += s->count.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Registry::count(std::string_view id) const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const Site* s : sites_) {
    if (id == s->id) n += s->count.load(std::memory_order_relaxed);
  }
  return n;
}

void Registry::reset() {
  MutexLock lock(mu_);
  for (Site* s : sites_) s->count.store(0, std::memory_order_relaxed);
}

bool Registry::set_throw_on_error(bool enabled) {
  return throw_on_error_.exchange(enabled, std::memory_order_relaxed);
}

bool Registry::throw_on_error() const {
  return throw_on_error_.load(std::memory_order_relaxed);
}

std::vector<const Site*> Registry::sites() const {
  MutexLock lock(mu_);
  std::vector<const Site*> out(sites_.begin(), sites_.end());
  std::sort(out.begin(), out.end(), [](const Site* a, const Site* b) {
    const int c = std::string_view(a->id).compare(b->id);
    if (c != 0) return c < 0;
    return a->line < b->line;
  });
  return out;
}

void fail(Site& site) { Registry::instance().violate(site); }

}  // namespace nsp::check
