// nsp::check::Report — a serializable snapshot of the check registry.
//
// snapshot() captures every violated site with its current count; the
// report renders as an io::Table for terminals and as CSV/JSON records
// for artifacts, matching the rest of the laboratory's output formats.
//
// Implemented inline on top of io/table.hpp so nsp_check itself stays
// dependency-free (io uses the check macros, check's report uses io's
// formatting — keeping this header-only breaks the library cycle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "io/table.hpp"

namespace nsp::check {

struct Report {
  struct Entry {
    std::string id;
    std::string expr;
    std::string file;
    int line = 0;
    Severity severity = Severity::Error;
    std::uint64_t count = 0;
  };

  /// Violated sites sorted by id (entries with count 0 — violated once
  /// but reset since — are dropped at snapshot time).
  std::vector<Entry> entries;

  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const Entry& e : entries) n += e.count;
    return n;
  }

  bool clean() const { return entries.empty(); }

  /// Human-readable table ("all invariants held" when clean).
  std::string str() const {
    if (clean()) return "check: all invariants held\n";
    io::Table t({"check", "severity", "count", "condition", "site"});
    t.title("Invariant violations");
    for (const Entry& e : entries) {
      t.row({e.id, std::string(to_string(e.severity)), std::to_string(e.count),
             e.expr, e.file + ":" + std::to_string(e.line)});
    }
    return t.str();
  }

  /// CSV with one row per violated site (header included).
  std::string to_csv() const {
    std::string out = "check,severity,count,condition,site\n";
    for (const Entry& e : entries) {
      out += io::csv_escape(e.id) + ',' + std::string(to_string(e.severity)) +
             ',' + std::to_string(e.count) + ',' + io::csv_escape(e.expr) +
             ',' + io::csv_escape(e.file + ":" + std::to_string(e.line)) +
             '\n';
    }
    return out;
  }

  /// Deterministic JSON array of violation objects.
  std::string to_json() const {
    std::vector<io::JsonRecord> records;
    records.reserve(entries.size());
    for (const Entry& e : entries) {
      records.push_back(io::JsonRecord{
          {"check", '"' + io::json_escape(e.id) + '"'},
          {"severity", '"' + std::string(to_string(e.severity)) + '"'},
          {"count", std::to_string(e.count)},
          {"condition", '"' + io::json_escape(e.expr) + '"'},
          {"site",
           '"' + io::json_escape(e.file + ":" + std::to_string(e.line)) + '"'},
      });
    }
    return io::json_records(records);
  }
};

/// Captures the current registry state.
inline Report snapshot() {
  Report rep;
  for (const Site* s : Registry::instance().sites()) {
    const std::uint64_t n = s->count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    rep.entries.push_back(
        Report::Entry{s->id, s->expr, s->file, s->line, s->severity, n});
  }
  return rep;
}

}  // namespace nsp::check
