#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "check/thread_safety.hpp"
#include "exec/engine.hpp"
#include "io/table.hpp"

namespace nsp::serve {

Server::Server(ServerOptions opts)
    : opts_(opts),
      engine_(exec::EngineOptions{opts.engine_threads, /*cache=*/true}) {
  if (!opts_.store_dir.empty()) {
    store_ = std::make_unique<io::ResultStore>(opts_.store_dir,
                                               opts_.store_max_bytes);
  }
  if (opts_.auto_pump) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

Server::~Server() {
  {
    check::MutexLock lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Server::dispatcher_loop() {
  for (;;) {
    {
      check::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.wait(mu_);
      if (stopping_ && queue_.empty()) return;
    }
    pump();
  }
}

Server::Ticket Server::immediate(const std::string& response) {
  // Caller holds mu_ via its own MutexLock; stats were updated there.
  Ticket t;
  t.immediate = true;
  t.response = response;
  return t;
}

Server::Ticket Server::submit(const std::string& line) {
  Request req;
  std::string err_code, err_msg;
  const bool parsed = parse_request(line, &req, &err_code, &err_msg);

  check::MutexLock lock(mu_);
  ++stats_.received;
  if (!parsed) {
    ++stats_.errors;
    return immediate(error_response(req.id, err_code, err_msg));
  }
  if (req.op == Op::Stats) {
    ++stats_.ok;
    return immediate(stats_json_locked(req.id));
  }
  if (req.op == Op::Shutdown) {
    shutdown_ = true;
    ++stats_.ok;
    work_cv_.notify_all();
    return immediate(shutdown_response(req.id));
  }
  if (shutdown_) {
    ++stats_.errors;
    return immediate(error_response(req.id, code::kShuttingDown,
                                    "server is draining"));
  }
  if (opts_.quota_burst > 0) {
    auto [bucket, inserted] =
        quota_.try_emplace(req.client, opts_.quota_burst);
    if (bucket->second < 1.0) {
      ++stats_.quota_denied;
      ++stats_.errors;
      return immediate(
          error_response(req.id, code::kQuota,
                         "client '" + req.client + "' is out of tokens"));
    }
    bucket->second -= 1.0;
  }
  if (queued_waiters_ >= opts_.queue_capacity) {
    ++stats_.shed;
    ++stats_.errors;
    return immediate(error_response(req.id, code::kShed,
                                    "queue is full, retry later"));
  }

  const std::string cache_key = req.scenario.cache_key();
  PendingKey& pending = queue_[cache_key];
  if (!pending.waiters.empty()) ++stats_.dedup_coalesced;
  Ticket t;
  t.id = next_ticket_++;
  pending.waiters.push_back(Waiter{req.id, req.scenario, t.id});
  ++queued_waiters_;
  work_cv_.notify_all();
  return t;
}

std::string Server::wait(const Ticket& t) {
  if (t.immediate) return t.response;
  check::MutexLock lock(mu_);
  while (done_.find(t.id) == done_.end()) done_cv_.wait(mu_);
  auto it = done_.find(t.id);
  std::string response = std::move(it->second);
  done_.erase(it);
  return response;
}

std::string Server::handle(const std::string& line) {
  Ticket t = submit(line);
  return wait(t);
}

bool Server::pump() {
  std::map<std::string, PendingKey> batch;
  {
    check::MutexLock lock(mu_);
    // Quota buckets refill once per dispatch cycle — logical time, so
    // a replayed request trace sees identical accept/deny decisions.
    for (auto& [client, tokens] : quota_) {
      tokens = std::min(opts_.quota_burst,
                        tokens + opts_.quota_tokens_per_tick);
    }
    if (queue_.empty()) return false;
    batch.swap(queue_);
    for (const auto& [key, pending] : batch) {
      queued_waiters_ -= pending.waiters.size();
    }
    ++stats_.batches;
  }

  // Serve what the persistent store already has; collect the rest.
  std::uint64_t store_hits = 0, store_puts = 0, ok = 0, errors = 0;
  std::map<std::string, exec::RunResult> resolved;  // cache_key → base
  std::vector<std::pair<std::string, const PendingKey*>> misses;
  for (const auto& [cache_key, pending] : batch) {
    exec::RunResult base;
    std::string body, err;
    if (store_ && store_->get(cache_key, &body) &&
        parse_result_body(body, &base, &err)) {
      ++store_hits;
      resolved[cache_key] = base;
    } else {
      misses.emplace_back(cache_key, &pending);
    }
  }

  std::map<std::uint64_t, std::string> responses;  // ticket → line
  if (!misses.empty()) {
    std::vector<exec::Scenario> sweep;
    sweep.reserve(misses.size());
    for (const auto& [cache_key, pending] : misses) {
      sweep.push_back(pending->waiters.front().scenario);
    }
    try {
      const exec::ResultSet rs = engine_.run(sweep);
      for (const auto& [cache_key, pending] : misses) {
        const exec::RunResult* r =
            rs.find(pending->waiters.front().scenario.key());
        if (!r) {
          for (const Waiter& w : pending->waiters) {
            responses[w.ticket] = error_response(
                w.id, code::kInternal, "scenario produced no result");
            ++errors;
          }
          continue;
        }
        resolved[cache_key] = *r;
        if (store_) {
          // Persist under the cache-key identity (label stripped): a
          // store entry serves any request with the same content.
          exec::RunResult canonical = *r;
          canonical.key = cache_key;
          canonical.label.clear();
          store_->put(cache_key, result_body(canonical));
          ++store_puts;
        }
      }
    } catch (const std::exception& e) {
      for (const auto& [cache_key, pending] : misses) {
        for (const Waiter& w : pending->waiters) {
          responses[w.ticket] =
              error_response(w.id, code::kInternal, e.what());
          ++errors;
        }
      }
    }
  }

  // Fulfil every waiter, restamping key/label per requesting scenario —
  // coalesced requests may carry different labels than the one that ran.
  for (const auto& [cache_key, pending] : batch) {
    auto it = resolved.find(cache_key);
    if (it == resolved.end()) continue;  // error responses already built
    for (const Waiter& w : pending.waiters) {
      exec::RunResult stamped = it->second;
      stamped.key = w.scenario.key();
      stamped.label = w.scenario.label_text();
      responses[w.ticket] = result_response(w.id, stamped);
      ++ok;
    }
  }

  {
    check::MutexLock lock(mu_);
    stats_.store_hits += store_hits;
    stats_.store_puts += store_puts;
    stats_.ok += ok;
    stats_.errors += errors;
    for (auto& [ticket, response] : responses) {
      done_[ticket] = std::move(response);
    }
    done_cv_.notify_all();
  }
  return true;
}

std::size_t Server::pending() const {
  check::MutexLock lock(mu_);
  return queued_waiters_;
}

bool Server::shutdown_requested() const {
  check::MutexLock lock(mu_);
  return shutdown_;
}

ServeStats Server::stats() const {
  check::MutexLock lock(mu_);
  ServeStats s = stats_;
  s.engine = engine_.counters();
  return s;
}

std::string Server::stats_json_locked(const std::string& id) const {
  const exec::EngineCounters ec = engine_.counters();
  std::ostringstream os;
  os << "{\"id\":\"" << io::json_escape(id)
     << "\",\"ok\":true,\"type\":\"stats\",\"stats\":{"
     << "\"received\":" << stats_.received << ",\"ok\":" << stats_.ok
     << ",\"errors\":" << stats_.errors << ",\"shed\":" << stats_.shed
     << ",\"quota_denied\":" << stats_.quota_denied
     << ",\"dedup_coalesced\":" << stats_.dedup_coalesced
     << ",\"store_hits\":" << stats_.store_hits
     << ",\"store_puts\":" << stats_.store_puts
     << ",\"batches\":" << stats_.batches << ",\"engine\":{"
     << "\"submitted\":" << ec.submitted << ",\"executed\":" << ec.executed
     << ",\"cache_hits\":" << ec.cache_hits
     << ",\"cancelled\":" << ec.cancelled << ",\"stolen\":" << ec.stolen
     << ",\"threads\":" << ec.threads
     << ",\"wall_s\":" << io::format_exact(ec.wall_s)
     << ",\"task_s\":" << io::format_exact(ec.task_s) << "}}}";
  return os.str();
}

std::string Server::stats_response(const std::string& id) const {
  check::MutexLock lock(mu_);
  return stats_json_locked(id);
}

}  // namespace nsp::serve
