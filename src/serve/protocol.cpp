#include "serve/protocol.hpp"

#include <cstdlib>
#include <sstream>

#include "exec/run_result.hpp"
#include "exec/scenario.hpp"
#include "io/json.hpp"
#include "io/table.hpp"

namespace nsp::serve {

bool parse_request(const std::string& line, Request* out,
                   std::string* err_code, std::string* err_msg) {
  *out = Request{};
  io::JsonValue doc;
  std::string parse_err;
  if (!io::json_parse(line, &doc, &parse_err)) {
    *err_code = code::kBadRequest;
    *err_msg = parse_err;
    return false;
  }
  if (!doc.is_object()) {
    *err_code = code::kBadRequest;
    *err_msg = "request must be a JSON object";
    return false;
  }
  // Pull the envelope first so error responses can echo the id even
  // when the payload is bad.
  const io::JsonValue* id = doc.find("id");
  if (id && id->is_string()) out->id = id->text;
  out->client = doc.string_or("client", "");
  if (out->client.empty()) out->client = "anon";

  if (!id || !id->is_string() || id->text.empty()) {
    *err_code = code::kBadRequest;
    *err_msg = "missing request 'id' (non-empty string)";
    return false;
  }
  const std::string op = doc.string_or("op", "run");
  if (op == "run") {
    out->op = Op::Run;
  } else if (op == "stats") {
    out->op = Op::Stats;
    return true;
  } else if (op == "shutdown") {
    out->op = Op::Shutdown;
    return true;
  } else {
    *err_code = code::kBadRequest;
    *err_msg = "unknown op '" + op + "' (run|stats|shutdown)";
    return false;
  }

  const io::JsonValue* scenario = doc.find("scenario");
  if (!scenario) {
    *err_code = code::kBadScenario;
    *err_msg = "run request needs a 'scenario' object";
    return false;
  }
  std::string reason;
  if (!exec::Scenario::from_json(*scenario, &out->scenario, &reason)) {
    *err_code = code::kBadScenario;
    *err_msg = reason;
    return false;
  }
  return true;
}

std::string result_body(const exec::RunResult& r) {
  std::ostringstream os;
  os << "{\"key\":\"" << io::json_escape(r.key) << "\""
     << ",\"label\":\"" << io::json_escape(r.label) << "\""
     << ",\"platform\":\"" << io::json_escape(r.platform) << "\""
     << ",\"nprocs\":" << r.nprocs << ",\"seed\":\"" << r.seed << "\""
     << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : r.metrics) {
    if (!first) os << ',';
    first = false;
    os << '"' << io::json_escape(name) << "\":" << io::format_exact(value);
  }
  os << "}}";
  return os.str();
}

bool parse_result_body(const std::string& body, exec::RunResult* out,
                       std::string* err) {
  *out = exec::RunResult{};
  io::JsonValue doc;
  if (!io::json_parse(body, &doc, err)) return false;
  if (!doc.is_object()) {
    if (err) *err = "result body must be a JSON object";
    return false;
  }
  out->key = doc.string_or("key", "");
  out->label = doc.string_or("label", "");
  out->platform = doc.string_or("platform", "");
  out->nprocs = static_cast<int>(doc.number_or("nprocs", 1));
  out->seed = std::strtoull(doc.string_or("seed", "0").c_str(), nullptr, 10);
  const io::JsonValue* metrics = doc.find("metrics");
  if (metrics && metrics->is_object()) {
    for (const auto& [name, value] : metrics->members) {
      if (!value.is_number()) {
        if (err) *err = "metric '" + name + "' is not a number";
        return false;
      }
      out->metrics.emplace_back(name, value.number);
    }
  }
  return true;
}

std::string result_response(const std::string& id, const exec::RunResult& r) {
  return "{\"id\":\"" + io::json_escape(id) +
         "\",\"ok\":true,\"type\":\"result\",\"result\":" + result_body(r) +
         "}";
}

std::string error_response(const std::string& id, const std::string& code,
                           const std::string& message) {
  return "{\"id\":\"" + io::json_escape(id) +
         "\",\"ok\":false,\"type\":\"error\",\"error\":{\"code\":\"" +
         io::json_escape(code) + "\",\"message\":\"" +
         io::json_escape(message) + "\"}}";
}

std::string shutdown_response(const std::string& id) {
  return "{\"id\":\"" + io::json_escape(id) +
         "\",\"ok\":true,\"type\":\"shutdown\"}";
}

}  // namespace nsp::serve
