// The serving wire protocol: newline-delimited JSON requests and
// responses (one object per line, UTF-8, '\n'-terminated).
//
// This header is the protocol's single source of truth in code; the
// normative prose spec with worked examples is docs/SERVING.md. A
// request names an operation ("run", "stats", "shutdown") plus a
// client-chosen id that is echoed on the response; a "run" request
// carries a Scenario in the exec::Scenario::to_json() wire form.
//
// Responses never include host timing or cache provenance — two runs of
// the same request line are byte-identical, which is what the CI
// serve-smoke job replays for. Provenance (memo hits, store hits, shed
// counts) is observable only through the "stats" operation.
#pragma once

#include <string>

#include "exec/run_result.hpp"
#include "exec/scenario.hpp"

namespace nsp::serve {

/// Operations a request can name.
enum class Op {
  Run,       ///< execute (or memo-serve) a scenario
  Stats,     ///< report server + engine counters
  Shutdown,  ///< stop accepting work; daemon exits when drained
};

/// One parsed request line.
struct Request {
  std::string id;      ///< client-chosen echo token (required)
  std::string client;  ///< quota principal ("" = "anon")
  Op op = Op::Run;
  exec::Scenario scenario;  ///< valid when op == Run
};

/// Structured error codes (the "code" field of error responses).
/// Stable strings — clients dispatch on them; see docs/SERVING.md.
namespace code {
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kBadScenario = "bad-scenario";
inline constexpr const char* kShed = "shed";
inline constexpr const char* kQuota = "quota";
inline constexpr const char* kShuttingDown = "shutting-down";
inline constexpr const char* kInternal = "internal";
}  // namespace code

/// Parses one request line. On failure returns false and fills
/// `err_code` (code::kBadRequest or code::kBadScenario) and a
/// human-readable `err_msg`; the caller still gets `out->id` / `client`
/// when the envelope parsed far enough to carry them, so the error
/// response can echo the id.
bool parse_request(const std::string& line, Request* out,
                   std::string* err_code, std::string* err_msg);

/// The result body: `{"key":…,"label":…,"platform":…,"nprocs":N,
/// "seed":"…","metrics":{…}}`. Metrics keep insertion order; doubles
/// serialize exactly (io::format_exact). wall_s / from_cache are
/// deliberately absent (see file comment).
std::string result_body(const exec::RunResult& r);

/// Parses a result_body() string back into a RunResult (key/label/
/// platform/nprocs/seed/metrics). Used by the result store to rehydrate
/// persisted bodies and by client-side tooling.
bool parse_result_body(const std::string& body, exec::RunResult* out,
                       std::string* err);

/// `{"id":…,"ok":true,"type":"result","result":<result_body>}`.
std::string result_response(const std::string& id, const exec::RunResult& r);

/// `{"id":…,"ok":false,"type":"error","error":{"code":…,"message":…}}`.
std::string error_response(const std::string& id, const std::string& code,
                           const std::string& message);

/// `{"id":…,"ok":true,"type":"shutdown"}` — acknowledges a shutdown op.
std::string shutdown_response(const std::string& id);

}  // namespace nsp::serve
