// The scenario-serving core: accepts protocol request lines, batches
// and deduplicates them against the exec::Engine, and produces response
// lines. Transport-agnostic — the Unix-socket and file-queue front ends
// in tools/serve/ are thin loops over submit()/wait()/pump().
//
// Request lifecycle (docs/SERVING.md has the diagram):
//
//   submit(line) ──parse──▶ immediate response   (errors, stats,
//        │                                        shutdown, shed, quota)
//        └─▶ queue_[cache_key] ── waiter attached (dedup_coalesced++
//                   │              when the key is already pending)
//                pump() ── result-store lookup ── Engine.run(misses)
//                   │
//                   └─▶ per-waiter restamped responses, wait() returns
//
// Admission control and quotas act at submit time: a full queue sheds
// (code "shed"), an out-of-tokens client is denied (code "quota") —
// both as structured responses, never dropped connections. Token
// buckets refill on *logical* pump ticks, not wall clock, so a request
// trace replays deterministically.
//
// Deduplication is two-layered: waiters for the same cache key in one
// batch share a single Engine submission (counted in dedup_coalesced),
// and the Engine's memo cache plus the persistent io::ResultStore catch
// repeats across batches and across daemon restarts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/thread_safety.hpp"
#include "exec/engine.hpp"
#include "io/result_store.hpp"
#include "serve/protocol.hpp"

namespace nsp::serve {

struct ServerOptions {
  /// Engine pool width (0 = $NSP_EXEC_THREADS / hardware).
  int engine_threads = 0;
  /// Maximum queued waiters; submissions beyond it shed. 0 sheds
  /// everything (useful for testing the path).
  std::size_t queue_capacity = 1024;
  /// Token-bucket size per client; 0 disables quotas.
  double quota_burst = 0;
  /// Tokens refilled per pump tick (logical time, not wall clock).
  double quota_tokens_per_tick = 0;
  /// Directory for the persistent io::ResultStore ("" = in-memory
  /// only: the Engine memo cache still deduplicates repeats).
  std::string store_dir;
  /// Byte budget for the result store (0 = unlimited).
  std::uint64_t store_max_bytes = 0;
  /// Run a dispatcher thread that pumps whenever work is queued. Turn
  /// off for deterministic tests that stage submissions and call
  /// pump() explicitly.
  bool auto_pump = true;
};

/// Serving counters; `engine` is the Engine's own lifetime snapshot.
struct ServeStats {
  std::uint64_t received = 0;         ///< request lines submitted
  std::uint64_t ok = 0;               ///< result/shutdown/stats responses
  std::uint64_t errors = 0;           ///< error responses (all codes)
  std::uint64_t shed = 0;             ///< rejected by admission control
  std::uint64_t quota_denied = 0;     ///< rejected by a token bucket
  std::uint64_t dedup_coalesced = 0;  ///< waiters attached to a pending key
  std::uint64_t store_hits = 0;       ///< batches entries served from disk
  std::uint64_t store_puts = 0;       ///< computed results persisted
  std::uint64_t batches = 0;          ///< non-empty pump cycles
  exec::EngineCounters engine;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// A submitted request. `immediate` responses (errors, stats,
  /// shutdown acks, shed/quota denials) carry their text directly;
  /// queued runs carry a ticket that wait() blocks on.
  struct Ticket {
    std::uint64_t id = 0;
    bool immediate = false;
    std::string response;
  };

  /// Parses and admits one request line; never blocks on computation.
  Ticket submit(const std::string& line);

  /// Returns the response for `t`, blocking until the batch that
  /// contains it has been pumped.
  std::string wait(const Ticket& t);

  /// submit + wait: the blocking one-call interface the socket front
  /// end uses per connection line.
  std::string handle(const std::string& line);

  /// Runs one dispatch cycle inline: refills quota buckets, takes the
  /// current queue as a batch, serves store hits, runs misses through
  /// the Engine, persists and fulfils. Returns true if a batch ran.
  /// With auto_pump the dispatcher thread calls this; tests drive it
  /// manually for exact control over coalescing windows.
  bool pump();

  /// Queued waiters not yet taken by a pump cycle.
  std::size_t pending() const;

  /// True once a shutdown request was accepted; front ends drain and
  /// exit. Further runs are refused with code "shutting-down".
  bool shutdown_requested() const;

  /// Snapshot of the serving counters (engine counters included).
  ServeStats stats() const;

  /// The stats-response JSON for `id` — also what the front ends write
  /// to a --stats file on exit (with a fixed id of "stats").
  std::string stats_response(const std::string& id) const;

 private:
  struct Waiter {
    std::string id;          ///< request id to echo
    exec::Scenario scenario; ///< for per-waiter key/label restamping
    std::uint64_t ticket = 0;
  };
  struct PendingKey {
    std::vector<Waiter> waiters;  ///< first waiter's scenario is run
  };

  Ticket immediate(const std::string& response);
  std::string stats_json_locked(const std::string& id) const
      NSP_REQUIRES(mu_);
  void dispatcher_loop();

  ServerOptions opts_;
  exec::Engine engine_;
  std::unique_ptr<io::ResultStore> store_;

  mutable check::Mutex mu_;
  check::CondVar work_cv_;  ///< signalled on enqueue and shutdown
  check::CondVar done_cv_;  ///< signalled when a batch fulfils tickets
  std::map<std::string, PendingKey> queue_ NSP_GUARDED_BY(mu_);
  std::size_t queued_waiters_ NSP_GUARDED_BY(mu_) = 0;
  std::map<std::uint64_t, std::string> done_ NSP_GUARDED_BY(mu_);
  std::map<std::string, double> quota_ NSP_GUARDED_BY(mu_);
  std::uint64_t next_ticket_ NSP_GUARDED_BY(mu_) = 1;
  ServeStats stats_ NSP_GUARDED_BY(mu_);
  bool shutdown_ NSP_GUARDED_BY(mu_) = false;
  bool stopping_ NSP_GUARDED_BY(mu_) = false;

  std::thread dispatcher_;  ///< running iff opts_.auto_pump
};

}  // namespace nsp::serve
