#include "exec/audit.hpp"

#include <cstdio>
#include <memory>

#include "check/trace.hpp"
#include "exec/engine.hpp"
#include "io/table.hpp"

namespace nsp::exec {

std::uint64_t trace_hash(const RunResult& r) {
  std::uint64_t h = check::fnv1a(r.key);
  h = check::fnv1a(r.label, h);
  h = check::fnv1a(r.platform, h);
  h = check::fnv1a(static_cast<std::uint64_t>(r.nprocs), h);
  h = check::fnv1a(r.seed, h);
  for (const auto& [name, value] : r.metrics) {
    h = check::fnv1a(name, h);
    h = check::fnv1a(value, h);  // exact bit pattern
  }
  return h;
}

std::size_t AuditReport::mismatches() const {
  std::size_t n = 0;
  for (const AuditCell& c : cells) {
    if (!c.match() || !c.timeline_match()) ++n;
  }
  return n;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Merge-walks two key-sorted ResultSets into per-cell hash pairs; a
/// cell missing from one side keeps hash 0 there (always a mismatch).
std::vector<AuditCell> diff_cells(const ResultSet& a, const ResultSet& b) {
  std::vector<AuditCell> cells;
  cells.reserve(a.results.size());
  std::size_t i = 0, j = 0;
  while (i < a.results.size() || j < b.results.size()) {
    const bool only_a = j >= b.results.size() ||
                        (i < a.results.size() &&
                         a.results[i].key < b.results[j].key);
    const bool only_b = !only_a && (i >= a.results.size() ||
                                    b.results[j].key < a.results[i].key);
    if (only_a) {
      cells.push_back({a.results[i].key, trace_hash(a.results[i]), 0,
                       fault_digest(a.results[i]), 0});
      ++i;
    } else if (only_b) {
      cells.push_back({b.results[j].key, 0, trace_hash(b.results[j]), 0,
                       fault_digest(b.results[j])});
      ++j;
    } else {
      cells.push_back({a.results[i].key, trace_hash(a.results[i]),
                       trace_hash(b.results[j]), fault_digest(a.results[i]),
                       fault_digest(b.results[j])});
      ++i;
      ++j;
    }
  }
  return cells;
}

}  // namespace

std::string AuditReport::str() const {
  bool any_timeline = false;
  for (const AuditCell& c : cells) {
    if (c.serial_timeline != 0 || c.parallel_timeline != 0) {
      any_timeline = true;
      break;
    }
  }
  std::vector<std::string> headers{
      "cell", "serial hash", std::to_string(parallel_threads) + "-thread hash",
      "verdict"};
  if (any_timeline) headers.push_back("fault timeline");
  io::Table t(headers);
  t.title("Determinism audit: 1 vs " + std::to_string(parallel_threads) +
          " threads, " + std::to_string(cells.size()) + " cells");
  for (const AuditCell& c : cells) {
    std::vector<std::string> row{c.key, hex64(c.serial_hash),
                                 hex64(c.parallel_hash),
                                 c.match() ? "ok" : "MISMATCH"};
    if (any_timeline) {
      row.push_back(c.serial_timeline == 0 && c.parallel_timeline == 0
                        ? "-"
                        : (c.timeline_match() ? "agree" : "DIVERGED"));
    }
    t.row(row);
  }
  std::string out = t.str();
  out += "sweep digest: serial " + hex64(serial_digest) + ", parallel " +
         hex64(parallel_digest) + "\n";
  out += clean() ? "audit clean: every cell bit-identical\n"
                 : "AUDIT FAILED: " + std::to_string(mismatches()) +
                       " cell(s) diverged\n";
  return out;
}

AuditReport audit(const std::vector<Scenario>& sweep, int threads) {
  EngineOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.cache = false;  // every cell genuinely recomputed
  Engine serial(serial_opts);

  EngineOptions par_opts;
  par_opts.threads = threads;
  par_opts.cache = false;
  auto parallel = std::make_unique<Engine>(par_opts);
  if (parallel->counters().threads < 2) {
    // A 1-wide "parallel" engine would prove nothing; force a real pool.
    par_opts.threads = 2;
    parallel = std::make_unique<Engine>(par_opts);
  }

  const ResultSet a = serial.run(sweep);
  const ResultSet b = parallel->run(sweep);

  AuditReport rep;
  rep.parallel_threads = parallel->counters().threads;
  rep.serial_digest = serial.trace_digest();
  rep.parallel_digest = parallel->trace_digest();
  rep.cells = diff_cells(a, b);
  return rep;
}

}  // namespace nsp::exec
