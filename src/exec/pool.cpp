#include "exec/pool.hpp"

#include <chrono>

namespace nsp::exec {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) {
  int n = threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  if (n == 1) return;  // inline mode: no workers, submit() executes
  queues_.resize(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { worker_main(static_cast<std::size_t>(w)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial reference mode: run here, count like a worker would.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.queued;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executed;
    stats_.busy_s += seconds_since(t0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queued;
    ++pending_;
    queues_[next_queue_].deque.push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  work_cv_.notify_one();
}

void WorkStealingPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// Called with mu_ held.
bool WorkStealingPool::try_get(std::size_t self, std::function<void()>* out) {
  auto& own = queues_[self].deque;
  if (!own.empty()) {
    *out = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(self + k) % queues_.size()].deque;
    if (!victim.empty()) {
      *out = std::move(victim.front());
      victim.pop_front();
      ++stats_.stolen;
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_main(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (try_get(self, &task)) {
      lock.unlock();
      const auto t0 = std::chrono::steady_clock::now();
      task();
      task = nullptr;  // release captures outside the next wait
      const double busy = seconds_since(t0);
      lock.lock();
      ++stats_.executed;
      stats_.busy_s += busy;
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace nsp::exec
