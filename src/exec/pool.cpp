#include "exec/pool.hpp"
#include "check/thread_safety.hpp"

#include <chrono>

namespace nsp::exec {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) {
  int n = threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  if (n == 1) return;  // inline mode: no workers, submit() executes
  {
    // No worker exists yet, but locking keeps the guarded-member
    // discipline uniform (the analysis skips constructors; TSan does
    // not need the lock here either — this is documentation in code).
    check::MutexLock lock(mu_);
    queues_.resize(static_cast<std::size_t>(n));
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { worker_main(static_cast<std::size_t>(w)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  if (workers_.empty()) return;
  {
    check::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial reference mode: run here, count like a worker would.
    {
      check::MutexLock lock(mu_);
      ++stats_.queued;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    check::MutexLock lock(mu_);
    ++stats_.executed;
    stats_.busy_s += seconds_since(t0);
    return;
  }
  {
    check::MutexLock lock(mu_);
    ++stats_.queued;
    ++pending_;
    queues_[next_queue_].deque.push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  work_cv_.notify_one();
}

void WorkStealingPool::wait_idle() {
  if (workers_.empty()) return;
  check::MutexLock lock(mu_);
  while (pending_ != 0) idle_cv_.wait(mu_);
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  check::MutexLock lock(mu_);
  return stats_;
}

bool WorkStealingPool::try_get(std::size_t self, std::function<void()>* out) {
  auto& own = queues_[self].deque;
  if (!own.empty()) {
    *out = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(self + k) % queues_.size()].deque;
    if (!victim.empty()) {
      *out = std::move(victim.front());
      victim.pop_front();
      ++stats_.stolen;
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_main(std::size_t self) {
  check::MutexLock lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (try_get(self, &task)) {
      lock.unlock();
      const auto t0 = std::chrono::steady_clock::now();
      task();
      task = nullptr;  // release captures outside the next wait
      const double busy = seconds_since(t0);
      lock.lock();
      ++stats_.executed;
      stats_.busy_s += busy;
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(mu_);
  }
}

}  // namespace nsp::exec
