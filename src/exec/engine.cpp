#include "exec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <optional>
#include <unordered_map>

#include "check/check.hpp"
#include "check/trace.hpp"
#include "arch/platform.hpp"
#include "core/solver.hpp"
#include "exec/audit.hpp"
#include "exec/pool.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "perf/replay.hpp"
#include "sim/simulator.hpp"

namespace nsp::exec {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// CPU time of the calling thread. Unlike wall time this does not count
/// time spent descheduled, so summing it across tasks gives the true
/// serial work even when the pool oversubscribes the host's cores (and
/// speedup() cannot over-report on a small machine).
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  // nsp-analyze: determinism-ok: per-thread CPU time feeds only the speedup metric, never solver state or TraceHash
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("NSP_EXEC_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

void run_replay(const Scenario& s, RunResult* out) {
  perf::ReplayOptions opts;
  opts.sim_steps = s.sim_step_count();
  const fault::FaultSpec& spec = s.fault_spec();
  if (!spec.enabled) {
    const auto r = perf::replay(s.app_model(), s.platform_model(),
                                s.resolved_procs(), opts);
    out->platform = r.platform;
    out->nprocs = r.nprocs;
    set_replay_metrics(*out, r);
    return;
  }

  // Fault-aware replay. Three layers compose:
  //   1. a fault-free replay fixes the baseline and bounds the DES
  //      horizon the window schedule must cover;
  //   2. per live-processor-count replays through the fault injector
  //      price a step with link faults (drops, corruption, degrade,
  //      stragglers, wire-priced heartbeat traffic) folded in;
  //   3. the recovery lifetime walk runs crashes, wire-observed
  //      heartbeat detection, checkpoints (priced on the platform's
  //      I/O path unless the spec overrides), and re-decomposition as
  //      discrete events over those step prices, with the analytic
  //      timeline kept as a cross-check metric.
  // Everything is a pure function of (scenario axes, derived seed), so
  // a 1-thread and an N-thread engine produce identical bits.
  const perf::AppModel app = s.app_model();
  const arch::Platform plat = s.platform_model();
  const int procs = s.resolved_procs();
  const std::uint64_t seed = s.derived_seed();

  const auto baseline = perf::replay(app, plat, procs, opts);
  // Unscaled DES duration, with headroom for fault-induced slowdown.
  const double horizon =
      baseline.exec_time * opts.sim_steps / std::max(1, app.steps) * 4.0 + 1.0;

  fault::FaultStats stats;
  std::map<int, perf::ReplayResult> by_procs;
  const auto faulty = [&](int p) -> const perf::ReplayResult& {
    auto it = by_procs.find(p);
    if (it == by_procs.end()) {
      fault::Injector inj(spec, p, horizon, seed);
      perf::ReplayOptions o = opts;
      o.injector = &inj;
      auto r = perf::replay(app, plat, p, o);
      // Only the launch-width replay contributes injected link faults
      // to the run's timeline; narrower replays are pricing probes for
      // the recovery model.
      if (p == procs) stats.merge(inj.stats());
      it = by_procs.emplace(p, std::move(r)).first;
    }
    return it->second;
  };

  const perf::ReplayResult& at_launch = faulty(procs);

  fault::TimelineInputs in;
  in.steps = app.steps;
  in.nprocs = procs;
  in.decomposition_min_procs = 1;
  in.checkpoint_cost_s =
      fault::platform_checkpoint_cost_s(plat, app.ni, app.nj);
  in.step_time_s = [&](int p) {
    return faulty(p).exec_time / std::max(1, app.steps);
  };
  // The DES lifetime walk is the primary model whenever crashes are in
  // play (detection latency is then an observed, wire-priced quantity);
  // the analytic walk rides along as a cross-check metric. Without a
  // crash rate the two coincide and the analytic walk is exact.
  const auto analytic = fault::simulate_timeline(spec, in, seed);
  const bool crashes = spec.crash_rate_per_hour > 0;
  const auto tl = crashes ? fault::simulate_timeline_des(spec, in, plat, seed)
                          : analytic;
  stats.merge(tl.stats);

  out->platform = at_launch.platform;
  out->nprocs = procs;
  set_replay_metrics(*out, at_launch);
  out->set("exec_s", tl.time_to_solution_s);  // time-to-solution w/ faults
  out->set("fault_free_s", baseline.exec_time);
  out->set("fault_completed", tl.completed ? 1 : 0);
  out->set("fault_final_procs", tl.final_procs);
  if (crashes) {
    // Analytic cross-check (closed-form stalls, worst-case detection).
    out->set("fault_model_s", analytic.time_to_solution_s);
  }
  set_fault_metrics(*out, stats);
}

/// Runs the live solver in chunks so cancellation can interrupt a long
/// solve between chunks (the result is dropped in that case).
bool run_solve(const Scenario& s, const std::atomic<bool>* cancel,
               RunResult* out) {
  auto cfg = s.solver_config();
  cfg.count_flops = true;
  core::Solver solver(cfg);
  solver.initialize();
  const int total = s.step_count();
  const int chunk = std::max(1, total / 16);
  for (int done = 0; done < total;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    const int n = std::min(chunk, total - done);
    solver.run(n);
    done += n;
  }
  out->platform = "live solver";
  out->nprocs = cfg.num_threads;
  out->set("steps", solver.steps_taken());
  out->set("sim_time_s", solver.time());
  out->set("dt_s", solver.dt());
  out->set("max_mach", solver.max_mach());
  out->set("finite", solver.finite() ? 1 : 0);
  out->set("mass_integral", solver.conserved_integral(0));
  out->set("flops", solver.flops().total());
  return true;
}

double one_transfer_s(const arch::Platform& plat, int nodes,
                      std::size_t bytes) {
  sim::Simulator sim;
  auto net = plat.make_network(sim, nodes);
  double done = -1;
  net->transmit(0, 1, bytes, [&] { done = sim.now(); });
  sim.run();
  return done;
}

void run_net_probe(const Scenario& s, RunResult* out) {
  const arch::Platform plat = s.platform_model();
  const int nodes = std::max(2, s.resolved_procs());
  out->platform = plat.name;
  out->nprocs = nodes;
  out->set("latency_us", one_transfer_s(plat, nodes, 8) * 1e6);
  out->set("bw_1k_MBps", 1024.0 / one_transfer_s(plat, nodes, 1024) / 1e6);
  out->set("bw_64k_MBps", 65536.0 / one_transfer_s(plat, nodes, 65536) / 1e6);
  // Aggregate throughput: disjoint pairs streaming 64 KB each.
  sim::Simulator sim;
  auto net = plat.make_network(sim, nodes);
  const int pairs = nodes / 2;
  int done = 0;
  for (int k = 0; k < pairs; ++k) {
    net->transmit(2 * k, 2 * k + 1, 65536, [&done] { ++done; });
  }
  sim.run();
  out->set("aggregate_MBps", pairs * 65536.0 / sim.now() / 1e6);
}

/// The task kernel: executes one scenario. Returns nullopt if cancelled
/// mid-computation.
std::optional<RunResult> run_one(const Scenario& s,
                                 const std::atomic<bool>* cancel) {
  RunResult out;
  out.key = s.key();
  out.label = s.label_text();
  out.seed = s.derived_seed();
  const auto t0 = std::chrono::steady_clock::now();
  switch (s.workload()) {
    case Workload::Replay:
      run_replay(s, &out);
      break;
    case Workload::Solve:
      if (!run_solve(s, cancel, &out)) return std::nullopt;
      break;
    case Workload::NetProbe:
      run_net_probe(s, &out);
      break;
  }
  out.wall_s = seconds_since(t0);
  return out;
}

}  // namespace

// Lock discipline (statically checked under Clang -Wthread-safety):
//   cache_mu     the memo cache (content-hash -> RunResult)
//   counters_mu  lifetime counters and the order-independent trace hash
//   hook_mu      serializes user hook callbacks (guards no data)
// cancel is an atomic flag so solver chunks can poll it lock-free.
struct Engine::Impl {
  EngineOptions opts;
  WorkStealingPool pool;
  check::Mutex cache_mu;
  std::unordered_map<std::string, RunResult> cache NSP_GUARDED_BY(cache_mu);
  std::atomic<bool> cancel{false};
  check::Mutex hook_mu;
  mutable check::Mutex counters_mu;
  EngineCounters counters NSP_GUARDED_BY(counters_mu);
  check::TraceHash trace NSP_GUARDED_BY(counters_mu);

  explicit Impl(EngineOptions o)
      : opts([&o] {
          o.threads = resolve_threads(o.threads);
          return o;
        }()),
        pool(opts.threads) {}
};

Engine::Engine(EngineOptions opts) : impl_(new Impl(opts)) {
  check::MutexLock lock(impl_->counters_mu);
  impl_->counters.threads = impl_->opts.threads;
}

Engine::~Engine() { delete impl_; }

void Engine::cancel() { impl_->cancel.store(true, std::memory_order_relaxed); }

bool Engine::cancelled() const {
  return impl_->cancel.load(std::memory_order_relaxed);
}

EngineCounters Engine::counters() const {
  check::MutexLock lock(impl_->counters_mu);
  return impl_->counters;
}

std::uint64_t Engine::trace_digest() const {
  check::MutexLock lock(impl_->counters_mu);
  return impl_->trace.digest();
}

std::uint64_t Engine::trace_count() const {
  check::MutexLock lock(impl_->counters_mu);
  return impl_->trace.count();
}

std::size_t Engine::cache_size() const {
  check::MutexLock lock(impl_->cache_mu);
  return impl_->cache.size();
}

void Engine::clear_cache() {
  check::MutexLock lock(impl_->cache_mu);
  impl_->cache.clear();
}

RunResult Engine::run_scenario(const Scenario& s) {
  auto r = run_one(s, nullptr);
  return *r;  // never cancelled without a flag
}

ResultSet Engine::run(const std::vector<Scenario>& sweep,
                      const RunHooks& hooks) {
  Impl& im = *impl_;
  im.cancel.store(false, std::memory_order_relaxed);
  {
    check::MutexLock lock(im.counters_mu);
    im.counters.submitted += sweep.size();
  }

  const std::size_t total = sweep.size();
  std::vector<std::optional<RunResult>> slots(total);
  std::atomic<std::size_t> done{0};

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    im.pool.submit([&im, &sweep, &slots, &done, &hooks, total, i] {
      const Scenario& s = sweep[i];
      if (im.cancel.load(std::memory_order_relaxed)) {
        check::MutexLock lock(im.counters_mu);
        ++im.counters.cancelled;
        return;
      }
      const std::string cache_key = s.cache_key();
      if (im.opts.cache) {
        check::MutexLock lock(im.cache_mu);
        const auto it = im.cache.find(cache_key);
        if (it != im.cache.end()) {
          slots[i] = it->second;
          // The cache is content-addressed: metrics are label-independent,
          // so restamp the requesting scenario's identity.
          slots[i]->key = s.key();
          slots[i]->label = s.label_text();
          slots[i]->from_cache = true;
          slots[i]->wall_s = 0;
          check::MutexLock clock(im.counters_mu);
          ++im.counters.cache_hits;
        }
      }
      if (!slots[i].has_value()) {
        const double cpu0 = thread_cpu_seconds();
        auto r = run_one(s, &im.cancel);
        const double cpu_s = thread_cpu_seconds() - cpu0;
        if (!r.has_value()) {  // cancelled mid-solve
          check::MutexLock lock(im.counters_mu);
          ++im.counters.cancelled;
          return;
        }
        slots[i] = std::move(r);
        {
          check::MutexLock lock(im.counters_mu);
          ++im.counters.executed;
          im.counters.task_s += cpu_s;
        }
        if (im.opts.cache) {
          check::MutexLock lock(im.cache_mu);
          im.cache.emplace(cache_key, *slots[i]);
        }
      }
      {
        // Order-independent accumulation: the digest is the same no
        // matter which worker delivered which cell.
        check::MutexLock lock(im.counters_mu);
        im.trace.mix(trace_hash(*slots[i]));
      }
      if (hooks.on_result) {
        check::MutexLock lock(im.hook_mu);
        hooks.on_result(*slots[i], done.fetch_add(1) + 1, total);
      } else {
        done.fetch_add(1);
      }
    });
  }
  im.pool.wait_idle();

  const auto pool_stats = im.pool.stats();
  {
    check::MutexLock lock(im.counters_mu);
    im.counters.wall_s += seconds_since(t0);
    im.counters.stolen = pool_stats.stolen;
  }

  ResultSet rs;
  for (auto& slot : slots) {
    if (slot.has_value()) rs.results.push_back(std::move(*slot));
  }
  std::sort(rs.results.begin(), rs.results.end(),
            [](const RunResult& a, const RunResult& b) { return a.key < b.key; });
  return rs;
}

}  // namespace nsp::exec
