// A work-stealing thread pool for the experiment engine.
//
// Each worker owns a deque: it pushes and pops work at the back and
// victims are robbed from the front, so long scenario chains stay warm
// on their worker while idle workers drain the sweep from the other
// end. The pool exposes the counters the engine reports (queued,
// executed, stolen, per-worker busy seconds).
//
// With `threads <= 1` the pool runs tasks inline on the caller's thread
// at submit() time — the serial reference mode the determinism tests
// compare against.
//
// Lock discipline (statically checked under Clang -Wthread-safety):
// one mutex `mu_` guards the deques, the pending count, the stop flag,
// and the counters; `workers_` is written only by the constructor and
// read by threads()/the destructor, so it needs no lock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "check/thread_safety.hpp"

namespace nsp::exec {

class WorkStealingPool {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency().
  explicit WorkStealingPool(int threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task (round-robin across worker deques). Tasks must not
  /// throw; exceptions escaping a task terminate.
  void submit(std::function<void()> task) NSP_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void wait_idle() NSP_EXCLUDES(mu_);

  /// Worker count (1 when running inline).
  int threads() const { return static_cast<int>(workers_.size() ? workers_.size() : 1); }

  struct Stats {
    std::uint64_t queued = 0;    ///< tasks accepted by submit()
    std::uint64_t executed = 0;  ///< tasks completed
    std::uint64_t stolen = 0;    ///< tasks taken from another worker
    double busy_s = 0;           ///< summed task wall time, all workers
  };
  Stats stats() const NSP_EXCLUDES(mu_);

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
  };

  bool try_get(std::size_t self, std::function<void()>* out) NSP_REQUIRES(mu_);
  void worker_main(std::size_t self) NSP_EXCLUDES(mu_);

  mutable check::Mutex mu_;
  check::CondVar work_cv_;
  check::CondVar idle_cv_;
  std::vector<Worker> queues_ NSP_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  ///< written by ctor only
  std::size_t next_queue_ NSP_GUARDED_BY(mu_) = 0;
  std::uint64_t pending_ NSP_GUARDED_BY(mu_) = 0;  ///< queued or running
  bool stop_ NSP_GUARDED_BY(mu_) = false;
  Stats stats_ NSP_GUARDED_BY(mu_);
};

}  // namespace nsp::exec
