#include "exec/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "exec/registry.hpp"
#include "arch/kernel_profile.hpp"
#include "arch/platform.hpp"
#include "core/kernels.hpp"
#include "fault/fault.hpp"
#include "perf/app_model.hpp"

namespace nsp::exec {

std::string to_string(Workload w) {
  switch (w) {
    case Workload::Replay: return "replay";
    case Workload::Solve: return "solve";
    case Workload::NetProbe: return "netprobe";
  }
  return "?";
}

Scenario Scenario::jet250x100() { return Scenario{}; }

Scenario Scenario::jet(int ni, int nj, int steps) {
  Scenario s;
  s.ni_ = ni;
  s.nj_ = nj;
  s.steps_ = steps;
  return s;
}

Scenario Scenario::solve(int ni, int nj, int steps) {
  Scenario s;
  s.workload_ = Workload::Solve;
  s.ni_ = ni;
  s.nj_ = nj;
  s.steps_ = steps;
  return s;
}

Scenario Scenario::net_probe(const std::string& platform_key) {
  Scenario s;
  s.workload_ = Workload::NetProbe;
  s.platform_ = platform_key;
  return s;
}

Scenario& Scenario::platform(const std::string& registry_key) {
  platform_ = registry_key;
  return *this;
}

Scenario& Scenario::msglayer(const std::string& registry_key) {
  msglayer_ = registry_key;
  return *this;
}

Scenario& Scenario::network(arch::NetKind kind) {
  net_override_ = true;
  net_ = kind;
  return *this;
}

Scenario& Scenario::threads(int nprocs) {
  nprocs_ = nprocs;
  return *this;
}

Scenario& Scenario::equations(arch::Equations eq) {
  eq_ = eq;
  return *this;
}

Scenario& Scenario::version(arch::CodeVersion v) {
  version_ = v;
  return *this;
}

Scenario& Scenario::kernel(core::KernelVariant v) {
  kernel_ = v;
  return *this;
}

Scenario& Scenario::grid2d(int px) {
  proc_grid_px_ = px;
  return *this;
}

Scenario& Scenario::steps(int n) {
  steps_ = n;
  return *this;
}

Scenario& Scenario::sim_steps(int n) {
  sim_steps_ = n;
  return *this;
}

Scenario& Scenario::seed(std::uint64_t base_seed) {
  seed_ = base_seed;
  return *this;
}

Scenario& Scenario::label(const std::string& text) {
  label_ = text;
  return *this;
}

Scenario& Scenario::faults(const fault::FaultSpec& spec) {
  faults_ = spec;
  return *this;
}

Scenario& Scenario::faults(const std::string& spec) {
  return faults(fault::FaultSpec::parse(spec));
}

int Scenario::resolved_procs() const {
  if (workload_ == Workload::Solve) return std::max(1, nprocs_);
  if (nprocs_ > 0) return nprocs_;
  return make_platform(platform_).max_procs;
}

std::string Scenario::cache_key() const {
  std::ostringstream os;
  os << to_string(workload_) << '|' << arch::to_string(eq_) << "|v"
     << static_cast<int>(version_) << '|' << ni_ << 'x' << nj_ << 'x' << steps_
     << "|px" << proc_grid_px_ << '|' << platform_ << '|'
     << (msglayer_.empty() ? "default" : msglayer_) << '|'
     << (net_override_ ? arch::to_string(net_) : "default") << "|p"
     << nprocs_ << "|ss" << sim_steps_ << "|seed" << seed_;
  // Only an *enabled* fault spec contributes, so pre-fault cache keys
  // (and every artifact derived from them) are byte-identical.
  if (faults_.enabled) os << "|faults:" << faults_.str();
  // Likewise the kernel axis: V5 is the default, so scenarios that never
  // touch .kernel() keep their historical cache keys byte-for-byte.
  if (kernel_ != core::KernelVariant::V5)
    os << "|k" << static_cast<int>(kernel_);
  return os.str();
}

std::string Scenario::key() const {
  std::string k = cache_key();
  if (!label_.empty()) k += '|' + label_;
  return k;
}

std::uint64_t Scenario::content_hash() const {
  // FNV-1a over the computational content.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : cache_key()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Scenario::derived_seed() const {
  // splitmix64 finalizer over (content hash ^ base seed).
  std::uint64_t z = content_hash() ^ seed_;
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

arch::Platform Scenario::platform_model() const {
  arch::Platform p = make_platform(platform_);
  if (!msglayer_.empty()) p.msglayer = make_msglayer(msglayer_);
  if (net_override_) p.net = net_;
  return p;
}

perf::AppModel Scenario::app_model() const {
  if (proc_grid_px_ > 0) {
    const int py = std::max(1, resolved_procs() / proc_grid_px_);
    return perf::AppModel::paper_grid(eq_, proc_grid_px_, py, version_, ni_,
                                      nj_, steps_);
  }
  return perf::AppModel::paper(eq_, version_, ni_, nj_, steps_);
}

core::SolverConfig Scenario::solver_config() const {
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(ni_, nj_);
  cfg.viscous = eq_ == arch::Equations::NavierStokes;
  cfg.variant = kernel_;
  cfg.num_threads = std::max(1, nprocs_);
  return cfg;
}

}  // namespace nsp::exec
