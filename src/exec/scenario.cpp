#include "exec/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "exec/registry.hpp"
#include "arch/kernel_profile.hpp"
#include "arch/platform.hpp"
#include "core/kernels.hpp"
#include "fault/fault.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "model/registry.hpp"
#include "perf/app_model.hpp"

namespace nsp::exec {

std::string to_string(Workload w) {
  switch (w) {
    case Workload::Replay: return "replay";
    case Workload::Solve: return "solve";
    case Workload::NetProbe: return "netprobe";
  }
  return "?";
}

Scenario Scenario::jet250x100() { return Scenario{}; }

Scenario Scenario::jet(int ni, int nj, int steps) {
  Scenario s;
  s.ni_ = ni;
  s.nj_ = nj;
  s.steps_ = steps;
  return s;
}

Scenario Scenario::solve(int ni, int nj, int steps) {
  Scenario s;
  s.workload_ = Workload::Solve;
  s.ni_ = ni;
  s.nj_ = nj;
  s.steps_ = steps;
  return s;
}

Scenario Scenario::net_probe(const std::string& platform_key) {
  Scenario s;
  s.workload_ = Workload::NetProbe;
  s.platform_ = platform_key;
  return s;
}

Scenario& Scenario::platform(const std::string& registry_key) {
  platform_ = registry_key;
  return *this;
}

Scenario& Scenario::msglayer(const std::string& registry_key) {
  msglayer_ = registry_key;
  return *this;
}

Scenario& Scenario::network(arch::NetKind kind) {
  net_override_ = true;
  net_ = kind;
  return *this;
}

Scenario& Scenario::threads(int nprocs) {
  nprocs_ = nprocs;
  return *this;
}

Scenario& Scenario::equations(arch::Equations eq) {
  eq_ = eq;
  return *this;
}

Scenario& Scenario::version(arch::CodeVersion v) {
  version_ = v;
  return *this;
}

Scenario& Scenario::kernel(core::KernelVariant v) {
  kernel_ = v;
  return *this;
}

Scenario& Scenario::model(const std::string& registry_key) {
  model_ = registry_key;
  if (!model_.empty()) {
    // Validates eagerly (throws on unknown keys) and keeps the replay's
    // equations axis coherent with the model's physics.
    const model::ModelSpec spec = model::make_model(model_);
    eq_ = spec.physics == model::Physics::Euler
              ? arch::Equations::Euler
              : arch::Equations::NavierStokes;
  }
  return *this;
}

Scenario& Scenario::grid2d(int px) {
  proc_grid_px_ = px;
  return *this;
}

Scenario& Scenario::overlap_comm(bool on) {
  overlap_comm_ = on;
  return *this;
}

Scenario& Scenario::steps(int n) {
  steps_ = n;
  return *this;
}

Scenario& Scenario::sim_steps(int n) {
  sim_steps_ = n;
  return *this;
}

Scenario& Scenario::seed(std::uint64_t base_seed) {
  seed_ = base_seed;
  return *this;
}

Scenario& Scenario::label(const std::string& text) {
  label_ = text;
  return *this;
}

Scenario& Scenario::faults(const fault::FaultSpec& spec) {
  faults_ = spec;
  return *this;
}

Scenario& Scenario::faults(const std::string& spec) {
  return faults(fault::FaultSpec::parse(spec));
}

int Scenario::resolved_procs() const {
  if (workload_ == Workload::Solve) return std::max(1, nprocs_);
  if (nprocs_ > 0) return nprocs_;
  return make_platform(platform_).max_procs;
}

std::string Scenario::cache_key() const {
  std::ostringstream os;
  os << to_string(workload_) << '|' << arch::to_string(eq_) << "|v"
     << static_cast<int>(version_) << '|' << ni_ << 'x' << nj_ << 'x' << steps_
     << "|px" << proc_grid_px_ << '|' << platform_ << '|'
     << (msglayer_.empty() ? "default" : msglayer_) << '|'
     << (net_override_ ? arch::to_string(net_) : "default") << "|p"
     << nprocs_ << "|ss" << sim_steps_ << "|seed" << seed_;
  // Only an *enabled* fault spec contributes, so pre-fault cache keys
  // (and every artifact derived from them) are byte-identical.
  if (faults_.enabled) os << "|faults:" << faults_.str();
  // Likewise the kernel axis: V5 is the default, so scenarios that never
  // touch .kernel() keep their historical cache keys byte-for-byte.
  if (kernel_ != core::KernelVariant::V5)
    os << "|k" << static_cast<int>(kernel_);
  // And the model axis: the default model IS the historical pipeline,
  // so both the unset and explicit-default forms keep pre-model cache
  // keys (and memo-cache artifacts, and the zero-fault golden md5).
  if (!model_.empty() && model_ != model::kDefaultModel)
    os << "|model:" << model_;
  // And the overlap axis: off is the historical behaviour.
  if (overlap_comm_) os << "|ov";
  return os.str();
}

std::string Scenario::key() const {
  std::string k = cache_key();
  if (!label_.empty()) k += '|' + label_;
  return k;
}

std::uint64_t Scenario::content_hash() const {
  // FNV-1a over the computational content.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : cache_key()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Scenario::derived_seed() const {
  // splitmix64 finalizer over (content hash ^ base seed).
  std::uint64_t z = content_hash() ^ seed_;
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

// ---- Wire tokens ---------------------------------------------------------
//
// The wire format uses short lowercase tokens rather than the display
// names from arch::to_string ("Navier-Stokes", "SP switch"), which
// contain spaces and punctuation hostile to hand-written requests. The
// mapping is part of the protocol spec in docs/SERVING.md.

std::string wire_token(Workload w) { return to_string(w); }

bool parse_workload(const std::string& t, Workload* out) {
  if (t == "replay") *out = Workload::Replay;
  else if (t == "solve") *out = Workload::Solve;
  else if (t == "netprobe") *out = Workload::NetProbe;
  else return false;
  return true;
}

const char* wire_token(arch::Equations e) {
  return e == arch::Equations::Euler ? "euler" : "ns";
}

bool parse_equations(const std::string& t, arch::Equations* out) {
  if (t == "ns") *out = arch::Equations::NavierStokes;
  else if (t == "euler") *out = arch::Equations::Euler;
  else return false;
  return true;
}

const char* wire_token(arch::NetKind k) {
  switch (k) {
    case arch::NetKind::Perfect: return "perfect";
    case arch::NetKind::Ethernet: return "ethernet";
    case arch::NetKind::Fddi: return "fddi";
    case arch::NetKind::Atm: return "atm";
    case arch::NetKind::AllnodeF: return "allnode-f";
    case arch::NetKind::AllnodeS: return "allnode-s";
    case arch::NetKind::SpSwitch: return "sp-switch";
    case arch::NetKind::Torus3D: return "torus3d";
    case arch::NetKind::Torus2D: return "torus2d";
    case arch::NetKind::FatTree: return "fattree";
    case arch::NetKind::Dragonfly: return "dragonfly";
  }
  return "?";
}

bool parse_netkind(const std::string& t, arch::NetKind* out) {
  for (const arch::NetKind k :
       {arch::NetKind::Perfect, arch::NetKind::Ethernet, arch::NetKind::Fddi,
        arch::NetKind::Atm, arch::NetKind::AllnodeF, arch::NetKind::AllnodeS,
        arch::NetKind::SpSwitch, arch::NetKind::Torus3D,
        arch::NetKind::Torus2D, arch::NetKind::FatTree,
        arch::NetKind::Dragonfly}) {
    if (t == wire_token(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

/// Reads an optional integer member; returns false (setting *err) when
/// present but not an integral number within [lo, hi].
bool read_int(const io::JsonValue& doc, const std::string& name, int lo,
              int hi, int* out, std::string* err) {
  const io::JsonValue* v = doc.find(name);
  if (!v) return true;
  if (!v->is_number() || v->number != static_cast<double>(static_cast<long long>(v->number))) {
    *err = "field '" + name + "' must be an integer";
    return false;
  }
  const long long n = static_cast<long long>(v->number);
  if (n < lo || n > hi) {
    *err = "field '" + name + "' out of range [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]";
    return false;
  }
  *out = static_cast<int>(n);
  return true;
}

/// Reads an optional string member; returns false when present but not
/// a string.
bool read_string(const io::JsonValue& doc, const std::string& name,
                 std::string* out, std::string* err) {
  const io::JsonValue* v = doc.find(name);
  if (!v) return true;
  if (!v->is_string()) {
    *err = "field '" + name + "' must be a string";
    return false;
  }
  *out = v->text;
  return true;
}

}  // namespace

std::string Scenario::to_json() const {
  std::ostringstream os;
  os << "{\"workload\":\"" << wire_token(workload_) << "\""
     << ",\"equations\":\"" << wire_token(eq_) << "\""
     << ",\"version\":" << static_cast<int>(version_)
     << ",\"kernel\":" << static_cast<int>(kernel_)
     << ",\"ni\":" << ni_ << ",\"nj\":" << nj_
     << ",\"steps\":" << steps_
     << ",\"grid2d\":" << proc_grid_px_
     << ",\"sim_steps\":" << sim_steps_
     << ",\"platform\":\"" << io::json_escape(platform_) << "\""
     << ",\"msglayer\":\"" << io::json_escape(msglayer_) << "\""
     << ",\"network\":\"" << (net_override_ ? wire_token(net_) : "") << "\""
     << ",\"threads\":" << nprocs_
     << ",\"seed\":\"" << seed_ << "\""
     << ",\"label\":\"" << io::json_escape(label_) << "\""
     << ",\"faults\":\"" << io::json_escape(faults_.str()) << "\""
     << ",\"model\":\"" << io::json_escape(model_) << "\""
     << ",\"overlap\":" << (overlap_comm_ ? 1 : 0) << "}";
  return os.str();
}

bool Scenario::from_json(const io::JsonValue& doc, Scenario* out,
                         std::string* err) {
  std::string reason;
  if (!doc.is_object()) {
    if (err) *err = "scenario must be a JSON object";
    return false;
  }
  Scenario s;
  // Reject unknown fields so a typoed axis ("thread": 4) fails loudly
  // instead of silently running the default scenario.
  static const char* kFields[] = {
      "workload", "equations", "version",  "kernel", "ni",     "nj",
      "steps",    "grid2d",    "sim_steps", "platform", "msglayer",
      "network",  "threads",   "seed",     "label",  "faults", "model",
      "overlap"};
  for (const auto& [name, value] : doc.members) {
    bool known = false;
    for (const char* f : kFields) known = known || name == f;
    if (!known) {
      if (err) *err = "unknown field '" + name + "'";
      return false;
    }
  }

  std::string token;
  if (!read_string(doc, "workload", &token, &reason)) goto bad;
  if (!token.empty() && !parse_workload(token, &s.workload_)) {
    reason = "unknown workload '" + token + "' (replay|solve|netprobe)";
    goto bad;
  }
  token.clear();
  if (!read_string(doc, "equations", &token, &reason)) goto bad;
  if (!token.empty() && !parse_equations(token, &s.eq_)) {
    reason = "unknown equations '" + token + "' (ns|euler)";
    goto bad;
  }
  {
    int version = static_cast<int>(s.version_);
    int kernel = static_cast<int>(s.kernel_);
    if (!read_int(doc, "version", 1, 7, &version, &reason)) goto bad;
    if (!read_int(doc, "kernel", 1, 5, &kernel, &reason)) goto bad;
    s.version_ = static_cast<arch::CodeVersion>(version);
    s.kernel_ = static_cast<core::KernelVariant>(kernel);
  }
  if (!read_int(doc, "ni", 2, 1 << 20, &s.ni_, &reason)) goto bad;
  if (!read_int(doc, "nj", 2, 1 << 20, &s.nj_, &reason)) goto bad;
  if (!read_int(doc, "steps", 1, 1 << 30, &s.steps_, &reason)) goto bad;
  if (!read_int(doc, "grid2d", 0, 1 << 16, &s.proc_grid_px_, &reason)) goto bad;
  if (!read_int(doc, "sim_steps", 1, 1 << 30, &s.sim_steps_, &reason)) goto bad;
  if (!read_string(doc, "platform", &s.platform_, &reason)) goto bad;
  if (!has_platform(s.platform_)) {
    reason = "unknown platform '" + s.platform_ + "'";
    goto bad;
  }
  if (!read_string(doc, "msglayer", &s.msglayer_, &reason)) goto bad;
  if (!s.msglayer_.empty()) {
    try {
      make_msglayer(s.msglayer_);
    } catch (const std::invalid_argument&) {
      reason = "unknown msglayer '" + s.msglayer_ + "'";
      goto bad;
    }
  }
  token.clear();
  if (!read_string(doc, "network", &token, &reason)) goto bad;
  if (!token.empty()) {
    if (!parse_netkind(token, &s.net_)) {
      reason = "unknown network '" + token + "'";
      goto bad;
    }
    s.net_override_ = true;
  }
  if (!read_int(doc, "threads", 0, 1 << 20, &s.nprocs_, &reason)) goto bad;
  {
    // `seed` is a decimal string (canonical) but a plain JSON integer is
    // accepted too — the parser kept its raw text, so either form
    // round-trips the full 64 bits.
    const io::JsonValue* v = doc.find("seed");
    if (v) {
      if (!v->is_string() && !v->is_number()) {
        reason = "field 'seed' must be a decimal string or integer";
        goto bad;
      }
      // For numbers, `text` is the raw source literal, so the full 64
      // bits survive either spelling.
      char* end = nullptr;
      s.seed_ = std::strtoull(v->text.c_str(), &end, 10);
      if (v->text.empty() || (end && *end != '\0')) {
        reason = "field 'seed' is not a decimal integer";
        goto bad;
      }
    }
  }
  if (!read_string(doc, "label", &s.label_, &reason)) goto bad;
  token.clear();
  if (!read_string(doc, "faults", &token, &reason)) goto bad;
  if (!token.empty()) {
    try {
      s.faults_ = fault::FaultSpec::parse(token);
    } catch (const std::invalid_argument& e) {
      reason = std::string("bad faults spec: ") + e.what();
      goto bad;
    }
  }
  token.clear();
  if (!read_string(doc, "model", &token, &reason)) goto bad;
  if (!token.empty()) {
    if (!model::has_model(token)) {
      reason = "unknown model '" + token + "'";
      goto bad;
    }
    // The fluent setter keeps the equations axis coherent; it runs
    // after "equations" was parsed, so an explicit model wins.
    s.model(token);
  }
  {
    int overlap = 0;
    if (!read_int(doc, "overlap", 0, 1, &overlap, &reason)) goto bad;
    s.overlap_comm_ = overlap != 0;
  }
  *out = s;
  return true;

bad:
  if (err) *err = reason;
  return false;
}

arch::Platform Scenario::platform_model() const {
  arch::Platform p = make_platform(platform_);
  if (!msglayer_.empty()) p.msglayer = make_msglayer(msglayer_);
  if (net_override_) p.net = net_;
  return p;
}

perf::AppModel Scenario::app_model() const {
  perf::AppModel m =
      proc_grid_px_ > 0
          ? perf::AppModel::paper_grid(
                eq_, proc_grid_px_,
                std::max(1, resolved_procs() / proc_grid_px_), version_, ni_,
                nj_, steps_)
          : perf::AppModel::paper(eq_, version_, ni_, nj_, steps_);
  if (overlap_comm_) {
    // Mirror the live solver's overlapped schedule (SolverConfig::
    // overlap_comm): the interior sweep of each phase — everything not
    // touching the halo columns — runs while boundary exchanges are in
    // flight. About half of a phase's compute is interior work that can
    // legally start before the halos land, and the tiled span kernels
    // pay no extra cache penalty for the split, unlike Version 6's 1995
    // hand-overlapped code (docs/PERF.md). Versions that already model
    // some overlap keep the larger of the two fractions.
    m.overlap_fraction = std::max(m.overlap_fraction, 0.5);
    m.busy_penalty = 0.0;
  }
  return m;
}

core::SolverConfig Scenario::solver_config() const {
  core::SolverConfig cfg;
  cfg.grid = core::Grid::coarse(ni_, nj_);
  cfg.viscous = eq_ == arch::Equations::NavierStokes;
  cfg.variant = kernel_;
  cfg.num_threads = std::max(1, nprocs_);
  // The model axis writes scheme/viscous/excitation last; the default
  // model writes exactly the defaults above, so pre-model scenarios
  // build bit-identical configurations.
  if (!model_.empty()) model::make_model(model_).configure(&cfg);
  return cfg;
}

}  // namespace nsp::exec
