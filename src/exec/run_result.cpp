#include "exec/run_result.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "io/table.hpp"
#include "fault/fault.hpp"
#include "perf/replay.hpp"

namespace nsp::exec {

void RunResult::set(std::string name, double value) {
  for (auto& [k, v] : metrics) {
    if (k == name) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(std::move(name), value);
}

bool RunResult::has(std::string_view name) const {
  for (const auto& kv : metrics) {
    if (kv.first == name) return true;
  }
  return false;
}

double RunResult::metric(std::string_view name) const {
  for (const auto& kv : metrics) {
    if (kv.first == name) return kv.second;
  }
  throw std::out_of_range("RunResult: no metric named '" + std::string(name) +
                          "' in " + key);
}

bool operator==(const RunResult& a, const RunResult& b) {
  return a.key == b.key && a.label == b.label && a.platform == b.platform &&
         a.nprocs == b.nprocs && a.seed == b.seed && a.metrics == b.metrics;
}

const RunResult* ResultSet::find(std::string_view key) const {
  for (const auto& r : results) {
    if (r.key == key) return &r;
  }
  return nullptr;
}

const RunResult* ResultSet::find_label(std::string_view label) const {
  for (const auto& r : results) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

std::string ResultSet::to_csv() const {
  std::set<std::string> names;
  for (const auto& r : results) {
    for (const auto& kv : r.metrics) names.insert(kv.first);
  }
  std::ostringstream os;
  os << "key,label,platform,nprocs,seed";
  for (const auto& n : names) os << ',' << io::csv_escape(n);
  os << '\n';
  for (const auto& r : results) {
    os << io::csv_escape(r.key) << ',' << io::csv_escape(r.label) << ','
       << io::csv_escape(r.platform) << ',' << r.nprocs << ',' << r.seed;
    for (const auto& n : names) {
      os << ',';
      if (r.has(n)) os << io::format_exact(r.metric(n));
    }
    os << '\n';
  }
  return os.str();
}

std::string ResultSet::to_json() const {
  std::vector<io::JsonRecord> records;
  records.reserve(results.size());
  for (const auto& r : results) {
    io::JsonRecord rec;
    rec.emplace_back("key", "\"" + io::json_escape(r.key) + "\"");
    rec.emplace_back("label", "\"" + io::json_escape(r.label) + "\"");
    rec.emplace_back("platform", "\"" + io::json_escape(r.platform) + "\"");
    rec.emplace_back("nprocs", std::to_string(r.nprocs));
    rec.emplace_back("seed", std::to_string(r.seed));
    std::string m = "{";
    for (std::size_t k = 0; k < r.metrics.size(); ++k) {
      if (k) m += ", ";
      m += "\"" + io::json_escape(r.metrics[k].first) +
           "\": " + io::format_exact(r.metrics[k].second);
    }
    m += "}";
    rec.emplace_back("metrics", m);
    records.push_back(std::move(rec));
  }
  return io::json_records(records);
}

namespace {

void write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace

void ResultSet::write_csv(const std::string& path) const {
  write_text(path, to_csv());
}

void ResultSet::write_json(const std::string& path) const {
  write_text(path, to_json());
}

bool operator==(const ResultSet& a, const ResultSet& b) {
  return a.results == b.results;
}

double avg_busy(const perf::ReplayResult& r) {
  double s = 0;
  for (const auto& k : r.ranks) s += k.busy();
  return r.ranks.empty() ? 0 : s / static_cast<double>(r.ranks.size());
}

double max_busy(const perf::ReplayResult& r) {
  double m = 0;
  for (const auto& k : r.ranks) m = std::max(m, k.busy());
  return m;
}

double avg_wait(const perf::ReplayResult& r) {
  double s = 0;
  for (const auto& k : r.ranks) s += k.wait;
  return r.ranks.empty() ? 0 : s / static_cast<double>(r.ranks.size());
}

double total_messages(const perf::ReplayResult& r) {
  double s = 0;
  for (const auto& k : r.ranks) s += static_cast<double>(k.sends);
  return s;
}

double total_bytes(const perf::ReplayResult& r) {
  double s = 0;
  for (const auto& k : r.ranks) s += k.bytes_sent;
  return s;
}

void set_replay_metrics(RunResult& out, const perf::ReplayResult& r) {
  out.set("exec_s", r.exec_time);
  out.set("busy_avg_s", avg_busy(r));
  out.set("busy_max_s", max_busy(r));
  out.set("wait_avg_s", avg_wait(r));
  out.set("messages", total_messages(r));
  out.set("bytes", total_bytes(r));
}

void set_fault_metrics(RunResult& out, const fault::FaultStats& st) {
  out.set("fault_crashes", static_cast<double>(st.crashes));
  out.set("fault_drops", static_cast<double>(st.drops));
  out.set("fault_corruptions", static_cast<double>(st.corruptions));
  out.set("fault_retransmits", static_cast<double>(st.retransmits));
  out.set("fault_give_ups", static_cast<double>(st.give_ups));
  out.set("fault_degrade_windows", static_cast<double>(st.degrade_windows));
  out.set("fault_straggler_windows",
          static_cast<double>(st.straggler_windows));
  out.set("fault_heartbeats", static_cast<double>(st.heartbeats));
  out.set("fault_detections", static_cast<double>(st.detections));
  out.set("fault_checkpoints", static_cast<double>(st.checkpoints));
  out.set("fault_restarts", static_cast<double>(st.restarts));
  out.set("fault_detect_s", st.detect_latency_s);
  out.set("fault_wasted_s", st.wasted_work_s);
  out.set("fault_ckpt_overhead_s", st.checkpoint_overhead_s);
  const std::uint64_t digest = st.timeline_digest();
  // Both halves are integers < 2^32, hence exact as doubles: the JSON
  // and CSV serializations round-trip them bit-for-bit.
  out.set("fault_digest_hi", static_cast<double>(digest >> 32));
  out.set("fault_digest_lo",
          static_cast<double>(digest & 0xffffffffull));
}

std::uint64_t fault_digest(const RunResult& r) {
  if (!r.has("fault_digest_hi") || !r.has("fault_digest_lo")) return 0;
  return (static_cast<std::uint64_t>(r.metric("fault_digest_hi")) << 32) |
         static_cast<std::uint64_t>(r.metric("fault_digest_lo"));
}

}  // namespace nsp::exec
