// One cell of an experiment sweep, described as data.
//
// A Scenario names everything the paper varies — governing equations,
// code version, grid, decomposition, platform, network, message layer,
// processor count — plus the workload kind, and builds the legacy
// structs (perf::AppModel, arch::Platform, core::SolverConfig) on
// demand. The fluent setters make sweeps read like the paper's axes:
//
//   Scenario::jet250x100().platform("t3d-64").msglayer("cray-pvm").threads(4)
//
// Scenarios are value types; copy one and change an axis to get the
// neighbouring cell.
#pragma once

#include <cstdint>
#include <string>

#include "arch/kernel_profile.hpp"
#include "arch/platform.hpp"
#include "core/solver.hpp"
#include "fault/fault.hpp"
#include "io/json.hpp"
#include "perf/app_model.hpp"

namespace nsp::exec {

/// What the engine executes for a scenario.
enum class Workload {
  Replay,    ///< discrete-event platform replay of the app model
  Solve,     ///< live core::Solver run (serial, deterministic)
  NetProbe,  ///< raw network latency/bandwidth microbenchmark
};

std::string to_string(Workload w);

class Scenario {
 public:
  // ---- Presets ----------------------------------------------------------

  /// The paper's workload: 250x100 grid, 5000 steps, Version 5, replayed
  /// on the IBM SP with MPL unless other axes are set.
  static Scenario jet250x100();

  /// Replay of a custom grid/step count (same per-point model).
  static Scenario jet(int ni, int nj, int steps);

  /// Live serial solve on a coarse grid (ni x nj, `steps` steps).
  static Scenario solve(int ni, int nj, int steps);

  /// Wire-level network probe of a platform's interconnect.
  static Scenario net_probe(const std::string& platform_key);

  // ---- Fluent axes ------------------------------------------------------

  Scenario& platform(const std::string& registry_key);
  Scenario& msglayer(const std::string& registry_key);  ///< override layer
  Scenario& network(arch::NetKind kind);                ///< override wire
  Scenario& threads(int nprocs);  ///< ranks/threads (0 = platform max)
  Scenario& procs(int nprocs) { return threads(nprocs); }
  Scenario& equations(arch::Equations eq);
  Scenario& euler() { return equations(arch::Equations::Euler); }
  Scenario& navier_stokes() { return equations(arch::Equations::NavierStokes); }
  Scenario& version(arch::CodeVersion v);
  /// Kernel variant for Workload::Solve (the live solver's V1..V5
  /// optimization ladder; V5 is the default and the production path).
  /// Distinct from version(), which names the replay's code version.
  Scenario& kernel(core::KernelVariant v);
  /// Solver model for Workload::Solve: a model-registry key naming the
  /// (physics, scheme, excitation) combination (src/model/registry.hpp,
  /// e.g. "euler/mac22/quiet"). Throws std::invalid_argument on an
  /// unknown key. Setting a model also aligns the equations axis with
  /// the model's physics, so replay pricing and the live solver agree.
  /// The empty default (and the explicit default model) leave the
  /// scenario byte-identical to one that never heard of models — the
  /// cache key only grows a |model: segment for non-default models.
  Scenario& model(const std::string& registry_key);
  Scenario& grid2d(int px);  ///< 2-D process grid, px columns (0 = 1-D)
  /// Comm/compute overlap in the replay cost model, mirroring the live
  /// solver's SolverConfig::overlap_comm: interior work of the next
  /// phase proceeds while halos are in flight (both 1-D and 2-D
  /// decompositions), with none of Version 6's 1995 cache penalty. Off
  /// by default; the cache key only grows a |ov segment when enabled,
  /// so historical keys and artifacts are untouched.
  Scenario& overlap_comm(bool on = true);
  Scenario& steps(int n);
  Scenario& sim_steps(int n);  ///< replay fidelity (default 400)
  Scenario& seed(std::uint64_t base_seed);
  Scenario& label(const std::string& text);
  /// Fault model for the replay (see fault::FaultSpec). A disabled spec
  /// (the default) leaves the scenario byte-identical to one that never
  /// heard of faults — the cache key only grows a |faults: segment when
  /// the spec is enabled.
  Scenario& faults(const fault::FaultSpec& spec);
  Scenario& faults(const std::string& spec);  ///< FaultSpec::parse form

  // ---- Introspection ----------------------------------------------------

  Workload workload() const { return workload_; }
  const std::string& platform_key() const { return platform_; }
  const std::string& msglayer_key() const { return msglayer_; }
  const std::string& label_text() const { return label_; }
  arch::Equations equations() const { return eq_; }
  int requested_procs() const { return nprocs_; }
  core::KernelVariant kernel_variant() const { return kernel_; }
  const std::string& model_key() const { return model_; }
  int step_count() const { return steps_; }
  int sim_step_count() const { return sim_steps_; }
  const fault::FaultSpec& fault_spec() const { return faults_; }
  bool overlap_enabled() const { return overlap_comm_; }

  /// Processor count this scenario resolves to (platform max when the
  /// threads axis was left at 0).
  int resolved_procs() const;

  /// Canonical identity string; equal scenarios produce equal keys, any
  /// changed axis changes the key. Used for result ordering.
  std::string key() const;

  /// The computational content of the scenario: key() minus the display
  /// label. Two scenarios with equal cache keys produce identical
  /// metrics, so the engine's memo cache is indexed by this.
  std::string cache_key() const;

  /// 64-bit FNV-1a hash of cache_key() — the content hash the cache
  /// indexes.
  std::uint64_t content_hash() const;

  // ---- Wire format (docs/SERVING.md) -------------------------------------

  /// Serializes every axis as a single-line JSON object with a fixed
  /// field order — the canonical wire form of the serving protocol.
  /// `seed` is emitted as a decimal *string* so 64-bit values survive
  /// JSON implementations that store numbers as doubles.
  std::string to_json() const;

  /// Parses the to_json() form back into a Scenario. Every field is
  /// optional and defaults to the fluent API's defaults, so a minimal
  /// request like {"platform":"t3d-16"} is valid. Unknown fields,
  /// out-of-range enums, unknown platform/msglayer keys, and malformed
  /// fault specs are rejected: returns false with a one-line reason in
  /// `err`. Round-trip contract (tested per axis):
  /// from_json(to_json(s)).cache_key() == s.cache_key().
  static bool from_json(const io::JsonValue& doc, Scenario* out,
                        std::string* err);

  /// Deterministic per-scenario seed: content hash mixed with the base
  /// seed, so a sweep reseeds reproducibly regardless of worker order.
  std::uint64_t derived_seed() const;

  // ---- Bridges to the legacy structs ------------------------------------

  /// The platform, with any msglayer/network overrides applied.
  arch::Platform platform_model() const;

  /// The replay application model for the configured axes.
  perf::AppModel app_model() const;

  /// A solver configuration for Workload::Solve (coarse grid, serial).
  core::SolverConfig solver_config() const;

 private:
  Workload workload_ = Workload::Replay;
  arch::Equations eq_ = arch::Equations::NavierStokes;
  arch::CodeVersion version_ = arch::CodeVersion::V5_CommonCollapse;
  core::KernelVariant kernel_ = core::KernelVariant::V5;
  int ni_ = 250;
  int nj_ = 100;
  int steps_ = 5000;
  int proc_grid_px_ = 0;
  int sim_steps_ = 400;
  std::string platform_ = "sp-mpl";
  std::string msglayer_;  ///< "" = platform default
  bool net_override_ = false;
  arch::NetKind net_ = arch::NetKind::Perfect;
  int nprocs_ = 0;  ///< 0 = platform max
  std::uint64_t seed_ = 0;
  std::string label_;
  fault::FaultSpec faults_;  ///< disabled by default
  std::string model_;  ///< model-registry key; "" = default model
  bool overlap_comm_ = false;  ///< replay comm/compute overlap
};

}  // namespace nsp::exec
