#include "exec/registry.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>

#include "check/thread_safety.hpp"
#include "arch/platform.hpp"

namespace nsp::exec {

namespace {

using Factory = arch::Platform (*)();

const std::map<std::string, Factory>& builtin_platforms() {
  static const std::map<std::string, Factory> kBuiltins = {
      {"lace-ethernet", &arch::Platform::lace560_ethernet},
      {"lace-allnode-s", &arch::Platform::lace560_allnode_s},
      {"lace-fddi", &arch::Platform::lace560_fddi},
      {"lace-allnode-f", &arch::Platform::lace590_allnode_f},
      {"lace-atm", &arch::Platform::lace590_atm},
      {"sp-mpl", &arch::Platform::ibm_sp_mpl},
      {"sp-pvme", &arch::Platform::ibm_sp_pvme},
      {"t3d", &arch::Platform::cray_t3d},
      {"t3d-shmem", &arch::Platform::cray_t3d_shmem},
      {"ymp", &arch::Platform::cray_ymp},
      {"dash", &arch::Platform::dash},
      // The modern zoo (docs/PLATFORMS.md §6); all take the -<procs>
      // suffix, e.g. "ib-fattree-4096".
      {"ib-fattree", &arch::Platform::ib_fattree},
      {"xc-dragonfly", &arch::Platform::xc_dragonfly},
      {"knl-fattree", &arch::Platform::knl_fattree},
      {"gpu-fattree", &arch::Platform::gpu_fattree},
      {"bgq-torus", &arch::Platform::bgq_torus},
  };
  return kBuiltins;
}

/// User-registered platforms. Mutex and map live in one struct so the
/// guarded_by relation is expressible (the thread-safety analysis
/// cannot track a capability returned from a function).
struct UserRegistry {
  check::Mutex mu;
  std::map<std::string, arch::Platform> platforms NSP_GUARDED_BY(mu);

  static UserRegistry& instance() {
    static UserRegistry reg;
    return reg;
  }
};

/// Splits "base-32" into ("base", 32); procs = 0 when no suffix.
void split_proc_suffix(const std::string& key, std::string* base, int* procs) {
  *base = key;
  *procs = 0;
  const auto dash = key.find_last_of('-');
  if (dash == std::string::npos || dash + 1 >= key.size()) return;
  int value = 0;
  for (std::size_t i = dash + 1; i < key.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(key[i]))) return;
    value = value * 10 + (key[i] - '0');
  }
  if (value <= 0) return;
  *base = key.substr(0, dash);
  *procs = value;
}

bool find_base(const std::string& base, arch::Platform* out) {
  const auto& builtins = builtin_platforms();
  if (const auto it = builtins.find(base); it != builtins.end()) {
    if (out != nullptr) *out = it->second();
    return true;
  }
  auto& reg = UserRegistry::instance();
  check::MutexLock lock(reg.mu);
  if (const auto it = reg.platforms.find(base); it != reg.platforms.end()) {
    if (out != nullptr) *out = it->second;
    return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> platform_names() {
  std::vector<std::string> names;
  for (const auto& kv : builtin_platforms()) names.push_back(kv.first);
  {
    auto& reg = UserRegistry::instance();
    check::MutexLock lock(reg.mu);
    for (const auto& kv : reg.platforms) names.push_back(kv.first);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

bool has_platform(const std::string& key) {
  std::string base;
  int procs = 0;
  if (find_base(key, nullptr)) return true;
  split_proc_suffix(key, &base, &procs);
  return procs > 0 && find_base(base, nullptr);
}

arch::Platform make_platform(const std::string& key) {
  arch::Platform p;
  // Exact match first, so registered names containing "-<digits>" and
  // the builtin "t3d" (vs "t3d-shmem") resolve without surprises.
  if (find_base(key, &p)) return p;
  std::string base;
  int procs = 0;
  split_proc_suffix(key, &base, &procs);
  if (procs > 0 && find_base(base, &p)) {
    p.max_procs = procs;
    return p;
  }
  std::string msg = "unknown platform '" + key + "'; known:";
  for (const auto& n : platform_names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

void register_platform(const std::string& key, const arch::Platform& platform) {
  if (key.empty()) throw std::invalid_argument("empty platform key");
  std::string base;
  int procs = 0;
  split_proc_suffix(key, &base, &procs);
  if (procs > 0) {
    throw std::invalid_argument("platform key '" + key +
                                "' ends in a proc-count suffix");
  }
  auto& reg = UserRegistry::instance();
  check::MutexLock lock(reg.mu);
  reg.platforms[key] = platform;
}

namespace {

using MsgFactory = arch::MsgLayerModel (*)();

const std::map<std::string, MsgFactory>& msglayers() {
  static const std::map<std::string, MsgFactory> kLayers = {
      {"pvm", &arch::MsgLayerModel::pvm_lace},
      {"pvme", &arch::MsgLayerModel::pvme_sp},
      {"mpl", &arch::MsgLayerModel::mpl_sp},
      {"cray-pvm", &arch::MsgLayerModel::pvm_t3d},
      {"shmem", &arch::MsgLayerModel::shmem_t3d},
      {"shared-memory", &arch::MsgLayerModel::shared_memory},
      {"mpi", &arch::MsgLayerModel::mpi_modern},
      {"mpi-manycore", &arch::MsgLayerModel::mpi_manycore},
      {"mpi-gpu", &arch::MsgLayerModel::mpi_gpu},
  };
  return kLayers;
}

}  // namespace

std::vector<std::string> msglayer_names() {
  std::vector<std::string> names;
  for (const auto& kv : msglayers()) names.push_back(kv.first);
  return names;
}

arch::MsgLayerModel make_msglayer(const std::string& key) {
  const auto& layers = msglayers();
  if (const auto it = layers.find(key); it != layers.end()) return it->second();
  std::string msg = "unknown message layer '" + key + "'; known:";
  for (const auto& n : msglayer_names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

}  // namespace nsp::exec
