// Engine determinism audit: prove that a parallel sweep computes the
// same cells, bit for bit, as the serial reference run.
//
// audit() executes the sweep twice — once on a 1-thread engine (the
// serial reference) and once on an N-thread engine — with memoization
// disabled, hashes every cell's identity and exact metric bits
// (check::TraceHash / FNV-1a), and diffs the hashes per cell rather
// than just comparing final serialized bytes: a mismatch names the
// exact scenario that diverged. The CLI exposes this as
// `nsplab_cli batch ... --audit`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/run_result.hpp"
#include "exec/scenario.hpp"

namespace nsp::exec {

/// FNV-1a hash of a result's identity (key, label, platform, nprocs,
/// seed) and the exact bit patterns of its metrics, in insertion order.
/// Execution bookkeeping (wall_s, from_cache) is excluded.
std::uint64_t trace_hash(const RunResult& r);

/// One scenario's serial-vs-parallel comparison.
struct AuditCell {
  std::string key;                   ///< scenario key
  std::uint64_t serial_hash = 0;     ///< 0 = missing from the serial run
  std::uint64_t parallel_hash = 0;   ///< 0 = missing from the parallel run
  /// Fault timeline digests (fault_digest(); 0 = cell ran fault-free).
  /// Compared separately from the metric hash so a divergence report
  /// says whether the *injected fault timeline* disagreed, not just
  /// that some metric bit did.
  std::uint64_t serial_timeline = 0;
  std::uint64_t parallel_timeline = 0;
  bool match() const { return serial_hash == parallel_hash; }
  bool timeline_match() const { return serial_timeline == parallel_timeline; }
};

struct AuditReport {
  int parallel_threads = 0;
  std::vector<AuditCell> cells;  ///< sorted by key
  std::uint64_t serial_digest = 0;    ///< order-independent sweep digest
  std::uint64_t parallel_digest = 0;

  std::size_t mismatches() const;
  bool clean() const { return mismatches() == 0; }

  /// Per-cell table plus a digest summary line.
  std::string str() const;
};

/// Runs the 1-thread vs `threads`-thread comparison (threads = 0 picks
/// the engine default width, forced to at least 2 so the audit always
/// exercises a real pool).
AuditReport audit(const std::vector<Scenario>& sweep, int threads = 0);

}  // namespace nsp::exec
