// The one result record of the experiment engine.
//
// Every workload the engine can execute — platform replays, live solver
// runs, network probes — reports its outcome as a RunResult: the
// scenario's canonical key plus an ordered list of named metrics. This
// replaces the ad-hoc result structs that used to be scattered across
// the harnesses (bench_util's series assembly, bench_networks'
// NetResult, the aggregate accessors on perf::ReplayResult).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "perf/replay.hpp"

namespace nsp::exec {

/// One completed scenario: identity plus named metrics.
struct RunResult {
  std::string key;       ///< canonical scenario key (sort/cache identity)
  std::string label;     ///< user-facing label ("" = none)
  std::string platform;  ///< platform display name
  int nprocs = 1;
  std::uint64_t seed = 0;  ///< the derived per-scenario seed

  /// Named metrics in insertion order ("exec_s", "busy_avg_s", ...).
  std::vector<std::pair<std::string, double>> metrics;

  // Execution bookkeeping — *not* part of the result's identity: these
  // vary run to run, so equality, CSV, and JSON all exclude them.
  double wall_s = 0;        ///< host wall-clock spent computing this cell
  bool from_cache = false;  ///< served from the engine's memo cache

  /// Sets (or overwrites) a metric.
  void set(std::string name, double value);

  /// True if the metric exists.
  bool has(std::string_view name) const;

  /// Metric value; throws std::out_of_range if absent.
  double metric(std::string_view name) const;
};

/// Identity comparison: key, label, platform, nprocs, seed, and the
/// exact metric bits. wall_s / from_cache are excluded.
bool operator==(const RunResult& a, const RunResult& b);
inline bool operator!=(const RunResult& a, const RunResult& b) {
  return !(a == b);
}

/// Results of a sweep in a stable order (sorted by key, then label):
/// independent of the completion order of the pool's workers, so a
/// parallel run serializes byte-identically to a serial one.
struct ResultSet {
  std::vector<RunResult> results;

  /// First result whose key equals `key`, or nullptr.
  const RunResult* find(std::string_view key) const;

  /// First result whose label equals `label`, or nullptr.
  const RunResult* find_label(std::string_view label) const;

  /// Deterministic CSV: identity columns plus the union of metric names
  /// (sorted) as columns; doubles serialized exactly.
  std::string to_csv() const;

  /// Deterministic JSON array of objects (insertion-ordered metrics).
  std::string to_json() const;

  /// Writes to_csv()/to_json() through io (path taken literally).
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
};

bool operator==(const ResultSet& a, const ResultSet& b);
inline bool operator!=(const ResultSet& a, const ResultSet& b) {
  return !(a == b);
}

// ---- Replay aggregates -------------------------------------------------
// The paper-level summary statistics of a replay, formerly duplicated as
// methods on perf::ReplayResult; RunResult's metric set is built from
// these.

double avg_busy(const perf::ReplayResult& r);
double max_busy(const perf::ReplayResult& r);
double avg_wait(const perf::ReplayResult& r);
double total_messages(const perf::ReplayResult& r);
double total_bytes(const perf::ReplayResult& r);

/// Standard metric set for a replay outcome: exec_s, busy_avg_s,
/// busy_max_s, wait_avg_s, messages, bytes.
void set_replay_metrics(RunResult& out, const perf::ReplayResult& r);

/// Fault metric set: injection/detection/recovery counters plus the
/// order-independent timeline digest, split into its exactly-
/// representable 32-bit halves (fault_digest_hi/lo) so exec::audit's
/// metric comparison naturally covers the fault timeline.
void set_fault_metrics(RunResult& out, const fault::FaultStats& st);

/// Reassembles the timeline digest from fault_digest_hi/lo (0 when the
/// result carries no fault metrics).
std::uint64_t fault_digest(const RunResult& r);

}  // namespace nsp::exec
