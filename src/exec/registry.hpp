// Name-keyed construction of platforms and message layers.
//
// Scenarios refer to machines by string key instead of calling the
// arch::Platform preset constructors directly, so sweeps can be written
// as data ("lace-fddi-8", "t3d-64") and user-defined machines join the
// zoo at runtime via register_platform().
//
// A platform key is a base name with an optional "-<procs>" suffix that
// overrides max_procs: "t3d" is the paper's 16-PE partition, "t3d-64"
// the full machine.
#pragma once

#include <string>
#include <vector>

#include "arch/msglayer.hpp"
#include "arch/platform.hpp"

namespace nsp::exec {

/// All registered base platform keys, sorted (built-ins plus anything
/// added with register_platform()).
std::vector<std::string> platform_names();

/// True if `key` resolves (including a "-<procs>" suffix).
bool has_platform(const std::string& key);

/// Builds the platform for `key`; throws std::invalid_argument with the
/// list of known keys on an unknown name.
arch::Platform make_platform(const std::string& key);

/// Registers (or replaces) a user-defined machine under `key`. The key
/// must be non-empty and must not end in "-<digits>" (that form is
/// reserved for the proc-count suffix).
void register_platform(const std::string& key, const arch::Platform& platform);

/// All message-layer keys, sorted.
std::vector<std::string> msglayer_names();

/// Builds the message-layer model for `key` ("pvm", "mpl", "pvme",
/// "cray-pvm", "shmem", "shared-memory"); throws std::invalid_argument
/// on an unknown name.
arch::MsgLayerModel make_msglayer(const std::string& key);

}  // namespace nsp::exec
